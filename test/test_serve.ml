(** Tests for the serving subsystem (lib/serve): load generation, dynamic
    batching, admission control, scheduling, and the end-to-end shapes the
    serving benchmarks rely on. *)

open Test_util
module Load_gen = S4o_serve.Load_gen
module Batcher = S4o_serve.Batcher
module Request = S4o_serve.Request
module Replica = S4o_serve.Replica
module Server = S4o_serve.Server
module Serve_stats = S4o_serve.Serve_stats
module Model = S4o_serve.Model

(* A small open-loop run; recording off unless a test needs the timeline. *)
let run_open ?(model = Model.Lenet) ?(strategy = Replica.lazy_tensor)
    ?(replicas = 2) ?(max_batch = 8) ?batch_timeout ?queue_capacity ?slo
    ?policy ?warmup ?(record = false) ?(rate = 2000.0) ?(requests = 300) () =
  let cfg =
    Server.default_config ~model ~strategy ~replicas ~max_batch ?batch_timeout
      ?queue_capacity ?slo ?policy ?warmup ~record ()
  in
  Server.run cfg
    (Server.Open_loop
       { process = Load_gen.Poisson { rate }; requests; seed = 11 })

let test_load_gen () =
  let uniform = Load_gen.arrivals (Load_gen.Uniform { rate = 100.0 }) ~seed:1 ~n:5 in
  check_float_array "uniform spacing" [| 0.01; 0.02; 0.03; 0.04; 0.05 |] uniform;
  let a = Load_gen.arrivals (Load_gen.Poisson { rate = 500.0 }) ~seed:42 ~n:2000 in
  let b = Load_gen.arrivals (Load_gen.Poisson { rate = 500.0 }) ~seed:42 ~n:2000 in
  check_float_array "poisson deterministic per seed" a b;
  let c = Load_gen.arrivals (Load_gen.Poisson { rate = 500.0 }) ~seed:43 ~n:2000 in
  check_true "different seed, different trace" (a <> c);
  Array.iteri
    (fun i t -> if i > 0 then check_true "non-decreasing" (t >= a.(i - 1)))
    a;
  let observed_rate = 2000.0 /. a.(1999) in
  check_true "poisson rate within 20% of nominal"
    (observed_rate > 400.0 && observed_rate < 600.0);
  let bursty =
    Load_gen.arrivals (Load_gen.Bursty { rate = 500.0; burst = 4 }) ~seed:7 ~n:16
  in
  for g = 0 to 3 do
    for i = 1 to 3 do
      check_float "burst members arrive together" bursty.((4 * g))
        bursty.((4 * g) + i)
    done
  done;
  check_raises_any "non-positive rate rejected" (fun () ->
      Load_gen.validate (Load_gen.Poisson { rate = 0.0 }));
  check_raises_any "non-positive burst rejected" (fun () ->
      Load_gen.validate (Load_gen.Bursty { rate = 1.0; burst = 0 }))

let test_batcher () =
  let b = Batcher.create ~max_batch:8 ~timeout:1e-3 () in
  Alcotest.(check (list int)) "default buckets are powers of two" [ 1; 2; 4; 8 ]
    (Batcher.buckets b);
  check_int "bucket_for rounds up" 4 (Batcher.bucket_for b 3);
  check_int "bucket_for exact" 8 (Batcher.bucket_for b 8);
  let custom = Batcher.create ~buckets:[ 3 ] ~max_batch:8 ~timeout:0.0 () in
  Alcotest.(check (list int)) "custom buckets extended to cover max_batch"
    [ 3; 8 ] (Batcher.buckets custom);
  let req id arrival = Request.create ~id ~arrival ~slo:10e-3 () in
  for i = 1 to 10 do
    Batcher.enqueue b (req i (float_of_int i *. 1e-4))
  done;
  check_true "full past max_batch" (Batcher.is_full b);
  Alcotest.(check (option (float 1e-12))) "fire deadline = oldest + timeout"
    (Some (1e-4 +. 1e-3))
    (Batcher.fire_deadline b ~timeout:1e-3);
  let taken = Batcher.take b in
  check_int "take caps at max_batch" 8 (List.length taken);
  check_int "fifo order" 1 (List.hd taken).Request.id;
  check_int "remainder still queued" 2 (Batcher.length b);
  (* request 9 expires at 10.9ms, request 10 at 11.0ms *)
  let shed = Batcher.shed_expired b ~now:0.01095 in
  check_int "first leftover expired" 1 (List.length shed);
  check_int "later request survives" 1 (Batcher.length b);
  check_raises_any "zero max_batch rejected" (fun () ->
      Batcher.create ~max_batch:0 ~timeout:0.0 ())

let test_accounting () =
  let t = run_open () in
  let s = Server.stats t in
  check_int "every request offered" 300 s.Serve_stats.offered;
  check_int "offered = completed + shed"
    s.Serve_stats.offered
    (s.Serve_stats.completed + Serve_stats.shed s);
  check_true "some batches ran" (s.Serve_stats.batches > 0);
  check_true "occupancy within max_batch"
    (s.Serve_stats.mean_occupancy <= float_of_int s.Serve_stats.max_batch);
  check_true "throughput positive" (s.Serve_stats.throughput > 0.0);
  check_true "latencies ordered"
    (s.Serve_stats.latency_p50 <= s.Serve_stats.latency_p99
    && s.Serve_stats.latency_p99 <= s.Serve_stats.latency_max);
  (* deterministic: identical run, identical snapshot *)
  let s' = Server.stats (run_open ()) in
  check_true "deterministic stats" (s = s')

let test_bucketed_cache () =
  let t = run_open ~requests:400 () in
  let s = Server.stats t in
  (* 4 buckets (1/2/4/8) x 2 replicas bounds the compiled-program count *)
  check_true "compiled programs bounded by buckets x replicas"
    (s.Serve_stats.compiled_programs <= 8);
  check_true "steady state hits the cache"
    (s.Serve_stats.cache_hits > s.Serve_stats.cache_misses);
  check_true "warmup misses happened" (s.Serve_stats.cache_misses > 0)

let test_lazy_beats_eager () =
  (* Saturating load turns throughput into a capacity measurement: the lazy
     path's fused kernels and 16us/op re-trace beat 50us/op eager dispatch. *)
  let capacity strategy =
    (Server.stats
       (run_open ~strategy ~rate:200000.0 ~requests:400 ~queue_capacity:128 ()))
      .Serve_stats.throughput
  in
  let lazy_cap = capacity Replica.lazy_tensor in
  let eager_cap = capacity Replica.eager in
  check_true "lazy capacity beats eager" (lazy_cap > eager_cap);
  check_true "eager still serves" (eager_cap > 0.0)

let test_shedding_and_degraded_mode () =
  let calm = Server.stats (run_open ~rate:500.0 ~requests:200 ()) in
  check_int "no shedding below saturation" 0 (Serve_stats.shed calm);
  check_int "no violations below saturation" 0 calm.Serve_stats.slo_violations;
  check_float "no degraded time below saturation" 0.0
    calm.Serve_stats.degraded_seconds;
  let hot =
    Server.stats
      (run_open ~rate:500000.0 ~requests:600 ~queue_capacity:16 ~slo:5e-3 ())
  in
  check_true "overload sheds at admission" (hot.Serve_stats.shed_rejected > 0);
  check_true "shed rate positive past saturation" (Serve_stats.shed_rate hot > 0.0);
  check_true "overload triggers degraded mode"
    (hot.Serve_stats.degraded_seconds > 0.0)

let test_cold_start () =
  (* Without warmup the first batches eat 50+ ms JIT compiles on the
     serving path, blowing deadlines; warmup moves that cost before t=0. *)
  let cold = Server.stats (run_open ~warmup:false ~rate:500.0 ~requests:100 ()) in
  let warm = Server.stats (run_open ~warmup:true ~rate:500.0 ~requests:100 ()) in
  check_float "cold start reports no warmup time" 0.0
    cold.Serve_stats.warmup_seconds;
  check_true "warmup takes simulated time" (warm.Serve_stats.warmup_seconds > 0.0);
  check_true "cold start sheds or violates"
    (Serve_stats.shed cold + cold.Serve_stats.slo_violations > 0);
  check_int "warmed run serves everything in time" 0
    (Serve_stats.shed warm + warm.Serve_stats.slo_violations);
  check_true "warmup compiles every bucket ahead of traffic"
    (warm.Serve_stats.latency_max < cold.Serve_stats.latency_max)

let test_throughput_rises_with_max_batch () =
  let capacity max_batch =
    (Server.stats
       (run_open ~max_batch ~rate:200000.0 ~requests:400 ~queue_capacity:128 ()))
      .Serve_stats.throughput
  in
  check_true "batching lifts saturated throughput"
    (capacity 8 > capacity 1);
  (* At a moderate rate the batcher actually waits for company, so a larger
     max_batch buys throughput with tail latency. *)
  let p99 max_batch =
    (Server.stats (run_open ~max_batch ~batch_timeout:2e-3 ~rate:2000.0 ()))
      .Serve_stats.latency_p99
  in
  check_true "p99 grows with max_batch" (p99 8 > p99 1)

let test_closed_loop () =
  let cfg = Server.default_config ~record:false () in
  let t =
    Server.run cfg
      (Server.Closed_loop { clients = 8; think = 2e-3; requests = 200; seed = 3 })
  in
  let s = Server.stats t in
  check_int "closed loop offers every request" 200 s.Serve_stats.offered;
  check_int "closed loop completes every request" 200 s.Serve_stats.completed;
  check_int "closed loop never sheds at this load" 0 (Serve_stats.shed s);
  (* 8 clients can never overflow the 64-deep queue, and occupancy is capped
     by the number of clients *)
  check_true "occupancy bounded by clients"
    (s.Serve_stats.mean_occupancy <= 8.0)

let test_policies () =
  let both_replicas_used policy =
    let t = run_open ~policy ~rate:50000.0 ~requests:200 () in
    List.for_all
      (fun (name, _) -> String.length name > 0)
      (Server.recorders t)
    && (Server.stats t).Serve_stats.batches > 0
  in
  check_true "least-loaded runs" (both_replicas_used Server.Least_loaded);
  check_true "round-robin runs" (both_replicas_used Server.Round_robin);
  Alcotest.(check (option string)) "policy parser" (Some "round-robin")
    (Option.map Server.policy_name (Server.policy_of_string "rr"))

let test_trace_export () =
  let t = run_open ~record:true ~requests:60 () in
  let recs = Server.recorders t in
  check_int "server + one timeline per replica" 3 (List.length recs);
  check_string "server timeline first" "server" (fst (List.hd recs));
  let json = S4o_obs.Chrome_trace.processes_to_string recs in
  (match S4o_obs.Chrome_trace.validate json with
  | Ok n -> check_true "trace has events" (n > 0)
  | Error e -> Alcotest.failf "serve trace failed validation: %s" e);
  let server_rec = List.assoc "server" recs in
  check_true "batch-assembly spans recorded"
    (List.exists
       (fun (s : S4o_obs.Recorder.span) -> s.S4o_obs.Recorder.name = "batch-assembly")
       (S4o_obs.Recorder.spans server_rec))

let test_validation () =
  check_raises_any "zero replicas rejected" (fun () ->
      Server.run
        (Server.default_config ~replicas:0 ())
        (Server.Open_loop
           { process = Load_gen.Poisson { rate = 1.0 }; requests = 1; seed = 0 }));
  check_raises_any "degrade_factor above 1 rejected" (fun () ->
      Server.run
        (Server.default_config ~degrade_factor:2.0 ())
        (Server.Open_loop
           { process = Load_gen.Poisson { rate = 1.0 }; requests = 1; seed = 0 }));
  check_raises_any "non-positive slo rejected" (fun () ->
      Request.create ~id:1 ~arrival:0.0 ~slo:0.0 ())

let test_assemble () =
  let module D = S4o_tensor.Dense in
  let row = [| 2; 2 |] in
  let payload v = D.create row v in
  let req ?payload id = Request.create ?payload ~id ~arrival:0.0 ~slo:1.0 () in
  let batch = [ req ~payload:(payload 1.0) 1; req 2; req ~payload:(payload 3.0) 3 ] in
  let t = Batcher.assemble ~bucket:4 ~row batch in
  check_true "batch tensor shape" (D.shape t = [| 4; 2; 2 |]);
  check_float_array "payload rows land in order, gaps and tail stay zero"
    [| 1.; 1.; 1.; 1.; 0.; 0.; 0.; 0.; 3.; 3.; 3.; 3.; 0.; 0.; 0.; 0. |]
    (D.to_array t);
  check_raises_any "overflowing the bucket rejected" (fun () ->
      Batcher.assemble ~bucket:2 ~row [ req 1; req 2; req 3 ]);
  check_raises_any "payload element-count mismatch rejected" (fun () ->
      Batcher.assemble ~bucket:2 ~row
        [ req ~payload:(D.create [| 3 |] 1.0) 1 ])

let suite =
  [
    ( "serve",
      [
        Alcotest.test_case "load generator determinism and shapes" `Quick
          test_load_gen;
        Alcotest.test_case "batcher buckets, take, and expiry" `Quick
          test_batcher;
        Alcotest.test_case "request accounting is exact" `Quick test_accounting;
        Alcotest.test_case "shape bucketing keeps the trace cache hot" `Quick
          test_bucketed_cache;
        Alcotest.test_case "lazy capacity beats eager" `Quick
          test_lazy_beats_eager;
        Alcotest.test_case "shedding and degraded mode under overload" `Quick
          test_shedding_and_degraded_mode;
        Alcotest.test_case "JIT warmup vs cold start" `Quick test_cold_start;
        Alcotest.test_case "throughput rises with max_batch, p99 pays" `Quick
          test_throughput_rises_with_max_batch;
        Alcotest.test_case "closed-loop clients complete" `Quick
          test_closed_loop;
        Alcotest.test_case "scheduling policies" `Quick test_policies;
        Alcotest.test_case "chrome trace exports and validates" `Quick
          test_trace_export;
        Alcotest.test_case "config validation" `Quick test_validation;
        Alcotest.test_case "payload batch assembly" `Quick test_assemble;
      ] );
  ]
