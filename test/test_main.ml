let () =
  (* Run the whole suite in checked mode: every pass output, synthesized
     derivative, and cut HLO graph is verified as it is produced. *)
  S4o_analysis.Checked.enable ();
  Alcotest.run "s4o"
    (Test_tensor.suite @ Test_ops.suite @ Test_core.suite @ Test_sil.suite @ Test_device.suite
   @ Test_xla.suite @ Test_obs.suite @ Test_profiling.suite
   @ Test_runtimes.suite @ Test_diff_tensor.suite
   @ Test_nn.suite @ Test_data.suite @ Test_mvs.suite @ Test_spline.suite
   @ Test_mobile.suite @ Test_frameworks.suite @ Test_serve.suite
   @ Test_analysis.suite @ Test_integration.suite)
