(** Tests for the unified observability layer ([S4o_obs]): the event
    recorder, the metrics registry, the unified stats surface both runtimes
    share, and the Chrome-trace export (round-tripped through a real JSON
    parse). *)

open S4o_tensor
module Obs = S4o_obs
module Recorder = S4o_obs.Recorder
module Metrics = S4o_obs.Metrics
module Stats = S4o_obs.Stats
module Engine = S4o_device.Engine
module Spec = S4o_device.Device_spec

let with_eager f =
  let engine = Engine.create Spec.gtx1080 in
  let rt = S4o_eager.Runtime.create engine in
  let module Bk = S4o_eager.Eager_backend.Make (struct
    let rt = rt
  end) in
  f (module Bk : Backend_intf.S) rt engine

let with_lazy ?cache_enabled f =
  let engine = Engine.create Spec.gtx1080 in
  let rt = S4o_lazy.Lazy_runtime.create ?cache_enabled engine in
  let module Bk = S4o_lazy.Lazy_backend.Make (struct
    let rt = rt
  end) in
  f (module Bk : Backend_intf.S) rt engine

let expr (type t) (module Bk : Backend_intf.S with type t = t) a b =
  let x = Bk.of_dense a and y = Bk.of_dense b in
  let z = Bk.relu (Bk.sub (Bk.mul x y) (Bk.add_scalar 0.5 x)) in
  Bk.to_dense (Bk.softmax z)

let sample_inputs seed =
  let g = Prng.create seed in
  (Dense.rand_normal g [| 2; 4 |], Dense.rand_normal g [| 2; 4 |])

(* {1 Recorder} *)

let test_recorder_span_nesting () =
  let r = Recorder.create () in
  let outer = Recorder.begin_span r Recorder.Host ~cat:"outer" "parent" ~at:0.0 in
  let inner = Recorder.begin_span r Recorder.Host ~cat:"inner" "child" ~at:1.0 in
  Recorder.end_span r inner ~at:2.0;
  Recorder.end_span r outer ~args:[ ("k", "v") ] ~at:3.0;
  match Recorder.spans r with
  | [ child; parent ] ->
      Test_util.check_string "child first (ended first)" "child" child.Recorder.name;
      Test_util.check_string "parent second" "parent" parent.Recorder.name;
      Test_util.check_true "child nested within parent"
        (child.Recorder.start >= parent.Recorder.start
        && child.Recorder.finish <= parent.Recorder.finish);
      Test_util.check_true "end args appended"
        (List.mem_assoc "k" parent.Recorder.args)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_recorder_disabled_is_noop () =
  let r = Recorder.create ~enabled:false () in
  Recorder.span r Recorder.Device "k" ~start:0.0 ~finish:1.0;
  Recorder.instant r Recorder.Host "i" ~at:0.5;
  Test_util.check_int "nothing recorded" 0 (Recorder.event_count r);
  Recorder.set_enabled r true;
  Recorder.span r Recorder.Device "k" ~start:0.0 ~finish:1.0;
  Test_util.check_int "recording after enable" 1 (Recorder.event_count r)

(* {1 Metrics} *)

let test_metrics_registry () =
  let m = Metrics.create () in
  let c1 = Metrics.counter m "ops" in
  let c2 = Metrics.counter m "ops" in
  Metrics.incr c1;
  Metrics.incr ~by:2 c2;
  (* find-or-create: same name, same counter *)
  Test_util.check_int "shared counter" 3 (Metrics.counter_value c1);
  let g = Metrics.gauge m "depth" in
  Metrics.set g 4.0;
  Metrics.set g 1.5;
  Test_util.check_close "gauge last" 1.5 (Metrics.gauge_value g);
  Test_util.check_close "gauge peak" 4.0 (Metrics.gauge_peak g);
  let h = Metrics.histogram m "sizes" in
  List.iter (fun v -> Metrics.observe h v) [ 1.0; 3.0; 2.0 ];
  Test_util.check_int "hist count" 3 (Metrics.hist_count h);
  Test_util.check_close "hist sum" 6.0 (Metrics.hist_sum h);
  Test_util.check_close "hist max" 3.0 (Metrics.hist_max h);
  Test_util.check_close "hist mean" 2.0 (Metrics.hist_mean h);
  Metrics.reset m;
  Test_util.check_int "counter reset" 0 (Metrics.counter_value c1);
  Test_util.check_int "hist reset" 0 (Metrics.hist_count h);
  Test_util.check_int "registrations survive reset" 3
    (List.length (Metrics.snapshot m))

let test_metrics_quantiles () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  (* 1..100 in scrambled order: quantiles must not depend on arrival order *)
  let perm = S4o_tensor.Prng.permutation (Prng.create 13) 100 in
  Array.iter (fun i -> Metrics.observe h (float_of_int (i + 1))) perm;
  Test_util.check_close "p0 = min" 1.0 (Metrics.quantile h 0.0);
  Test_util.check_close "p100 = max" 100.0 (Metrics.quantile h 1.0);
  Test_util.check_close "median interpolates" 50.5 (Metrics.quantile h 0.5);
  Test_util.check_close "p90" 90.1 (Metrics.quantile h 0.9);
  Test_util.check_close "p99" 99.01 (Metrics.quantile h 0.99);
  let s = Metrics.summary h in
  Test_util.check_int "summary count" 100 s.Metrics.count;
  Test_util.check_close "summary mean" 50.5 s.Metrics.mean;
  Test_util.check_close "summary p50" 50.5 s.Metrics.p50;
  Test_util.check_close "summary p99" 99.01 s.Metrics.p99;
  Test_util.check_close "summary max" 100.0 s.Metrics.max;
  Test_util.check_raises_any "q > 1 rejected" (fun () -> Metrics.quantile h 1.5);
  Metrics.reset m;
  Test_util.check_close "empty quantile is 0" 0.0 (Metrics.quantile h 0.5);
  Test_util.check_int "empty summary" 0 (Metrics.summary h).Metrics.count;
  (* growth across the initial sample-buffer capacity keeps exactness *)
  for i = 1 to 1000 do
    Metrics.observe h (float_of_int i)
  done;
  Test_util.check_close "p50 after growth" 500.5 (Metrics.quantile h 0.5)

(* {1 Engine instrumentation} *)

let test_clock_monotonicity () =
  (* Simulated timeline invariants after a real eager workload: every span
     is well-formed, device kernels execute serially (FIFO, no overlap),
     and successive host dispatch spans never run backwards. *)
  with_eager (fun (module Bk) _ engine ->
      let a, b = sample_inputs 1 in
      ignore (expr (module Bk) a b);
      let spans = Recorder.spans (Engine.recorder engine) in
      Test_util.check_true "spans recorded" (List.length spans > 5);
      List.iter
        (fun (s : Recorder.span) ->
          Test_util.check_true (s.Recorder.name ^ " well-formed")
            (s.Recorder.start >= 0.0 && s.Recorder.finish >= s.Recorder.start))
        spans;
      let by_track track =
        List.filter (fun (s : Recorder.span) -> s.Recorder.track = track) spans
      in
      let check_serial label spans =
        ignore
          (List.fold_left
             (fun prev_finish (s : Recorder.span) ->
               Test_util.check_true (label ^ " serialized")
                 (s.Recorder.start +. 1e-12 >= prev_finish);
               s.Recorder.finish)
             0.0 spans)
      in
      check_serial "device kernels" (by_track Recorder.Device);
      check_serial "host spans" (by_track Recorder.Host))

let test_eager_dispatch_span_count () =
  with_eager (fun (module Bk) rt engine ->
      let a, b = sample_inputs 2 in
      ignore (expr (module Bk) a b);
      let st = S4o_eager.Runtime.stats rt in
      let dispatch_spans =
        List.filter
          (fun (s : Recorder.span) -> s.Recorder.cat = "dispatch")
          (Recorder.spans (Engine.recorder engine))
      in
      Test_util.check_int "one dispatch span per dispatched op"
        st.Stats.ops_dispatched
        (List.length dispatch_spans);
      let kernel_spans =
        List.filter
          (fun (s : Recorder.span) -> s.Recorder.cat = "kernel")
          (Recorder.spans (Engine.recorder engine))
      in
      Test_util.check_int "one kernel span per launched kernel"
        st.Stats.kernels_launched
        (List.length kernel_spans))

(* {1 The unified stats surface} *)

let test_unified_stats_shape () =
  let eager_st =
    with_eager (fun (module Bk) rt _ ->
        let a, b = sample_inputs 3 in
        ignore (expr (module Bk) a b);
        S4o_eager.Runtime.stats rt)
  in
  let lazy_st =
    with_lazy (fun (module Bk) rt _ ->
        let a, b = sample_inputs 3 in
        ignore (expr (module Bk) a b);
        S4o_lazy.Lazy_runtime.stats rt)
  in
  (* one type serves both: an eager snapshot never traces, a lazy one never
     dispatches eagerly *)
  Test_util.check_true "eager dispatched" (eager_st.Stats.ops_dispatched > 0);
  Test_util.check_int "eager never traces" 0 eager_st.Stats.traces_cut;
  Test_util.check_int "lazy never eager-dispatches" 0 lazy_st.Stats.ops_dispatched;
  Test_util.check_true "lazy traced" (lazy_st.Stats.traces_cut > 0);
  Test_util.check_true "both count kernels"
    (eager_st.Stats.kernels_launched > 0 && lazy_st.Stats.kernels_launched > 0);
  Test_util.check_true "lazy charged compile time"
    (lazy_st.Stats.compile_seconds > 0.0)

let test_reset_stats () =
  with_eager (fun (module Bk) rt _ ->
      let a, b = sample_inputs 4 in
      ignore (expr (module Bk) a b);
      Test_util.check_true "nonzero before reset"
        ((S4o_eager.Runtime.stats rt).Stats.ops_dispatched > 0);
      S4o_eager.Runtime.reset_stats rt;
      let st = S4o_eager.Runtime.stats rt in
      Test_util.check_int "ops zeroed" 0 st.Stats.ops_dispatched;
      Test_util.check_int "kernels zeroed" 0 st.Stats.kernels_launched;
      Test_util.check_close "host clock zeroed" 0.0 st.Stats.host_seconds;
      Test_util.check_int "timeline cleared" 0 st.Stats.spans_recorded);
  with_lazy (fun (module Bk) rt _ ->
      let a, b = sample_inputs 4 in
      ignore (expr (module Bk) a b);
      S4o_lazy.Lazy_runtime.reset_stats rt;
      let st = S4o_lazy.Lazy_runtime.stats rt in
      Test_util.check_int "traces zeroed" 0 st.Stats.traces_cut;
      Test_util.check_close "compile time zeroed" 0.0 st.Stats.compile_seconds)

(* {1 Lazy cache instrumentation} *)

let test_lazy_cache_hit_counter_vs_ablation () =
  let steps (module Bk : Backend_intf.S) =
    List.iter
      (fun seed ->
        let a, b = sample_inputs seed in
        ignore (expr (module Bk) a b))
      [ 1; 2; 3; 4 ]
  in
  let st_on =
    with_lazy ~cache_enabled:true (fun (module Bk) rt _ ->
        steps (module Bk);
        S4o_lazy.Lazy_runtime.stats rt)
  in
  let st_off =
    with_lazy ~cache_enabled:false (fun (module Bk) rt _ ->
        steps (module Bk);
        S4o_lazy.Lazy_runtime.stats rt)
  in
  Test_util.check_int "cache on: one compile" 1 st_on.Stats.cache_misses;
  Test_util.check_int "cache on: rest hit" 3 st_on.Stats.cache_hits;
  Test_util.check_int "ablation: every trace recompiles" 4
    st_off.Stats.cache_misses;
  Test_util.check_int "ablation: no hits" 0 st_off.Stats.cache_hits;
  Test_util.check_true "recompiling costs more simulated host time"
    (st_off.Stats.compile_seconds > st_on.Stats.compile_seconds)

(* {1 Chrome trace export} *)

let test_chrome_trace_round_trip () =
  let eager_rec, n_eager_events, host_spans, device_spans =
    with_eager (fun (module Bk) _ engine ->
        let a, b = sample_inputs 6 in
        ignore (expr (module Bk) a b);
        let r = Engine.recorder engine in
        let spans = Recorder.spans r in
        ( r,
          Recorder.event_count r,
          List.filter (fun (s : Recorder.span) -> s.Recorder.cat = "dispatch") spans,
          List.filter (fun (s : Recorder.span) -> s.Recorder.cat = "kernel") spans ))
  in
  (* the §3.2 pipeline is visible: some host dispatch span overlaps some
     device kernel span in simulated time *)
  let overlaps (a : Recorder.span) (b : Recorder.span) =
    a.Recorder.start < b.Recorder.finish && b.Recorder.start < a.Recorder.finish
  in
  Test_util.check_true "host dispatch overlaps device kernels"
    (List.exists
       (fun d -> List.exists (fun k -> overlaps d k) device_spans)
       host_spans);
  let s = Obs.Chrome_trace.to_string ~process:"eager" eager_rec in
  (match Obs.Chrome_trace.validate s with
  | Ok n ->
      (* every recorded event plus 3 metadata records *)
      Test_util.check_int "all events exported" (n_eager_events + 3) n
  | Error msg -> Alcotest.failf "trace did not validate: %s" msg);
  match Obs.Json.parse s with
  | Error msg -> Alcotest.failf "export is not valid JSON: %s" msg
  | Ok j ->
      let events =
        match Option.bind (Obs.Json.member "traceEvents" j) Obs.Json.to_list with
        | Some evs -> evs
        | None -> Alcotest.fail "no traceEvents"
      in
      let complete =
        List.filter
          (fun e ->
            match Option.bind (Obs.Json.member "ph" e) Obs.Json.to_str with
            | Some "X" -> true
            | _ -> false)
          events
      in
      Test_util.check_int "one X event per span"
        (List.length (Recorder.spans eager_rec))
        (List.length complete);
      List.iter
        (fun e ->
          let num k =
            match Option.bind (Obs.Json.member k e) Obs.Json.to_float with
            | Some f -> f
            | None -> Alcotest.failf "span event missing %s" k
          in
          Test_util.check_true "ts >= 0 and dur >= 0"
            (num "ts" >= 0.0 && num "dur" >= 0.0))
        complete

let test_json_parser () =
  let round_trip s =
    match Obs.Json.parse s with
    | Ok j -> Obs.Json.to_string j
    | Error msg -> Alcotest.failf "parse failed on %s: %s" s msg
  in
  Test_util.check_string "object round-trips"
    {|{"a":[1,2.5,true,null],"b":"x\"y"}|}
    (round_trip {|{ "a" : [1, 2.5, true, null], "b" : "x\"y" }|});
  Test_util.check_true "rejects garbage"
    (match Obs.Json.parse "{" with Error _ -> true | Ok _ -> false);
  Test_util.check_true "rejects trailing"
    (match Obs.Json.parse "1 2" with Error _ -> true | Ok _ -> false)

(* {1 Backend stride defaults (unified API surface)} *)

let test_stride_defaults_agree () =
  let rng = Prng.create 9 in
  let image = Dense.rand_normal rng [| 1; 8; 8; 2 |] in
  let filter = Dense.rand_normal rng [| 3; 3; 2; 4 |] in
  let run (type t) (module Bk : Backend_intf.S with type t = t) =
    let x = Bk.of_dense image and f = Bk.of_dense filter in
    let conv_default = Bk.conv2d ~padding:Convolution.Same x f in
    let conv_explicit =
      Bk.conv2d ~stride:Backend_intf.default_conv_stride
        ~padding:Convolution.Same x f
    in
    let pool_default = Bk.avg_pool2d ~size:(2, 2) x in
    let pool_explicit = Bk.avg_pool2d ~stride:(2, 2) ~size:(2, 2) x in
    ( Bk.to_dense conv_default,
      Bk.to_dense conv_explicit,
      Bk.to_dense pool_default,
      Bk.to_dense pool_explicit )
  in
  let check name (cd, ce, pd, pe) =
    Test_util.check_tensor (name ^ ": conv default = (1,1)") ce cd;
    Test_util.check_tensor (name ^ ": pool default stride = size") pe pd
  in
  check "naive" (run (module Naive_backend));
  check "eager" (with_eager (fun (module Bk) _ _ -> run (module Bk)));
  check "lazy" (with_lazy (fun (module Bk) _ _ -> run (module Bk)))

let suite =
  let tc = Alcotest.test_case in
  [
    ( "obs.recorder",
      [
        tc "span nesting via begin/end" `Quick test_recorder_span_nesting;
        tc "disabled recorder is a no-op" `Quick test_recorder_disabled_is_noop;
      ] );
    ( "obs.metrics",
      [
        tc "registry semantics" `Quick test_metrics_registry;
        tc "histogram quantiles and summary" `Quick test_metrics_quantiles;
      ] );
    ( "obs.engine",
      [
        tc "simulated clock monotonicity" `Quick test_clock_monotonicity;
        tc "dispatch span count = ops dispatched" `Quick
          test_eager_dispatch_span_count;
      ] );
    ( "obs.stats",
      [
        tc "one snapshot type for both runtimes" `Quick test_unified_stats_shape;
        tc "reset_stats zeroes everything" `Quick test_reset_stats;
        tc "cache-hit counters vs recompile ablation" `Quick
          test_lazy_cache_hit_counter_vs_ablation;
      ] );
    ( "obs.chrome_trace",
      [
        tc "JSON round-trip and overlap" `Quick test_chrome_trace_round_trip;
        tc "json parser" `Quick test_json_parser;
      ] );
    ( "obs.backend_defaults",
      [ tc "stride defaults identical across backends" `Quick test_stride_defaults_agree ] );
  ]
