(** Tests for the simulated-accelerator substrate: op cost metadata, the
    roofline cost model, the asynchronous engine clocks (§3.2's pipeline),
    and the data-parallel cluster model (Table 1's scaling machinery). *)

module Op = S4o_device.Op_info
module Spec = S4o_device.Device_spec
module Engine = S4o_device.Engine
module Cluster = S4o_device.Cluster

(* {1 Op_info} *)

let test_op_info_elementwise () =
  let op = Op.elementwise "add" ~inputs:[ [| 4; 4 |]; [| 4; 4 |] ] ~output:[| 4; 4 |] () in
  Test_util.check_int "flops = numel" 16 op.Op.flops;
  Test_util.check_int "bytes in" (2 * 64) op.Op.bytes_in;
  Test_util.check_int "bytes out" 64 op.Op.bytes_out

let test_op_info_matmul () =
  let op = Op.matmul ~m:2 ~k:3 ~n:4 in
  Test_util.check_int "2mkn flops" 48 op.Op.flops;
  Test_util.check_true "contraction kind" (op.Op.kind = Op.Contraction)

let test_op_info_fused () =
  let a = Op.elementwise "a" ~inputs:[ [| 8 |] ] ~output:[| 8 |] () in
  let b = Op.elementwise "b" ~inputs:[ [| 8 |] ] ~output:[| 8 |] () in
  let f = Op.fused ~members:[ a; b ] ~external_in_bytes:32 ~external_out_bytes:32 in
  Test_util.check_int "fused flops sum" 16 f.Op.flops;
  Test_util.check_int "fused external bytes only" 32 f.Op.bytes_in;
  Test_util.check_true "fused kind" (f.Op.kind = Op.Fused 2)

(* {1 Roofline} *)

let tiny_spec =
  {
    Spec.name = "test";
    sustained_flops = 100.0;
    elementwise_flops = 10.0;
    mem_bandwidth = 1000.0;
    kernel_launch = 0.5;
    memory_capacity = 1024;
  }

let test_roofline_compute_bound () =
  (* contraction: 1000 flops / 100 = 10s; memory 100/1000 = 0.1s -> compute *)
  let op =
    { Op.name = "mm"; kind = Op.Contraction; flops = 1000; bytes_in = 50; bytes_out = 50 }
  in
  Test_util.check_close "compute bound + launch" 10.5 (Spec.kernel_time tiny_spec op)

let test_roofline_memory_bound () =
  (* elementwise: 1 flop, 10_000 bytes -> 10s memory *)
  let op =
    { Op.name = "add"; kind = Op.Elementwise; flops = 1; bytes_in = 5000; bytes_out = 5000 }
  in
  Test_util.check_close "memory bound + launch" 10.5 (Spec.kernel_time tiny_spec op)

let test_roofline_elementwise_rate () =
  (* elementwise uses the lower rate: 100 flops / 10 = 10s *)
  let op =
    { Op.name = "exp"; kind = Op.Elementwise; flops = 100; bytes_in = 1; bytes_out = 1 }
  in
  Test_util.check_close "elementwise rate" 10.5 (Spec.kernel_time tiny_spec op)

(* {1 Engine: async pipeline} *)

let cheap_op =
  { Op.name = "k"; kind = Op.Contraction; flops = 100; bytes_in = 0; bytes_out = 0 }
(* 1s on tiny_spec + 0.5 launch = 1.5s per kernel *)

let test_engine_async_dispatch () =
  let e = Engine.create tiny_spec in
  (* host runs ahead: dispatch costs no host time by itself *)
  ignore (Engine.dispatch e cheap_op);
  ignore (Engine.dispatch e cheap_op);
  Test_util.check_close "host still at 0" 0.0 (Engine.host_time e);
  Test_util.check_close "device queue = 3s" 3.0 (Engine.device_ready_at e);
  Test_util.check_close "pipeline depth" 3.0 (Engine.pipeline_depth e)

let test_engine_sync_stalls_host () =
  let e = Engine.create tiny_spec in
  ignore (Engine.dispatch e cheap_op);
  Engine.sync e;
  Test_util.check_close "host advanced to device" 1.5 (Engine.host_time e);
  Test_util.check_close "stall recorded" 1.5 (Engine.host_stall_time e);
  Test_util.check_close "pipeline drained" 0.0 (Engine.pipeline_depth e)

let test_engine_host_ahead_of_device () =
  let e = Engine.create tiny_spec in
  Engine.spend_host e 10.0;
  (* kernel starts when the host issues it, not before *)
  let done_at = Engine.dispatch e cheap_op in
  Test_util.check_close "kernel starts at host time" 11.5 done_at;
  Engine.sync e;
  Test_util.check_close "no stall when host was slower" 11.5 (Engine.host_time e)

let test_engine_stats () =
  let e = Engine.create tiny_spec in
  ignore (Engine.dispatch e cheap_op);
  ignore (Engine.dispatch e cheap_op);
  Test_util.check_int "kernel count" 2 (Engine.kernels_launched e);
  Test_util.check_close "busy time" 3.0 (Engine.device_busy_time e);
  Engine.reset e;
  Test_util.check_int "reset clears" 0 (Engine.kernels_launched e)

let test_engine_memory_tracking () =
  let e = Engine.create tiny_spec in
  Engine.alloc e 100;
  Engine.alloc e 200;
  Test_util.check_int "live" 300 (Engine.live_bytes e);
  Engine.free e 250;
  Test_util.check_int "after free" 50 (Engine.live_bytes e);
  Test_util.check_int "peak" 300 (Engine.peak_bytes e)

(* {1 Cluster} *)

let test_cluster_single_core_no_allreduce () =
  let c = Cluster.create ~cores:1 Spec.tpu_v3_core in
  Test_util.check_close "no all-reduce alone" 0.0
    (Cluster.all_reduce_time c ~bytes:1_000_000)

let test_cluster_allreduce_grows_with_cores () =
  let t cores =
    Cluster.all_reduce_time
      (Cluster.create ~cores Spec.tpu_v3_core)
      ~bytes:100_000_000
  in
  Test_util.check_true "8 < 64 cores" (t 8 < t 64);
  Test_util.check_true "64 < 512 cores" (t 64 < t 512)

let test_cluster_allreduce_scales_with_bytes () =
  let c = Cluster.create ~cores:16 Spec.tpu_v3_core in
  Test_util.check_true "more bytes, more time"
    (Cluster.all_reduce_time c ~bytes:1_000_000
    < Cluster.all_reduce_time c ~bytes:100_000_000)

let test_cluster_step_time_host_bound () =
  let c = Cluster.create ~cores:4 Spec.tpu_v3_core in
  let step = Cluster.step_time c ~compute:0.01 ~host:5.0 ~gradient_bytes:1000 in
  Test_util.check_close "host dominates" 5.0 step

let test_cluster_straggler_parameter () =
  (* straggler is a Cluster.create parameter now, not a hard-coded constant *)
  let step straggler =
    let c = Cluster.create ~straggler ~cores:64 Spec.tpu_v3_core in
    Cluster.step_time c ~compute:0.1 ~host:0.0 ~gradient_bytes:1_000_000
  in
  let c = Cluster.create ~cores:64 Spec.tpu_v3_core in
  Test_util.check_close "default recorded" Cluster.default_straggler
    (Cluster.straggler_factor c);
  let ideal = step 0.0 in
  let all_reduce = Cluster.all_reduce_time c ~bytes:1_000_000 in
  Test_util.check_close "straggler 0 = compute + all-reduce"
    (0.1 +. all_reduce) ideal;
  Test_util.check_true "jitter slows the step" (step 0.05 > ideal);
  Test_util.check_true "more jitter, slower" (step 0.1 > step 0.05);
  Test_util.check_raises_any "negative rejected" (fun () ->
      Cluster.create ~straggler:(-0.1) ~cores:4 Spec.tpu_v3_core)

let test_cluster_per_core_throughput_degrades_slowly () =
  (* the Table 1 property: per-core throughput loss from 16 to 128 cores is
     modest (under 10%) for a ResNet-50-sized gradient *)
  let compute = 0.2 and grad = 100 * 1024 * 1024 in
  let per_core cores =
    let c = Cluster.create ~cores Spec.tpu_v3_core in
    let step = Cluster.step_time c ~compute ~host:0.05 ~gradient_bytes:grad in
    1.0 /. step
  in
  let p16 = per_core 16 and p128 = per_core 128 in
  Test_util.check_true "some degradation" (p128 < p16);
  Test_util.check_true "under 10%" (p128 > 0.9 *. p16)

(* {1 Engine invariants, property-based: arbitrary interleavings of host
   work, kernel dispatches, and syncs must keep the clocks coherent} *)

type engine_action = Spend of float | Dispatch of int * int | Sync

let engine_actions_arb =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 60)
        (frequency
           [
             (3, map (fun us -> Spend (float_of_int us *. 1e-6)) (int_range 1 200));
             ( 5,
               map2
                 (fun flops bytes -> Dispatch (flops, bytes))
                 (int_range 1 200_000_000) (int_range 4 4_000_000) );
             (2, return Sync);
           ]))
  in
  let print l =
    String.concat ";"
      (List.map
         (function
           | Spend s -> Printf.sprintf "spend %.0fus" (1e6 *. s)
           | Dispatch (f, b) -> Printf.sprintf "dispatch %d/%d" f b
           | Sync -> "sync")
         l)
  in
  QCheck.make ~print gen

let apply_engine_action engine = function
  | Spend s -> Engine.spend_host engine s
  | Dispatch (flops, bytes) ->
      ignore
        (Engine.dispatch engine
           {
             Op.name = "k";
             kind = Op.Elementwise;
             flops;
             bytes_in = bytes;
             bytes_out = bytes;
           })
  | Sync -> Engine.sync engine

let prop_engine_invariants actions =
  let engine = Engine.create Spec.gtx1080 in
  let ok = ref true in
  let last_host = ref 0.0 in
  List.iter
    (fun a ->
      apply_engine_action engine a;
      let h = Engine.host_time engine in
      (* host clock never runs backwards *)
      if h < !last_host -. 1e-12 then ok := false;
      last_host := h;
      (* pipeline depth is never negative *)
      if Engine.pipeline_depth engine < 0.0 then ok := false)
    actions;
  Engine.sync engine;
  (* after a sync the pipeline is drained *)
  if Engine.pipeline_depth engine <> 0.0 then ok := false;
  (* kernels execute serially: device-track spans never overlap *)
  let device_spans =
    List.filter
      (fun (s : S4o_obs.Recorder.span) -> s.S4o_obs.Recorder.track = S4o_obs.Recorder.Device)
      (S4o_obs.Recorder.spans (Engine.recorder engine))
  in
  let sorted =
    List.sort
      (fun (a : S4o_obs.Recorder.span) (b : S4o_obs.Recorder.span) ->
        compare a.S4o_obs.Recorder.start b.S4o_obs.Recorder.start)
      device_spans
  in
  let rec non_overlapping = function
    | (a : S4o_obs.Recorder.span) :: (b :: _ as rest) ->
        a.S4o_obs.Recorder.finish >= a.S4o_obs.Recorder.start
        && b.S4o_obs.Recorder.start >= a.S4o_obs.Recorder.finish -. 1e-12
        && non_overlapping rest
    | [ a ] -> a.S4o_obs.Recorder.finish >= a.S4o_obs.Recorder.start
    | [] -> true
  in
  if not (non_overlapping sorted) then ok := false;
  !ok

let suite =
  let tc = Alcotest.test_case in
  [
    ( "device.op_info",
      [
        tc "elementwise" `Quick test_op_info_elementwise;
        tc "matmul" `Quick test_op_info_matmul;
        tc "fused external traffic" `Quick test_op_info_fused;
      ] );
    ( "device.roofline",
      [
        tc "compute bound" `Quick test_roofline_compute_bound;
        tc "memory bound" `Quick test_roofline_memory_bound;
        tc "elementwise rate" `Quick test_roofline_elementwise_rate;
      ] );
    ( "device.engine",
      [
        tc "async dispatch fills pipeline" `Quick test_engine_async_dispatch;
        tc "sync stalls host" `Quick test_engine_sync_stalls_host;
        tc "host slower than device" `Quick test_engine_host_ahead_of_device;
        tc "statistics" `Quick test_engine_stats;
        tc "memory tracking" `Quick test_engine_memory_tracking;
      ] );
    ( "device.cluster",
      [
        tc "single core" `Quick test_cluster_single_core_no_allreduce;
        tc "all-reduce grows with cores" `Quick test_cluster_allreduce_grows_with_cores;
        tc "all-reduce grows with bytes" `Quick test_cluster_allreduce_scales_with_bytes;
        tc "host-bound step" `Quick test_cluster_step_time_host_bound;
        tc "straggler is a create parameter" `Quick test_cluster_straggler_parameter;
        tc "per-core throughput (Table 1 shape)" `Quick
          test_cluster_per_core_throughput_degrades_slowly;
      ] );
    ( "device.engine.invariants",
      [
        Test_util.qtest ~count:300 "clocks and kernel spans stay coherent"
          engine_actions_arb prop_engine_invariants;
      ] );
  ]
