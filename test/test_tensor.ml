(** Tests for the tensor substrate: shapes, the PRNG, the naive Dense tensor
    (§3.1), and the convolution/pooling kernels with their backward passes. *)

open S4o_tensor
module D = Dense

(* {1 Shape} *)

let test_shape_basics () =
  Test_util.check_int "rank" 3 (Shape.rank [| 2; 3; 4 |]);
  Test_util.check_int "numel" 24 (Shape.numel [| 2; 3; 4 |]);
  Test_util.check_int "scalar numel" 1 (Shape.numel [||]);
  Test_util.check_string "to_string" "[2x3x4]" (Shape.to_string [| 2; 3; 4 |]);
  Test_util.check_string "scalar to_string" "[]" (Shape.to_string [||])

let test_shape_strides () =
  Test_util.check_true "row major strides"
    (Shape.strides [| 2; 3; 4 |] = [| 12; 4; 1 |]);
  Test_util.check_int "offset" (12 + 8 + 3)
    (Shape.offset (Shape.strides [| 2; 3; 4 |]) [| 1; 2; 3 |]);
  Test_util.check_true "unravel inverts offset"
    (Shape.unravel [| 2; 3; 4 |] 23 = [| 1; 2; 3 |])

let test_shape_broadcast () =
  Test_util.check_true "equal shapes" (Shape.broadcast [| 2; 3 |] [| 2; 3 |] = [| 2; 3 |]);
  Test_util.check_true "stretch ones" (Shape.broadcast [| 2; 1 |] [| 1; 3 |] = [| 2; 3 |]);
  Test_util.check_true "rank extension" (Shape.broadcast [| 4; 2; 3 |] [| 3 |] = [| 4; 2; 3 |]);
  Test_util.check_true "scalar broadcasts" (Shape.broadcast [||] [| 5; 5 |] = [| 5; 5 |]);
  Test_util.check_raises_any "incompatible" (fun () -> Shape.broadcast [| 2 |] [| 3 |])

let test_shape_reduce_axes () =
  Test_util.check_true "drop axes" (Shape.reduce_axes [| 2; 3; 4 |] [ 0; 2 ] = [| 3 |]);
  Test_util.check_true "keep dims"
    (Shape.reduce_axes ~keep_dims:true [| 2; 3; 4 |] [ 1 ] = [| 2; 1; 4 |]);
  Test_util.check_raises_any "out of range" (fun () ->
      Shape.reduce_axes [| 2 |] [ 5 ]);
  Test_util.check_raises_any "duplicate" (fun () ->
      Shape.reduce_axes [| 2; 3 |] [ 1; 1 ])

let test_shape_concat_dim () =
  Test_util.check_true "concat axis 0"
    (Shape.concat_dim [| 2; 3 |] [| 4; 3 |] 0 = [| 6; 3 |]);
  Test_util.check_raises_any "mismatched other dim" (fun () ->
      Shape.concat_dim [| 2; 3 |] [| 4; 5 |] 0)

let qcheck_broadcast_commutes =
  Test_util.qtest "broadcast is symmetric"
    QCheck.(pair (list_of_size (Gen.int_range 0 3) (int_range 1 4))
              (list_of_size (Gen.int_range 0 3) (int_range 1 4)))
    (fun (a, b) ->
      let a = Array.of_list a and b = Array.of_list b in
      match (Shape.broadcast a b, Shape.broadcast b a) with
      | x, y -> x = y
      | exception Shape.Shape_error _ -> (
          match Shape.broadcast b a with
          | _ -> false
          | exception Shape.Shape_error _ -> true))

(* {1 Prng} *)

let test_prng_deterministic () =
  let a = Prng.create 99 and b = Prng.create 99 in
  for _ = 1 to 50 do
    Test_util.check_float "same stream" (Prng.float a) (Prng.float b)
  done

let test_prng_int_range () =
  let g = Prng.create 1 in
  for _ = 1 to 1000 do
    let v = Prng.int g 7 in
    Test_util.check_true "in range" (v >= 0 && v < 7)
  done

let test_prng_float_range () =
  let g = Prng.create 2 in
  for _ = 1 to 1000 do
    let v = Prng.float g in
    Test_util.check_true "unit interval" (v >= 0.0 && v < 1.0)
  done

let test_prng_normal_moments () =
  let g = Prng.create 3 in
  let n = 20_000 in
  let samples = Array.init n (fun _ -> Prng.normal g) in
  let mean = Array.fold_left ( +. ) 0.0 samples /. float_of_int n in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 samples
    /. float_of_int n
  in
  Test_util.check_close ~eps:0.05 "mean ~ 0" 0.0 mean;
  Test_util.check_close ~eps:0.05 "var ~ 1" 1.0 var

let test_prng_permutation () =
  let g = Prng.create 4 in
  let p = Prng.permutation g 100 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Test_util.check_true "is a permutation" (sorted = Array.init 100 Fun.id)

let test_prng_split_independent () =
  let g = Prng.create 5 in
  let h = Prng.split g in
  Test_util.check_true "split streams differ"
    (Array.init 10 (fun _ -> Prng.float g) <> Array.init 10 (fun _ -> Prng.float h))

(* {1 Dense: construction and value semantics} *)

let test_dense_create () =
  Test_util.check_float "zeros" 0.0 (D.get (D.zeros [| 2; 2 |]) [| 1; 1 |]);
  Test_util.check_float "ones" 1.0 (D.get (D.ones [| 2; 2 |]) [| 0; 1 |]);
  Test_util.check_float "scalar item" 7.5 (D.item (D.scalar 7.5));
  Test_util.check_raises_any "of_array length" (fun () ->
      D.of_array [| 2; 2 |] [| 1.0 |])

let test_dense_value_semantics () =
  let a = D.of_array [| 3 |] [| 1.0; 2.0; 3.0 |] in
  let b = D.set a [| 1 |] 99.0 in
  Test_util.check_float "original untouched" 2.0 (D.get a [| 1 |]);
  Test_util.check_float "copy updated" 99.0 (D.get b [| 1 |]);
  let c = D.copy a in
  D.fill_inplace c 0.0;
  Test_util.check_float "copy is disjoint" 1.0 (D.get a [| 0 |])

let test_dense_of_array_copies () =
  let src = [| 1.0; 2.0 |] in
  let t = D.of_array [| 2 |] src in
  src.(0) <- 50.0;
  Test_util.check_float "input buffer not aliased" 1.0 (D.get t [| 0 |])

let test_dense_init () =
  let t = D.init [| 2; 3 |] (fun idx -> float_of_int ((10 * idx.(0)) + idx.(1))) in
  Test_util.check_float "init by index" 12.0 (D.get t [| 1; 2 |]);
  let u = D.arange 5 in
  Test_util.check_float "arange" 4.0 (D.get u [| 4 |]);
  let l = D.linspace ~lo:0.0 ~hi:1.0 5 in
  Test_util.check_close "linspace" 0.25 (D.get l [| 1 |])

(* {1 Dense: elementwise and broadcasting} *)

let test_dense_elementwise () =
  let a = D.of_array [| 3 |] [| 1.0; -2.0; 3.0 |] in
  let b = D.of_array [| 3 |] [| 4.0; 5.0; -6.0 |] in
  Test_util.check_tensor "add" (D.of_array [| 3 |] [| 5.0; 3.0; -3.0 |]) (D.add a b);
  Test_util.check_tensor "mul" (D.of_array [| 3 |] [| 4.0; -10.0; -18.0 |]) (D.mul a b);
  Test_util.check_tensor "relu" (D.of_array [| 3 |] [| 1.0; 0.0; 3.0 |]) (D.relu a);
  Test_util.check_tensor "neg" (D.of_array [| 3 |] [| -1.0; 2.0; -3.0 |]) (D.neg a);
  Test_util.check_tensor "abs" (D.of_array [| 3 |] [| 1.0; 2.0; 3.0 |]) (D.abs a);
  Test_util.check_tensor "sign" (D.of_array [| 3 |] [| 1.0; -1.0; 1.0 |]) (D.sign a);
  Test_util.check_tensor "clip"
    (D.of_array [| 3 |] [| 1.0; -1.0; 1.0 |])
    (D.clip ~lo:(-1.0) ~hi:1.0 a)

let test_dense_broadcast_binary () =
  let a = D.of_array [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let row = D.of_array [| 3 |] [| 10.; 20.; 30. |] in
  let col = D.of_array [| 2; 1 |] [| 100.; 200. |] in
  Test_util.check_tensor "matrix + row"
    (D.of_array [| 2; 3 |] [| 11.; 22.; 33.; 14.; 25.; 36. |])
    (D.add a row);
  Test_util.check_tensor "matrix + col"
    (D.of_array [| 2; 3 |] [| 101.; 102.; 103.; 204.; 205.; 206. |])
    (D.add a col);
  Test_util.check_tensor "scalar * matrix"
    (D.scale 2.0 a)
    (D.mul (D.scalar 2.0) a)

let test_dense_broadcast_to_unbroadcast () =
  let row = D.of_array [| 3 |] [| 1.; 2.; 3. |] in
  let big = D.broadcast_to row [| 4; 3 |] in
  Test_util.check_true "broadcast shape" (D.shape big = [| 4; 3 |]);
  Test_util.check_float "broadcast value" 2.0 (D.get big [| 3; 1 |]);
  (* unbroadcast sums the stretched axis: adjoint of broadcasting *)
  Test_util.check_tensor "unbroadcast sums"
    (D.of_array [| 3 |] [| 4.; 8.; 12. |])
    (D.unbroadcast big [| 3 |])

let qcheck_unbroadcast_adjoint =
  (* <broadcast x, y> = <x, unbroadcast y> : the defining adjoint property *)
  Test_util.qtest ~count:100 "unbroadcast is the adjoint of broadcast_to"
    QCheck.(pair (int_range 1 4) (int_range 1 4))
    (fun (rows, cols) ->
      let g = Prng.create ((rows * 17) + cols) in
      let x = D.rand_normal g [| cols |] in
      let y = D.rand_normal g [| rows; cols |] in
      let lhs = D.sum (D.mul (D.broadcast_to x [| rows; cols |]) y) in
      let rhs = D.sum (D.mul x (D.unbroadcast y [| cols |])) in
      Float.abs (lhs -. rhs) < 1e-9 *. Float.max 1.0 (Float.abs lhs))

(* {1 Dense: reductions} *)

let test_dense_reductions () =
  let a = D.of_array [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  Test_util.check_float "sum" 21.0 (D.sum a);
  Test_util.check_float "mean" 3.5 (D.mean a);
  Test_util.check_float "max" 6.0 (D.max_value a);
  Test_util.check_float "min" 1.0 (D.min_value a);
  Test_util.check_tensor "sum axis 0"
    (D.of_array [| 3 |] [| 5.; 7.; 9. |])
    (D.sum_axes a [ 0 ]);
  Test_util.check_tensor "sum axis 1"
    (D.of_array [| 2 |] [| 6.; 15. |])
    (D.sum_axes a [ 1 ]);
  Test_util.check_tensor "sum both axes keep"
    (D.of_array [| 1; 1 |] [| 21. |])
    (D.sum_axes ~keep_dims:true a [ 0; 1 ]);
  Test_util.check_tensor "mean axis"
    (D.of_array [| 3 |] [| 2.5; 3.5; 4.5 |])
    (D.mean_axes a [ 0 ])

let test_dense_argmax_rows () =
  let a = D.of_array [| 2; 3 |] [| 1.; 9.; 3.; 7.; 2.; 6. |] in
  Test_util.check_true "argmax per row" (D.argmax_rows a = [| 1; 0 |])

(* {1 Dense: shape ops} *)

let test_dense_reshape_transpose () =
  let a = D.of_array [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let r = D.reshape a [| 3; 2 |] in
  Test_util.check_float "reshape row-major" 3.0 (D.get r [| 1; 0 |]);
  let t = D.transpose a in
  Test_util.check_true "transpose shape" (D.shape t = [| 3; 2 |]);
  Test_util.check_float "transpose value" 4.0 (D.get t [| 0; 1 |]);
  Test_util.check_tensor "double transpose" a (D.transpose t)

let test_dense_permute () =
  let a = D.init [| 2; 3; 4 |] (fun i -> float_of_int ((100 * i.(0)) + (10 * i.(1)) + i.(2))) in
  let p = D.permute a [| 2; 0; 1 |] in
  Test_util.check_true "permute shape" (D.shape p = [| 4; 2; 3 |]);
  Test_util.check_float "permute value" 123.0 (D.get p [| 3; 1; 2 |])

let test_dense_concat_slice () =
  let a = D.of_array [| 2; 2 |] [| 1.; 2.; 3.; 4. |] in
  let b = D.of_array [| 1; 2 |] [| 5.; 6. |] in
  let c = D.concat a b 0 in
  Test_util.check_true "concat shape" (D.shape c = [| 3; 2 |]);
  Test_util.check_float "concat tail" 6.0 (D.get c [| 2; 1 |]);
  let s = D.slice c ~axis:0 ~start:1 ~len:2 in
  Test_util.check_tensor "slice"
    (D.of_array [| 2; 2 |] [| 3.; 4.; 5.; 6. |])
    s;
  Test_util.check_raises_any "slice bounds" (fun () ->
      D.slice c ~axis:0 ~start:2 ~len:2)

let test_dense_one_hot () =
  let labels = D.of_array [| 3 |] [| 0.; 2.; 1. |] in
  let oh = D.one_hot ~classes:3 labels in
  Test_util.check_tensor "one hot"
    (D.of_array [| 3; 3 |] [| 1.; 0.; 0.; 0.; 0.; 1.; 0.; 1.; 0. |])
    oh;
  Test_util.check_raises_any "label out of range" (fun () ->
      D.one_hot ~classes:2 labels)

(* {1 Dense: linear algebra} *)

let test_dense_matmul () =
  let a = D.of_array [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let b = D.of_array [| 3; 2 |] [| 7.; 8.; 9.; 10.; 11.; 12. |] in
  Test_util.check_tensor "matmul"
    (D.of_array [| 2; 2 |] [| 58.; 64.; 139.; 154. |])
    (D.matmul a b);
  Test_util.check_raises_any "inner mismatch" (fun () -> D.matmul a a)

let test_dense_dot () =
  let a = D.of_array [| 3 |] [| 1.; 2.; 3. |] in
  let b = D.of_array [| 3 |] [| 4.; 5.; 6. |] in
  Test_util.check_float "dot" 32.0 (D.dot a b)

let qcheck_matmul_associative =
  Test_util.qtest ~count:50 "matmul is associative"
    QCheck.(int_range 1 5)
    (fun n ->
      let g = Prng.create n in
      let a = D.rand_normal g [| n; n |] in
      let b = D.rand_normal g [| n; n |] in
      let c = D.rand_normal g [| n; n |] in
      D.allclose ~rtol:1e-6 ~atol:1e-9
        (D.matmul (D.matmul a b) c)
        (D.matmul a (D.matmul b c)))

let qcheck_matmul_transpose =
  Test_util.qtest ~count:50 "(AB)^T = B^T A^T"
    QCheck.(pair (int_range 1 5) (int_range 1 5))
    (fun (m, n) ->
      let g = Prng.create ((m * 31) + n) in
      let a = D.rand_normal g [| m; n |] in
      let b = D.rand_normal g [| n; m |] in
      D.allclose
        (D.transpose (D.matmul a b))
        (D.matmul (D.transpose b) (D.transpose a)))

(* {1 Dense: NN math} *)

let test_dense_softmax () =
  let a = D.of_array [| 2; 3 |] [| 1.; 2.; 3.; 1000.; 1000.; 1000. |] in
  let s = D.softmax a in
  (* rows sum to one; the huge row checks numerical stability *)
  Test_util.check_close "row 0 sums to 1" 1.0
    (D.get s [| 0; 0 |] +. D.get s [| 0; 1 |] +. D.get s [| 0; 2 |]);
  Test_util.check_close "stable uniform" (1.0 /. 3.0) (D.get s [| 1; 1 |]);
  let ls = D.log_softmax a in
  Test_util.check_close "log_softmax = log softmax" (Float.log (D.get s [| 0; 2 |]))
    (D.get ls [| 0; 2 |])

(* {1 In-place ops} *)

let test_dense_inplace () =
  let a = D.of_array [| 3 |] [| 1.; 2.; 3. |] in
  let b = D.of_array [| 3 |] [| 10.; 10.; 10. |] in
  D.axpy_inplace ~alpha:0.5 a b;
  Test_util.check_tensor "axpy" (D.of_array [| 3 |] [| 6.; 7.; 8. |]) a;
  D.scale_inplace a 2.0;
  Test_util.check_tensor "scale_inplace" (D.of_array [| 3 |] [| 12.; 14.; 16. |]) a;
  D.add_at_inplace a [| 0 |] 1.0;
  Test_util.check_float "add_at" 13.0 (D.get a [| 0 |])

(* {1 Convolution} *)

let test_conv2d_identity_kernel () =
  (* 1x1 identity filter: output = input *)
  let g = Prng.create 10 in
  let x = D.rand_normal g [| 1; 4; 4; 1 |] in
  let f = D.of_array [| 1; 1; 1; 1 |] [| 1.0 |] in
  Test_util.check_tensor "1x1 conv is identity"
    x
    (Convolution.conv2d ~padding:Convolution.Valid x f)

let test_conv2d_known_values () =
  (* 2x2 input, 2x2 all-ones filter, valid: single output = sum *)
  let x = D.of_array [| 1; 2; 2; 1 |] [| 1.; 2.; 3.; 4. |] in
  let f = D.ones [| 2; 2; 1; 1 |] in
  let y = Convolution.conv2d ~padding:Convolution.Valid x f in
  Test_util.check_true "valid output shape" (D.shape y = [| 1; 1; 1; 1 |]);
  Test_util.check_float "sum under window" 10.0 (D.item y)

let test_conv2d_same_padding_shape () =
  let x = D.zeros [| 2; 7; 7; 3 |] in
  let f = D.zeros [| 3; 3; 3; 5 |] in
  let y = Convolution.conv2d ~padding:Convolution.Same x f in
  Test_util.check_true "same keeps spatial" (D.shape y = [| 2; 7; 7; 5 |]);
  let y2 = Convolution.conv2d ~stride:(2, 2) ~padding:Convolution.Same x f in
  Test_util.check_true "same stride 2" (D.shape y2 = [| 2; 4; 4; 5 |])

let test_conv2d_channels () =
  (* input channels summed: filter [1;1;2;1] = [1;10] *)
  let x = D.of_array [| 1; 1; 2; 2 |] [| 1.; 2.; 3.; 4. |] in
  let f = D.of_array [| 1; 1; 2; 1 |] [| 1.; 10. |] in
  let y = Convolution.conv2d ~padding:Convolution.Valid x f in
  Test_util.check_tensor "channel mix"
    (D.of_array [| 1; 1; 2; 1 |] [| 21.; 43. |])
    y

let conv_loss ~stride ~padding x f =
  D.sum (D.mul (Convolution.conv2d ~stride ~padding x f)
           (Convolution.conv2d ~stride ~padding x f))

let test_conv2d_backward_input_finite_diff () =
  let g = Prng.create 20 in
  let x = D.rand_normal g [| 1; 5; 5; 2 |] in
  let f = D.rand_normal g [| 3; 3; 2; 3 |] in
  let stride = (2, 2) and padding = Convolution.Same in
  let y = Convolution.conv2d ~stride ~padding x f in
  (* loss = sum(y^2); dL/dx = conv_backward_input(f, 2y) *)
  let grad = Convolution.conv2d_backward_input ~stride ~padding
      ~input_shape:(D.shape x) f (D.scale 2.0 y) in
  let h = 1e-4 in
  (* check a handful of positions against central differences *)
  List.iter
    (fun idx ->
      let xp = D.set x idx (D.get x idx +. h) in
      let xm = D.set x idx (D.get x idx -. h) in
      let fd = (conv_loss ~stride ~padding xp f -. conv_loss ~stride ~padding xm f) /. (2.0 *. h) in
      Test_util.check_close ~eps:1e-2 "input grad matches fd" fd (D.get grad idx))
    [ [| 0; 0; 0; 0 |]; [| 0; 2; 3; 1 |]; [| 0; 4; 4; 0 |]; [| 0; 1; 2; 1 |] ]

let test_conv2d_backward_filter_finite_diff () =
  let g = Prng.create 21 in
  let x = D.rand_normal g [| 2; 4; 4; 1 |] in
  let f = D.rand_normal g [| 3; 3; 1; 2 |] in
  let stride = (1, 1) and padding = Convolution.Valid in
  let y = Convolution.conv2d ~stride ~padding x f in
  let grad = Convolution.conv2d_backward_filter ~stride ~padding
      ~filter_shape:(D.shape f) x (D.scale 2.0 y) in
  let h = 1e-4 in
  List.iter
    (fun idx ->
      let fp = D.set f idx (D.get f idx +. h) in
      let fm = D.set f idx (D.get f idx -. h) in
      let fd = (conv_loss ~stride ~padding x fp -. conv_loss ~stride ~padding x fm) /. (2.0 *. h) in
      Test_util.check_close ~eps:1e-2 "filter grad matches fd" fd (D.get grad idx))
    [ [| 0; 0; 0; 0 |]; [| 1; 2; 0; 1 |]; [| 2; 1; 0; 0 |] ]

let test_avg_pool () =
  let x = D.of_array [| 1; 2; 2; 1 |] [| 1.; 2.; 3.; 4. |] in
  let y = Convolution.avg_pool2d ~size:(2, 2) ~stride:(2, 2) x in
  Test_util.check_float "avg pool" 2.5 (D.item y);
  let back = Convolution.avg_pool2d_backward ~size:(2, 2) ~stride:(2, 2)
      ~input_shape:[| 1; 2; 2; 1 |] (D.of_array [| 1; 1; 1; 1 |] [| 8.0 |]) in
  Test_util.check_tensor "avg pool backward spreads evenly"
    (D.of_array [| 1; 2; 2; 1 |] [| 2.; 2.; 2.; 2. |])
    back

let test_max_pool () =
  let x = D.of_array [| 1; 2; 2; 1 |] [| 1.; 7.; 3.; 4. |] in
  let y = Convolution.max_pool2d ~size:(2, 2) ~stride:(2, 2) x in
  Test_util.check_float "max pool" 7.0 (D.item y);
  let back = Convolution.max_pool2d_backward ~size:(2, 2) ~stride:(2, 2) x
      (D.of_array [| 1; 1; 1; 1 |] [| 5.0 |]) in
  Test_util.check_tensor "max pool backward routes to argmax"
    (D.of_array [| 1; 2; 2; 1 |] [| 0.; 5.; 0.; 0. |])
    back

let test_conv2d_flops () =
  (* [1;4;4;1] x [2;2;1;1] valid -> 3x3 output; 2*9*4 = 72 flops *)
  Test_util.check_int "conv flops" 72
    (Convolution.conv2d_flops ~padding:Convolution.Valid
       ~input:[| 1; 4; 4; 1 |] [| 2; 2; 1; 1 |])

let qcheck_conv_linear_in_input =
  Test_util.qtest ~count:40 "conv2d is linear in the input"
    QCheck.(int_range 1 4)
    (fun seed ->
      let g = Prng.create seed in
      let x1 = D.rand_normal g [| 1; 4; 4; 2 |] in
      let x2 = D.rand_normal g [| 1; 4; 4; 2 |] in
      let f = D.rand_normal g [| 3; 3; 2; 2 |] in
      let conv x = Convolution.conv2d ~padding:Convolution.Same x f in
      D.allclose ~rtol:1e-5 ~atol:1e-7
        (conv (D.add x1 x2))
        (D.add (conv x1) (conv x2)))

let suite =
  let tc = Alcotest.test_case in
  [
    ( "tensor.shape",
      [
        tc "basics" `Quick test_shape_basics;
        tc "strides and offsets" `Quick test_shape_strides;
        tc "broadcast" `Quick test_shape_broadcast;
        tc "reduce axes" `Quick test_shape_reduce_axes;
        tc "concat dim" `Quick test_shape_concat_dim;
        qcheck_broadcast_commutes;
      ] );
    ( "tensor.prng",
      [
        tc "deterministic" `Quick test_prng_deterministic;
        tc "int range" `Quick test_prng_int_range;
        tc "float range" `Quick test_prng_float_range;
        tc "normal moments" `Quick test_prng_normal_moments;
        tc "permutation" `Quick test_prng_permutation;
        tc "split independence" `Quick test_prng_split_independent;
      ] );
    ( "tensor.dense",
      [
        tc "creation" `Quick test_dense_create;
        tc "value semantics" `Quick test_dense_value_semantics;
        tc "of_array copies" `Quick test_dense_of_array_copies;
        tc "init / arange / linspace" `Quick test_dense_init;
        tc "elementwise" `Quick test_dense_elementwise;
        tc "broadcasting binary ops" `Quick test_dense_broadcast_binary;
        tc "broadcast_to / unbroadcast" `Quick test_dense_broadcast_to_unbroadcast;
        tc "reductions" `Quick test_dense_reductions;
        tc "argmax rows" `Quick test_dense_argmax_rows;
        tc "reshape / transpose" `Quick test_dense_reshape_transpose;
        tc "permute" `Quick test_dense_permute;
        tc "concat / slice" `Quick test_dense_concat_slice;
        tc "one hot" `Quick test_dense_one_hot;
        tc "matmul" `Quick test_dense_matmul;
        tc "dot" `Quick test_dense_dot;
        tc "softmax stability" `Quick test_dense_softmax;
        tc "in-place ops" `Quick test_dense_inplace;
        qcheck_unbroadcast_adjoint;
        qcheck_matmul_associative;
        qcheck_matmul_transpose;
      ] );
    ( "tensor.convolution",
      [
        tc "1x1 identity" `Quick test_conv2d_identity_kernel;
        tc "known values" `Quick test_conv2d_known_values;
        tc "same padding shapes" `Quick test_conv2d_same_padding_shape;
        tc "channel mixing" `Quick test_conv2d_channels;
        tc "backward input vs finite diff" `Quick test_conv2d_backward_input_finite_diff;
        tc "backward filter vs finite diff" `Quick test_conv2d_backward_filter_finite_diff;
        tc "avg pool fwd/bwd" `Quick test_avg_pool;
        tc "max pool fwd/bwd" `Quick test_max_pool;
        tc "flop counting" `Quick test_conv2d_flops;
        qcheck_conv_linear_in_input;
      ] );
  ]

(* {1 Batched linear algebra} *)

let test_batch_matmul () =
  let a = D.init [| 2; 2; 3 |] (fun i -> float_of_int ((i.(0) * 100) + (i.(1) * 10) + i.(2))) in
  let b = D.init [| 2; 3; 2 |] (fun i -> float_of_int ((i.(0) * 100) + (i.(1) * 10) + i.(2))) in
  let c = Dense.batch_matmul a b in
  Test_util.check_true "output shape" (D.shape c = [| 2; 2; 2 |]);
  (* each batch slice equals the 2-D matmul of the slices *)
  for batch = 0 to 1 do
    let slice2 t rows cols =
      D.init_flat [| rows; cols |] (fun f -> D.get_flat t ((batch * rows * cols) + f))
    in
    let expected = D.matmul (slice2 a 2 3) (slice2 b 3 2) in
    for i = 0 to 1 do
      for j = 0 to 1 do
        Test_util.check_float "per-batch matmul" (D.get expected [| i; j |])
          (D.get c [| batch; i; j |])
      done
    done
  done;
  Test_util.check_raises_any "inner mismatch" (fun () -> Dense.batch_matmul a a)

let test_batch_transpose () =
  let a = D.init [| 2; 2; 3 |] (fun i -> float_of_int ((i.(0) * 100) + (i.(1) * 10) + i.(2))) in
  let t = Dense.batch_transpose a in
  Test_util.check_true "shape" (D.shape t = [| 2; 3; 2 |]);
  Test_util.check_float "transposed entry" 112.0 (D.get t [| 1; 2; 1 |]);
  Test_util.check_tensor "involution" a (Dense.batch_transpose t)

let qcheck_batch_matmul_matches_loop =
  Test_util.qtest ~count:40 "batch_matmul = per-slice matmul"
    QCheck.(int_range 1 4)
    (fun bs ->
      let g = Prng.create (bs * 97) in
      let a = D.rand_normal g [| bs; 3; 4 |] in
      let b = D.rand_normal g [| bs; 4; 2 |] in
      let c = Dense.batch_matmul a b in
      let ok = ref true in
      for batch = 0 to bs - 1 do
        let sl t rows cols =
          D.init_flat [| rows; cols |] (fun f -> D.get_flat t ((batch * rows * cols) + f))
        in
        let expected = D.matmul (sl a 3 4) (sl b 4 2) in
        for i = 0 to 2 do
          for j = 0 to 1 do
            if Float.abs (D.get expected [| i; j |] -. D.get c [| batch; i; j |]) > 1e-9
            then ok := false
          done
        done
      done;
      !ok)

let batch_suite =
  let tc = Alcotest.test_case in
  [
    ( "tensor.batched",
      [
        tc "batch matmul" `Quick test_batch_matmul;
        tc "batch transpose" `Quick test_batch_transpose;
        qcheck_batch_matmul_matches_loop;
      ] );
  ]

let suite = suite @ batch_suite

(* {1 Optimized kernels vs the retained naive reference}

   The blocked/parallel Bigarray kernels must agree with {!Reference} (the
   pre-optimization float-array kernels, kept verbatim as the oracle), and
   the parallel paths must be bit-identical to the serial ones. *)

let qcheck_matmul_matches_reference =
  Test_util.qtest ~count:60 "blocked matmul matches naive reference"
    QCheck.(triple (int_range 1 13) (int_range 1 13) (int_range 1 13))
    (fun (m, k, n) ->
      let g = Prng.create ((m * 997) + (k * 31) + n) in
      let a = D.rand_normal g [| m; k |] in
      let b = D.rand_normal g [| k; n |] in
      D.allclose ~rtol:1e-9 ~atol:1e-12 (Reference.matmul a b) (D.matmul a b))

(* Big enough to cross the serial cutoff and exercise blocking edges
   (sizes straddle the 128-wide kc/nc blocks). *)
let test_matmul_reference_large () =
  let g = Prng.create 42 in
  List.iter
    (fun (m, k, n) ->
      let a = D.rand_normal g [| m; k |] in
      let b = D.rand_normal g [| k; n |] in
      Test_util.check_true
        (Printf.sprintf "matmul %dx%dx%d matches reference" m k n)
        (D.allclose ~rtol:1e-9 ~atol:1e-12 (Reference.matmul a b)
           (D.matmul a b)))
    [ (47, 130, 129); (64, 64, 64); (130, 47, 4); (3, 200, 131) ]

let qcheck_batch_matmul_matches_reference =
  Test_util.qtest ~count:40 "batch matmul matches naive reference"
    QCheck.(quad (int_range 1 4) (int_range 1 7) (int_range 1 7) (int_range 1 7))
    (fun (bs, m, k, n) ->
      let g = Prng.create ((bs * 7919) + (m * 997) + (k * 31) + n) in
      let a = D.rand_normal g [| bs; m; k |] in
      let b = D.rand_normal g [| bs; k; n |] in
      D.allclose ~rtol:1e-9 ~atol:1e-12 (Reference.batch_matmul a b)
        (D.batch_matmul a b))

let qcheck_sum_axes_matches_reference =
  Test_util.qtest ~count:60 "sum_axes matches naive reference"
    QCheck.(pair (triple (int_range 1 5) (int_range 1 5) (int_range 1 5))
              (pair bool (int_range 0 2)))
    (fun ((d0, d1, d2), (keep_dims, which)) ->
      let g = Prng.create ((d0 * 997) + (d1 * 31) + d2 + Bool.to_int keep_dims) in
      let t = D.rand_normal g [| d0; d1; d2 |] in
      let axes = List.nth [ [ 0 ]; [ 1; 2 ]; [ 0; 2 ] ] which in
      D.allclose ~rtol:1e-9 ~atol:1e-12
        (Reference.sum_axes ~keep_dims t axes)
        (D.sum_axes ~keep_dims t axes))

let conv_case_gen =
  (* n h w cin cout kh kw stride same? — kept small: the reference kernel
     is the slow one. *)
  QCheck.(
    pair
      (quad (int_range 1 2) (int_range 3 8) (int_range 3 8) (int_range 1 3))
      (quad (int_range 1 3) (int_range 1 3) (int_range 1 3)
         (pair (int_range 1 2) bool)))

let conv_inputs (n, h, w, cin) (cout, kh, kw, (s, same)) =
  let g = Prng.create ((n * 7919) + (h * 997) + (w * 31) + cin + (cout * 3) + kh + kw + s) in
  let input = D.rand_normal g [| n; h; w; cin |] in
  let filter = D.rand_normal g [| kh; kw; cin; cout |] in
  let padding = if same then Convolution.Same else Convolution.Valid in
  (input, filter, (s, s), padding)

let qcheck_conv2d_matches_reference =
  Test_util.qtest ~count:50 "im2col conv2d matches naive reference"
    conv_case_gen
    (fun (dims, fdims) ->
      let input, filter, stride, padding = conv_inputs dims fdims in
      let ishape = D.shape input and fshape = D.shape filter in
      let oh =
        Convolution.out_dim padding ~size:ishape.(1) ~kernel:fshape.(0)
          ~stride:(fst stride)
      in
      let ow =
        Convolution.out_dim padding ~size:ishape.(2) ~kernel:fshape.(1)
          ~stride:(snd stride)
      in
      oh = 0 || ow = 0
      || D.allclose ~rtol:1e-9 ~atol:1e-12
           (Reference.conv2d ~stride ~padding input filter)
           (Convolution.conv2d ~stride ~padding input filter))

let qcheck_conv2d_grads_match_reference =
  Test_util.qtest ~count:30 "conv2d backward passes match naive reference"
    conv_case_gen
    (fun (dims, fdims) ->
      let input, filter, stride, padding = conv_inputs dims fdims in
      let out = Convolution.conv2d ~stride ~padding input filter in
      if D.numel out = 0 then true
      else begin
        let g = Prng.create 5 in
        let grad = D.rand_normal g (D.shape out) in
        let input_shape = D.shape input and filter_shape = D.shape filter in
        D.allclose ~rtol:1e-9 ~atol:1e-12
          (Reference.conv2d_backward_input ~stride ~padding ~input_shape
             filter grad)
          (Convolution.conv2d_backward_input ~stride ~padding ~input_shape
             filter grad)
        && D.allclose ~rtol:1e-9 ~atol:1e-12
             (Reference.conv2d_backward_filter ~stride ~padding ~filter_shape
                input grad)
             (Convolution.conv2d_backward_filter ~stride ~padding
                ~filter_shape input grad)
      end)

(* {1 Parallel determinism} *)

let test_parallel_matmul_bit_identical () =
  (* 60*60*60 > the 2^16 serial cutoff, so Pool.run actually partitions. *)
  let g = Prng.create 7 in
  let a = D.rand_normal g [| 60; 60 |] in
  let b = D.rand_normal g [| 60; 60 |] in
  let serial = D.matmul ~domains:1 a b in
  List.iter
    (fun d ->
      Test_util.check_true
        (Printf.sprintf "matmul domains:%d bit-identical to serial" d)
        (D.equal serial (D.matmul ~domains:d a b)))
    [ 2; 3; 4; 8 ]

let test_parallel_batch_matmul_bit_identical () =
  let g = Prng.create 8 in
  let a = D.rand_normal g [| 4; 40; 44 |] in
  let b = D.rand_normal g [| 4; 44; 36 |] in
  let serial = D.batch_matmul ~domains:1 a b in
  List.iter
    (fun d ->
      Test_util.check_true
        (Printf.sprintf "batch_matmul domains:%d bit-identical to serial" d)
        (D.equal serial (D.batch_matmul ~domains:d a b)))
    [ 2; 4 ]

let test_parallel_conv2d_bit_identical () =
  let g = Prng.create 9 in
  let input = D.rand_normal g [| 4; 12; 12; 8 |] in
  let filter = D.rand_normal g [| 3; 3; 8; 8 |] in
  let conv d =
    Convolution.conv2d ~domains:d ~padding:Convolution.Same input filter
  in
  let serial = conv 1 in
  List.iter
    (fun d ->
      Test_util.check_true
        (Printf.sprintf "conv2d domains:%d bit-identical to serial" d)
        (D.equal serial (conv d)))
    [ 2; 4 ]

(* {1 Buffer primitives} *)

let test_fill_and_blit () =
  let t = D.zeros [| 2; 3 |] in
  D.fill t 1.5;
  Test_util.check_float "fill all" 9.0 (D.sum t);
  D.fill ~pos:2 ~len:3 t 0.0;
  Test_util.check_float_array "fill range" [| 1.5; 1.5; 0.0; 0.0; 0.0; 1.5 |]
    (D.to_array t);
  Test_util.check_raises_any "fill out of range" (fun () ->
      D.fill ~pos:4 ~len:3 t 0.0);
  let src = D.arange 6 in
  let dst = D.zeros [| 3; 2 |] in
  D.blit src dst;
  Test_util.check_float_array "blit is flat across shapes"
    (D.to_array src) (D.to_array dst);
  Test_util.check_raises_any "blit numel mismatch" (fun () ->
      D.blit src (D.zeros [| 2; 2 |]))

let test_blit_flat () =
  let src = D.arange 5 in
  let dst = D.zeros [| 8 |] in
  D.blit_flat ~src ~src_pos:1 ~dst ~dst_pos:4 ~len:3;
  Test_util.check_float_array "ranged copy"
    [| 0.; 0.; 0.; 0.; 1.; 2.; 3.; 0. |]
    (D.to_array dst);
  Test_util.check_raises_any "src overrun" (fun () ->
      D.blit_flat ~src ~src_pos:3 ~dst ~dst_pos:0 ~len:3);
  Test_util.check_raises_any "dst overrun" (fun () ->
      D.blit_flat ~src ~src_pos:0 ~dst ~dst_pos:6 ~len:3)

let test_hash_contents () =
  let g = Prng.create 11 in
  let a = D.rand_normal g [| 4; 5 |] in
  let b = D.copy a in
  Test_util.check_true "equal tensors hash equal"
    (D.hash_contents a = D.hash_contents b);
  Test_util.check_true "prefix variant is stable"
    (D.hash_contents ~prefix:8 a = D.hash_contents ~prefix:8 b);
  let c = D.set_flat a 0 (D.get_flat a 0 +. 1.0) in
  Test_util.check_true "perturbed tensor hashes differently"
    (D.hash_contents a <> D.hash_contents c);
  Test_util.check_true "shape participates"
    (D.hash_contents (D.zeros [| 4; 5 |]) <> D.hash_contents (D.zeros [| 5; 4 |]))

let test_with_shape_aliases () =
  let t = D.zeros [| 2; 3 |] in
  let v = D.with_shape t [| 6 |] in
  D.fill v 2.0;
  Test_util.check_float "views share the buffer" 12.0 (D.sum t);
  Test_util.check_raises_any "numel mismatch" (fun () -> D.with_shape t [| 5 |])

let qcheck_map2_fast_paths_match_strided =
  Test_util.qtest ~count:60 "map2 fast paths match the strided walker"
    QCheck.(pair (int_range 1 6) (int_range 0 2))
    (fun (n, kind) ->
      let g = Prng.create ((n * 31) + kind) in
      let a = D.rand_normal g [| n; 3 |] in
      let b =
        match kind with
        | 0 -> D.rand_normal g [| n; 3 |] (* same shape: fused loop *)
        | 1 -> D.scalar 2.5 (* scalar broadcast fast path *)
        | _ -> D.rand_normal g [| 1; 3 |] (* generic strided *)
      in
      D.equal (D.map2 ( +. ) a b) (D.map2_strided ( +. ) a b)
      && D.equal (D.add a b) (D.map2_strided ( +. ) a b))

(* {1 Pool} *)

let test_pool_covers_range () =
  let n = 1000 in
  let hits = Array.make n 0 in
  Pool.run ~domains:4 ~n (fun lo hi ->
      for i = lo to hi - 1 do
        hits.(i) <- hits.(i) + 1
      done);
  Test_util.check_true "every index visited exactly once"
    (Array.for_all (fun c -> c = 1) hits)

let test_pool_reraises () =
  Test_util.check_raises_any "worker exception surfaces" (fun () ->
      Pool.run ~domains:4 ~n:100 (fun lo _ ->
          if lo > 0 then failwith "boom"))

let test_pool_nested_serial () =
  (* A nested run must not deadlock; it degrades to the calling domain. *)
  let inner_ran = ref false in
  Pool.run ~domains:2 ~n:2 (fun lo hi ->
      if lo = 0 then
        Pool.run ~domains:2 ~n:(hi - lo) (fun _ _ -> inner_ran := true));
  Test_util.check_true "nested run executed" !inner_ran

let test_pool_width_clamps () =
  let chunks = ref 0 in
  Pool.run ~domains:64 ~n:3 (fun _ _ -> incr chunks);
  Test_util.check_true "domains clamp to n" (!chunks <= 3);
  let ran = ref false in
  Pool.run ~domains:1 ~n:5 (fun lo hi -> ran := lo = 0 && hi = 5);
  Test_util.check_true "width 1 runs serially over the whole range" !ran

let test_pool_shutdown_quiesces () =
  Pool.run ~domains:4 ~n:100 (fun _ _ -> ());
  Test_util.check_true "workers alive after a parallel run"
    (Pool.live_workers () > 0);
  Pool.shutdown ();
  Test_util.check_int "shutdown joins all workers" 0 (Pool.live_workers ());
  (* the pool must come back for later callers *)
  let hits = Atomic.make 0 in
  Pool.run ~domains:4 ~n:100 (fun lo hi -> ignore (Atomic.fetch_and_add hits (hi - lo)));
  Test_util.check_int "pool respawns after shutdown" 100 (Atomic.get hits);
  (* leave no idle domains behind: the rest of the test binary is serial,
     and idle domains tax every stop-the-world minor collection *)
  Pool.shutdown ()

let kernel_suite =
  let tc = Alcotest.test_case in
  [
    ( "tensor.kernels",
      [
        qcheck_matmul_matches_reference;
        tc "matmul vs reference, blocked sizes" `Quick test_matmul_reference_large;
        qcheck_batch_matmul_matches_reference;
        qcheck_sum_axes_matches_reference;
        qcheck_conv2d_matches_reference;
        qcheck_conv2d_grads_match_reference;
        tc "parallel matmul bit-identical" `Quick test_parallel_matmul_bit_identical;
        tc "parallel batch matmul bit-identical" `Quick
          test_parallel_batch_matmul_bit_identical;
        tc "parallel conv2d bit-identical" `Quick test_parallel_conv2d_bit_identical;
        qcheck_map2_fast_paths_match_strided;
      ] );
    ( "tensor.buffers",
      [
        tc "fill and blit" `Quick test_fill_and_blit;
        tc "blit_flat" `Quick test_blit_flat;
        tc "hash_contents" `Quick test_hash_contents;
        tc "with_shape aliases" `Quick test_with_shape_aliases;
      ] );
    ( "tensor.pool",
      [
        tc "covers range" `Quick test_pool_covers_range;
        tc "re-raises worker exceptions" `Quick test_pool_reraises;
        tc "nested run is serial" `Quick test_pool_nested_serial;
        tc "width clamps" `Quick test_pool_width_clamps;
        tc "shutdown quiesces and respawns" `Quick test_pool_shutdown_quiesces;
      ] );
  ]

let suite = suite @ kernel_suite
