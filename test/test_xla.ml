(** Tests for the XLA-style compiler: the HLO graph IR, trace fingerprints
    (the program-cache key of §3.4), optimization passes, fusion (§3.3), and
    compiled execution against direct evaluation. *)

open S4o_tensor
module Hlo = S4o_xla.Hlo
module Opt = S4o_xla.Opt
module Compiler = S4o_xla.Compiler
module C = S4o_ops.Catalog

let node_of_op (op : C.op) inputs =
  Hlo.op ~name:op.C.name ~attrs:op.C.attrs ~shape:op.C.out_shape ~info:op.C.info
    ~inputs ~kernel:op.C.kernel ()

(* A small graph: (p0 + p1) * relu(p0 + p1), with the add shared. *)
let build_shared_graph () =
  let p0 = Hlo.param ~index:0 ~shape:[| 4 |] in
  let p1 = Hlo.param ~index:1 ~shape:[| 4 |] in
  let sum = node_of_op (C.add [| 4 |] [| 4 |]) [ p0; p1 ] in
  let r = node_of_op (C.relu [| 4 |]) [ sum ] in
  let out = node_of_op (C.mul [| 4 |] [| 4 |]) [ sum; r ] in
  Hlo.graph_of_outputs [ out ]

(* {1 Graph structure} *)

let test_topo_order () =
  let g = build_shared_graph () in
  Test_util.check_int "node count" 5 (Hlo.size g);
  (* every node appears after its inputs *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (n : Hlo.node) ->
      List.iter
        (fun (i : Hlo.node) ->
          Test_util.check_true "input before use" (Hashtbl.mem seen i.Hlo.id))
        n.Hlo.inputs;
      Hashtbl.add seen n.Hlo.id ())
    g.Hlo.nodes

let test_params_ordered () =
  let g = build_shared_graph () in
  let ps = Hlo.params g in
  Test_util.check_int "two params" 2 (List.length ps)

let test_fingerprint_id_invariant () =
  (* the same structure built twice (fresh node ids) fingerprints equal *)
  let fp1 = Hlo.fingerprint (build_shared_graph ()) in
  let fp2 = Hlo.fingerprint (build_shared_graph ()) in
  Test_util.check_int "structure-only fingerprint" fp1 fp2

let test_fingerprint_sensitive_to_attrs () =
  let build c =
    let p = Hlo.param ~index:0 ~shape:[| 4 |] in
    Hlo.graph_of_outputs [ node_of_op (C.scale c [| 4 |]) [ p ] ]
  in
  Test_util.check_true "different constant, different fingerprint"
    (Hlo.fingerprint (build 1.0) <> Hlo.fingerprint (build 2.0))

let test_fingerprint_sensitive_to_shape () =
  let build n =
    let p = Hlo.param ~index:0 ~shape:[| n |] in
    Hlo.graph_of_outputs [ node_of_op (C.relu [| n |]) [ p ] ]
  in
  Test_util.check_true "shape change recompiles (S3.4)"
    (Hlo.fingerprint (build 4) <> Hlo.fingerprint (build 8))

let test_dot_rendering () =
  let g = build_shared_graph () in
  let dot = Hlo.to_dot g in
  Test_util.check_true "digraph header" (String.length dot > 10);
  Test_util.check_true "has edges"
    (String.split_on_char '\n' dot
    |> List.exists (fun l -> String.length l > 4 && String.contains l '>'))

(* {1 Passes} *)

let test_cse_merges_duplicates () =
  let p0 = Hlo.param ~index:0 ~shape:[| 4 |] in
  let a1 = node_of_op (C.relu [| 4 |]) [ p0 ] in
  let a2 = node_of_op (C.relu [| 4 |]) [ p0 ] in
  let out = node_of_op (C.add [| 4 |] [| 4 |]) [ a1; a2 ] in
  let g = Hlo.graph_of_outputs [ out ] in
  Test_util.check_int "before" 4 (Hlo.size g);
  let g' = Opt.cse g in
  Test_util.check_int "after cse" 3 (Hlo.size g')

let test_constant_folding () =
  let l1 = Hlo.literal (Dense.of_array [| 2 |] [| 1.0; 2.0 |]) in
  let l2 = Hlo.literal (Dense.of_array [| 2 |] [| 10.0; 20.0 |]) in
  let s = node_of_op (C.add [| 2 |] [| 2 |]) [ l1; l2 ] in
  let p = Hlo.param ~index:0 ~shape:[| 2 |] in
  let out = node_of_op (C.mul [| 2 |] [| 2 |]) [ s; p ] in
  let g = Opt.constant_fold (Hlo.graph_of_outputs [ out ]) in
  let folded =
    List.exists
      (fun (n : Hlo.node) ->
        match n.Hlo.role with
        | Hlo.Literal v -> Dense.equal v (Dense.of_array [| 2 |] [| 11.0; 22.0 |])
        | _ -> false)
      g.Hlo.nodes
  in
  Test_util.check_true "sum folded to literal" folded

let test_optimize_preserves_semantics () =
  let g = build_shared_graph () in
  let g', _stats = Opt.optimize g in
  let engine = S4o_device.Engine.create S4o_device.Device_spec.desktop_cpu in
  let feeds = [| Dense.of_array [| 4 |] [| 1.; -2.; 3.; -4. |];
                 Dense.of_array [| 4 |] [| 0.5; 0.5; -9.0; 5.0 |] |] in
  let run g = (Compiler.run (Compiler.compile g) engine feeds).(0) in
  Test_util.check_tensor "optimized = original" (run g) (run g')

(* {1 Fusion} *)

let test_fusion_chains () =
  (* conv -> add-bias -> relu should be one cluster *)
  let x = Hlo.param ~index:0 ~shape:[| 1; 8; 8; 3 |] in
  let f = Hlo.param ~index:1 ~shape:[| 3; 3; 3; 4 |] in
  let b = Hlo.param ~index:2 ~shape:[| 4 |] in
  let conv =
    node_of_op (C.conv2d ~padding:Convolution.Same [| 1; 8; 8; 3 |] [| 3; 3; 3; 4 |]) [ x; f ]
  in
  let biased = node_of_op (C.add [| 1; 8; 8; 4 |] [| 4 |]) [ conv; b ] in
  let act = node_of_op (C.relu [| 1; 8; 8; 4 |]) [ biased ] in
  let g = Hlo.graph_of_outputs [ act ] in
  let clusters = Opt.fuse g in
  Test_util.check_int "single fused kernel" 1 (List.length clusters);
  match clusters with
  | [ c ] ->
      Test_util.check_int "three members" 3 (List.length c.Opt.members);
      Test_util.check_true "fused kind"
        (match c.Opt.info.S4o_device.Op_info.kind with
        | S4o_device.Op_info.Fused 3 -> true
        | _ -> false)
  | _ -> Alcotest.fail "expected one cluster"

let test_fusion_two_contractions_not_merged () =
  let x = Hlo.param ~index:0 ~shape:[| 4; 4 |] in
  let w1 = Hlo.param ~index:1 ~shape:[| 4; 4 |] in
  let w2 = Hlo.param ~index:2 ~shape:[| 4; 4 |] in
  let m1 = node_of_op (C.matmul [| 4; 4 |] [| 4; 4 |]) [ x; w1 ] in
  let m2 = node_of_op (C.matmul [| 4; 4 |] [| 4; 4 |]) [ m1; w2 ] in
  let g = Hlo.graph_of_outputs [ m2 ] in
  Test_util.check_int "two clusters" 2 (List.length (Opt.fuse g))

let test_fusion_saves_memory_traffic () =
  let x = Hlo.param ~index:0 ~shape:[| 1024 |] in
  let a = node_of_op (C.relu [| 1024 |]) [ x ] in
  let b = node_of_op (C.exp [| 1024 |]) [ a ] in
  let c = node_of_op (C.sqrt [| 1024 |]) [ b ] in
  let g = Hlo.graph_of_outputs [ c ] in
  let clusters = Opt.fuse g in
  Test_util.check_int "one cluster" 1 (List.length clusters);
  let info = (List.hd clusters).Opt.info in
  (* external traffic: read x once, write c once — intermediates free *)
  Test_util.check_int "external in" 4096 info.S4o_device.Op_info.bytes_in;
  Test_util.check_int "external out" 4096 info.S4o_device.Op_info.bytes_out

let test_fusion_partitions_compute_nodes () =
  (* Regression: the clusters must partition exactly the compute nodes —
     every compute node in precisely one cluster, no duplicates, and no
     params or literals smuggled in. *)
  let check_partition g =
    let clusters = Opt.fuse g in
    let member_ids =
      List.concat_map
        (fun c -> List.map (fun n -> n.Hlo.id) c.Opt.members)
        clusters
    in
    let sorted = List.sort_uniq compare member_ids in
    Test_util.check_int "no duplicate members" (List.length member_ids)
      (List.length sorted);
    let compute_ids =
      List.filter_map
        (fun n ->
          match n.Hlo.role with
          | Hlo.Compute -> Some n.Hlo.id
          | Hlo.Param _ | Hlo.Literal _ -> None)
        g.Hlo.nodes
      |> List.sort compare
    in
    Alcotest.(check (list int)) "members = compute nodes" compute_ids sorted
  in
  check_partition (build_shared_graph ());
  (* residual diamond with a literal in the mix *)
  let x = Hlo.param ~index:0 ~shape:[| 2; 2 |] in
  let w = Hlo.param ~index:1 ~shape:[| 2; 2 |] in
  let lit = Hlo.literal (Dense.ones [| 2; 2 |]) in
  let m = node_of_op (C.matmul [| 2; 2 |] [| 2; 2 |]) [ x; w ] in
  let r = node_of_op (C.relu [| 2; 2 |]) [ m ] in
  let skip = node_of_op (C.add [| 2; 2 |] [| 2; 2 |]) [ x; lit ] in
  let out = node_of_op (C.add [| 2; 2 |] [| 2; 2 |]) [ r; skip ] in
  check_partition (Hlo.graph_of_outputs [ out ]);
  (* contraction-heavy chain *)
  let m1 = node_of_op (C.matmul [| 2; 2 |] [| 2; 2 |]) [ x; w ] in
  let m2 = node_of_op (C.matmul [| 2; 2 |] [| 2; 2 |]) [ m1; w ] in
  check_partition (Hlo.graph_of_outputs [ m2 ])

let test_fusion_schedulable_in_order () =
  (* the residual diamond: relu(bn(conv(x))) + shortcut(x); execution in
     cluster order must produce correct values (acyclicity regression test) *)
  let x = Hlo.param ~index:0 ~shape:[| 2; 2 |] in
  let w = Hlo.param ~index:1 ~shape:[| 2; 2 |] in
  let m = node_of_op (C.matmul [| 2; 2 |] [| 2; 2 |]) [ x; w ] in
  let r = node_of_op (C.relu [| 2; 2 |]) [ m ] in
  let skip = node_of_op (C.scale 2.0 [| 2; 2 |]) [ x ] in
  let out = node_of_op (C.add [| 2; 2 |] [| 2; 2 |]) [ r; skip ] in
  let g = Hlo.graph_of_outputs [ out ] in
  let engine = S4o_device.Engine.create S4o_device.Device_spec.desktop_cpu in
  let xs = Dense.of_array [| 2; 2 |] [| 1.; 2.; 3.; 4. |] in
  let ws = Dense.of_array [| 2; 2 |] [| 1.; 0.; 0.; 1. |] in
  let result = (Compiler.run (Compiler.compile g) engine [| xs; ws |]).(0) in
  Test_util.check_tensor "relu(x) + 2x"
    (Dense.add (Dense.relu xs) (Dense.scale 2.0 xs))
    result

(* {1 Compilation and execution} *)

let test_compile_stats_and_cost () =
  let engine = S4o_device.Engine.create S4o_device.Device_spec.desktop_cpu in
  let g = build_shared_graph () in
  let before = S4o_device.Engine.host_time engine in
  let exe = Compiler.compile ~engine g in
  let stats = Compiler.stats exe in
  Test_util.check_int "input nodes" 5 stats.Compiler.input_nodes;
  Test_util.check_true "compile charged to host"
    (S4o_device.Engine.host_time engine > before);
  Test_util.check_close "compile seconds consistent"
    (S4o_device.Engine.host_time engine -. before)
    stats.Compiler.compile_seconds

let test_run_matches_direct_eval () =
  let g = build_shared_graph () in
  let exe = Compiler.compile g in
  let engine = S4o_device.Engine.create S4o_device.Device_spec.desktop_cpu in
  let a = Dense.of_array [| 4 |] [| 1.; -2.; 3.; -4. |] in
  let b = Dense.of_array [| 4 |] [| 0.5; 1.5; -1.0; 6.0 |] in
  let out = (Compiler.run exe engine [| a; b |]).(0) in
  let sum = Dense.add a b in
  Test_util.check_tensor "compiled = direct" (Dense.mul sum (Dense.relu sum)) out

let test_run_dispatches_kernels () =
  let g = build_shared_graph () in
  let exe = Compiler.compile g in
  let engine = S4o_device.Engine.create S4o_device.Device_spec.desktop_cpu in
  let _ = Compiler.run exe engine [| Dense.zeros [| 4 |]; Dense.zeros [| 4 |] |] in
  Test_util.check_true "kernels launched" (S4o_device.Engine.kernels_launched engine > 0)

let test_simulate_only_advances_clock () =
  let g = build_shared_graph () in
  let exe = Compiler.compile g in
  let engine = S4o_device.Engine.create S4o_device.Device_spec.desktop_cpu in
  Compiler.simulate exe engine;
  Test_util.check_true "device time advanced"
    (S4o_device.Engine.device_ready_at engine > 0.0)

let test_estimated_run_time_positive () =
  let exe = Compiler.compile (build_shared_graph ()) in
  Test_util.check_true "positive estimate"
    (Compiler.estimated_run_time S4o_device.Device_spec.gtx1080 exe > 0.0)

let test_feed_arity_checked () =
  let exe = Compiler.compile (build_shared_graph ()) in
  let engine = S4o_device.Engine.create S4o_device.Device_spec.desktop_cpu in
  Test_util.check_raises_any "missing feeds" (fun () ->
      Compiler.run exe engine [| Dense.zeros [| 4 |] |])

(* {1 Memory model (S4.2's input-output aliasing)} *)

let test_peak_memory_donation () =
  (* out = w - p1 (an "updated parameters" shape): donating w should save
     one w-sized buffer at the peak *)
  let w = Hlo.param ~index:0 ~shape:[| 1024 |] in
  let gpar = Hlo.param ~index:1 ~shape:[| 1024 |] in
  let upd = node_of_op (C.sub [| 1024 |] [| 1024 |]) [ w; gpar ] in
  let exe = Compiler.compile (Hlo.graph_of_outputs [ upd ]) in
  let plain = Compiler.peak_memory exe in
  let donated = Compiler.peak_memory ~donated:[ 0 ] exe in
  Test_util.check_int "donation saves one buffer" (plain - 4096) donated

let qcheck_compiled_equals_direct =
  (* random elementwise DAGs: the compiler pipeline must preserve semantics *)
  Test_util.qtest ~count:60 "compiled execution = reference evaluation"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 8 in
      let p0 = Hlo.param ~index:0 ~shape:[| n |] in
      let p1 = Hlo.param ~index:1 ~shape:[| n |] in
      (* grow a random DAG of ~6 unary/binary ops *)
      let nodes = ref [ p0; p1 ] in
      for _ = 1 to 6 do
        let pick () = List.nth !nodes (Prng.int rng (List.length !nodes)) in
        let next =
          match Prng.int rng 4 with
          | 0 -> node_of_op (C.add [| n |] [| n |]) [ pick (); pick () ]
          | 1 -> node_of_op (C.mul [| n |] [| n |]) [ pick (); pick () ]
          | 2 -> node_of_op (C.relu [| n |]) [ pick () ]
          | _ -> node_of_op (C.tanh [| n |]) [ pick () ]
        in
        nodes := next :: !nodes
      done;
      let out = List.hd !nodes in
      let g = Hlo.graph_of_outputs [ out ] in
      let a = Dense.rand_normal rng [| n |] in
      let b = Dense.rand_normal rng [| n |] in
      let engine = S4o_device.Engine.create S4o_device.Device_spec.desktop_cpu in
      let compiled = (Compiler.run (Compiler.compile g) engine [| a; b |]).(0) in
      (* direct reference evaluation over the same graph *)
      let values = Hashtbl.create 16 in
      List.iter
        (fun (node : Hlo.node) ->
          let v =
            match node.Hlo.role with
            | Hlo.Param 0 -> a
            | Hlo.Param _ -> b
            | Hlo.Literal v -> v
            | Hlo.Compute ->
                node.Hlo.kernel
                  (Array.of_list
                     (List.map
                        (fun (i : Hlo.node) -> Hashtbl.find values i.Hlo.id)
                        node.Hlo.inputs))
          in
          Hashtbl.replace values node.Hlo.id v)
        g.Hlo.nodes;
      Dense.equal compiled (Hashtbl.find values out.Hlo.id))

let suite =
  let tc = Alcotest.test_case in
  [
    ( "xla.hlo",
      [
        tc "topological order" `Quick test_topo_order;
        tc "params ordered" `Quick test_params_ordered;
        tc "fingerprint ignores node ids" `Quick test_fingerprint_id_invariant;
        tc "fingerprint sees attrs" `Quick test_fingerprint_sensitive_to_attrs;
        tc "fingerprint sees shapes" `Quick test_fingerprint_sensitive_to_shape;
        tc "dot rendering" `Quick test_dot_rendering;
      ] );
    ( "xla.passes",
      [
        tc "cse merges" `Quick test_cse_merges_duplicates;
        tc "constant folding" `Quick test_constant_folding;
        tc "optimize preserves semantics" `Quick test_optimize_preserves_semantics;
      ] );
    ( "xla.fusion",
      [
        tc "conv-bias-relu chain fuses" `Quick test_fusion_chains;
        tc "clusters partition compute nodes" `Quick
          test_fusion_partitions_compute_nodes;
        tc "contractions stay separate" `Quick test_fusion_two_contractions_not_merged;
        tc "fusion saves memory traffic" `Quick test_fusion_saves_memory_traffic;
        tc "residual diamond schedulable" `Quick test_fusion_schedulable_in_order;
      ] );
    ( "xla.compiler",
      [
        tc "compile stats and cost" `Quick test_compile_stats_and_cost;
        tc "run matches direct eval" `Quick test_run_matches_direct_eval;
        tc "run dispatches kernels" `Quick test_run_dispatches_kernels;
        tc "simulate advances clock only" `Quick test_simulate_only_advances_clock;
        tc "estimated run time" `Quick test_estimated_run_time_positive;
        tc "feed arity checked" `Quick test_feed_arity_checked;
        tc "peak memory with donation" `Quick test_peak_memory_donation;
        qcheck_compiled_equals_direct;
      ] );
  ]
