(** Tests for the eager (§3.2) and lazy (§3.3–3.4) runtimes: both must agree
    exactly with the naive backend on values, while exhibiting their
    characteristic cost behaviour on the simulated clocks. *)

open S4o_tensor
module Engine = S4o_device.Engine
module Spec = S4o_device.Device_spec

(* fresh eager stack per test *)
let with_eager f =
  let engine = Engine.create Spec.gtx1080 in
  let rt = S4o_eager.Runtime.create engine in
  let module Bk = S4o_eager.Eager_backend.Make (struct
    let rt = rt
  end) in
  f (module Bk : Backend_intf.S) rt engine

let with_lazy ?cache_enabled f =
  let engine = Engine.create Spec.gtx1080 in
  let rt = S4o_lazy.Lazy_runtime.create ?cache_enabled engine in
  let module Bk = S4o_lazy.Lazy_backend.Make (struct
    let rt = rt
  end) in
  f (module Bk : Backend_intf.S) rt engine

(* A composite expression exercised on every backend. *)
let expr (type t) (module Bk : Backend_intf.S with type t = t) a b =
  let x = Bk.of_dense a and y = Bk.of_dense b in
  let z = Bk.relu (Bk.sub (Bk.mul x y) (Bk.add_scalar 0.5 x)) in
  let m = Bk.matmul (Bk.reshape z [| 2; 2 |]) (Bk.reshape y [| 2; 2 |]) in
  Bk.to_dense (Bk.softmax m)

let sample_inputs seed =
  let g = Prng.create seed in
  (Dense.rand_normal g [| 4 |], Dense.rand_normal g [| 4 |])

let reference seed =
  let a, b = sample_inputs seed in
  expr (module Naive_backend) a b

(* {1 Backend agreement} *)

let test_eager_matches_naive () =
  with_eager (fun (module Bk) _ _ ->
      List.iter
        (fun seed ->
          let a, b = sample_inputs seed in
          Test_util.check_tensor "eager = naive" (reference seed)
            (expr (module Bk) a b))
        [ 1; 2; 3; 4; 5 ])

let test_lazy_matches_naive () =
  with_lazy (fun (module Bk) _ _ ->
      List.iter
        (fun seed ->
          let a, b = sample_inputs seed in
          Test_util.check_tensor "lazy = naive" (reference seed)
            (expr (module Bk) a b))
        [ 1; 2; 3; 4; 5 ])

let qcheck_three_backends_agree =
  Test_util.qtest ~count:40 "naive = eager = lazy on random inputs"
    QCheck.(int_range 10 10_000)
    (fun seed ->
      let a, b = sample_inputs seed in
      let naive = expr (module Naive_backend) a b in
      let eager = with_eager (fun (module Bk) _ _ -> expr (module Bk) a b) in
      let lzy = with_lazy (fun (module Bk) _ _ -> expr (module Bk) a b) in
      Dense.equal naive eager && Dense.allclose ~rtol:1e-12 ~atol:1e-12 naive lzy)

(* {1 Eager runtime behaviour} *)

let test_eager_dispatch_costs_host_time () =
  with_eager (fun (module Bk) rt _ ->
      let a, b = sample_inputs 1 in
      let _ = expr (module Bk) a b in
      Test_util.check_true "ops dispatched"
        ((S4o_eager.Runtime.stats rt).S4o_obs.Stats.ops_dispatched > 5);
      Test_util.check_true "host time accrued"
        (S4o_eager.Runtime.host_time rt > 0.0))

let test_eager_pipeline_until_observed () =
  with_eager (fun (module Bk) _ engine ->
      let a, _ = sample_inputs 1 in
      let x = Bk.of_dense a in
      let y = Bk.relu (Bk.exp x) in
      (* nothing observed yet: device may still be behind *)
      let depth_before = Engine.pipeline_depth engine in
      let _ = Bk.to_dense y in
      Test_util.check_true "pipeline filled then drained"
        (depth_before >= 0.0 && Engine.pipeline_depth engine = 0.0))

let test_eager_overhead_configurable () =
  let engine = Engine.create Spec.gtx1080 in
  let rt = S4o_eager.Runtime.create ~dispatch_overhead:1.0 engine in
  let module Bk = S4o_eager.Eager_backend.Make (struct
    let rt = rt
  end) in
  let _ = Bk.relu (Bk.of_dense (Dense.zeros [| 2 |])) in
  Test_util.check_close "1s per op" 1.0 (S4o_eager.Runtime.host_time rt)

(* {1 Lazy runtime behaviour} *)

let test_lazy_defers_execution () =
  with_lazy (fun (module Bk) rt engine ->
      let a, _ = sample_inputs 2 in
      let x = Bk.of_dense a in
      let _y = Bk.relu (Bk.exp (Bk.sqrt (Bk.sigmoid x))) in
      ignore _y;
      (* no trace cut, no kernels, no compiles until observation *)
      let st = S4o_lazy.Lazy_runtime.stats rt in
      Test_util.check_int "no traces yet" 0 st.S4o_lazy.Lazy_runtime.traces_cut;
      Test_util.check_int "no kernels yet" 0 (Engine.kernels_launched engine))

let test_lazy_program_cache_hits () =
  with_lazy (fun (module Bk) rt _ ->
      let step seed =
        let a, b = sample_inputs seed in
        ignore (expr (module Bk) a b)
      in
      (* same structure, different data: compile once, then cache hits *)
      List.iter step [ 1; 2; 3; 4; 5 ];
      let st = S4o_lazy.Lazy_runtime.stats rt in
      Test_util.check_int "five traces" 5 st.S4o_lazy.Lazy_runtime.traces_cut;
      Test_util.check_int "one compile" 1 st.S4o_lazy.Lazy_runtime.cache_misses;
      Test_util.check_int "four hits" 4 st.S4o_lazy.Lazy_runtime.cache_hits)

let test_lazy_shape_change_recompiles () =
  with_lazy (fun (module Bk) rt _ ->
      let run n =
        let g = Prng.create n in
        let x = Bk.of_dense (Dense.rand_normal g [| n |]) in
        ignore (Bk.to_dense (Bk.relu x))
      in
      run 4;
      run 4;
      run 8;
      (* S3.4: "changes in the dimensions of the input tensors can trigger
         recompilation" *)
      let st = S4o_lazy.Lazy_runtime.stats rt in
      Test_util.check_int "two compiles for two shapes" 2
        st.S4o_lazy.Lazy_runtime.cache_misses;
      Test_util.check_int "one hit for the repeat" 1
        st.S4o_lazy.Lazy_runtime.cache_hits)

let test_lazy_cache_disabled_recompiles () =
  with_lazy ~cache_enabled:false (fun (module Bk) rt _ ->
      let run () =
        let x = Bk.of_dense (Dense.ones [| 4 |]) in
        ignore (Bk.to_dense (Bk.relu x))
      in
      run ();
      run ();
      run ();
      let st = S4o_lazy.Lazy_runtime.stats rt in
      Test_util.check_int "every trace compiles" 3 st.S4o_lazy.Lazy_runtime.cache_misses)

let test_lazy_tracing_overhead_charged () =
  let engine = Engine.create Spec.gtx1080 in
  let rt = S4o_lazy.Lazy_runtime.create ~trace_overhead_per_op:1.0 engine in
  let module Bk = S4o_lazy.Lazy_backend.Make (struct
    let rt = rt
  end) in
  let x = Bk.of_dense (Dense.ones [| 4 |]) in
  let _ = Bk.to_dense (Bk.relu (Bk.exp x)) in
  (* two recorded ops at 1s each, plus compile time *)
  Test_util.check_true "re-tracing overhead on the host clock"
    (Engine.host_time engine >= 2.0)

let test_lazy_barrier_cuts_trace () =
  let engine = Engine.create Spec.gtx1080 in
  let rt = S4o_lazy.Lazy_runtime.create engine in
  let module Bk = S4o_lazy.Lazy_backend.Make (struct
    let rt = rt
  end) in
  let x = Bk.of_dense (Dense.ones [| 4 |]) in
  let y = Bk.relu x in
  Bk.barrier [ y ];
  let st = S4o_lazy.Lazy_runtime.stats rt in
  Test_util.check_int "trace cut at barrier" 1 st.S4o_lazy.Lazy_runtime.traces_cut;
  (* after the barrier, y is device data: a new trace starts from it *)
  let z = Bk.to_dense (Bk.exp y) in
  Test_util.check_tensor "value correct across barrier"
    (Dense.exp (Dense.relu (Dense.ones [| 4 |])))
    z;
  let st = S4o_lazy.Lazy_runtime.stats rt in
  Test_util.check_int "second trace only 1 op" 1
    st.S4o_lazy.Lazy_runtime.largest_trace

let test_lazy_placeholder_timing_only () =
  let engine = Engine.create Spec.gtx1080 in
  let rt = S4o_lazy.Lazy_runtime.create engine in
  let module Bk = S4o_lazy.Lazy_backend.Make (struct
    let rt = rt
  end) in
  let x = Bk.placeholder [| 64; 64 |] in
  let y = Bk.matmul x x in
  Bk.barrier [ y ];
  (* clock advanced, kernels counted, but contents unobservable *)
  Test_util.check_true "device time advanced" (Engine.device_ready_at engine > 0.0);
  Test_util.check_raises_any "cannot observe timing-only tensors" (fun () ->
      Bk.to_dense y)

let test_lazy_capture_is_free () =
  let engine = Engine.create Spec.gtx1080 in
  let rt = S4o_lazy.Lazy_runtime.create engine in
  let module Bk = S4o_lazy.Lazy_backend.Make (struct
    let rt = rt
  end) in
  let x = Bk.placeholder [| 4 |] in
  let y = Bk.relu (Bk.exp x) in
  let g = Bk.capture [ y ] in
  Test_util.check_int "graph has param + 2 ops" 3 (S4o_xla.Hlo.size g);
  Test_util.check_close "no cost charged" 0.0 (Engine.host_time engine);
  let st = S4o_lazy.Lazy_runtime.stats rt in
  Test_util.check_int "no trace consumed" 0 st.S4o_lazy.Lazy_runtime.traces_cut

let suite =
  let tc = Alcotest.test_case in
  [
    ( "runtimes.agreement",
      [
        tc "eager = naive" `Quick test_eager_matches_naive;
        tc "lazy = naive" `Quick test_lazy_matches_naive;
        qcheck_three_backends_agree;
      ] );
    ( "runtimes.eager",
      [
        tc "dispatch costs host time" `Quick test_eager_dispatch_costs_host_time;
        tc "pipeline drains on observe" `Quick test_eager_pipeline_until_observed;
        tc "overhead configurable" `Quick test_eager_overhead_configurable;
      ] );
    ( "runtimes.lazy",
      [
        tc "defers execution" `Quick test_lazy_defers_execution;
        tc "program cache hits across values" `Quick test_lazy_program_cache_hits;
        tc "shape change recompiles" `Quick test_lazy_shape_change_recompiles;
        tc "cache ablation recompiles" `Quick test_lazy_cache_disabled_recompiles;
        tc "re-tracing overhead charged" `Quick test_lazy_tracing_overhead_charged;
        tc "barrier cuts the trace" `Quick test_lazy_barrier_cuts_trace;
        tc "timing-only placeholders" `Quick test_lazy_placeholder_timing_only;
        tc "capture charges nothing" `Quick test_lazy_capture_is_free;
      ] );
  ]

(* {1 Automatic trace cutting (S3.4 future work, implemented)} *)

let test_auto_cut_dispatches_without_barriers () =
  let engine = Engine.create Spec.gtx1080 in
  let rt = S4o_lazy.Lazy_runtime.create ~auto_cut_threshold:5 engine in
  let module Bk = S4o_lazy.Lazy_backend.Make (struct
    let rt = rt
  end) in
  let x = ref (Bk.of_dense (Dense.ones [| 4 |])) in
  for _ = 1 to 20 do
    x := Bk.relu (Bk.add_scalar 0.1 !x)
  done;
  (* 40 recorded ops with threshold 5: the runtime must have cut on its own *)
  Test_util.check_true "auto cuts happened"
    ((S4o_lazy.Lazy_runtime.stats rt).S4o_lazy.Lazy_runtime.auto_cuts >= 7);
  let st = S4o_lazy.Lazy_runtime.stats rt in
  Test_util.check_true "fragments bounded" (st.S4o_lazy.Lazy_runtime.largest_trace <= 5);
  (* and values are still exactly right: replay the exact op sequence *)
  let reference = ref (Dense.ones [| 4 |]) in
  for _ = 1 to 20 do
    reference := Dense.relu (Dense.add_scalar 0.1 !reference)
  done;
  Test_util.check_tensor "auto-cut values correct" !reference (Bk.to_dense !x)

let test_auto_cut_disabled_by_default () =
  let engine = Engine.create Spec.gtx1080 in
  let rt = S4o_lazy.Lazy_runtime.create engine in
  let module Bk = S4o_lazy.Lazy_backend.Make (struct
    let rt = rt
  end) in
  let x = ref (Bk.of_dense (Dense.ones [| 4 |])) in
  for _ = 1 to 50 do
    x := Bk.relu !x
  done;
  Test_util.check_int "no auto cuts" 0
    (S4o_lazy.Lazy_runtime.stats rt).S4o_lazy.Lazy_runtime.auto_cuts

let test_auto_cut_threshold_validated () =
  let engine = Engine.create Spec.gtx1080 in
  Test_util.check_raises_any "rejects non-positive threshold" (fun () ->
      S4o_lazy.Lazy_runtime.create ~auto_cut_threshold:0 engine)

let test_manual_barrier_resets_auto_counter () =
  let engine = Engine.create Spec.gtx1080 in
  let rt = S4o_lazy.Lazy_runtime.create ~auto_cut_threshold:10 engine in
  let module Bk = S4o_lazy.Lazy_backend.Make (struct
    let rt = rt
  end) in
  let x = ref (Bk.of_dense (Dense.ones [| 4 |])) in
  for _ = 1 to 8 do
    x := Bk.relu !x;
    Bk.barrier [ !x ]
  done;
  (* each manual cut resets the counter, so the threshold is never reached *)
  Test_util.check_int "no auto cuts with frequent barriers" 0
    (S4o_lazy.Lazy_runtime.stats rt).S4o_lazy.Lazy_runtime.auto_cuts

let auto_cut_suite =
  let tc = Alcotest.test_case in
  [
    ( "runtimes.auto_cut",
      [
        tc "dispatches without annotations" `Quick test_auto_cut_dispatches_without_barriers;
        tc "off by default" `Quick test_auto_cut_disabled_by_default;
        tc "threshold validated" `Quick test_auto_cut_threshold_validated;
        tc "manual barriers reset the counter" `Quick test_manual_barrier_resets_auto_counter;
      ] );
  ]

let suite = suite @ auto_cut_suite
