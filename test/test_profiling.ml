(** Tests for the deep-profiling subsystem: off-heap memory accounting
    ([S4o_obs.Memory] + the [Dense.alloc] hook), trace analysis
    ([S4o_obs.Analysis]: op profile, overlap, critical path), Prometheus
    exposition ([S4o_obs.Prom]), the hardened [Chrome_trace.validate], and
    the tensor-memory fields threaded through the unified stats surface. *)

open S4o_tensor
module Memory = S4o_obs.Memory
module Analysis = S4o_obs.Analysis
module Prom = S4o_obs.Prom
module Recorder = S4o_obs.Recorder
module Metrics = S4o_obs.Metrics
module Stats = S4o_obs.Stats
module Engine = S4o_device.Engine
module Spec = S4o_device.Device_spec

(* Run [f] with the global tracker freshly reset and enabled, disabling it
   again afterwards no matter what — other tests must not observe tracking. *)
let with_global_tracking f =
  let mem = Memory.global in
  Memory.reset mem;
  Memory.set_enabled mem true;
  Fun.protect
    ~finally:(fun () ->
      Memory.set_enabled mem false;
      Memory.reset mem)
    (fun () -> f mem)

(* {1 Memory accounting} *)

let test_memory_balance () =
  let t = Memory.create () in
  Memory.alloc t 100;
  Memory.alloc t 250;
  Memory.alloc t 50;
  Test_util.check_int "live after allocs" 400 (Memory.live_bytes t);
  Test_util.check_int "peak after allocs" 400 (Memory.peak_bytes t);
  Memory.free t 250;
  Test_util.check_int "live after free" 150 (Memory.live_bytes t);
  Test_util.check_int "peak stays" 400 (Memory.peak_bytes t);
  Memory.alloc t 100;
  Test_util.check_int "live climbs again" 250 (Memory.live_bytes t);
  Test_util.check_int "peak unchanged below high-water" 400 (Memory.peak_bytes t);
  Test_util.check_int "alloc count" 4 (Memory.alloc_count t);
  Test_util.check_int "free count" 1 (Memory.free_count t);
  Test_util.check_true "peak >= live" (Memory.peak_bytes t >= Memory.live_bytes t)

let test_memory_tags () =
  let t = Memory.create () in
  Memory.alloc t 10;
  Memory.with_tag t "matmul" (fun () ->
      Memory.alloc t 100;
      Test_util.check_string "dynamic tag active" "matmul" (Memory.current_tag t);
      Memory.with_tag t "im2col" (fun () -> Memory.alloc t 1000));
  Test_util.check_string "tag restored" "tensor" (Memory.current_tag t);
  Memory.alloc t ~tag:"explicit" 7;
  let find tag =
    List.find (fun (s : Memory.tag_stats) -> s.tag = tag) (Memory.tags t)
  in
  Test_util.check_int "default tag bytes" 10 (find "tensor").live_bytes;
  Test_util.check_int "matmul tag bytes" 100 (find "matmul").live_bytes;
  Test_util.check_int "nested tag bytes" 1000 (find "im2col").live_bytes;
  Test_util.check_int "explicit tag bytes" 7 (find "explicit").live_bytes;
  let sum =
    List.fold_left
      (fun acc (s : Memory.tag_stats) -> acc + s.live_bytes)
      0 (Memory.tags t)
  in
  Test_util.check_int "tag slices partition the total" (Memory.live_bytes t) sum;
  Test_util.check_true "tags sorted by peak descending"
    (match Memory.tags t with
    | a :: b :: _ -> a.peak_bytes >= b.peak_bytes
    | _ -> false)

let test_memory_generation () =
  let t = Memory.create () in
  Memory.alloc t 500;
  let old_gen = Memory.generation t in
  Memory.reset t;
  Test_util.check_int "reset zeroes live" 0 (Memory.live_bytes t);
  (* a straggler finaliser from before the reset must be dropped... *)
  Memory.free_gen t ~gen:old_gen 500;
  Test_util.check_int "stale free dropped" 0 (Memory.live_bytes t);
  Test_util.check_int "stale free not counted" 0 (Memory.free_count t);
  (* ...while a current-generation free still lands *)
  Memory.alloc t 64;
  Memory.free_gen t ~gen:(Memory.generation t) 64;
  Test_util.check_int "current-gen free applied" 0 (Memory.live_bytes t);
  Test_util.check_int "current-gen free counted" 1 (Memory.free_count t)

let test_memory_through_dense () =
  with_global_tracking (fun mem ->
      let keep = ref [] in
      for _ = 1 to 8 do
        keep := Dense.zeros [| 100; 100 |] :: !keep
      done;
      (* 8 buffers x 100*100 float64 = 8 * 80_000 bytes *)
      Test_util.check_int "live counts every Dense buffer" 640_000
        (Memory.live_bytes mem);
      Test_util.check_int "one alloc per buffer" 8 (Memory.alloc_count mem);
      Test_util.check_true "peak >= live"
        (Memory.peak_bytes mem >= Memory.live_bytes mem);
      let views_before = Memory.view_count mem in
      let v = Dense.with_shape (List.hd !keep) [| 10_000 |] in
      ignore (Dense.numel v);
      Test_util.check_int "with_shape counted as zero-copy view"
        (views_before + 1) (Memory.view_count mem);
      Test_util.check_int "views move no bytes" 640_000 (Memory.live_bytes mem);
      keep := [];
      Gc.full_major ();
      Gc.full_major ();
      Test_util.check_true "finalisers credited frees" (Memory.free_count mem > 0);
      Test_util.check_int "balance: allocs - frees = live buffers"
        (Memory.live_bytes mem)
        (80_000 * (Memory.alloc_count mem - Memory.free_count mem)))

let test_disabled_profiling_is_cheap () =
  (* Disabled recorder and tracker must record nothing... *)
  let r = Recorder.create ~enabled:false () in
  let t = Memory.create ~enabled:false () in
  let iters = 200_000 in
  let spin recorder tracker =
    let t0 = Unix.gettimeofday () in
    for i = 0 to iters - 1 do
      Recorder.span recorder Recorder.Host "op" ~start:(float_of_int i)
        ~finish:(float_of_int i +. 0.5);
      Memory.alloc tracker 64;
      Memory.free tracker 64
    done;
    Unix.gettimeofday () -. t0
  in
  let disabled_time = spin r t in
  Test_util.check_int "disabled recorder kept nothing" 0 (Recorder.event_count r);
  Test_util.check_int "disabled tracker kept nothing" 0 (Memory.alloc_count t);
  (* ...and cost at most what the recording path costs (generous absolute
     slack so scheduler noise cannot flake the suite). *)
  let enabled_time = spin (Recorder.create ()) (Memory.create ()) in
  Test_util.check_true "disabled path not slower than enabled path"
    (disabled_time <= enabled_time +. 0.05)

(* {1 Trace analysis} *)

let span ?(track = Recorder.Host) name start finish =
  { Recorder.name; cat = ""; track; start; finish; args = [] }

(* A hand-built timeline with known answers:

   host:   [parent 0..10] containing [child 2..6]; [tail 12..14]
   device: [k1 4..9] [k2 11..13]

   wall = 14; host busy = 10 + 2 = 12; device busy = 5 + 2 = 7;
   overlap = (4..9 within parent) + (12..13 within tail) = 6;
   idle = 14 - union([0..10],[11..14],[4..9]) = 14 - 13 = 1;
   critical path: child(4) cannot chain, best chain is parent(10)+tail(2)
   -> 12?  no: parent 0..10 then k2 11..13 then nothing = 12; parent + tail
   = 12; k1 ends 9, tail 12..14: chain parent(10) -> k2(2)? k2 starts 11 >=
   10, finish 13; tail starts 12 < 13 so not after k2. parent(10)+k2(2)=12,
   parent(10)+tail(2)=12. Either way the length is 12. *)
let synthetic_spans =
  [
    span "parent" 0.0 10.0;
    span "child" 2.0 6.0;
    span "tail" 12.0 14.0;
    span ~track:Recorder.Device "k1" 4.0 9.0;
    span ~track:Recorder.Device "k2" 11.0 13.0;
  ]

let test_analysis_synthetic () =
  let r = Analysis.of_spans synthetic_spans in
  Test_util.check_close "wall" 14.0 r.Analysis.wall_seconds;
  Test_util.check_int "span count" 5 r.Analysis.span_count;
  Test_util.check_close "host busy" 12.0 r.Analysis.host_busy_seconds;
  Test_util.check_close "device busy" 7.0 r.Analysis.device_busy_seconds;
  Test_util.check_close "overlap" 6.0 r.Analysis.overlap_seconds;
  Test_util.check_close "idle" 1.0 r.Analysis.idle_seconds;
  Test_util.check_close "critical path" 12.0 r.Analysis.critical.Analysis.seconds;
  let find name =
    List.find (fun (o : Analysis.op_stat) -> o.name = name) r.Analysis.op_profile
  in
  (* parent: 10 total, minus child's 4 nested = 6 self *)
  Test_util.check_close "parent total" 10.0 (find "parent").total_seconds;
  Test_util.check_close "parent self excludes child" 6.0
    (find "parent").self_seconds;
  Test_util.check_close "child keeps its own time" 4.0 (find "child").self_seconds;
  Test_util.check_close "device span self" 5.0 (find "k1").self_seconds;
  let host_self, dev_self = Analysis.self_time_by_track r in
  Test_util.check_close "host self sums to host busy" 12.0 host_self;
  Test_util.check_close "device self sums to device busy" 7.0 dev_self

let run_lenet_step () =
  let engine = Engine.create Spec.gtx1080 in
  let rt = S4o_lazy.Lazy_runtime.create engine in
  let module Bk = S4o_lazy.Lazy_backend.Make (struct
    let rt = rt
  end) in
  let module M = S4o_nn.Models.Make (Bk) in
  let module T = S4o_nn.Train.Make (Bk) in
  let module O = S4o_nn.Optimizer.Make (Bk) in
  let rng = Prng.create 3 in
  let data = S4o_data.Dataset.synthetic_mnist rng ~n:32 in
  let batches = S4o_data.Dataset.batches data ~batch_size:32 in
  let model = M.lenet rng in
  let opt = O.sgd ~lr:0.05 model in
  ignore (T.fit ~epochs:1 ~after_step:(fun ts -> Bk.barrier ts) model opt batches);
  (engine, S4o_lazy.Lazy_runtime.stats rt)

let test_analysis_invariants_on_real_run () =
  let engine, _ = run_lenet_step () in
  let r = Analysis.of_recorder (Engine.recorder engine) in
  let eps = 1e-9 in
  Test_util.check_true "nonempty timeline" (r.Analysis.span_count > 0);
  Test_util.check_true "wall positive" (r.Analysis.wall_seconds > 0.0);
  Test_util.check_true "critical path <= wall"
    (r.Analysis.critical.Analysis.seconds <= r.Analysis.wall_seconds +. eps);
  Test_util.check_true "critical path nonempty"
    (r.Analysis.critical.Analysis.path <> []);
  (* chain ordering: each span starts at-or-after its predecessor ends *)
  let rec ordered = function
    | a :: (b :: _ as rest) ->
        a.Recorder.finish <= b.Recorder.start +. eps && ordered rest
    | _ -> true
  in
  Test_util.check_true "critical path is a valid chain"
    (ordered r.Analysis.critical.Analysis.path);
  let host_self, dev_self = Analysis.self_time_by_track r in
  Test_util.check_true "host self times sum to <= wall"
    (host_self <= r.Analysis.wall_seconds +. eps);
  Test_util.check_true "device self times sum to <= wall"
    (dev_self <= r.Analysis.wall_seconds +. eps);
  Test_util.check_true "busy <= wall per track"
    (r.Analysis.host_busy_seconds <= r.Analysis.wall_seconds +. eps
    && r.Analysis.device_busy_seconds <= r.Analysis.wall_seconds +. eps);
  List.iter
    (fun (o : Analysis.op_stat) ->
      Test_util.check_true ("self <= total for " ^ o.name)
        (o.self_seconds <= o.total_seconds +. eps))
    r.Analysis.op_profile

let test_analysis_trace_json_roundtrip () =
  let r = Recorder.create () in
  List.iter
    (fun (s : Recorder.span) ->
      Recorder.span r s.Recorder.track s.Recorder.name ~start:s.Recorder.start
        ~finish:s.Recorder.finish)
    synthetic_spans;
  let live = Analysis.of_recorder r in
  match Analysis.of_trace_json (S4o_obs.Chrome_trace.to_string r) with
  | Error e -> Alcotest.failf "of_trace_json: %s" e
  | Ok parsed ->
      let eps = 1e-6 in
      Test_util.check_int "span count survives" live.Analysis.span_count
        parsed.Analysis.span_count;
      Test_util.check_close ~eps "wall survives" live.Analysis.wall_seconds
        parsed.Analysis.wall_seconds;
      Test_util.check_close ~eps "critical path survives"
        live.Analysis.critical.Analysis.seconds
        parsed.Analysis.critical.Analysis.seconds;
      Test_util.check_close ~eps "overlap survives" live.Analysis.overlap_seconds
        parsed.Analysis.overlap_seconds

(* {1 Prometheus exposition} *)

let test_prom_roundtrip () =
  let m = Metrics.create () in
  let c = Metrics.counter m "serve.completed" in
  Metrics.incr ~by:41 c;
  Metrics.incr c;
  let g = Metrics.gauge m "queue.depth" in
  Metrics.set g 7.0;
  Metrics.set g 3.0;
  let h = Metrics.histogram m "latency_seconds" in
  List.iter (Metrics.observe h) [ 0.001; 0.002; 0.004; 0.5 ];
  let text = Prom.to_text m in
  match Prom.samples_of_text text with
  | Error e -> Alcotest.failf "parse back: %s" e
  | Ok samples ->
      let get ?labels name =
        match Prom.find samples ?labels name with
        | Some v -> v
        | None -> Alcotest.failf "missing sample %s" name
      in
      Test_util.check_close "counter value" 42.0 (get "s4o_serve_completed");
      Test_util.check_close "gauge last" 3.0 (get "s4o_queue_depth");
      Test_util.check_close "gauge peak" 7.0 (get "s4o_queue_depth_peak");
      Test_util.check_close "histogram count" 4.0 (get "s4o_latency_seconds_count");
      Test_util.check_close ~eps:1e-9 "histogram sum" 0.507
        (get "s4o_latency_seconds_sum");
      Test_util.check_close "+Inf bucket is cumulative total" 4.0
        (get "s4o_latency_seconds_bucket" ~labels:[ ("le", "+Inf") ]);
      Test_util.check_close "le=0.01 bucket cumulative" 3.0
        (get "s4o_latency_seconds_bucket" ~labels:[ ("le", "0.01") ]);
      Test_util.check_close "exact p50" 0.003
        (get "s4o_latency_seconds" ~labels:[ ("quantile", "0.5") ]);
      Test_util.check_true "TYPE lines present"
        (let lines = String.split_on_char '\n' text in
         List.exists
           (fun l -> l = "# TYPE s4o_latency_seconds histogram")
           lines
         && List.exists (fun l -> l = "# TYPE s4o_serve_completed counter") lines)

let test_prom_sanitize () =
  Test_util.check_string "dots become underscores" "s4o_lazy_cache_hits"
    (Prom.sanitize "lazy.cache_hits");
  Test_util.check_string "custom namespace" "svc_a_b" (Prom.sanitize ~namespace:"svc" "a-b");
  Test_util.check_string "no namespace" "x_y" (Prom.sanitize ~namespace:"" "x.y")

let test_empty_histogram_convention () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "empty" in
  Test_util.check_close "min of empty is 0" 0.0 (Metrics.hist_min h);
  Test_util.check_close "max of empty is 0" 0.0 (Metrics.hist_max h);
  Test_util.check_close "mean of empty is 0" 0.0 (Metrics.hist_mean h);
  Test_util.check_close "quantile of empty is 0" 0.0 (Metrics.quantile h 0.99);
  (* the exposition side of the same convention *)
  match Prom.samples_of_text (Prom.to_text m) with
  | Error e -> Alcotest.failf "parse back: %s" e
  | Ok samples ->
      Test_util.check_close "exported count is 0" 0.0
        (Option.get (Prom.find samples "s4o_empty_count"));
      Test_util.check_close "exported sum is 0" 0.0
        (Option.get (Prom.find samples "s4o_empty_sum"))

(* {1 Hardened Chrome_trace.validate} *)

let test_validate_rejects_bad_traces () =
  (* negative span duration *)
  (match
     S4o_obs.Chrome_trace.validate
       {|{"traceEvents":[{"name":"k","ph":"X","pid":1,"tid":2,"ts":10,"dur":-5}]}|}
   with
  | Ok _ -> Alcotest.fail "negative duration accepted"
  | Error e ->
      Test_util.check_true "negative-duration error message"
        (String.length e > 0));
  (* non-monotone counter series *)
  (match
     S4o_obs.Chrome_trace.validate
       {|{"traceEvents":[
          {"name":"c","ph":"C","pid":1,"tid":1,"ts":10},
          {"name":"c","ph":"C","pid":1,"tid":1,"ts":5}]}|}
   with
  | Ok _ -> Alcotest.fail "non-monotone counter accepted"
  | Error _ -> ());
  (* distinct series may interleave timestamps freely *)
  (match
     S4o_obs.Chrome_trace.validate
       {|{"traceEvents":[
          {"name":"c","ph":"C","pid":1,"tid":1,"ts":10},
          {"name":"c","ph":"C","pid":1,"tid":2,"ts":5},
          {"name":"d","ph":"C","pid":1,"tid":1,"ts":0}]}|}
   with
  | Ok n -> Test_util.check_int "independent series accepted" 3 n
  | Error e -> Alcotest.failf "independent counter series rejected: %s" e);
  (* a span without dur is malformed *)
  match
    S4o_obs.Chrome_trace.validate
      {|{"traceEvents":[{"name":"k","ph":"X","pid":1,"tid":2,"ts":10}]}|}
  with
  | Ok _ -> Alcotest.fail "span without dur accepted"
  | Error _ -> ()

let test_validate_accepts_real_export () =
  let engine = Engine.create Spec.gtx1080 in
  let rt = S4o_eager.Runtime.create engine in
  let module Bk = S4o_eager.Eager_backend.Make (struct
    let rt = rt
  end) in
  let g = Prng.create 5 in
  let a = Bk.of_dense (Dense.rand_normal g [| 4; 4 |]) in
  ignore (Bk.to_dense (Bk.relu (Bk.mul a a)));
  match
    S4o_obs.Chrome_trace.validate
      (S4o_obs.Chrome_trace.to_string (Engine.recorder engine))
  with
  | Ok n -> Test_util.check_true "events present" (n > 0)
  | Error e -> Alcotest.failf "real export rejected: %s" e

(* {1 Stats/engine integration} *)

let test_stats_tensor_fields_and_counter_track () =
  with_global_tracking (fun mem ->
      let engine, stats = run_lenet_step () in
      Test_util.check_true "stats carry live tensor bytes"
        (stats.Stats.tensor_live_bytes > 0);
      Test_util.check_true "stats carry peak tensor bytes"
        (stats.Stats.tensor_peak_bytes >= stats.Stats.tensor_live_bytes);
      Test_util.check_int "stats mirror the tracker" (Memory.live_bytes mem)
        stats.Stats.tensor_live_bytes;
      Test_util.check_true "allocs observed" (stats.Stats.tensor_allocs > 0);
      (* dispatch sampled the tracker into the recorder as a counter track *)
      let counters =
        List.filter
          (function
            | Recorder.Counter { name = "tensor_live_bytes"; _ } -> true
            | _ -> false)
          (Recorder.events (Engine.recorder engine))
      in
      Test_util.check_true "tensor_live_bytes counter track recorded"
        (List.length counters > 0);
      (* and the export (validated, so counter monotonicity holds) shows it *)
      let trace = S4o_obs.Chrome_trace.to_string (Engine.recorder engine) in
      (match S4o_obs.Chrome_trace.validate trace with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "trace with memory counters invalid: %s" e);
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      Test_util.check_true "counter visible in Chrome trace JSON"
        (contains trace "tensor_live_bytes"))

let test_serve_peak_tensor_bytes () =
  with_global_tracking (fun _ ->
      let open S4o_serve in
      let cfg = Server.default_config ~replicas:1 ~warmup:false () in
      let t =
        Server.run cfg
          (Server.Open_loop
             { process = Load_gen.Poisson { rate = 4_000.0 }; requests = 40; seed = 2 })
      in
      Test_util.check_true "serving run reports peak tensor bytes"
        ((Server.stats t).Serve_stats.peak_tensor_bytes > 0))

let test_pool_busy_stats () =
  Pool.reset_stats ();
  let g = Prng.create 9 in
  let a = Dense.rand_normal g [| 96; 96 |] in
  (* 96^3 > the serial cutoff, so this runs on the pool *)
  ignore (Dense.matmul ~domains:4 a a);
  let s = Pool.stats () in
  Test_util.check_true "parallel run counted" (s.Pool.jobs >= 1);
  Test_util.check_true "chunks counted" (s.Pool.chunks >= s.Pool.jobs);
  Test_util.check_true "wall accumulated" (s.Pool.run_wall_seconds > 0.0);
  Test_util.check_true "caller domain busy" (s.Pool.domain_busy_seconds.(0) > 0.0);
  let fractions = Pool.busy_fractions s in
  Test_util.check_true "busy fractions nonempty" (fractions <> []);
  List.iter
    (fun (slot, f) ->
      Test_util.check_true
        (Printf.sprintf "fraction for domain %d in (0, 1+eps]" slot)
        (f > 0.0 && f <= 1.0 +. 0.25))
    fractions;
  Pool.reset_stats ();
  let z = Pool.stats () in
  Test_util.check_int "reset clears jobs" 0 z.Pool.jobs;
  Test_util.check_close "reset clears wall" 0.0 z.Pool.run_wall_seconds

let suite =
  let tc = Alcotest.test_case in
  [
    ( "profiling.memory",
      [
        tc "alloc/free balance and peak" `Quick test_memory_balance;
        tc "per-tag attribution and with_tag" `Quick test_memory_tags;
        tc "generation drops stale finaliser frees" `Quick test_memory_generation;
        tc "Dense buffers are accounted end to end" `Quick
          test_memory_through_dense;
        tc "disabled profiling is near-free" `Slow test_disabled_profiling_is_cheap;
      ] );
    ( "profiling.analysis",
      [
        tc "synthetic timeline: exact numbers" `Quick test_analysis_synthetic;
        tc "real run: invariants hold" `Quick test_analysis_invariants_on_real_run;
        tc "trace JSON round-trip" `Quick test_analysis_trace_json_roundtrip;
      ] );
    ( "profiling.prom",
      [
        tc "exposition round-trips" `Quick test_prom_roundtrip;
        tc "name sanitization" `Quick test_prom_sanitize;
        tc "empty-histogram convention" `Quick test_empty_histogram_convention;
      ] );
    ( "profiling.validate",
      [
        tc "rejects negative durations and non-monotone counters" `Quick
          test_validate_rejects_bad_traces;
        tc "accepts real exports" `Quick test_validate_accepts_real_export;
      ] );
    ( "profiling.integration",
      [
        tc "stats tensor fields + counter track" `Quick
          test_stats_tensor_fields_and_counter_track;
        tc "serving reports peak tensor bytes" `Quick
          test_serve_peak_tensor_bytes;
        tc "pool busy fractions" `Quick test_pool_busy_stats;
      ] );
  ]
