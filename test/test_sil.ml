(** Tests for the MSIL IR, interpreter, activity analysis, differentiability
    diagnostics, derivative synthesis, and optimization passes (§2.2). *)

open S4o_sil
module B = Builder

(* Straight-line: f(x, y) = x*y + sin(x) *)
let build_mul_sin () =
  let b = B.create ~name:"mul_sin" ~n_args:2 in
  let x = B.param b 0 and y = B.param b 1 in
  let xy = B.binary b Ir.Mul x y in
  let sx = B.unary b Ir.Sin x in
  let r = B.binary b Ir.Add xy sx in
  B.ret b r;
  B.finish b

(* Branching: f(x) = if x > 0 then x*x else 3*x *)
let build_branchy () =
  let b = B.create ~name:"branchy" ~n_args:1 in
  let x = B.param b 0 in
  let zero = B.const b 0.0 in
  let c = B.cmp b Ir.Gt x zero in
  let bt = B.new_block b ~params:1 in
  let bf = B.new_block b ~params:1 in
  let join = B.new_block b ~params:1 in
  B.cond_br b ~cond:c ~if_true:(bt, [| x |]) ~if_false:(bf, [| x |]);
  B.switch b bt;
  let xt = B.param b 0 in
  let sq = B.binary b Ir.Mul xt xt in
  B.br b join [| sq |];
  B.switch b bf;
  let xf = B.param b 0 in
  let three = B.const b 3.0 in
  let tx = B.binary b Ir.Mul three xf in
  B.br b join [| tx |];
  B.switch b join;
  B.ret b (B.param b 0);
  B.finish b

(* Loop: f(x, n) = x^n by iterated multiplication. The strict block-argument
   discipline means loop-invariant values (x and n) are threaded through the
   loop header explicitly, exactly as SIL would. *)
let build_pow_loop () =
  let b = B.create ~name:"pow_loop" ~n_args:2 in
  let x = B.param b 0 and n = B.param b 1 in
  let header = B.new_block b ~params:4 in
  (* acc, i, x, n *)
  let body = B.new_block b ~params:4 in
  let exit = B.new_block b ~params:1 in
  let one = B.const b 1.0 in
  let zero = B.const b 0.0 in
  B.br b header [| one; zero; x; n |];
  B.switch b header;
  let acc = B.param b 0
  and i = B.param b 1
  and xh = B.param b 2
  and nh = B.param b 3 in
  let c = B.cmp b Ir.Lt i nh in
  B.cond_br b ~cond:c ~if_true:(body, [| acc; i; xh; nh |])
    ~if_false:(exit, [| acc |]);
  B.switch b body;
  let accb = B.param b 0
  and ib = B.param b 1
  and xb = B.param b 2
  and nb = B.param b 3 in
  let acc' = B.binary b Ir.Mul accb xb in
  let oneb = B.const b 1.0 in
  let i' = B.binary b Ir.Add ib oneb in
  B.br b header [| acc'; i'; xb; nb |];
  B.switch b exit;
  B.ret b (B.param b 0);
  B.finish b

(* Calls: g(x) = x * x; f(x) = g(x) + g(2x) *)
let build_with_calls () =
  let g =
    let b = B.create ~name:"square" ~n_args:1 in
    let x = B.param b 0 in
    B.ret b (B.binary b Ir.Mul x x);
    B.finish b
  in
  let f =
    let b = B.create ~name:"sum_of_squares" ~n_args:1 in
    let x = B.param b 0 in
    let g1 = B.call b "square" [| x |] in
    let two = B.const b 2.0 in
    let x2 = B.binary b Ir.Mul two x in
    let g2 = B.call b "square" [| x2 |] in
    B.ret b (B.binary b Ir.Add g1 g2);
    B.finish b
  in
  (g, f)

let modul_of fs =
  let m = Interp.create_module () in
  List.iter (Interp.add m) fs;
  m

(* {1 Interpreter} *)

let test_interp_straightline () =
  let f = build_mul_sin () in
  let m = modul_of [ f ] in
  Test_util.check_close "x*y + sin x" ((2.0 *. 3.0) +. sin 2.0)
    (Interp.eval m f [| 2.0; 3.0 |])

let test_interp_branches () =
  let f = build_branchy () in
  let m = modul_of [ f ] in
  Test_util.check_close "positive branch" 16.0 (Interp.eval m f [| 4.0 |]);
  Test_util.check_close "negative branch" (-6.0) (Interp.eval m f [| -2.0 |])

let test_interp_loop () =
  let f = build_pow_loop () in
  let m = modul_of [ f ] in
  Test_util.check_close "3^4" 81.0 (Interp.eval m f [| 3.0; 4.0 |]);
  Test_util.check_close "x^0" 1.0 (Interp.eval m f [| 3.0; 0.0 |])

let test_interp_calls () =
  let g, f = build_with_calls () in
  let m = modul_of [ g; f ] in
  Test_util.check_close "x^2 + (2x)^2" 45.0 (Interp.eval m f [| 3.0 |])

let test_interp_fuel () =
  let b = B.create ~name:"infinite" ~n_args:1 in
  let x = B.param b 0 in
  let loop = B.new_block b ~params:1 in
  B.br b loop [| x |];
  B.switch b loop;
  let v = B.param b 0 in
  let one = B.const b 1.0 in
  let v' = B.binary b Ir.Add v one in
  B.br b loop [| v' |];
  let f = B.finish b in
  let m = modul_of [ f ] in
  Test_util.check_raises_any "fuel exhausts" (fun () ->
      Interp.eval ~fuel:1000 m f [| 0.0 |])

let test_interp_arity () =
  let f = build_mul_sin () in
  let m = modul_of [ f ] in
  Test_util.check_raises_any "arity mismatch" (fun () ->
      Interp.eval m f [| 1.0 |])

let test_validate_rejects_forward_ref () =
  Test_util.check_raises_any "operand before definition" (fun () ->
      Ir.validate
        {
          Ir.name = "bad";
          n_args = 1;
          blocks =
            [|
              {
                Ir.params = 1;
                insts = [| Ir.Unary (Ir.Neg, 5) |];
                term = Ir.Ret 1;
              };
            |];
        })

let test_pretty_print () =
  let f = build_branchy () in
  let s = Ir.to_string f in
  Test_util.check_true "mentions cond_br" (String.length s > 0);
  Test_util.check_true "contains function name"
    (String.length s >= 6 && String.sub s 0 5 = "func ")

(* {1 Activity analysis} *)

let test_activity_straightline () =
  let f = build_mul_sin () in
  let a = Activity.analyze f in
  Test_util.check_true "args varied" a.Activity.varied.(0).(0);
  Test_util.check_true "result varied" (Activity.return_is_varied f a);
  (* All three instructions are active: x*y, sin x, their sum. *)
  Test_util.check_int "active insts" 3 (Activity.active_inst_count f a)

let test_activity_wrt_subset () =
  let f = build_mul_sin () in
  (* w.r.t. y only: sin x is varied only via x, so it is inactive. *)
  let a = Activity.analyze ~wrt:[ 1 ] f in
  Test_util.check_int "active insts wrt y" 2 (Activity.active_inst_count f a)

let test_activity_constant_result () =
  let b = B.create ~name:"const_fn" ~n_args:1 in
  let c = B.const b 42.0 in
  B.ret b c;
  let f = B.finish b in
  let a = Activity.analyze f in
  Test_util.check_bool "result not varied" false (Activity.return_is_varied f a)

let test_activity_through_loop () =
  let f = build_pow_loop () in
  let a = Activity.analyze ~wrt:[ 0 ] f in
  (* The loop-carried accumulator must become varied via the fixed point. *)
  Test_util.check_true "loop result varied" (Activity.return_is_varied f a)

let test_activity_cmp_blocks_variedness () =
  (* f(x) = float(x > 0): varied input, but only through a comparison. *)
  let b = B.create ~name:"step" ~n_args:1 in
  let x = B.param b 0 in
  let zero = B.const b 0.0 in
  let c = B.cmp b Ir.Gt x zero in
  B.ret b c;
  let f = B.finish b in
  let a = Activity.analyze f in
  Test_util.check_bool "cmp result not differentiably varied" false
    (Activity.return_is_varied f a)

(* {1 Diagnostics} *)

let has_deriv_all _ = true

let test_diag_zero_gradient_warning () =
  let b = B.create ~name:"constant" ~n_args:1 in
  let c = B.const b 1.0 in
  B.ret b c;
  let f = B.finish b in
  let diags = Diagnostics.check ~has_derivative:has_deriv_all f in
  Test_util.check_true "warns result-not-varied"
    (List.exists
       (fun d -> d.Diagnostics.kind = Diagnostics.Result_not_varied)
       diags)

let test_diag_nondifferentiable_use () =
  let f = build_branchy () in
  let diags = Diagnostics.check ~has_derivative:has_deriv_all f in
  Test_util.check_true "warns about comparison of varied value"
    (List.exists
       (fun d -> d.Diagnostics.kind = Diagnostics.Nondifferentiable_use)
       diags)

let test_diag_multiblock_loop () =
  (* pow_loop's header compares i < n where i flows from a varied block
     parameter chain: the warning must locate the cmp in the header block,
     not the entry. *)
  let f = build_pow_loop () in
  let diags = Diagnostics.check ~has_derivative:has_deriv_all f in
  let nd =
    List.filter
      (fun d -> d.Diagnostics.kind = Diagnostics.Nondifferentiable_use)
      diags
  in
  Test_util.check_true "warns in loop header" (nd <> []);
  Test_util.check_true "located in a non-entry block"
    (List.for_all (fun d -> d.Diagnostics.block = 1) nd);
  Test_util.check_int "no errors" 0 (List.length (Diagnostics.errors diags))

let test_diag_wrt_subset_not_varied () =
  (* f(x, y) = x * x: differentiating only w.r.t. y yields an identically
     zero gradient, which must warn; w.r.t. x must stay silent. *)
  let b = B.create ~name:"xsq" ~n_args:2 in
  let x = B.param b 0 in
  B.ret b (B.binary b Ir.Mul x x);
  let f = B.finish b in
  let warns wrt =
    Diagnostics.check ~wrt ~has_derivative:has_deriv_all f
    |> List.exists (fun d ->
           d.Diagnostics.kind = Diagnostics.Result_not_varied)
  in
  Test_util.check_bool "wrt y warns" true (warns [ 1 ]);
  Test_util.check_bool "wrt x silent" false (warns [ 0 ]);
  Test_util.check_bool "default wrt silent" false
    (Diagnostics.check ~has_derivative:has_deriv_all f
    |> List.exists (fun d ->
           d.Diagnostics.kind = Diagnostics.Result_not_varied))

let test_diag_wrt_subset_suppresses_cmp () =
  (* branchy compares x > 0; when x is not differentiated the comparison no
     longer consumes a varied value, so the warning disappears. *)
  let f = build_branchy () in
  let diags = Diagnostics.check ~wrt:[] ~has_derivative:has_deriv_all f in
  Test_util.check_bool "no nondifferentiable-use with empty wrt" false
    (List.exists
       (fun d -> d.Diagnostics.kind = Diagnostics.Nondifferentiable_use)
       diags)

let test_diag_floor_warns () =
  let b = B.create ~name:"floored" ~n_args:1 in
  let x = B.param b 0 in
  let fl = B.unary b Ir.Floor x in
  B.ret b (B.binary b Ir.Mul fl x);
  let f = B.finish b in
  let diags = Diagnostics.check ~has_derivative:has_deriv_all f in
  Test_util.check_true "floor of varied value warns"
    (List.exists
       (fun d -> d.Diagnostics.kind = Diagnostics.Nondifferentiable_use)
       diags)

let test_diag_unknown_callee () =
  let b = B.create ~name:"caller" ~n_args:1 in
  let x = B.param b 0 in
  let r = B.call b "mystery" [| x |] in
  B.ret b r;
  let f = B.finish b in
  let diags = Diagnostics.check ~has_derivative:(fun _ -> false) f in
  let errs = Diagnostics.errors diags in
  Test_util.check_int "one error" 1 (List.length errs)

(* {1 Derivative synthesis} *)

let grad_of fs name args =
  let m = modul_of fs in
  let ctx = Transform.create_ctx m in
  Transform.gradient ctx name args

let test_grad_straightline () =
  (* d/dx (x*y + sin x) = y + cos x; d/dy = x *)
  let g = grad_of [ build_mul_sin () ] "mul_sin" [| 2.0; 3.0 |] in
  Test_util.check_close "d/dx" (3.0 +. cos 2.0) g.(0);
  Test_util.check_close "d/dy" 2.0 g.(1)

let test_grad_branches () =
  let f = build_branchy () in
  let g1 = grad_of [ f ] "branchy" [| 4.0 |] in
  Test_util.check_close "d/dx x^2 at 4" 8.0 g1.(0);
  let g2 = grad_of [ f ] "branchy" [| -2.0 |] in
  Test_util.check_close "d/dx 3x" 3.0 g2.(0)

let test_grad_loop () =
  (* d/dx x^4 = 4 x^3 *)
  let g = grad_of [ build_pow_loop () ] "pow_loop" [| 3.0; 4.0 |] in
  Test_util.check_close "4*27" 108.0 g.(0)

let test_grad_calls () =
  (* f(x) = x^2 + 4x^2 = 5x^2, f' = 10x *)
  let g, f = build_with_calls () in
  let grad = grad_of [ g; f ] "sum_of_squares" [| 3.0 |] in
  Test_util.check_close "10x" 30.0 grad.(0)

let test_grad_matches_finite_difference () =
  let f = build_mul_sin () in
  let m = modul_of [ f ] in
  let ctx = Transform.create_ctx m in
  let at = [| 1.3; -0.7 |] in
  let ad = Transform.gradient ctx "mul_sin" at in
  let fd =
    Test_util.finite_diff_grad (fun x -> Interp.eval m f x) at
  in
  Test_util.check_close ~eps:1e-4 "fd x" fd.(0) ad.(0);
  Test_util.check_close ~eps:1e-4 "fd y" fd.(1) ad.(1)

let test_jvp_matches_vjp_for_scalar () =
  let f = build_mul_sin () in
  let m = modul_of [ f ] in
  let ctx = Transform.create_ctx m in
  let at = [| 0.4; 1.9 |] in
  let g = Transform.gradient ctx "mul_sin" at in
  (* directional derivative along e0 must equal g.(0) *)
  let d = Transform.derivative_along ctx "mul_sin" ~at ~along:[| 1.0; 0.0 |] in
  Test_util.check_close "jvp = vjp" g.(0) d

let test_value_with_gradient () =
  let f = build_mul_sin () in
  let m = modul_of [ f ] in
  let ctx = Transform.create_ctx m in
  let v, g = Transform.value_with_gradient ctx "mul_sin" [| 2.0; 3.0 |] in
  Test_util.check_close "value" (6.0 +. sin 2.0) v;
  Test_util.check_close "grad" (3.0 +. cos 2.0) g.(0)

let test_custom_derivative_base_case () =
  (* Register a custom derivative for "square" and verify the transform stops
     recursing there: the custom VJP deliberately returns a wrong scaled
     gradient so we can tell it was used. *)
  let g, f = build_with_calls () in
  let m = modul_of [ g; f ] in
  let ctx = Transform.create_ctx m in
  Transform.register_custom ctx "square"
    {
      Transform.vjp = (fun args -> (args.(0) *. args.(0), fun s -> [| s *. 100.0 |]));
      jvp = (fun args -> (args.(0) *. args.(0), fun d -> d.(0) *. 100.0));
    };
  let grad = Transform.gradient ctx "sum_of_squares" [| 3.0 |] in
  (* pullback: 100 through g1 + 2 * 100 through g2 = 300 *)
  Test_util.check_close "custom derivative used" 300.0 grad.(0);
  Test_util.check_int "nothing synthesized for square" 1
    (Transform.synthesized_count ctx)

let test_recursive_function_derivative () =
  (* pow_rec(x, n) = if n < 0.5 then 1 else x * pow_rec(x, n-1) *)
  let b = B.create ~name:"pow_rec" ~n_args:2 in
  let x = B.param b 0 and n = B.param b 1 in
  let half = B.const b 0.5 in
  let c = B.cmp b Ir.Lt n half in
  let base = B.new_block b ~params:0 in
  let step = B.new_block b ~params:2 in
  B.cond_br b ~cond:c ~if_true:(base, [||]) ~if_false:(step, [| x; n |]);
  B.switch b base;
  let one = B.const b 1.0 in
  B.ret b one;
  B.switch b step;
  let xs = B.param b 0 and ns = B.param b 1 in
  let ones = B.const b 1.0 in
  let n1 = B.binary b Ir.Sub ns ones in
  let rec_ = B.call b "pow_rec" [| xs; n1 |] in
  B.ret b (B.binary b Ir.Mul xs rec_);
  let f = B.finish b in
  let m = modul_of [ f ] in
  Test_util.check_close "primal 2^5" 32.0 (Interp.eval m f [| 2.0; 5.0 |]);
  let ctx = Transform.create_ctx m in
  let g = Transform.gradient ctx "pow_rec" [| 2.0; 5.0 |] in
  Test_util.check_close "d/dx 2^5 = 5*16" 80.0 g.(0)

let test_transform_error_on_unknown_callee () =
  let b = B.create ~name:"caller2" ~n_args:1 in
  let x = B.param b 0 in
  B.ret b (B.call b "mystery" [| x |]);
  let f = B.finish b in
  let m = modul_of [ f ] in
  let ctx = Transform.create_ctx m in
  Test_util.check_raises_any "transform error" (fun () ->
      Transform.gradient ctx "caller2" [| 1.0 |])

let test_pullback_reusable () =
  let f = build_mul_sin () in
  let m = modul_of [ f ] in
  let ctx = Transform.create_ctx m in
  let d = Transform.derivative_of ctx "mul_sin" in
  let _, pb = d.Transform.vjp [| 2.0; 3.0 |] in
  let g1 = pb 1.0 in
  let g2 = pb 2.0 in
  Test_util.check_close "seed scales" (2.0 *. g1.(0)) g2.(0)

(* {1 Passes} *)

let test_constant_folding () =
  let b = B.create ~name:"foldable" ~n_args:1 in
  let x = B.param b 0 in
  let two = B.const b 2.0 in
  let three = B.const b 3.0 in
  let six = B.binary b Ir.Mul two three in
  let r = B.binary b Ir.Mul six x in
  B.ret b r;
  let f = B.finish b in
  let folded = Passes.constant_fold f in
  (* The 2*3 instruction must now be a constant. *)
  let has_const_6 =
    Array.exists
      (fun b ->
        Array.exists
          (fun i -> match i with Ir.Const 6.0 -> true | _ -> false)
          b.Ir.insts)
      folded.Ir.blocks
  in
  Test_util.check_true "folded to 6" has_const_6;
  let m = modul_of [ folded ] in
  Test_util.check_close "semantics preserved" 30.0 (Interp.eval m folded [| 5.0 |])

let test_dce_removes_unused () =
  let b = B.create ~name:"deadcode" ~n_args:1 in
  let x = B.param b 0 in
  let _dead = B.unary b Ir.Exp x in
  let r = B.binary b Ir.Mul x x in
  B.ret b r;
  let f = B.finish b in
  let cleaned = Passes.dead_code_elim f in
  Test_util.check_int "one inst left" 1 (Passes.inst_count cleaned);
  let m = modul_of [ cleaned ] in
  Test_util.check_close "semantics preserved" 9.0 (Interp.eval m cleaned [| 3.0 |])

let test_simplify_fixed_point () =
  let b = B.create ~name:"simplifiable" ~n_args:1 in
  let x = B.param b 0 in
  let one = B.const b 1.0 in
  let two = B.const b 2.0 in
  let three = B.binary b Ir.Add one two in
  let dead = B.binary b Ir.Mul three two in
  let _deader = B.unary b Ir.Sin dead in
  let r = B.binary b Ir.Add x one in
  B.ret b r;
  let f = B.finish b in
  let s = Passes.simplify f in
  (* Only `const 1` and `add x 1` should survive. *)
  Test_util.check_int "two insts" 2 (Passes.inst_count s);
  let m = modul_of [ s ] in
  Test_util.check_close "semantics preserved" 8.0 (Interp.eval m s [| 7.0 |])

(* {1 Property tests} *)

let qcheck_grad_loop =
  Test_util.qtest ~count:100 "pow_loop gradient = n*x^(n-1)"
    QCheck.(pair (float_range 0.5 3.0) (int_range 0 6))
    (fun (x, n) ->
      let f = build_pow_loop () in
      let g = grad_of [ f ] "pow_loop" [| x; float_of_int n |] in
      let expected =
        if n = 0 then 0.0 else float_of_int n *. (x ** float_of_int (n - 1))
      in
      Float.abs (g.(0) -. expected) < 1e-6 *. Float.max 1.0 (Float.abs expected))

let qcheck_grad_matches_fd =
  Test_util.qtest ~count:100 "branchy gradient matches finite differences"
    QCheck.(float_range (-5.0) 5.0)
    (fun x ->
      QCheck.assume (Float.abs x > 0.01);
      let f = build_branchy () in
      let m = modul_of [ f ] in
      let ctx = Transform.create_ctx m in
      let g = (Transform.gradient ctx "branchy" [| x |]).(0) in
      let fd = (Test_util.finite_diff_grad (fun a -> Interp.eval m f a) [| x |]).(0) in
      Float.abs (g -. fd) < 1e-3 *. Float.max 1.0 (Float.abs fd))

let qcheck_simplify_preserves_semantics =
  Test_util.qtest ~count:100 "simplify preserves mul_sin semantics"
    QCheck.(pair (float_range (-3.0) 3.0) (float_range (-3.0) 3.0))
    (fun (x, y) ->
      let f = build_mul_sin () in
      let s = Passes.simplify f in
      let m1 = modul_of [ f ] and m2 = modul_of [ s ] in
      let a = Interp.eval m1 f [| x; y |] and b = Interp.eval m2 s [| x; y |] in
      Float.abs (a -. b) < 1e-12)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "sil.interp",
      [
        tc "straight-line" `Quick test_interp_straightline;
        tc "branches" `Quick test_interp_branches;
        tc "loop" `Quick test_interp_loop;
        tc "calls" `Quick test_interp_calls;
        tc "fuel bound" `Quick test_interp_fuel;
        tc "arity check" `Quick test_interp_arity;
        tc "validation rejects forward refs" `Quick test_validate_rejects_forward_ref;
        tc "pretty printer" `Quick test_pretty_print;
      ] );
    ( "sil.activity",
      [
        tc "straight-line all active" `Quick test_activity_straightline;
        tc "wrt subset" `Quick test_activity_wrt_subset;
        tc "constant result not varied" `Quick test_activity_constant_result;
        tc "loop fixed point" `Quick test_activity_through_loop;
        tc "cmp blocks variedness" `Quick test_activity_cmp_blocks_variedness;
      ] );
    ( "sil.diagnostics",
      [
        tc "zero-gradient warning" `Quick test_diag_zero_gradient_warning;
        tc "non-differentiable use" `Quick test_diag_nondifferentiable_use;
        tc "multi-block loop" `Quick test_diag_multiblock_loop;
        tc "wrt subset not varied" `Quick test_diag_wrt_subset_not_varied;
        tc "wrt subset suppresses cmp" `Quick test_diag_wrt_subset_suppresses_cmp;
        tc "floor warns" `Quick test_diag_floor_warns;
        tc "unknown callee error" `Quick test_diag_unknown_callee;
      ] );
    ( "sil.transform",
      [
        tc "straight-line gradient" `Quick test_grad_straightline;
        tc "branch gradients" `Quick test_grad_branches;
        tc "loop gradient" `Quick test_grad_loop;
        tc "call gradient" `Quick test_grad_calls;
        tc "matches finite differences" `Quick test_grad_matches_finite_difference;
        tc "jvp agrees with vjp" `Quick test_jvp_matches_vjp_for_scalar;
        tc "value_with_gradient" `Quick test_value_with_gradient;
        tc "custom derivative base case" `Quick test_custom_derivative_base_case;
        tc "recursive function" `Quick test_recursive_function_derivative;
        tc "unknown callee raises" `Quick test_transform_error_on_unknown_callee;
        tc "pullback reusable" `Quick test_pullback_reusable;
        qcheck_grad_loop;
        qcheck_grad_matches_fd;
      ] );
    ( "sil.passes",
      [
        tc "constant folding" `Quick test_constant_folding;
        tc "dce" `Quick test_dce_removes_unused;
        tc "simplify fixed point" `Quick test_simplify_fixed_point;
        qcheck_simplify_preserves_semantics;
      ] );
  ]

(* {1 Parser} *)

let mul_sin_text = {|
func @mul_sin(2 args) {
bb0(v0, v1):
  v2 = mul v0, v1
  v3 = sin v0
  v4 = add v2, v3
  ret v4
}
|}

let test_parse_straightline () =
  let f = Parser.parse_func mul_sin_text in
  let m = modul_of [ f ] in
  Test_util.check_close "parsed semantics" ((2.0 *. 3.0) +. sin 2.0)
    (Interp.eval m f [| 2.0; 3.0 |])

let test_parse_roundtrip () =
  (* print -> parse -> print is a fixed point, and semantics survive *)
  List.iter
    (fun f ->
      let text = Ir.to_string f in
      let f' = Parser.parse_func text in
      Test_util.check_string "pretty-printed fixed point" text (Ir.to_string f');
      let m = modul_of [ f ] and m' = modul_of [ f' ] in
      List.iter
        (fun args ->
          Test_util.check_close "same semantics" (Interp.eval m f args)
            (Interp.eval m' f' args))
        [ [| 1.5; 2.0 |]; [| -0.5; 3.0 |] ])
    [ build_mul_sin (); build_pow_loop () ]

let test_parse_control_flow () =
  let f = build_branchy () in
  let f' = Parser.parse_func (Ir.to_string f) in
  let m = modul_of [ f' ] in
  Test_util.check_close "positive branch" 16.0 (Interp.eval m f' [| 4.0 |]);
  Test_util.check_close "negative branch" (-6.0) (Interp.eval m f' [| -2.0 |])

let test_parse_module_with_calls () =
  let g, f = build_with_calls () in
  let text = Ir.to_string g ^ "\n" ^ Ir.to_string f in
  let m = Parser.parse_module text in
  Test_util.check_close "module semantics" 45.0
    (Interp.eval_name m "sum_of_squares" [| 3.0 |])

let test_parse_then_differentiate () =
  (* the full §2 pipeline from text: parse, transform, evaluate gradient *)
  let f = Parser.parse_func mul_sin_text in
  let m = modul_of [ f ] in
  let ctx = Transform.create_ctx m in
  let grad = Transform.gradient ctx "mul_sin" [| 2.0; 3.0 |] in
  Test_util.check_close "gradient of parsed code" (3.0 +. cos 2.0) grad.(0)

let test_parse_comments_and_blanks () =
  let text = "; a comment\n\n" ^ mul_sin_text ^ "\n; trailing comment\n" in
  let f = Parser.parse_func text in
  Test_util.check_string "name" "mul_sin" f.Ir.name

let test_parse_errors () =
  let cases =
    [
      ("garbage", "not msil at all");
      ("sparse values", "func @f(1 args) {\nbb0(v0):\n  v5 = neg v0\n  ret v5\n}");
      ("unknown op", "func @f(1 args) {\nbb0(v0):\n  v1 = frobnicate v0\n  ret v1\n}");
      ("missing terminator", "func @f(1 args) {\nbb0(v0):\n  v1 = neg v0\n}");
      ("unterminated", "func @f(1 args) {\nbb0(v0):\n  ret v0");
      ("bad arity", "func @f(1 args) {\nbb0(v0):\n  v1 = add v0\n  ret v1\n}");
    ]
  in
  List.iter
    (fun (name, text) ->
      Test_util.check_raises_any name (fun () -> Parser.parse_func text))
    cases

let parser_suite =
  let tc = Alcotest.test_case in
  [
    ( "sil.parser",
      [
        tc "straight-line" `Quick test_parse_straightline;
        tc "round trip" `Quick test_parse_roundtrip;
        tc "control flow" `Quick test_parse_control_flow;
        tc "module with calls" `Quick test_parse_module_with_calls;
        tc "parse then differentiate" `Quick test_parse_then_differentiate;
        tc "comments and blanks" `Quick test_parse_comments_and_blanks;
        tc "rejects malformed input" `Quick test_parse_errors;
      ] );
  ]

let suite = suite @ parser_suite

(* {1 JVP code generation} *)

let test_codegen_jvp_matches_transform () =
  let f = build_mul_sin () in
  let m = modul_of [ f ] in
  let ctx = Transform.create_ctx m in
  List.iter
    (fun at ->
      let via_transform = Transform.gradient ctx "mul_sin" at in
      let via_codegen = Codegen.gradient_via_codegen m f at in
      Test_util.check_close "d/dx agree" via_transform.(0) via_codegen.(0);
      Test_util.check_close "d/dy agree" via_transform.(1) via_codegen.(1))
    [ [| 2.0; 3.0 |]; [| -0.5; 1.7 |]; [| 0.0; 0.0 |] ]

let test_codegen_emits_real_ir () =
  let f = build_mul_sin () in
  let m = modul_of [ f ] in
  let jvp = Codegen.generate_jvp m f in
  Test_util.check_int "doubled arity" 4 jvp.Ir.n_args;
  Test_util.check_string "conventional name" "mul_sin_jvp" jvp.Ir.name;
  (* the generated code is plain MSIL: the parser round-trips it *)
  let reparsed = Parser.parse_func (Ir.to_string jvp) in
  Test_util.check_close "round-tripped derivative" 
    (Interp.eval m jvp [| 2.0; 3.0; 1.0; 0.0 |])
    (Interp.eval m reparsed [| 2.0; 3.0; 1.0; 0.0 |])

let test_codegen_output_is_optimizable () =
  (* §2.2: the generated code is "fully amenable to the same set of
     compile-time optimizations as regular Swift code" *)
  let f = build_mul_sin () in
  let m = modul_of [ f ] in
  let jvp = Codegen.generate_jvp m f in
  let simplified = Passes.simplify jvp in
  Test_util.check_true "DCE/folding bites"
    (Passes.inst_count simplified <= Passes.inst_count jvp);
  Test_util.check_close "semantics preserved"
    (Interp.eval m jvp [| 1.1; 0.4; 0.0; 1.0 |])
    (Interp.eval m simplified [| 1.1; 0.4; 0.0; 1.0 |])

let test_codegen_second_derivative () =
  (* lifting the §2.3 limitation for straight-line code: the generated JVP is
     plain IR, so the runtime transform can differentiate it AGAIN.
     f(x) = sin(x) * x. f''(x) = 2cos x - x sin x. *)
  let b = B.create ~name:"sinx_x" ~n_args:1 in
  let x = B.param b 0 in
  let f_ir = B.binary b Ir.Mul (B.unary b Ir.Sin x) x in
  B.ret b f_ir;
  let f = B.finish b in
  let m = modul_of [ f ] in
  let jvp = Codegen.generate_jvp m f in
  (* jvp(x, dx) with dx = 1 computes f'(x); differentiate THAT w.r.t. x *)
  let ctx = Transform.create_ctx m in
  let x0 = 0.8 in
  let g = Transform.gradient ctx jvp.Ir.name [| x0; 1.0 |] in
  let expected = (2.0 *. cos x0) -. (x0 *. sin x0) in
  Test_util.check_close "f'' via transform-of-generated-code" expected g.(0)

let test_codegen_with_calls () =
  let g, f = build_with_calls () in
  let m = modul_of [ g; f ] in
  (* gradient of 5x^2 = 10x, through a generated callee JVP *)
  let grad = Codegen.gradient_via_codegen m f [| 3.0 |] in
  Test_util.check_close "call chain" 30.0 grad.(0);
  Test_util.check_true "callee jvp registered"
    (Interp.find m "square_jvp" <> None)

let test_codegen_rejects_control_flow () =
  let f = build_branchy () in
  let m = modul_of [ f ] in
  Test_util.check_raises_any "control flow unsupported" (fun () ->
      Codegen.generate_jvp m f)

let test_codegen_relu_mask () =
  let b = B.create ~name:"relu_fn" ~n_args:1 in
  let x = B.param b 0 in
  B.ret b (B.unary b Ir.Relu x);
  let f = B.finish b in
  let m = modul_of [ f ] in
  let grad_pos = Codegen.gradient_via_codegen m f [| 2.0 |] in
  let grad_neg = Codegen.gradient_via_codegen m f [| -2.0 |] in
  Test_util.check_close "relu' positive" 1.0 grad_pos.(0);
  Test_util.check_close "relu' negative" 0.0 grad_neg.(0)

let qcheck_codegen_matches_fd =
  Test_util.qtest ~count:80 "generated JVP matches finite differences"
    QCheck.(pair (float_range 0.3 2.0) (float_range 0.3 2.0))
    (fun (x, y) ->
      (* f(x, y) = sigmoid(x / y) + max(x, y) * tanh(y) *)
      let b = B.create ~name:"mixed" ~n_args:2 in
      let vx = B.param b 0 and vy = B.param b 1 in
      let s = B.unary b Ir.Sigmoid (B.binary b Ir.Div vx vy) in
      let mx = B.binary b Ir.Max vx vy in
      let t = B.binary b Ir.Mul mx (B.unary b Ir.Tanh vy) in
      B.ret b (B.binary b Ir.Add s t);
      let f = B.finish b in
      let m = modul_of [ f ] in
      QCheck.assume (Float.abs (x -. y) > 1e-3);
      let grad = Codegen.gradient_via_codegen m f [| x; y |] in
      let fd =
        Test_util.finite_diff_grad (fun a -> Interp.eval m f a) [| x; y |]
      in
      Float.abs (grad.(0) -. fd.(0)) < 1e-3 *. Float.max 1.0 (Float.abs fd.(0))
      && Float.abs (grad.(1) -. fd.(1)) < 1e-3 *. Float.max 1.0 (Float.abs fd.(1)))

let codegen_suite =
  let tc = Alcotest.test_case in
  [
    ( "sil.codegen",
      [
        tc "matches the runtime transform" `Quick test_codegen_jvp_matches_transform;
        tc "emits real, parseable IR" `Quick test_codegen_emits_real_ir;
        tc "output is optimizable" `Quick test_codegen_output_is_optimizable;
        tc "second derivatives (S2.3 lifted)" `Quick test_codegen_second_derivative;
        tc "calls via callee JVPs" `Quick test_codegen_with_calls;
        tc "rejects control flow" `Quick test_codegen_rejects_control_flow;
        tc "relu mask" `Quick test_codegen_relu_mask;
        qcheck_codegen_matches_fd;
      ] );
  ]

let suite = suite @ codegen_suite

(* {1 VJP code generation} *)

let test_vjp_codegen_matches_jvp_codegen () =
  let f = build_mul_sin () in
  let m = modul_of [ f ] in
  List.iter
    (fun at ->
      let jvp_grad = Codegen.gradient_via_codegen m f at in
      let vjp_grad = Codegen.gradient_via_vjp_codegen m f at in
      Test_util.check_float_array "both codegen modes agree" jvp_grad vjp_grad)
    [ [| 2.0; 3.0 |]; [| -1.1; 0.4 |] ]

let test_vjp_codegen_seed_scales () =
  let f = build_mul_sin () in
  let m = modul_of [ f ] in
  let vjp = Codegen.generate_vjp m f ~wrt:0 in
  let g1 = Interp.eval m vjp [| 2.0; 3.0; 1.0 |] in
  let g2 = Interp.eval m vjp [| 2.0; 3.0; -2.5 |] in
  Test_util.check_close "pullback is linear in the seed" (-2.5 *. g1) g2

let test_vjp_codegen_select () =
  (* f(x, y) = select(x > y, x*x, y) : subgradient switches at the branch *)
  let b = B.create ~name:"sel_fn" ~n_args:2 in
  let x = B.param b 0 and y = B.param b 1 in
  let c = B.cmp b Ir.Gt x y in
  let xx = B.binary b Ir.Mul x x in
  B.ret b (B.select b ~cond:c ~if_true:xx ~if_false:y);
  let f = B.finish b in
  let m = modul_of [ f ] in
  let g_taken = Codegen.gradient_via_vjp_codegen m f [| 3.0; 1.0 |] in
  Test_util.check_float_array "x-branch taken" [| 6.0; 0.0 |] g_taken;
  let g_other = Codegen.gradient_via_vjp_codegen m f [| 1.0; 3.0 |] in
  Test_util.check_float_array "y-branch taken" [| 0.0; 1.0 |] g_other

let test_vjp_codegen_unused_arg () =
  (* an argument that never influences the result gets a literal zero *)
  let b = B.create ~name:"ignores_y" ~n_args:2 in
  let x = B.param b 0 in
  B.ret b (B.binary b Ir.Mul x x);
  let f = B.finish b in
  let m = modul_of [ f ] in
  let g = Codegen.gradient_via_vjp_codegen m f [| 4.0; 99.0 |] in
  Test_util.check_float_array "dead argument" [| 8.0; 0.0 |] g

let test_vjp_codegen_calls () =
  let g, f = build_with_calls () in
  let m = modul_of [ g; f ] in
  let grad = Codegen.gradient_via_vjp_codegen m f [| 3.0 |] in
  Test_util.check_close "through callee partials" 30.0 grad.(0)

let test_vjp_codegen_rejects_control_flow () =
  let f = build_branchy () in
  let m = modul_of [ f ] in
  Test_util.check_raises_any "control flow" (fun () ->
      Codegen.generate_vjp m f ~wrt:0)

let qcheck_vjp_codegen_matches_transform =
  Test_util.qtest ~count:80 "generated VJP = runtime transform"
    QCheck.(pair (float_range 0.3 2.5) (float_range 0.3 2.5))
    (fun (x, y) ->
      let b = B.create ~name:"qvjp" ~n_args:2 in
      let vx = B.param b 0 and vy = B.param b 1 in
      let t1 = B.binary b Ir.Mul (B.unary b Ir.Exp vx) (B.unary b Ir.Log vy) in
      let t2 = B.binary b Ir.Div vy (B.unary b Ir.Sqrt vx) in
      B.ret b (B.binary b Ir.Add t1 t2);
      let f = B.finish b in
      let m = modul_of [ f ] in
      let ctx = Transform.create_ctx m in
      let g1 = Transform.gradient ctx "qvjp" [| x; y |] in
      let g2 = Codegen.gradient_via_vjp_codegen m f [| x; y |] in
      Float.abs (g1.(0) -. g2.(0)) < 1e-9 *. Float.max 1.0 (Float.abs g1.(0))
      && Float.abs (g1.(1) -. g2.(1)) < 1e-9 *. Float.max 1.0 (Float.abs g1.(1)))

let vjp_codegen_suite =
  let tc = Alcotest.test_case in
  [
    ( "sil.vjp_codegen",
      [
        tc "agrees with JVP codegen" `Quick test_vjp_codegen_matches_jvp_codegen;
        tc "linear in the seed" `Quick test_vjp_codegen_seed_scales;
        tc "select routes adjoints" `Quick test_vjp_codegen_select;
        tc "dead arguments get zero" `Quick test_vjp_codegen_unused_arg;
        tc "calls" `Quick test_vjp_codegen_calls;
        tc "rejects control flow" `Quick test_vjp_codegen_rejects_control_flow;
        qcheck_vjp_codegen_matches_transform;
      ] );
  ]

let suite = suite @ vjp_codegen_suite
