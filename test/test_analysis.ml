(** Tests for the cross-layer static analysis: the dataflow engine and its
    instances, the MSIL verifier, the HLO checker and lints, checked-mode
    hook wiring, and the pool write-race sanitizer. *)

open S4o_sil
module B = Builder
module V = S4o_analysis.Verify
module D = S4o_analysis.Dataflow
module HC = S4o_analysis.Hlo_check
module Checked = S4o_analysis.Checked
module San = S4o_tensor.Sanitizer
module Hlo = S4o_xla.Hlo
module C = S4o_ops.Catalog
open S4o_tensor

let node_of_op (op : C.op) inputs =
  Hlo.op ~name:op.C.name ~attrs:op.C.attrs ~shape:op.C.out_shape ~info:op.C.info
    ~inputs ~kernel:op.C.kernel ()

(* f(x, y) = x*y + sin x, with one dead instruction (exp y). *)
let build_with_dead () =
  let b = B.create ~name:"with_dead" ~n_args:2 in
  let x = B.param b 0 and y = B.param b 1 in
  let xy = B.binary b Ir.Mul x y in
  let _dead = B.unary b Ir.Exp y in
  let sx = B.unary b Ir.Sin x in
  B.ret b (B.binary b Ir.Add xy sx);
  B.finish b

(* Diamond: both branches forward the entry argument x to the join. *)
let build_diamond_same_arg () =
  let b = B.create ~name:"diamond" ~n_args:1 in
  let x = B.param b 0 in
  let zero = B.const b 0.0 in
  let c = B.cmp b Ir.Gt x zero in
  let bt = B.new_block b ~params:1 in
  let bf = B.new_block b ~params:1 in
  let join = B.new_block b ~params:1 in
  B.cond_br b ~cond:c ~if_true:(bt, [| x |]) ~if_false:(bf, [| x |]);
  B.switch b bt;
  B.br b join [| B.binary b Ir.Mul (B.param b 0) (B.param b 0) |];
  B.switch b bf;
  B.br b join [| B.unary b Ir.Neg (B.param b 0) |];
  B.switch b join;
  B.ret b (B.param b 0);
  B.finish b

(* {1 Dataflow engine} *)

let test_liveness_dead_inst () =
  let f = build_with_dead () in
  Alcotest.(check (list (pair int int)))
    "exp y is dead"
    [ (0, 1) ]
    (D.Liveness.dead_insts f);
  let f' = Passes.dead_code_elim f in
  Alcotest.(check (list (pair int int))) "dce restores density" []
    (D.Liveness.dead_insts f')

let test_liveness_through_branches () =
  let f = build_diamond_same_arg () in
  let live = D.Liveness.analyze f in
  (* entry x feeds both branch args, so it is live; join's param is the
     return value. *)
  Test_util.check_true "entry arg live" live.(0).(0);
  Test_util.check_true "join param live" live.(3).(0)

let test_reaching_redundant_params () =
  let f = build_diamond_same_arg () in
  (* bt and bf each receive x from the single entry branch: redundant.
     join receives two different defs: not redundant. *)
  let red = D.Reaching.redundant_params f in
  Alcotest.(check (list (pair int int))) "bt/bf params" [ (1, 0); (2, 0) ] red

let test_reaching_join_merges () =
  let f = build_diamond_same_arg () in
  let facts = D.Reaching.analyze f in
  Test_util.check_int "join param reached by two defs" 2
    (D.Reaching.S.cardinal facts.(3).(0))

let test_const_prop_constant_branch () =
  let b = B.create ~name:"const_branch" ~n_args:1 in
  let one = B.const b 1.0 in
  let two = B.const b 2.0 in
  let c = B.cmp b Ir.Lt one two in
  let bt = B.new_block b ~params:1 in
  let bf = B.new_block b ~params:1 in
  B.cond_br b ~cond:c ~if_true:(bt, [| one |]) ~if_false:(bf, [| two |]);
  B.switch b bt;
  B.ret b (B.param b 0);
  B.switch b bf;
  B.ret b (B.param b 0);
  let f = B.finish b in
  match D.Const_prop.constant_branches f with
  | [ (0, v) ] -> Test_util.check_close "1 < 2" 1.0 v
  | other ->
      Alcotest.failf "expected one constant branch, got %d" (List.length other)

let test_const_prop_through_join () =
  (* Both branches pass the same constant: the join param is Const. *)
  let b = B.create ~name:"joined_const" ~n_args:1 in
  let x = B.param b 0 in
  let five = B.const b 5.0 in
  let zero = B.const b 0.0 in
  let c = B.cmp b Ir.Gt x zero in
  let bt = B.new_block b ~params:1 in
  let bf = B.new_block b ~params:1 in
  let join = B.new_block b ~params:1 in
  B.cond_br b ~cond:c ~if_true:(bt, [| five |]) ~if_false:(bf, [| five |]);
  B.switch b bt;
  B.br b join [| B.param b 0 |];
  B.switch b bf;
  B.br b join [| B.param b 0 |];
  B.switch b join;
  B.ret b (B.param b 0);
  let f = B.finish b in
  let facts = D.Const_prop.analyze f in
  (match facts.(3).(0) with
  | D.Const_prop.Const v -> Test_util.check_close "join is 5" 5.0 v
  | _ -> Alcotest.fail "join param should be constant")

(* {1 IR verifier} *)

let test_verifier_clean_on_good_ir () =
  List.iter
    (fun f ->
      Alcotest.(check int)
        ("no errors in " ^ f.Ir.name)
        0
        (List.length (V.errors (V.func f))))
    [ build_with_dead (); build_diamond_same_arg () ]

let test_verifier_use_before_def () =
  (* Injected defect: an operand index past the defined frontier — the
     signature of swapped/renumbered operands escaping a pass. *)
  let f =
    {
      Ir.name = "bad_use";
      n_args = 2;
      blocks =
        [|
          {
            Ir.params = 2;
            insts = [| Ir.Binary (Ir.Add, 0, 3) |];
            term = Ir.Ret 2;
          };
        |];
    }
  in
  let errs = V.errors (V.func f) in
  Test_util.check_true "use-before-def caught" (List.length errs >= 1);
  Alcotest.check_raises "run raises"
    (V.Verify_error "")
    (fun () ->
      try V.run ~stage:"test" f
      with V.Verify_error _ -> raise (V.Verify_error ""))

let test_verifier_branch_arity () =
  let f =
    {
      Ir.name = "bad_arity";
      n_args = 1;
      blocks =
        [|
          { Ir.params = 1; insts = [||]; term = Ir.Br (1, [||]) };
          { Ir.params = 1; insts = [||]; term = Ir.Ret 0 };
        |];
    }
  in
  let errs = V.errors (V.func f) in
  Test_util.check_true "arity mismatch caught" (List.length errs = 1)

let test_verifier_missing_target () =
  let f =
    {
      Ir.name = "bad_target";
      n_args = 1;
      blocks = [| { Ir.params = 1; insts = [||]; term = Ir.Br (7, [||]) } |];
    }
  in
  Test_util.check_true "missing block caught"
    (V.errors (V.func f) <> [])

let test_verifier_density_lint () =
  let f = build_with_dead () in
  let dead_warnings =
    List.filter
      (fun (v : V.violation) -> v.site = "inst 1")
      (V.warnings (V.func f))
  in
  Test_util.check_int "dead result warned" 1 (List.length dead_warnings);
  Test_util.check_int "dce output density-clean" 0
    (List.length
       (List.filter
          (fun (v : V.violation) ->
            (* only density warnings; redundant-param etc. not applicable *)
            String.length v.message >= 4 && String.sub v.message 0 4 = "dead")
          (V.warnings (V.func (Passes.dead_code_elim f)))))

let test_verifier_unreachable_block () =
  let f =
    {
      Ir.name = "unreachable";
      n_args = 1;
      blocks =
        [|
          { Ir.params = 1; insts = [||]; term = Ir.Ret 0 };
          { Ir.params = 0; insts = [||]; term = Ir.Ret 0 };
        |];
    }
  in
  Test_util.check_true "errors on bb1 ret range or warn unreachable"
    (V.func f
    |> List.exists (fun (v : V.violation) -> v.block = 1))

(* {1 Checked mode wiring} *)

let test_checked_counts_sil () =
  Checked.enable ();
  Checked.reset_stats ();
  let f = build_with_dead () in
  ignore (Passes.simplify f);
  let m = Interp.create_module () in
  Interp.add m f;
  ignore (Codegen.generate_jvp m f);
  let s = Checked.stats () in
  Test_util.check_true "passes and codegen verified"
    (s.Checked.sil_verified >= 3)

let test_checked_counts_transform () =
  Checked.enable ();
  Checked.reset_stats ();
  let f = build_diamond_same_arg () in
  let m = Interp.create_module () in
  Interp.add m f;
  let ctx = Transform.create_ctx m in
  ignore (Transform.gradient ctx "diamond" [| 2.0 |]);
  Test_util.check_true "synthesis verified"
    ((Checked.stats ()).Checked.sil_verified >= 1)

let test_checked_hook_catches_corrupt_ir () =
  Checked.enable ();
  let corrupt =
    {
      Ir.name = "corrupt";
      n_args = 1;
      blocks =
        [| { Ir.params = 1; insts = [| Ir.Unary (Ir.Sin, 4) |]; term = Ir.Ret 1 } |];
    }
  in
  Test_util.check_raises_any "pass hook raises" (fun () ->
      !Passes.post_pass_hook "test" corrupt);
  Test_util.check_raises_any "codegen hook raises" (fun () ->
      !Codegen.post_codegen_hook corrupt)

let test_checked_hook_catches_corrupt_hlo () =
  Checked.enable ();
  let p = Hlo.param ~index:0 ~shape:[| 4 |] in
  let bad =
    (* declares [8] but add of [4],[4] gives [4] *)
    Hlo.op ~name:"add" ~shape:[| 8 |]
      ~info:(S4o_device.Op_info.elementwise "add" ~inputs:[ [| 4 |] ] ~output:[| 8 |] ())
      ~inputs:[ p; p ]
      ~kernel:(fun args -> args.(0))
      ()
  in
  let g = Hlo.graph_of_outputs [ bad ] in
  Test_util.check_raises_any "cut hook raises" (fun () ->
      !S4o_lazy.Trace.post_cut_hook g);
  Test_util.check_raises_any "opt hook raises" (fun () ->
      !S4o_xla.Opt.post_pass_hook "test" g)

let test_checked_counts_hlo_passes () =
  Checked.enable ();
  Checked.reset_stats ();
  let p0 = Hlo.param ~index:0 ~shape:[| 4 |] in
  let r = node_of_op (C.relu [| 4 |]) [ p0 ] in
  ignore (S4o_xla.Opt.optimize (Hlo.graph_of_outputs [ r ]));
  Test_util.check_true "each pass checked"
    ((Checked.stats ()).Checked.hlo_checked >= 3)

let test_checked_metrics_attached () =
  let reg = S4o_obs.Metrics.create () in
  Checked.enable ();
  Checked.attach_metrics reg;
  ignore (Passes.simplify (build_with_dead ()));
  Checked.detach_metrics ();
  let c = S4o_obs.Metrics.counter reg "analysis.sil_verified" in
  Test_util.check_true "metrics counted" (S4o_obs.Metrics.counter_value c >= 1)

(* {1 HLO checker} *)

let test_hlo_clean_catalog_graph () =
  let p0 = Hlo.param ~index:0 ~shape:[| 2; 3 |] in
  let p1 = Hlo.param ~index:1 ~shape:[| 3; 4 |] in
  let mm = node_of_op (C.matmul [| 2; 3 |] [| 3; 4 |]) [ p0; p1 ] in
  let r = node_of_op (C.relu [| 2; 4 |]) [ mm ] in
  let s = node_of_op (C.sum_all [| 2; 4 |]) [ r ] in
  let g = Hlo.graph_of_outputs [ s ] in
  Alcotest.(check int) "no findings" 0 (List.length (HC.check_graph g))

let test_hlo_shape_mismatch () =
  let p0 = Hlo.param ~index:0 ~shape:[| 2; 3 |] in
  let p1 = Hlo.param ~index:1 ~shape:[| 3; 4 |] in
  let bad =
    Hlo.op ~name:"matmul" ~shape:[| 4; 2 |]
      ~info:(S4o_device.Op_info.matmul ~m:2 ~k:3 ~n:4)
      ~inputs:[ p0; p1 ]
      ~kernel:(fun args -> args.(0))
      ()
  in
  let errs = HC.errors (HC.check_graph (Hlo.graph_of_outputs [ bad ])) in
  Test_util.check_int "one shape error" 1 (List.length errs);
  Test_util.check_string "rule" "shape" (List.hd errs).HC.rule

let test_hlo_arity_error () =
  let p0 = Hlo.param ~index:0 ~shape:[| 4 |] in
  let bad =
    Hlo.op ~name:"add" ~shape:[| 4 |]
      ~info:(S4o_device.Op_info.elementwise "add" ~inputs:[ [| 4 |] ] ~output:[| 4 |] ())
      ~inputs:[ p0 ]
      ~kernel:(fun args -> args.(0))
      ()
  in
  let errs = HC.errors (HC.check_graph (Hlo.graph_of_outputs [ bad ])) in
  Test_util.check_int "one arity error" 1 (List.length errs);
  Test_util.check_string "rule" "arity" (List.hd errs).HC.rule

let test_hlo_unknown_op_warns () =
  let p0 = Hlo.param ~index:0 ~shape:[| 4 |] in
  let n =
    Hlo.op ~name:"my_custom_op" ~shape:[| 4 |]
      ~info:(S4o_device.Op_info.elementwise "my_custom_op" ~inputs:[ [| 4 |] ] ~output:[| 4 |] ())
      ~inputs:[ p0 ]
      ~kernel:(fun args -> args.(0))
      ()
  in
  let fs = HC.check_graph (Hlo.graph_of_outputs [ n ]) in
  Test_util.check_int "no errors" 0 (List.length (HC.errors fs));
  Test_util.check_true "unknown-op warning"
    (List.exists (fun (f : HC.finding) -> f.rule = "unknown-op") fs)

let test_hlo_conv_backward_consistency () =
  (* Consistent conv2d_backward_input: input 1x8x8x3, filter 3x3x3x8,
     same padding, stride 1 -> grad 1x8x8x8. *)
  let filter = Hlo.param ~index:0 ~shape:[| 3; 3; 3; 8 |] in
  let grad = Hlo.param ~index:1 ~shape:[| 1; 8; 8; 8 |] in
  let op =
    C.conv2d_backward_input ~padding:Convolution.Same
      ~input_shape:[| 1; 8; 8; 3 |] [| 3; 3; 3; 8 |] [| 1; 8; 8; 8 |]
  in
  let good = node_of_op op [ filter; grad ] in
  Test_util.check_int "consistent backward clean" 0
    (List.length (HC.errors (HC.check_graph (Hlo.graph_of_outputs [ good ]))));
  (* Same node but declaring the wrong input shape. *)
  let bad =
    Hlo.op ~name:op.C.name ~attrs:op.C.attrs ~shape:[| 1; 9; 8; 3 |]
      ~info:op.C.info ~inputs:[ filter; grad ] ~kernel:op.C.kernel ()
  in
  Test_util.check_true "inconsistent backward caught"
    (HC.errors (HC.check_graph (Hlo.graph_of_outputs [ bad ])) <> [])

let test_hlo_duplicate_literal_lint () =
  let l1 = Hlo.literal (Dense.of_array [| 2 |] [| 1.0; 2.0 |]) in
  let l2 = Hlo.literal (Dense.of_array [| 2 |] [| 1.0; 2.0 |]) in
  let s = node_of_op (C.add [| 2 |] [| 2 |]) [ l1; l2 ] in
  let fs = HC.check_graph (Hlo.graph_of_outputs [ s ]) in
  Test_util.check_true "dup literal linted"
    (List.exists (fun (f : HC.finding) -> f.rule = "dup-literal") fs);
  (* cse merges them; the lint then goes quiet *)
  let merged, _ = S4o_xla.Opt.optimize (Hlo.graph_of_outputs [ s ]) in
  Test_util.check_true "clean after cse"
    (not
       (List.exists
          (fun (f : HC.finding) -> f.rule = "dup-literal")
          (HC.check_graph merged)))

let test_hlo_dead_node_lint () =
  let p0 = Hlo.param ~index:0 ~shape:[| 4 |] in
  let live = node_of_op (C.relu [| 4 |]) [ p0 ] in
  let dead = node_of_op (C.neg [| 4 |]) [ p0 ] in
  let g = { Hlo.outputs = [ live ]; nodes = [ p0; live; dead ] } in
  Test_util.check_true "dead node linted"
    (List.exists (fun (f : HC.finding) -> f.rule = "dead-node") (HC.check_graph g))

let test_hlo_param_density () =
  (* Sparse numbering is survivable (optimizers drop unused params), so it
     lints; a duplicate index is a hard error. *)
  let p0 = Hlo.param ~index:0 ~shape:[| 4 |] in
  let p2 = Hlo.param ~index:2 ~shape:[| 4 |] in
  let s = node_of_op (C.add [| 4 |] [| 4 |]) [ p0; p2 ] in
  let fs = HC.check_graph (Hlo.graph_of_outputs [ s ]) in
  Test_util.check_int "gap is not fatal" 0 (List.length (HC.errors fs));
  Test_util.check_true "param gap linted"
    (List.exists (fun (f : HC.finding) -> f.rule = "param") fs);
  let d0 = Hlo.param ~index:0 ~shape:[| 4 |] in
  let d0' = Hlo.param ~index:0 ~shape:[| 4 |] in
  let s' = node_of_op (C.add [| 4 |] [| 4 |]) [ d0; d0' ] in
  Test_util.check_true "duplicate index is fatal"
    (HC.errors (HC.check_graph (Hlo.graph_of_outputs [ s' ]))
    |> List.exists (fun (f : HC.finding) -> f.rule = "param"))

let test_hlo_pending_limit () =
  let p0 = Hlo.param ~index:0 ~shape:[| 4 |] in
  let n1 = node_of_op (C.relu [| 4 |]) [ p0 ] in
  let n2 = node_of_op (C.neg [| 4 |]) [ n1 ] in
  let g = Hlo.graph_of_outputs [ n2 ] in
  Test_util.check_true "region lint fires"
    (List.exists
       (fun (f : HC.finding) -> f.rule = "pending-region")
       (HC.check_graph ~pending_limit:2 g));
  Test_util.check_int "quiet without limit" 0
    (List.length (HC.check_graph g))

let test_hazard_detector () =
  let hz = HC.Hazard.create ~threshold:3 () in
  let graph_at batch =
    let p = Hlo.param ~index:0 ~shape:[| batch; 4 |] in
    Hlo.graph_of_outputs [ node_of_op (C.relu [| batch; 4 |]) [ p ] ]
  in
  Test_util.check_int "first" 0 (List.length (HC.Hazard.observe hz (graph_at 1)));
  Test_util.check_int "repeat same shape" 0
    (List.length (HC.Hazard.observe hz (graph_at 1)));
  Test_util.check_int "second shape" 0
    (List.length (HC.Hazard.observe hz (graph_at 2)));
  Test_util.check_int "third shape trips" 1
    (List.length (HC.Hazard.observe hz (graph_at 4)));
  Test_util.check_int "reported once" 0
    (List.length (HC.Hazard.observe hz (graph_at 8)));
  Alcotest.(check (list int)) "counts" [ 4 ] (HC.Hazard.skeleton_counts hz)

let test_trace_cut_checked () =
  (* A real trace cut passes through the hook with zero errors. *)
  Checked.enable ();
  Checked.reset_stats ();
  let a = S4o_lazy.Trace.leaf (Dense.of_array [| 2 |] [| 1.0; 2.0 |]) in
  let b = S4o_lazy.Trace.leaf (Dense.of_array [| 2 |] [| 3.0; 4.0 |]) in
  let t = S4o_lazy.Trace.record (C.add [| 2 |] [| 2 |]) [ a; b ] in
  let g, leaves, _ = S4o_lazy.Trace.to_hlo [ t ] in
  Test_util.check_int "two leaves" 2 (List.length leaves);
  Test_util.check_int "cut checked" 1 ((Checked.stats ()).Checked.hlo_checked);
  Test_util.check_int "cut clean" 0 (List.length (HC.errors (HC.check_graph g)))

let test_report_json_roundtrip () =
  let p0 = Hlo.param ~index:0 ~shape:[| 4 |] in
  let g = Hlo.graph_of_outputs [ node_of_op (C.relu [| 4 |]) [ p0 ] ] in
  let json =
    HC.report_to_json ~graph_name:"t" g (HC.check_graph g)
    |> S4o_obs.Json.to_string
  in
  match S4o_obs.Json.parse json with
  | Error e -> Alcotest.failf "bad json: %s" e
  | Ok j ->
      Test_util.check_close "nodes" 2.0
        (Option.get (Option.bind (S4o_obs.Json.member "nodes" j) S4o_obs.Json.to_float))

(* {1 Write-race sanitizer} *)

let with_armed f =
  let was = San.armed () in
  San.set_armed true;
  Fun.protect ~finally:(fun () -> San.set_armed was) f

let fresh_buf n = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n

let test_san_write_write_race () =
  with_armed (fun () ->
      San.job_begin ();
      Fun.protect ~finally:San.job_end (fun () ->
          let buf = fresh_buf 100 in
          San.note_write ~domain:1 buf ~lo:0 ~len:60 ~who:"chunk 0";
          Test_util.check_raises_any "overlap raises" (fun () ->
              San.note_write ~domain:2 buf ~lo:50 ~len:50 ~who:"chunk 1")))

let test_san_write_read_race () =
  with_armed (fun () ->
      San.job_begin ();
      Fun.protect ~finally:San.job_end (fun () ->
          let buf = fresh_buf 100 in
          San.note_read ~domain:1 buf ~lo:0 ~len:100 ~who:"reader";
          Test_util.check_raises_any "write over foreign read raises"
            (fun () ->
              San.note_write ~domain:2 buf ~lo:10 ~len:5 ~who:"writer")))

let test_san_disjoint_and_same_domain_ok () =
  with_armed (fun () ->
      San.job_begin ();
      Fun.protect ~finally:San.job_end (fun () ->
          let buf = fresh_buf 100 in
          San.note_write ~domain:1 buf ~lo:0 ~len:50 ~who:"chunk 0";
          San.note_write ~domain:2 buf ~lo:50 ~len:50 ~who:"chunk 1";
          (* same domain may revisit its own range *)
          San.note_write ~domain:1 buf ~lo:10 ~len:10 ~who:"chunk 0 again";
          (* distinct buffers never conflict *)
          let other = fresh_buf 100 in
          San.note_write ~domain:2 other ~lo:0 ~len:100 ~who:"other buf"))

let test_san_reads_may_overlap () =
  with_armed (fun () ->
      San.job_begin ();
      Fun.protect ~finally:San.job_end (fun () ->
          let buf = fresh_buf 10 in
          San.note_read ~domain:1 buf ~lo:0 ~len:10 ~who:"r1";
          San.note_read ~domain:2 buf ~lo:0 ~len:10 ~who:"r2"))

let test_san_outside_job_dropped () =
  with_armed (fun () ->
      let before = (San.stats ()).San.intervals in
      let buf = fresh_buf 10 in
      San.note_write ~domain:1 buf ~lo:0 ~len:10 ~who:"w1";
      San.note_write ~domain:2 buf ~lo:0 ~len:10 ~who:"w2";
      Test_util.check_int "nothing recorded outside a job" before
        (San.stats ()).San.intervals)

let test_san_disarmed_is_free () =
  San.set_armed false;
  San.job_begin ();
  let buf = fresh_buf 10 in
  San.note_write ~domain:1 buf ~lo:0 ~len:10 ~who:"w1";
  San.note_write ~domain:2 buf ~lo:0 ~len:10 ~who:"w2";
  San.job_end ()

let test_san_race_message_names_both () =
  with_armed (fun () ->
      San.job_begin ();
      Fun.protect ~finally:San.job_end (fun () ->
          let buf = fresh_buf 8 in
          San.note_write ~domain:1 buf ~lo:0 ~len:8 ~who:"left kernel";
          match San.note_write ~domain:2 buf ~lo:4 ~len:4 ~who:"right kernel" with
          | () -> Alcotest.fail "expected Race"
          | exception San.Race msg ->
              let has s =
                let re = Str.regexp_string s in
                match Str.search_forward re msg 0 with
                | _ -> true
                | exception Not_found -> false
              in
              Test_util.check_true "names first site" (has "left kernel");
              Test_util.check_true "names second site" (has "right kernel")))

(* The ISSUE's injected defect: an overlapping row partition handed to the
   pool. With >= 2 domains the overlapping chunks land on distinct domains
   and the sanitizer aborts the job. *)
let test_pool_overlapping_partition_caught () =
  with_armed (fun () ->
      let buf = fresh_buf 64 in
      let overlapping lo hi =
        (* every chunk writes one element too far left: chunk boundaries
           overlap by one *)
        let lo = max 0 (lo - 1) in
        San.note_write buf ~lo ~len:(hi - lo) ~who:"bad partition";
        for i = lo to hi - 1 do
          Bigarray.Array1.set buf i 1.0
        done
      in
      match S4o_tensor.Pool.run ~domains:2 ~n:64 overlapping with
      | () ->
          (* single-domain machines run serially: the job never starts and
             the defect is invisible — that is exactly the bug class the
             sanitizer exists for, so only assert when parallel ran *)
          Test_util.check_true "serial fallback"
            (S4o_tensor.Pool.live_workers () = 0)
      | exception San.Race _ -> ())

let test_pool_disjoint_partition_clean () =
  with_armed (fun () ->
      let buf = fresh_buf 64 in
      let disjoint lo hi =
        San.note_write buf ~lo ~len:(hi - lo) ~who:"good partition";
        for i = lo to hi - 1 do
          Bigarray.Array1.set buf i 1.0
        done
      in
      S4o_tensor.Pool.run ~domains:2 ~n:64 disjoint;
      Test_util.check_close "all written" 64.0
        (let s = ref 0.0 in
         for i = 0 to 63 do
           s := !s +. Bigarray.Array1.get buf i
         done;
         !s))

let test_armed_kernels_clean () =
  (* End-to-end: the shipped parallel kernels run race-free when armed. *)
  with_armed (fun () ->
      let a = Dense.init [| 17; 9 |] (fun _ -> 1.0) in
      let b = Dense.init [| 9; 13 |] (fun _ -> 2.0) in
      let c = Dense.matmul a b in
      Test_util.check_close "matmul value" 18.0 (Dense.get c [| 0; 0 |]);
      let img = Dense.init [| 2; 8; 8; 3 |] (fun _ -> 1.0) in
      let filt = Dense.init [| 3; 3; 3; 4 |] (fun _ -> 1.0) in
      let out = Convolution.conv2d ~padding:Convolution.Valid img filt in
      Test_util.check_close "conv value" 27.0 (Dense.get out [| 0; 0; 0; 0 |]);
      let pooled = Convolution.max_pool2d ~size:(2, 2) ~stride:(2, 2) img in
      Test_util.check_close "pool value" 1.0 (Dense.get pooled [| 0; 0; 0; 0 |]))

let qcheck_sanitizer_matches_ground_truth =
  (* Fuzz: random interval sets across 2-4 simulated domains; the sanitizer
     raises iff two intervals from distinct domains overlap (write-write or
     write-read). *)
  QCheck.Test.make ~count:200 ~name:"sanitizer agrees with ground truth"
    QCheck.(
      list_of_size Gen.(int_range 1 8)
        (quad (int_range 0 3) (int_range 0 40) (int_range 1 12) bool))
    (fun intervals ->
      let truth =
        let arr = Array.of_list intervals in
        let overlaps (_, lo1, len1, _) (_, lo2, len2, _) =
          lo1 < lo2 + len2 && lo2 < lo1 + len1
        in
        let conflict i j =
          let ((d1, _, _, w1) as a) = arr.(i) and ((d2, _, _, w2) as b) = arr.(j) in
          d1 <> d2 && (w1 || w2) && overlaps a b
        in
        let n = Array.length arr in
        let found = ref false in
        for i = 0 to n - 1 do
          for j = i + 1 to n - 1 do
            if conflict i j then found := true
          done
        done;
        !found
      in
      with_armed (fun () ->
          San.job_begin ();
          Fun.protect ~finally:San.job_end (fun () ->
              let buf = fresh_buf 64 in
              let raised =
                try
                  List.iter
                    (fun (domain, lo, len, write) ->
                      if write then
                        San.note_write ~domain buf ~lo ~len ~who:"fuzz-w"
                      else San.note_read ~domain buf ~lo ~len ~who:"fuzz-r")
                    intervals;
                  false
                with San.Race _ -> true
              in
              QCheck.assume (raised = truth || raised);
              (* the sanitizer may raise on the FIRST conflicting pair it
                 sees in registration order; ground truth is order-free, so
                 raised => truth and truth => raised must both hold *)
              raised = truth)))

(* {1 Pass preservation under the verifier (satellite)} *)

(* Random loop-free MSIL: a straight-line prefix, optionally continued as a
   diamond whose join takes one parameter. *)
let gen_msil_func : Ir.func QCheck.Gen.t =
 fun st ->
  let open QCheck.Gen in
  let n_args = 2 in
  let safe_unaries =
    [| Ir.Neg; Ir.Sin; Ir.Cos; Ir.Exp; Ir.Sqrt; Ir.Relu; Ir.Sigmoid; Ir.Tanh; Ir.Floor |]
  in
  let binaries = [| Ir.Add; Ir.Sub; Ir.Mul; Ir.Div; Ir.Max; Ir.Min |] in
  let cmps = [| Ir.Lt; Ir.Le; Ir.Gt; Ir.Ge; Ir.Eq |] in
  let gen_inst defined st =
    let operand st = int_range 0 (defined - 1) st in
    match int_range 0 4 st with
    | 0 -> Ir.Const (float_range (-3.0) 3.0 st)
    | 1 -> Ir.Unary (safe_unaries.(int_range 0 (Array.length safe_unaries - 1) st), operand st)
    | 2 -> Ir.Binary (binaries.(int_range 0 (Array.length binaries - 1) st), operand st, operand st)
    | 3 -> Ir.Cmp (cmps.(int_range 0 (Array.length cmps - 1) st), operand st, operand st)
    | _ -> Ir.Select (operand st, operand st, operand st)
  in
  let gen_block base lo hi st =
    let n = int_range lo hi st in
    Array.init n (fun i -> gen_inst (base + i) st)
  in
  let entry_insts = gen_block n_args 1 7 st in
  let entry_defined = n_args + Array.length entry_insts in
  let pick st = int_range 0 (entry_defined - 1) st in
  if bool st then
    {
      Ir.name = "rand_line";
      n_args;
      blocks =
        [|
          {
            Ir.params = n_args;
            insts = entry_insts;
            term = Ir.Ret (entry_defined - 1);
          };
        |];
    }
  else
    let cond = pick st in
    let arg_t = pick st and arg_f = pick st in
    let bt_insts = gen_block 1 1 3 st in
    let bf_insts = gen_block 1 1 3 st in
    {
      Ir.name = "rand_diamond";
      n_args;
      blocks =
        [|
          {
            Ir.params = n_args;
            insts = entry_insts;
            term = Ir.Cond_br (cond, 1, [| arg_t |], 2, [| arg_f |]);
          };
          {
            Ir.params = 1;
            insts = bt_insts;
            term = Ir.Br (3, [| Array.length bt_insts |]);
          };
          {
            Ir.params = 1;
            insts = bf_insts;
            term = Ir.Br (3, [| Array.length bf_insts |]);
          };
          { Ir.params = 1; insts = [||]; term = Ir.Ret 0 };
        |];
    }

let arb_msil =
  QCheck.make gen_msil_func ~print:(fun f -> Ir.to_string f)

let same_float a b = (Float.is_nan a && Float.is_nan b) || Float.equal a b

let qcheck_passes_preserve_and_verify =
  QCheck.Test.make ~count:300
    ~name:"passes preserve semantics and verify clean"
    QCheck.(pair arb_msil (pair (float_range (-2.0) 2.0) (float_range (-2.0) 2.0)))
    (fun (f, (x, y)) ->
      Ir.validate f;
      let m = Interp.create_module () in
      Interp.add m f;
      let reference = Interp.eval m f [| x; y |] in
      List.for_all
        (fun (name, pass) ->
          let f' = pass f in
          let m' = Interp.create_module () in
          Interp.add m' f';
          let v = Interp.eval m' f' [| x; y |] in
          if not (same_float reference v) then
            QCheck.Test.fail_reportf "%s changed %g to %g on@.%s" name
              reference v (Ir.to_string f)
          else if V.errors (V.func f') <> [] then
            QCheck.Test.fail_reportf "%s broke the verifier on@.%s" name
              (Ir.to_string f')
          else true)
        [
          ("constant_fold", Passes.constant_fold);
          ("dead_code_elim", Passes.dead_code_elim);
          ("simplify", Passes.simplify);
        ])

(* [dead_code_elim] is block-local: terminator uses — including branch
   arguments — keep a value alive even when the target parameter is dead
   inter-block. Its guarantee is therefore local density, which is what we
   assert here; {!D.Liveness} may still see further (inter-block) slack. *)
let locally_dead (f : Ir.func) =
  Array.exists
    (fun b ->
      let total = Ir.block_values b in
      let used = Array.make total false in
      let mark v = used.(v) <- true in
      (match b.Ir.term with
      | Ir.Ret v -> mark v
      | Ir.Br (_, args) -> Array.iter mark args
      | Ir.Cond_br (c, _, at, _, af) ->
          mark c;
          Array.iter mark at;
          Array.iter mark af);
      for ii = Array.length b.Ir.insts - 1 downto 0 do
        if used.(b.Ir.params + ii) then
          List.iter mark (Ir.inst_operands b.Ir.insts.(ii))
      done;
      Array.exists not (Array.sub used b.Ir.params (Array.length b.Ir.insts)))
    f.Ir.blocks

let qcheck_dce_restores_density =
  QCheck.Test.make ~count:200 ~name:"dce output has no dead values"
    arb_msil
    (fun f ->
      Ir.validate f;
      not (locally_dead (Passes.dead_code_elim f)))

let tc = Alcotest.test_case
let q = QCheck_alcotest.to_alcotest

let suite =
  [
    ( "analysis.dataflow",
      [
        tc "liveness finds dead inst" `Quick test_liveness_dead_inst;
        tc "liveness through branches" `Quick test_liveness_through_branches;
        tc "reaching redundant params" `Quick test_reaching_redundant_params;
        tc "reaching join merges" `Quick test_reaching_join_merges;
        tc "const-prop constant branch" `Quick test_const_prop_constant_branch;
        tc "const-prop through join" `Quick test_const_prop_through_join;
      ] );
    ( "analysis.verify",
      [
        tc "clean on good IR" `Quick test_verifier_clean_on_good_ir;
        tc "use before def" `Quick test_verifier_use_before_def;
        tc "branch arity" `Quick test_verifier_branch_arity;
        tc "missing target" `Quick test_verifier_missing_target;
        tc "density lint" `Quick test_verifier_density_lint;
        tc "unreachable block" `Quick test_verifier_unreachable_block;
        q qcheck_passes_preserve_and_verify;
        q qcheck_dce_restores_density;
      ] );
    ( "analysis.checked",
      [
        tc "counts sil passes" `Quick test_checked_counts_sil;
        tc "counts transform" `Quick test_checked_counts_transform;
        tc "catches corrupt IR" `Quick test_checked_hook_catches_corrupt_ir;
        tc "catches corrupt HLO" `Quick test_checked_hook_catches_corrupt_hlo;
        tc "counts hlo passes" `Quick test_checked_counts_hlo_passes;
        tc "metrics attach" `Quick test_checked_metrics_attached;
      ] );
    ( "analysis.hlo",
      [
        tc "clean catalog graph" `Quick test_hlo_clean_catalog_graph;
        tc "shape mismatch" `Quick test_hlo_shape_mismatch;
        tc "arity error" `Quick test_hlo_arity_error;
        tc "unknown op warns" `Quick test_hlo_unknown_op_warns;
        tc "conv backward consistency" `Quick test_hlo_conv_backward_consistency;
        tc "duplicate literal lint" `Quick test_hlo_duplicate_literal_lint;
        tc "dead node lint" `Quick test_hlo_dead_node_lint;
        tc "param density" `Quick test_hlo_param_density;
        tc "pending limit" `Quick test_hlo_pending_limit;
        tc "recompile hazard" `Quick test_hazard_detector;
        tc "trace cut checked" `Quick test_trace_cut_checked;
        tc "report json" `Quick test_report_json_roundtrip;
      ] );
    ( "analysis.sanitizer",
      [
        tc "write-write race" `Quick test_san_write_write_race;
        tc "write-read race" `Quick test_san_write_read_race;
        tc "disjoint ok" `Quick test_san_disjoint_and_same_domain_ok;
        tc "reads overlap ok" `Quick test_san_reads_may_overlap;
        tc "outside job dropped" `Quick test_san_outside_job_dropped;
        tc "disarmed free" `Quick test_san_disarmed_is_free;
        tc "race names both sites" `Quick test_san_race_message_names_both;
        tc "pool overlapping partition" `Quick test_pool_overlapping_partition_caught;
        tc "pool disjoint partition" `Quick test_pool_disjoint_partition_clean;
        tc "armed kernels clean" `Quick test_armed_kernels_clean;
        q qcheck_sanitizer_matches_ground_truth;
      ] );
  ]
