(** MSIL IR verifier: collects every structural error and (optionally)
    dataflow-powered lints, instead of failing on the first problem the way
    {!S4o_sil.Ir.validate} does. Checked mode runs {!run} after every
    optimization pass, AD synthesis, and derivative code generation. *)

open S4o_sil

type severity = Error | Warning

type violation = {
  severity : severity;
  func : string;
  block : int;
  site : string;
  message : string;
}

exception Verify_error of string

val errors : violation list -> violation list
val warnings : violation list -> violation list
val pp_violation : Format.formatter -> violation -> unit

(** [func f] verifies [f]. Errors: def-before-use, operand and terminator
    ranges, branch-argument arity, entry arity. When [lint] (default) and
    the function is structurally clean, adds warnings: unreachable blocks,
    dead instruction results, single-definition block parameters, constant
    branch conditions. *)
val func : ?lint:bool -> Ir.func -> violation list

(** [run ~stage f] raises {!Verify_error} naming [stage] and every error if
    [f] is malformed; lints are not computed. The checked-mode hook body. *)
val run : stage:string -> Ir.func -> unit
