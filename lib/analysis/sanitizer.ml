(** Re-export of the pool write-race sanitizer, so the analysis library
    presents all three static/dynamic checkers ({!Verify}, {!Hlo_check},
    and this) under one roof. The implementation lives in [S4o_tensor]
    because the kernels it instruments do. *)

include S4o_tensor.Sanitizer
