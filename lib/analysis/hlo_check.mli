(** HLO graph checker and linter: re-derives every compute node's output
    shape from its inputs and attributes (the same rules as
    {!S4o_ops.Catalog}) and reports disagreements as errors; lints dead
    nodes, duplicate literals, oversized pending regions, and — across
    cuts, via {!Hazard} — recompile hazards. Checked mode runs {!run} on
    every trace cut and after every compiler pass. *)

open S4o_tensor
open S4o_xla

type severity = Error | Warning

type finding = {
  severity : severity;
  rule : string;  (** Stable rule id: ["shape"], ["arity"], ["role"],
                      ["param"], ["dead-node"], ["dup-literal"],
                      ["pending-region"], ["recompile-hazard"],
                      ["unknown-op"]. *)
  node : int option;
  message : string;
}

exception Check_error of string

val errors : finding list -> finding list
val warnings : finding list -> finding list
val pp_finding : Format.formatter -> finding -> unit

(** [expected_shape op inputs attrs]: the output shape the catalog would
    compute — [Ok None] when the op has no closed-form rule (or is
    unknown), [Error _] when inputs/attrs are malformed for the op. *)
val expected_shape :
  string -> Shape.t list -> string -> (Shape.t option, string) result

(** Arity, role, and shape findings for one node. *)
val check_node : Hlo.node -> finding list

(** Advisory lints only: dead nodes, duplicate literals, and (when
    [pending_limit] is given) an oversized region. *)
val lint_graph : ?pending_limit:int -> Hlo.graph -> finding list

(** All errors and lints for a graph: per-node checks, parameter-numbering
    density (distinct, contiguous from 0), plus {!lint_graph}. *)
val check_graph : ?pending_limit:int -> Hlo.graph -> finding list

(** Raise {!Check_error} naming [stage] if the graph has errors (lints do
    not raise). The checked-mode hook body. *)
val run : stage:string -> Hlo.graph -> unit

module Hazard : sig
  type t

  (** [create ~threshold ()] reports a skeleton once it has accumulated
      [threshold] (default 4) distinct fingerprints. *)
  val create : ?threshold:int -> unit -> t

  val reset : t -> unit

  (** Shape-free structural hash of a graph (op names, roles, topology). *)
  val skeleton : Hlo.graph -> int

  (** Record one cut; returns a [recompile-hazard] finding the first time
      a skeleton crosses the threshold. *)
  val observe : t -> Hlo.graph -> finding list

  (** Distinct fingerprints per skeleton, largest first. *)
  val skeleton_counts : t -> int list
end

val finding_to_json : finding -> S4o_obs.Json.t

(** One analysis report: graph stats, fingerprint, and findings. *)
val report_to_json :
  graph_name:string -> Hlo.graph -> finding list -> S4o_obs.Json.t
