(** Checked mode: one switch that installs the static analyzers into every
    hook the runtimes expose, so the whole stack self-verifies as it runs:

    - {!S4o_sil.Passes.post_pass_hook}, {!S4o_sil.Transform.post_synthesis_hook},
      {!S4o_sil.Codegen.post_codegen_hook} → {!Verify.run} (errors raise
      {!Verify.Verify_error}; lints are counted, never fatal).
    - {!S4o_xla.Opt.post_pass_hook}, {!S4o_lazy.Trace.post_cut_hook} →
      {!Hlo_check.run} plus lint counting and recompile-hazard tracking.
    - Optionally arms the {!S4o_tensor.Sanitizer} write-race sanitizer.

    The test suite enables checked mode globally, which is the acceptance
    bar: every AD-transformed function and every cut HLO graph verifies
    with zero violations, at the point of production. Results feed an
    optional {!S4o_obs.Metrics} registry ([analysis.*] counters). *)

let enabled_flag = ref false
let enabled () = !enabled_flag

type stats = {
  sil_verified : int;  (** Functions through the IR verifier. *)
  hlo_checked : int;  (** Graphs through the HLO checker. *)
  sil_warnings : int;
  hlo_warnings : int;
  hazards : int;
}

let zero =
  { sil_verified = 0; hlo_checked = 0; sil_warnings = 0; hlo_warnings = 0; hazards = 0 }

let state = ref zero
let stats () = !state
let reset_stats () = state := zero

let metrics : S4o_obs.Metrics.t option ref = ref None
let attach_metrics m = metrics := Some m
let detach_metrics () = metrics := None

let count name by =
  match !metrics with
  | None -> ()
  | Some m -> S4o_obs.Metrics.incr ~by (S4o_obs.Metrics.counter m name)

let hazard = Hlo_check.Hazard.create ()

let verify_sil stage f =
  Verify.run ~stage f;
  let warn = List.length (Verify.warnings (Verify.func f)) in
  state :=
    {
      !state with
      sil_verified = !state.sil_verified + 1;
      sil_warnings = !state.sil_warnings + warn;
    };
  count "analysis.sil_verified" 1;
  if warn > 0 then count "analysis.sil_warnings" warn

let check_hlo ?(track_hazards = false) stage g =
  Hlo_check.run ~stage g;
  let warn = List.length (Hlo_check.warnings (Hlo_check.check_graph g)) in
  let hz =
    if track_hazards then List.length (Hlo_check.Hazard.observe hazard g)
    else 0
  in
  state :=
    {
      !state with
      hlo_checked = !state.hlo_checked + 1;
      hlo_warnings = !state.hlo_warnings + warn;
      hazards = !state.hazards + hz;
    };
  count "analysis.hlo_checked" 1;
  if warn > 0 then count "analysis.hlo_warnings" warn;
  if hz > 0 then count "analysis.recompile_hazards" hz

let enable ?(sanitize = false) () =
  enabled_flag := true;
  if sanitize then S4o_tensor.Sanitizer.set_armed true;
  S4o_sil.Passes.post_pass_hook := (fun stage f -> verify_sil ("pass:" ^ stage) f);
  S4o_sil.Transform.post_synthesis_hook := (fun f -> verify_sil "transform" f);
  S4o_sil.Codegen.post_codegen_hook := (fun f -> verify_sil "codegen" f);
  S4o_xla.Opt.post_pass_hook := (fun stage g -> check_hlo ("opt:" ^ stage) g);
  S4o_lazy.Trace.post_cut_hook :=
    (fun g -> check_hlo ~track_hazards:true "trace-cut" g)

let disable () =
  enabled_flag := false;
  S4o_sil.Passes.post_pass_hook := (fun _ _ -> ());
  S4o_sil.Transform.post_synthesis_hook := (fun _ -> ());
  S4o_sil.Codegen.post_codegen_hook := (fun _ -> ());
  S4o_xla.Opt.post_pass_hook := (fun _ _ -> ());
  S4o_lazy.Trace.post_cut_hook := (fun _ -> ())
