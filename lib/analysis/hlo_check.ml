(** HLO graph checker and linter.

    The trace cut ({!S4o_lazy.Trace.to_hlo}) and every compiler pass
    ({!S4o_xla.Opt}) produce HLO graphs whose correctness the rest of the
    stack assumes: node shapes must agree with what the op would actually
    produce from its input shapes (the catalog computed them at record
    time, but a pass that rewires inputs can silently invalidate them), and
    parameters must stay well-numbered. The checker re-derives every
    compute node's shape from its inputs and attributes using the same
    rules as {!S4o_ops.Catalog} and reports disagreements as errors.

    Lints (advisory): dead nodes not reachable from the outputs (what
    [dead_code_elim] would drop), duplicate literal contents (what [cse]
    would merge), oversized pending regions, and — across a sequence of
    cuts via {!Hazard} — recompile hazards: many fingerprints sharing one
    op skeleton but differing in shapes, the §3.4 cache-miss pathology that
    shape bucketing fixes. *)

open S4o_tensor
open S4o_xla

type severity = Error | Warning

type finding = {
  severity : severity;
  rule : string;  (** Stable machine-readable rule id, e.g. ["shape"]. *)
  node : int option;  (** Offending node id, when node-specific. *)
  message : string;
}

exception Check_error of string

let errors fs = List.filter (fun f -> f.severity = Error) fs
let warnings fs = List.filter (fun f -> f.severity = Warning) fs

let pp_finding ppf f =
  Format.fprintf ppf "[%s] %s%s: %s"
    (match f.severity with Error -> "error" | Warning -> "warn")
    f.rule
    (match f.node with Some id -> Printf.sprintf " n%d" id | None -> "")
    f.message

(** {1 Attribute parsing}

    Attribute strings are the catalog's: ["c=3"], ["[2x3]"],
    ["axes=0,1;keep"], ["stride=2x2;pad=same"], ["size=2x2;stride=1x1"]. *)

let parse_shape s =
  let s = String.trim s in
  let n = String.length s in
  if n < 2 || s.[0] <> '[' || s.[n - 1] <> ']' then None
  else if n = 2 then Some [||]
  else
    let dims = String.split_on_char 'x' (String.sub s 1 (n - 2)) in
    let parsed = List.map int_of_string_opt dims in
    if List.for_all Option.is_some parsed then
      Some (Array.of_list (List.map Option.get parsed))
    else None

let attr_fields attrs =
  List.filter_map
    (fun kv ->
      match String.index_opt kv '=' with
      | Some i ->
          Some
            ( String.sub kv 0 i,
              String.sub kv (i + 1) (String.length kv - i - 1) )
      | None -> Some (kv, ""))
    (String.split_on_char ';' attrs)

let parse_pair s =
  match String.split_on_char 'x' s with
  | [ a; b ] -> begin
      match (int_of_string_opt a, int_of_string_opt b) with
      | Some a, Some b -> Some (a, b)
      | _, _ -> None
    end
  | _ -> None

let parse_conv_attrs attrs =
  let fields = attr_fields attrs in
  match
    ( Option.bind (List.assoc_opt "stride" fields) parse_pair,
      List.assoc_opt "pad" fields )
  with
  | Some stride, Some "same" -> Some (stride, Convolution.Same)
  | Some stride, Some "valid" -> Some (stride, Convolution.Valid)
  | _, _ -> None

let parse_pool_attrs attrs =
  let fields = attr_fields attrs in
  match
    ( Option.bind (List.assoc_opt "size" fields) parse_pair,
      Option.bind (List.assoc_opt "stride" fields) parse_pair )
  with
  | Some size, Some stride -> Some (size, stride)
  | _, _ -> None

let parse_axes attrs =
  let fields = attr_fields attrs in
  let keep = List.mem_assoc "keep" fields in
  match List.assoc_opt "axes" fields with
  | None -> None
  | Some s ->
      let parts = String.split_on_char ',' s in
      let axes = List.map int_of_string_opt parts in
      if List.for_all Option.is_some axes then
        Some (List.map Option.get axes, keep)
      else None

(** {1 Shape rules}

    [expected_shape op inputs attrs] re-derives the output shape the
    catalog would compute. [Ok None] means no rule is registered for the
    op (unknown ops lint rather than error, so user-defined kernels can
    flow through). [Error msg] means the inputs/attrs themselves are
    malformed for the op. *)

let rank_is r (s : Shape.t) = Shape.rank s = r

let expected_shape op_name (inputs : Shape.t list) attrs :
    (Shape.t option, string) result =
  let open struct
    exception Bad of string
  end in
  let bad fmt = Format.kasprintf (fun s -> raise (Bad s)) fmt in
  let arity n =
    if List.length inputs <> n then
      bad "expects %d input(s), has %d" n (List.length inputs)
  in
  let in1 () =
    arity 1;
    List.nth inputs 0
  in
  let in2 () =
    arity 2;
    (List.nth inputs 0, List.nth inputs 1)
  in
  let attr_shape () =
    match parse_shape attrs with
    | Some s -> s
    | None -> bad "unparseable shape attribute %S" attrs
  in
  let conv_attrs () =
    match parse_conv_attrs attrs with
    | Some v -> v
    | None -> bad "unparseable conv attributes %S" attrs
  in
  let pool_attrs () =
    match parse_pool_attrs attrs with
    | Some v -> v
    | None -> bad "unparseable pool attributes %S" attrs
  in
  let broadcast2 () =
    let a, b = in2 () in
    if not (Shape.broadcastable a b) then
      bad "inputs %s and %s do not broadcast" (Shape.to_string a)
        (Shape.to_string b);
    Shape.broadcast a b
  in
  let pool_out input (kh, kw) (sh, sw) =
    if not (rank_is 4 input) then
      bad "expects rank-4 NHWC input, has %s" (Shape.to_string input);
    let oh = Convolution.out_dim Valid ~size:input.(1) ~kernel:kh ~stride:sh in
    let ow = Convolution.out_dim Valid ~size:input.(2) ~kernel:kw ~stride:sw in
    [| input.(0); oh; ow; input.(3) |]
  in
  try
    let shape =
      match op_name with
      | "add" | "sub" | "mul" | "div" | "relu_grad" -> Some (broadcast2 ())
      | "neg" | "exp" | "log" | "sqrt" | "relu" | "sigmoid" | "tanh"
      | "softmax" | "log_softmax" ->
          Some (in1 ())
      | "scale" | "add_scalar" ->
          let a = in1 () in
          (match List.assoc_opt "c" (attr_fields attrs) with
          | Some c when float_of_string_opt c <> None -> ()
          | Some _ | None -> bad "unparseable scalar attribute %S" attrs);
          Some a
      | "reshape" ->
          let a = in1 () in
          let target = attr_shape () in
          if not (Shape.can_reshape a target) then
            bad "cannot reshape %s to %s" (Shape.to_string a)
              (Shape.to_string target);
          Some target
      | "transpose" ->
          let a = in1 () in
          if not (rank_is 2 a) then
            bad "expects rank 2, has %s" (Shape.to_string a);
          Some [| a.(1); a.(0) |]
      | "batch_transpose" ->
          let a = in1 () in
          if not (rank_is 3 a) then
            bad "expects rank 3, has %s" (Shape.to_string a);
          Some [| a.(0); a.(2); a.(1) |]
      | "broadcast" ->
          let a = in1 () in
          let target = attr_shape () in
          if not (Shape.broadcastable a target) then
            bad "%s does not broadcast to %s" (Shape.to_string a)
              (Shape.to_string target);
          Some (Shape.broadcast a target)
      | "unbroadcast" ->
          let a = in1 () in
          let target = attr_shape () in
          if not (Shape.broadcastable target a) then
            bad "%s is not an unbroadcast of %s" (Shape.to_string target)
              (Shape.to_string a);
          Some target
      | "sum_axes" ->
          let a = in1 () in
          let axes, keep_dims =
            match parse_axes attrs with
            | Some v -> v
            | None -> bad "unparseable axes attribute %S" attrs
          in
          List.iter
            (fun ax ->
              if ax < 0 || ax >= Shape.rank a then
                bad "axis %d out of range for %s" ax (Shape.to_string a))
            axes;
          Some (Shape.reduce_axes ~keep_dims a axes)
      | "sum_all" | "mean_all" ->
          ignore (in1 ());
          Some [||]
      | "matmul" ->
          let a, b = in2 () in
          if not (rank_is 2 a && rank_is 2 b) then
            bad "expects rank-2 inputs, has %s x %s" (Shape.to_string a)
              (Shape.to_string b);
          if a.(1) <> b.(0) then
            bad "contraction mismatch: %s x %s" (Shape.to_string a)
              (Shape.to_string b);
          Some [| a.(0); b.(1) |]
      | "batch_matmul" ->
          let a, b = in2 () in
          if not (rank_is 3 a && rank_is 3 b) then
            bad "expects rank-3 inputs, has %s x %s" (Shape.to_string a)
              (Shape.to_string b);
          if a.(0) <> b.(0) || a.(2) <> b.(1) then
            bad "batch/contraction mismatch: %s x %s" (Shape.to_string a)
              (Shape.to_string b);
          Some [| a.(0); a.(1); b.(2) |]
      | "conv2d" ->
          let input, filter = in2 () in
          let (sh, sw), padding = conv_attrs () in
          if not (rank_is 4 input && rank_is 4 filter) then
            bad "expects rank-4 input and filter, has %s, %s"
              (Shape.to_string input) (Shape.to_string filter);
          if input.(3) <> filter.(2) then
            bad "input channels %d but filter takes %d" input.(3) filter.(2);
          let oh =
            Convolution.out_dim padding ~size:input.(1) ~kernel:filter.(0)
              ~stride:sh
          in
          let ow =
            Convolution.out_dim padding ~size:input.(2) ~kernel:filter.(1)
              ~stride:sw
          in
          Some [| input.(0); oh; ow; filter.(3) |]
      | "conv2d_backward_input" ->
          (* Inputs (filter, grad); declared shape is the original input.
             Consistency: conv2d(declared, filter) must produce grad. *)
          ignore (in2 ());
          None
      | "conv2d_backward_filter" -> ignore (in2 ()); None
      | "avg_pool2d" | "max_pool2d" ->
          let input = in1 () in
          let size, stride = pool_attrs () in
          Some (pool_out input size stride)
      | "avg_pool2d_backward" -> ignore (in1 ()); None
      | "max_pool2d_backward" ->
          (* Inputs (input, grad); output shape is the input's, and pooling
             the input must produce the grad's shape. *)
          let input, grad = in2 () in
          let size, stride = pool_attrs () in
          let pooled = pool_out input size stride in
          if not (Shape.equal pooled grad) then
            bad "pooling %s gives %s but grad is %s" (Shape.to_string input)
              (Shape.to_string pooled) (Shape.to_string grad);
          Some input
      | _ -> None
    in
    Ok shape
  with Bad msg -> Error msg

(** Ops with a declared (not derivable) output shape, checked for
    consistency with their inputs instead. *)
let declared_shape_consistent op_name (inputs : Shape.t list) attrs
    (out : Shape.t) : (unit, string) result =
  let check_conv_like ~filter ~grad ~input (sh, sw) padding =
    if
      Shape.rank input = 4 && Shape.rank filter = 4 && Shape.rank grad = 4
      && input.(0) = grad.(0)
      && input.(3) = filter.(2)
      && grad.(3) = filter.(3)
      && Convolution.out_dim padding ~size:input.(1) ~kernel:filter.(0)
           ~stride:sh
         = grad.(1)
      && Convolution.out_dim padding ~size:input.(2) ~kernel:filter.(1)
           ~stride:sw
         = grad.(2)
    then Ok ()
    else
      Error
        (Format.sprintf
           "inconsistent convolution: input %s, filter %s, grad %s"
           (Shape.to_string input) (Shape.to_string filter)
           (Shape.to_string grad))
  in
  match (op_name, inputs) with
  | "conv2d_backward_input", [ filter; grad ] -> begin
      match parse_conv_attrs attrs with
      | None -> Error (Printf.sprintf "unparseable conv attributes %S" attrs)
      | Some (stride, padding) ->
          check_conv_like ~filter ~grad ~input:out stride padding
    end
  | "conv2d_backward_filter", [ input; grad ] -> begin
      match parse_conv_attrs attrs with
      | None -> Error (Printf.sprintf "unparseable conv attributes %S" attrs)
      | Some (stride, padding) ->
          check_conv_like ~filter:out ~grad ~input stride padding
    end
  | "avg_pool2d_backward", [ grad ] -> begin
      match parse_pool_attrs attrs with
      | None -> Error (Printf.sprintf "unparseable pool attributes %S" attrs)
      | Some ((kh, kw), (sh, sw)) ->
          if
            Shape.rank out = 4 && Shape.rank grad = 4
            && out.(0) = grad.(0)
            && out.(3) = grad.(3)
            && Convolution.out_dim Valid ~size:out.(1) ~kernel:kh ~stride:sh
               = grad.(1)
            && Convolution.out_dim Valid ~size:out.(2) ~kernel:kw ~stride:sw
               = grad.(2)
          then Ok ()
          else
            Error
              (Format.sprintf "pooling %s does not give grad %s"
                 (Shape.to_string out) (Shape.to_string grad))
    end
  | _, _ -> Ok ()

let known_op op_name =
  match
    expected_shape op_name [] ""
    (* probe: any rule reports arity/attr errors, unknown ops report None *)
  with
  | Ok None -> (
      match op_name with
      | "conv2d_backward_input" | "conv2d_backward_filter"
      | "avg_pool2d_backward" ->
          true
      | _ -> false)
  | Ok (Some _) | Error _ -> true

(** {1 Node and graph checks} *)

let check_node (n : Hlo.node) : finding list =
  let add sev rule fmt =
    Format.kasprintf
      (fun message -> [ { severity = sev; rule; node = Some n.id; message } ])
      fmt
  in
  match n.role with
  | Hlo.Param _ | Hlo.Literal _ ->
      if n.inputs <> [] then
        add Error "role" "%s node has %d inputs" n.op_name
          (List.length n.inputs)
      else []
  | Hlo.Compute -> begin
      let input_shapes = List.map (fun (i : Hlo.node) -> i.shape) n.inputs in
      match expected_shape n.op_name input_shapes n.attrs with
      | Error msg -> add Error "arity" "%s: %s" n.op_name msg
      | Ok (Some want) when not (Shape.equal want n.shape) ->
          add Error "shape" "%s: inputs %s give %s but node declares %s"
            n.op_name
            (String.concat ", " (List.map Shape.to_string input_shapes))
            (Shape.to_string want) (Shape.to_string n.shape)
      | Ok (Some _) -> []
      | Ok None -> begin
          match
            declared_shape_consistent n.op_name input_shapes n.attrs n.shape
          with
          | Error msg -> add Error "shape" "%s: %s" n.op_name msg
          | Ok () ->
              if known_op n.op_name then []
              else add Warning "unknown-op" "no shape rule for %s" n.op_name
        end
    end

let lint_graph ?pending_limit (g : Hlo.graph) : finding list =
  let out = ref [] in
  let add ?node rule fmt =
    Format.kasprintf
      (fun message -> out := { severity = Warning; rule; node; message } :: !out)
      fmt
  in
  (* Dead nodes: present in [nodes] but unreachable from the outputs —
     exactly what dead_code_elim would drop. *)
  let reachable = Hashtbl.create 64 in
  let rec visit (n : Hlo.node) =
    if not (Hashtbl.mem reachable n.id) then begin
      Hashtbl.add reachable n.id ();
      List.iter visit n.inputs
    end
  in
  List.iter visit g.outputs;
  List.iter
    (fun (n : Hlo.node) ->
      if not (Hashtbl.mem reachable n.id) then
        add ~node:n.id "dead-node" "%s [%s] unreachable from outputs: dead code"
          n.op_name (Shape.to_string n.shape))
    g.nodes;
  (* Duplicate literals: same contents recorded as distinct nodes — CSE
     would merge them; before it runs they bloat the fingerprint and the
     transfer set. *)
  let lits = Hashtbl.create 16 in
  List.iter
    (fun (n : Hlo.node) ->
      match n.role with
      | Hlo.Literal v -> begin
          let key = (Shape.to_string n.shape, Dense.hash_contents v) in
          match Hashtbl.find_opt lits key with
          | Some (prior_id, pv) when Dense.equal pv v ->
              add ~node:n.id "dup-literal"
                "literal [%s] duplicates n%d: cse would merge them"
                (Shape.to_string n.shape) prior_id
          | Some _ | None -> Hashtbl.replace lits key (n.id, v)
        end
      | Hlo.Compute | Hlo.Param _ -> ())
    g.nodes;
  (match pending_limit with
  | Some limit when Hlo.size g > limit ->
      add "pending-region"
        "%d nodes in one cut exceeds the %d-node budget: cut the trace more \
         often (step boundaries) to bound compile time and memory"
        (Hlo.size g) limit
  | Some _ | None -> ());
  List.rev !out

let check_graph ?pending_limit (g : Hlo.graph) : finding list =
  let node_findings = List.concat_map check_node g.nodes in
  (* Parameter numbering: distinct, and contiguous from 0. *)
  let params =
    List.filter_map
      (fun (n : Hlo.node) ->
        match n.role with Hlo.Param i -> Some (i, n.id) | _ -> None)
      g.nodes
  in
  let param_findings =
    let seen = Hashtbl.create 8 in
    let dups =
      List.filter_map
        (fun (i, id) ->
          if Hashtbl.mem seen i then
            Some
              {
                severity = Error;
                rule = "param";
                node = Some id;
                message = Printf.sprintf "duplicate parameter index %d" i;
              }
          else begin
            Hashtbl.add seen i ();
            None
          end)
        params
    in
    (* Optimizers may legitimately drop an unused parameter, leaving the
       surviving indices sparse — the executor binds by index, so sparse
       numbering is only worth a lint. Negative indices are always errors. *)
    let k = List.length params in
    let gaps =
      List.filter_map
        (fun (i, id) ->
          if i < 0 || i >= k then
            Some
              {
                severity = (if i < 0 then Error else Warning);
                rule = "param";
                node = Some id;
                message =
                  Printf.sprintf
                    "parameter index %d outside dense range 0..%d" i (k - 1);
              }
          else None)
        params
    in
    dups @ gaps
  in
  node_findings @ param_findings @ lint_graph ?pending_limit g

let run ~stage (g : Hlo.graph) =
  match errors (check_graph g) with
  | [] -> ()
  | errs ->
      raise
        (Check_error
           (Format.asprintf "@[<v>HLO check failed after %s:@,%a@]" stage
              (Format.pp_print_list pp_finding)
              errs))

(** {1 Recompile-hazard detection}

    The program cache keys on the full structural fingerprint, so a model
    re-traced with a different batch size is a compile-cache miss even
    though the op skeleton is identical. The hazard detector buckets
    fingerprints by a shape-free skeleton hash; one skeleton accumulating
    many distinct fingerprints is the §3.4 pathology (fix: pad/bucket the
    varying dimension). *)

module Hazard = struct
  type t = {
    threshold : int;
    skeletons : (int, (int, unit) Hashtbl.t) Hashtbl.t;
    mutable reported : int list;
  }

  let create ?(threshold = 4) () =
    { threshold; skeletons = Hashtbl.create 16; reported = [] }

  let reset t =
    Hashtbl.reset t.skeletons;
    t.reported <- []

  (* Shape-free structural hash: op names, roles, and topology. Attrs are
     excluded too — reshape/broadcast embed shapes in their attrs. *)
  let skeleton (g : Hlo.graph) =
    let index = Hashtbl.create 64 in
    List.iteri (fun i (n : Hlo.node) -> Hashtbl.add index n.id i) g.nodes;
    let node_key (n : Hlo.node) =
      let role =
        match n.role with
        | Hlo.Compute -> "c"
        | Hlo.Param i -> Printf.sprintf "p%d" i
        | Hlo.Literal _ -> "l"
      in
      Printf.sprintf "%s/%s/%s" n.op_name role
        (String.concat ","
           (List.map
              (fun (i : Hlo.node) -> string_of_int (Hashtbl.find index i.id))
              n.inputs))
    in
    Hashtbl.hash
      ( List.map node_key g.nodes,
        List.map (fun (o : Hlo.node) -> Hashtbl.find index o.id) g.outputs )

  let observe t (g : Hlo.graph) : finding list =
    let sk = skeleton g in
    let fps =
      match Hashtbl.find_opt t.skeletons sk with
      | Some fps -> fps
      | None ->
          let fps = Hashtbl.create 4 in
          Hashtbl.add t.skeletons sk fps;
          fps
    in
    Hashtbl.replace fps (Hlo.fingerprint g) ();
    let n = Hashtbl.length fps in
    if n >= t.threshold && not (List.mem sk t.reported) then begin
      t.reported <- sk :: t.reported;
      [
        {
          severity = Warning;
          rule = "recompile-hazard";
          node = None;
          message =
            Printf.sprintf
              "%d distinct fingerprints share one op skeleton: each is a \
               compile-cache miss; bucket the varying dimension (pad \
               batch/sequence sizes) to reuse programs"
              n;
        };
      ]
    end
    else []

  (** Distinct fingerprints seen per skeleton, largest first. *)
  let skeleton_counts t =
    Hashtbl.fold (fun _ fps acc -> Hashtbl.length fps :: acc) t.skeletons []
    |> List.sort (fun a b -> compare b a)
end

(** {1 Reporting} *)

let severity_str = function Error -> "error" | Warning -> "warning"

module J = S4o_obs.Json

let finding_to_json (f : finding) : J.t =
  J.Obj
    ([
       ("severity", J.Str (severity_str f.severity));
       ("rule", J.Str f.rule);
       ("message", J.Str f.message);
     ]
    @ match f.node with
      | Some id -> [ ("node", J.Num (float_of_int id)) ]
      | None -> [])

let report_to_json ~graph_name (g : Hlo.graph) (findings : finding list) : J.t
    =
  J.Obj
    [
      ("graph", J.Str graph_name);
      ("nodes", J.Num (float_of_int (Hlo.size g)));
      ("outputs", J.Num (float_of_int (List.length g.outputs)));
      ("params", J.Num (float_of_int (List.length (Hlo.params g))));
      ("fingerprint", J.Str (Printf.sprintf "%x" (Hlo.fingerprint g)));
      ("errors", J.Num (float_of_int (List.length (errors findings))));
      ("warnings", J.Num (float_of_int (List.length (warnings findings))));
      ("findings", J.Arr (List.map finding_to_json findings));
    ]
