(** The MSIL IR verifier.

    {!S4o_sil.Ir.validate} raises on the first structural problem; the
    verifier instead collects {e every} violation, classifies each as an
    error (the function is malformed — interpreting it would be undefined)
    or a warning (well-formed but suspicious — a missed-optimization or
    density lint), and powers checked mode: after every optimization pass
    and every AD code generation, {!run} re-verifies the output so a
    renumbering bug in a pass surfaces at the pass, not as a wrong number
    three layers later.

    Errors: def-before-use, operand/terminator ranges, branch-argument
    arity, entry arity. Warnings (dataflow-powered): unreachable blocks,
    dead instruction results (value-numbering density — DCE output must
    have none), single-definition block parameters, constant branch
    conditions. *)

open S4o_sil

type severity = Error | Warning

type violation = {
  severity : severity;
  func : string;
  block : int;
  site : string;  (** e.g. ["inst 3"], ["term"], ["param 1"]. *)
  message : string;
}

exception Verify_error of string

let errors vs = List.filter (fun v -> v.severity = Error) vs
let warnings vs = List.filter (fun v -> v.severity = Warning) vs

let pp_violation ppf v =
  Format.fprintf ppf "[%s] @%s bb%d %s: %s"
    (match v.severity with Error -> "error" | Warning -> "warn")
    v.func v.block v.site v.message

let structural (f : Ir.func) =
  let out = ref [] in
  let add severity block site fmt =
    Format.kasprintf
      (fun message ->
        out := { severity; func = f.Ir.name; block; site; message } :: !out)
      fmt
  in
  let nblocks = Array.length f.Ir.blocks in
  if nblocks = 0 then add Error 0 "func" "no blocks"
  else begin
    if f.Ir.blocks.(0).Ir.params <> f.Ir.n_args then
      add Error 0 "entry"
        "entry block has %d params for %d args" f.Ir.blocks.(0).Ir.params
        f.Ir.n_args;
    Array.iteri
      (fun bi b ->
        Array.iteri
          (fun ii inst ->
            let defined = b.Ir.params + ii in
            List.iter
              (fun v ->
                if v < 0 then
                  add Error bi (Printf.sprintf "inst %d" ii)
                    "negative operand v%d" v
                else if v >= defined then
                  add Error bi (Printf.sprintf "inst %d" ii)
                    "operand v%d used before definition (only v0..v%d defined)"
                    v (defined - 1))
              (Ir.inst_operands inst))
          b.Ir.insts;
        let total = Ir.block_values b in
        let check_value site v =
          if v < 0 || v >= total then
            add Error bi site "value v%d out of range (block defines %d)" v
              total
        in
        let check_target args target =
          if target < 0 || target >= nblocks then
            add Error bi "term" "branch to missing bb%d" target
          else begin
            let want = f.Ir.blocks.(target).Ir.params in
            if Array.length args <> want then
              add Error bi "term"
                "%d branch args for bb%d which takes %d params"
                (Array.length args) target want;
            Array.iter (check_value "term") args
          end
        in
        match b.Ir.term with
        | Ir.Ret v -> check_value "term" v
        | Ir.Br (t, args) -> check_target args t
        | Ir.Cond_br (c, bt, at, bf, af) ->
            check_value "term" c;
            check_target at bt;
            check_target af bf)
      f.Ir.blocks
  end;
  List.rev !out

let lints (f : Ir.func) =
  let out = ref [] in
  let add block site fmt =
    Format.kasprintf
      (fun message ->
        out :=
          { severity = Warning; func = f.Ir.name; block; site; message }
          :: !out)
      fmt
  in
  let reach = Dataflow.reachable f in
  Array.iteri
    (fun bi r -> if not r then add bi "block" "unreachable from entry")
    reach;
  List.iter
    (fun (bi, ii) ->
      if reach.(bi) then
        add bi (Printf.sprintf "inst %d" ii)
          "dead result v%d (value-numbering density: run dead_code_elim)"
          (f.Ir.blocks.(bi).Ir.params + ii))
    (Dataflow.Liveness.dead_insts f);
  List.iter
    (fun (bi, p) ->
      add bi (Printf.sprintf "param %d" p)
        "single reaching definition: sinkable past the branch")
    (Dataflow.Reaching.redundant_params f);
  List.iter
    (fun (bi, c) ->
      add bi "term" "branch condition is always %g" c)
    (Dataflow.Const_prop.constant_branches f);
  List.rev !out

let func ?(lint = true) (f : Ir.func) =
  let errs = structural f in
  (* Dataflow over malformed IR would index out of range — lint only when
     structurally clean. *)
  if lint && errors errs = [] then errs @ lints f else errs

let run ~stage (f : Ir.func) =
  match errors (func ~lint:false f) with
  | [] -> ()
  | errs ->
      raise
        (Verify_error
           (Format.asprintf "@[<v>IR verification failed after %s:@,%a@]"
              stage
              (Format.pp_print_list pp_violation)
              errs))
