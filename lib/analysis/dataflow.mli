(** Generic dataflow fixpoint engine over MSIL CFGs, plus the standard
    instances (liveness, reaching definitions, constant propagation).

    Inter-block flow in MSIL happens only through branch arguments; both
    solvers bake that coupling in. See {!Make.forward} / {!Make.backward}. *)

open S4o_sil

module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool

  (** Least upper bound; must be monotone for the fixpoint to terminate. *)
  val join : t -> t -> t
end

(** Successor list [(target, branch args)] of a block. *)
val branches : Ir.block -> (int * int array) list

(** Blocks reachable from the entry, as a mask indexed by block id. *)
val reachable : Ir.func -> bool array

module Make (L : LATTICE) : sig
  type facts = L.t array array
  (** [facts.(bi).(v)] is the fact for value [v] of block [bi] (values are
      block-local: parameters then instruction results). *)

  (** [forward f ~entry ~transfer] solves a forward problem: entry-block
      parameter [p] starts at [entry p]; instruction facts come from
      [transfer ~bi ~ii inst get] (where [get u] reads an operand fact);
      non-entry parameters join the incoming branch-argument facts. *)
  val forward :
    Ir.func ->
    entry:(int -> L.t) ->
    transfer:(bi:int -> ii:int -> Ir.inst -> (int -> L.t) -> L.t) ->
    facts

  (** [backward f ~term_seed ~transfer] solves a backward problem:
      [term_seed] lists direct [(value, fact)] demands of a terminator
      (branch arguments are handled by the engine — target-parameter facts
      flow back onto them); [transfer] lists the operand contributions of an
      instruction given its result fact. *)
  val backward :
    Ir.func ->
    term_seed:(bi:int -> Ir.terminator -> (int * L.t) list) ->
    transfer:(bi:int -> ii:int -> Ir.inst -> result:L.t -> (int * L.t) list) ->
    facts
end

module Liveness : sig
  (** [analyze f].(bi).(v): value [v] of block [bi] contributes to the
      result. *)
  val analyze : Ir.func -> bool array array

  (** Instructions with dead results, [(block, inst index)]. Empty after
      {!S4o_sil.Passes.dead_code_elim} — the value-numbering density
      invariant the verifier lints on. *)
  val dead_insts : Ir.func -> (int * int) list
end

module Reaching : sig
  type def = Arg of int | Def of int * int

  module S : Set.S with type elt = def

  val analyze : Ir.func -> S.t array array

  (** Reachable non-entry block parameters fed by exactly one definition
      site, [(block, param)] — sinkable past the branch. *)
  val redundant_params : Ir.func -> (int * int) list
end

module Const_prop : sig
  type value = Bot | Const of float | Top

  val analyze : Ir.func -> value array array

  (** Reachable conditional branches on a known-constant condition,
      [(block, constant)]. *)
  val constant_branches : Ir.func -> (int * float) list
end
