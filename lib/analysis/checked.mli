(** Checked mode: installs the IR verifier and HLO checker into the hooks
    every runtime layer exposes ({!S4o_sil.Passes}, {!S4o_sil.Transform},
    {!S4o_sil.Codegen}, {!S4o_xla.Opt}, {!S4o_lazy.Trace}), so every
    optimized function, synthesized derivative, and cut graph is verified
    at the point of production. Errors raise ({!Verify.Verify_error} /
    {!Hlo_check.Check_error}); lints are counted, never fatal. *)

(** [enable ()] installs all hooks. [~sanitize:true] also arms the
    {!S4o_tensor.Sanitizer} write-race sanitizer. *)
val enable : ?sanitize:bool -> unit -> unit

(** Restore every hook to a no-op (sanitizer arming is left as-is). *)
val disable : unit -> unit

val enabled : unit -> bool

type stats = {
  sil_verified : int;
  hlo_checked : int;
  sil_warnings : int;
  hlo_warnings : int;
  hazards : int;
}

val stats : unit -> stats
val reset_stats : unit -> unit

(** Mirror counts into [analysis.*] counters of a metrics registry. *)
val attach_metrics : S4o_obs.Metrics.t -> unit

val detach_metrics : unit -> unit
