(** A generic dataflow fixpoint engine over MSIL control-flow graphs.

    MSIL values are block-local (a block references only its own parameters
    and instruction results), so all inter-block flow happens through
    branch arguments: a branch [br bbT(v1..vk)] binds the source block's
    values to the target block's parameters. Both solvers bake that
    coupling in, which is what makes the engine small:

    - {!Make.forward} pushes facts along execution order — instruction
      facts come from a client transfer function over operand facts, block
      parameter facts are the join of the incoming branch-argument facts.
    - {!Make.backward} pulls demands against execution order — terminator
      uses seed facts, instruction results push contributions onto their
      operands, and target-parameter facts flow back onto branch arguments.

    Iteration is round-robin to a fixpoint; the lattices used here are
    finite (or flat) so termination is immediate. The engine is
    deliberately dumb — CFGs in this codebase are a handful of blocks — and
    favors being obviously correct over being fast. *)

open S4o_sil

module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
end

(** [(target, args)] successor list of a terminator. *)
let branches (b : Ir.block) =
  match b.Ir.term with
  | Ir.Ret _ -> []
  | Ir.Br (t, args) -> [ (t, args) ]
  | Ir.Cond_br (_, bt, at, bf, af) -> [ (bt, at); (bf, af) ]

(** Blocks reachable from the entry, as a boolean mask. *)
let reachable (f : Ir.func) =
  let seen = Array.make (Array.length f.Ir.blocks) false in
  let rec visit bi =
    if not seen.(bi) then begin
      seen.(bi) <- true;
      List.iter (fun (t, _) -> visit t) (branches f.Ir.blocks.(bi))
    end
  in
  if Array.length f.Ir.blocks > 0 then visit 0;
  seen

module Make (L : LATTICE) = struct
  type facts = L.t array array
  (** [facts.(bi).(v)] is the fact for value [v] of block [bi]. *)

  let init (f : Ir.func) =
    Array.map (fun b -> Array.make (Ir.block_values b) L.bottom) f.Ir.blocks

  let forward (f : Ir.func) ~entry ~transfer : facts =
    let facts = init f in
    if Array.length f.Ir.blocks > 0 then
      for p = 0 to f.Ir.blocks.(0).Ir.params - 1 do
        facts.(0).(p) <- entry p
      done;
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iteri
        (fun bi b ->
          let fs = facts.(bi) in
          Array.iteri
            (fun ii inst ->
              let v = b.Ir.params + ii in
              let nf = L.join fs.(v) (transfer ~bi ~ii inst (fun u -> fs.(u))) in
              if not (L.equal nf fs.(v)) then begin
                fs.(v) <- nf;
                changed := true
              end)
            b.Ir.insts;
          List.iter
            (fun (t, args) ->
              let tf = facts.(t) in
              Array.iteri
                (fun j av ->
                  let nf = L.join tf.(j) fs.(av) in
                  if not (L.equal nf tf.(j)) then begin
                    tf.(j) <- nf;
                    changed := true
                  end)
                args)
            (branches b))
        f.Ir.blocks
    done;
    facts

  let backward (f : Ir.func) ~term_seed ~transfer : facts =
    let facts = init f in
    let changed = ref true in
    while !changed do
      changed := false;
      let bump fs v l =
        let j = L.join fs.(v) l in
        if not (L.equal j fs.(v)) then begin
          fs.(v) <- j;
          changed := true
        end
      in
      for bi = Array.length f.Ir.blocks - 1 downto 0 do
        let b = f.Ir.blocks.(bi) in
        let fs = facts.(bi) in
        List.iter (fun (v, l) -> bump fs v l) (term_seed ~bi b.Ir.term);
        List.iter
          (fun (t, args) ->
            Array.iteri (fun j av -> bump fs av facts.(t).(j)) args)
          (branches b);
        for ii = Array.length b.Ir.insts - 1 downto 0 do
          let v = b.Ir.params + ii in
          List.iter
            (fun (u, l) -> bump fs u l)
            (transfer ~bi ~ii b.Ir.insts.(ii) ~result:fs.(v))
        done
      done
    done;
    facts
end

(** {1 Instances} *)

module Liveness = struct
  module E = Make (struct
    type t = bool

    let bottom = false
    let equal = Bool.equal
    let join = ( || )
  end)

  (** [live.(bi).(v)] — the value contributes to the function result.
      (MSIL calls are pure, so an unused call is dead.) *)
  let analyze (f : Ir.func) : bool array array =
    E.backward f
      ~term_seed:(fun ~bi:_ term ->
        match (term : Ir.terminator) with
        | Ret v -> [ (v, true) ]
        | Br _ -> []
        | Cond_br (c, _, _, _, _) -> [ (c, true) ])
      ~transfer:(fun ~bi:_ ~ii:_ inst ~result ->
        if result then List.map (fun u -> (u, true)) (Ir.inst_operands inst)
        else [])

  (** Instructions whose result is dead, as [(block, inst index)] pairs.
      Empty after {!S4o_sil.Passes.dead_code_elim} — the value-numbering
      density invariant. *)
  let dead_insts (f : Ir.func) =
    let live = analyze f in
    let out = ref [] in
    Array.iteri
      (fun bi b ->
        Array.iteri
          (fun ii _ ->
            if not live.(bi).(b.Ir.params + ii) then out := (bi, ii) :: !out)
          b.Ir.insts)
      f.Ir.blocks;
    List.rev !out
end

module Reaching = struct
  (** A definition site: an entry argument or instruction [ii] of block
      [bi]. With block-argument SSA the only non-trivial flow is into block
      parameters, whose reaching set is the union of the incoming
      branch-argument definitions. *)
  type def = Arg of int | Def of int * int

  module S = Set.Make (struct
    type t = def

    let compare = compare
  end)

  module E = Make (struct
    type t = S.t

    let bottom = S.empty
    let equal = S.equal
    let join = S.union
  end)

  let analyze (f : Ir.func) : S.t array array =
    E.forward f
      ~entry:(fun p -> S.singleton (Arg p))
      ~transfer:(fun ~bi ~ii _inst _get -> S.singleton (Def (bi, ii)))

  (** Non-entry block parameters fed by exactly one definition site, as
      [(block, param)] pairs — the definition could be sunk past the branch
      (a missed-simplification lint, not an error). *)
  let redundant_params (f : Ir.func) =
    let facts = analyze f in
    let reach = reachable f in
    let out = ref [] in
    Array.iteri
      (fun bi b ->
        if bi > 0 && reach.(bi) then
          for p = 0 to b.Ir.params - 1 do
            if S.cardinal facts.(bi).(p) = 1 then out := (bi, p) :: !out
          done)
      f.Ir.blocks;
    List.rev !out
end

module Const_prop = struct
  (** Flat constant lattice: [Bot] (no value seen), [Const c], [Top]. *)
  type value = Bot | Const of float | Top

  module E = Make (struct
    type t = value

    let bottom = Bot

    let equal a b =
      match (a, b) with
      | Bot, Bot | Top, Top -> true
      | Const x, Const y -> Float.equal x y
      | _, _ -> false

    let join a b =
      match (a, b) with
      | Bot, x | x, Bot -> x
      | Top, _ | _, Top -> Top
      | Const x, Const y -> if Float.equal x y then a else Top
    end)

  let analyze (f : Ir.func) : value array array =
    E.forward f
      ~entry:(fun _ -> Top)
      ~transfer:(fun ~bi:_ ~ii:_ inst get ->
        let v u = match get u with Const c -> Some c | Bot | Top -> None in
        match (inst : Ir.inst) with
        | Const c -> Const c
        | Unary (op, a) -> begin
            match v a with
            | Some x -> Const (Interp.apply_unary op x)
            | None -> Top
          end
        | Binary (op, a, b) -> begin
            match (v a, v b) with
            | Some x, Some y -> Const (Interp.apply_binary op x y)
            | _, _ -> Top
          end
        | Cmp (op, a, b) -> begin
            match (v a, v b) with
            | Some x, Some y -> Const (Interp.apply_cmp op x y)
            | _, _ -> Top
          end
        | Select (c, a, b) -> begin
            match v c with
            | Some cv -> ( match v (if cv <> 0.0 then a else b) with
                           | Some x -> Const x
                           | None -> Top)
            | None -> Top
          end
        | Call _ -> Top)

  (** Reachable conditional branches whose condition is a known constant,
      as [(block, constant)] pairs — the branch always goes one way. *)
  let constant_branches (f : Ir.func) =
    let facts = analyze f in
    let reach = reachable f in
    let out = ref [] in
    Array.iteri
      (fun bi b ->
        if reach.(bi) then
          match b.Ir.term with
          | Ir.Cond_br (c, _, _, _, _) -> begin
              match facts.(bi).(c) with
              | Const cv -> out := (bi, cv) :: !out
              | Bot | Top -> ()
            end
          | Ir.Br _ | Ir.Ret _ -> ())
      f.Ir.blocks;
    List.rev !out
end
