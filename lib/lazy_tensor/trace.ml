(** LazyTensor trace nodes (§3.3): instead of dispatching to a fixed set of
    pre-compiled kernels, each Tensor operation "simply records a dynamic
    trace of operations to be executed at a later time". Traces are in-memory
    DAGs (Figure 4); cutting a trace converts the pending region into an HLO
    graph whose parameters are the already-materialized leaves.

    A node's lifecycle: born [Pending] (recorded, not executed); after the
    trace containing it is cut and run, the nodes the user asked for become
    [Materialized] (value on "device") or [Simulated] (timing-only mode:
    the value was never computed, only the clock advanced). Materialized and
    simulated nodes act as leaves — parameters — of later traces, which is
    what keeps trace fingerprints independent of parameter {e values} and
    makes the program cache effective across training steps. *)

open S4o_tensor

type state =
  | Pending
  | Materialized of Dense.t
  | Simulated

type node = {
  id : int;
  op : S4o_ops.Catalog.op option;  (** [None] for data leaves. *)
  args : node list;
  shape : Shape.t;
  mutable state : state;
}

let counter = ref 0

let next_id () =
  incr counter;
  !counter

let leaf value =
  {
    id = next_id ();
    op = None;
    args = [];
    shape = Dense.shape value;
    state = Materialized value;
  }

(** A shape-only leaf for timing-model runs: behaves like device data whose
    contents are never observed. *)
let placeholder shape =
  { id = next_id (); op = None; args = []; shape; state = Simulated }

let record (op : S4o_ops.Catalog.op) args =
  { id = next_id (); op = Some op; args; shape = op.out_shape; state = Pending }

let is_pending n = n.state = Pending

(** The pending region reachable from [roots], in topological order, stopping
    at non-pending nodes (the future graph parameters, in discovery order). *)
let pending_region roots =
  let visited = Hashtbl.create 64 in
  let pending = ref [] in
  let leaves = ref [] in
  let rec visit n =
    if not (Hashtbl.mem visited n.id) then begin
      Hashtbl.add visited n.id ();
      if is_pending n then begin
        List.iter visit n.args;
        pending := n :: !pending
      end
      else leaves := n :: !leaves
    end
  in
  List.iter visit roots;
  (List.rev !pending, List.rev !leaves)

(** Convert the pending region rooted at [roots] to an HLO graph. Returns the
    graph, the leaf nodes in parameter order, and the mapping from pending
    trace nodes to HLO nodes. *)
(* Checked mode installs the HLO checker here; called with every graph a
   trace cut produces. *)
let post_cut_hook : (S4o_xla.Hlo.graph -> unit) ref = ref (fun _ -> ())

let to_hlo roots =
  let pending, leaves = pending_region roots in
  let hlo_of : (int, S4o_xla.Hlo.node) Hashtbl.t = Hashtbl.create 64 in
  List.iteri
    (fun i l -> Hashtbl.add hlo_of l.id (S4o_xla.Hlo.param ~index:i ~shape:l.shape))
    leaves;
  List.iter
    (fun n ->
      match n.op with
      | None -> assert false
      | Some op ->
          let inputs = List.map (fun a -> Hashtbl.find hlo_of a.id) n.args in
          Hashtbl.add hlo_of n.id
            (S4o_xla.Hlo.op ~name:op.name ~attrs:op.attrs ~shape:op.out_shape
               ~info:op.info ~inputs ~kernel:op.kernel ()))
    pending;
  let outputs =
    List.filter_map
      (fun r -> if is_pending r then Some (Hashtbl.find hlo_of r.id) else None)
      roots
  in
  let g = S4o_xla.Hlo.graph_of_outputs outputs in
  !post_cut_hook g;
  (g, leaves, pending)
