module Engine = S4o_device.Engine
module Recorder = S4o_obs.Recorder
module Metrics = S4o_obs.Metrics

type stats = S4o_obs.Stats.t = {
  ops_dispatched : int;
  traces_cut : int;
  auto_cuts : int;
  cache_hits : int;
  cache_misses : int;
  ops_traced : int;
  largest_trace : int;
  compile_seconds : float;
  kernels_launched : int;
  host_seconds : float;
  device_busy_seconds : float;
  host_stall_seconds : float;
  max_pipeline_depth : float;
  live_bytes : int;
  peak_bytes : int;
  spans_recorded : int;
  tensor_live_bytes : int;
  tensor_peak_bytes : int;
  tensor_allocs : int;
  tensor_frees : int;
}

type t = {
  engine : Engine.t;
  trace_overhead_per_op : float;
  cache_enabled : bool;
  auto_cut_threshold : int option;
  cache : (int, S4o_xla.Compiler.executable) Hashtbl.t;
  (* All counters live in the engine's shared metrics registry, so one
     snapshot of the registry sees the whole stack. *)
  c_cuts : Metrics.counter;
  c_auto_cuts : Metrics.counter;
  c_hits : Metrics.counter;
  c_misses : Metrics.counter;
  trace_sizes : Metrics.histogram;  (* ops per cut trace *)
  compile_times : Metrics.histogram;  (* seconds per JIT invocation *)
  mutable ops_since_cut : int;
  mutable recent : Trace.node list;
      (* nodes recorded since the last cut, newest first: the frontier an
         automatic cut materializes *)
}

(* Host cost of recording one trace op, paid every iteration (§3.4). *)
let default_trace_overhead = 15e-6

let create ?(trace_overhead_per_op = default_trace_overhead)
    ?(cache_enabled = true) ?auto_cut_threshold engine =
  (match auto_cut_threshold with
  | Some n when n <= 0 ->
      invalid_arg "Lazy_runtime.create: auto_cut_threshold must be positive"
  | Some _ | None -> ());
  let m = Engine.metrics engine in
  {
    engine;
    trace_overhead_per_op;
    cache_enabled;
    auto_cut_threshold;
    cache = Hashtbl.create 16;
    c_cuts = Metrics.counter m "lazy.traces_cut";
    c_auto_cuts = Metrics.counter m "lazy.auto_cuts";
    c_hits = Metrics.counter m "lazy.cache_hits";
    c_misses = Metrics.counter m "lazy.cache_misses";
    trace_sizes = Metrics.histogram m "lazy.trace_ops";
    compile_times = Metrics.histogram m "lazy.compile_seconds";
    ops_since_cut = 0;
    recent = [];
  }

let engine t = t.engine

let stats t =
  {
    (Engine.stats t.engine) with
    traces_cut = Metrics.counter_value t.c_cuts;
    auto_cuts = Metrics.counter_value t.c_auto_cuts;
    cache_hits = Metrics.counter_value t.c_hits;
    cache_misses = Metrics.counter_value t.c_misses;
    ops_traced = int_of_float (Metrics.hist_sum t.trace_sizes);
    largest_trace = int_of_float (Metrics.hist_max t.trace_sizes);
    compile_seconds = Metrics.hist_sum t.compile_times;
  }

let reset_stats t = Engine.reset t.engine

let dedup_roots roots =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (r : Trace.node) ->
      if Hashtbl.mem seen r.Trace.id then false
      else begin
        Hashtbl.add seen r.Trace.id ();
        true
      end)
    roots

let materialize t roots =
  let roots =
    dedup_roots (List.filter (fun r -> Trace.is_pending r) roots)
  in
  t.ops_since_cut <- 0;
  t.recent <- [];
  if roots <> [] then begin
    let rec_ = Engine.recorder t.engine in
    let outer =
      Recorder.begin_span rec_ Recorder.Host ~cat:"lazy" "materialize"
        ~at:(Engine.host_time t.engine)
    in
    let graph, leaves, pending = Trace.to_hlo roots in
    let n_ops = List.length pending in
    Metrics.incr t.c_cuts;
    Metrics.observe t.trace_sizes (float_of_int n_ops);
    (* Re-tracing overhead: paid on every iteration even on cache hits. *)
    Engine.with_host_span t.engine ~cat:"lazy"
      ~args:[ ("ops", string_of_int n_ops) ]
      "trace-record"
      (fun () ->
        Engine.spend_host t.engine
          (t.trace_overhead_per_op *. float_of_int n_ops));
    let fp = S4o_xla.Hlo.fingerprint graph in
    let exe =
      match
        if t.cache_enabled then Hashtbl.find_opt t.cache fp else None
      with
      | Some exe ->
          Metrics.incr t.c_hits;
          Recorder.instant rec_ Recorder.Host ~cat:"lazy"
            ~args:[ ("fingerprint", string_of_int fp) ]
            "cache-hit"
            ~at:(Engine.host_time t.engine);
          exe
      | None ->
          Metrics.incr t.c_misses;
          Recorder.instant rec_ Recorder.Host ~cat:"lazy"
            ~args:[ ("fingerprint", string_of_int fp) ]
            "cache-miss"
            ~at:(Engine.host_time t.engine);
          let exe = S4o_xla.Compiler.compile ~engine:t.engine graph in
          Metrics.observe t.compile_times
            (S4o_xla.Compiler.stats exe).S4o_xla.Compiler.compile_seconds;
          if t.cache_enabled then Hashtbl.replace t.cache fp exe;
          exe
    in
    let feeds =
      List.map
        (fun (l : Trace.node) ->
          match l.Trace.state with
          | Trace.Materialized v -> Some v
          | Trace.Simulated -> None
          | Trace.Pending -> assert false)
        leaves
    in
    if List.for_all Option.is_some feeds then begin
      let outputs =
        S4o_xla.Compiler.run exe t.engine
          (Array.of_list (List.map Option.get feeds))
      in
      List.iteri
        (fun i (r : Trace.node) ->
          r.Trace.state <- Trace.Materialized outputs.(i))
        roots
    end
    else begin
      S4o_xla.Compiler.simulate exe t.engine;
      List.iter (fun (r : Trace.node) -> r.Trace.state <- Trace.Simulated) roots
    end;
    Recorder.end_span rec_ outer
      ~args:[ ("ops", string_of_int n_ops) ]
      ~at:(Engine.host_time t.engine)
  end

let barrier = materialize

(* S3.4 future work, implemented: automatic trace cutting. Each recorded op
   bumps a counter; once the pending fragment is "sufficiently large", the
   runtime cuts and dispatches it on its own, relieving the user of barrier
   annotations entirely. *)
let note_recorded t node =
  match t.auto_cut_threshold with
  | None -> ()
  | Some threshold ->
      t.ops_since_cut <- t.ops_since_cut + 1;
      t.recent <- node :: t.recent;
      if t.ops_since_cut >= threshold then begin
        Metrics.incr t.c_auto_cuts;
        Recorder.instant (Engine.recorder t.engine) Recorder.Host ~cat:"lazy"
          "auto-cut"
          ~at:(Engine.host_time t.engine);
        (* cut the whole recorded frontier, not just this node's ancestors:
           later nodes subsume earlier ones where they are connected, and
           disconnected chains get dispatched too, so no fragment is left to
           accumulate across steps *)
        materialize t t.recent
      end

let cache_size t = Hashtbl.length t.cache

let force t node =
  materialize t [ node ];
  Engine.sync t.engine;
  match node.Trace.state with
  | Trace.Materialized v -> v
  | Trace.Simulated ->
      invalid_arg "Lazy_runtime.force: node executed in timing-only mode"
  | Trace.Pending -> assert false
