(** LazyTensor trace nodes (§3.3): instead of dispatching to pre-compiled
    kernels, each Tensor operation "simply records a dynamic trace of
    operations to be executed at a later time". Traces are in-memory DAGs
    (Figure 4); cutting a trace converts the pending region into an HLO
    graph whose parameters are the already-materialized leaves.

    A node's lifecycle: born [Pending] (recorded, not executed); after the
    trace containing it is cut and run it becomes [Materialized] (value on
    "device") or [Simulated] (timing-only mode: only the simulated clock
    advanced). Non-pending nodes act as leaves — parameters — of later
    traces, which keeps trace fingerprints independent of parameter values
    and makes the program cache effective across training steps. *)

open S4o_tensor

type state =
  | Pending
  | Materialized of Dense.t
  | Simulated

type node = {
  id : int;
  op : S4o_ops.Catalog.op option;  (** [None] for data leaves. *)
  args : node list;
  shape : Shape.t;
  mutable state : state;
}

(** A concrete-data leaf ("device data"). *)
val leaf : Dense.t -> node

(** A shape-only leaf for timing-model runs: behaves like device data whose
    contents are never observed. *)
val placeholder : Shape.t -> node

(** Record one op application (shape comes from the catalog entry). *)
val record : S4o_ops.Catalog.op -> node list -> node

val is_pending : node -> bool

(** The pending region reachable from the roots, in topological order, plus
    the non-pending leaves it stops at (the future graph parameters, in
    discovery order). *)
val pending_region : node list -> node list * node list

(** Called with every graph {!to_hlo} produces. Checked mode
    ([S4o_analysis.Checked.enable]) installs the HLO checker here; the
    default is a no-op. *)
val post_cut_hook : (S4o_xla.Hlo.graph -> unit) ref

(** Convert the pending region to an HLO graph. Returns the graph, the
    leaves in parameter order, and the pending nodes in topological order. *)
val to_hlo : node list -> S4o_xla.Hlo.graph * node list * node list
