(** The LazyTensor runtime (§3.3–3.4): cuts traces, JIT-compiles them via the
    XLA-style compiler, and caches compiled programs by trace fingerprint so
    that "each unique trace is only compiled by XLA once". Tracing overhead
    is still paid on every iteration — the §3.4 limitation Table 3
    quantifies — because the full imperative programming model means traces
    can change at any point.

    The runtime operates in one of two value modes:
    - {e compute} (default): executing a trace computes real tensor values;
    - {e timing-only}: executions advance the simulated clocks but never
      compute values, enabling full-scale ResNet/ImageNet benchmarks.

    Every materialize is recorded on the engine's {!S4o_obs.Recorder} as a
    host-track span enclosing the trace-record span, the compile span (cache
    misses only), and cache-hit/miss instants — so a Chrome-trace export
    shows exactly where §3.4's re-tracing and JIT time goes. *)

type t

(** The unified snapshot type — a re-export of {!S4o_obs.Stats.t}, so field
    access through this module keeps compiling while new code can treat it
    as the shared type. *)
type stats = S4o_obs.Stats.t = {
  ops_dispatched : int;
  traces_cut : int;
  auto_cuts : int;
  cache_hits : int;
  cache_misses : int;
  ops_traced : int;
  largest_trace : int;
  compile_seconds : float;
  kernels_launched : int;
  host_seconds : float;
  device_busy_seconds : float;
  host_stall_seconds : float;
  max_pipeline_depth : float;
  live_bytes : int;
  peak_bytes : int;
  spans_recorded : int;
  tensor_live_bytes : int;
  tensor_peak_bytes : int;
  tensor_allocs : int;
  tensor_frees : int;
}

(** [create ?trace_overhead_per_op ?cache_enabled ?auto_cut_threshold
    engine]: [trace_overhead_per_op] is the simulated host cost of recording
    one op on each iteration; [cache_enabled:false] recompiles every trace
    (the cache ablation); [auto_cut_threshold] enables the automatic
    trace-cutting of §3.4's future work — once that many ops have been
    recorded since the last cut, the runtime dispatches the fragment on its
    own, with no user annotations. *)
val create :
  ?trace_overhead_per_op:float ->
  ?cache_enabled:bool ->
  ?auto_cut_threshold:int ->
  S4o_device.Engine.t ->
  t

val engine : t -> S4o_device.Engine.t

(** {1 Statistics — the unified surface}

    The same [stats]/[reset_stats] pair as [S4o_eager.Runtime]. *)

val stats : t -> stats

(** Zero all counters, clocks, metrics, and the recorded timeline. *)
val reset_stats : t -> unit

(** [materialize t roots] cuts the pending trace reachable from [roots],
    compiles it (or hits the program cache), and executes it. Roots become
    [Materialized] (compute mode, all leaves real) or [Simulated]. Does not
    synchronize: kernels drain asynchronously. *)
val materialize : t -> Trace.node list -> unit

(** [LazyTensorBarrier()] (§3.4): explicitly cut and dispatch the trace at
    this program point. Identical to {!materialize}; the distinct name
    mirrors the user-facing API, and the training loop calls it after each
    optimizer step on the user's behalf. *)
val barrier : t -> Trace.node list -> unit

(** Called by the backend after recording each op; triggers an automatic cut
    when the threshold is reached. A no-op unless [auto_cut_threshold] was
    given. *)
val note_recorded : t -> Trace.node -> unit

(** Number of distinct compiled programs currently cached — one per unique
    trace fingerprint. A serving workload that buckets its batch shapes
    keeps this bounded by the bucket count (times distinct models), which is
    the point of shape bucketing: steady-state traffic hits the cache
    instead of growing it. *)
val cache_size : t -> int

(** Force a node's concrete contents: materializes if needed and blocks the
    simulated host until the device drains. Raises [Invalid_argument] for
    timing-only nodes. *)
val force : t -> Trace.node -> S4o_tensor.Dense.t
