(** Derivative synthesis (§2.2): the compile-time code transformation that
    turns an MSIL function into its JVP and VJP derivative functions.

    The transform runs once per function ("compile time"): it performs
    activity analysis, differentiability checking, and resolves derivatives
    for every callee — recursively transforming callees and terminating the
    recursion at functions with a registered custom derivative (the
    [@derivative(of:)] base case). The result is a {!derivative} whose
    closures execute without re-analyzing the IR.

    Control flow follows the paper's design: the VJP's forward sweep records,
    per executed basic block, a {e pullback record} holding that block's
    intermediate values, any callee pullbacks, and the branch taken. The
    records form a linear trace of the control-flow path; the backward sweep
    consumes them in reverse, transferring adjoints from block parameters
    back through the corresponding branch arguments. *)

type derivative = {
  vjp : float array -> float * (float -> float array);
      (** Reverse mode: value and pullback (output cotangent → argument
          cotangents). The pullback may be called repeatedly. *)
  jvp : float array -> float * (float array -> float);
      (** Forward mode: value and differential (argument tangents → output
          tangent). *)
}

type ctx

exception Transform_error of string * Diagnostics.diagnostic list

val create_ctx : Interp.modul -> ctx

(** Register a custom derivative for [name] — the transform will not recurse
    into it even if the module holds a body for it. *)
val register_custom : ctx -> string -> derivative -> unit

(** Diagnostics produced while synthesizing (warnings are retained; errors
    raise {!Transform_error}). *)
val diagnostics : ctx -> Diagnostics.diagnostic list

(** Number of functions synthesized so far (excludes custom registrations). *)
val synthesized_count : ctx -> int

(** Called with every function the AD transform synthesizes a derivative
    for, after differentiability diagnostics pass. Checked mode
    ([S4o_analysis.Checked.enable]) installs the IR verifier here; the
    default is a no-op. *)
val post_synthesis_hook : (Ir.func -> unit) ref

(** [derivative_of ctx name] synthesizes (or returns the memoized) derivative
    of the named function. *)
val derivative_of : ctx -> string -> derivative

(** Convenience operators mirroring Figure 2. *)
val gradient : ctx -> string -> float array -> float array

val value_with_gradient : ctx -> string -> float array -> float * float array

(** Forward-mode directional derivative. *)
val derivative_along : ctx -> string -> at:float array -> along:float array -> float
