type derivative = {
  vjp : float array -> float * (float -> float array);
  jvp : float array -> float * (float array -> float);
}

type ctx = {
  modul : Interp.modul;
  memo : (string, derivative) Hashtbl.t;
  custom : (string, unit) Hashtbl.t;
  mutable diags : Diagnostics.diagnostic list;
  mutable synthesized : int;
}

exception Transform_error of string * Diagnostics.diagnostic list

let fail msg diags = raise (Transform_error (msg, diags))

let create_ctx modul =
  { modul; memo = Hashtbl.create 16; custom = Hashtbl.create 16; diags = []; synthesized = 0 }

let register_custom ctx name d =
  Hashtbl.replace ctx.custom name ();
  Hashtbl.replace ctx.memo name d

let diagnostics ctx = List.rev ctx.diags
let synthesized_count ctx = ctx.synthesized

(* One pullback record per executed basic block (the paper's statically-typed
   per-block records, here a uniform runtime representation). *)
type record = {
  block : int;
  env : float array;
  (* call result value id, operand value ids, callee pullback *)
  mutable call_pullbacks : (int * int array * (float -> float array)) list;
  (* same, but callee differentials, for the JVP *)
  mutable call_differentials : (int * int array * (float array -> float)) list;
  mutable taken : int array option;  (* branch args passed to the successor *)
}

let unary_partial (op : Ir.unary_op) x result =
  match op with
  | Neg -> -1.0
  | Sin -> Float.cos x
  | Cos -> -.Float.sin x
  | Exp -> result
  | Log -> 1.0 /. x
  | Sqrt -> 1.0 /. (2.0 *. result)
  | Relu -> if x > 0.0 then 1.0 else 0.0
  | Sigmoid -> result *. (1.0 -. result)
  | Tanh -> 1.0 -. (result *. result)
  | Floor -> 0.0

let max_records = 1_000_000

(* Shared forward sweep. [want_vjp]/[want_jvp] select which callee derivative
   closures to record. Returns the return value and the executed trace. *)
let run_forward ~callee_derivs ~want_vjp ~want_jvp (f : Ir.func) args =
  if Array.length args <> f.n_args then
    invalid_arg (Format.sprintf "@%s derivative: arity mismatch" f.name);
  let records = ref [] in
  let n_records = ref 0 in
  let rec run bi incoming =
    if !n_records >= max_records then
      invalid_arg (Format.sprintf "@%s derivative: trace exceeds %d blocks" f.name max_records);
    incr n_records;
    let b = f.blocks.(bi) in
    let env = Array.make (Ir.block_values b) 0.0 in
    Array.blit incoming 0 env 0 b.params;
    let r =
      { block = bi; env; call_pullbacks = []; call_differentials = []; taken = None }
    in
    Array.iteri
      (fun ii inst ->
        let vi = b.params + ii in
        let v =
          match (inst : Ir.inst) with
          | Const c -> c
          | Unary (op, a) -> Interp.apply_unary op env.(a)
          | Binary (op, a, b2) -> Interp.apply_binary op env.(a) env.(b2)
          | Cmp (op, a, b2) -> Interp.apply_cmp op env.(a) env.(b2)
          | Select (c, a, b2) -> if env.(c) <> 0.0 then env.(a) else env.(b2)
          | Call (name, cargs) ->
              let d : derivative = Hashtbl.find callee_derivs name in
              let actuals = Array.map (fun a -> env.(a)) cargs in
              if want_vjp then begin
                let value, pb = d.vjp actuals in
                r.call_pullbacks <- (vi, cargs, pb) :: r.call_pullbacks;
                if want_jvp then begin
                  let _, df = d.jvp actuals in
                  r.call_differentials <- (vi, cargs, df) :: r.call_differentials
                end;
                value
              end
              else begin
                let value, df = d.jvp actuals in
                r.call_differentials <- (vi, cargs, df) :: r.call_differentials;
                value
              end
        in
        env.(vi) <- v)
      b.insts;
    records := r :: !records;
    match b.term with
    | Ret v -> (v, env.(v))
    | Br (t, targs) ->
        r.taken <- Some targs;
        run t (Array.map (fun a -> env.(a)) targs)
    | Cond_br (c, bt, at, bf, af) ->
        let t, targs = if env.(c) <> 0.0 then (bt, at) else (bf, af) in
        r.taken <- Some targs;
        run t (Array.map (fun a -> env.(a)) targs)
  in
  let ret_var, value = run 0 args in
  (ret_var, value, Array.of_list (List.rev !records))

(* Backward sweep over the recorded trace. *)
let run_backward (f : Ir.func) (analysis : Activity.t) records ret_var seed =
  let n = Array.length records in
  let adjs = Array.map (fun r -> Array.make (Array.length r.env) 0.0) records in
  adjs.(n - 1).(ret_var) <- seed;
  for k = n - 1 downto 0 do
    let r = records.(k) in
    let adj = adjs.(k) in
    let b = f.blocks.(r.block) in
    let env = r.env in
    for ii = Array.length b.insts - 1 downto 0 do
      let vi = b.params + ii in
      let a = adj.(vi) in
      if a <> 0.0 && analysis.Activity.active.(r.block).(vi) then
        match b.insts.(ii) with
        | Const _ | Cmp _ -> ()
        | Unary (op, x) ->
            adj.(x) <- adj.(x) +. (a *. unary_partial op env.(x) env.(vi))
        | Binary (op, x, y) -> begin
            match op with
            | Add ->
                adj.(x) <- adj.(x) +. a;
                adj.(y) <- adj.(y) +. a
            | Sub ->
                adj.(x) <- adj.(x) +. a;
                adj.(y) <- adj.(y) -. a
            | Mul ->
                adj.(x) <- adj.(x) +. (a *. env.(y));
                adj.(y) <- adj.(y) +. (a *. env.(x))
            | Div ->
                adj.(x) <- adj.(x) +. (a /. env.(y));
                adj.(y) <- adj.(y) -. (a *. env.(x) /. (env.(y) *. env.(y)))
            | Max -> if env.(x) >= env.(y) then adj.(x) <- adj.(x) +. a else adj.(y) <- adj.(y) +. a
            | Min -> if env.(x) <= env.(y) then adj.(x) <- adj.(x) +. a else adj.(y) <- adj.(y) +. a
          end
        | Select (c, x, y) ->
            if env.(c) <> 0.0 then adj.(x) <- adj.(x) +. a
            else adj.(y) <- adj.(y) +. a
        | Call (_, cargs) ->
            let _, _, pb =
              List.find (fun (v, _, _) -> v = vi) r.call_pullbacks
            in
            let grads = pb a in
            Array.iteri
              (fun j arg -> adj.(arg) <- adj.(arg) +. grads.(j))
              cargs
    done;
    (* Adjoints of this block's parameters flow back through the branch that
       got us here. *)
    if k > 0 then begin
      let pred = records.(k - 1) in
      let pargs =
        match pred.taken with
        | Some a -> a
        | None -> assert false
      in
      let padj = adjs.(k - 1) in
      for j = 0 to b.params - 1 do
        padj.(pargs.(j)) <- padj.(pargs.(j)) +. adj.(j)
      done
    end
  done;
  Array.init f.n_args (fun i -> adjs.(0).(i))

(* Forward tangent propagation over the recorded trace. *)
let run_tangent (f : Ir.func) records ret_var direction =
  let n = Array.length records in
  let tans = Array.map (fun r -> Array.make (Array.length r.env) 0.0) records in
  Array.blit direction 0 tans.(0) 0 f.n_args;
  for k = 0 to n - 1 do
    let r = records.(k) in
    let tan = tans.(k) in
    let env = r.env in
    let b = f.blocks.(r.block) in
    Array.iteri
      (fun ii inst ->
        let vi = b.params + ii in
        let d =
          match (inst : Ir.inst) with
          | Const _ | Cmp _ -> 0.0
          | Unary (op, x) -> tan.(x) *. unary_partial op env.(x) env.(vi)
          | Binary (op, x, y) -> begin
              match op with
              | Add -> tan.(x) +. tan.(y)
              | Sub -> tan.(x) -. tan.(y)
              | Mul -> (tan.(x) *. env.(y)) +. (env.(x) *. tan.(y))
              | Div ->
                  ((tan.(x) *. env.(y)) -. (env.(x) *. tan.(y)))
                  /. (env.(y) *. env.(y))
              | Max -> if env.(x) >= env.(y) then tan.(x) else tan.(y)
              | Min -> if env.(x) <= env.(y) then tan.(x) else tan.(y)
            end
          | Select (c, x, y) -> if env.(c) <> 0.0 then tan.(x) else tan.(y)
          | Call (_, cargs) ->
              let _, _, df =
                List.find (fun (v, _, _) -> v = vi) r.call_differentials
              in
              df (Array.map (fun a -> tan.(a)) cargs)
        in
        tan.(vi) <- d)
      b.insts;
    if k < n - 1 then begin
      let targs = match r.taken with Some a -> a | None -> assert false in
      let next_tan = tans.(k + 1) in
      Array.iteri (fun j a -> next_tan.(j) <- tan.(a)) targs
    end
  done;
  tans.(n - 1).(ret_var)

(* Checked mode installs the IR verifier here: every function the AD
   transform accepts gets verified. Indirection avoids a dependency cycle
   with the analysis library. *)
let post_synthesis_hook : (Ir.func -> unit) ref = ref (fun _ -> ())

let rec derivative_of ctx name =
  match Hashtbl.find_opt ctx.memo name with
  | Some d -> d
  | None -> begin
      match Interp.find ctx.modul name with
      | None -> fail (Format.sprintf "no function or custom derivative for @%s" name) []
      | Some f ->
          (* Break recursion: install a proxy that indirects through a cell
             filled once synthesis completes. Recursive calls in the body go
             through the proxy at runtime, after the cell is set. *)
          let cell = ref None in
          let deref () =
            match !cell with
            | Some d -> d
            | None ->
                fail
                  (Format.sprintf "@%s: derivative used during its own synthesis" name)
                  []
          in
          let proxy =
            {
              vjp = (fun args -> (deref ()).vjp args);
              jvp = (fun args -> (deref ()).jvp args);
            }
          in
          Hashtbl.add ctx.memo name proxy;
          let d = synthesize ctx f in
          cell := Some d;
          Hashtbl.replace ctx.memo name d;
          d
    end

and synthesize ctx (f : Ir.func) =
  let has_derivative callee =
    Hashtbl.mem ctx.memo callee || Interp.find ctx.modul callee <> None
  in
  let diags = Diagnostics.check ~has_derivative f in
  ctx.diags <- List.rev_append diags ctx.diags;
  (match Diagnostics.errors diags with
  | [] -> ()
  | errs ->
      fail (Format.sprintf "@%s: differentiability errors" f.name) errs);
  (* Resolve every callee derivative at transform time ("recursively
     transforms the callees"). *)
  let callee_derivs = Hashtbl.create 8 in
  Array.iter
    (fun b ->
      Array.iter
        (fun inst ->
          match (inst : Ir.inst) with
          | Call (callee, _) when not (Hashtbl.mem callee_derivs callee) ->
              Hashtbl.add callee_derivs callee (derivative_of ctx callee)
          | Const _ | Unary _ | Binary _ | Cmp _ | Select _ | Call _ -> ())
        b.Ir.insts)
    f.blocks;
  let analysis = Activity.analyze f in
  ctx.synthesized <- ctx.synthesized + 1;
  !post_synthesis_hook f;
  let vjp args =
    let ret_var, value, records =
      run_forward ~callee_derivs ~want_vjp:true ~want_jvp:false f args
    in
    (value, fun seed -> run_backward f analysis records ret_var seed)
  in
  let jvp args =
    let ret_var, value, records =
      run_forward ~callee_derivs ~want_vjp:false ~want_jvp:true f args
    in
    (value, fun direction -> run_tangent f records ret_var direction)
  in
  { vjp; jvp }

let gradient ctx name args =
  let d = derivative_of ctx name in
  let _, pullback = d.vjp args in
  pullback 1.0

let value_with_gradient ctx name args =
  let d = derivative_of ctx name in
  let v, pullback = d.vjp args in
  (v, pullback 1.0)

let derivative_along ctx name ~at ~along =
  let d = derivative_of ctx name in
  let _, differential = d.jvp at in
  differential along
