(** Derivative {e code generation}: emit the JVP of an MSIL function as
    another MSIL function.

    {!Transform} synthesizes derivatives as host closures; this module goes
    one step further in the paper's direction — "the code transformation
    produces the JVP and VJP" as IR, so the generated derivative is "fully
    amenable to the same set of compile-time optimizations as regular Swift
    code" (§2.2). The generated function is ordinary MSIL: {!Passes} can
    simplify it, the interpreter can run it, and — because it is plain IR,
    not closure-heavy output — {!Transform} can differentiate it {e again},
    lifting for straight-line code the "cannot transform its own output"
    limitation of §2.3 (see the second-derivative tests).

    Scope: single-basic-block (straight-line) functions. Control flow would
    require the trace-record machinery that {!Transform} already provides at
    runtime; code-generating those records is exactly the open problem the
    paper describes, so multi-block input raises {!Unsupported}. Calls are
    supported by recursively generating each callee's JVP. *)

exception Unsupported of string

(** [jvp_name f] is the name the generated JVP carries ("<f>_jvp"). *)
val jvp_name : string -> string

(** Called with every generated derivative function before it is added to
    the module. Checked mode ([S4o_analysis.Checked.enable]) installs the
    IR verifier here; the default is a no-op. *)
val post_codegen_hook : (Ir.func -> unit) ref

(** [generate_jvp m f] builds the JVP of [f]: a function of [2n] arguments
    ([x1..xn, dx1..dxn]) returning the directional derivative. Generated
    callee JVPs are added to [m] (memoized by name), as is the result.
    Raises {!Unsupported} on control flow or recursive call cycles. *)
val generate_jvp : Interp.modul -> Ir.func -> Ir.func

(** Gradient via [n] evaluations of the generated JVP (one per basis
    direction). *)
val gradient_via_codegen :
  Interp.modul -> Ir.func -> float array -> float array

(** [generate_vjp m f ~wrt] emits a function of [n+1] arguments
    ([x1..xn, seed]) returning the [wrt]-th component of the pullback — the
    reverse-mode column of Figure 3, as generated code. For straight-line
    code the adjoint data flow is static, so no pullback records are needed:
    the backward sweep unrolls into plain instructions. Same restrictions as
    {!generate_jvp}. *)
val generate_vjp : Interp.modul -> Ir.func -> wrt:int -> Ir.func

(** Gradient via the generated VJP functions (seed 1.0), one per argument. *)
val gradient_via_vjp_codegen :
  Interp.modul -> Ir.func -> float array -> float array
