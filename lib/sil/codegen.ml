exception Unsupported of string

let fail fmt = Format.kasprintf (fun s -> raise (Unsupported s)) fmt

let jvp_name name = name ^ "_jvp"

(* Checked mode installs the IR verifier here: every generated derivative
   function passes through it before being registered. *)
let post_codegen_hook : (Ir.func -> unit) ref = ref (fun _ -> ())

(* Generation walks the single block, emitting for each original value both
   its primal recomputation and its tangent. [primal] and [tangent] map
   original value ids to value ids in the generated function. *)
let rec generate_jvp m (f : Ir.func) : Ir.func =
  match Interp.find m (jvp_name f.Ir.name) with
  | Some existing -> existing
  | None ->
      if Array.length f.Ir.blocks <> 1 then
        fail "@%s: JVP code generation supports straight-line functions only \
              (%d blocks)"
          f.Ir.name
          (Array.length f.Ir.blocks);
      let block = f.Ir.blocks.(0) in
      let n = f.Ir.n_args in
      let b = Builder.create ~name:(jvp_name f.Ir.name) ~n_args:(2 * n) in
      let total = Ir.block_values block in
      let primal = Array.make total (-1) in
      let tangent = Array.make total (-1) in
      for i = 0 to n - 1 do
        primal.(i) <- i;
        tangent.(i) <- n + i
      done;
      (* Generate callee JVPs first; a cycle (direct or mutual recursion in
         straight-line code) cannot terminate at runtime either, so reject
         it during generation. *)
      let in_progress = Hashtbl.create 4 in
      let callee_jvp name =
        if Hashtbl.mem in_progress name then
          fail "@%s: recursive call cycle through @%s" f.Ir.name name;
        match Interp.find m (jvp_name name) with
        | Some _ -> ()
        | None -> begin
            match Interp.find m name with
            | None -> fail "@%s: unknown callee @%s" f.Ir.name name
            | Some callee ->
                Hashtbl.add in_progress name ();
                let generated = generate_jvp m callee in
                Hashtbl.remove in_progress name;
                ignore generated
          end
      in
      Array.iteri
        (fun ii inst ->
          let v = block.Ir.params + ii in
          let zero () = Builder.const b 0.0 in
          let one () = Builder.const b 1.0 in
          let two () = Builder.const b 2.0 in
          let p, t =
            match (inst : Ir.inst) with
            | Const c -> (Builder.const b c, zero ())
            | Unary (op, x) -> begin
                let px = primal.(x) and tx = tangent.(x) in
                let p = Builder.unary b op px in
                let t =
                  match op with
                  | Ir.Neg -> Builder.unary b Ir.Neg tx
                  | Ir.Sin ->
                      Builder.binary b Ir.Mul tx (Builder.unary b Ir.Cos px)
                  | Ir.Cos ->
                      Builder.unary b Ir.Neg
                        (Builder.binary b Ir.Mul tx (Builder.unary b Ir.Sin px))
                  | Ir.Exp -> Builder.binary b Ir.Mul tx p
                  | Ir.Log -> Builder.binary b Ir.Div tx px
                  | Ir.Sqrt ->
                      Builder.binary b Ir.Div tx
                        (Builder.binary b Ir.Mul (two ()) p)
                  | Ir.Relu ->
                      (* the comparison result (0 or 1) is the relu mask *)
                      Builder.binary b Ir.Mul tx
                        (Builder.cmp b Ir.Gt px (zero ()))
                  | Ir.Sigmoid ->
                      let one_minus = Builder.binary b Ir.Sub (one ()) p in
                      Builder.binary b Ir.Mul tx
                        (Builder.binary b Ir.Mul p one_minus)
                  | Ir.Tanh ->
                      let sq = Builder.binary b Ir.Mul p p in
                      Builder.binary b Ir.Mul tx
                        (Builder.binary b Ir.Sub (one ()) sq)
                  | Ir.Floor -> zero ()
                in
                (p, t)
              end
            | Binary (op, x, y) -> begin
                let px = primal.(x)
                and py = primal.(y)
                and tx = tangent.(x)
                and ty = tangent.(y) in
                let p = Builder.binary b op px py in
                let t =
                  match op with
                  | Ir.Add -> Builder.binary b Ir.Add tx ty
                  | Ir.Sub -> Builder.binary b Ir.Sub tx ty
                  | Ir.Mul ->
                      Builder.binary b Ir.Add
                        (Builder.binary b Ir.Mul tx py)
                        (Builder.binary b Ir.Mul px ty)
                  | Ir.Div ->
                      let num =
                        Builder.binary b Ir.Sub
                          (Builder.binary b Ir.Mul tx py)
                          (Builder.binary b Ir.Mul px ty)
                      in
                      Builder.binary b Ir.Div num
                        (Builder.binary b Ir.Mul py py)
                  | Ir.Max ->
                      Builder.select b ~cond:(Builder.cmp b Ir.Ge px py)
                        ~if_true:tx ~if_false:ty
                  | Ir.Min ->
                      Builder.select b ~cond:(Builder.cmp b Ir.Le px py)
                        ~if_true:tx ~if_false:ty
                in
                (p, t)
              end
            | Cmp (op, x, y) ->
                (Builder.cmp b op primal.(x) primal.(y), zero ())
            | Select (c, x, y) ->
                ( Builder.select b ~cond:primal.(c) ~if_true:primal.(x)
                    ~if_false:primal.(y),
                  Builder.select b ~cond:primal.(c) ~if_true:tangent.(x)
                    ~if_false:tangent.(y) )
            | Call (callee, args) ->
                callee_jvp callee;
                let callee_fn =
                  match Interp.find m callee with
                  | Some c -> c
                  | None -> fail "@%s: unknown callee @%s" f.Ir.name callee
                in
                ignore callee_fn;
                (* primal value still needs the original function *)
                let p =
                  Builder.call b callee (Array.map (fun a -> primal.(a)) args)
                in
                let jvp_args =
                  Array.append
                    (Array.map (fun a -> primal.(a)) args)
                    (Array.map (fun a -> tangent.(a)) args)
                in
                let t = Builder.call b (jvp_name callee) jvp_args in
                (p, t)
          in
          primal.(v) <- p;
          tangent.(v) <- t)
        block.Ir.insts;
      (match block.Ir.term with
      | Ir.Ret v -> Builder.ret b tangent.(v)
      | Ir.Br _ | Ir.Cond_br _ ->
          fail "@%s: unexpected branch in a single-block function" f.Ir.name);
      let generated = Builder.finish b in
      !post_codegen_hook generated;
      Interp.add m generated;
      generated

let gradient_via_codegen m (f : Ir.func) (at : float array) =
  let jvp = generate_jvp m f in
  let n = f.Ir.n_args in
  Array.init n (fun i ->
      let args =
        Array.init (2 * n) (fun j ->
            if j < n then at.(j) else if j = n + i then 1.0 else 0.0)
      in
      Interp.eval m jvp args)

let vjp_name name wrt = Format.sprintf "%s_vjp_d%d" name wrt

(* Reverse-mode code generation for straight-line code: emit the primal
   instructions, then unroll the backward sweep — each original value gets a
   chain of adjoint contributions, summed as they are emitted. Calls use the
   callee's generated JVP per argument (for a scalar-to-scalar edge the
   JVP evaluated on a basis direction IS the partial), keeping the generated
   program first-order and self-contained. *)
let generate_vjp m (f : Ir.func) ~wrt =
  if wrt < 0 || wrt >= f.Ir.n_args then
    fail "@%s: wrt %d out of range" f.Ir.name wrt;
  match Interp.find m (vjp_name f.Ir.name wrt) with
  | Some existing -> existing
  | None ->
      if Array.length f.Ir.blocks <> 1 then
        fail "@%s: VJP code generation supports straight-line functions only"
          f.Ir.name;
      let block = f.Ir.blocks.(0) in
      let n = f.Ir.n_args in
      let b = Builder.create ~name:(vjp_name f.Ir.name wrt) ~n_args:(n + 1) in
      let seed = n in
      let total = Ir.block_values block in
      let primal = Array.make total (-1) in
      for i = 0 to n - 1 do
        primal.(i) <- i
      done;
      (* forward: replay the primal *)
      Array.iteri
        (fun ii inst ->
          let v = block.Ir.params + ii in
          let p =
            match (inst : Ir.inst) with
            | Const c -> Builder.const b c
            | Unary (op, x) -> Builder.unary b op primal.(x)
            | Binary (op, x, y) -> Builder.binary b op primal.(x) primal.(y)
            | Cmp (op, x, y) -> Builder.cmp b op primal.(x) primal.(y)
            | Select (c, x, y) ->
                Builder.select b ~cond:primal.(c) ~if_true:primal.(x)
                  ~if_false:primal.(y)
            | Call (callee, args) ->
                Builder.call b callee (Array.map (fun a -> primal.(a)) args)
          in
          primal.(v) <- p)
        block.Ir.insts;
      (* backward: adjoint value id per original value; None = zero so far *)
      let adjoint = Array.make total None in
      let accumulate v contrib =
        adjoint.(v) <-
          (match adjoint.(v) with
          | None -> Some contrib
          | Some prior -> Some (Builder.binary b Ir.Add prior contrib))
      in
      (match block.Ir.term with
      | Ir.Ret v -> accumulate v seed
      | Ir.Br _ | Ir.Cond_br _ -> fail "@%s: unexpected branch" f.Ir.name);
      let zero () = Builder.const b 0.0 in
      let one () = Builder.const b 1.0 in
      let two () = Builder.const b 2.0 in
      for ii = Array.length block.Ir.insts - 1 downto 0 do
        let v = block.Ir.params + ii in
        match adjoint.(v) with
        | None -> ()
        | Some a -> begin
            match block.Ir.insts.(ii) with
            | Const _ | Cmp _ -> ()
            | Unary (op, x) -> begin
                let px = primal.(x) and pv = primal.(v) in
                match op with
                | Ir.Neg -> accumulate x (Builder.unary b Ir.Neg a)
                | Ir.Sin ->
                    accumulate x (Builder.binary b Ir.Mul a (Builder.unary b Ir.Cos px))
                | Ir.Cos ->
                    accumulate x
                      (Builder.unary b Ir.Neg
                         (Builder.binary b Ir.Mul a (Builder.unary b Ir.Sin px)))
                | Ir.Exp -> accumulate x (Builder.binary b Ir.Mul a pv)
                | Ir.Log -> accumulate x (Builder.binary b Ir.Div a px)
                | Ir.Sqrt ->
                    accumulate x
                      (Builder.binary b Ir.Div a (Builder.binary b Ir.Mul (two ()) pv))
                | Ir.Relu ->
                    accumulate x
                      (Builder.binary b Ir.Mul a (Builder.cmp b Ir.Gt px (zero ())))
                | Ir.Sigmoid ->
                    let one_minus = Builder.binary b Ir.Sub (one ()) pv in
                    accumulate x
                      (Builder.binary b Ir.Mul a (Builder.binary b Ir.Mul pv one_minus))
                | Ir.Tanh ->
                    let sq = Builder.binary b Ir.Mul pv pv in
                    accumulate x
                      (Builder.binary b Ir.Mul a (Builder.binary b Ir.Sub (one ()) sq))
                | Ir.Floor -> ()
              end
            | Binary (op, x, y) -> begin
                let px = primal.(x) and py = primal.(y) in
                match op with
                | Ir.Add ->
                    accumulate x a;
                    accumulate y a
                | Ir.Sub ->
                    accumulate x a;
                    accumulate y (Builder.unary b Ir.Neg a)
                | Ir.Mul ->
                    accumulate x (Builder.binary b Ir.Mul a py);
                    accumulate y (Builder.binary b Ir.Mul a px)
                | Ir.Div ->
                    accumulate x (Builder.binary b Ir.Div a py);
                    let sq = Builder.binary b Ir.Mul py py in
                    let num = Builder.binary b Ir.Mul a px in
                    accumulate y
                      (Builder.unary b Ir.Neg (Builder.binary b Ir.Div num sq))
                | Ir.Max ->
                    let mask = Builder.cmp b Ir.Ge px py in
                    accumulate x (Builder.binary b Ir.Mul a mask);
                    let inv = Builder.binary b Ir.Sub (one ()) mask in
                    accumulate y (Builder.binary b Ir.Mul a inv)
                | Ir.Min ->
                    let mask = Builder.cmp b Ir.Le px py in
                    accumulate x (Builder.binary b Ir.Mul a mask);
                    let inv = Builder.binary b Ir.Sub (one ()) mask in
                    accumulate y (Builder.binary b Ir.Mul a inv)
              end
            | Select (c, x, y) ->
                (* route the adjoint down the taken branch; the condition may
                   be any non-zero value, so select (not multiply) by it *)
                accumulate x
                  (Builder.select b ~cond:primal.(c) ~if_true:a
                     ~if_false:(zero ()));
                accumulate y
                  (Builder.select b ~cond:primal.(c) ~if_true:(zero ())
                     ~if_false:a)
            | Call (callee, args) ->
                (* partial w.r.t. argument j = callee JVP along basis e_j *)
                (match Interp.find m callee with
                | Some callee_fn -> ignore (generate_jvp m callee_fn)
                | None -> fail "@%s: unknown callee @%s" f.Ir.name callee);
                Array.iteri
                  (fun j arg ->
                    let jvp_args =
                      Array.append
                        (Array.map (fun k -> primal.(k)) args)
                        (Array.map
                           (fun k -> if k = j then one () else zero ())
                           (Array.init (Array.length args) Fun.id))
                    in
                    let partial = Builder.call b (jvp_name callee) jvp_args in
                    accumulate arg (Builder.binary b Ir.Mul a partial))
                  args
          end
      done;
      (match adjoint.(wrt) with
      | Some a -> Builder.ret b a
      | None ->
          (* argument does not differentiably influence the result *)
          Builder.ret b (zero ()));
      let generated = Builder.finish b in
      !post_codegen_hook generated;
      Interp.add m generated;
      generated

let gradient_via_vjp_codegen m (f : Ir.func) (at : float array) =
  Array.init f.Ir.n_args (fun i ->
      let vjp = generate_vjp m f ~wrt:i in
      Interp.eval m vjp (Array.append at [| 1.0 |]))
