(** Standard compiler passes over MSIL. §2.2 notes that because AD is a
    compiler pass on the IR, its output "is fully amenable to the same set of
    compile-time optimizations as regular Swift code" — these passes are the
    demonstration: they run equally on hand-written and on AD-related code.

    All passes are purely functional: they return a new function. MSIL calls
    are pure, so unused calls are dead code. *)

(** Called with the pass name and its output function after every pass.
    Checked mode ([S4o_analysis.Checked.enable]) installs the IR verifier
    here; the default is a no-op. *)
val post_pass_hook : (string -> Ir.func -> unit) ref

(** Fold instructions whose operands are all constants (including selects
    with a constant condition). Comparisons fold too. Calls never fold. *)
val constant_fold : Ir.func -> Ir.func

(** Remove instructions whose results are unused by later instructions or the
    block terminator. Values are block-local in MSIL, so liveness is local.
    Renumbers values. *)
val dead_code_elim : Ir.func -> Ir.func

(** [simplify f] runs constant folding then DCE to a fixed point (bounded). *)
val simplify : Ir.func -> Ir.func

(** Total instruction count, for before/after comparisons. *)
val inst_count : Ir.func -> int
