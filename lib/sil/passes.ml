(* Checked mode (S4o_analysis.Checked) installs a verifier here; the
   indirection avoids a dependency cycle between the analysis library and
   the IR it verifies. Called with the pass name and its output. *)
let post_pass_hook : (string -> Ir.func -> unit) ref = ref (fun _ _ -> ())

let constant_fold (f : Ir.func) =
  let blocks =
    Array.map
      (fun b ->
        let known = Array.make (Ir.block_values b) None in
        let insts =
          Array.mapi
            (fun ii inst ->
              let vi = b.Ir.params + ii in
              let value_of v = known.(v) in
              let folded =
                match (inst : Ir.inst) with
                | Const c -> Some c
                | Unary (op, a) ->
                    Option.map (Interp.apply_unary op) (value_of a)
                | Binary (op, a, b2) -> begin
                    match (value_of a, value_of b2) with
                    | Some x, Some y -> Some (Interp.apply_binary op x y)
                    | _, _ -> None
                  end
                | Cmp (op, a, b2) -> begin
                    match (value_of a, value_of b2) with
                    | Some x, Some y -> Some (Interp.apply_cmp op x y)
                    | _, _ -> None
                  end
                | Select (c, a, b2) -> begin
                    match value_of c with
                    | Some cv -> value_of (if cv <> 0.0 then a else b2)
                    | None -> None
                  end
                | Call _ -> None
              in
              known.(vi) <- folded;
              match folded with
              | Some c -> Ir.Const c
              | None -> inst)
            b.Ir.insts
        in
        { b with Ir.insts })
      f.blocks
  in
  let f' = { f with Ir.blocks = blocks } in
  !post_pass_hook "constant_fold" f';
  f'

let dead_code_elim (f : Ir.func) =
  let blocks =
    Array.map
      (fun b ->
        let total = Ir.block_values b in
        let used = Array.make total false in
        let mark v = used.(v) <- true in
        (match b.Ir.term with
        | Ret v -> mark v
        | Br (_, args) -> Array.iter mark args
        | Cond_br (c, _, at, _, af) ->
            mark c;
            Array.iter mark at;
            Array.iter mark af);
        for ii = Array.length b.Ir.insts - 1 downto 0 do
          let vi = b.Ir.params + ii in
          if used.(vi) then
            List.iter mark (Ir.inst_operands b.Ir.insts.(ii))
        done;
        (* Renumber surviving values. Parameters always survive. *)
        let remap = Array.make total (-1) in
        for p = 0 to b.Ir.params - 1 do
          remap.(p) <- p
        done;
        let next = ref b.Ir.params in
        let survivors = ref [] in
        Array.iteri
          (fun ii inst ->
            let vi = b.Ir.params + ii in
            if used.(vi) then begin
              remap.(vi) <- !next;
              incr next;
              survivors := inst :: !survivors
            end)
          b.Ir.insts;
        let rewrite_var v =
          let v' = remap.(v) in
          assert (v' >= 0);
          v'
        in
        let rewrite_inst (inst : Ir.inst) : Ir.inst =
          match inst with
          | Const c -> Const c
          | Unary (op, a) -> Unary (op, rewrite_var a)
          | Binary (op, a, b2) -> Binary (op, rewrite_var a, rewrite_var b2)
          | Cmp (op, a, b2) -> Cmp (op, rewrite_var a, rewrite_var b2)
          | Select (c, a, b2) ->
              Select (rewrite_var c, rewrite_var a, rewrite_var b2)
          | Call (name, args) -> Call (name, Array.map rewrite_var args)
        in
        let rewrite_term (term : Ir.terminator) : Ir.terminator =
          match term with
          | Ret v -> Ret (rewrite_var v)
          | Br (t, args) -> Br (t, Array.map rewrite_var args)
          | Cond_br (c, bt, at, bf, af) ->
              Cond_br
                ( rewrite_var c,
                  bt,
                  Array.map rewrite_var at,
                  bf,
                  Array.map rewrite_var af )
        in
        {
          Ir.params = b.Ir.params;
          insts = Array.of_list (List.rev_map rewrite_inst !survivors);
          term = rewrite_term b.Ir.term;
        })
      f.blocks
  in
  let f' = { f with Ir.blocks = blocks } in
  Ir.validate f';
  !post_pass_hook "dead_code_elim" f';
  f'

let inst_count (f : Ir.func) =
  Array.fold_left (fun acc b -> acc + Array.length b.Ir.insts) 0 f.blocks

let simplify f =
  let rec go f budget =
    let f' = dead_code_elim (constant_fold f) in
    if budget = 0 || inst_count f' = inst_count f then f' else go f' (budget - 1)
  in
  let f' = go f 8 in
  !post_pass_hook "simplify" f';
  f'
