(** A metrics registry: named counters, gauges, and histograms.

    Instrumented components look their metrics up by name with
    find-or-create semantics ({!counter} twice with the same name returns
    the same counter), so independently-written layers share one registry —
    in practice the one owned by each {!S4o_device.Engine} — and a single
    {!snapshot} sees them all. *)

type t
type counter
type gauge
type histogram

val create : unit -> t

(** Find-or-create. Raises [Invalid_argument] if [name] is already
    registered as a different metric type. *)
val counter : t -> string -> counter

val gauge : t -> string -> gauge
val histogram : ?buckets:float array -> t -> string -> histogram

(** {1 Counters: monotone event counts} *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

(** {1 Gauges: last-written value, with peak tracking} *)

val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** Largest value ever {!set} (0 if never set). *)
val gauge_peak : gauge -> float

(** {1 Histograms: distributions of observed samples} *)

val observe : histogram -> float -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> float

(** {b Empty-histogram convention}: every scalar readout of a histogram
    with no observations is [0] — [hist_mean], [hist_max], [hist_min],
    [quantile], and each field of {!summary} — never the accumulator
    initialisers ([infinity]/[neg_infinity]) they start from. Callers can
    render a fresh registry without guarding every read. *)

val hist_mean : histogram -> float
val hist_max : histogram -> float
val hist_min : histogram -> float

(** [quantile h q] is the exact [q]-quantile ([0 ≤ q ≤ 1]) of every sample
    observed so far, with linear interpolation between closest ranks; [0] if
    the histogram is empty. Raises [Invalid_argument] outside [\[0, 1\]].
    (Histograms retain all samples — simulation-scale cardinalities — so
    quantiles are exact, not bucket-interpolated.) *)
val quantile : histogram -> float -> float

type hist_summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

(** The standard latency-style readout (count/mean/min/max/p50/p90/p99) in
    one pass; zeros if the histogram is empty. *)
val summary : histogram -> hist_summary

(** [(upper_bound, count)] per bucket; the last bucket's bound is
    [infinity]. *)
val hist_buckets : histogram -> (float * int) list

(** {1 Snapshots} *)

type value =
  | Counter_v of int
  | Gauge_v of { last : float; peak : float }
  | Histogram_v of { count : int; sum : float; mean : float; max : float }

(** All registered metrics in registration order. *)
val snapshot : t -> (string * value) list

(** The full-fidelity export {!Prom} (and any other exposition format)
    renders from: everything {!value} carries plus histogram min/max,
    per-bucket counts, and the standard quantiles. *)
type export =
  | Counter_x of int
  | Gauge_x of { last : float; peak : float }
  | Histogram_x of {
      count : int;
      sum : float;
      min : float;
      max : float;
      buckets : (float * int) list;  (** Per-bucket (upper bound, count). *)
      quantiles : (float * float) list;  (** [(q, value)] for p50/p90/p99. *)
    }

(** All registered metrics, in registration order, with full detail. *)
val export : t -> (string * export) list

(** Zero every metric (registrations survive). *)
val reset : t -> unit

val pp : Format.formatter -> t -> unit
