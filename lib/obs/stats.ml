type t = {
  ops_dispatched : int;
  traces_cut : int;
  auto_cuts : int;
  cache_hits : int;
  cache_misses : int;
  ops_traced : int;
  largest_trace : int;
  compile_seconds : float;
  kernels_launched : int;
  host_seconds : float;
  device_busy_seconds : float;
  host_stall_seconds : float;
  max_pipeline_depth : float;
  live_bytes : int;
  peak_bytes : int;
  spans_recorded : int;
  tensor_live_bytes : int;
  tensor_peak_bytes : int;
  tensor_allocs : int;
  tensor_frees : int;
}

let zero =
  {
    ops_dispatched = 0;
    traces_cut = 0;
    auto_cuts = 0;
    cache_hits = 0;
    cache_misses = 0;
    ops_traced = 0;
    largest_trace = 0;
    compile_seconds = 0.0;
    kernels_launched = 0;
    host_seconds = 0.0;
    device_busy_seconds = 0.0;
    host_stall_seconds = 0.0;
    max_pipeline_depth = 0.0;
    live_bytes = 0;
    peak_bytes = 0;
    spans_recorded = 0;
    tensor_live_bytes = 0;
    tensor_peak_bytes = 0;
    tensor_allocs = 0;
    tensor_frees = 0;
  }

let rows t =
  let i = string_of_int in
  let ms v = Printf.sprintf "%.3f ms" (v *. 1e3) in
  [
    ("ops dispatched (eager)", i t.ops_dispatched);
    ("traces cut", i t.traces_cut);
    ("auto cuts", i t.auto_cuts);
    ("cache hits", i t.cache_hits);
    ("cache misses (compiles)", i t.cache_misses);
    ("ops traced", i t.ops_traced);
    ("largest trace", i t.largest_trace);
    ("compile time", ms t.compile_seconds);
    ("kernels launched", i t.kernels_launched);
    ("host time", ms t.host_seconds);
    ("device busy", ms t.device_busy_seconds);
    ("host stalled", ms t.host_stall_seconds);
    ("max pipeline depth", ms t.max_pipeline_depth);
    ("live bytes", i t.live_bytes);
    ("peak bytes", i t.peak_bytes);
    ("spans recorded", i t.spans_recorded);
    ("tensor live bytes", i t.tensor_live_bytes);
    ("tensor peak bytes", i t.tensor_peak_bytes);
    ("tensor allocs", i t.tensor_allocs);
    ("tensor frees", i t.tensor_frees);
  ]

let pp ppf t =
  List.iter (fun (k, v) -> Format.fprintf ppf "  %-26s %s@." k v) (rows t)
