(** Trace analysis: turn a recorded timeline into answers.

    The {!Recorder} (and its Chrome-trace export) shows {e where} time went
    only to a human scrolling Perfetto. This module computes the three
    summaries every perf investigation starts from, directly from the
    spans:

    - an {b op profile}: per span name, the count, total and {e self} time
      (total minus time spent in nested child spans on the same track), and
      the fraction of wall-clock it represents. Within one track self-times
      cover disjoint intervals, so they sum to at most the wall time — the
      sanity invariant the tests pin.
    - {b host/device overlap}: how much of the wall both tracks were busy
      (the §3.2 pipeline working), how much neither was (idle gaps).
    - the {b critical path}: the maximum-duration chain of spans in which
      each span starts at-or-after the previous one finishes, across both
      tracks — the host→device dependency chain that bounds the run. By
      construction its length is at most the wall clock.

    Works on a live {!Recorder.t} or on an exported Chrome-trace JSON
    string ({!of_trace_json}), so saved traces can be analysed offline. *)

type op_stat = {
  name : string;
  track : Recorder.track;
  count : int;
  total_seconds : float;  (** Sum of span durations. *)
  self_seconds : float;  (** Total minus nested children on the same track. *)
  wall_fraction : float;  (** [self_seconds / wall_seconds] (0 if no wall). *)
}

type critical_path = {
  path : Recorder.span list;  (** The chain, in execution order. *)
  seconds : float;  (** Sum of chain durations; [<= wall_seconds]. *)
}

type report = {
  wall_seconds : float;  (** [max finish - min start] over all spans. *)
  span_count : int;
  host_busy_seconds : float;  (** Union coverage of host-track spans. *)
  device_busy_seconds : float;  (** Union coverage of device-track spans. *)
  overlap_seconds : float;  (** Both tracks busy simultaneously. *)
  idle_seconds : float;  (** Neither track busy (gaps inside the wall). *)
  op_profile : op_stat list;  (** Sorted by self time, descending. *)
  critical : critical_path;
}

val of_spans : Recorder.span list -> report
val of_recorder : Recorder.t -> report

(** Analyse an exported Chrome trace (all processes merged): complete
    events ([ph:"X"]) become spans; [tid 2] is the device track, anything
    else the host track; microseconds become seconds. *)
val of_trace_json : string -> (report, string) result

(** Self-time sums per track, [(host, device)] — each [<= wall_seconds]
    up to rounding. *)
val self_time_by_track : report -> float * float

(** [top n report] is the op profile truncated to the [n] largest entries. *)
val top : int -> report -> op_stat list

val pp : Format.formatter -> report -> unit
val to_json : report -> Json.t
