(** The event recorder at the heart of the observability layer: a
    zero-dependency log of timeline events keyed to {e simulated} clocks.

    Every simulated component — the device engine, the eager runtime, the
    LazyTensor runtime, the XLA-style compiler — appends events stamped with
    the simulated time (seconds) at which they happened. Two tracks mirror
    the two clocks of {!S4o_device.Engine}: [Host] (dispatch overheads,
    tracing, compiling, sync stalls) and [Device] (kernel executions). The
    recorder itself knows nothing about either; callers pass explicit
    timestamps, which keeps this library dependency-free and reusable.

    Events are exported to the Chrome trace-event format by
    {!Chrome_trace}, and summarized by {!Stats}. *)

type track = Host | Device

val track_name : track -> string

type span = {
  name : string;
  cat : string;  (** Category, e.g. ["dispatch"], ["kernel"], ["stall"]. *)
  track : track;
  start : float;  (** Simulated seconds. *)
  finish : float;
  args : (string * string) list;  (** Free-form annotations. *)
}

type event =
  | Span of span
  | Instant of {
      name : string;
      cat : string;
      track : track;
      at : float;
      args : (string * string) list;
    }
  | Counter of { name : string; track : track; at : float; value : float }

type t

(** [create ()] makes an empty recorder. [~enabled:false] makes every
    recording call a no-op until {!set_enabled}. *)
val create : ?enabled:bool -> unit -> t

val enabled : t -> bool
val set_enabled : t -> bool -> unit

(** [span t track name ~start ~finish] records a completed interval. *)
val span :
  t ->
  track ->
  ?cat:string ->
  ?args:(string * string) list ->
  string ->
  start:float ->
  finish:float ->
  unit

(** A zero-duration marker (cache hits, cuts, resets...). *)
val instant :
  t -> track -> ?cat:string -> ?args:(string * string) list -> string -> at:float -> unit

(** [counter t track name ~at v] samples a time series (pipeline depth,
    live bytes...). *)
val counter : t -> track -> string -> at:float -> float -> unit

(** {1 Nested spans}

    [begin_span]/[end_span] bracket work whose duration is only known after
    the fact; spans opened while another is open nest naturally in the
    exported timeline. *)

type open_span

val begin_span :
  t -> track -> ?cat:string -> ?args:(string * string) list -> string -> at:float -> open_span

(** [end_span t o ~at] records the interval opened by [o]; [?args] are
    appended to the opening args. *)
val end_span : t -> ?args:(string * string) list -> open_span -> at:float -> unit

(** {1 Reading} *)

(** All events, in recording order. *)
val events : t -> event list

(** Completed spans only, in recording order. *)
val spans : t -> span list

val span_count : t -> int
val event_count : t -> int
val clear : t -> unit
