(** The unified runtime-statistics snapshot.

    One record covers every layer of the simulated stack; both
    [S4o_eager.Runtime.stats] and [S4o_lazy.Lazy_runtime.stats] return it
    (each filling the fields its layer produces and inheriting the engine's
    fields), replacing the bespoke per-runtime shapes. Fields that a layer
    does not produce are zero: an eager runtime never cuts traces, a lazy
    runtime never dispatches ops eagerly. *)

type t = {
  ops_dispatched : int;  (** Eager per-op dispatches. *)
  traces_cut : int;  (** Lazy trace cuts (barriers + observations + auto). *)
  auto_cuts : int;  (** Cuts triggered by the automatic threshold. *)
  cache_hits : int;  (** Compiled-program cache hits. *)
  cache_misses : int;  (** Cache misses — each one is an XLA compile. *)
  ops_traced : int;  (** Total ops recorded across all cut traces. *)
  largest_trace : int;  (** Ops in the largest single trace. *)
  compile_seconds : float;  (** Simulated host time spent in the JIT. *)
  kernels_launched : int;  (** Device kernels enqueued. *)
  host_seconds : float;  (** Simulated host clock. *)
  device_busy_seconds : float;  (** Simulated device busy time. *)
  host_stall_seconds : float;  (** Host time spent blocked in syncs. *)
  max_pipeline_depth : float;
      (** Deepest the device queue ever ran ahead of the host (seconds). *)
  live_bytes : int;  (** Device memory currently attributed. *)
  peak_bytes : int;  (** Peak device memory. *)
  spans_recorded : int;  (** Events captured by the {!Recorder}. *)
  tensor_live_bytes : int;
      (** Off-heap tensor bytes currently live ({!Memory.global}); zero
          unless memory tracking is enabled. *)
  tensor_peak_bytes : int;  (** Peak off-heap tensor bytes. *)
  tensor_allocs : int;  (** Tensor buffer allocations observed. *)
  tensor_frees : int;  (** Tensor buffer frees observed (GC finalisers). *)
}

val zero : t

(** [(label, rendered value)] pairs, for table output. *)
val rows : t -> (string * string) list

val pp : Format.formatter -> t -> unit
