(** Prometheus text-format exposition of a {!Metrics} registry.

    Renders every registered metric in the Prometheus exposition format
    (version 0.0.4, the [text/plain] scrape format): counters and gauges as
    single samples, gauges additionally as a [<name>_peak] series,
    histograms as cumulative [<name>_bucket{le="..."}] series plus
    [<name>_sum]/[<name>_count] and exact [{quantile="..."}] samples
    (p50/p90/p99 — the registry keeps all observations, so these are exact,
    not bucket-interpolated).

    Metric names are sanitised to the Prometheus grammar
    ([\[a-zA-Z_:\]\[a-zA-Z0-9_:\]*]): the registry's dotted names
    ([lazy.cache_hits]) become underscored ([s4o_lazy_cache_hits] under the
    default namespace).

    {!samples_of_text} parses the format back into samples — the round-trip
    the tests run, and the reader for any saved scrape. *)

(** One exposition line: [name{labels} value]. *)
type sample = {
  metric : string;
  labels : (string * string) list;  (** In appearance order; often empty. *)
  value : float;
}

(** [sanitize ?namespace name] is the exposition name for a registry
    name — invalid characters become [_], and [namespace] (default
    ["s4o"]) is prefixed. *)
val sanitize : ?namespace:string -> string -> string

(** Render a whole registry. *)
val to_text : ?namespace:string -> Metrics.t -> string

(** Parse exposition text back into samples (comment and [# TYPE]/[# HELP]
    lines are skipped). Returns [Error] with a line number on malformed
    input. *)
val samples_of_text : string -> (sample list, string) result

(** [find samples ?labels name] is the value of the first sample called
    [name] whose labels include every pair in [labels]. *)
val find : sample list -> ?labels:(string * string) list -> string -> float option
