type counter = { mutable count : int }
type gauge = { mutable last : float; mutable peak : float; mutable samples : int }

type histogram = {
  mutable n : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  buckets : float array;  (* upper bounds, ascending; +inf implicit *)
  bucket_counts : int array;  (* length = Array.length buckets + 1 *)
  mutable sample_buf : float array;  (* every observation, for exact quantiles *)
  mutable n_samples : int;  (* used prefix of [samples] *)
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = {
  tbl : (string, metric) Hashtbl.t;
  mutable order : string list;  (* registration order, newest first *)
}

let create () = { tbl = Hashtbl.create 16; order = [] }

let register t name m =
  match Hashtbl.find_opt t.tbl name with
  | Some existing -> existing
  | None ->
      Hashtbl.add t.tbl name m;
      t.order <- name :: t.order;
      m

let counter t name =
  match register t name (Counter { count = 0 }) with
  | Counter c -> c
  | _ -> invalid_arg (name ^ " is already registered with another type")

let gauge t name =
  match register t name (Gauge { last = 0.0; peak = neg_infinity; samples = 0 }) with
  | Gauge g -> g
  | _ -> invalid_arg (name ^ " is already registered with another type")

let default_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.0; 10.0 |]

let histogram ?(buckets = default_buckets) t name =
  let h =
    Histogram
      {
        n = 0;
        sum = 0.0;
        min_v = infinity;
        max_v = neg_infinity;
        buckets;
        bucket_counts = Array.make (Array.length buckets + 1) 0;
        sample_buf = Array.make 64 0.0;
        n_samples = 0;
      }
  in
  match register t name h with
  | Histogram h -> h
  | _ -> invalid_arg (name ^ " is already registered with another type")

let incr ?(by = 1) c = c.count <- c.count + by
let counter_value c = c.count

let set g v =
  g.last <- v;
  g.samples <- g.samples + 1;
  if v > g.peak then g.peak <- v

let gauge_value g = g.last
let gauge_peak g = if g.samples = 0 then 0.0 else g.peak

let observe h v =
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v;
  if h.n_samples = Array.length h.sample_buf then begin
    let bigger = Array.make (2 * Array.length h.sample_buf) 0.0 in
    Array.blit h.sample_buf 0 bigger 0 h.n_samples;
    h.sample_buf <- bigger
  end;
  h.sample_buf.(h.n_samples) <- v;
  h.n_samples <- h.n_samples + 1;
  let rec place i =
    if i >= Array.length h.buckets then Array.length h.buckets
    else if v <= h.buckets.(i) then i
    else place (i + 1)
  in
  let i = place 0 in
  h.bucket_counts.(i) <- h.bucket_counts.(i) + 1

let hist_count h = h.n
let hist_sum h = h.sum
let hist_max h = if h.n = 0 then 0.0 else h.max_v
let hist_min h = if h.n = 0 then 0.0 else h.min_v
let hist_mean h = if h.n = 0 then 0.0 else h.sum /. float_of_int h.n

let quantile h q =
  if q < 0.0 || q > 1.0 then invalid_arg "Metrics.quantile: q outside [0, 1]";
  if h.n_samples = 0 then 0.0
  else begin
    let sorted = Array.sub h.sample_buf 0 h.n_samples in
    Array.sort Float.compare sorted;
    (* linear interpolation between closest ranks *)
    let pos = q *. float_of_int (h.n_samples - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (h.n_samples - 1) (lo + 1) in
    let frac = pos -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

type hist_summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let summary h =
  (* one sort for all three quantiles *)
  if h.n_samples = 0 then
    { count = 0; mean = 0.0; min = 0.0; max = 0.0; p50 = 0.0; p90 = 0.0; p99 = 0.0 }
  else begin
    let sorted = Array.sub h.sample_buf 0 h.n_samples in
    Array.sort Float.compare sorted;
    let at q =
      let pos = q *. float_of_int (h.n_samples - 1) in
      let lo = int_of_float (Float.floor pos) in
      let hi = Stdlib.min (h.n_samples - 1) (lo + 1) in
      let frac = pos -. float_of_int lo in
      sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
    in
    {
      count = h.n;
      mean = hist_mean h;
      min = hist_min h;
      max = hist_max h;
      p50 = at 0.5;
      p90 = at 0.9;
      p99 = at 0.99;
    }
  end

let hist_buckets h =
  Array.to_list
    (Array.mapi
       (fun i c ->
         let upper =
           if i < Array.length h.buckets then h.buckets.(i) else infinity
         in
         (upper, c))
       h.bucket_counts)

type value =
  | Counter_v of int
  | Gauge_v of { last : float; peak : float }
  | Histogram_v of { count : int; sum : float; mean : float; max : float }

let snapshot t =
  List.rev_map
    (fun name ->
      let v =
        match Hashtbl.find t.tbl name with
        | Counter c -> Counter_v c.count
        | Gauge g -> Gauge_v { last = gauge_value g; peak = gauge_peak g }
        | Histogram h ->
            Histogram_v
              { count = h.n; sum = h.sum; mean = hist_mean h; max = hist_max h }
      in
      (name, v))
    t.order

type export =
  | Counter_x of int
  | Gauge_x of { last : float; peak : float }
  | Histogram_x of {
      count : int;
      sum : float;
      min : float;
      max : float;
      buckets : (float * int) list;
      quantiles : (float * float) list;
    }

let export t =
  List.rev_map
    (fun name ->
      let v =
        match Hashtbl.find t.tbl name with
        | Counter c -> Counter_x c.count
        | Gauge g -> Gauge_x { last = gauge_value g; peak = gauge_peak g }
        | Histogram h ->
            Histogram_x
              {
                count = h.n;
                sum = h.sum;
                min = hist_min h;
                max = hist_max h;
                buckets = hist_buckets h;
                quantiles =
                  List.map (fun q -> (q, quantile h q)) [ 0.5; 0.9; 0.99 ];
              }
      in
      (name, v))
    t.order

let reset t =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.count <- 0
      | Gauge g ->
          g.last <- 0.0;
          g.peak <- neg_infinity;
          g.samples <- 0
      | Histogram h ->
          h.n <- 0;
          h.sum <- 0.0;
          h.min_v <- infinity;
          h.max_v <- neg_infinity;
          h.n_samples <- 0;
          Array.fill h.bucket_counts 0 (Array.length h.bucket_counts) 0)
    t.tbl

let pp ppf t =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter_v c -> Format.fprintf ppf "%s: %d@." name c
      | Gauge_v { last; peak } ->
          Format.fprintf ppf "%s: %g (peak %g)@." name last peak
      | Histogram_v { count; sum; mean; max } ->
          Format.fprintf ppf "%s: n=%d sum=%g mean=%g max=%g@." name count sum
            mean max)
    (snapshot t)
