(** Export recorded timelines in the Chrome trace-event JSON format, viewable
    in [chrome://tracing] / Perfetto — the timeline profiling that TF Eager
    and LazyTensor lean on to separate host-bound from device-bound regimes.

    Each recorder becomes one process with two named threads mirroring its
    two tracks: [tid 1] = host (dispatch, tracing, compiling, stalls),
    [tid 2] = device (kernel executions). Spans are complete events
    ([ph:"X"]), instants are [ph:"i"], counter samples are [ph:"C"].
    Simulated seconds become trace microseconds. *)

(** Serialize one recorder as one process ([?process] names it). *)
val to_string : ?process:string -> Recorder.t -> string

val to_channel : ?process:string -> out_channel -> Recorder.t -> unit
val to_file : ?process:string -> string -> Recorder.t -> unit

(** Several recorders side by side — e.g. the eager and lazy runtimes of the
    same workload — as separate processes on a shared timeline. *)
val processes_to_string : (string * Recorder.t) list -> string

val processes_to_file : string -> (string * Recorder.t) list -> unit

(** Parse a serialized trace back and structurally check every event (the
    round-trip check used by tests and the CLI). Returns the event count. *)
val validate : string -> (int, string) result
