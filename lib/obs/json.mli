(** A minimal JSON value type, writer, and recursive-descent parser.

    Exists so the Chrome-trace exporter has a well-formed serializer and —
    more importantly — so exported traces can be {e round-tripped} through a
    real parse in tests and CLI validation, without pulling in an external
    JSON dependency. Strings are treated as bytes (with [\uXXXX] escapes
    decoded to UTF-8 on the way in); numbers are floats. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string

(** Parse a complete JSON document. *)
val parse : string -> (t, string) result

(** [member k (Obj ...)] is the value bound to [k], if any. *)
val member : string -> t -> t option

val to_list : t -> t list option
val to_float : t -> float option
val to_str : t -> string option
