type sample = {
  metric : string;
  labels : (string * string) list;
  value : float;
}

let valid_char i c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || c = '_' || c = ':'
  || (i > 0 && c >= '0' && c <= '9')

let sanitize ?(namespace = "s4o") name =
  let full = if namespace = "" then name else namespace ^ "_" ^ name in
  String.mapi (fun i c -> if valid_char i c then c else '_') full

(* Prometheus value rendering: integral values without a fraction, +Inf for
   the last bucket bound, enough digits elsewhere to round-trip. *)
let fmt_value v =
  if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_nan v then "NaN"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let to_text ?namespace t =
  let buf = Buffer.create 1024 in
  let line name ?(labels = []) v =
    Buffer.add_string buf name;
    (match labels with
    | [] -> ()
    | labels ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf k;
            Buffer.add_string buf "=\"";
            String.iter
              (function
                | '\\' -> Buffer.add_string buf "\\\\"
                | '"' -> Buffer.add_string buf "\\\""
                | '\n' -> Buffer.add_string buf "\\n"
                | c -> Buffer.add_char buf c)
              v;
            Buffer.add_char buf '"')
          labels;
        Buffer.add_char buf '}');
    Buffer.add_char buf ' ';
    Buffer.add_string buf (fmt_value v);
    Buffer.add_char buf '\n'
  in
  let typ name kind =
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (fun (raw_name, x) ->
      let name = sanitize ?namespace raw_name in
      match x with
      | Metrics.Counter_x v ->
          typ name "counter";
          line name (float_of_int v)
      | Metrics.Gauge_x { last; peak } ->
          typ name "gauge";
          line name last;
          typ (name ^ "_peak") "gauge";
          line (name ^ "_peak") peak
      | Metrics.Histogram_x { count; sum; buckets; quantiles; _ } ->
          typ name "histogram";
          let cumulative = ref 0 in
          List.iter
            (fun (upper, c) ->
              cumulative := !cumulative + c;
              line (name ^ "_bucket")
                ~labels:[ ("le", fmt_value upper) ]
                (float_of_int !cumulative))
            buckets;
          line (name ^ "_sum") sum;
          line (name ^ "_count") (float_of_int count);
          List.iter
            (fun (q, v) -> line name ~labels:[ ("quantile", fmt_value q) ] v)
            quantiles)
    (Metrics.export t);
  Buffer.contents buf

(* {1 Parsing} *)

let parse_labels lineno s =
  (* s is the text between '{' and '}' *)
  let n = String.length s in
  let fail msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let rec pairs acc i =
    if i >= n then Ok (List.rev acc)
    else
      match String.index_from_opt s i '=' with
      | None -> fail "label without '='"
      | Some eq ->
          let key = String.trim (String.sub s i (eq - i)) in
          if eq + 1 >= n || s.[eq + 1] <> '"' then fail "label value not quoted"
          else begin
            let b = Buffer.create 16 in
            let rec scan j =
              if j >= n then fail "unterminated label value"
              else
                match s.[j] with
                | '\\' when j + 1 < n ->
                    Buffer.add_char b
                      (match s.[j + 1] with 'n' -> '\n' | c -> c);
                    scan (j + 2)
                | '"' -> Ok j
                | c ->
                    Buffer.add_char b c;
                    scan (j + 1)
            in
            match scan (eq + 2) with
            | Error e -> Error e
            | Ok close ->
                let acc = (key, Buffer.contents b) :: acc in
                let i = close + 1 in
                if i < n && s.[i] = ',' then pairs acc (i + 1)
                else if i >= n then Ok (List.rev acc)
                else fail "junk after label value"
          end
  in
  pairs [] 0

let parse_value lineno s =
  match String.trim s with
  | "+Inf" -> Ok infinity
  | "-Inf" -> Ok neg_infinity
  | "NaN" -> Ok Float.nan
  | v -> (
      match float_of_string_opt v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "line %d: bad value %S" lineno v))

let samples_of_text text =
  let lines = String.split_on_char '\n' text in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go acc (lineno + 1) rest
        else
          let metric_end =
            match String.index_opt line '{' with
            | Some i -> i
            | None -> (
                match String.index_opt line ' ' with
                | Some i -> i
                | None -> String.length line)
          in
          let metric = String.sub line 0 metric_end in
          if metric = "" then
            Error (Printf.sprintf "line %d: missing metric name" lineno)
          else
            let labels_res, value_start =
              if metric_end < String.length line && line.[metric_end] = '{' then
                match String.index_from_opt line metric_end '}' with
                | None ->
                    (Error (Printf.sprintf "line %d: unterminated labels" lineno), 0)
                | Some close ->
                    ( parse_labels lineno
                        (String.sub line (metric_end + 1) (close - metric_end - 1)),
                      close + 1 )
              else (Ok [], metric_end)
            in
            match labels_res with
            | Error e -> Error e
            | Ok labels -> (
                let rest_of_line =
                  String.sub line value_start (String.length line - value_start)
                in
                match parse_value lineno rest_of_line with
                | Error e -> Error e
                | Ok value ->
                    go ({ metric; labels; value } :: acc) (lineno + 1) rest))
  in
  go [] 1 lines

let find samples ?(labels = []) metric =
  List.find_map
    (fun s ->
      if
        s.metric = metric
        && List.for_all
             (fun (k, v) -> List.assoc_opt k s.labels = Some v)
             labels
      then Some s.value
      else None)
    samples
