let tid_of_track = function Recorder.Host -> 1 | Recorder.Device -> 2

let us seconds = seconds *. 1e6

let args_obj args =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) args)

let common ~pid ~name ~cat ~track ~ts rest =
  Json.Obj
    (("name", Json.Str name)
    :: ("cat", Json.Str (if cat = "" then "s4o" else cat))
    :: ("pid", Json.Num (float_of_int pid))
    :: ("tid", Json.Num (float_of_int (tid_of_track track)))
    :: ("ts", Json.Num (us ts))
    :: rest)

let event_json ~pid = function
  | Recorder.Span { name; cat; track; start; finish; args } ->
      common ~pid ~name ~cat ~track ~ts:start
        [
          ("ph", Json.Str "X");
          ("dur", Json.Num (us (finish -. start)));
          ("args", args_obj args);
        ]
  | Recorder.Instant { name; cat; track; at; args } ->
      common ~pid ~name ~cat ~track ~ts:at
        [ ("ph", Json.Str "i"); ("s", Json.Str "t"); ("args", args_obj args) ]
  | Recorder.Counter { name; track; at; value } ->
      common ~pid ~name ~cat:"counter" ~track ~ts:at
        [ ("ph", Json.Str "C"); ("args", Json.Obj [ (name, Json.Num value) ]) ]

let metadata ~pid process =
  let meta name args =
    Json.Obj
      [
        ("name", Json.Str name);
        ("ph", Json.Str "M");
        ("pid", Json.Num (float_of_int pid));
        ("tid", Json.Num 0.0);
        ("args", Json.Obj args);
      ]
  in
  let thread_meta track =
    Json.Obj
      [
        ("name", Json.Str "thread_name");
        ("ph", Json.Str "M");
        ("pid", Json.Num (float_of_int pid));
        ("tid", Json.Num (float_of_int (tid_of_track track)));
        ("args", Json.Obj [ ("name", Json.Str (Recorder.track_name track)) ]);
      ]
  in
  [
    meta "process_name" [ ("name", Json.Str process) ];
    thread_meta Recorder.Host;
    thread_meta Recorder.Device;
  ]

let to_json processes =
  let events =
    List.concat
      (List.mapi
         (fun i (process, recorder) ->
           let pid = i + 1 in
           metadata ~pid process
           @ List.map (event_json ~pid) (Recorder.events recorder))
         processes)
  in
  Json.Obj
    [ ("traceEvents", Json.Arr events); ("displayTimeUnit", Json.Str "ms") ]

let to_string ?(process = "s4o") recorder =
  Json.to_string (to_json [ (process, recorder) ])

let processes_to_string processes = Json.to_string (to_json processes)

let to_channel ?process oc recorder =
  output_string oc (to_string ?process recorder)

let to_file ?process path recorder =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> to_channel ?process oc recorder)

let processes_to_file path processes =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (processes_to_string processes))

let validate s =
  match Json.parse s with
  | Error msg -> Error ("invalid JSON: " ^ msg)
  | Ok j -> (
      match Option.bind (Json.member "traceEvents" j) Json.to_list with
      | None -> Error "missing traceEvents array"
      | Some events ->
          (* Beyond structural checks, enforce the two invariants the
             recorder's monotone simulated clocks guarantee: complete
             spans never have negative durations, and samples of one
             counter series (same pid/tid/name) appear in non-decreasing
             timestamp order. A violation means a broken exporter or a
             hand-mangled trace, not a viewable timeline. *)
          let last_counter_ts = Hashtbl.create 16 in
          let rec check n = function
            | [] -> Ok n
            | e :: rest -> (
                let str k = Option.bind (Json.member k e) Json.to_str in
                let num k = Option.bind (Json.member k e) Json.to_float in
                match (str "name", str "ph", num "pid", num "tid") with
                | None, _, _, _ | _, None, _, _ | _, _, None, _ | _, _, _, None
                  ->
                    Error "malformed trace event"
                | Some name, Some ph, Some pid, Some tid -> (
                    match ph with
                    | "X" -> (
                        match num "dur" with
                        | None -> Error ("span without dur: " ^ name)
                        | Some d when d < 0.0 ->
                            Error ("negative span duration: " ^ name)
                        | Some _ -> check (n + 1) rest)
                    | "C" -> (
                        match num "ts" with
                        | None -> Error ("counter without ts: " ^ name)
                        | Some ts ->
                            let key = (pid, tid, name) in
                            let prev =
                              Option.value ~default:neg_infinity
                                (Hashtbl.find_opt last_counter_ts key)
                            in
                            if ts < prev then
                              Error ("non-monotone counter timestamps: " ^ name)
                            else begin
                              Hashtbl.replace last_counter_ts key ts;
                              check (n + 1) rest
                            end)
                    | _ -> check (n + 1) rest))
          in
          check 0 events)
