let tid_of_track = function Recorder.Host -> 1 | Recorder.Device -> 2

let us seconds = seconds *. 1e6

let args_obj args =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) args)

let common ~pid ~name ~cat ~track ~ts rest =
  Json.Obj
    (("name", Json.Str name)
    :: ("cat", Json.Str (if cat = "" then "s4o" else cat))
    :: ("pid", Json.Num (float_of_int pid))
    :: ("tid", Json.Num (float_of_int (tid_of_track track)))
    :: ("ts", Json.Num (us ts))
    :: rest)

let event_json ~pid = function
  | Recorder.Span { name; cat; track; start; finish; args } ->
      common ~pid ~name ~cat ~track ~ts:start
        [
          ("ph", Json.Str "X");
          ("dur", Json.Num (us (finish -. start)));
          ("args", args_obj args);
        ]
  | Recorder.Instant { name; cat; track; at; args } ->
      common ~pid ~name ~cat ~track ~ts:at
        [ ("ph", Json.Str "i"); ("s", Json.Str "t"); ("args", args_obj args) ]
  | Recorder.Counter { name; track; at; value } ->
      common ~pid ~name ~cat:"counter" ~track ~ts:at
        [ ("ph", Json.Str "C"); ("args", Json.Obj [ (name, Json.Num value) ]) ]

let metadata ~pid process =
  let meta name args =
    Json.Obj
      [
        ("name", Json.Str name);
        ("ph", Json.Str "M");
        ("pid", Json.Num (float_of_int pid));
        ("tid", Json.Num 0.0);
        ("args", Json.Obj args);
      ]
  in
  let thread_meta track =
    Json.Obj
      [
        ("name", Json.Str "thread_name");
        ("ph", Json.Str "M");
        ("pid", Json.Num (float_of_int pid));
        ("tid", Json.Num (float_of_int (tid_of_track track)));
        ("args", Json.Obj [ ("name", Json.Str (Recorder.track_name track)) ]);
      ]
  in
  [
    meta "process_name" [ ("name", Json.Str process) ];
    thread_meta Recorder.Host;
    thread_meta Recorder.Device;
  ]

let to_json processes =
  let events =
    List.concat
      (List.mapi
         (fun i (process, recorder) ->
           let pid = i + 1 in
           metadata ~pid process
           @ List.map (event_json ~pid) (Recorder.events recorder))
         processes)
  in
  Json.Obj
    [ ("traceEvents", Json.Arr events); ("displayTimeUnit", Json.Str "ms") ]

let to_string ?(process = "s4o") recorder =
  Json.to_string (to_json [ (process, recorder) ])

let processes_to_string processes = Json.to_string (to_json processes)

let to_channel ?process oc recorder =
  output_string oc (to_string ?process recorder)

let to_file ?process path recorder =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> to_channel ?process oc recorder)

let processes_to_file path processes =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (processes_to_string processes))

let validate s =
  match Json.parse s with
  | Error msg -> Error ("invalid JSON: " ^ msg)
  | Ok j -> (
      match Option.bind (Json.member "traceEvents" j) Json.to_list with
      | None -> Error "missing traceEvents array"
      | Some events ->
          let ok =
            List.for_all
              (fun e ->
                let has k to_ty =
                  match Option.bind (Json.member k e) to_ty with
                  | Some _ -> true
                  | None -> false
                in
                has "name" Json.to_str && has "ph" Json.to_str
                && has "pid" Json.to_float
                && has "tid" Json.to_float)
              events
          in
          if ok then Ok (List.length events)
          else Error "malformed trace event")
