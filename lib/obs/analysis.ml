type op_stat = {
  name : string;
  track : Recorder.track;
  count : int;
  total_seconds : float;
  self_seconds : float;
  wall_fraction : float;
}

type critical_path = { path : Recorder.span list; seconds : float }

type report = {
  wall_seconds : float;
  span_count : int;
  host_busy_seconds : float;
  device_busy_seconds : float;
  overlap_seconds : float;
  idle_seconds : float;
  op_profile : op_stat list;
  critical : critical_path;
}

(* Timestamps are simulated seconds (ms–s scale); touching spans are often
   exactly adjacent, so a tiny absolute slack covers float noise. *)
let eps = 1e-12

let dur (s : Recorder.span) = s.Recorder.finish -. s.Recorder.start

(* {1 Interval coverage} *)

(* Union length of possibly-overlapping intervals, plus the merged list. *)
let merge_intervals spans =
  let ivs =
    List.sort compare
      (List.map (fun (s : Recorder.span) -> (s.Recorder.start, s.Recorder.finish)) spans)
  in
  let merged =
    List.fold_left
      (fun acc (lo, hi) ->
        match acc with
        | (plo, phi) :: rest when lo <= phi +. eps ->
            (plo, Float.max phi hi) :: rest
        | _ -> (lo, hi) :: acc)
      [] ivs
  in
  let merged = List.rev merged in
  (merged, List.fold_left (fun acc (lo, hi) -> acc +. (hi -. lo)) 0.0 merged)

(* Total length of the intersection of two merged interval lists. *)
let rec intersect_len a b =
  match (a, b) with
  | [], _ | _, [] -> 0.0
  | (alo, ahi) :: arest, (blo, bhi) :: brest ->
      let lo = Float.max alo blo and hi = Float.min ahi bhi in
      let here = Float.max 0.0 (hi -. lo) in
      if ahi < bhi then here +. intersect_len arest b
      else here +. intersect_len a brest

(* {1 Op profile: count, total, self per (name, track)} *)

(* Self time via the classic flamegraph stack walk: spans sorted by
   (start asc, finish desc) visit parents before their children; each span
   charges the portion of itself overlapping its immediate parent to that
   parent's child-time, and self = duration - child-time. Within one track
   the resulting self intervals are disjoint, so per-track self times sum
   to at most the wall clock. *)
let profile_track spans =
  let arr = Array.of_list spans in
  Array.sort
    (fun (a : Recorder.span) (b : Recorder.span) ->
      match compare a.Recorder.start b.Recorder.start with
      | 0 -> compare b.Recorder.finish a.Recorder.finish
      | c -> c)
    arr;
  let child = Array.make (Array.length arr) 0.0 in
  let stack = ref [] in
  let self = Hashtbl.create 16 in
  let charge i =
    let s = arr.(i) in
    let self_t = Float.max 0.0 (dur s -. child.(i)) in
    let key = s.Recorder.name in
    let count, total, slf =
      match Hashtbl.find_opt self key with
      | Some (c, t, sl) -> (c, t, sl)
      | None -> (0, 0.0, 0.0)
    in
    Hashtbl.replace self key (count + 1, total +. dur s, slf +. self_t)
  in
  Array.iteri
    (fun i (s : Recorder.span) ->
      let rec pop () =
        match !stack with
        | j :: rest when arr.(j).Recorder.finish <= s.Recorder.start +. eps ->
            stack := rest;
            charge j;
            pop ()
        | _ -> ()
      in
      pop ();
      (match !stack with
      | j :: _ ->
          let parent = arr.(j) in
          let overlap =
            Float.min parent.Recorder.finish s.Recorder.finish
            -. s.Recorder.start
          in
          child.(j) <- child.(j) +. Float.max 0.0 overlap
      | [] -> ());
      stack := i :: !stack)
    arr;
  List.iter charge !stack;
  stack := [];
  self

(* {1 Critical path} *)

(* Maximum-duration chain of spans under the partial order
   [a.finish <= b.start]: sort by start, sweep a finish-ordered frontier to
   keep a running best over every span already finished, and link
   predecessors for reconstruction. O(n log n). Chains cover disjoint
   sub-intervals of the wall, so the result is <= wall by construction. *)
let critical_path spans =
  let arr = Array.of_list spans in
  let n = Array.length arr in
  if n = 0 then { path = []; seconds = 0.0 }
  else begin
    let by_start = Array.init n (fun i -> i) in
    Array.sort
      (fun a b -> compare arr.(a).Recorder.start arr.(b).Recorder.start)
      by_start;
    let by_finish = Array.init n (fun i -> i) in
    Array.sort
      (fun a b -> compare arr.(a).Recorder.finish arr.(b).Recorder.finish)
      by_finish;
    let best = Array.make n 0.0 in
    let pred = Array.make n (-1) in
    let run_best = ref 0.0 and run_arg = ref (-1) in
    let fptr = ref 0 in
    Array.iter
      (fun i ->
        let start = arr.(i).Recorder.start in
        while
          !fptr < n && arr.(by_finish.(!fptr)).Recorder.finish <= start +. eps
        do
          let j = by_finish.(!fptr) in
          (* [best.(j)] is final: j started (hence was processed) before i *)
          if best.(j) > !run_best then begin
            run_best := best.(j);
            run_arg := j
          end;
          incr fptr
        done;
        best.(i) <- dur arr.(i) +. !run_best;
        pred.(i) <- !run_arg)
      by_start;
    let last = ref 0 in
    Array.iteri (fun i b -> if b > best.(!last) then last := i) best;
    let rec chain acc i = if i < 0 then acc else chain (arr.(i) :: acc) pred.(i) in
    { path = chain [] !last; seconds = best.(!last) }
  end

(* {1 Reports} *)

let of_spans spans =
  let span_count = List.length spans in
  if span_count = 0 then
    {
      wall_seconds = 0.0;
      span_count = 0;
      host_busy_seconds = 0.0;
      device_busy_seconds = 0.0;
      overlap_seconds = 0.0;
      idle_seconds = 0.0;
      op_profile = [];
      critical = { path = []; seconds = 0.0 };
    }
  else begin
    let t0 =
      List.fold_left
        (fun acc (s : Recorder.span) -> Float.min acc s.Recorder.start)
        infinity spans
    and t1 =
      List.fold_left
        (fun acc (s : Recorder.span) -> Float.max acc s.Recorder.finish)
        neg_infinity spans
    in
    let wall = Float.max 0.0 (t1 -. t0) in
    let track tr =
      List.filter (fun (s : Recorder.span) -> s.Recorder.track = tr) spans
    in
    let host = track Recorder.Host and device = track Recorder.Device in
    let host_iv, host_busy = merge_intervals host in
    let dev_iv, dev_busy = merge_intervals device in
    let overlap = intersect_len host_iv dev_iv in
    let _, any_busy = merge_intervals spans in
    let profile =
      List.concat_map
        (fun (tr, sp) ->
          Hashtbl.fold
            (fun name (count, total, self) acc ->
              {
                name;
                track = tr;
                count;
                total_seconds = total;
                self_seconds = self;
                wall_fraction = (if wall > 0.0 then self /. wall else 0.0);
              }
              :: acc)
            (profile_track sp) [])
        [ (Recorder.Host, host); (Recorder.Device, device) ]
      |> List.sort (fun a b -> compare b.self_seconds a.self_seconds)
    in
    {
      wall_seconds = wall;
      span_count;
      host_busy_seconds = host_busy;
      device_busy_seconds = dev_busy;
      overlap_seconds = overlap;
      idle_seconds = Float.max 0.0 (wall -. any_busy);
      op_profile = profile;
      critical = critical_path spans;
    }
  end

let of_recorder r = of_spans (Recorder.spans r)

let of_trace_json s =
  match Json.parse s with
  | Error msg -> Error ("invalid JSON: " ^ msg)
  | Ok j -> (
      match Option.bind (Json.member "traceEvents" j) Json.to_list with
      | None -> Error "missing traceEvents array"
      | Some events ->
          let spans =
            List.filter_map
              (fun e ->
                match Option.bind (Json.member "ph" e) Json.to_str with
                | Some "X" ->
                    let str k =
                      Option.value ~default:""
                        (Option.bind (Json.member k e) Json.to_str)
                    and num k =
                      Option.bind (Json.member k e) Json.to_float
                    in
                    Option.bind (num "ts") (fun ts ->
                        Option.map
                          (fun d ->
                            {
                              Recorder.name = str "name";
                              cat = str "cat";
                              track =
                                (match num "tid" with
                                | Some 2.0 -> Recorder.Device
                                | _ -> Recorder.Host);
                              start = ts /. 1e6;
                              finish = (ts +. d) /. 1e6;
                              args = [];
                            })
                          (num "dur"))
                | _ -> None)
              events
          in
          Ok (of_spans spans))

let self_time_by_track r =
  List.fold_left
    (fun (h, d) (o : op_stat) ->
      match o.track with
      | Recorder.Host -> (h +. o.self_seconds, d)
      | Recorder.Device -> (h, d +. o.self_seconds))
    (0.0, 0.0) r.op_profile

let top n r = List.filteri (fun i _ -> i < n) r.op_profile

let ms v = Printf.sprintf "%.3f ms" (v *. 1e3)

let pp ppf r =
  let frac v = if r.wall_seconds > 0.0 then v /. r.wall_seconds else 0.0 in
  Format.fprintf ppf "  wall clock              %s (%d spans)@."
    (ms r.wall_seconds) r.span_count;
  Format.fprintf ppf "  host busy               %s (%.1f%%)@."
    (ms r.host_busy_seconds)
    (100.0 *. frac r.host_busy_seconds);
  Format.fprintf ppf "  device busy             %s (%.1f%%)@."
    (ms r.device_busy_seconds)
    (100.0 *. frac r.device_busy_seconds);
  Format.fprintf ppf "  host/device overlap     %s (%.1f%%)@."
    (ms r.overlap_seconds)
    (100.0 *. frac r.overlap_seconds);
  Format.fprintf ppf "  idle gaps               %s (%.1f%%)@." (ms r.idle_seconds)
    (100.0 *. frac r.idle_seconds);
  Format.fprintf ppf "  critical path           %s (%.1f%% of wall, %d spans)@."
    (ms r.critical.seconds)
    (100.0 *. frac r.critical.seconds)
    (List.length r.critical.path);
  Format.fprintf ppf "  op profile (top %d by self time):@."
    (min 12 (List.length r.op_profile));
  Format.fprintf ppf "    %-24s %-7s %6s %12s %12s %7s@." "op" "track" "count"
    "total" "self" "% wall";
  List.iter
    (fun (o : op_stat) ->
      Format.fprintf ppf "    %-24s %-7s %6d %12s %12s %6.1f%%@." o.name
        (Recorder.track_name o.track)
        o.count (ms o.total_seconds) (ms o.self_seconds)
        (100.0 *. o.wall_fraction))
    (top 12 r)

let to_json r =
  let open Json in
  Obj
    [
      ("wall_seconds", Num r.wall_seconds);
      ("span_count", Num (float_of_int r.span_count));
      ("host_busy_seconds", Num r.host_busy_seconds);
      ("device_busy_seconds", Num r.device_busy_seconds);
      ("overlap_seconds", Num r.overlap_seconds);
      ("idle_seconds", Num r.idle_seconds);
      ( "critical_path",
        Obj
          [
            ("seconds", Num r.critical.seconds);
            ( "spans",
              Arr
                (List.map
                   (fun (s : Recorder.span) ->
                     Obj
                       [
                         ("name", Str s.Recorder.name);
                         ("track", Str (Recorder.track_name s.Recorder.track));
                         ("start", Num s.Recorder.start);
                         ("finish", Num s.Recorder.finish);
                       ])
                   r.critical.path) );
          ] );
      ( "op_profile",
        Arr
          (List.map
             (fun (o : op_stat) ->
               Obj
                 [
                   ("name", Str o.name);
                   ("track", Str (Recorder.track_name o.track));
                   ("count", Num (float_of_int o.count));
                   ("total_seconds", Num o.total_seconds);
                   ("self_seconds", Num o.self_seconds);
                   ("wall_fraction", Num o.wall_fraction);
                 ])
             r.op_profile) );
    ]
