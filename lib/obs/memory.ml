type tag_stats = {
  tag : string;
  live_bytes : int;
  peak_bytes : int;
  allocs : int;
  frees : int;
}

(* Mutable per-tag accumulator behind the immutable snapshot above. *)
type tag_cell = {
  mutable t_live : int;
  mutable t_peak : int;
  mutable t_allocs : int;
  mutable t_frees : int;
}

type t = {
  mutex : Mutex.t;
  mutable enabled : bool;
  mutable gen : int;
  mutable live : int;
  mutable peak : int;
  mutable allocs : int;
  mutable frees : int;
  mutable views : int;
  mutable tag : string;  (* current dynamic attribution tag *)
  by_tag : (string, tag_cell) Hashtbl.t;
}

let default_tag = "tensor"

let create ?(enabled = true) () =
  {
    mutex = Mutex.create ();
    enabled;
    gen = 0;
    live = 0;
    peak = 0;
    allocs = 0;
    frees = 0;
    views = 0;
    tag = default_tag;
    by_tag = Hashtbl.create 8;
  }

(* Off by default: tracking must be opted into (s4o_cli profile, tests),
   so the un-profiled allocation path pays only the [enabled] branch. *)
let global = create ~enabled:false ()

let enabled t = t.enabled
let set_enabled t on = t.enabled <- on
let generation t = t.gen
let current_tag t = t.tag

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let cell t tag =
  match Hashtbl.find_opt t.by_tag tag with
  | Some c -> c
  | None ->
      let c = { t_live = 0; t_peak = 0; t_allocs = 0; t_frees = 0 } in
      Hashtbl.add t.by_tag tag c;
      c

let alloc t ?tag bytes =
  if t.enabled then
    locked t (fun () ->
        let tag = match tag with Some s -> s | None -> t.tag in
        t.live <- t.live + bytes;
        if t.live > t.peak then t.peak <- t.live;
        t.allocs <- t.allocs + 1;
        let c = cell t tag in
        c.t_live <- c.t_live + bytes;
        if c.t_live > c.t_peak then c.t_peak <- c.t_live;
        c.t_allocs <- c.t_allocs + 1)

let free t ?tag bytes =
  if t.enabled then
    locked t (fun () ->
        let tag = match tag with Some s -> s | None -> t.tag in
        t.live <- t.live - bytes;
        t.frees <- t.frees + 1;
        let c = cell t tag in
        c.t_live <- c.t_live - bytes;
        c.t_frees <- c.t_frees + 1)

let free_gen t ~gen ?tag bytes = if gen = t.gen then free t ?tag bytes

let note_view t =
  if t.enabled then locked t (fun () -> t.views <- t.views + 1)

(* The tag is dynamic state of the allocating (main) domain; finaliser
   frees never read it (they capture their tag explicitly), so a plain
   mutable field with save/restore is enough. *)
let with_tag t tag f =
  if not t.enabled then f ()
  else begin
    let saved = t.tag in
    t.tag <- tag;
    Fun.protect ~finally:(fun () -> t.tag <- saved) f
  end

let live_bytes t = t.live
let peak_bytes t = t.peak
let alloc_count t = t.allocs
let free_count t = t.frees
let view_count t = t.views

let tags t =
  locked t (fun () ->
      Hashtbl.fold
        (fun tag c acc ->
          {
            tag;
            live_bytes = c.t_live;
            peak_bytes = c.t_peak;
            allocs = c.t_allocs;
            frees = c.t_frees;
          }
          :: acc)
        t.by_tag [])
  |> List.sort (fun a b -> compare b.peak_bytes a.peak_bytes)

let reset t =
  locked t (fun () ->
      t.gen <- t.gen + 1;
      t.live <- 0;
      t.peak <- 0;
      t.allocs <- 0;
      t.frees <- 0;
      t.views <- 0;
      t.tag <- default_tag;
      Hashtbl.reset t.by_tag)

let human_bytes b =
  let fb = float_of_int b in
  if abs b >= 1 lsl 30 then Printf.sprintf "%.2f GiB" (fb /. 1073741824.0)
  else if abs b >= 1 lsl 20 then Printf.sprintf "%.2f MiB" (fb /. 1048576.0)
  else if abs b >= 1 lsl 10 then Printf.sprintf "%.1f KiB" (fb /. 1024.0)
  else Printf.sprintf "%d B" b

let rows t =
  [
    ("tracking", if t.enabled then "enabled" else "disabled");
    ("live tensor bytes", Printf.sprintf "%d (%s)" t.live (human_bytes t.live));
    ("peak tensor bytes", Printf.sprintf "%d (%s)" t.peak (human_bytes t.peak));
    ("allocations", string_of_int t.allocs);
    ("frees", string_of_int t.frees);
    ("zero-copy views", string_of_int t.views);
  ]

let pp ppf t =
  List.iter (fun (k, v) -> Format.fprintf ppf "  %-22s %s@." k v) (rows t);
  match tags t with
  | [] -> ()
  | by_tag ->
      Format.fprintf ppf "  by tag:@.";
      List.iter
        (fun (s : tag_stats) ->
          Format.fprintf ppf "    %-14s live %-12s peak %-12s allocs %d frees %d@."
            s.tag (human_bytes s.live_bytes) (human_bytes s.peak_bytes)
            s.allocs s.frees)
        by_tag

let to_json t =
  let open Json in
  Obj
    [
      ("live_bytes", Num (float_of_int t.live));
      ("peak_bytes", Num (float_of_int t.peak));
      ("alloc_count", Num (float_of_int t.allocs));
      ("free_count", Num (float_of_int t.frees));
      ("view_count", Num (float_of_int t.views));
      ( "tags",
        Arr
          (List.map
             (fun (s : tag_stats) ->
               Obj
                 [
                   ("tag", Str s.tag);
                   ("live_bytes", Num (float_of_int s.live_bytes));
                   ("peak_bytes", Num (float_of_int s.peak_bytes));
                   ("allocs", Num (float_of_int s.allocs));
                   ("frees", Num (float_of_int s.frees));
                 ])
             (tags t)) );
    ]
