type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (string_of_bool v)
  | Num f -> Buffer.add_string b (number_to_string f)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          write b item)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 1024 in
  write b j;
  Buffer.contents b

(* ------------------------------------------------------------- parsing *)

exception Parse_error of string

type parser_state = { src : string; mutable pos : int }

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let fail p msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg p.pos))

let advance p = p.pos <- p.pos + 1

let rec skip_ws p =
  match peek p with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance p;
      skip_ws p
  | _ -> ()

let expect p c =
  match peek p with
  | Some c' when c' = c -> advance p
  | _ -> fail p (Printf.sprintf "expected '%c'" c)

let literal p word value =
  String.iter (fun c -> expect p c) word;
  value

let parse_string_body p =
  let b = Buffer.create 16 in
  let rec loop () =
    match peek p with
    | None -> fail p "unterminated string"
    | Some '"' -> advance p
    | Some '\\' -> (
        advance p;
        match peek p with
        | Some 'n' -> advance p; Buffer.add_char b '\n'; loop ()
        | Some 't' -> advance p; Buffer.add_char b '\t'; loop ()
        | Some 'r' -> advance p; Buffer.add_char b '\r'; loop ()
        | Some 'b' -> advance p; Buffer.add_char b '\b'; loop ()
        | Some 'f' -> advance p; Buffer.add_char b '\012'; loop ()
        | Some 'u' ->
            advance p;
            if p.pos + 4 > String.length p.src then fail p "bad \\u escape";
            let hex = String.sub p.src p.pos 4 in
            p.pos <- p.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail p "bad \\u escape"
            in
            (* BMP only; encode as UTF-8 *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end;
            loop ()
        | Some c -> advance p; Buffer.add_char b c; loop ()
        | None -> fail p "unterminated escape")
    | Some c ->
        advance p;
        Buffer.add_char b c;
        loop ()
  in
  loop ();
  Buffer.contents b

let parse_number p =
  let start = p.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek p with Some c -> is_num_char c | None -> false) do
    advance p
  done;
  let s = String.sub p.src start (p.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> fail p ("bad number " ^ s)

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail p "unexpected end of input"
  | Some '"' ->
      advance p;
      Str (parse_string_body p)
  | Some '{' ->
      advance p;
      skip_ws p;
      if peek p = Some '}' then begin
        advance p;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws p;
          expect p '"';
          let k = parse_string_body p in
          skip_ws p;
          expect p ':';
          let v = parse_value p in
          skip_ws p;
          match peek p with
          | Some ',' ->
              advance p;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance p;
              Obj (List.rev ((k, v) :: acc))
          | _ -> fail p "expected ',' or '}'"
        in
        fields []
      end
  | Some '[' ->
      advance p;
      skip_ws p;
      if peek p = Some ']' then begin
        advance p;
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value p in
          skip_ws p;
          match peek p with
          | Some ',' ->
              advance p;
              items (v :: acc)
          | Some ']' ->
              advance p;
              Arr (List.rev (v :: acc))
          | _ -> fail p "expected ',' or ']'"
        in
        items []
      end
  | Some 't' -> literal p "true" (Bool true)
  | Some 'f' -> literal p "false" (Bool false)
  | Some 'n' -> literal p "null" Null
  | Some _ -> parse_number p

let parse s =
  let p = { src = s; pos = 0 } in
  try
    let v = parse_value p in
    skip_ws p;
    if p.pos <> String.length s then Error "trailing characters"
    else Ok v
  with Parse_error msg -> Error msg

(* ----------------------------------------------------------- accessors *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_list = function Arr items -> Some items | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
