(** Off-heap memory accounting.

    PR 3 moved every tensor payload into [Bigarray] storage, which the OCaml
    GC does not count: [Gc.allocated_bytes] sees only the small proxy
    blocks, so "what is peak tensor memory?" became unanswerable from the
    runtime. This tracker restores the answer. [S4o_tensor.Dense] reports
    every buffer allocation here (and registers a finaliser that reports the
    free when the GC collects the proxy), so live/peak tensor bytes,
    alloc/free counts, and per-tag attribution are available at any point —
    and the device engine samples {!live_bytes} into its {!Recorder} as a
    counter track, making tensor memory visible over time in exported
    Chrome traces.

    Tracking is {e off by default}: a disabled tracker costs one branch per
    allocation and registers no finalisers, so the un-profiled hot path is
    unaffected (covered by the profiler-overhead test). Enable it around a
    profiled region ([s4o_cli profile] does) and read the totals after.

    Thread-safety: mutations take a mutex — allocations happen on the main
    domain, but GC finalisers may run on any {!S4o_tensor.Pool} worker. *)

type t

(** Per-tag attribution slice. *)
type tag_stats = {
  tag : string;
  live_bytes : int;
  peak_bytes : int;
  allocs : int;
  frees : int;
}

(** [create ()] makes a tracker; [~enabled:false] (the default for
    {!global}) makes every recording call a cheap no-op. *)
val create : ?enabled:bool -> unit -> t

val enabled : t -> bool
val set_enabled : t -> bool -> unit

(** The process-wide tracker that [S4o_tensor.Dense] reports into. *)
val global : t

(** {1 Recording} *)

(** [alloc t ~tag bytes] records a [bytes]-byte allocation attributed to
    [tag] (default: the current dynamic tag, see {!with_tag}). *)
val alloc : t -> ?tag:string -> int -> unit

(** [free t ~tag bytes] records a free. Frees are {e not} clamped: the
    caller is trusted to balance its own allocs, which keeps
    [allocs - frees = live] exact (the balance invariant tests pin). *)
val free : t -> ?tag:string -> int -> unit

(** Tracker epoch, bumped by {!reset}. Deferred frees (GC finalisers)
    capture it at allocation time and report through {!free_gen}, which
    drops frees from a previous epoch — a reset cannot drive [live]
    negative via stragglers. *)
val generation : t -> int

val free_gen : t -> gen:int -> ?tag:string -> int -> unit

(** [note_view t] counts a zero-copy aliasing view ([Dense.with_shape]):
    no bytes change hands, but the event is worth counting. *)
val note_view : t -> unit

(** {1 Dynamic tag scope}

    [with_tag t "im2col" f] attributes every allocation made during [f ()]
    (on this domain, without an explicit [~tag]) to ["im2col"]. Nests;
    the default tag is ["tensor"]. *)

val with_tag : t -> string -> (unit -> 'a) -> 'a

val current_tag : t -> string

(** {1 Reading} *)

val live_bytes : t -> int

(** Peak of [live_bytes] since creation or the last {!reset}; [>= live] at
    all times. *)
val peak_bytes : t -> int

val alloc_count : t -> int
val free_count : t -> int
val view_count : t -> int

(** Per-tag slices, ordered by peak bytes descending. *)
val tags : t -> tag_stats list

(** Zero every total and bump {!generation} (pending finaliser frees from
    before the reset are discarded). *)
val reset : t -> unit

(** {1 Rendering} *)

(** [(label, rendered value)] pairs for table output, mirroring
    {!Stats.rows}. *)
val rows : t -> (string * string) list

val pp : Format.formatter -> t -> unit
val to_json : t -> Json.t
