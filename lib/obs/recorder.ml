type track = Host | Device

let track_name = function Host -> "host" | Device -> "device"

type span = {
  name : string;
  cat : string;
  track : track;
  start : float;
  finish : float;
  args : (string * string) list;
}

type event =
  | Span of span
  | Instant of {
      name : string;
      cat : string;
      track : track;
      at : float;
      args : (string * string) list;
    }
  | Counter of { name : string; track : track; at : float; value : float }

type t = {
  mutable events : event list;  (* newest first *)
  mutable n_events : int;
  mutable n_spans : int;
  mutable enabled : bool;
}

let create ?(enabled = true) () =
  { events = []; n_events = 0; n_spans = 0; enabled }

let enabled t = t.enabled
let set_enabled t on = t.enabled <- on

let push t e =
  t.events <- e :: t.events;
  t.n_events <- t.n_events + 1

let span t track ?(cat = "") ?(args = []) name ~start ~finish =
  if t.enabled then begin
    push t (Span { name; cat; track; start; finish; args });
    t.n_spans <- t.n_spans + 1
  end

let instant t track ?(cat = "") ?(args = []) name ~at =
  if t.enabled then push t (Instant { name; cat; track; at; args })

let counter t track name ~at value =
  if t.enabled then push t (Counter { name; track; at; value })

type open_span = {
  o_name : string;
  o_cat : string;
  o_track : track;
  o_start : float;
  o_args : (string * string) list;
}

let begin_span t track ?(cat = "") ?(args = []) name ~at =
  ignore t;
  { o_name = name; o_cat = cat; o_track = track; o_start = at; o_args = args }

let end_span t ?(args = []) o ~at =
  span t o.o_track ~cat:o.o_cat ~args:(o.o_args @ args) o.o_name
    ~start:o.o_start ~finish:at

let events t = List.rev t.events
let spans t = List.filter_map (function Span s -> Some s | _ -> None) (events t)
let span_count t = t.n_spans
let event_count t = t.n_events

let clear t =
  t.events <- [];
  t.n_events <- 0;
  t.n_spans <- 0
