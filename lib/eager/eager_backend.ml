(** The Eager Tensor (§3.2): an implementation of the Tensor API that
    dispatches each operation through an eager {!Runtime} the moment it is
    called. The concrete value is always available host-side (the reference
    kernels compute it synchronously), but the {e simulated} cost honors the
    asynchronous pipeline: only {!S.to_dense} pays the synchronization
    stall. *)

open S4o_tensor

module type RUNTIME = sig
  val rt : Runtime.t
end

module Make (R : RUNTIME) : Backend_intf.S = struct
  module C = S4o_ops.Catalog

  type t = Dense.t

  let name = "eager"
  let of_dense d = d

  let to_dense t =
    Runtime.sync R.rt;
    t

  let shape = Dense.shape
  let run1 op a = Runtime.dispatch R.rt op [| a |]
  let run2 op a b = Runtime.dispatch R.rt op [| a; b |]
  let add a b = run2 (C.add (shape a) (shape b)) a b
  let sub a b = run2 (C.sub (shape a) (shape b)) a b
  let mul a b = run2 (C.mul (shape a) (shape b)) a b
  let div a b = run2 (C.div (shape a) (shape b)) a b
  let neg a = run1 (C.neg (shape a)) a
  let scale c a = run1 (C.scale c (shape a)) a
  let add_scalar c a = run1 (C.add_scalar c (shape a)) a
  let exp a = run1 (C.exp (shape a)) a
  let log a = run1 (C.log (shape a)) a
  let sqrt a = run1 (C.sqrt (shape a)) a
  let relu a = run1 (C.relu (shape a)) a
  let sigmoid a = run1 (C.sigmoid (shape a)) a
  let tanh a = run1 (C.tanh (shape a)) a
  let relu_grad x g = run2 (C.relu_grad (shape x) (shape g)) x g
  let reshape a s = run1 (C.reshape (shape a) s) a
  let transpose a = run1 (C.transpose (shape a)) a
  let broadcast_to a s = run1 (C.broadcast_to (shape a) s) a
  let unbroadcast a s = run1 (C.unbroadcast (shape a) s) a

  let sum_axes ?keep_dims a axes =
    run1 (C.sum_axes ?keep_dims (shape a) axes) a

  let sum_all a = run1 (C.sum_all (shape a)) a
  let mean_all a = run1 (C.mean_all (shape a)) a
  let matmul a b = run2 (C.matmul (shape a) (shape b)) a b
  let batch_matmul a b = run2 (C.batch_matmul (shape a) (shape b)) a b
  let batch_transpose a = run1 (C.batch_transpose (shape a)) a

  let conv2d ?(stride = Backend_intf.default_conv_stride) ~padding a f =
    run2 (C.conv2d ~stride ~padding (shape a) (shape f)) a f

  let conv2d_backward_input ?(stride = Backend_intf.default_conv_stride)
      ~padding ~input_shape f g =
    run2 (C.conv2d_backward_input ~stride ~padding ~input_shape (shape f) (shape g)) f g

  let conv2d_backward_filter ?(stride = Backend_intf.default_conv_stride)
      ~padding ~filter_shape x g =
    run2 (C.conv2d_backward_filter ~stride ~padding ~filter_shape (shape x) (shape g)) x g

  let pool_stride stride ~size =
    Option.value stride ~default:(Backend_intf.default_pool_stride ~size)

  let avg_pool2d ?stride ~size a =
    let stride = pool_stride stride ~size in
    run1 (C.avg_pool2d ~size ~stride (shape a)) a

  let avg_pool2d_backward ?stride ~size ~input_shape g =
    let stride = pool_stride stride ~size in
    run1 (C.avg_pool2d_backward ~size ~stride ~input_shape (shape g)) g

  let max_pool2d ?stride ~size a =
    let stride = pool_stride stride ~size in
    run1 (C.max_pool2d ~size ~stride (shape a)) a

  let max_pool2d_backward ?stride ~size x g =
    let stride = pool_stride stride ~size in
    run2 (C.max_pool2d_backward ~size ~stride (shape x) (shape g)) x g

  let softmax a = run1 (C.softmax (shape a)) a
  let log_softmax a = run1 (C.log_softmax (shape a)) a
end
