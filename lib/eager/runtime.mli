(** The eager ("define-by-run") runtime of §3.2, modeled on TensorFlow Eager:
    every Tensor operation is dispatched op-by-op to a pre-compiled kernel on
    the simulated accelerator. Dispatch costs host time (the per-op overhead
    that Table 3 shows dominating small-kernel workloads); kernels execute
    asynchronously, so the host "runs ahead and fills a pipeline" until the
    program observes a Tensor's contents.

    Each dispatch is recorded as a host-track span (op name, attrs, flops)
    on the engine's {!S4o_obs.Recorder}, overlapping the device-track kernel
    span the engine records — the §3.2 pipeline is directly visible in a
    Chrome-trace export. *)

type t

(** [create ?dispatch_overhead engine]: [dispatch_overhead] is the simulated
    host seconds consumed per dispatched op (runtime-dependent — the S4TF
    eager runtime's is high; an optimized native eager like PyTorch's is
    lower). *)
val create : ?dispatch_overhead:float -> S4o_device.Engine.t -> t

val engine : t -> S4o_device.Engine.t

(** Execute one catalog op: charge dispatch overhead, enqueue the kernel, and
    compute its value with the reference kernel. *)
val dispatch : t -> S4o_ops.Catalog.op -> S4o_tensor.Dense.t array -> S4o_tensor.Dense.t

(** Block the (simulated) host until the device pipeline drains — what
    observing a Tensor's contents does. *)
val sync : t -> unit

(** {1 Statistics — the unified surface}

    Both runtimes expose the same pair: a full {!S4o_obs.Stats.t} snapshot
    and a reset. *)

val stats : t -> S4o_obs.Stats.t

(** Zero all counters, clocks, metrics, and the recorded timeline. *)
val reset_stats : t -> unit

(** Simulated host seconds so far. *)
val host_time : t -> float
