module Engine = S4o_device.Engine
module Recorder = S4o_obs.Recorder
module Metrics = S4o_obs.Metrics

type t = {
  engine : Engine.t;
  dispatch_overhead : float;
  ops : Metrics.counter;
}

(* Default per-op host overhead of the S4TF eager runtime, calibrated to the
   Table 3 regime (op-by-op dispatch through a dynamic runtime). *)
let default_dispatch_overhead = 120e-6

let create ?(dispatch_overhead = default_dispatch_overhead) engine =
  {
    engine;
    dispatch_overhead;
    ops = Metrics.counter (Engine.metrics engine) "eager.ops_dispatched";
  }

let engine t = t.engine

let dispatch t (op : S4o_ops.Catalog.op) args =
  let start = Engine.host_time t.engine in
  Engine.spend_host t.engine t.dispatch_overhead;
  ignore (Engine.dispatch t.engine op.info);
  Recorder.span (Engine.recorder t.engine) Recorder.Host ~cat:"dispatch"
    ~args:
      (("flops", string_of_int op.info.S4o_device.Op_info.flops)
      :: (if op.attrs = "" then [] else [ ("attrs", op.attrs) ]))
    op.name ~start
    ~finish:(Engine.host_time t.engine);
  Metrics.incr t.ops;
  op.kernel args

let sync t = Engine.sync t.engine

let stats t =
  {
    (Engine.stats t.engine) with
    S4o_obs.Stats.ops_dispatched = Metrics.counter_value t.ops;
  }

let reset_stats t = Engine.reset t.engine
let host_time t = Engine.host_time t.engine
