(** The training loop of Figure 7: forward, loss, pullback seeded with 1,
    in-place optimizer update — and, on the lazy backend, an automatic
    [LazyTensorBarrier()] after the optimizer step (§3.4: "a training-loop
    library can automatically call LazyTensorBarrier() after the optimizer
    update step on behalf of the user"), injected here as the [after_step]
    hook so the loop itself stays backend-agnostic. *)

open S4o_tensor

module Make (Bk : Backend_intf.S) = struct
  module L = Layer.Make (Bk)
  module Opt = Optimizer.Make (Bk)

  type step_result = {
    loss : L.D.t;  (** Still lazy on the lazy backend. *)
    logits : L.D.t;
  }

  (** One training step: does {e not} observe any tensor contents, so on the
      lazy backend the entire step (forward, backward, update) stays in one
      trace. *)
  let step model opt ~images ~labels =
    let ctx = L.D.new_ctx () in
    let logits = L.apply model ctx (L.D.const (Bk.of_dense images)) in
    let loss =
      L.D.softmax_cross_entropy ~labels:(Bk.of_dense labels) logits
    in
    L.D.backward ctx loss;
    opt.Opt.step ();
    { loss; logits }

  (** As {!step}, but with backend tensors already on device (used by the
      timing benchmarks, where images are placeholders). *)
  let step_on_device model opt ~images ~labels =
    let ctx = L.D.new_ctx () in
    let logits = L.apply model ctx (L.D.const images) in
    let loss = L.D.softmax_cross_entropy ~labels logits in
    L.D.backward ctx loss;
    opt.Opt.step ();
    { loss; logits }

  (** Batched inference entry point (the serving path): one forward pass
      with no tape or optimizer state. Does {e not} observe the result, so
      on the lazy backend the whole batch stays one pending trace — the
      serving runtime cuts it with a barrier, keeping each bucketed batch
      shape a single cache-able program. *)
  let predict model images =
    let ctx = L.D.new_ctx () in
    L.D.value (L.apply model ctx (L.D.const images))

  type epoch_stats = { mean_loss : float; accuracy : float }

  let accuracy_of_logits logits (labels : int array) =
    let probs = Bk.to_dense logits in
    let pred = Dense.argmax_rows probs in
    let correct = ref 0 in
    Array.iteri (fun i p -> if p = labels.(i) then incr correct) pred;
    float_of_int !correct /. float_of_int (Array.length labels)

  (** Full supervised training over pre-batched data.
      [after_step] receives the updated parameters plus the loss each step —
      the lazy backend's barrier hook. *)
  let fit ?(after_step = fun (_ : Bk.t list) -> ()) ?(epochs = 1)
      ?(log = fun (_ : int) (_ : epoch_stats) -> ()) model opt batches =
    let final = ref { mean_loss = Float.nan; accuracy = 0.0 } in
    for epoch = 1 to epochs do
      let losses = ref [] in
      let correct = ref 0 and total = ref 0 in
      List.iter
        (fun (images, one_hot, labels) ->
          let r = step model opt ~images ~labels:one_hot in
          after_step (L.D.value r.loss :: Opt.updated_params opt);
          let loss_value = Dense.item (Bk.to_dense (L.D.value r.loss)) in
          losses := loss_value :: !losses;
          let batch_acc = accuracy_of_logits (L.D.value r.logits) labels in
          correct := !correct + int_of_float (batch_acc *. float_of_int (Array.length labels));
          total := !total + Array.length labels)
        batches;
      let mean_loss =
        let l = !losses in
        List.fold_left ( +. ) 0.0 l /. float_of_int (max 1 (List.length l))
      in
      let stats =
        { mean_loss; accuracy = float_of_int !correct /. float_of_int (max 1 !total) }
      in
      final := stats;
      log epoch stats
    done;
    !final
end
