(** Simulated accelerator specifications and the roofline cost model.

    A kernel's device time is the classic roofline:
    [max(flops / sustained_flops, bytes / mem_bandwidth) + kernel_launch].
    The listed rates are {e sustained, calibrated} rates — they fold real-world
    efficiency into one number so that the simulated results land in the same
    regime as the paper's measured hardware (see DESIGN.md, substitutions
    table). Contractions (matmul/conv) typically run compute-bound; the long
    tails of small elementwise kernels run launch- and bandwidth-bound, which
    is exactly why fusion pays off (§3.3). *)

type t = {
  name : string;
  sustained_flops : float;  (** FLOP/s achievable by contraction kernels. *)
  elementwise_flops : float;
      (** FLOP/s achievable by non-contraction kernels (usually lower: such
          kernels cannot use the matrix units). *)
  mem_bandwidth : float;  (** bytes/s *)
  kernel_launch : float;  (** seconds of fixed per-kernel device cost *)
  memory_capacity : int;  (** bytes of device memory *)
}

let kernel_time spec (op : Op_info.t) =
  let peak =
    match op.kind with
    | Contraction -> spec.sustained_flops
    | Fused _ -> spec.sustained_flops
    | Elementwise | Reduction | Data_movement -> spec.elementwise_flops
  in
  let compute = float_of_int op.flops /. peak in
  let memory = float_of_int (op.bytes_in + op.bytes_out) /. spec.mem_bandwidth in
  Float.max compute memory +. spec.kernel_launch

(** A commodity NVIDIA GTX 1080-class GPU (Table 3). *)
let gtx1080 =
  {
    name = "sim-gtx1080";
    sustained_flops = 1.47e12;
    (* of 8.9 TFLOPS peak: sustained on small CIFAR-sized conv kernels *)
    elementwise_flops = 1.0e12;
    mem_bandwidth = 300e9;
    kernel_launch = 6e-6;
    memory_capacity = 8 * 1024 * 1024 * 1024;
  }

(** One TPUv3 core (Tables 1–2). Sustained rate calibrated so a ResNet-50
    training step lands near the paper's ~630 examples/s/core. *)
let tpu_v3_core =
  {
    name = "sim-tpuv3-core";
    sustained_flops = 18.0e12;
    elementwise_flops = 3.0e12;
    mem_bandwidth = 900e9;
    kernel_launch = 2e-6;
    memory_capacity = 16 * 1024 * 1024 * 1024;
  }

(** A mobile-phone CPU core (Pixel-3 class, Table 4). No NEON vectorization,
    matching the paper's note that the Swift compiler could not emit NEON for
    this model. *)
let mobile_cpu =
  {
    name = "sim-mobile-cpu";
    sustained_flops = 2.0e9;
    elementwise_flops = 1.5e9;
    mem_bandwidth = 8e9;
    kernel_launch = 1e-7;
    memory_capacity = 4 * 1024 * 1024 * 1024;
  }

(** A desktop CPU core, used by the naive backend when a device is needed. *)
let desktop_cpu =
  {
    name = "sim-desktop-cpu";
    sustained_flops = 50e9;
    elementwise_flops = 20e9;
    mem_bandwidth = 30e9;
    kernel_launch = 5e-8;
    memory_capacity = 32 * 1024 * 1024 * 1024;
  }

let all = [ gtx1080; tpu_v3_core; mobile_cpu; desktop_cpu ]

let of_name s =
  let strip s = match String.index_opt s '-' with
    | Some i when String.sub s 0 i = "sim" ->
        String.sub s (i + 1) (String.length s - i - 1)
    | _ -> s
  in
  let canon s =
    String.map (function '_' -> '-' | c -> c) (String.lowercase_ascii (strip s))
  in
  let wanted = canon s in
  List.find_opt (fun spec -> canon spec.name = wanted) all
