module Recorder = S4o_obs.Recorder
module Metrics = S4o_obs.Metrics

type t = {
  spec : Device_spec.t;
  recorder : Recorder.t;
  metrics : Metrics.t;
  depth_hist : Metrics.histogram;
  mutable host : float;
  mutable device_ready : float;
  mutable kernels : int;
  mutable busy : float;
  mutable stalled : float;
  mutable max_depth : float;
  mutable live : int;
  mutable peak : int;
}

let create ?recorder spec =
  let recorder =
    match recorder with Some r -> r | None -> Recorder.create ()
  in
  let metrics = Metrics.create () in
  {
    spec;
    recorder;
    metrics;
    depth_hist = Metrics.histogram metrics "engine.pipeline_depth_seconds";
    host = 0.0;
    device_ready = 0.0;
    kernels = 0;
    busy = 0.0;
    stalled = 0.0;
    max_depth = 0.0;
    live = 0;
    peak = 0;
  }

let spec t = t.spec
let recorder t = t.recorder
let metrics t = t.metrics
let host_time t = t.host
let device_ready_at t = t.device_ready
let spend_host t dt = t.host <- t.host +. dt

let with_host_span t ?cat ?args name f =
  let sp = Recorder.begin_span t.recorder Recorder.Host ?cat ?args name ~at:t.host in
  let r = f () in
  Recorder.end_span t.recorder sp ~at:t.host;
  r

let dispatch t (op : Op_info.t) =
  let time = Device_spec.kernel_time t.spec op in
  let start = Float.max t.host t.device_ready in
  t.device_ready <- start +. time;
  t.kernels <- t.kernels + 1;
  t.busy <- t.busy +. time;
  let depth = t.device_ready -. t.host in
  if depth > t.max_depth then t.max_depth <- depth;
  Metrics.observe t.depth_hist depth;
  Recorder.span t.recorder Recorder.Device ~cat:"kernel"
    ~args:
      [
        ("kind", Op_info.kind_name op.kind);
        ("flops", string_of_int op.flops);
        ("bytes_in", string_of_int op.bytes_in);
        ("bytes_out", string_of_int op.bytes_out);
      ]
    op.name ~start ~finish:t.device_ready;
  Recorder.counter t.recorder Recorder.Device "pipeline_depth" ~at:t.host depth;
  (* When off-heap tensor tracking is on, sample it alongside every
     dispatch so the exported trace carries a live-memory counter track
     aligned with the kernel timeline. *)
  let mem = S4o_obs.Memory.global in
  if S4o_obs.Memory.enabled mem then
    Recorder.counter t.recorder Recorder.Host "tensor_live_bytes" ~at:t.host
      (float_of_int (S4o_obs.Memory.live_bytes mem));
  t.device_ready

let sync t =
  if t.device_ready > t.host then begin
    Recorder.span t.recorder Recorder.Host ~cat:"stall" "sync" ~start:t.host
      ~finish:t.device_ready;
    t.stalled <- t.stalled +. (t.device_ready -. t.host);
    t.host <- t.device_ready
  end

let pipeline_depth t = Float.max 0.0 (t.device_ready -. t.host)
let kernels_launched t = t.kernels
let device_busy_time t = t.busy
let host_stall_time t = t.stalled
let max_pipeline_depth t = t.max_depth
let live_bytes t = t.live
let peak_bytes t = t.peak

let alloc t bytes =
  t.live <- t.live + bytes;
  if t.live > t.peak then t.peak <- t.live

let free t bytes = t.live <- max 0 (t.live - bytes)

let stats t =
  {
    S4o_obs.Stats.zero with
    S4o_obs.Stats.kernels_launched = t.kernels;
    host_seconds = t.host;
    device_busy_seconds = t.busy;
    host_stall_seconds = t.stalled;
    max_pipeline_depth = t.max_depth;
    live_bytes = t.live;
    peak_bytes = t.peak;
    spans_recorded = Recorder.span_count t.recorder;
    tensor_live_bytes = S4o_obs.Memory.live_bytes S4o_obs.Memory.global;
    tensor_peak_bytes = S4o_obs.Memory.peak_bytes S4o_obs.Memory.global;
    tensor_allocs = S4o_obs.Memory.alloc_count S4o_obs.Memory.global;
    tensor_frees = S4o_obs.Memory.free_count S4o_obs.Memory.global;
  }

let reset t =
  t.host <- 0.0;
  t.device_ready <- 0.0;
  t.kernels <- 0;
  t.busy <- 0.0;
  t.stalled <- 0.0;
  t.max_depth <- 0.0;
  Metrics.reset t.metrics;
  Recorder.clear t.recorder
