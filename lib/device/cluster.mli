(** A synchronous data-parallel accelerator cluster (Table 1's TPUv3 pods).

    Each of [n] cores executes the same per-step program on its own shard of
    the global batch, then all cores synchronously all-reduce the gradients.
    The all-reduce uses the standard ring model: each core sends and receives
    [2 (n-1)/n * bytes] over its link, plus a per-hop latency term — so the
    communication time grows slowly with cluster size, which is what erodes
    per-core throughput from 635 to 607 examples/s between 16 and 128 cores
    in the paper. *)

type t

(** Per-step compute jitter applied to the slowest core — synchronous
    training runs at the speed of the slowest participant. This is the
    default for {!create}'s [?straggler]: 2.5%, scaled down with cluster
    size inside {!step_time} so Table 1's per-core erosion stays modest. *)
val default_straggler : float

(** [create ?link_bandwidth ?hop_latency ?straggler ~cores spec]:
    [straggler] (default {!default_straggler}) is the per-step compute
    jitter factor of the slowest core; pass [0.0] for an idealized
    jitter-free cluster. Raises [Invalid_argument] if negative. *)
val create :
  ?link_bandwidth:float ->
  ?hop_latency:float ->
  ?straggler:float ->
  cores:int ->
  Device_spec.t ->
  t

val cores : t -> int

(** The straggler jitter factor this cluster was created with. *)
val straggler_factor : t -> float

(** Ring all-reduce time for a gradient payload of the given size. *)
val all_reduce_time : t -> bytes:int -> float

(** [step_time t ~compute ~host ~gradient_bytes] is the wall time of one
    synchronous training step: the slowest core's compute plus the
    all-reduce, overlapped-free (conservative, as in lockstep SPMD), plus the
    per-step host-side time (tracing, cache lookup, input pipeline). *)
val step_time : t -> compute:float -> host:float -> gradient_bytes:int -> float
