(** Simulated accelerator specifications and the roofline cost model.

    A kernel's device time is the classic roofline —
    [max(flops / rate, bytes / bandwidth) + launch] — where the rate is the
    contraction rate for matmul/conv/fused kernels and the (lower)
    elementwise rate otherwise. The listed rates are {e sustained,
    calibrated} values: they fold real-world kernel efficiency into one
    number so the simulated results land in the same regime as the paper's
    hardware (see DESIGN.md's substitution table and EXPERIMENTS.md's
    calibration notes). *)

type t = {
  name : string;
  sustained_flops : float;  (** FLOP/s for contraction and fused kernels. *)
  elementwise_flops : float;
      (** FLOP/s for non-contraction kernels (no matrix units). *)
  mem_bandwidth : float;  (** bytes/s *)
  kernel_launch : float;  (** seconds of fixed per-kernel device cost *)
  memory_capacity : int;  (** bytes of device memory *)
}

(** Roofline time of one kernel on this device. *)
val kernel_time : t -> Op_info.t -> float

(** A commodity NVIDIA GTX 1080-class GPU (Table 3). *)
val gtx1080 : t

(** One TPUv3 core (Tables 1–2). *)
val tpu_v3_core : t

(** A Pixel-3-class mobile CPU core (Table 4). *)
val mobile_cpu : t

(** A desktop CPU core, the default when a device is needed but timing is
    not under study. *)
val desktop_cpu : t

(** Every built-in spec, for enumeration in drivers. *)
val all : t list

(** Look a built-in spec up by name. Case-insensitive; the ["sim-"] prefix
    and [_]/[-] distinctions are optional, so ["gtx1080"], ["tpu-v3-core"]
    and ["sim-desktop-cpu"] all resolve. *)
val of_name : string -> t option
