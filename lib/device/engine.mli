(** A simulated asynchronous accelerator.

    §3.2: kernels are "dispatched to the accelerator to execute
    asynchronously and control is returned to the user's program before the
    kernel finishes"; as long as no Tensor contents are observed, "the user's
    program runs ahead and fills a pipeline of accelerator kernel
    invocations".

    The engine keeps two simulated clocks: the {e host} clock (advanced by
    dispatch overheads, tracing, compilation) and the {e device} clock (the
    time at which the device will have drained its kernel queue). Dispatching
    costs host time and enqueues device time; {!sync} advances the host clock
    to the device's completion time — the "observe a Tensor" stall.

    Every engine owns the observability plumbing for its simulated stack: an
    {!S4o_obs.Recorder} (kernel spans on the device track, sync stalls on
    the host track; runtimes add their own spans against the same clocks)
    and an {!S4o_obs.Metrics} registry shared by the layers above. *)

type t

(** [create ?recorder spec] — pass [recorder] to share one timeline across
    several engines; by default each engine records into its own. *)
val create : ?recorder:S4o_obs.Recorder.t -> Device_spec.t -> t

val spec : t -> Device_spec.t

(** The event recorder keyed to this engine's simulated clocks. *)
val recorder : t -> S4o_obs.Recorder.t

(** The metrics registry shared by every layer running on this engine. *)
val metrics : t -> S4o_obs.Metrics.t

(** Current simulated host time (seconds). *)
val host_time : t -> float

(** Simulated time at which all queued kernels finish. *)
val device_ready_at : t -> float

(** Advance the host clock only (dispatch overhead, tracing, compiling...). *)
val spend_host : t -> float -> unit

(** [with_host_span t name f] runs [f] and records a host-track span from the
    host clock at entry to the host clock at exit — the idiom for annotating
    work that advances the clock via {!spend_host}. *)
val with_host_span :
  t -> ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** [dispatch t op] charges the kernel to the device queue: the kernel starts
    when both the host has issued it and the device is free. Records a
    device-track span and samples the pipeline depth. Returns the kernel's
    simulated completion time. *)
val dispatch : t -> Op_info.t -> float

(** Block the host until the device queue drains (recorded as a host-track
    ["sync"] stall span when it actually waits). *)
val sync : t -> unit

(** How far ahead of the host the device queue currently reaches — the
    pipeline depth in seconds. *)
val pipeline_depth : t -> float

(** {1 Statistics} *)

(** Engine-level slice of the unified snapshot (runtime-level fields are
    zero; the runtimes fill them in their own [stats]). *)
val stats : t -> S4o_obs.Stats.t

val kernels_launched : t -> int
val device_busy_time : t -> float
val host_stall_time : t -> float

(** Deepest the device queue ever ran ahead of the host, in seconds. *)
val max_pipeline_depth : t -> float

(** Bytes of device memory currently attributed to live allocations; tracked
    explicitly by the runtimes via {!alloc} and {!free}. *)
val live_bytes : t -> int

val peak_bytes : t -> int
val alloc : t -> int -> unit
val free : t -> int -> unit

(** Reset clocks, statistics, metrics, and the recorded timeline
    (allocations persist). *)
val reset : t -> unit
