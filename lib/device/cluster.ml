type t = {
  cores : int;
  spec : Device_spec.t;
  link_bandwidth : float;
  hop_latency : float;
  straggler : float;
}

let default_straggler = 0.025

let create ?(link_bandwidth = 25e9) ?(hop_latency = 30e-6)
    ?(straggler = default_straggler) ~cores spec =
  if cores < 1 then invalid_arg "Cluster.create: need at least one core";
  if straggler < 0.0 then
    invalid_arg "Cluster.create: straggler must be non-negative";
  { cores; spec; link_bandwidth; hop_latency; straggler }

let cores t = t.cores
let straggler_factor t = t.straggler

let all_reduce_time t ~bytes =
  if t.cores = 1 then 0.0
  else begin
    let n = float_of_int t.cores in
    let volume = 2.0 *. (n -. 1.0) /. n *. float_of_int bytes in
    (volume /. t.link_bandwidth) +. (2.0 *. (n -. 1.0) *. t.hop_latency)
  end

let step_time t ~compute ~host ~gradient_bytes =
  let slowest = compute *. (1.0 +. (t.straggler *. Float.log (float_of_int t.cores) /. Float.log 2.0 /. 7.0)) in
  Float.max host (slowest +. all_reduce_time t ~bytes:gradient_bytes)
