open S4o_tensor

type compile_stats = {
  input_nodes : int;
  optimized_nodes : int;
  clusters : int;
  compile_seconds : float;
}

type executable = {
  graph : Hlo.graph;  (* optimized *)
  clusters : Opt.cluster list;  (* topological order *)
  n_params : int;
  stats : compile_stats;
}

(* Simulated JIT cost: a fixed front-end charge plus a per-node charge. The
   constants are calibrated so compiling a ResNet-scale trace costs a large
   multiple of one training step — the regime that makes the trace cache
   essential (§3.4). *)
let compile_base_seconds = 0.050
let compile_per_node_seconds = 0.0015

let compile ?engine g =
  let input_nodes = Hlo.size g in
  let optimized, _ = Opt.optimize g in
  let clusters = Opt.fuse optimized in
  let compile_seconds =
    compile_base_seconds +. (compile_per_node_seconds *. float_of_int input_nodes)
  in
  Option.iter
    (fun e ->
      S4o_device.Engine.with_host_span e ~cat:"compile"
        ~args:
          [
            ("input_nodes", string_of_int input_nodes);
            ("clusters", string_of_int (List.length clusters));
          ]
        "xla-compile"
        (fun () -> S4o_device.Engine.spend_host e compile_seconds))
    engine;
  let n_params = List.length (Hlo.params optimized) in
  {
    graph = optimized;
    clusters;
    n_params;
    stats =
      {
        input_nodes;
        optimized_nodes = Hlo.size optimized;
        clusters = List.length clusters;
        compile_seconds;
      };
  }

let stats exe = exe.stats

let estimated_run_time spec exe =
  List.fold_left
    (fun acc (c : Opt.cluster) ->
      acc +. S4o_device.Device_spec.kernel_time spec c.info)
    0.0 exe.clusters

let run exe engine feeds =
  if Array.length feeds < exe.n_params then
    invalid_arg
      (Format.sprintf "Compiler.run: %d feeds for %d parameters"
         (Array.length feeds) exe.n_params);
  let values : (int, Dense.t) Hashtbl.t = Hashtbl.create 64 in
  let eval_node (n : Hlo.node) =
    let v =
      match n.role with
      | Hlo.Param i -> feeds.(i)
      | Hlo.Literal v -> v
      | Hlo.Compute ->
          n.kernel
            (Array.of_list
               (List.map (fun (i : Hlo.node) -> Hashtbl.find values i.id) n.inputs))
    in
    Hashtbl.replace values n.id v
  in
  (* Parameters and literals first (no device cost beyond what tracing paid),
     then each fused cluster as one dispatched kernel. *)
  List.iter
    (fun (n : Hlo.node) ->
      match n.role with
      | Hlo.Param _ | Hlo.Literal _ -> eval_node n
      | Hlo.Compute -> ())
    exe.graph.Hlo.nodes;
  List.iter
    (fun (c : Opt.cluster) ->
      List.iter eval_node c.members;
      ignore (S4o_device.Engine.dispatch engine c.info))
    exe.clusters;
  Array.of_list
    (List.map (fun (o : Hlo.node) -> Hashtbl.find values o.id) exe.graph.Hlo.outputs)

let simulate exe engine =
  List.iter
    (fun (c : Opt.cluster) -> ignore (S4o_device.Engine.dispatch engine c.info))
    exe.clusters

let peak_memory ?(donated = []) exe =
  let bytes (n : Hlo.node) = S4o_device.Op_info.bytes_of_shape n.shape in
  (* Remaining-consumer counts for intermediates. *)
  let remaining : (int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (n : Hlo.node) ->
      List.iter
        (fun (i : Hlo.node) ->
          Hashtbl.replace remaining i.id
            (1 + Option.value ~default:0 (Hashtbl.find_opt remaining i.id)))
        n.inputs)
    exe.graph.Hlo.nodes;
  let output_ids = List.map (fun (o : Hlo.node) -> o.id) exe.graph.Hlo.outputs in
  (* Parameters (and literals) are resident for the whole execution. *)
  let resident =
    List.fold_left
      (fun acc (n : Hlo.node) ->
        match n.role with
        | Hlo.Param _ | Hlo.Literal _ -> acc + bytes n
        | Hlo.Compute -> acc)
      0 exe.graph.Hlo.nodes
  in
  (* Donated parameter buffers may be reused for a shape-matching output, so
     that output costs nothing extra (input–output aliasing). *)
  let donated_shapes =
    List.filter_map
      (fun (n : Hlo.node) ->
        match n.role with
        | Hlo.Param i when List.mem i donated -> Some n.shape
        | _ -> None)
      exe.graph.Hlo.nodes
  in
  let live = ref resident in
  let peak = ref resident in
  let aliases_remaining = ref donated_shapes in
  List.iter
    (fun (n : Hlo.node) ->
      match n.role with
      | Hlo.Param _ | Hlo.Literal _ -> ()
      | Hlo.Compute ->
          let is_output = List.mem n.id output_ids in
          let aliased =
            is_output
            && begin
                 match
                   List.partition (fun s -> Shape.equal s n.shape) !aliases_remaining
                 with
                 | matching :: rest_matching, rest ->
                     aliases_remaining := rest_matching @ rest;
                     ignore matching;
                     true
                 | [], _ -> false
               end
          in
          if not aliased then begin
            live := !live + bytes n;
            if !live > !peak then peak := !live
          end;
          (* free operands whose last consumer this was *)
          List.iter
            (fun (i : Hlo.node) ->
              match i.role with
              | Hlo.Compute ->
                  let r = Hashtbl.find remaining i.id - 1 in
                  Hashtbl.replace remaining i.id r;
                  if r = 0 && not (List.mem i.id output_ids) then
                    live := !live - bytes i
              | Hlo.Param _ | Hlo.Literal _ -> ())
            n.inputs)
    exe.graph.Hlo.nodes;
  !peak
