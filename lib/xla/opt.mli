(** Optimization passes of the domain-specific compiler: common-subexpression
    elimination, constant folding, dead-code elimination, and the pass the
    paper leans on for §3.3's performance claims — operation fusion.

    All passes are graph → graph; nodes are immutable so rewrites substitute
    bottom-up. *)

(** Called with the pass name and its output graph after every pass
    ([cse]/[constant_fold]/[dead_code_elim], and hence after each pass
    inside {!optimize}). Checked mode ([S4o_analysis.Checked.enable])
    installs the HLO checker here; the default is a no-op. *)
val post_pass_hook : (string -> Hlo.graph -> unit) ref

(** Merge structurally identical nodes (same op, attributes, operands). *)
val cse : Hlo.graph -> Hlo.graph

(** Evaluate compute nodes whose operands are all literals. *)
val constant_fold : Hlo.graph -> Hlo.graph

(** Drop nodes unreachable from the outputs. *)
val dead_code_elim : Hlo.graph -> Hlo.graph

(** One fusion cluster. [root_first] lists members in topological order. *)
type cluster = { members : Hlo.node list; info : S4o_device.Op_info.t }

(** Greedy producer-consumer fusion: elementwise, data-movement and reduction
    nodes merge into the cluster of one of their compute operands, so chains
    like [conv → bias-add → relu] become one kernel. Contractions root their
    own clusters; parameters and literals stay outside. The returned clusters
    partition the compute nodes in topological order, and each cluster's
    {!S4o_device.Op_info.t} charges only the cluster's {e external} memory
    traffic — the fusion saving. *)
val fuse : Hlo.graph -> cluster list

(** [optimize g] runs cse → constant folding → dce, in that order, to a
    bounded fixed point, and returns the optimized graph plus pass
    statistics. *)
val optimize : Hlo.graph -> Hlo.graph * (string * int) list
