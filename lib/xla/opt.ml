open S4o_tensor

(* Rewrite a graph bottom-up: [rewrite n inputs'] sees the node with its
   already-rewritten operands and returns the replacement. *)
let map_graph (g : Hlo.graph) (rewrite : Hlo.node -> Hlo.node list -> Hlo.node) =
  let subst : (int, Hlo.node) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (n : Hlo.node) ->
      let inputs' = List.map (fun (i : Hlo.node) -> Hashtbl.find subst i.id) n.inputs in
      let n' =
        if List.for_all2 (fun (a : Hlo.node) b -> a.id = b.Hlo.id) n.inputs inputs'
        then rewrite n n.inputs
        else rewrite { n with inputs = inputs' } inputs'
      in
      Hashtbl.add subst n.id n')
    g.nodes;
  Hlo.graph_of_outputs
    (List.map (fun (o : Hlo.node) -> Hashtbl.find subst o.id) g.outputs)

let literal_value (n : Hlo.node) =
  match n.role with Literal v -> Some v | Compute | Param _ -> None

(* Checked mode installs the HLO checker here; called with the pass name
   and its output graph after every pass. *)
let post_pass_hook : (string -> Hlo.graph -> unit) ref = ref (fun _ _ -> ())

let checked name g =
  !post_pass_hook name g;
  g

let cse g =
  let seen : (string, Hlo.node) Hashtbl.t = Hashtbl.create 64 in
  checked "cse"
  @@ map_graph g (fun n inputs ->
      let key =
        Format.asprintf "%s|%s|%a|%s" n.op_name n.attrs Shape.pp n.shape
          (String.concat ","
             (List.map (fun (i : Hlo.node) -> string_of_int i.id) inputs))
      in
      match n.role with
      | Param _ -> n
      | Literal v -> begin
          (* Literals participate keyed by contents. [hash_contents] reads a
             bounded prefix of the buffer in place — no per-literal array
             copy per CSE pass — so the [Dense.equal] confirm below stays
             load-bearing for literals that agree on the prefix. *)
          let key = key ^ "#" ^ string_of_int (Dense.hash_contents v) in
          match Hashtbl.find_opt seen key with
          | Some prior
            when Option.fold ~none:false
                   ~some:(fun pv -> Dense.equal pv v)
                   (literal_value prior) ->
              prior
          | Some _ | None ->
              Hashtbl.replace seen key n;
              n
        end
      | Compute -> begin
          match Hashtbl.find_opt seen key with
          | Some prior -> prior
          | None ->
              Hashtbl.add seen key n;
              n
        end)

let constant_fold g =
  checked "constant_fold"
  @@ map_graph g (fun n inputs ->
      match n.role with
      | Param _ | Literal _ -> n
      | Compute ->
          let values = List.map literal_value inputs in
          if inputs <> [] && List.for_all Option.is_some values then
            Hlo.literal (n.kernel (Array.of_list (List.map Option.get values)))
          else n)

let dead_code_elim g =
  checked "dead_code_elim" (Hlo.graph_of_outputs g.Hlo.outputs)

type cluster = { members : Hlo.node list; info : S4o_device.Op_info.t }

let fusible (n : Hlo.node) =
  match (n.role, n.info.S4o_device.Op_info.kind) with
  | (Param _ | Literal _), _ -> false
  | Compute, (S4o_device.Op_info.Elementwise | Reduction | Data_movement) -> true
  | Compute, (S4o_device.Op_info.Contraction | Fused _) -> false

let is_compute (n : Hlo.node) =
  match n.role with Compute -> true | Param _ | Literal _ -> false

let fuse (g : Hlo.graph) =
  (* cluster id per node id; clusters accumulate members in reverse topo *)
  let cluster_of : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let members : (int, Hlo.node list) Hashtbl.t = Hashtbl.create 64 in
  let fresh = ref 0 in
  let new_cluster n =
    let c = !fresh in
    incr fresh;
    Hashtbl.add cluster_of n.Hlo.id c;
    Hashtbl.add members c [ n ]
  in
  let join n c =
    Hashtbl.add cluster_of n.Hlo.id c;
    Hashtbl.replace members c (n :: Hashtbl.find members c)
  in
  List.iter
    (fun (n : Hlo.node) ->
      if is_compute n then
        if fusible n then begin
          (* Join the newest (largest-id) operand cluster. Cluster ids are
             assigned in topological order and a node always lands in a
             cluster with id >= all of its operands' clusters, so every
             cross-cluster edge points from a lower id to a higher id: the
             cluster DAG is acyclic by construction and creation order is a
             valid schedule. This fuses conv → bn (its whole diamond) → relu
             → residual-add chains into single kernels, as XLA's loop fusion
             does. *)
          let operand_clusters =
            List.filter_map
              (fun (i : Hlo.node) ->
                if is_compute i then Some (Hashtbl.find cluster_of i.id) else None)
              n.inputs
          in
          match List.fold_left (fun acc c -> max acc c) (-1) operand_clusters with
          | -1 -> new_cluster n
          | c -> join n c
        end
        else new_cluster n)
    g.nodes;
  (* Build per-cluster cost info, charging only external memory traffic. *)
  let in_same_cluster a b =
    match (Hashtbl.find_opt cluster_of a, Hashtbl.find_opt cluster_of b) with
    | Some ca, Some cb -> ca = cb
    | _, _ -> false
  in
  let consumers : (int, Hlo.node list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (n : Hlo.node) ->
      List.iter
        (fun (i : Hlo.node) ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt consumers i.id) in
          Hashtbl.replace consumers i.id (n :: prev))
        n.inputs)
    g.nodes;
  let output_ids = List.map (fun (o : Hlo.node) -> o.id) g.outputs in
  let cluster_list =
    List.init !fresh (fun c -> List.rev (Hashtbl.find members c))
  in
  List.map
    (fun ms ->
      let member_ids = List.map (fun (m : Hlo.node) -> m.Hlo.id) ms in
      let external_in =
        (* distinct operands produced outside the cluster *)
        let seen = Hashtbl.create 8 in
        List.fold_left
          (fun acc (m : Hlo.node) ->
            List.fold_left
              (fun acc (i : Hlo.node) ->
                if (not (List.mem i.id member_ids)) && not (Hashtbl.mem seen i.id)
                then begin
                  Hashtbl.add seen i.id ();
                  acc + S4o_device.Op_info.bytes_of_shape i.shape
                end
                else acc)
              acc m.inputs)
          0 ms
      in
      let external_out =
        List.fold_left
          (fun acc (m : Hlo.node) ->
            let escapes =
              List.mem m.id output_ids
              || List.exists
                   (fun (c : Hlo.node) -> not (in_same_cluster m.id c.id))
                   (Option.value ~default:[] (Hashtbl.find_opt consumers m.id))
            in
            if escapes then acc + S4o_device.Op_info.bytes_of_shape m.shape
            else acc)
          0 ms
      in
      let info =
        match ms with
        | [ single ] -> single.Hlo.info
        | _ ->
            S4o_device.Op_info.fused
              ~members:(List.map (fun (m : Hlo.node) -> m.Hlo.info) ms)
              ~external_in_bytes:external_in ~external_out_bytes:external_out
      in
      { members = ms; info })
    cluster_list

let optimize g =
  let stats = ref [] in
  let record name before after =
    stats := (name, before - after) :: !stats
  in
  let rec go g budget =
    let n0 = Hlo.size g in
    let g = cse g in
    let n1 = Hlo.size g in
    record "cse" n0 n1;
    let g = constant_fold g in
    let g = dead_code_elim g in
    let n2 = Hlo.size g in
    record "fold+dce" n1 n2;
    if n2 < n0 && budget > 0 then go g (budget - 1) else g
  in
  let g' = go g 4 in
  (g', List.rev !stats)
