(** An HLO-like graph intermediate representation — the target of LazyTensor
    tracing (§3.3) and the input of the domain-specific compiler.

    Nodes are immutable, hash-consed-by-construction DAG vertices. Each node
    carries: the semantic operation name and attribute string (used for CSE
    and for trace fingerprinting), the output shape, cost metadata
    ({!S4o_device.Op_info.t}), and a kernel closure giving the operation's
    semantics on {!S4o_tensor.Dense} values. Parameters are fed at execution
    time; literals are embedded constants. *)

open S4o_tensor

type node = {
  id : int;
  op_name : string;
  attrs : string;  (** Semantics-affecting parameters, e.g. stride/padding. *)
  shape : Shape.t;
  info : S4o_device.Op_info.t;
  inputs : node list;
  kernel : Dense.t array -> Dense.t;
  role : role;
}

and role =
  | Compute
  | Param of int  (** Fed at execution; the int is the parameter position. *)
  | Literal of Dense.t

let counter = ref 0

let next_id () =
  incr counter;
  !counter

let param ~index ~shape =
  {
    id = next_id ();
    op_name = "parameter";
    attrs = string_of_int index;
    shape;
    info =
      {
        S4o_device.Op_info.name = "parameter";
        kind = S4o_device.Op_info.Data_movement;
        flops = 0;
        bytes_in = 0;
        bytes_out = 0;
      };
    inputs = [];
    kernel = (fun _ -> invalid_arg "parameter node has no kernel");
    role = Param index;
  }

let literal value =
  {
    id = next_id ();
    op_name = "constant";
    attrs = "";
    shape = Dense.shape value;
    info =
      {
        S4o_device.Op_info.name = "constant";
        kind = S4o_device.Op_info.Data_movement;
        flops = 0;
        bytes_in = 0;
        bytes_out = S4o_device.Op_info.bytes_of_shape (Dense.shape value);
      };
    inputs = [];
    kernel = (fun _ -> value);
    role = Literal value;
  }

let op ~name ?(attrs = "") ~shape ~info ~inputs ~kernel () =
  { id = next_id (); op_name = name; attrs; shape; info; inputs; kernel; role = Compute }

(** {1 Graphs} *)

type graph = { outputs : node list; nodes : node list  (** topological order *) }

(** Topologically sort all nodes reachable from the outputs. *)
let graph_of_outputs outputs =
  let visited = Hashtbl.create 64 in
  let order = ref [] in
  let rec visit n =
    if not (Hashtbl.mem visited n.id) then begin
      Hashtbl.add visited n.id ();
      List.iter visit n.inputs;
      order := n :: !order
    end
  in
  List.iter visit outputs;
  { outputs; nodes = List.rev !order }

let size g = List.length g.nodes

let params g =
  List.filter_map
    (fun n -> match n.role with Param i -> Some (i, n) | Compute | Literal _ -> None)
    g.nodes
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd

(** Structural fingerprint: identical traces (same ops, attributes, shapes,
    topology) produce the same fingerprint regardless of node identity —
    the key of the XLA-program cache (§3.4). *)
let fingerprint g =
  let renumber = Hashtbl.create 64 in
  List.iteri (fun i n -> Hashtbl.add renumber n.id i) g.nodes;
  let h = ref 0 in
  let mix v = h := (!h * 1000003) lxor v in
  List.iter
    (fun n ->
      mix (Hashtbl.hash n.op_name);
      mix (Hashtbl.hash n.attrs);
      mix (Shape.hash n.shape);
      (match n.role with
      | Param i -> mix (i + 17)
      | Literal v -> mix (Dense.hash_contents v)
      | Compute -> mix 3);
      List.iter (fun i -> mix (Hashtbl.find renumber i.id)) n.inputs)
    g.nodes;
  mix (List.length g.outputs);
  List.iter (fun o -> mix (Hashtbl.find renumber o.id)) g.outputs;
  !h

(** {1 Rendering (Figure 4)} *)

let pp_node ppf n =
  let ins = String.concat ", " (List.map (fun i -> Format.sprintf "%%%d" i.id) n.inputs) in
  let attrs = if n.attrs = "" then "" else Format.sprintf " {%s}" n.attrs in
  Format.fprintf ppf "%%%d = %s%s(%s) : %s" n.id n.op_name attrs ins
    (Shape.to_string n.shape)

let pp_graph ppf g =
  Format.fprintf ppf "HLO graph (%d nodes):@." (size g);
  List.iter (fun n -> Format.fprintf ppf "  %a@." pp_node n) g.nodes;
  Format.fprintf ppf "  outputs: %s"
    (String.concat ", " (List.map (fun o -> Format.sprintf "%%%d" o.id) g.outputs))

let to_string g = Format.asprintf "%a" pp_graph g

(** GraphViz rendering of the trace DAG, as in Figure 4. *)
let to_dot ?(name = "trace") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Format.sprintf "digraph %s {\n  rankdir=TB;\n" name);
  List.iter
    (fun n ->
      let color =
        match n.role with
        | Param _ -> "lightblue"
        | Literal _ -> "lightgray"
        | Compute -> (
            match n.info.S4o_device.Op_info.kind with
            | S4o_device.Op_info.Contraction -> "lightsalmon"
            | _ -> "white")
      in
      Buffer.add_string buf
        (Format.sprintf
           "  n%d [label=\"%s\\n%s\", style=filled, fillcolor=%s];\n" n.id
           n.op_name
           (Shape.to_string n.shape)
           color);
      List.iter
        (fun i -> Buffer.add_string buf (Format.sprintf "  n%d -> n%d;\n" i.id n.id))
        n.inputs)
    g.nodes;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
