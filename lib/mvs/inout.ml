(** The [inout] story of §4.2 and Appendix A.

    Appendix A (Figure 8) shows that a call taking [inout] parameters can be
    rewritten as a pure call returning the updated values — [inout] is a
    unique borrow, not a reference. Both forms are given here; the test suite
    checks they agree, the OCaml analogue of the figure's "both programs
    print 3 true".

    §4.2's training-loop application: with a
    [(Model, Minibatch) -> Model] update, two full copies of the parameters
    are live at the peak; with [(inout Model, Minibatch) -> Void] only one.
    {!functional_update} and {!inplace_update} implement the two shapes over
    tensor parameter lists so the ablation benchmark can measure peak bytes
    for each. *)

open S4o_tensor

(** Figure 8, left: the [inout] form ([x] is uniquely borrowed). *)
let inc_inout (x : int ref) =
  x := !x + 1;
  !x < 10

(** Figure 8, right: the equivalent pass-by-value form. *)
let inc_value (x0 : int) =
  let x = x0 + 1 in
  (x, x < 10)

(** {1 Model updates} *)

type model = Dense.t array

let bytes_of_model (m : model) =
  Array.fold_left (fun acc t -> acc + (8 * Dense.numel t)) 0 m

(** [(Model, grads) -> Model]: allocates a complete second model — both the
    old and new parameters are live until the caller drops the old one.
    The fresh parameter is built with copy + axpy rather than
    [sub p (scale lr g)], which would additionally allocate a scaled-gradient
    temporary per layer: the measured contrast with {!inplace_update} is then
    purely the second model copy that pass-by-value semantics require. *)
let functional_update (m : model) (grads : model) ~lr : model =
  Array.mapi
    (fun i p ->
      let fresh = Dense.copy p in
      Dense.axpy_inplace ~alpha:(-.lr) fresh grads.(i);
      fresh)
    m

(** [(inout Model, grads) -> Void]: updates the uniquely-borrowed parameters
    in place; no second copy ever exists. *)
let inplace_update (m : model) (grads : model) ~lr : unit =
  Array.iteri (fun i p -> Dense.axpy_inplace ~alpha:(-.lr) p grads.(i)) m

(** A synthetic large dense model for the §4.2 ablation. *)
let synthetic_model rng ~layers ~width : model =
  Array.init layers (fun _ -> Dense.rand_normal rng ~stddev:0.01 [| width; width |])
