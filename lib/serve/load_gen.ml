(** Deterministic arrival processes for the load generator.

    All randomness flows through the splittable SplitMix64 {!S4o_tensor.Prng},
    so a (process, seed) pair always produces the identical arrival trace —
    sweeps are reproducible run to run and machine to machine. *)

type process =
  | Uniform of { rate : float }
      (** Deterministic spacing: one arrival every [1/rate] seconds. *)
  | Poisson of { rate : float }
      (** Memoryless open-loop traffic: exponential inter-arrival gaps with
          mean [1/rate]. *)
  | Bursty of { rate : float; burst : int }
      (** Flash-crowd traffic: groups of [burst] simultaneous arrivals,
          groups spaced by exponential gaps with mean [burst/rate], so the
          long-run offered rate still averages [rate]. *)

let rate = function
  | Uniform { rate } | Poisson { rate } | Bursty { rate; _ } -> rate

let name = function
  | Uniform _ -> "uniform"
  | Poisson _ -> "poisson"
  | Bursty _ -> "bursty"

let validate p =
  if rate p <= 0.0 then invalid_arg "Load_gen: rate must be positive";
  match p with
  | Bursty { burst; _ } when burst < 1 ->
      invalid_arg "Load_gen: burst must be at least 1"
  | _ -> ()

(* Exponential variate with the given mean; 1 -. u keeps the log argument in
   (0, 1]. *)
let exponential rng ~mean = -.mean *. Float.log (1.0 -. S4o_tensor.Prng.float rng)

(** [arrivals p ~seed ~n] returns [n] non-decreasing arrival times starting
    at the first gap after t = 0. *)
let arrivals p ~seed ~n =
  validate p;
  if n < 0 then invalid_arg "Load_gen.arrivals: n must be non-negative";
  let rng = S4o_tensor.Prng.create seed in
  let times = Array.make n 0.0 in
  (match p with
  | Uniform { rate } ->
      let gap = 1.0 /. rate in
      for i = 0 to n - 1 do
        times.(i) <- float_of_int (i + 1) *. gap
      done
  | Poisson { rate } ->
      let t = ref 0.0 in
      for i = 0 to n - 1 do
        t := !t +. exponential rng ~mean:(1.0 /. rate);
        times.(i) <- !t
      done
  | Bursty { rate; burst } ->
      let t = ref 0.0 in
      let i = ref 0 in
      while !i < n do
        t := !t +. exponential rng ~mean:(float_of_int burst /. rate);
        let members = min burst (n - !i) in
        for _ = 1 to members do
          times.(!i) <- !t;
          incr i
        done
      done);
  times
