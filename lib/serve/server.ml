(** The serving runtime: a discrete-event loop over the simulated clock that
    admits requests, coalesces them into padded batches, schedules batches
    onto replicas, and sheds load when the deployment saturates.

    Two event sources drive the loop: the next request arrival (open-loop
    traces from {!Load_gen}, or closed-loop clients paced by their own
    completions) and the next batch-fire instant (queue full, or the oldest
    request's wait hitting the effective batch timeout, gated on a replica
    being free). Ties admit the arrival first so a just-arrived request can
    join the firing batch.

    Admission control is a bounded queue: arrivals beyond [queue_capacity]
    are rejected on the spot. At batch formation, requests whose deadline
    already passed are shed rather than executed (they would complete late
    anyway and steal capacity from requests that can still make it). When
    the queue length crosses [degrade_watermark] the server enters degraded
    mode and multiplies the batch timeout by [degrade_factor] — trading
    batching efficiency for queueing delay until the backlog drains to half
    the watermark (hysteresis, so the mode does not flap). *)

module Engine = S4o_device.Engine
module Recorder = S4o_obs.Recorder
module Metrics = S4o_obs.Metrics

type policy = Least_loaded | Round_robin

let policy_name = function
  | Least_loaded -> "least-loaded"
  | Round_robin -> "round-robin"

let policy_of_string = function
  | "least-loaded" | "ll" -> Some Least_loaded
  | "round-robin" | "rr" -> Some Round_robin
  | _ -> None

type config = {
  model : Model.kind;
  strategy : Replica.strategy;
  spec : S4o_device.Device_spec.t;
  replicas : int;
  max_batch : int;
  batch_timeout : float;
  buckets : int list option;  (** [None]: powers of two up to [max_batch]. *)
  queue_capacity : int;
  slo : float;  (** Per-request deadline, seconds after arrival. *)
  policy : policy;
  degrade_watermark : int;  (** Queue length that enters degraded mode. *)
  degrade_factor : float;  (** Timeout multiplier while degraded, in [0,1]. *)
  warmup : bool;
      (** Run one batch per bucket on every replica before opening to
          traffic, so steady-state requests never eat a JIT compile (50+ ms
          simulated). [false] measures cold-start behaviour. *)
  record : bool;  (** Record full timelines (off for sweeps). *)
}

let default_config ?(model = Model.Lenet) ?(strategy = Replica.lazy_tensor)
    ?(spec = S4o_device.Device_spec.gtx1080) ?(replicas = 2) ?(max_batch = 8)
    ?(batch_timeout = 1e-3) ?buckets ?(queue_capacity = 64) ?(slo = 20e-3)
    ?(policy = Least_loaded) ?degrade_watermark ?(degrade_factor = 0.25)
    ?(warmup = true) ?(record = true) () =
  let degrade_watermark =
    match degrade_watermark with
    | Some w -> w
    | None -> Stdlib.max 1 (queue_capacity / 2)
  in
  {
    model;
    strategy;
    spec;
    replicas;
    max_batch;
    batch_timeout;
    buckets;
    queue_capacity;
    slo;
    policy;
    degrade_watermark;
    degrade_factor;
    warmup;
    record;
  }

let validate cfg =
  if cfg.replicas < 1 then invalid_arg "Server: need at least one replica";
  if cfg.queue_capacity < 1 then
    invalid_arg "Server: queue_capacity must be >= 1";
  if cfg.slo <= 0.0 then invalid_arg "Server: slo must be positive";
  if cfg.degrade_watermark < 1 then
    invalid_arg "Server: degrade_watermark must be >= 1";
  if cfg.degrade_factor < 0.0 || cfg.degrade_factor > 1.0 then
    invalid_arg "Server: degrade_factor must be in [0, 1]"

type workload =
  | Open_loop of { process : Load_gen.process; requests : int; seed : int }
      (** Arrivals ignore the server's state — the saturation probe. *)
  | Closed_loop of { clients : int; think : float; requests : int; seed : int }
      (** Each client re-issues [think] seconds after its response (shed
          counts as an immediate error response). Think times are jittered
          per-client from [seed] so clients do not march in lockstep. *)

type t = {
  config : config;
  stats : Serve_stats.t;
  server_recorder : Recorder.t;
  replica_recorders : (string * Recorder.t) list;
  metrics : Metrics.t;
}

let stats t = t.stats
let metrics t = t.metrics

(** ["server"] first, then one process per replica — feed to
    {!S4o_obs.Chrome_trace.processes_to_file} for a side-by-side timeline. *)
let recorders t = ("server", t.server_recorder) :: t.replica_recorders

let run ?(on_complete = fun (_ : Request.t) ~latency:(_ : float) -> ())
    (cfg : config) workload =
  validate cfg;
  (match workload with
  | Open_loop { requests; _ } ->
      if requests < 0 then invalid_arg "Server.run: requests must be >= 0"
  | Closed_loop { clients; think; requests; _ } ->
      if clients < 1 then invalid_arg "Server.run: need at least one client";
      if think < 0.0 then invalid_arg "Server.run: think must be >= 0";
      if requests < 0 then invalid_arg "Server.run: requests must be >= 0");
  let server_rec = Recorder.create ~enabled:cfg.record () in
  let replicas =
    Array.init cfg.replicas (fun id ->
        Replica.create ~record:cfg.record ~id ~spec:cfg.spec cfg.strategy
          cfg.model)
  in
  let batcher =
    Batcher.create ?buckets:cfg.buckets ~max_batch:cfg.max_batch
      ~timeout:cfg.batch_timeout ()
  in
  let metrics = Metrics.create () in
  let lat_h = Metrics.histogram metrics "serve.latency_seconds" in
  let wait_h = Metrics.histogram metrics "serve.queue_wait_seconds" in
  let occ_h = Metrics.histogram metrics "serve.batch_occupancy" in
  let c_offered = Metrics.counter metrics "serve.offered" in
  let c_completed = Metrics.counter metrics "serve.completed" in
  let c_rejected = Metrics.counter metrics "serve.shed_rejected" in
  let c_expired = Metrics.counter metrics "serve.shed_expired" in
  let c_violations = Metrics.counter metrics "serve.slo_violations" in
  let c_padded = Metrics.counter metrics "serve.padded_slots" in

  (* Pre-warm: run one batch per bucket on every replica so each bucketed
     shape is traced and compiled before traffic arrives. Arrivals are
     shifted past the warmup, so steady-state metrics are clean; the compile
     cost shows up as [warmup_seconds] (and as warmup-time cache misses). *)
  let sum_over f = Array.fold_left (fun acc r -> acc + f r) 0 replicas in
  let warmup_end =
    if not cfg.warmup then 0.0
    else begin
      Array.iter
        (fun r ->
          List.iter
            (fun b -> ignore (Replica.run_batch r ~now:(Replica.free_at r) ~batch:b))
            (Batcher.buckets batcher))
        replicas;
      let finish =
        Array.fold_left
          (fun acc r -> Stdlib.max acc (Replica.free_at r))
          0.0 replicas
      in
      let span =
        Recorder.begin_span server_rec Recorder.Host ~cat:"serve"
          ~args:
            [ ("buckets", string_of_int (List.length (Batcher.buckets batcher))) ]
          "warmup" ~at:0.0
      in
      Recorder.end_span server_rec span ~at:finish;
      finish
    end
  in
  let warmup_batches = sum_over Replica.batches in

  let now = ref warmup_end in
  let last_completion = ref warmup_end in
  let degraded = ref false in
  let degraded_since = ref 0.0 in
  let degraded_total = ref 0.0 in
  let rr_cursor = ref 0 in
  let next_id = ref 0 in

  (* Arrival sources. Open loop: a precomputed trace. Closed loop: each
     client's next issue instant, re-paced by its completions. *)
  let total_requests =
    match workload with
    | Open_loop { requests; _ } | Closed_loop { requests; _ } -> requests
  in
  let open_trace =
    match workload with
    | Open_loop { process; requests; seed } ->
        Array.map
          (fun t -> t +. warmup_end)
          (Load_gen.arrivals process ~seed ~n:requests)
    | Closed_loop _ -> [||]
  in
  let open_idx = ref 0 in
  let issued = ref 0 in
  let client_next =
    match workload with
    | Closed_loop { clients; seed; _ } ->
        (* Stagger first issues uniformly in [0, think] (or [0, 1ms] when
           think = 0) so the run does not start with a synchronized burst. *)
        let rng = S4o_tensor.Prng.create seed in
        let think =
          match workload with
          | Closed_loop { think; _ } -> Stdlib.max think 1e-3
          | Open_loop _ -> assert false
        in
        Array.init clients (fun _ ->
            warmup_end +. S4o_tensor.Prng.uniform rng ~lo:0.0 ~hi:think)
    | Open_loop _ -> [||]
  in
  let think_rng =
    match workload with
    | Closed_loop { seed; _ } -> Some (S4o_tensor.Prng.create (seed lxor 0x5eed))
    | Open_loop _ -> None
  in
  (* Jittered think time: +-20% around the nominal, deterministic. *)
  let next_think think =
    match think_rng with
    | Some rng when think > 0.0 ->
        S4o_tensor.Prng.uniform rng ~lo:(0.8 *. think) ~hi:(1.2 *. think)
    | _ -> think
  in
  let repace client ~at =
    match workload with
    | Closed_loop { think; _ } when client >= 0 ->
        client_next.(client) <- at +. next_think think
    | _ -> ()
  in
  let peek_arrival () =
    match workload with
    | Open_loop _ ->
        if !open_idx < Array.length open_trace then
          Some (open_trace.(!open_idx), -1)
        else None
    | Closed_loop _ ->
        if !issued >= total_requests then None
        else begin
          (* argmin over the (few) clients' next-issue instants *)
          let b = ref 0 in
          Array.iteri
            (fun i t -> if t < client_next.(!b) then b := i)
            client_next;
          if client_next.(!b) = Float.infinity then
            None  (* every client is blocked on an in-flight request *)
          else Some (client_next.(!b), !b)
        end
  in
  let pop_arrival () =
    match peek_arrival () with
    | None -> assert false
    | Some (at, client) ->
        (match workload with
        | Open_loop _ -> incr open_idx
        | Closed_loop _ ->
            incr issued;
            (* Until the response comes back (or the request is shed), the
               client is blocked: push its next issue out of reach. *)
            client_next.(client) <- Float.infinity);
        incr next_id;
        Request.create ~client ~id:!next_id ~arrival:at ~slo:cfg.slo ()
  in

  let sample_queue () =
    Recorder.counter server_rec Recorder.Host "queue_len" ~at:!now
      (float_of_int (Batcher.length batcher))
  in
  let effective_timeout () =
    if !degraded then cfg.batch_timeout *. cfg.degrade_factor
    else cfg.batch_timeout
  in
  let update_degraded () =
    let q = Batcher.length batcher in
    if (not !degraded) && q >= cfg.degrade_watermark then begin
      degraded := true;
      degraded_since := !now;
      Recorder.instant server_rec Recorder.Host ~cat:"serve"
        ~args:[ ("queue", string_of_int q) ]
        "degrade-enter" ~at:!now
    end
    else if !degraded && 2 * q <= cfg.degrade_watermark then begin
      degraded := false;
      degraded_total := !degraded_total +. (!now -. !degraded_since);
      Recorder.instant server_rec Recorder.Host ~cat:"serve"
        ~args:[ ("queue", string_of_int q) ]
        "degrade-exit" ~at:!now
    end
  in

  let admit req =
    Metrics.incr c_offered;
    if Batcher.length batcher >= cfg.queue_capacity then begin
      Metrics.incr c_rejected;
      Recorder.instant server_rec Recorder.Host ~cat:"serve"
        ~args:[ ("id", string_of_int req.Request.id) ]
        "shed-rejected" ~at:!now;
      repace req.Request.client ~at:!now
    end
    else begin
      Batcher.enqueue batcher req;
      sample_queue ()
    end;
    update_degraded ()
  in

  let pick_replica () =
    match cfg.policy with
    | Round_robin -> replicas.(!rr_cursor mod cfg.replicas)
    | Least_loaded ->
        Array.fold_left
          (fun best r ->
            if Replica.free_at r < Replica.free_at best then r else best)
          replicas.(0) replicas
  in

  let dispatch rep =
    (match cfg.policy with
    | Round_robin -> incr rr_cursor
    | Least_loaded -> ());
    let expired = Batcher.shed_expired batcher ~now:!now in
    List.iter
      (fun (r : Request.t) ->
        Metrics.incr c_expired;
        Recorder.instant server_rec Recorder.Host ~cat:"serve"
          ~args:[ ("id", string_of_int r.Request.id) ]
          "shed-expired" ~at:!now;
        repace r.Request.client ~at:!now)
      expired;
    let batch = Batcher.take batcher in
    sample_queue ();
    update_degraded ();
    match batch with
    | [] -> ()  (* everything pending had expired *)
    | oldest :: _ ->
        let n = List.length batch in
        let padded = Batcher.bucket_for batcher n in
        Metrics.incr c_padded ~by:(padded - n);
        Metrics.observe occ_h (float_of_int n);
        (* The real data-plane step: materialize the padded input tensor the
           replica's model shape calls for (request payloads in the leading
           rows, zero padding behind them). *)
        let row_shape =
          let s = Model.input_shape cfg.model ~batch:1 in
          Array.sub s 1 (Array.length s - 1)
        in
        let assembled = Batcher.assemble ~bucket:padded ~row:row_shape batch in
        let assembled_bytes = 8 * S4o_tensor.Dense.numel assembled in
        let span =
          Recorder.begin_span server_rec Recorder.Host ~cat:"serve"
            ~args:
              [
                ("requests", string_of_int n);
                ("padded", string_of_int padded);
                ("assembled_bytes", string_of_int assembled_bytes);
                ("replica", string_of_int (Replica.id rep));
              ]
            "batch-assembly" ~at:oldest.Request.arrival
        in
        Recorder.end_span server_rec span ~at:!now;
        let completion = Replica.run_batch rep ~now:!now ~batch:padded in
        last_completion := Stdlib.max !last_completion completion;
        List.iter
          (fun (r : Request.t) ->
            let latency = completion -. r.Request.arrival in
            Metrics.incr c_completed;
            Metrics.observe lat_h latency;
            Metrics.observe wait_h (!now -. r.Request.arrival);
            if completion > r.Request.deadline then Metrics.incr c_violations;
            on_complete r ~latency;
            repace r.Request.client ~at:completion)
          batch
  in

  (* The event loop: interleave arrivals and batch firings in simulated-time
     order until both sources are exhausted. *)
  let rec loop () =
    let arrival = peek_arrival () in
    let firing =
      if Batcher.is_empty batcher then None
      else begin
        let rep = pick_replica () in
        let ready = Stdlib.max !now (Replica.free_at rep) in
        let at =
          if Batcher.is_full batcher then ready
          else
            match Batcher.fire_deadline batcher ~timeout:(effective_timeout ()) with
            | Some d -> Stdlib.max ready d
            | None -> ready
        in
        Some (at, rep)
      end
    in
    match (arrival, firing) with
    | Some (at, _), Some (fire_at, _) when at <= fire_at ->
        now := Stdlib.max !now at;
        admit (pop_arrival ());
        loop ()
    | _, Some (fire_at, rep) ->
        now := Stdlib.max !now fire_at;
        dispatch rep;
        loop ()
    | Some (at, _), None ->
        now := Stdlib.max !now at;
        admit (pop_arrival ());
        loop ()
    | None, None -> ()
  in
  loop ();
  if !degraded then degraded_total := !degraded_total +. (!now -. !degraded_since);

  (* Duration is the traffic interval — warmup is reported separately. *)
  let duration = Stdlib.max !last_completion !now -. warmup_end in
  let completed = Metrics.counter_value c_completed in
  let batches = sum_over Replica.batches - warmup_batches in
  let lat = Metrics.summary lat_h in
  let wait = Metrics.summary wait_h in
  let stats : Serve_stats.t =
    {
      model = Model.name cfg.model;
      strategy = Replica.strategy_name cfg.strategy;
      policy = policy_name cfg.policy;
      replicas = cfg.replicas;
      max_batch = cfg.max_batch;
      offered = Metrics.counter_value c_offered;
      completed;
      shed_rejected = Metrics.counter_value c_rejected;
      shed_expired = Metrics.counter_value c_expired;
      slo_violations = Metrics.counter_value c_violations;
      batches;
      padded_slots = Metrics.counter_value c_padded;
      mean_occupancy =
        (if batches = 0 then 0.0
         else float_of_int completed /. float_of_int batches);
      duration;
      throughput =
        (if duration <= 0.0 then 0.0
         else float_of_int completed /. duration);
      latency_mean = lat.Metrics.mean;
      latency_p50 = lat.Metrics.p50;
      latency_p90 = lat.Metrics.p90;
      latency_p99 = lat.Metrics.p99;
      latency_max = lat.Metrics.max;
      queue_wait_mean = wait.Metrics.mean;
      queue_wait_p99 = wait.Metrics.p99;
      warmup_seconds = warmup_end;
      degraded_seconds = !degraded_total;
      cache_hits = sum_over Replica.cache_hits;
      cache_misses = sum_over Replica.cache_misses;
      compiled_programs = sum_over Replica.compiled_programs;
      peak_tensor_bytes = S4o_obs.Memory.peak_bytes S4o_obs.Memory.global;
    }
  in
  {
    config = cfg;
    stats;
    server_recorder = server_rec;
    replica_recorders =
      Array.to_list
        (Array.map
           (fun r ->
             ( Printf.sprintf "replica-%d" (Replica.id r),
               Engine.recorder (Replica.engine r) ))
           replicas);
    metrics;
  }

let config t = t.config
