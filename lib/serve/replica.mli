(** A serving replica: private engine + runtime, running padded batches
    either on a live lazy stack or by op-by-op replay of the captured
    forward graph (see the .ml header). *)

type strategy = Lazy_tensor | Op_by_op of S4o_frameworks.Strategy.t

val lazy_tensor : strategy
val eager : strategy
val pytorch_like : strategy
val strategy_name : strategy -> string

(** Recognises ["lazy"], ["eager"], ["pytorch"]. *)
val strategy_of_string : string -> strategy option

type t

(** [create ?record ~id ~spec strategy kind]. [record:false] builds the
    replica on a disabled recorder — sweeps stay cheap; single runs keep
    full timelines for Chrome-trace export. *)
val create :
  ?record:bool -> id:int -> spec:S4o_device.Device_spec.t ->
  strategy -> Model.kind -> t

val id : t -> int
val engine : t -> S4o_device.Engine.t

(** Simulated time at which the replica next idles (0 before any batch). *)
val free_at : t -> float

val batches : t -> int

(** Padded slots executed; [slots - completed] over all replicas is the
    padding overhead. *)
val slots : t -> int

(** Lazy path: compiled-program cache hits/misses; zero on the replay path. *)
val cache_hits : t -> int

val cache_misses : t -> int

(** Distinct compiled programs (lazy) or captured graphs (replay) — bounded
    by the bucket count when shape bucketing works. *)
val compiled_programs : t -> int

(** [run_batch t ~now ~batch] runs one padded batch dispatched at simulated
    time [now >= free_at t]; returns the completion time. Raises
    [Invalid_argument] if the replica is still busy at [now]. *)
val run_batch : t -> now:float -> batch:int -> float
