(** Deterministic open-loop arrival processes (closed-loop pacing lives in
    {!Server}, because it depends on completion times). *)

type process =
  | Uniform of { rate : float }
  | Poisson of { rate : float }
  | Bursty of { rate : float; burst : int }

(** Long-run offered rate, requests per simulated second. *)
val rate : process -> float

val name : process -> string

(** Raises [Invalid_argument] on a non-positive rate or burst. *)
val validate : process -> unit

(** [arrivals p ~seed ~n]: [n] non-decreasing simulated arrival times,
    identical for identical inputs. *)
val arrivals : process -> seed:int -> n:int -> float array
