(** One-snapshot summary of a serving run. *)

type t = {
  model : string;
  strategy : string;
  policy : string;
  replicas : int;
  max_batch : int;
  offered : int;
  completed : int;
  shed_rejected : int;
  shed_expired : int;
  slo_violations : int;
  batches : int;
  padded_slots : int;
  mean_occupancy : float;
  duration : float;
  throughput : float;
  latency_mean : float;
  latency_p50 : float;
  latency_p90 : float;
  latency_p99 : float;
  latency_max : float;
  queue_wait_mean : float;
  queue_wait_p99 : float;
  warmup_seconds : float;
  degraded_seconds : float;
  cache_hits : int;
  cache_misses : int;
  compiled_programs : int;
  peak_tensor_bytes : int;
      (** Peak off-heap tensor bytes over the run ({!S4o_obs.Memory.global});
          zero unless memory tracking was enabled. *)
}

(** Total requests shed (admission + expiry). *)
val shed : t -> int

(** Fraction of offered requests shed; 0 when nothing was offered. *)
val shed_rate : t -> float

(** Fraction of completed requests that missed their deadline. *)
val violation_rate : t -> float

(** Label/value pairs for tabular reports. *)
val rows : t -> (string * string) list

val pp : Format.formatter -> t -> unit
val to_json : t -> S4o_obs.Json.t
