(** The serving counterpart of {!S4o_obs.Stats}: one snapshot summarising a
    whole serving run — request accounting, latency quantiles, throughput,
    shedding, batching efficiency, and the lazy cache behaviour that shape
    bucketing is supposed to produce. *)

type t = {
  model : string;
  strategy : string;
  policy : string;
  replicas : int;
  max_batch : int;
  offered : int;  (** Requests presented to admission control. *)
  completed : int;
  shed_rejected : int;  (** Dropped at admission: bounded queue full. *)
  shed_expired : int;  (** Dropped at batch formation: deadline passed. *)
  slo_violations : int;  (** Completed, but after their deadline. *)
  batches : int;
  padded_slots : int;  (** Executed slots beyond real occupancy. *)
  mean_occupancy : float;  (** Real requests per executed batch. *)
  duration : float;  (** Makespan: last completion or last event. *)
  throughput : float;  (** Completed requests per simulated second. *)
  latency_mean : float;
  latency_p50 : float;
  latency_p90 : float;
  latency_p99 : float;
  latency_max : float;
  queue_wait_mean : float;
  queue_wait_p99 : float;
  warmup_seconds : float;  (** Pre-traffic JIT warmup (0 when disabled). *)
  degraded_seconds : float;  (** Simulated time spent in degraded mode. *)
  cache_hits : int;
  cache_misses : int;
  compiled_programs : int;  (** Across replicas; bounded by buckets. *)
  peak_tensor_bytes : int;  (** Peak off-heap tensor bytes (0 if untracked). *)
}

let shed t = t.shed_rejected + t.shed_expired

let shed_rate t =
  if t.offered = 0 then 0.0 else float_of_int (shed t) /. float_of_int t.offered

let violation_rate t =
  if t.completed = 0 then 0.0
  else float_of_int t.slo_violations /. float_of_int t.completed

let ms v = Printf.sprintf "%.3f ms" (1e3 *. v)

let rows t =
  [
    ("model", t.model);
    ("strategy", t.strategy);
    ("policy", t.policy);
    ("replicas", string_of_int t.replicas);
    ("max batch", string_of_int t.max_batch);
    ("offered", string_of_int t.offered);
    ("completed", string_of_int t.completed);
    ("shed (queue full)", string_of_int t.shed_rejected);
    ("shed (expired)", string_of_int t.shed_expired);
    ("shed rate", Printf.sprintf "%.1f%%" (100.0 *. shed_rate t));
    ("SLO violations", string_of_int t.slo_violations);
    ("batches", string_of_int t.batches);
    ("mean occupancy", Printf.sprintf "%.2f" t.mean_occupancy);
    ("padded slots", string_of_int t.padded_slots);
    ("throughput", Printf.sprintf "%.0f req/s" t.throughput);
    ("latency p50", ms t.latency_p50);
    ("latency p90", ms t.latency_p90);
    ("latency p99", ms t.latency_p99);
    ("latency max", ms t.latency_max);
    ("queue wait mean", ms t.queue_wait_mean);
    ("queue wait p99", ms t.queue_wait_p99);
    ("warmup", Printf.sprintf "%.3f s" t.warmup_seconds);
    ("degraded time", Printf.sprintf "%.3f s" t.degraded_seconds);
    ("cache hits", string_of_int t.cache_hits);
    ("cache misses", string_of_int t.cache_misses);
    ("compiled programs", string_of_int t.compiled_programs);
    ("peak tensor bytes", string_of_int t.peak_tensor_bytes);
  ]

let pp ppf t =
  List.iter (fun (k, v) -> Format.fprintf ppf "%-18s %s@." k v) (rows t)

let to_json t =
  let open S4o_obs.Json in
  Obj
    [
      ("model", Str t.model);
      ("strategy", Str t.strategy);
      ("policy", Str t.policy);
      ("replicas", Num (float_of_int t.replicas));
      ("max_batch", Num (float_of_int t.max_batch));
      ("offered", Num (float_of_int t.offered));
      ("completed", Num (float_of_int t.completed));
      ("shed_rejected", Num (float_of_int t.shed_rejected));
      ("shed_expired", Num (float_of_int t.shed_expired));
      ("shed_rate", Num (shed_rate t));
      ("slo_violations", Num (float_of_int t.slo_violations));
      ("batches", Num (float_of_int t.batches));
      ("padded_slots", Num (float_of_int t.padded_slots));
      ("mean_occupancy", Num t.mean_occupancy);
      ("duration_seconds", Num t.duration);
      ("throughput_rps", Num t.throughput);
      ("latency_mean_seconds", Num t.latency_mean);
      ("latency_p50_seconds", Num t.latency_p50);
      ("latency_p90_seconds", Num t.latency_p90);
      ("latency_p99_seconds", Num t.latency_p99);
      ("latency_max_seconds", Num t.latency_max);
      ("queue_wait_mean_seconds", Num t.queue_wait_mean);
      ("queue_wait_p99_seconds", Num t.queue_wait_p99);
      ("warmup_seconds", Num t.warmup_seconds);
      ("degraded_seconds", Num t.degraded_seconds);
      ("cache_hits", Num (float_of_int t.cache_hits));
      ("cache_misses", Num (float_of_int t.cache_misses));
      ("compiled_programs", Num (float_of_int t.compiled_programs));
      ("peak_tensor_bytes", Num (float_of_int t.peak_tensor_bytes));
    ]
