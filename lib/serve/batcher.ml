(** The dynamic batcher: an admission queue that coalesces requests into
    batches, padded up to {e bucketed} batch shapes.

    A batch fires when either [max_batch] requests are waiting or the oldest
    request has waited [timeout] (the server may shrink the effective timeout
    under pressure — degraded mode). Padding the real occupancy up to a fixed
    bucket means the runtimes only ever see a handful of distinct batch
    shapes, so on the lazy path the trace fingerprint repeats and the
    compiled-program cache stays hot ({!S4o_lazy.Lazy_runtime.cache_size}
    stays bounded by the bucket count) instead of recompiling per occupancy. *)

type t = {
  max_batch : int;
  timeout : float;
  buckets : int array;  (** Ascending; last element >= [max_batch]. *)
  queue : Request.t Queue.t;
}

(* Powers of two up to and including max_batch. *)
let default_buckets max_batch =
  let rec up acc b = if b >= max_batch then List.rev (max_batch :: acc)
    else up (b :: acc) (2 * b)
  in
  up [] 1

let create ?buckets ~max_batch ~timeout () =
  if max_batch < 1 then invalid_arg "Batcher.create: max_batch must be >= 1";
  if timeout < 0.0 then invalid_arg "Batcher.create: timeout must be >= 0";
  let buckets =
    match buckets with
    | None -> default_buckets max_batch
    | Some [] -> invalid_arg "Batcher.create: buckets must be non-empty"
    | Some bs ->
        if List.exists (fun b -> b < 1) bs then
          invalid_arg "Batcher.create: buckets must be positive";
        let bs = List.sort_uniq compare bs in
        (* Every batch we take has <= max_batch members, so as long as some
           bucket covers max_batch every occupancy rounds up to a bucket. *)
        if List.for_all (fun b -> b < max_batch) bs then bs @ [ max_batch ]
        else bs
  in
  { max_batch; timeout; buckets = Array.of_list buckets; queue = Queue.create () }

let max_batch t = t.max_batch
let timeout t = t.timeout
let buckets t = Array.to_list t.buckets
let length t = Queue.length t.queue
let is_empty t = Queue.is_empty t.queue
let is_full t = Queue.length t.queue >= t.max_batch
let enqueue t r = Queue.add r t.queue
let peek t = Queue.peek_opt t.queue

(** Arrival time of the oldest queued request, if any. *)
let oldest_arrival t =
  Option.map (fun (r : Request.t) -> r.Request.arrival) (Queue.peek_opt t.queue)

(** Latest instant the pending batch may keep waiting before it must fire,
    under the given effective timeout. *)
let fire_deadline t ~timeout =
  Option.map (fun a -> a +. timeout) (oldest_arrival t)

(** Drop expired requests from the front of the queue (deadline-based load
    shedding happens at batch formation, oldest first). Returns the shed
    requests. *)
let shed_expired t ~now =
  let rec go acc =
    match Queue.peek_opt t.queue with
    | Some r when Request.expired r ~now -> go (Queue.pop t.queue :: acc)
    | _ -> List.rev acc
  in
  go []

(** Dequeue up to [max_batch] requests, FIFO. *)
let take t =
  let rec go acc n =
    if n = 0 then List.rev acc
    else
      match Queue.take_opt t.queue with
      | None -> List.rev acc
      | Some r -> go (r :: acc) (n - 1)
  in
  go [] t.max_batch

(** Build the padded batch tensor for a taken batch: one [row]-shaped slot
    per bucket position, request payloads blitted into the leading slots,
    everything else (payload-less requests and the padding tail) left at the
    zero fill. Two in-place primitives — {!Dense.fill} via [zeros] and
    {!Dense.blit_flat} per payload — instead of a per-element rebuild. *)
let assemble ~bucket ~row requests =
  let module Dense = S4o_tensor.Dense in
  let n = List.length requests in
  if bucket < n then
    invalid_arg
      (Printf.sprintf "Batcher.assemble: %d requests exceed bucket %d" n bucket);
  let rowlen = S4o_tensor.Shape.numel row in
  let out = Dense.zeros (Array.append [| bucket |] row) in
  List.iteri
    (fun i (r : Request.t) ->
      match r.Request.payload with
      | None -> ()
      | Some p ->
          if Dense.numel p <> rowlen then
            invalid_arg
              (Printf.sprintf
                 "Batcher.assemble: payload of %d elements for a %d-element row"
                 (Dense.numel p) rowlen);
          Dense.blit_flat ~src:p ~src_pos:0 ~dst:out ~dst_pos:(i * rowlen)
            ~len:rowlen)
    requests;
  out

(** Smallest bucket that holds [n] requests — the padded shape the replica
    actually runs. *)
let bucket_for t n =
  if n < 1 then invalid_arg "Batcher.bucket_for: n must be >= 1";
  match Array.find_opt (fun b -> b >= n) t.buckets with
  | Some b -> b
  | None ->
      invalid_arg
        (Printf.sprintf "Batcher.bucket_for: no bucket holds %d requests" n)
