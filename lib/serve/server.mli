(** The serving runtime: discrete-event loop, replica scheduling, dynamic
    batching, and SLO-aware admission control (see the .ml header for the
    event-loop semantics). *)

type policy = Least_loaded | Round_robin

val policy_name : policy -> string

(** Recognises ["least-loaded"]/["ll"] and ["round-robin"]/["rr"]. *)
val policy_of_string : string -> policy option

type config = {
  model : Model.kind;
  strategy : Replica.strategy;
  spec : S4o_device.Device_spec.t;
  replicas : int;
  max_batch : int;
  batch_timeout : float;
  buckets : int list option;
  queue_capacity : int;
  slo : float;
  policy : policy;
  degrade_watermark : int;
  degrade_factor : float;
  warmup : bool;
  record : bool;
}

(** Sensible defaults: LeNet on lazy replicas over two GTX-1080s, batches of
    up to 8 with a 1 ms timeout, a 64-deep queue, a 20 ms SLO, least-loaded
    placement, degraded mode past half the queue, JIT warmup on. *)
val default_config :
  ?model:Model.kind ->
  ?strategy:Replica.strategy ->
  ?spec:S4o_device.Device_spec.t ->
  ?replicas:int ->
  ?max_batch:int ->
  ?batch_timeout:float ->
  ?buckets:int list ->
  ?queue_capacity:int ->
  ?slo:float ->
  ?policy:policy ->
  ?degrade_watermark:int ->
  ?degrade_factor:float ->
  ?warmup:bool ->
  ?record:bool ->
  unit ->
  config

type workload =
  | Open_loop of { process : Load_gen.process; requests : int; seed : int }
  | Closed_loop of { clients : int; think : float; requests : int; seed : int }

type t

(** Run a workload to completion on the simulated clock. [on_complete] fires
    per completed request at its completion instant. Deterministic: the same
    (config, workload) always produces the same result. Raises
    [Invalid_argument] on nonsensical configs or workloads. *)
val run :
  ?on_complete:(Request.t -> latency:float -> unit) -> config -> workload -> t

val config : t -> config
val stats : t -> Serve_stats.t

(** The server's own metrics registry (latency/queue-wait histograms and the
    shed/violation counters backing {!stats}). *)
val metrics : t -> S4o_obs.Metrics.t

(** Named timelines — ["server"] plus one per replica — ready for
    {!S4o_obs.Chrome_trace.processes_to_file}. Empty recorders when the
    config disabled recording. *)
val recorders : t -> (string * S4o_obs.Recorder.t) list
