(** Dynamic batching with bucketed batch shapes (see the .ml header for the
    cache-locality rationale). *)

type t

(** [create ?buckets ~max_batch ~timeout ()]. [buckets] defaults to the
    powers of two up to [max_batch]; a custom list is sorted, deduplicated,
    and extended with [max_batch] if nothing covers it. *)
val create : ?buckets:int list -> max_batch:int -> timeout:float -> unit -> t

val max_batch : t -> int
val timeout : t -> float
val buckets : t -> int list
val length : t -> int
val is_empty : t -> bool

(** [max_batch] requests are waiting: fire now (replica permitting). *)
val is_full : t -> bool

val enqueue : t -> Request.t -> unit
val peek : t -> Request.t option
val oldest_arrival : t -> float option

(** [fire_deadline t ~timeout]: when the pending batch must fire under the
    given {e effective} timeout (degraded mode passes a shrunken one). *)
val fire_deadline : t -> timeout:float -> float option

(** Shed already-expired requests from the queue front; returns them. *)
val shed_expired : t -> now:float -> Request.t list

(** Dequeue up to [max_batch] requests, FIFO. *)
val take : t -> Request.t list

(** [assemble ~bucket ~row requests] is the padded [\[bucket; row...\]]
    input tensor for a taken batch: request payloads occupy the leading
    slots; payload-less requests and the padding tail are zero. Raises
    [Invalid_argument] if the batch overflows the bucket or a payload does
    not have [row]'s element count. *)
val assemble :
  bucket:int -> row:S4o_tensor.Shape.t -> Request.t list -> S4o_tensor.Dense.t

(** Smallest bucket holding [n] requests. *)
val bucket_for : t -> int -> int
