(** One serving replica: a private simulated device ({!S4o_device.Engine}),
    its own runtime state, and a runner that executes one padded batch.

    Two execution paths, selectable per deployment:

    - [Lazy_tensor]: a {e live} lazy stack — the functorized model is built
      on a per-replica {!S4o_lazy.Lazy_backend}, every batch re-traces the
      forward pass through {!S4o_nn.Train.Make.predict} with a placeholder
      input, and a barrier cuts the trace. Cache hits/misses, re-tracing
      overhead, and JIT compiles are all real runtime behaviour, so shape
      bucketing visibly keeps {!S4o_lazy.Lazy_runtime.cache_size} bounded.

    - [Op_by_op s]: an eager-family path. The eager runtime computes real
      values and has no placeholder inputs, so serving-scale traffic instead
      {e replays} the captured forward HLO graph kernel-by-kernel: one
      [per_op_host] charge plus one unfused dispatch per compute node, with
      kernel times scaled by the strategy's [kernel_efficiency] — the same
      cost model {!S4o_frameworks.Strategy.step_time} uses, but executed on
      the engine so pipelining and stalls are simulated, not closed-form. *)

module Engine = S4o_device.Engine
module Recorder = S4o_obs.Recorder
module Strategy = S4o_frameworks.Strategy

type strategy = Lazy_tensor | Op_by_op of Strategy.t

let lazy_tensor = Lazy_tensor
let eager = Op_by_op Strategy.s4o_eager
let pytorch_like = Op_by_op Strategy.pytorch_like

let strategy_name = function
  | Lazy_tensor -> "lazy"
  | Op_by_op s -> s.Strategy.name

let strategy_of_string = function
  | "lazy" -> Some Lazy_tensor
  | "eager" -> Some eager
  | "pytorch" -> Some pytorch_like
  | _ -> None

type t = {
  id : int;
  engine : Engine.t;
  mutable free_at : float;  (** Simulated time this replica next idles. *)
  mutable batches : int;
  mutable slots : int;  (** Padded slots executed (>= real occupancy). *)
  run : batch:int -> unit;
  cache_hits : unit -> int;
  cache_misses : unit -> int;
  compiled_programs : unit -> int;
}

let make_lazy_runner engine kind =
  let rt = S4o_lazy.Lazy_runtime.create engine in
  let module Bk = S4o_lazy.Lazy_backend.Make (struct
    let rt = rt
  end) in
  let module M = S4o_nn.Models.Make (Bk) in
  let module T = S4o_nn.Train.Make (Bk) in
  let rng = S4o_tensor.Prng.create Model.weight_seed in
  let model =
    match kind with
    | Model.Lenet -> M.lenet rng
    | Model.Resnet_tiny ->
        M.resnet rng ~in_channels:3 (M.resnet_tiny_config ~classes:10)
    | Model.Mlp -> M.mlp rng ~inputs:16 ~hidden:64 ~outputs:10
  in
  let run ~batch =
    let input = Bk.placeholder (Model.input_shape kind ~batch) in
    let logits = T.predict model input in
    Bk.barrier [ logits ];
    Engine.sync engine
  in
  let stat field = field (S4o_lazy.Lazy_runtime.stats rt) in
  ( run,
    (fun () -> stat (fun (s : S4o_obs.Stats.t) -> s.cache_hits)),
    (fun () -> stat (fun (s : S4o_obs.Stats.t) -> s.cache_misses)),
    fun () -> S4o_lazy.Lazy_runtime.cache_size rt )

let make_replay_runner engine (s : Strategy.t) kind =
  let graphs : (int, S4o_device.Op_info.t list) Hashtbl.t = Hashtbl.create 8 in
  let eff = s.Strategy.kernel_efficiency in
  (* Scaling the roofline inputs by [kernel_efficiency] reproduces
     Strategy.step_time's device-time scaling while leaving the fixed
     kernel-launch cost alone. *)
  let scale (op : S4o_device.Op_info.t) =
    if eff = 1.0 then op
    else
      {
        op with
        S4o_device.Op_info.flops =
          int_of_float (Float.round (eff *. float_of_int op.flops));
        bytes_in = int_of_float (Float.round (eff *. float_of_int op.bytes_in));
        bytes_out =
          int_of_float (Float.round (eff *. float_of_int op.bytes_out));
      }
  in
  let ops_for batch =
    match Hashtbl.find_opt graphs batch with
    | Some ops -> ops
    | None ->
        let g = Model.capture_forward kind ~batch in
        let ops =
          List.filter_map
            (fun (n : S4o_xla.Hlo.node) ->
              match n.S4o_xla.Hlo.role with
              | S4o_xla.Hlo.Compute -> Some (scale n.S4o_xla.Hlo.info)
              | S4o_xla.Hlo.Param _ | S4o_xla.Hlo.Literal _ -> None)
            g.S4o_xla.Hlo.nodes
        in
        Hashtbl.add graphs batch ops;
        ops
  in
  let run ~batch =
    let ops = ops_for batch in
    Engine.with_host_span engine ~cat:"serve" "input-pipeline" (fun () ->
        Engine.spend_host engine s.Strategy.per_step_host);
    List.iter
      (fun op ->
        Engine.spend_host engine s.Strategy.per_op_host;
        ignore (Engine.dispatch engine op))
      ops;
    Engine.sync engine
  in
  (run, (fun () -> 0), (fun () -> 0), fun () -> Hashtbl.length graphs)

let create ?(record = true) ~id ~spec strategy kind =
  let recorder = Recorder.create ~enabled:record () in
  let engine = Engine.create ~recorder spec in
  let run, cache_hits, cache_misses, compiled_programs =
    match strategy with
    | Lazy_tensor -> make_lazy_runner engine kind
    | Op_by_op s -> make_replay_runner engine s kind
  in
  {
    id;
    engine;
    free_at = 0.0;
    batches = 0;
    slots = 0;
    run;
    cache_hits;
    cache_misses;
    compiled_programs;
  }

let id t = t.id
let engine t = t.engine
let free_at t = t.free_at
let batches t = t.batches
let slots t = t.slots
let cache_hits t = t.cache_hits ()
let cache_misses t = t.cache_misses ()
let compiled_programs t = t.compiled_programs ()

(** Run one padded batch starting at simulated time [now] (which must be
    >= [free_at]). Returns the completion time; the replica is busy until
    then. *)
let run_batch t ~now ~batch =
  if now < t.free_at then invalid_arg "Replica.run_batch: replica still busy";
  let h = Engine.host_time t.engine in
  (* The replica idled from the end of its last batch until [now]; advance
     its host clock across the gap so the timeline shows the idle stretch. *)
  if now > h then
    Engine.with_host_span t.engine ~cat:"serve" "idle" (fun () ->
        Engine.spend_host t.engine (now -. h));
  let rec_ = Engine.recorder t.engine in
  let span =
    Recorder.begin_span rec_ Recorder.Host ~cat:"serve"
      ~args:[ ("batch", string_of_int batch) ]
      "serve-batch"
      ~at:(Engine.host_time t.engine)
  in
  S4o_obs.Memory.with_tag S4o_obs.Memory.global "serve-batch" (fun () ->
      t.run ~batch);
  Recorder.end_span rec_ span ~at:(Engine.host_time t.engine);
  t.batches <- t.batches + 1;
  t.slots <- t.slots + batch;
  t.free_at <- Engine.host_time t.engine;
  t.free_at
