(** Servable models and forward-graph capture. *)

type kind = Lenet | Resnet_tiny | Mlp

val all : kind list
val name : kind -> string
val of_string : string -> kind option

(** The model's input shape at a given batch size (batch is the leading and
    only free dimension). Raises [Invalid_argument] if [batch < 1]. *)
val input_shape : kind -> batch:int -> S4o_tensor.Shape.t

(** Weight-initialization seed shared by every replica of a deployment. *)
val weight_seed : int

(** [capture_forward kind ~batch] traces one inference forward pass at
    [batch] through a scratch lazy backend and returns it as an HLO graph,
    charging no simulated time. Op-by-op replicas replay its compute nodes;
    one captured graph per bucketed batch shape. *)
val capture_forward : kind -> batch:int -> S4o_xla.Hlo.graph
