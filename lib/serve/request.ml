(** One inference request flowing through the serving stack.

    Requests are points on the {e simulated} clock: they arrive at [arrival],
    must complete by [deadline] ([arrival + slo]), and the server accounts
    for every one of them exactly once — completed, shed at admission
    (bounded queue full), or shed at batch formation (deadline already
    passed). [client] ties a request back to its closed-loop client so the
    load generator can pace re-issues; open-loop requests use [client = -1]. *)

type t = {
  id : int;
  arrival : float;  (** Simulated seconds. *)
  deadline : float;  (** [arrival +. slo]. *)
  client : int;  (** Closed-loop client index, [-1] for open-loop. *)
  payload : S4o_tensor.Dense.t option;
      (** The input row this request carries, if the caller supplies real
          data; [None] for purely simulated traffic (the batcher still
          assembles a zero row for it). *)
}

let create ?(client = -1) ?payload ~id ~arrival ~slo () =
  if slo <= 0.0 then invalid_arg "Request.create: slo must be positive";
  { id; arrival; deadline = arrival +. slo; client; payload }

let expired t ~now = now > t.deadline
