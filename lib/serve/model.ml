(** Servable models: the [s4o_nn] architectures a replica can host, plus a
    way to capture their forward pass as an HLO graph at a given batch size.

    Capture goes through a scratch lazy backend whose placeholder input never
    executes — [Lazy_backend.capture] lowers the pending trace to HLO without
    charging any simulated cost — so both execution paths of a replica start
    from the same graph the training benchmarks use: the lazy path re-traces
    the live model each batch, and the op-by-op path replays these captured
    compute nodes kernel by kernel. *)

type kind = Lenet | Resnet_tiny | Mlp

let all = [ Lenet; Resnet_tiny; Mlp ]

let name = function
  | Lenet -> "lenet"
  | Resnet_tiny -> "resnet-tiny"
  | Mlp -> "mlp"

let of_string = function
  | "lenet" -> Some Lenet
  | "resnet-tiny" | "resnet_tiny" -> Some Resnet_tiny
  | "mlp" -> Some Mlp
  | _ -> None

(* Fixed per-model input geometry (batch is the only free dimension):
   LeNet wants Figure 6's 28x28x1 MNIST images; the tiny ResNet runs on
   16x16x3 patches as in the CLI ablations; the MLP takes 16 features. *)
let input_shape kind ~batch =
  if batch < 1 then invalid_arg "Model.input_shape: batch must be positive";
  match kind with
  | Lenet -> [| batch; 28; 28; 1 |]
  | Resnet_tiny -> [| batch; 16; 16; 3 |]
  | Mlp -> [| batch; 16 |]

(* One weight seed everywhere so every replica of a deployment hosts the
   same parameters, whichever execution path it uses. *)
let weight_seed = 7

let capture_forward kind ~batch =
  let engine = S4o_device.Engine.create S4o_device.Device_spec.desktop_cpu in
  let rt = S4o_lazy.Lazy_runtime.create engine in
  let module Bk = S4o_lazy.Lazy_backend.Make (struct
    let rt = rt
  end) in
  let module M = S4o_nn.Models.Make (Bk) in
  let module T = S4o_nn.Train.Make (Bk) in
  let rng = S4o_tensor.Prng.create weight_seed in
  let model =
    match kind with
    | Lenet -> M.lenet rng
    | Resnet_tiny ->
        M.resnet rng ~in_channels:3 (M.resnet_tiny_config ~classes:10)
    | Mlp -> M.mlp rng ~inputs:16 ~hidden:64 ~outputs:10
  in
  let input = Bk.placeholder (input_shape kind ~batch) in
  let logits = T.predict model input in
  Bk.capture [ logits ]
