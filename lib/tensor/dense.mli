(** The Tensor compute substrate of §3.1: a multi-dimensional array backed by
    a flat C-layout float64 {!Bigarray.Array1}, with cache-blocked,
    optionally {!Domain}-parallel dense kernels (see {!Pool}).

    The API has {e value semantics}: every operation returns a fresh tensor
    and never aliases the argument buffers, so distinct values access
    logically disjoint data (§4). A small set of explicitly named
    [*_inplace] operations (plus {!blit}/{!fill}) mutate their first
    argument; they model Swift's [inout] unique borrow and must only be
    applied to values the caller uniquely owns (this is what the optimizer's
    in-place update path uses).

    Elementwise binary operations specialize two fast paths — same-shape
    (one flat fused loop) and scalar-vs-tensor — and fall back to the
    generic strided broadcast walker ({!map2_strided}) otherwise.
    [matmul]/[batch_matmul] are cache-blocked with a 2x4 register
    micro-kernel and partition output rows across the domain pool above a
    fixed work cutoff; the partition is contiguous, so results are
    bit-identical for every domain count. *)

type t

(** The flat row-major storage of every tensor. *)
type buffer = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

exception Shape_error of string
(** Re-raised from {!Shape}[.Shape_error] for shape mismatches. *)

(** {1 Creation} *)

val create : Shape.t -> float -> t
val zeros : Shape.t -> t
val ones : Shape.t -> t

(** Uninitialized storage. Kernels only: the caller must write every
    element before the tensor escapes (used by im2col, which writes the
    padding zeros explicitly instead of paying a full pre-fill pass). *)
val uninit : Shape.t -> t

val scalar : float -> t

(** [of_array shape data] copies [data]; its length must equal
    [Shape.numel shape]. *)
val of_array : Shape.t -> float array -> t

(** [init shape f] fills element at multi-index [idx] with [f idx]. *)
val init : Shape.t -> (int array -> float) -> t

(** [init_flat shape f] fills flat position [i] with [f i], in increasing
    flat order (PRNG-fed initializers rely on the order). *)
val init_flat : Shape.t -> (int -> float) -> t

val arange : int -> t
val linspace : lo:float -> hi:float -> int -> t
val rand_uniform : Prng.t -> ?lo:float -> ?hi:float -> Shape.t -> t
val rand_normal : Prng.t -> ?mean:float -> ?stddev:float -> Shape.t -> t

(** {1 Access} *)

val shape : t -> Shape.t
val rank : t -> int
val numel : t -> int
val get : t -> int array -> float
val get_flat : t -> int -> float

(** Extracts the value of a rank-0 or single-element tensor. *)
val item : t -> float

(** Copy of the underlying buffer in row-major order, as a plain OCaml
    array (checkpointing, tests, interop). *)
val to_array : t -> float array

(** The underlying buffer itself, not a copy. Mutating it breaks value
    semantics; reserved for kernels and backends. *)
val unsafe_data : t -> buffer

val copy : t -> t

(** [with_shape t shape] reinterprets [t]'s buffer under a new shape of the
    same [numel] {e without copying} — the two values alias. Reserved for
    kernels that immediately drop one of the views (e.g. im2col matmul
    results); anything else breaks value semantics. *)
val with_shape : t -> Shape.t -> t

(** {1 Functional update} *)

(** [set t idx v] is a copy of [t] with element [idx] replaced. *)
val set : t -> int array -> float -> t

val set_flat : t -> int -> float -> t

(** {1 In-place (unique-borrow) operations} *)

(** [fill ?pos ?len t v] sets the flat range [\[pos, pos+len)] (default: the
    whole tensor) to [v]. *)
val fill : ?pos:int -> ?len:int -> t -> float -> unit

val fill_inplace : t -> float -> unit
(** [fill_inplace t v] = [fill t v]; the historical name. *)

(** [blit src dst] copies [src]'s contents into [dst]; both must have the
    same number of elements (shapes may differ — the copy is flat). *)
val blit : t -> t -> unit

(** [blit_flat ~src ~src_pos ~dst ~dst_pos ~len] copies the flat range
    [\[src_pos, src_pos+len)] of [src] onto [\[dst_pos, ...)] of [dst] —
    the primitive under batch padding and row stacking. *)
val blit_flat : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit

(** [add_inplace dst src]: [dst <- dst + src] (shapes must match). *)
val add_inplace : t -> t -> unit

(** [axpy_inplace ~alpha dst x]: [dst <- dst + alpha * x]. *)
val axpy_inplace : alpha:float -> t -> t -> unit

(** [scale_inplace t alpha]: [t <- alpha * t]. *)
val scale_inplace : t -> float -> unit

(** [add_at_inplace t idx v]: [t.(idx) <- t.(idx) + v] — the O(1) inout
    pullback primitive of Appendix B. *)
val add_at_inplace : t -> int array -> float -> unit

(** {1 Elementwise} *)

val map : (float -> float) -> t -> t

(** Broadcasting binary map (NumPy rules): same-shape and scalar fast
    paths, {!map2_strided} otherwise. *)
val map2 : (float -> float -> float) -> t -> t -> t

(** The generic strided broadcast walker, with no fast paths. Semantically
    identical to {!map2}; retained separately so benchmarks and tests can
    measure/check the specialized loops against it. *)
val map2_strided : (float -> float -> float) -> t -> t -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val scale : float -> t -> t
val add_scalar : float -> t -> t
val pow_scalar : t -> float -> t
val exp : t -> t
val log : t -> t
val sqrt : t -> t
val abs : t -> t
val sign : t -> t
val relu : t -> t
val sigmoid : t -> t
val tanh : t -> t
val maximum : t -> t -> t
val minimum : t -> t -> t
val clip : lo:float -> hi:float -> t -> t

(** {1 Comparison} *)

val equal : t -> t -> bool
val allclose : ?rtol:float -> ?atol:float -> t -> t -> bool

(** [hash_contents ?prefix t] hashes shape plus (at most) the first [prefix]
    elements (default 64) of the buffer directly — no intermediate array
    copy, unlike [Hashtbl.hash (to_array t)]. Equal tensors hash equal;
    collisions are possible (confirm with {!equal}). *)
val hash_contents : ?prefix:int -> t -> int

(** {1 Reductions} *)

val sum : t -> float
val mean : t -> float
val max_value : t -> float
val min_value : t -> float

(** [sum_axes ?keep_dims t axes] sums over the given axes. *)
val sum_axes : ?keep_dims:bool -> t -> int list -> t

val mean_axes : ?keep_dims:bool -> t -> int list -> t

(** Row-wise argmax of a [\[n; c\]] tensor. *)
val argmax_rows : t -> int array

(** {1 Shape manipulation} *)

val reshape : t -> Shape.t -> t
val flatten_to_2d : t -> t
(** Collapses all but the first axis: [\[n; ...\]] to [\[n; rest\]]. *)

(** [broadcast_to t shape] materializes [t] broadcast to [shape]. *)
val broadcast_to : t -> Shape.t -> t

(** [unbroadcast t shape] sums [t] back down to [shape] — the adjoint of
    [broadcast_to], used by reverse-mode AD. *)
val unbroadcast : t -> Shape.t -> t

(** 2-D transpose. *)
val transpose : t -> t

(** General axis permutation. *)
val permute : t -> int array -> t

val concat : t -> t -> int -> t

(** [slice t ~axis ~start ~len]. *)
val slice : t -> axis:int -> start:int -> len:int -> t

(** [one_hot ~classes labels] maps [\[n\]] integer-valued entries to
    [\[n; classes\]]. *)
val one_hot : classes:int -> t -> t

(** {1 Linear algebra} *)

(** 2-D matrix product [\[m;k\] x \[k;n\] -> \[m;n\]]: cache-blocked with a
    2x4 register micro-kernel; rows are partitioned over the domain pool
    when [m*n*k] exceeds the serial cutoff. [?domains] overrides the pool's
    default width for this call (benchmarks use it to sweep scaling);
    results are bit-identical for every width. *)
val matmul : ?domains:int -> t -> t -> t

(** 1-D dot product. *)
val dot : t -> t -> float

(** {1 NN math} *)

(** Numerically-stable softmax over the last axis of a 2-D tensor. *)
val softmax : t -> t

val log_softmax : t -> t

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Batched linear algebra} *)

(** Batched matrix product [\[b;m;k\] x \[b;k;n\] -> \[b;m;n\]]; same
    blocking, partitioning and determinism as {!matmul}. *)
val batch_matmul : ?domains:int -> t -> t -> t

(** Transpose of the trailing two axes of a rank-3 tensor. *)
val batch_transpose : t -> t
