(** A fixed pool of worker {!Domain}s for data-parallel compute kernels.

    The pool exists so that every parallel kernel in the library shares one
    set of long-lived domains instead of spawning fresh ones per call
    (domain spawn is ~100us — far more than a small kernel). Workers are
    started lazily on first use, grown on demand up to {!hard_max_domains},
    and joined at process exit.

    Determinism contract: {!run} splits [\[0, n)] into [domains] {e
    contiguous} chunks. Kernels that partition independent output rows this
    way produce bit-identical results for every domain count, because each
    output element is computed by exactly one domain with an accumulation
    order that does not depend on the partition. The tensor kernels
    ({!Dense.matmul}, {!Convolution.conv2d}, ...) are written against this
    contract and the test suite checks it. *)

(** Hard upper bound on worker domains ([16]); requests beyond it clamp. *)
val hard_max_domains : int

(** The default parallel width: [Domain.recommended_domain_count ()] clamped
    to [\[1; 8\]], overridable with the [S4O_DOMAINS] environment variable
    (useful to pin tests to a width or to exercise oversubscription). *)
val default_domains : unit -> int

(** Number of worker domains currently alive (not counting the caller). *)
val live_workers : unit -> int

(** [run ?domains ~n f] evaluates [f lo hi] over contiguous chunks covering
    [\[0, n)], on up to [domains] domains (the caller included — it always
    executes chunk 0). Defaults to {!default_domains}; [domains] is clamped
    to [\[1; hard_max_domains\]] and to [n]. With an effective width of 1,
    or when called from inside another [run] (kernels never nest, but the
    pool refuses to deadlock), [f 0 n] runs in the calling domain.

    [f] must only write to disjoint locations per chunk. The first exception
    raised by any chunk is re-raised in the caller after all chunks finish. *)
val run : ?domains:int -> n:int -> (int -> int -> unit) -> unit

(** {1 Instrumentation}

    The pool keeps cumulative per-domain busy clocks so a profile run can
    report how evenly parallel kernels spread across domains. Only {e
    parallel} runs are counted: a [run] that degrades to serial (width 1,
    small [n], or nesting) touches none of these counters. *)

type stats = {
  jobs : int;  (** Parallel [run] calls completed. *)
  chunks : int;  (** Chunks executed, across all domains. *)
  run_wall_seconds : float;  (** Total wall time spent inside parallel runs. *)
  domain_busy_seconds : float array;
      (** Cumulative busy time per domain slot; slot [0] is the calling
          domain, slots [1..] are workers in spawn order. Length
          {!hard_max_domains}. *)
}

(** Snapshot the cumulative counters (consistent under the pool lock). *)
val stats : unit -> stats

val reset_stats : unit -> unit

(** [busy_fractions s] is [(slot, busy / run-wall)] for every slot with
    nonzero busy time — the per-domain busy fraction over the time the pool
    actually had a job in flight. Empty if no parallel run completed. *)
val busy_fractions : stats -> (int * float) list

(** Join all idle workers. The pool respawns lazily on the next {!run}, so
    this only quiesces; it never breaks later callers. Tests and benchmarks
    call it after parallel phases because an idle domain still participates
    in every stop-the-world collection, slowing serial code that follows
    (it also runs via [at_exit]). *)
val shutdown : unit -> unit
