module A = Bigarray.Array1

type padding = Same | Valid

let fail fmt = Format.kasprintf (fun s -> raise (Shape.Shape_error s)) fmt

let out_dim padding ~size ~kernel ~stride =
  match padding with
  | Same -> ((size - 1) / stride) + 1
  | Valid -> if size < kernel then 0 else ((size - kernel) / stride) + 1

let pad_amounts padding ~size ~kernel ~stride =
  match padding with
  | Valid -> (0, 0)
  | Same ->
      let out = out_dim Same ~size ~kernel ~stride in
      let total = max 0 (((out - 1) * stride) + kernel - size) in
      let before = total / 2 in
      (before, total - before)

let check_rank4 ctx t =
  if Dense.rank t <> 4 then
    fail "%s: expected rank-4 NHWC tensor, got %s" ctx
      (Shape.to_string (Dense.shape t))

(* Same threshold as the matmul kernel: below this many touched elements a
   stage runs in the calling domain. *)
let serial_cutoff = 1 lsl 16

let maybe_parallel ?domains ~work ~n f =
  if work <= serial_cutoff then f 0 n else Pool.run ?domains ~n f

(* The geometry every conv kernel shares. Patch rows are indexed
   [r = (b*oh + oy)*ow + ox]; patch columns [(ky*kw + kx)*cin + c]. In NHWC
   the [cin] innermost span of both the input and the patch row is
   contiguous, so im2col and col2im move whole spans. *)
type geom = {
  n : int;
  h : int;
  w : int;
  cin : int;
  kh : int;
  kw : int;
  oh : int;
  ow : int;
  sh : int;
  sw : int;
  ph : int;
  pw : int;
}

let geom ~stride ~padding ~ishape ~kh ~kw =
  let sh, sw = stride in
  let n = ishape.(0) and h = ishape.(1) and w = ishape.(2) and cin = ishape.(3) in
  let oh = out_dim padding ~size:h ~kernel:kh ~stride:sh in
  let ow = out_dim padding ~size:w ~kernel:kw ~stride:sw in
  let ph, _ = pad_amounts padding ~size:h ~kernel:kh ~stride:sh in
  let pw, _ = pad_amounts padding ~size:w ~kernel:kw ~stride:sw in
  { n; h; w; cin; kh; kw; oh; ow; sh; sw; ph; pw }

(* A 1x1 stride-1 unpadded convolution is exactly a matmul of the flattened
   input: the patch matrix would be a copy of it. *)
let is_pointwise g =
  g.kh = 1 && g.kw = 1 && g.sh = 1 && g.sw = 1 && g.ph = 0 && g.pw = 0

(* Materialize the [n*oh*ow; kh*kw*cin] patch matrix. Rows are disjoint, so
   the fill parallelizes over rows. The patch tensor starts uninitialized:
   every element is written exactly once — image data as contiguous span
   copies, out-of-image (padding) columns as explicit zero spans — which
   saves a full pre-zeroing pass over the (large) patch matrix. *)
let im2col ?domains g input =
  let { n; h; w; cin; kh; kw; oh; ow; sh; sw; ph; pw } = g in
  let rows = n * oh * ow in
  let cols = kh * kw * cin in
  let patches =
    S4o_obs.Memory.with_tag S4o_obs.Memory.global "im2col" (fun () ->
        Dense.uninit [| rows; cols |])
  in
  let id = Dense.unsafe_data input and pd = Dense.unsafe_data patches in
  let zero_span off len = if len > 0 then A.fill (A.sub pd off len) 0.0 in
  let fill lo hi =
    Sanitizer.note_write pd ~lo:(lo * cols) ~len:((hi - lo) * cols)
      ~who:"im2col patch rows";
    Sanitizer.note_read id ~lo:0 ~len:(A.dim id) ~who:"im2col input";
    for r = lo to hi - 1 do
      let ox = r mod ow in
      let rest = r / ow in
      let oy = rest mod oh in
      let b = rest / oh in
      let rbase = r * cols in
      for ky = 0 to kh - 1 do
        let iy = (oy * sh) + ky - ph in
        let kbase = rbase + (ky * kw * cin) in
        if iy < 0 || iy >= h then zero_span kbase (kw * cin)
        else if sw = 1 then begin
          (* Column stride 1: the in-bounds kx range reads a contiguous
             input span and writes a contiguous patch span, so the whole
             ky-row is one memcpy of up to kw*cin elements plus zero
             fringes for the padding columns. *)
          let kx0 = min kw (max 0 (pw - ox)) in
          let kx1 = max kx0 (min kw (w + pw - ox)) in
          zero_span kbase (kx0 * cin);
          if kx1 > kx0 then begin
            let len = (kx1 - kx0) * cin in
            let src = ((((b * h) + iy) * w) + (ox + kx0 - pw)) * cin in
            A.blit (A.sub id src len) (A.sub pd (kbase + (kx0 * cin)) len)
          end;
          zero_span (kbase + (kx1 * cin)) ((kw - kx1) * cin)
        end
        else
          for kx = 0 to kw - 1 do
            let ix = (ox * sw) + kx - pw in
            let dst = kbase + (kx * cin) in
            if ix >= 0 && ix < w then begin
              let src = ((((b * h) + iy) * w) + ix) * cin in
              for c = 0 to cin - 1 do
                A.unsafe_set pd (dst + c) (A.unsafe_get id (src + c))
              done
            end
            else zero_span dst cin
          done
      done
    done
  in
  maybe_parallel ?domains ~work:(rows * cols) ~n:rows fill;
  patches

let conv2d ?domains ?(stride = (1, 1)) ~padding input filter =
  check_rank4 "conv2d input" input;
  check_rank4 "conv2d filter" filter;
  let ishape = Dense.shape input and fshape = Dense.shape filter in
  let kh = fshape.(0) and kw = fshape.(1) and fcin = fshape.(2) and cout = fshape.(3) in
  if ishape.(3) <> fcin then
    fail "conv2d: input channels %d vs filter channels %d" ishape.(3) fcin;
  let g = geom ~stride ~padding ~ishape ~kh ~kw in
  let rows = g.n * g.oh * g.ow in
  let cols = kh * kw * g.cin in
  let patches =
    if is_pointwise g then Dense.with_shape input [| rows; cols |]
    else im2col ?domains g input
  in
  let filter_mat = Dense.with_shape filter [| cols; cout |] in
  let out = Dense.matmul ?domains patches filter_mat in
  Dense.with_shape out [| g.n; g.oh; g.ow; cout |]

(* dL/dfilter = patches^T x grad: [cols; rows] x [rows; cout]. The explicit
   transpose costs one pass but lets the blocked matmul kernel do the O(n^3)
   part with good locality. *)
let conv2d_backward_filter ?domains ?(stride = (1, 1)) ~padding ~filter_shape
    input grad =
  check_rank4 "conv2d_backward_filter input" input;
  check_rank4 "conv2d_backward_filter grad" grad;
  let ishape = Dense.shape input in
  let kh = filter_shape.(0) and kw = filter_shape.(1) and cout = filter_shape.(3) in
  let g = geom ~stride ~padding ~ishape ~kh ~kw in
  let rows = g.n * g.oh * g.ow in
  let cols = kh * kw * g.cin in
  let patches =
    if is_pointwise g then Dense.with_shape input [| rows; cols |]
    else im2col ?domains g input
  in
  let grad_mat = Dense.with_shape grad [| rows; cout |] in
  let dfilter = Dense.matmul ?domains (Dense.transpose patches) grad_mat in
  Dense.with_shape dfilter filter_shape

(* dL/dinput: dpatches = grad x filter^T, then col2im scatter-adds each
   patch row back into the input image. Patch rows of one batch image
   overlap in the input, so the scatter parallelizes over batches only. *)
let conv2d_backward_input ?domains ?(stride = (1, 1)) ~padding ~input_shape
    filter grad =
  check_rank4 "conv2d_backward_input grad" grad;
  let fshape = Dense.shape filter in
  let kh = fshape.(0) and kw = fshape.(1) and cout = fshape.(3) in
  let g = geom ~stride ~padding ~ishape:input_shape ~kh ~kw in
  let { n; h; w; cin; oh; ow; sh; sw; ph; pw; _ } = g in
  let rows = n * oh * ow in
  let cols = kh * kw * cin in
  let grad_mat = Dense.with_shape grad [| rows; cout |] in
  let filter_t = Dense.transpose (Dense.with_shape filter [| cols; cout |]) in
  let dpatches = Dense.matmul ?domains grad_mat filter_t in
  let dinput = Dense.zeros input_shape in
  let dd = Dense.unsafe_data dinput and pd = Dense.unsafe_data dpatches in
  let scatter blo bhi =
    Sanitizer.note_write dd ~lo:(blo * h * w * cin)
      ~len:((bhi - blo) * h * w * cin) ~who:"col2im input batches";
    Sanitizer.note_read pd ~lo:(blo * oh * ow * cols)
      ~len:((bhi - blo) * oh * ow * cols) ~who:"col2im dpatches";
    for b = blo to bhi - 1 do
      for oy = 0 to oh - 1 do
        for ox = 0 to ow - 1 do
          let rbase = (((b * oh) + oy) * ow + ox) * cols in
          for ky = 0 to kh - 1 do
            let iy = (oy * sh) + ky - ph in
            if iy >= 0 && iy < h then
              for kx = 0 to kw - 1 do
                let ix = (ox * sw) + kx - pw in
                if ix >= 0 && ix < w then begin
                  let dst = ((((b * h) + iy) * w) + ix) * cin in
                  let src = rbase + (((ky * kw) + kx) * cin) in
                  for c = 0 to cin - 1 do
                    A.unsafe_set dd (dst + c)
                      (A.unsafe_get dd (dst + c) +. A.unsafe_get pd (src + c))
                  done
                end
              done
          done
        done
      done
    done
  in
  maybe_parallel ?domains ~work:(rows * cols) ~n:n scatter;
  dinput

let pool_out_shape ishape (kh, kw) (sh, sw) =
  let n = ishape.(0) and h = ishape.(1) and w = ishape.(2) and c = ishape.(3) in
  let oh = out_dim Valid ~size:h ~kernel:kh ~stride:sh in
  let ow = out_dim Valid ~size:w ~kernel:kw ~stride:sw in
  [| n; oh; ow; c |]

let avg_pool2d ~size ~stride input =
  check_rank4 "avg_pool2d" input;
  let kh, kw = size and sh, sw = stride in
  let ishape = Dense.shape input in
  let h = ishape.(1) and w = ishape.(2) and c = ishape.(3) in
  let oshape = pool_out_shape ishape size stride in
  let n = oshape.(0) and oh = oshape.(1) and ow = oshape.(2) in
  let out = Dense.zeros oshape in
  let id = Dense.unsafe_data input and od = Dense.unsafe_data out in
  let inv = 1.0 /. float_of_int (kh * kw) in
  let body blo bhi =
    Sanitizer.note_write od ~lo:(blo * oh * ow * c)
      ~len:((bhi - blo) * oh * ow * c) ~who:"avg_pool2d out batches";
    Sanitizer.note_read id ~lo:(blo * h * w * c) ~len:((bhi - blo) * h * w * c)
      ~who:"avg_pool2d input";
    for b = blo to bhi - 1 do
      for oy = 0 to oh - 1 do
        for ox = 0 to ow - 1 do
          for ch = 0 to c - 1 do
            let acc = ref 0.0 in
            for ky = 0 to kh - 1 do
              for kx = 0 to kw - 1 do
                let iy = (oy * sh) + ky and ix = (ox * sw) + kx in
                acc :=
                  !acc +. A.unsafe_get id ((((((b * h) + iy) * w) + ix) * c) + ch)
              done
            done;
            A.unsafe_set od ((((((b * oh) + oy) * ow) + ox) * c) + ch) (!acc *. inv)
          done
        done
      done
    done
  in
  maybe_parallel ~work:(n * oh * ow * c * kh * kw) ~n body;
  out

let avg_pool2d_backward ~size ~stride ~input_shape grad =
  let kh, kw = size and sh, sw = stride in
  let h = input_shape.(1) and w = input_shape.(2) and c = input_shape.(3) in
  let gshape = Dense.shape grad in
  let n = gshape.(0) and oh = gshape.(1) and ow = gshape.(2) in
  let dinput = Dense.zeros input_shape in
  let dd = Dense.unsafe_data dinput and gd = Dense.unsafe_data grad in
  let inv = 1.0 /. float_of_int (kh * kw) in
  let body blo bhi =
    Sanitizer.note_write dd ~lo:(blo * h * w * c) ~len:((bhi - blo) * h * w * c)
      ~who:"avg_pool2d_backward input batches";
    Sanitizer.note_read gd ~lo:(blo * oh * ow * c)
      ~len:((bhi - blo) * oh * ow * c) ~who:"avg_pool2d_backward grad";
    for b = blo to bhi - 1 do
      for oy = 0 to oh - 1 do
        for ox = 0 to ow - 1 do
          for ch = 0 to c - 1 do
            let g =
              A.unsafe_get gd ((((((b * oh) + oy) * ow) + ox) * c) + ch) *. inv
            in
            for ky = 0 to kh - 1 do
              for kx = 0 to kw - 1 do
                let iy = (oy * sh) + ky and ix = (ox * sw) + kx in
                let off = (((((b * h) + iy) * w) + ix) * c) + ch in
                A.unsafe_set dd off (A.unsafe_get dd off +. g)
              done
            done
          done
        done
      done
    done
  in
  maybe_parallel ~work:(n * oh * ow * c * kh * kw) ~n body;
  dinput

let max_pool2d ~size ~stride input =
  check_rank4 "max_pool2d" input;
  let kh, kw = size and sh, sw = stride in
  let ishape = Dense.shape input in
  let h = ishape.(1) and w = ishape.(2) and c = ishape.(3) in
  let oshape = pool_out_shape ishape size stride in
  let n = oshape.(0) and oh = oshape.(1) and ow = oshape.(2) in
  let out = Dense.zeros oshape in
  let id = Dense.unsafe_data input and od = Dense.unsafe_data out in
  let body blo bhi =
    Sanitizer.note_write od ~lo:(blo * oh * ow * c)
      ~len:((bhi - blo) * oh * ow * c) ~who:"max_pool2d out batches";
    Sanitizer.note_read id ~lo:(blo * h * w * c) ~len:((bhi - blo) * h * w * c)
      ~who:"max_pool2d input";
    for b = blo to bhi - 1 do
      for oy = 0 to oh - 1 do
        for ox = 0 to ow - 1 do
          for ch = 0 to c - 1 do
            let best = ref Float.neg_infinity in
            for ky = 0 to kh - 1 do
              for kx = 0 to kw - 1 do
                let iy = (oy * sh) + ky and ix = (ox * sw) + kx in
                best :=
                  Float.max !best
                    (A.unsafe_get id ((((((b * h) + iy) * w) + ix) * c) + ch))
              done
            done;
            A.unsafe_set od ((((((b * oh) + oy) * ow) + ox) * c) + ch) !best
          done
        done
      done
    done
  in
  maybe_parallel ~work:(n * oh * ow * c * kh * kw) ~n body;
  out

let max_pool2d_backward ~size ~stride input grad =
  check_rank4 "max_pool2d_backward" input;
  let kh, kw = size and sh, sw = stride in
  let ishape = Dense.shape input in
  let h = ishape.(1) and w = ishape.(2) and c = ishape.(3) in
  let gshape = Dense.shape grad in
  let n = gshape.(0) and oh = gshape.(1) and ow = gshape.(2) in
  let dinput = Dense.zeros ishape in
  let dd = Dense.unsafe_data dinput
  and id = Dense.unsafe_data input
  and gd = Dense.unsafe_data grad in
  let body blo bhi =
    Sanitizer.note_write dd ~lo:(blo * h * w * c) ~len:((bhi - blo) * h * w * c)
      ~who:"max_pool2d_backward input batches";
    Sanitizer.note_read id ~lo:(blo * h * w * c) ~len:((bhi - blo) * h * w * c)
      ~who:"max_pool2d_backward input";
    Sanitizer.note_read gd ~lo:(blo * oh * ow * c)
      ~len:((bhi - blo) * oh * ow * c) ~who:"max_pool2d_backward grad";
    for b = blo to bhi - 1 do
      for oy = 0 to oh - 1 do
        for ox = 0 to ow - 1 do
          for ch = 0 to c - 1 do
            (* strict > keeps the historical tie rule: the first (row-major)
               maximal element takes the whole gradient *)
            let best = ref Float.neg_infinity in
            let best_off = ref (-1) in
            for ky = 0 to kh - 1 do
              for kx = 0 to kw - 1 do
                let iy = (oy * sh) + ky and ix = (ox * sw) + kx in
                let off = (((((b * h) + iy) * w) + ix) * c) + ch in
                if A.unsafe_get id off > !best then begin
                  best := A.unsafe_get id off;
                  best_off := off
                end
              done
            done;
            A.unsafe_set dd !best_off
              (A.unsafe_get dd !best_off
              +. A.unsafe_get gd ((((((b * oh) + oy) * ow) + ox) * c) + ch))
          done
        done
      done
    done
  in
  maybe_parallel ~work:(n * oh * ow * c * kh * kw) ~n body;
  dinput

let conv2d_flops ?(stride = (1, 1)) ~padding ~input filter =
  let sh, sw = stride in
  let n = input.(0) and h = input.(1) and w = input.(2) in
  let kh = filter.(0) and kw = filter.(1) and cin = filter.(2) and cout = filter.(3) in
  let oh = out_dim padding ~size:h ~kernel:kh ~stride:sh in
  let ow = out_dim padding ~size:w ~kernel:kw ~stride:sw in
  2 * n * oh * ow * kh * kw * cin * cout
