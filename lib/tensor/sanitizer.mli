(** Write-race sanitizer for the domain pool.

    Parallel kernels partition output rows across worker domains; the
    partitioning is only correct if the written slices are disjoint. When
    the sanitizer is armed, each chunk registers the flat index ranges it
    writes and reads on each Bigarray buffer; an overlap between distinct
    domains raises {!Race} naming both registration sites.

    Arm with the [S4O_SANITIZE=1] environment variable (read at startup) or
    {!set_armed}. Registration only records inside a {!Pool.run} job
    ({!job_begin}/{!job_end} bracket it), so serial kernels pay one atomic
    load. *)

type buffer = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(** Raised on an overlap between accesses from distinct domains. The
    message names both registrations: label, range, domain. *)
exception Race of string

val armed : unit -> bool
val set_armed : bool -> unit

(** Job scoping — called by {!Pool.run} around the parallel section.
    [job_begin] clears the interval log; registrations outside an active
    job are dropped. *)
val job_begin : unit -> unit

val job_end : unit -> unit

(** [note_write buf ~lo ~len ~who] registers that the calling domain writes
    [buf.[lo, lo+len)]. [who] is a human-readable site label used in race
    reports. [?domain] overrides the writer identity (deterministic fuzz
    tests only). Raises {!Race} on overlap with another domain's write or
    read. *)
val note_write : ?domain:int -> buffer -> lo:int -> len:int -> who:string -> unit

(** Same for reads: raises {!Race} on overlap with another domain's write. *)
val note_read : ?domain:int -> buffer -> lo:int -> len:int -> who:string -> unit

type stats = { jobs : int; intervals : int; races : int }

val stats : unit -> stats
val reset_stats : unit -> unit
