(** The pre-Bigarray naive kernels, retained verbatim on plain [float array]
    storage. They exist for two reasons: the qcheck property tests use them
    as the oracle the optimized {!Dense}/{!Convolution} kernels must agree
    with, and [bench kernels] uses them as the honest "before" baseline for
    the speedup numbers in [BENCH_kernels.json]. Never call them from
    production code paths. *)

val matmul : Dense.t -> Dense.t -> Dense.t
(** Naive i/p/j triple loop with the historical zero-skip. *)

val batch_matmul : Dense.t -> Dense.t -> Dense.t

val sum_axes : ?keep_dims:bool -> Dense.t -> int list -> Dense.t
(** Generic multi-index walker over the full input. *)

val conv2d :
  ?stride:int * int ->
  padding:Convolution.padding ->
  Dense.t ->
  Dense.t ->
  Dense.t
(** Direct 7-deep loop nest, NHWC. *)

val conv2d_backward_input :
  ?stride:int * int ->
  padding:Convolution.padding ->
  input_shape:Shape.t ->
  Dense.t ->
  Dense.t ->
  Dense.t

val conv2d_backward_filter :
  ?stride:int * int ->
  padding:Convolution.padding ->
  filter_shape:Shape.t ->
  Dense.t ->
  Dense.t ->
  Dense.t
