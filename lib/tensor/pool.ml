let hard_max_domains = 16

let default_domains =
  let computed =
    lazy
      (match Sys.getenv_opt "S4O_DOMAINS" with
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some v when v >= 1 -> min v hard_max_domains
          | Some _ | None -> 1)
      | None -> max 1 (min 8 (Domain.recommended_domain_count ())))
  in
  fun () -> Lazy.force computed

(* One shared task queue; workers block on [work] when it is empty. [pending]
   counts submitted-but-unfinished chunks of the single in-flight job (jobs
   never overlap: [busy] serializes them). *)
type state = {
  mutex : Mutex.t;
  work : Condition.t;
  finished : Condition.t;
  tasks : (unit -> unit) Queue.t;
  mutable pending : int;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  (* instrumentation: slot 0 is the calling domain, slots 1.. are workers
     in spawn order; all guarded by [mutex] *)
  mutable jobs : int;
  mutable chunks_run : int;
  mutable run_wall : float;
  busy_s : float array;
}

let st =
  {
    mutex = Mutex.create ();
    work = Condition.create ();
    finished = Condition.create ();
    tasks = Queue.create ();
    pending = 0;
    stop = false;
    workers = [];
    jobs = 0;
    chunks_run = 0;
    run_wall = 0.0;
    busy_s = Array.make hard_max_domains 0.0;
  }

type stats = {
  jobs : int;
  chunks : int;
  run_wall_seconds : float;
  domain_busy_seconds : float array;
}

let stats () =
  Mutex.lock st.mutex;
  let s =
    {
      jobs = st.jobs;
      chunks = st.chunks_run;
      run_wall_seconds = st.run_wall;
      domain_busy_seconds = Array.copy st.busy_s;
    }
  in
  Mutex.unlock st.mutex;
  s

let reset_stats () =
  Mutex.lock st.mutex;
  st.jobs <- 0;
  st.chunks_run <- 0;
  st.run_wall <- 0.0;
  Array.fill st.busy_s 0 (Array.length st.busy_s) 0.0;
  Mutex.unlock st.mutex

let busy_fractions s =
  if s.run_wall_seconds <= 0.0 then []
  else
    Array.to_list s.domain_busy_seconds
    |> List.mapi (fun i b -> (i, b /. s.run_wall_seconds))
    |> List.filter (fun (_, f) -> f > 0.0)

let live_workers () =
  Mutex.lock st.mutex;
  let n = List.length st.workers in
  Mutex.unlock st.mutex;
  n

let rec worker_loop slot =
  Mutex.lock st.mutex;
  while Queue.is_empty st.tasks && not st.stop do
    Condition.wait st.work st.mutex
  done;
  if Queue.is_empty st.tasks then Mutex.unlock st.mutex (* stopping *)
  else begin
    let task = Queue.pop st.tasks in
    Mutex.unlock st.mutex;
    let t0 = Unix.gettimeofday () in
    task ();
    let dt = Unix.gettimeofday () -. t0 in
    Mutex.lock st.mutex;
    if slot < Array.length st.busy_s then
      st.busy_s.(slot) <- st.busy_s.(slot) +. dt;
    st.chunks_run <- st.chunks_run + 1;
    st.pending <- st.pending - 1;
    if st.pending = 0 then Condition.broadcast st.finished;
    Mutex.unlock st.mutex;
    worker_loop slot
  end

(* Joining is not final: [stop] is reset afterwards so the next [run] can
   respawn lazily. Tests and benchmarks quiesce the pool this way — an idle
   domain still participates in every stop-the-world collection, which taxes
   purely-serial phases (badly so on small machines). *)
let shutdown () =
  Mutex.lock st.mutex;
  st.stop <- true;
  let workers = st.workers in
  st.workers <- [];
  Condition.broadcast st.work;
  Mutex.unlock st.mutex;
  List.iter Domain.join workers;
  Mutex.lock st.mutex;
  st.stop <- false;
  Mutex.unlock st.mutex

let exit_hook_installed = ref false

(* Make sure at least [want] workers are alive (caller holds no lock). *)
let ensure_workers want =
  Mutex.lock st.mutex;
  let have = List.length st.workers in
  let missing = if st.stop then 0 else want - have in
  if missing > 0 then begin
    if not !exit_hook_installed then begin
      exit_hook_installed := true;
      at_exit shutdown
    end;
    for i = 1 to missing do
      let slot = have + i in
      st.workers <- Domain.spawn (fun () -> worker_loop slot) :: st.workers
    done
  end;
  Mutex.unlock st.mutex

(* A [run] is in flight: nested calls (which could only come from inside a
   chunk) degrade to serial instead of deadlocking on the queue. *)
let busy = Atomic.make false

let run ?domains ~n f =
  if n > 0 then begin
    let d =
      min n
        (max 1
           (min hard_max_domains
              (match domains with Some d -> d | None -> default_domains ())))
    in
    if d = 1 || not (Atomic.compare_and_set busy false true) then f 0 n
    else
      Fun.protect
        ~finally:(fun () ->
          Sanitizer.job_end ();
          Atomic.set busy false)
        (fun () ->
          ensure_workers (d - 1);
          Sanitizer.job_begin ();
          let first_exn = Atomic.make None in
          let chunk i =
            let base = n / d and rem = n mod d in
            let lo = (i * base) + min i rem in
            (lo, lo + base + if i < rem then 1 else 0)
          in
          let guarded lo hi () =
            try f lo hi
            with e -> ignore (Atomic.compare_and_set first_exn None (Some e))
          in
          let job_t0 = Unix.gettimeofday () in
          Mutex.lock st.mutex;
          st.pending <- st.pending + (d - 1);
          for i = 1 to d - 1 do
            let lo, hi = chunk i in
            Queue.add (guarded lo hi) st.tasks
          done;
          Condition.broadcast st.work;
          Mutex.unlock st.mutex;
          (let lo, hi = chunk 0 in
           let t0 = Unix.gettimeofday () in
           guarded lo hi ();
           let dt = Unix.gettimeofday () -. t0 in
           Mutex.lock st.mutex;
           st.busy_s.(0) <- st.busy_s.(0) +. dt;
           st.chunks_run <- st.chunks_run + 1;
           Mutex.unlock st.mutex);
          Mutex.lock st.mutex;
          while st.pending > 0 do
            Condition.wait st.finished st.mutex
          done;
          st.jobs <- st.jobs + 1;
          st.run_wall <- st.run_wall +. (Unix.gettimeofday () -. job_t0);
          Mutex.unlock st.mutex;
          match Atomic.get first_exn with Some e -> raise e | None -> ())
  end
