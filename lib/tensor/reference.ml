(* The kernels below are the pre-optimization implementations, ported only
   in storage (tensors enter and leave through [Dense.to_array] /
   [Dense.of_array]); the loop nests and accumulation orders are unchanged.
   They are deliberately slow — oracle and baseline, not product. *)

let fail fmt = Format.kasprintf (fun s -> raise (Shape.Shape_error s)) fmt

let matmul a b =
  if Dense.rank a <> 2 || Dense.rank b <> 2 then
    fail "Reference.matmul: expected rank-2 operands";
  let sa = Dense.shape a and sb = Dense.shape b in
  let m = sa.(0) and k = sa.(1) in
  let k' = sb.(0) and n = sb.(1) in
  if k <> k' then fail "Reference.matmul: inner dimensions %d and %d differ" k k';
  let ad = Dense.to_array a and bd = Dense.to_array b in
  let od = Array.make (m * n) 0.0 in
  for i = 0 to m - 1 do
    for p = 0 to k - 1 do
      let aip = ad.((i * k) + p) in
      if aip <> 0.0 then
        for j = 0 to n - 1 do
          od.((i * n) + j) <- od.((i * n) + j) +. (aip *. bd.((p * n) + j))
        done
    done
  done;
  Dense.of_array [| m; n |] od

let batch_matmul a b =
  if Dense.rank a <> 3 || Dense.rank b <> 3 then
    fail "Reference.batch_matmul: expected rank-3 operands";
  let sa = Dense.shape a and sb = Dense.shape b in
  let bs = sa.(0) and m = sa.(1) and k = sa.(2) in
  if sb.(0) <> bs || sb.(1) <> k then fail "Reference.batch_matmul: shape mismatch";
  let n = sb.(2) in
  let ad = Dense.to_array a and bd = Dense.to_array b in
  let od = Array.make (bs * m * n) 0.0 in
  for batch = 0 to bs - 1 do
    let abase = batch * m * k
    and bbase = batch * k * n
    and obase = batch * m * n in
    for i = 0 to m - 1 do
      for p = 0 to k - 1 do
        let aip = ad.(abase + (i * k) + p) in
        if aip <> 0.0 then
          for j = 0 to n - 1 do
            od.(obase + (i * n) + j) <-
              od.(obase + (i * n) + j) +. (aip *. bd.(bbase + (p * n) + j))
          done
      done
    done
  done;
  Dense.of_array [| bs; m; n |] od

let sum_axes ?(keep_dims = false) t axes =
  let tshape = Dense.shape t in
  let out_shape_kept = Shape.reduce_axes ~keep_dims:true tshape axes in
  let od = Array.make (Shape.numel out_shape_kept) 0.0 in
  let st_out = Shape.strides out_shape_kept in
  let td = Dense.to_array t in
  let r = Shape.rank tshape in
  let n = Array.length td in
  let idx = Array.make r 0 in
  for flat = 0 to n - 1 do
    let off = ref 0 in
    for i = 0 to r - 1 do
      if out_shape_kept.(i) <> 1 then off := !off + (st_out.(i) * idx.(i))
    done;
    od.(!off) <- od.(!off) +. td.(flat);
    let k = ref (r - 1) in
    let carrying = ref (flat < n - 1) in
    while !carrying && !k >= 0 do
      idx.(!k) <- idx.(!k) + 1;
      if idx.(!k) = tshape.(!k) then begin
        idx.(!k) <- 0;
        decr k
      end
      else carrying := false
    done
  done;
  Dense.of_array (Shape.reduce_axes ~keep_dims tshape axes) od

let conv2d ?(stride = (1, 1)) ~padding input filter =
  let sh, sw = stride in
  let ishape = Dense.shape input and fshape = Dense.shape filter in
  let n = ishape.(0) and h = ishape.(1) and w = ishape.(2) and cin = ishape.(3) in
  let kh = fshape.(0) and kw = fshape.(1) and cout = fshape.(3) in
  let oh = Convolution.out_dim padding ~size:h ~kernel:kh ~stride:sh in
  let ow = Convolution.out_dim padding ~size:w ~kernel:kw ~stride:sw in
  let ph, _ = Convolution.pad_amounts padding ~size:h ~kernel:kh ~stride:sh in
  let pw, _ = Convolution.pad_amounts padding ~size:w ~kernel:kw ~stride:sw in
  let id = Dense.to_array input and fd = Dense.to_array filter in
  let od = Array.make (n * oh * ow * cout) 0.0 in
  for b = 0 to n - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        for ky = 0 to kh - 1 do
          let iy = (oy * sh) + ky - ph in
          if iy >= 0 && iy < h then
            for kx = 0 to kw - 1 do
              let ix = (ox * sw) + kx - pw in
              if ix >= 0 && ix < w then begin
                let ibase = (((b * h) + iy) * w + ix) * cin in
                let fbase = ((ky * kw) + kx) * cin in
                let obase = (((b * oh) + oy) * ow + ox) * cout in
                for c = 0 to cin - 1 do
                  let iv = id.(ibase + c) in
                  if iv <> 0.0 then begin
                    let frow = (fbase + c) * cout in
                    for oc = 0 to cout - 1 do
                      od.(obase + oc) <- od.(obase + oc) +. (iv *. fd.(frow + oc))
                    done
                  end
                done
              end
            done
        done
      done
    done
  done;
  Dense.of_array [| n; oh; ow; cout |] od

let conv2d_backward_input ?(stride = (1, 1)) ~padding ~input_shape filter grad =
  let sh, sw = stride in
  let n = input_shape.(0)
  and h = input_shape.(1)
  and w = input_shape.(2)
  and cin = input_shape.(3) in
  let fshape = Dense.shape filter in
  let kh = fshape.(0) and kw = fshape.(1) and cout = fshape.(3) in
  let gshape = Dense.shape grad in
  let oh = gshape.(1) and ow = gshape.(2) in
  let ph, _ = Convolution.pad_amounts padding ~size:h ~kernel:kh ~stride:sh in
  let pw, _ = Convolution.pad_amounts padding ~size:w ~kernel:kw ~stride:sw in
  let fd = Dense.to_array filter and gd = Dense.to_array grad in
  let dd = Array.make (Shape.numel input_shape) 0.0 in
  for b = 0 to n - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        for ky = 0 to kh - 1 do
          let iy = (oy * sh) + ky - ph in
          if iy >= 0 && iy < h then
            for kx = 0 to kw - 1 do
              let ix = (ox * sw) + kx - pw in
              if ix >= 0 && ix < w then begin
                let ibase = (((b * h) + iy) * w + ix) * cin in
                let fbase = ((ky * kw) + kx) * cin in
                let obase = (((b * oh) + oy) * ow + ox) * cout in
                for c = 0 to cin - 1 do
                  let frow = (fbase + c) * cout in
                  let acc = ref 0.0 in
                  for oc = 0 to cout - 1 do
                    acc := !acc +. (fd.(frow + oc) *. gd.(obase + oc))
                  done;
                  dd.(ibase + c) <- dd.(ibase + c) +. !acc
                done
              end
            done
        done
      done
    done
  done;
  Dense.of_array input_shape dd

let conv2d_backward_filter ?(stride = (1, 1)) ~padding ~filter_shape input grad =
  let sh, sw = stride in
  let ishape = Dense.shape input in
  let n = ishape.(0) and h = ishape.(1) and w = ishape.(2) and cin = ishape.(3) in
  let kh = filter_shape.(0) and kw = filter_shape.(1) and cout = filter_shape.(3) in
  let gshape = Dense.shape grad in
  let oh = gshape.(1) and ow = gshape.(2) in
  let ph, _ = Convolution.pad_amounts padding ~size:h ~kernel:kh ~stride:sh in
  let pw, _ = Convolution.pad_amounts padding ~size:w ~kernel:kw ~stride:sw in
  let id = Dense.to_array input and gd = Dense.to_array grad in
  let dd = Array.make (Shape.numel filter_shape) 0.0 in
  for b = 0 to n - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        for ky = 0 to kh - 1 do
          let iy = (oy * sh) + ky - ph in
          if iy >= 0 && iy < h then
            for kx = 0 to kw - 1 do
              let ix = (ox * sw) + kx - pw in
              if ix >= 0 && ix < w then begin
                let ibase = (((b * h) + iy) * w + ix) * cin in
                let fbase = ((ky * kw) + kx) * cin in
                let obase = (((b * oh) + oy) * ow + ox) * cout in
                for c = 0 to cin - 1 do
                  let iv = id.(ibase + c) in
                  if iv <> 0.0 then begin
                    let frow = (fbase + c) * cout in
                    for oc = 0 to cout - 1 do
                      dd.(frow + oc) <- dd.(frow + oc) +. (iv *. gd.(obase + oc))
                    done
                  end
                done
              end
            done
        done
      done
    done
  done;
  Dense.of_array filter_shape dd
