(** Write-race sanitizer for the domain pool.

    The parallel kernels in {!Dense} and {!Convolution} rely on a
    partitioning argument: each chunk handed to {!Pool.run} writes a
    disjoint slice of the output buffer. Nothing checks that argument —
    an off-by-one in a row partition produces silently corrupt tensors
    (and only on machines with enough cores to split the loop).

    When armed, kernels register the flat Bigarray index ranges each domain
    writes (and the ranges it reads). Two overlapping writes from distinct
    domains, or a write overlapping another domain's recorded read, raise
    {!Race} naming both registration sites. Registration is coarse — one
    interval per chunk — so the armed overhead is a few mutex-guarded list
    operations per {!Pool.run} chunk, not per element.

    Arming: set the [S4O_SANITIZE] environment variable to [1] (read once
    at startup), or call {!set_armed}. Recording is scoped to a pool job:
    {!Pool.run} brackets the parallel section with {!job_begin}/{!job_end},
    and registrations outside a job are dropped, so serial kernels pay one
    atomic load only. *)

type buffer = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

exception Race of string

type interval = { lo : int; len : int; domain : int; who : string }

type access = { buf : buffer; mutable writes : interval list; mutable reads : interval list }

let armed_flag =
  Atomic.make
    (match Sys.getenv_opt "S4O_SANITIZE" with
    | Some ("1" | "true" | "on") -> true
    | Some _ | None -> false)

let armed () = Atomic.get armed_flag
let set_armed b = Atomic.set armed_flag b

let job_active = Atomic.make false

(* All state below is guarded by [mutex]. The per-job buffer list is short
   (a kernel touches a handful of buffers), so linear scans with physical
   equality on the Bigarray value are fine. *)
let mutex = Mutex.create ()
let logs : access list ref = ref []
let intervals_recorded = ref 0
let races_detected = ref 0
let jobs_checked = ref 0

type stats = { jobs : int; intervals : int; races : int }

let stats () =
  Mutex.lock mutex;
  let s =
    { jobs = !jobs_checked; intervals = !intervals_recorded; races = !races_detected }
  in
  Mutex.unlock mutex;
  s

let reset_stats () =
  Mutex.lock mutex;
  intervals_recorded := 0;
  races_detected := 0;
  jobs_checked := 0;
  Mutex.unlock mutex

let job_begin () =
  if armed () then begin
    Mutex.lock mutex;
    logs := [];
    incr jobs_checked;
    Atomic.set job_active true;
    Mutex.unlock mutex
  end

let job_end () =
  if armed () || Atomic.get job_active then begin
    Mutex.lock mutex;
    Atomic.set job_active false;
    logs := [];
    Mutex.unlock mutex
  end

let overlaps a b = a.lo < b.lo + b.len && b.lo < a.lo + a.len

let pp_interval i =
  Printf.sprintf "%s: [%d, %d) on domain %d" i.who i.lo (i.lo + i.len) i.domain

let conflict kind fresh prior =
  incr races_detected;
  Atomic.set job_active false;
  Mutex.unlock mutex;
  raise
    (Race
       (Printf.sprintf "%s race: %s overlaps %s" kind (pp_interval fresh)
          (pp_interval prior)))

let find_log buf =
  match List.find_opt (fun a -> a.buf == buf) !logs with
  | Some a -> a
  | None ->
      let a = { buf; writes = []; reads = [] } in
      logs := a :: !logs;
      a

let foreign i = fun prior -> prior.domain <> i.domain && overlaps i prior

(* [?domain] overrides the writer identity — used by the fuzz tests to
   simulate multi-domain schedules deterministically from one domain. *)
let note_write ?domain buf ~lo ~len ~who =
  if len > 0 && armed () && Atomic.get job_active then begin
    let domain =
      match domain with Some d -> d | None -> (Domain.self () :> int)
    in
    let i = { lo; len; domain; who } in
    Mutex.lock mutex;
    if Atomic.get job_active then begin
      let log = find_log buf in
      incr intervals_recorded;
      (match List.find_opt (foreign i) log.writes with
      | Some prior -> conflict "write-write" i prior
      | None -> ());
      (match List.find_opt (foreign i) log.reads with
      | Some prior -> conflict "write-read" i prior
      | None -> ());
      log.writes <- i :: log.writes;
      Mutex.unlock mutex
    end
    else Mutex.unlock mutex
  end

let note_read ?domain buf ~lo ~len ~who =
  if len > 0 && armed () && Atomic.get job_active then begin
    let domain =
      match domain with Some d -> d | None -> (Domain.self () :> int)
    in
    let i = { lo; len; domain; who } in
    Mutex.lock mutex;
    if Atomic.get job_active then begin
      let log = find_log buf in
      incr intervals_recorded;
      (match List.find_opt (foreign i) log.writes with
      | Some prior -> conflict "read-write" i prior
      | None -> ());
      log.reads <- i :: log.reads;
      Mutex.unlock mutex
    end
    else Mutex.unlock mutex
  end
