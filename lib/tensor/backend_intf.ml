(** The Tensor API of §3, as a module signature. The platform provides three
    implementations — {e naive} (this library's {!Naive_backend}), {e eager}
    (op-by-op asynchronous dispatch, [S4o_eager]), and {e lazy}
    ([S4o_lazy], tracing into an XLA-style JIT) — and user code such as the
    NN library is a functor over this signature, so "switching devices"
    is switching the functor argument, exactly as §3.3 describes. *)

(** The default convolution stride, [(1, 1)], shared by {e every} backend:
    implementations default their [?stride] to this value explicitly rather
    than leaning on whatever their kernel layer defaults to, so the three
    backends cannot drift apart. *)
let default_conv_stride = (1, 1)

(** The default pooling stride is the pooling window itself
    (non-overlapping windows, the TF/Keras convention). *)
let default_pool_stride ~size = size

module type S = sig
  type t

  (** Human-readable backend name ("naive", "eager", "lazy"). *)
  val name : string

  (** {1 Transfers}

      [to_dense] {e observes} the tensor's contents: on the eager backend it
      synchronizes with the device, and on the lazy backend it cuts and
      executes the pending trace. *)

  val of_dense : Dense.t -> t
  val to_dense : t -> Dense.t

  (** Shape is always known without forcing execution (shape inference runs
      while tracing). *)
  val shape : t -> Shape.t

  (** {1 Elementwise} *)

  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t
  val scale : float -> t -> t
  val add_scalar : float -> t -> t
  val exp : t -> t
  val log : t -> t
  val sqrt : t -> t
  val relu : t -> t
  val sigmoid : t -> t
  val tanh : t -> t

  (** [relu_grad x g] is [g] where [x > 0], else [0] — the ReLU pullback as a
      single kernel. *)
  val relu_grad : t -> t -> t

  (** {1 Shape manipulation} *)

  val reshape : t -> Shape.t -> t
  val transpose : t -> t
  val broadcast_to : t -> Shape.t -> t

  (** Adjoint of broadcasting: reduce-sum back to the given shape. *)
  val unbroadcast : t -> Shape.t -> t

  (** {1 Reductions} *)

  val sum_axes : ?keep_dims:bool -> t -> int list -> t
  val sum_all : t -> t
  val mean_all : t -> t

  (** {1 Linear algebra and NN kernels} *)

  val matmul : t -> t -> t

  (** Batched matrix product [\[b;m;k\] x \[b;k;n\]]. *)
  val batch_matmul : t -> t -> t

  (** Transpose of the trailing two axes of a rank-3 tensor. *)
  val batch_transpose : t -> t

  (** [?stride] defaults to {!default_conv_stride} — [(1, 1)] — on every
      backend, for [conv2d] and both backward kernels alike. *)
  val conv2d :
    ?stride:int * int -> padding:Convolution.padding -> t -> t -> t

  val conv2d_backward_input :
    ?stride:int * int ->
    padding:Convolution.padding ->
    input_shape:Shape.t ->
    t ->
    t ->
    t

  val conv2d_backward_filter :
    ?stride:int * int ->
    padding:Convolution.padding ->
    filter_shape:Shape.t ->
    t ->
    t ->
    t

  (** Pooling [?stride] defaults to {!default_pool_stride} — the window
      [size] (non-overlapping windows) — on every backend. *)
  val avg_pool2d : ?stride:int * int -> size:int * int -> t -> t

  val avg_pool2d_backward :
    ?stride:int * int -> size:int * int -> input_shape:Shape.t -> t -> t

  val max_pool2d : ?stride:int * int -> size:int * int -> t -> t
  val max_pool2d_backward : ?stride:int * int -> size:int * int -> t -> t -> t
  val softmax : t -> t
  val log_softmax : t -> t
end
