(** The naive backend of §3.1: {!Dense} tensors executed synchronously on the
    host with zero dispatch machinery. Portable, low-overhead, and ideal for
    small tensors (the mobile spline experiment of §5.1.3 runs on it). *)

type t = Dense.t

let name = "naive"
let of_dense t = t
let to_dense t = t
let shape = Dense.shape
let add = Dense.add
let sub = Dense.sub
let mul = Dense.mul
let div = Dense.div
let neg = Dense.neg
let scale = Dense.scale
let add_scalar = Dense.add_scalar
let exp = Dense.exp
let log = Dense.log
let sqrt = Dense.sqrt
let relu = Dense.relu
let sigmoid = Dense.sigmoid
let tanh = Dense.tanh
let relu_grad x g = Dense.map2 (fun xv gv -> if xv > 0.0 then gv else 0.0) x g
let reshape = Dense.reshape
let transpose = Dense.transpose
let broadcast_to = Dense.broadcast_to
let unbroadcast = Dense.unbroadcast
let sum_axes = Dense.sum_axes
let sum_all t = Dense.scalar (Dense.sum t)
let mean_all t = Dense.scalar (Dense.mean t)
let matmul a b = Dense.matmul a b
let batch_matmul a b = Dense.batch_matmul a b
let batch_transpose = Dense.batch_transpose
let conv2d ?(stride = Backend_intf.default_conv_stride) ~padding input filter =
  Convolution.conv2d ~stride ~padding input filter

let conv2d_backward_input ?(stride = Backend_intf.default_conv_stride) ~padding
    ~input_shape filter grad =
  Convolution.conv2d_backward_input ~stride ~padding ~input_shape filter grad

let conv2d_backward_filter ?(stride = Backend_intf.default_conv_stride)
    ~padding ~filter_shape input grad =
  Convolution.conv2d_backward_filter ~stride ~padding ~filter_shape input grad

let avg_pool2d ?stride ~size input =
  let stride =
    Option.value stride ~default:(Backend_intf.default_pool_stride ~size)
  in
  Convolution.avg_pool2d ~size ~stride input

let avg_pool2d_backward ?stride ~size ~input_shape grad =
  let stride =
    Option.value stride ~default:(Backend_intf.default_pool_stride ~size)
  in
  Convolution.avg_pool2d_backward ~size ~stride ~input_shape grad

let max_pool2d ?stride ~size input =
  let stride =
    Option.value stride ~default:(Backend_intf.default_pool_stride ~size)
  in
  Convolution.max_pool2d ~size ~stride input

let max_pool2d_backward ?stride ~size input grad =
  let stride =
    Option.value stride ~default:(Backend_intf.default_pool_stride ~size)
  in
  Convolution.max_pool2d_backward ~size ~stride input grad
let softmax = Dense.softmax
let log_softmax = Dense.log_softmax
