module A = Bigarray.Array1

type buffer = (float, Bigarray.float64_elt, Bigarray.c_layout) A.t
type t = { shape : Shape.t; data : buffer }

exception Shape_error = Shape.Shape_error

let fail fmt = Format.kasprintf (fun s -> raise (Shape_error s)) fmt

(* Every tensor buffer in the library is allocated here, so this is the
   single hook for off-heap memory accounting. When the global tracker is
   off (the default) the cost is one load and branch; when on, the buffer
   is charged to the current attribution tag and a GC finaliser credits
   the free. The finaliser captures the tracker generation so a buffer
   that dies after [Memory.reset] is dropped instead of corrupting the
   next measurement's balance. *)
let alloc n : buffer =
  let data = A.create Bigarray.float64 Bigarray.c_layout n in
  let mem = S4o_obs.Memory.global in
  if S4o_obs.Memory.enabled mem then begin
    let bytes = 8 * n in
    let tag = S4o_obs.Memory.current_tag mem in
    let gen = S4o_obs.Memory.generation mem in
    S4o_obs.Memory.alloc mem ~tag bytes;
    Gc.finalise (fun _ -> S4o_obs.Memory.free_gen mem ~gen ~tag bytes) data
  end;
  data

(* {1 Creation} *)

let create shape v =
  Shape.check_valid shape;
  let data = alloc (Shape.numel shape) in
  A.fill data v;
  { shape = Array.copy shape; data }

let zeros shape = create shape 0.0
let ones shape = create shape 1.0

(* Uninitialized storage — kernels-only: every element must be written
   before the tensor escapes (im2col writes zero spans for padding columns
   explicitly instead of paying a full pre-fill pass). *)
let uninit shape =
  Shape.check_valid shape;
  { shape = Array.copy shape; data = alloc (Shape.numel shape) }

let scalar v =
  let data = alloc 1 in
  A.unsafe_set data 0 v;
  { shape = [||]; data }

let of_array shape src =
  Shape.check_valid shape;
  if Array.length src <> Shape.numel shape then
    fail "of_array: %d elements for shape %s" (Array.length src)
      (Shape.to_string shape);
  let data = alloc (Array.length src) in
  for i = 0 to Array.length src - 1 do
    A.unsafe_set data i (Array.unsafe_get src i)
  done;
  { shape = Array.copy shape; data }

(* Fills in increasing flat order: PRNG-fed initializers consume their
   stream element-by-element and rely on it. *)
let init_flat shape f =
  Shape.check_valid shape;
  let n = Shape.numel shape in
  let data = alloc n in
  for i = 0 to n - 1 do
    A.unsafe_set data i (f i)
  done;
  { shape = Array.copy shape; data }

let init shape f = init_flat shape (fun i -> f (Shape.unravel shape i))

let arange n = init_flat [| n |] float_of_int

let linspace ~lo ~hi n =
  if n < 2 then fail "linspace: need at least 2 points";
  let step = (hi -. lo) /. float_of_int (n - 1) in
  init_flat [| n |] (fun i -> lo +. (step *. float_of_int i))

let rand_uniform g ?(lo = 0.0) ?(hi = 1.0) shape =
  init_flat shape (fun _ -> Prng.uniform g ~lo ~hi)

let rand_normal g ?(mean = 0.0) ?(stddev = 1.0) shape =
  init_flat shape (fun _ -> Prng.gaussian g ~mean ~stddev)

(* {1 Access} *)

let shape t = t.shape
let rank t = Shape.rank t.shape
let numel t = A.dim t.data

let get t idx =
  if Array.length idx <> rank t then
    fail "get: index rank %d for shape %s" (Array.length idx)
      (Shape.to_string t.shape);
  t.data.{Shape.offset (Shape.strides t.shape) idx}

let get_flat t i = t.data.{i}

let item t =
  if numel t <> 1 then fail "item: tensor has %d elements" (numel t);
  A.unsafe_get t.data 0

let to_array t = Array.init (numel t) (fun i -> A.unsafe_get t.data i)
let unsafe_data t = t.data

let copy t =
  let n = numel t in
  let data = alloc n in
  A.blit t.data data;
  { shape = Array.copy t.shape; data }

let with_shape t new_shape =
  Shape.check_valid new_shape;
  if Shape.numel new_shape <> numel t then
    fail "with_shape: %s has %d elements, tensor has %d"
      (Shape.to_string new_shape) (Shape.numel new_shape) (numel t);
  S4o_obs.Memory.note_view S4o_obs.Memory.global;
  { shape = Array.copy new_shape; data = t.data }

(* {1 Functional update} *)

let set t idx v =
  let fresh = copy t in
  fresh.data.{Shape.offset (Shape.strides t.shape) idx} <- v;
  fresh

let set_flat t i v =
  let fresh = copy t in
  fresh.data.{i} <- v;
  fresh

(* {1 In-place} *)

let fill ?(pos = 0) ?len t v =
  let len = match len with Some l -> l | None -> numel t - pos in
  if pos < 0 || len < 0 || pos + len > numel t then
    fail "fill: [%d, %d) out of bounds for %d elements" pos (pos + len)
      (numel t);
  A.fill (A.sub t.data pos len) v

let fill_inplace t v = fill t v

let blit_flat ~src ~src_pos ~dst ~dst_pos ~len =
  if len < 0 || src_pos < 0 || src_pos + len > numel src then
    fail "blit_flat: src range [%d, %d) out of bounds for %d elements" src_pos
      (src_pos + len) (numel src);
  if dst_pos < 0 || dst_pos + len > numel dst then
    fail "blit_flat: dst range [%d, %d) out of bounds for %d elements" dst_pos
      (dst_pos + len) (numel dst);
  A.blit (A.sub src.data src_pos len) (A.sub dst.data dst_pos len)

let blit src dst =
  if numel src <> numel dst then
    fail "blit: %d elements into %d" (numel src) (numel dst);
  A.blit src.data dst.data

let check_same_shape ctx a b =
  if not (Shape.equal a.shape b.shape) then
    fail "%s: shape mismatch %s vs %s" ctx (Shape.to_string a.shape)
      (Shape.to_string b.shape)

let add_inplace dst src =
  check_same_shape "add_inplace" dst src;
  let d = dst.data and s = src.data in
  for i = 0 to numel dst - 1 do
    A.unsafe_set d i (A.unsafe_get d i +. A.unsafe_get s i)
  done

let axpy_inplace ~alpha dst x =
  check_same_shape "axpy_inplace" dst x;
  let d = dst.data and s = x.data in
  for i = 0 to numel dst - 1 do
    A.unsafe_set d i (A.unsafe_get d i +. (alpha *. A.unsafe_get s i))
  done

let scale_inplace t alpha =
  let d = t.data in
  for i = 0 to numel t - 1 do
    A.unsafe_set d i (alpha *. A.unsafe_get d i)
  done

let add_at_inplace t idx v =
  let off = Shape.offset (Shape.strides t.shape) idx in
  t.data.{off} <- t.data.{off} +. v

(* {1 Elementwise} *)

let map f t =
  let n = numel t in
  let out = alloc n in
  let d = t.data in
  for i = 0 to n - 1 do
    A.unsafe_set out i (f (A.unsafe_get d i))
  done;
  { shape = Array.copy t.shape; data = out }

(* The generic broadcasting walker: maps each output index back through
   stride-0 "stretched" dimensions with a carry-increment multi-index.
   Correct for every shape pair; the specialized entry points below only
   exist because this walk costs ~10x a flat loop per element. *)
let map2_strided f a b =
  let out_shape = Shape.broadcast a.shape b.shape in
  let r = Shape.rank out_shape in
  let aligned_strides s =
    (* strides of [s] aligned to the right of [out_shape], 0 on stretched
       or missing dimensions *)
    let rs = Shape.rank s in
    let st = Shape.strides s in
    Array.init r (fun i ->
        let j = i - (r - rs) in
        if j < 0 || s.(j) = 1 then 0 else st.(j))
  in
  let sa = aligned_strides a.shape and sb = aligned_strides b.shape in
  let out = alloc (Shape.numel out_shape) in
  let da = a.data and db = b.data in
  let idx = Array.make r 0 in
  let n = Shape.numel out_shape in
  for flat = 0 to n - 1 do
    A.unsafe_set out flat
      (f (A.unsafe_get da (Shape.offset sa idx))
         (A.unsafe_get db (Shape.offset sb idx)));
    (* increment the multi-index, rightmost dimension fastest *)
    let k = ref (r - 1) in
    let carrying = ref (flat < n - 1) in
    while !carrying && !k >= 0 do
      idx.(!k) <- idx.(!k) + 1;
      if idx.(!k) = out_shape.(!k) then begin
        idx.(!k) <- 0;
        decr k
      end
      else carrying := false
    done
  done;
  { shape = out_shape; data = out }

(* [b] broadcasts onto [a.shape] as a single constant *)
let scalar_onto a b = numel b = 1 && Shape.rank b.shape <= Shape.rank a.shape

let map2 f a b =
  if Shape.equal a.shape b.shape then begin
    let n = numel a in
    let out = alloc n in
    let da = a.data and db = b.data in
    for i = 0 to n - 1 do
      A.unsafe_set out i (f (A.unsafe_get da i) (A.unsafe_get db i))
    done;
    { shape = Array.copy a.shape; data = out }
  end
  else if scalar_onto a b then begin
    let c = A.unsafe_get b.data 0 in
    let n = numel a in
    let out = alloc n in
    let da = a.data in
    for i = 0 to n - 1 do
      A.unsafe_set out i (f (A.unsafe_get da i) c)
    done;
    { shape = Array.copy a.shape; data = out }
  end
  else if scalar_onto b a then begin
    let c = A.unsafe_get a.data 0 in
    let n = numel b in
    let out = alloc n in
    let db = b.data in
    for i = 0 to n - 1 do
      A.unsafe_set out i (f c (A.unsafe_get db i))
    done;
    { shape = Array.copy b.shape; data = out }
  end
  else map2_strided f a b

(* The four arithmetic ops are hand-monomorphized: without flambda the
   closure passed to [map2] is an indirect call per element, which is most
   of the cost of the op. Each gets the same three paths as [map2]. *)

let add a b =
  if Shape.equal a.shape b.shape then begin
    let n = numel a in
    let out = alloc n in
    let da = a.data and db = b.data in
    for i = 0 to n - 1 do
      A.unsafe_set out i (A.unsafe_get da i +. A.unsafe_get db i)
    done;
    { shape = Array.copy a.shape; data = out }
  end
  else if scalar_onto a b then begin
    let c = A.unsafe_get b.data 0 in
    let n = numel a in
    let out = alloc n in
    let da = a.data in
    for i = 0 to n - 1 do
      A.unsafe_set out i (A.unsafe_get da i +. c)
    done;
    { shape = Array.copy a.shape; data = out }
  end
  else if scalar_onto b a then begin
    let c = A.unsafe_get a.data 0 in
    let n = numel b in
    let out = alloc n in
    let db = b.data in
    for i = 0 to n - 1 do
      A.unsafe_set out i (c +. A.unsafe_get db i)
    done;
    { shape = Array.copy b.shape; data = out }
  end
  else map2_strided ( +. ) a b

let sub a b =
  if Shape.equal a.shape b.shape then begin
    let n = numel a in
    let out = alloc n in
    let da = a.data and db = b.data in
    for i = 0 to n - 1 do
      A.unsafe_set out i (A.unsafe_get da i -. A.unsafe_get db i)
    done;
    { shape = Array.copy a.shape; data = out }
  end
  else if scalar_onto a b then begin
    let c = A.unsafe_get b.data 0 in
    let n = numel a in
    let out = alloc n in
    let da = a.data in
    for i = 0 to n - 1 do
      A.unsafe_set out i (A.unsafe_get da i -. c)
    done;
    { shape = Array.copy a.shape; data = out }
  end
  else if scalar_onto b a then begin
    let c = A.unsafe_get a.data 0 in
    let n = numel b in
    let out = alloc n in
    let db = b.data in
    for i = 0 to n - 1 do
      A.unsafe_set out i (c -. A.unsafe_get db i)
    done;
    { shape = Array.copy b.shape; data = out }
  end
  else map2_strided ( -. ) a b

let mul a b =
  if Shape.equal a.shape b.shape then begin
    let n = numel a in
    let out = alloc n in
    let da = a.data and db = b.data in
    for i = 0 to n - 1 do
      A.unsafe_set out i (A.unsafe_get da i *. A.unsafe_get db i)
    done;
    { shape = Array.copy a.shape; data = out }
  end
  else if scalar_onto a b then begin
    let c = A.unsafe_get b.data 0 in
    let n = numel a in
    let out = alloc n in
    let da = a.data in
    for i = 0 to n - 1 do
      A.unsafe_set out i (A.unsafe_get da i *. c)
    done;
    { shape = Array.copy a.shape; data = out }
  end
  else if scalar_onto b a then begin
    let c = A.unsafe_get a.data 0 in
    let n = numel b in
    let out = alloc n in
    let db = b.data in
    for i = 0 to n - 1 do
      A.unsafe_set out i (c *. A.unsafe_get db i)
    done;
    { shape = Array.copy b.shape; data = out }
  end
  else map2_strided ( *. ) a b

let div a b =
  if Shape.equal a.shape b.shape then begin
    let n = numel a in
    let out = alloc n in
    let da = a.data and db = b.data in
    for i = 0 to n - 1 do
      A.unsafe_set out i (A.unsafe_get da i /. A.unsafe_get db i)
    done;
    { shape = Array.copy a.shape; data = out }
  end
  else if scalar_onto a b then begin
    let c = A.unsafe_get b.data 0 in
    let n = numel a in
    let out = alloc n in
    let da = a.data in
    for i = 0 to n - 1 do
      A.unsafe_set out i (A.unsafe_get da i /. c)
    done;
    { shape = Array.copy a.shape; data = out }
  end
  else if scalar_onto b a then begin
    let c = A.unsafe_get a.data 0 in
    let n = numel b in
    let out = alloc n in
    let db = b.data in
    for i = 0 to n - 1 do
      A.unsafe_set out i (c /. A.unsafe_get db i)
    done;
    { shape = Array.copy b.shape; data = out }
  end
  else map2_strided ( /. ) a b

let neg t =
  let n = numel t in
  let out = alloc n in
  let d = t.data in
  for i = 0 to n - 1 do
    A.unsafe_set out i (-.A.unsafe_get d i)
  done;
  { shape = Array.copy t.shape; data = out }

let scale alpha t =
  let n = numel t in
  let out = alloc n in
  let d = t.data in
  for i = 0 to n - 1 do
    A.unsafe_set out i (alpha *. A.unsafe_get d i)
  done;
  { shape = Array.copy t.shape; data = out }

let relu t =
  let n = numel t in
  let out = alloc n in
  let d = t.data in
  for i = 0 to n - 1 do
    let x = A.unsafe_get d i in
    A.unsafe_set out i (if x > 0.0 then x else 0.0)
  done;
  { shape = Array.copy t.shape; data = out }

let add_scalar c = map (fun x -> c +. x)
let pow_scalar t p = map (fun x -> Float.pow x p) t
let exp = map Float.exp
let log = map Float.log
let sqrt = map Float.sqrt
let abs = map Float.abs
let sign = map (fun x -> if x > 0.0 then 1.0 else if x < 0.0 then -1.0 else 0.0)
let sigmoid = map (fun x -> 1.0 /. (1.0 +. Float.exp (-.x)))
let tanh = map Float.tanh
let maximum = map2 Float.max
let minimum = map2 Float.min
let clip ~lo ~hi = map (fun x -> Float.min hi (Float.max lo x))

(* {1 Comparison} *)

let equal a b =
  Shape.equal a.shape b.shape
  && begin
       let da = a.data and db = b.data in
       let ok = ref true in
       let i = ref 0 in
       let n = numel a in
       while !ok && !i < n do
         (* [=], not [Float.equal]: NaN <> NaN, as polymorphic equality on
            the old float-array storage had it *)
         if not (A.unsafe_get da !i = A.unsafe_get db !i) then ok := false;
         incr i
       done;
       !ok
     end

let allclose ?(rtol = 1e-5) ?(atol = 1e-8) a b =
  Shape.equal a.shape b.shape
  && begin
       let da = a.data and db = b.data in
       let ok = ref true in
       for i = 0 to numel a - 1 do
         let x = A.unsafe_get da i and y = A.unsafe_get db i in
         if Float.abs (x -. y) > atol +. (rtol *. Float.abs y) then ok := false
       done;
       !ok
     end

let hash_contents ?(prefix = 64) t =
  let n = min (max 0 prefix) (numel t) in
  let h = ref (Shape.hash t.shape) in
  let d = t.data in
  for i = 0 to n - 1 do
    let bits = Int64.to_int (Int64.bits_of_float (A.unsafe_get d i)) in
    h := ((!h * 31) lxor bits) land max_int
  done;
  !h

(* {1 Reductions} *)

let sum t =
  let d = t.data in
  let acc = ref 0.0 in
  for i = 0 to numel t - 1 do
    acc := !acc +. A.unsafe_get d i
  done;
  !acc

let mean t = sum t /. float_of_int (numel t)

let max_value t =
  let d = t.data in
  let acc = ref Float.neg_infinity in
  for i = 0 to numel t - 1 do
    acc := Float.max !acc (A.unsafe_get d i)
  done;
  !acc

let min_value t =
  let d = t.data in
  let acc = ref Float.infinity in
  for i = 0 to numel t - 1 do
    acc := Float.min !acc (A.unsafe_get d i)
  done;
  !acc

let sum_axes ?(keep_dims = false) t axes =
  let out_shape_kept = Shape.reduce_axes ~keep_dims:true t.shape axes in
  let out = zeros out_shape_kept in
  let st_out = Shape.strides out_shape_kept in
  let r = rank t in
  let n = numel t in
  let d = t.data and od = out.data in
  let idx = Array.make r 0 in
  for flat = 0 to n - 1 do
    (* the output offset ignores reduced axes because their kept size is 1 *)
    let off = ref 0 in
    for i = 0 to r - 1 do
      if out_shape_kept.(i) <> 1 then off := !off + (st_out.(i) * idx.(i))
    done;
    A.unsafe_set od !off (A.unsafe_get od !off +. A.unsafe_get d flat);
    let k = ref (r - 1) in
    let carrying = ref (flat < n - 1) in
    while !carrying && !k >= 0 do
      idx.(!k) <- idx.(!k) + 1;
      if idx.(!k) = t.shape.(!k) then begin
        idx.(!k) <- 0;
        decr k
      end
      else carrying := false
    done
  done;
  if keep_dims then out
  else { out with shape = Shape.reduce_axes ~keep_dims:false t.shape axes }

let mean_axes ?keep_dims t axes =
  let reduced =
    List.fold_left (fun acc ax -> acc * t.shape.(ax)) 1 axes |> float_of_int
  in
  scale (1.0 /. reduced) (sum_axes ?keep_dims t axes)

let argmax_rows t =
  if rank t <> 2 then
    fail "argmax_rows: expected rank 2, got %s" (Shape.to_string t.shape);
  let n = t.shape.(0) and c = t.shape.(1) in
  let d = t.data in
  Array.init n (fun i ->
      let best = ref 0 in
      for j = 1 to c - 1 do
        if A.unsafe_get d ((i * c) + j) > A.unsafe_get d ((i * c) + !best) then
          best := j
      done;
      !best)

(* {1 Shape manipulation} *)

let reshape t new_shape =
  Shape.check_valid new_shape;
  if not (Shape.can_reshape t.shape new_shape) then
    fail "reshape: %s to %s" (Shape.to_string t.shape)
      (Shape.to_string new_shape);
  let fresh = copy t in
  { fresh with shape = Array.copy new_shape }

let flatten_to_2d t =
  if rank t < 1 then fail "flatten_to_2d: rank 0";
  let n = t.shape.(0) in
  reshape t [| n; numel t / n |]

let broadcast_to t target =
  let out = Shape.broadcast t.shape target in
  if not (Shape.equal out target) then
    fail "broadcast_to: %s does not broadcast to %s" (Shape.to_string t.shape)
      (Shape.to_string target);
  map2 (fun x _ -> x) t (zeros target)

let unbroadcast t target =
  if Shape.equal t.shape target then t
  else begin
    let r = rank t and rt = Shape.rank target in
    (* sum away leading extra dimensions *)
    let lead = List.init (r - rt) (fun i -> i) in
    let t = if lead = [] then t else sum_axes t lead in
    (* sum over stretched (size-1) dimensions, keeping dims *)
    let axes = ref [] in
    Array.iteri
      (fun i d -> if d = 1 && (shape t).(i) <> 1 then axes := i :: !axes)
      target;
    let t = if !axes = [] then t else sum_axes ~keep_dims:true t !axes in
    reshape t target
  end

let transpose t =
  if rank t <> 2 then
    fail "transpose: expected rank 2, got %s" (Shape.to_string t.shape);
  let m = t.shape.(0) and n = t.shape.(1) in
  let d = t.data in
  init_flat [| n; m |] (fun flat ->
      let i = flat / m and j = flat mod m in
      A.unsafe_get d ((j * n) + i))

let permute t perm =
  let r = rank t in
  if Array.length perm <> r then fail "permute: rank mismatch";
  let seen = Array.make r false in
  Array.iter
    (fun p ->
      if p < 0 || p >= r || seen.(p) then fail "permute: invalid permutation";
      seen.(p) <- true)
    perm;
  let out_shape = Array.map (fun p -> t.shape.(p)) perm in
  let st = Shape.strides t.shape in
  let d = t.data in
  init out_shape (fun out_idx ->
      let src = Array.make r 0 in
      Array.iteri (fun i p -> src.(p) <- out_idx.(i)) perm;
      A.unsafe_get d (Shape.offset st src))

let concat a b axis =
  let out_shape = Shape.concat_dim a.shape b.shape axis in
  let st_a = Shape.strides a.shape and st_b = Shape.strides b.shape in
  let da = a.data and db = b.data in
  init out_shape (fun idx ->
      if idx.(axis) < a.shape.(axis) then A.unsafe_get da (Shape.offset st_a idx)
      else begin
        let idx' = Array.copy idx in
        idx'.(axis) <- idx.(axis) - a.shape.(axis);
        A.unsafe_get db (Shape.offset st_b idx')
      end)

let slice t ~axis ~start ~len =
  if axis < 0 || axis >= rank t then fail "slice: axis %d out of range" axis;
  if start < 0 || len < 0 || start + len > t.shape.(axis) then
    fail "slice: [%d, %d) out of bounds for axis of size %d" start (start + len)
      t.shape.(axis);
  let out_shape = Array.copy t.shape in
  out_shape.(axis) <- len;
  let st = Shape.strides t.shape in
  let d = t.data in
  init out_shape (fun idx ->
      let idx' = Array.copy idx in
      idx'.(axis) <- idx.(axis) + start;
      A.unsafe_get d (Shape.offset st idx'))

let one_hot ~classes labels =
  let n = numel labels in
  let out = zeros [| n; classes |] in
  let d = labels.data and od = out.data in
  for i = 0 to n - 1 do
    let c = int_of_float (A.unsafe_get d i) in
    if c < 0 || c >= classes then fail "one_hot: label %d out of range" c;
    A.unsafe_set od ((i * classes) + c) 1.0
  done;
  out

(* {1 Linear algebra} *)

(* Below this many scalar multiply-adds a matmul runs in the calling domain:
   fan-out overhead would dominate, and small unit-test products stay on one
   domain. 2^16 = a 40x40x40 product, roughly. *)
let serial_cutoff = 1 lsl 16

(* Cache block sizes: [kc_block] rows of B (one block of the reduction
   axis) by [nc_block] columns is sized to sit in L1/L2 while a pair of A
   rows streams past it. *)
let kc_block = 128
let nc_block = 128

(* Accumulate rows [lo, hi) of the product A[m,k] x B[k,n] into C.
   [ao]/[bo]/[co] are flat base offsets (batch_matmul reuses the kernel per
   batch). C must be zeroed by the caller.

   Determinism: for every output element the accumulation order is "kc
   blocks ascending, p ascending within the block" — a local accumulator
   per (element, block) is folded into C once per block. That order is the
   same in the 2x4 micro-kernel and in the edge loops, and is independent
   of [lo]/[hi], so any row partition (any domain count) produces
   bit-identical results. (B-panel packing below only rearranges where the
   same values are read from; it does not touch that order.) *)
let matmul_rows ~n ~k (da : buffer) ao (db : buffer) bo (dc : buffer) co lo hi =
  (* Scratch for the packed B panel: full 4-column quads laid out so the
     micro-kernel reads 4 consecutive floats per p step (unit stride
     instead of a +n walk through B — each p then consumes half a cache
     line sequentially and the hardware prefetcher keeps up). Quad q of a
     panel lives at [q*kl*4 + (p-p0)*4 + t]. A plain float array keeps
     the reads unboxed. *)
  let pack = Array.make (min kc_block k * min nc_block n) 0.0 in
  let pp = ref 0 in
  while !pp < k do
    let p0 = !pp in
    let p1 = min k (p0 + kc_block) in
    let kl = p1 - p0 in
    let kl4 = kl * 4 in
    let jj = ref 0 in
    while !jj < n do
      let j0 = !jj in
      let j1 = min n (j0 + nc_block) in
      let nquads = (j1 - j0) / 4 in
      (* pack: read B row-major (sequential), scatter into micro-panels *)
      for p = p0 to p1 - 1 do
        let src = bo + (p * n) + j0 in
        let dp = (p - p0) * 4 in
        for q = 0 to nquads - 1 do
          let s = src + (q * 4) and d = (q * kl4) + dp in
          Array.unsafe_set pack d (A.unsafe_get db s);
          Array.unsafe_set pack (d + 1) (A.unsafe_get db (s + 1));
          Array.unsafe_set pack (d + 2) (A.unsafe_get db (s + 2));
          Array.unsafe_set pack (d + 3) (A.unsafe_get db (s + 3))
        done
      done;
      let i = ref lo in
      (* 2x4 register micro-kernel *)
      while !i + 1 < hi do
        let ia = ao + (!i * k) and ib = ao + ((!i + 1) * k) in
        let ca = co + (!i * n) and cb = co + ((!i + 1) * n) in
        let j = ref j0 in
        let q = ref 0 in
        while !j + 3 < j1 do
          let j' = !j in
          let acc00 = ref 0.0 and acc01 = ref 0.0 in
          let acc02 = ref 0.0 and acc03 = ref 0.0 in
          let acc10 = ref 0.0 and acc11 = ref 0.0 in
          let acc12 = ref 0.0 and acc13 = ref 0.0 in
          (* strength-reduced cursors: +1 along the A rows, +4 through the
             packed micro-panel *)
          let ap = ref (ia + p0) and aq = ref (ib + p0) in
          let bb = ref (!q * kl4) in
          for _p = p0 to p1 - 1 do
            let a0 = A.unsafe_get da !ap in
            let a1 = A.unsafe_get da !aq in
            let bi = !bb in
            let b0 = Array.unsafe_get pack bi in
            let b1 = Array.unsafe_get pack (bi + 1) in
            let b2 = Array.unsafe_get pack (bi + 2) in
            let b3 = Array.unsafe_get pack (bi + 3) in
            acc00 := !acc00 +. (a0 *. b0);
            acc01 := !acc01 +. (a0 *. b1);
            acc02 := !acc02 +. (a0 *. b2);
            acc03 := !acc03 +. (a0 *. b3);
            acc10 := !acc10 +. (a1 *. b0);
            acc11 := !acc11 +. (a1 *. b1);
            acc12 := !acc12 +. (a1 *. b2);
            acc13 := !acc13 +. (a1 *. b3);
            incr ap;
            incr aq;
            bb := bi + 4
          done;
          A.unsafe_set dc (ca + j') (A.unsafe_get dc (ca + j') +. !acc00);
          A.unsafe_set dc (ca + j' + 1) (A.unsafe_get dc (ca + j' + 1) +. !acc01);
          A.unsafe_set dc (ca + j' + 2) (A.unsafe_get dc (ca + j' + 2) +. !acc02);
          A.unsafe_set dc (ca + j' + 3) (A.unsafe_get dc (ca + j' + 3) +. !acc03);
          A.unsafe_set dc (cb + j') (A.unsafe_get dc (cb + j') +. !acc10);
          A.unsafe_set dc (cb + j' + 1) (A.unsafe_get dc (cb + j' + 1) +. !acc11);
          A.unsafe_set dc (cb + j' + 2) (A.unsafe_get dc (cb + j' + 2) +. !acc12);
          A.unsafe_set dc (cb + j' + 3) (A.unsafe_get dc (cb + j' + 3) +. !acc13);
          j := j' + 4;
          incr q
        done;
        (* column remainder for the row pair *)
        while !j < j1 do
          let j' = !j in
          let acc0 = ref 0.0 and acc1 = ref 0.0 in
          for p = p0 to p1 - 1 do
            let b = A.unsafe_get db (bo + (p * n) + j') in
            acc0 := !acc0 +. (A.unsafe_get da (ia + p) *. b);
            acc1 := !acc1 +. (A.unsafe_get da (ib + p) *. b)
          done;
          A.unsafe_set dc (ca + j') (A.unsafe_get dc (ca + j') +. !acc0);
          A.unsafe_set dc (cb + j') (A.unsafe_get dc (cb + j') +. !acc1);
          incr j
        done;
        i := !i + 2
      done;
      (* row remainder *)
      if !i < hi then begin
        let ia = ao + (!i * k) in
        let ca = co + (!i * n) in
        let j = ref j0 in
        let q = ref 0 in
        while !j + 3 < j1 do
          let j' = !j in
          let acc0 = ref 0.0 and acc1 = ref 0.0 in
          let acc2 = ref 0.0 and acc3 = ref 0.0 in
          let ap = ref (ia + p0) in
          let bb = ref (!q * kl4) in
          for _p = p0 to p1 - 1 do
            let a0 = A.unsafe_get da !ap in
            let bi = !bb in
            acc0 := !acc0 +. (a0 *. Array.unsafe_get pack bi);
            acc1 := !acc1 +. (a0 *. Array.unsafe_get pack (bi + 1));
            acc2 := !acc2 +. (a0 *. Array.unsafe_get pack (bi + 2));
            acc3 := !acc3 +. (a0 *. Array.unsafe_get pack (bi + 3));
            incr ap;
            bb := bi + 4
          done;
          A.unsafe_set dc (ca + j') (A.unsafe_get dc (ca + j') +. !acc0);
          A.unsafe_set dc (ca + j' + 1) (A.unsafe_get dc (ca + j' + 1) +. !acc1);
          A.unsafe_set dc (ca + j' + 2) (A.unsafe_get dc (ca + j' + 2) +. !acc2);
          A.unsafe_set dc (ca + j' + 3) (A.unsafe_get dc (ca + j' + 3) +. !acc3);
          j := j' + 4;
          incr q
        done;
        while !j < j1 do
          let j' = !j in
          let acc = ref 0.0 in
          for p = p0 to p1 - 1 do
            acc :=
              !acc
              +. (A.unsafe_get da (ia + p) *. A.unsafe_get db (bo + (p * n) + j'))
          done;
          A.unsafe_set dc (ca + j') (A.unsafe_get dc (ca + j') +. !acc);
          incr j
        done
      end;
      jj := j1
    done;
    pp := p1
  done

let matmul ?domains a b =
  if rank a <> 2 || rank b <> 2 then
    fail "matmul: expected rank-2 operands, got %s and %s"
      (Shape.to_string a.shape) (Shape.to_string b.shape);
  let m = a.shape.(0) and k = a.shape.(1) in
  let k' = b.shape.(0) and n = b.shape.(1) in
  if k <> k' then fail "matmul: inner dimensions %d and %d differ" k k';
  let out =
    S4o_obs.Memory.with_tag S4o_obs.Memory.global "matmul" (fun () ->
        zeros [| m; n |])
  in
  let da = a.data and db = b.data and dc = out.data in
  if m * n * k <= serial_cutoff then matmul_rows ~n ~k da 0 db 0 dc 0 0 m
  else
    Pool.run ?domains ~n:m (fun lo hi ->
        Sanitizer.note_write dc ~lo:(lo * n) ~len:((hi - lo) * n)
          ~who:"matmul out rows";
        Sanitizer.note_read da ~lo:(lo * k) ~len:((hi - lo) * k)
          ~who:"matmul A rows";
        Sanitizer.note_read db ~lo:0 ~len:(k * n) ~who:"matmul B";
        matmul_rows ~n ~k da 0 db 0 dc 0 lo hi);
  out

let dot a b =
  if rank a <> 1 || rank b <> 1 || numel a <> numel b then
    fail "dot: expected equal-length vectors";
  let da = a.data and db = b.data in
  let acc = ref 0.0 in
  for i = 0 to numel a - 1 do
    acc := !acc +. (A.unsafe_get da i *. A.unsafe_get db i)
  done;
  !acc

(* {1 NN math} *)

let softmax t =
  if rank t <> 2 then
    fail "softmax: expected rank 2, got %s" (Shape.to_string t.shape);
  let n = t.shape.(0) and c = t.shape.(1) in
  let out = zeros t.shape in
  let d = t.data and od = out.data in
  for i = 0 to n - 1 do
    let m = ref Float.neg_infinity in
    for j = 0 to c - 1 do
      m := Float.max !m (A.unsafe_get d ((i * c) + j))
    done;
    let z = ref 0.0 in
    for j = 0 to c - 1 do
      let e = Float.exp (A.unsafe_get d ((i * c) + j) -. !m) in
      A.unsafe_set od ((i * c) + j) e;
      z := !z +. e
    done;
    for j = 0 to c - 1 do
      A.unsafe_set od ((i * c) + j) (A.unsafe_get od ((i * c) + j) /. !z)
    done
  done;
  out

let log_softmax t =
  if rank t <> 2 then
    fail "log_softmax: expected rank 2, got %s" (Shape.to_string t.shape);
  let n = t.shape.(0) and c = t.shape.(1) in
  let out = zeros t.shape in
  let d = t.data and od = out.data in
  for i = 0 to n - 1 do
    let m = ref Float.neg_infinity in
    for j = 0 to c - 1 do
      m := Float.max !m (A.unsafe_get d ((i * c) + j))
    done;
    let z = ref 0.0 in
    for j = 0 to c - 1 do
      z := !z +. Float.exp (A.unsafe_get d ((i * c) + j) -. !m)
    done;
    let lse = !m +. Float.log !z in
    for j = 0 to c - 1 do
      A.unsafe_set od ((i * c) + j) (A.unsafe_get d ((i * c) + j) -. lse)
    done
  done;
  out

(* {1 Printing} *)

let pp ppf t =
  let n = numel t in
  let budget = 16 in
  Format.fprintf ppf "Tensor%s [" (Shape.to_string t.shape);
  for i = 0 to min n budget - 1 do
    if i > 0 then Format.fprintf ppf ", ";
    Format.fprintf ppf "%g" t.data.{i}
  done;
  if n > budget then Format.fprintf ppf ", ...";
  Format.fprintf ppf "]"

let to_string t = Format.asprintf "%a" pp t

let batch_matmul ?domains a b =
  if rank a <> 3 || rank b <> 3 then
    fail "batch_matmul: expected rank-3 operands, got %s and %s"
      (Shape.to_string a.shape) (Shape.to_string b.shape);
  let bs = a.shape.(0) and m = a.shape.(1) and k = a.shape.(2) in
  if b.shape.(0) <> bs || b.shape.(1) <> k then
    fail "batch_matmul: %s x %s" (Shape.to_string a.shape)
      (Shape.to_string b.shape);
  let n = b.shape.(2) in
  let out =
    S4o_obs.Memory.with_tag S4o_obs.Memory.global "matmul" (fun () ->
        zeros [| bs; m; n |])
  in
  let da = a.data and db = b.data and dc = out.data in
  (* Rows of all batches form one global index space [0, bs*m): each
     worker walks its contiguous span batch by batch, so parallelism does
     not depend on bs and m individually. *)
  let rows lo hi =
    Sanitizer.note_write dc ~lo:(lo * n) ~len:((hi - lo) * n)
      ~who:"batch_matmul out rows";
    Sanitizer.note_read da ~lo:(lo * k) ~len:((hi - lo) * k)
      ~who:"batch_matmul A rows";
    Sanitizer.note_read db ~lo:0 ~len:(bs * k * n) ~who:"batch_matmul B";
    let r = ref lo in
    while !r < hi do
      let batch = !r / m in
      let rlo = !r mod m in
      let rhi = min m (rlo + (hi - !r)) in
      matmul_rows ~n ~k da (batch * m * k) db (batch * k * n) dc (batch * m * n)
        rlo rhi;
      r := !r + (rhi - rlo)
    done
  in
  if bs * m * n * k <= serial_cutoff then rows 0 (bs * m)
  else Pool.run ?domains ~n:(bs * m) rows;
  out

let batch_transpose t =
  if rank t <> 3 then
    fail "batch_transpose: expected rank 3, got %s" (Shape.to_string t.shape);
  permute t [| 0; 2; 1 |]
