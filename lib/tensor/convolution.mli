(** 2-D convolution and pooling kernels over {!Dense} tensors in NHWC layout,
    together with the backward kernels reverse-mode AD needs.

    The convolutions are im2col + blocked matmul: the patch matrix
    [\[n*oh*ow; kh*kw*cin\]] is materialized once (in parallel over patch
    rows) and the O(n^3) work runs through {!Dense.matmul}'s cache-blocked,
    {!Pool}-parallel kernel. 1x1 stride-1 unpadded convolutions skip the
    patch copy entirely. Pooling parallelizes over the batch dimension.
    Small problems (under the matmul serial cutoff) stay on the calling
    domain, and all partitions are bit-deterministic per the {!Pool}
    contract. The original direct-loop kernels live on in {!Reference} as
    the test oracle and benchmark baseline. *)

type padding = Same | Valid

(** Output spatial size for one dimension. *)
val out_dim : padding -> size:int -> kernel:int -> stride:int -> int

(** [pad_amounts padding ~size ~kernel ~stride] is [(pad_before, pad_after)]. *)
val pad_amounts : padding -> size:int -> kernel:int -> stride:int -> int * int

(** [conv2d ~stride ~padding input filter] with [input : \[n;h;w;cin\]] and
    [filter : \[kh;kw;cin;cout\]] produces [\[n;h';w';cout\]]. [?domains]
    overrides the pool width for this call (benchmark scaling sweeps). *)
val conv2d :
  ?domains:int ->
  ?stride:int * int ->
  padding:padding ->
  Dense.t ->
  Dense.t ->
  Dense.t

(** Gradient of [conv2d] w.r.t. its input. *)
val conv2d_backward_input :
  ?domains:int ->
  ?stride:int * int ->
  padding:padding ->
  input_shape:Shape.t ->
  Dense.t (* filter *) ->
  Dense.t (* output gradient *) ->
  Dense.t

(** Gradient of [conv2d] w.r.t. its filter. *)
val conv2d_backward_filter :
  ?domains:int ->
  ?stride:int * int ->
  padding:padding ->
  filter_shape:Shape.t ->
  Dense.t (* input *) ->
  Dense.t (* output gradient *) ->
  Dense.t

(** [avg_pool2d ~size ~stride input] with [input : \[n;h;w;c\]]. Uses Valid
    padding, matching the paper's LeNet pools. *)
val avg_pool2d : size:int * int -> stride:int * int -> Dense.t -> Dense.t

val avg_pool2d_backward :
  size:int * int ->
  stride:int * int ->
  input_shape:Shape.t ->
  Dense.t (* output gradient *) ->
  Dense.t

val max_pool2d : size:int * int -> stride:int * int -> Dense.t -> Dense.t

(** Needs the forward input to locate each window's maximum. Ties route the
    gradient to the first (row-major) maximal element. *)
val max_pool2d_backward :
  size:int * int ->
  stride:int * int ->
  Dense.t (* forward input *) ->
  Dense.t (* output gradient *) ->
  Dense.t

(** Per-shape operation cost, used by the device cost models: floating-point
    operations of the forward convolution. *)
val conv2d_flops :
  ?stride:int * int -> padding:padding -> input:Shape.t -> Shape.t (* filter *) -> int
