(** [s4o] — command-line driver for the platform.

    - [s4o train]: train a model on a synthetic dataset on any of the three
      Tensor backends (§3's "switch by specifying a device").
    - [s4o trace]: print (or export as GraphViz) the LazyTensor trace of a
      model's forward pass, as in Figure 4.
    - [s4o spline]: run the on-device personalization workload of §5.1.3 and
      project Table 4's runtime styles.
    - [s4o serve]: run the inference-serving runtime (dynamic batching,
      replicas, SLO-aware shedding) against an open- or closed-loop load.

    [dune exec bin/s4o_cli.exe -- <command> --help] for options. *)

open Cmdliner

(* ------------------------------------------------------------------ train *)

type backend_kind = Naive | Eager | Lazy

let train_with (type bk) (module Bk : S4o_tensor.Backend_intf.S with type t = bk)
    ~after_step ~model_name ~epochs ~batch_size ~n ~lr ~seed ~report =
  let module M = S4o_nn.Models.Make (Bk) in
  let module T = S4o_nn.Train.Make (Bk) in
  let module O = S4o_nn.Optimizer.Make (Bk) in
  let rng = S4o_tensor.Prng.create seed in
  let dataset, model =
    match model_name with
    | "lenet" -> (S4o_data.Dataset.synthetic_mnist rng ~n, M.lenet rng)
    | "resnet-tiny" ->
        ( S4o_data.Dataset.synthetic_cifar10 rng ~n,
          M.resnet rng ~in_channels:3 (M.resnet_tiny_config ~classes:10) )
    | "mlp" ->
        (S4o_data.Dataset.two_arcs rng ~n, M.mlp rng ~inputs:2 ~hidden:32 ~outputs:2)
    | other -> Printf.ksprintf failwith "unknown model %s" other
  in
  let batches = S4o_data.Dataset.batches dataset ~batch_size ~shuffle_rng:rng in
  Printf.printf "%s on %s: %d parameters, %d batches of %d\n%!" model_name
    Bk.name (M.L.param_count model) (List.length batches) batch_size;
  let opt = O.adam ~lr model in
  let stats =
    T.fit ~epochs ~after_step
      ~log:(fun epoch s ->
        Printf.printf "epoch %d: loss=%.4f acc=%.1f%%\n%!" epoch s.T.mean_loss
          (100.0 *. s.T.accuracy))
      model opt batches
  in
  Printf.printf "final training accuracy: %.1f%%\n" (100.0 *. stats.T.accuracy);
  report ()

(* Unified post-training report: the same S4o_obs.Stats.t table for both
   accelerated runtimes, plus an optional Chrome-trace export of the
   engine's recorded timeline. *)
let report_observability ~runtime_name ~engine ~stats trace_out =
  Printf.printf "%s runtime stats (S4o_obs.Stats.t):\n%!" runtime_name;
  Format.printf "%a%!" S4o_obs.Stats.pp stats;
  match trace_out with
  | None -> ()
  | Some path -> (
      let recorder = S4o_device.Engine.recorder engine in
      match
        S4o_obs.Chrome_trace.to_file ~process:(runtime_name ^ " runtime") path
          recorder
      with
      | exception Sys_error msg ->
          Printf.eprintf "error: cannot write trace: %s\n" msg;
          exit 1
      | () -> (
          match
            S4o_obs.Chrome_trace.validate (S4o_obs.Chrome_trace.to_string recorder)
          with
          | Ok n ->
              Printf.printf
                "Chrome trace with %d events written to %s (load in \
                 chrome://tracing or ui.perfetto.dev)\n"
                n path
          | Error msg -> Printf.eprintf "internal error: bad trace export: %s\n" msg))

let run_train backend model_name epochs batch_size n lr seed trace_out =
  match backend with
  | Naive ->
      train_with
        (module S4o_tensor.Naive_backend)
        ~after_step:(fun _ -> ())
        ~model_name ~epochs ~batch_size ~n ~lr ~seed
        ~report:(fun () ->
          if trace_out <> None then
            prerr_endline
              "note: --trace-out needs a simulated runtime; use --backend \
               eager or lazy")
  | Eager ->
      let engine = S4o_device.Engine.create S4o_device.Device_spec.gtx1080 in
      let rt = S4o_eager.Runtime.create engine in
      let module Bk = S4o_eager.Eager_backend.Make (struct
        let rt = rt
      end) in
      train_with
        (module Bk)
        ~after_step:(fun _ -> ())
        ~model_name ~epochs ~batch_size ~n ~lr ~seed
        ~report:(fun () ->
          report_observability ~runtime_name:"eager" ~engine
            ~stats:(S4o_eager.Runtime.stats rt) trace_out)
  | Lazy ->
      let engine = S4o_device.Engine.create S4o_device.Device_spec.gtx1080 in
      let rt = S4o_lazy.Lazy_runtime.create engine in
      let module Bk = S4o_lazy.Lazy_backend.Make (struct
        let rt = rt
      end) in
      train_with
        (module Bk)
        ~after_step:(fun ts -> Bk.barrier ts)
        ~model_name ~epochs ~batch_size ~n ~lr ~seed
        ~report:(fun () ->
          report_observability ~runtime_name:"lazy" ~engine
            ~stats:(S4o_lazy.Lazy_runtime.stats rt) trace_out)

let backend_conv =
  Arg.enum [ ("naive", Naive); ("eager", Eager); ("lazy", Lazy) ]

let train_cmd =
  let backend =
    Arg.(value & opt backend_conv Naive & info [ "backend" ] ~doc:"naive|eager|lazy")
  in
  let model =
    Arg.(value & opt string "lenet" & info [ "model" ] ~doc:"lenet|resnet-tiny|mlp")
  in
  let epochs = Arg.(value & opt int 2 & info [ "epochs" ]) in
  let batch = Arg.(value & opt int 32 & info [ "batch-size" ]) in
  let n = Arg.(value & opt int 256 & info [ "examples" ]) in
  let lr = Arg.(value & opt float 1e-3 & info [ "lr" ]) in
  let seed = Arg.(value & opt int 42 & info [ "seed" ]) in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ]
          ~doc:"Write the simulated timeline as Chrome trace-event JSON")
  in
  Cmd.v
    (Cmd.info "train" ~doc:"Train a model on a synthetic dataset")
    Term.(
      const run_train $ backend $ model $ epochs $ batch $ n $ lr $ seed
      $ trace_out)

(* ------------------------------------------------------------------ trace *)

let run_trace batch dot_file =
  let engine = S4o_device.Engine.create S4o_device.Device_spec.desktop_cpu in
  let rt = S4o_lazy.Lazy_runtime.create engine in
  let module Bk = S4o_lazy.Lazy_backend.Make (struct
    let rt = rt
  end) in
  let module M = S4o_nn.Models.Make (Bk) in
  let rng = S4o_tensor.Prng.create 1 in
  let model = M.lenet rng in
  let images = Bk.placeholder [| batch; 28; 28; 1 |] in
  let ctx = M.L.D.new_ctx () in
  let logits = M.L.apply model ctx (M.L.D.const images) in
  let graph = Bk.capture [ M.L.D.value logits ] in
  print_endline (S4o_xla.Hlo.to_string graph);
  match dot_file with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (S4o_xla.Hlo.to_dot ~name:"lenet_forward" graph);
      close_out oc;
      Printf.printf "DOT written to %s\n" path

let trace_cmd =
  let batch = Arg.(value & opt int 1 & info [ "batch" ]) in
  let dot = Arg.(value & opt (some string) None & info [ "dot" ] ~doc:"write GraphViz file") in
  Cmd.v
    (Cmd.info "trace" ~doc:"Print the LazyTensor trace of LeNet's forward pass (Figure 4)")
    Term.(const run_trace $ batch $ dot)

(* ---------------------------------------------------------------- analyze *)

let write_file path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)

let capture_model model_name batch =
  let engine = S4o_device.Engine.create S4o_device.Device_spec.desktop_cpu in
  let rt = S4o_lazy.Lazy_runtime.create engine in
  let module Bk = S4o_lazy.Lazy_backend.Make (struct
    let rt = rt
  end) in
  let module M = S4o_nn.Models.Make (Bk) in
  let rng = S4o_tensor.Prng.create 1 in
  let model, input_shape =
    match model_name with
    | "lenet" -> (M.lenet rng, [| batch; 28; 28; 1 |])
    | "mlp" -> (M.mlp rng ~inputs:2 ~hidden:32 ~outputs:2, [| batch; 2 |])
    | other -> Printf.ksprintf failwith "unknown model %s" other
  in
  let input = Bk.placeholder input_shape in
  let ctx = M.L.D.new_ctx () in
  let logits = M.L.apply model ctx (M.L.D.const input) in
  Bk.capture [ M.L.D.value logits ]

(* The MSIL side of [analyze]: verify a small example module before and
   after the optimization passes, and the generated derivative code. *)
let analyze_sil () =
  let open S4o_sil in
  let b = Builder.create ~name:"mul_sin" ~n_args:2 in
  let m = Builder.binary b Ir.Mul (Builder.param b 0) (Builder.param b 1) in
  Builder.ret b (Builder.unary b Ir.Sin m);
  let f = Builder.finish b in
  let modul = Interp.create_module () in
  Interp.add modul f;
  let simplified = Passes.simplify f in
  (* Generated derivatives recompute primals the tangent may not need;
     verify them the way they ship — after dead-code elimination. *)
  let jvp = Passes.dead_code_elim (Codegen.generate_jvp modul f) in
  List.concat_map
    (fun (stage, fn) ->
      List.map
        (fun v -> (stage, v))
        (S4o_analysis.Verify.func fn))
    [ ("source", f); ("simplify", simplified); ("codegen+dce", jvp) ]

let run_analyze model_name batch sweep pending_limit json_out dot_out
    lints_as_errors =
  let module HC = S4o_analysis.Hlo_check in
  let graph = capture_model model_name batch in
  let findings = HC.check_graph ?pending_limit graph in
  let opt_graph, _ = S4o_xla.Opt.optimize graph in
  let opt_findings = HC.check_graph ?pending_limit opt_graph in
  let sweep_findings =
    match sweep with
    | [] -> []
    | batches ->
        let hz = HC.Hazard.create () in
        List.concat_map
          (fun b -> HC.Hazard.observe hz (capture_model model_name b))
          batches
  in
  let sil_violations = analyze_sil () in
  let report name g fs =
    Printf.printf "%s: %d nodes, %d params, %d errors, %d warnings\n" name
      (S4o_xla.Hlo.size g)
      (List.length (S4o_xla.Hlo.params g))
      (List.length (HC.errors fs))
      (List.length (HC.warnings fs));
    List.iter (fun f -> Format.printf "  %a@." HC.pp_finding f) fs
  in
  report (model_name ^ " forward") graph findings;
  report (model_name ^ " optimized") opt_graph opt_findings;
  List.iter (fun f -> Format.printf "  %a@." HC.pp_finding f) sweep_findings;
  Printf.printf "msil example module: %d violations\n"
    (List.length sil_violations);
  List.iter
    (fun (stage, v) ->
      Format.printf "  %s: %a@." stage S4o_analysis.Verify.pp_violation v)
    sil_violations;
  (match dot_out with
  | None -> ()
  | Some path ->
      write_file path (S4o_xla.Hlo.to_dot ~name:(model_name ^ "_forward") graph);
      Printf.printf "DOT written to %s\n" path);
  (match json_out with
  | None -> ()
  | Some path ->
      let json =
        S4o_obs.Json.Obj
          [
            ( "graphs",
              S4o_obs.Json.Arr
                [
                  HC.report_to_json ~graph_name:(model_name ^ " forward") graph
                    (findings @ sweep_findings);
                  HC.report_to_json
                    ~graph_name:(model_name ^ " optimized")
                    opt_graph opt_findings;
                ] );
            ( "msil_violations",
              S4o_obs.Json.Num (float_of_int (List.length sil_violations)) );
          ]
      in
      write_file path (S4o_obs.Json.to_string json);
      Printf.printf "JSON report written to %s\n" path);
  let all = findings @ opt_findings @ sweep_findings in
  let sil_errors =
    List.filter
      (fun (_, v) -> v.S4o_analysis.Verify.severity = S4o_analysis.Verify.Error)
      sil_violations
  in
  let fatal =
    HC.errors all <> [] || sil_errors <> []
    || (lints_as_errors && (HC.warnings all <> [] || sil_violations <> []))
  in
  if fatal then exit 1

let analyze_cmd =
  let model =
    Arg.(value & opt string "lenet" & info [ "model" ] ~doc:"lenet|mlp")
  in
  let batch = Arg.(value & opt int 1 & info [ "batch" ]) in
  let sweep =
    Arg.(
      value
      & opt (list int) []
      & info [ "shape-sweep" ]
          ~doc:
            "Capture the model at each listed batch size and report \
             recompile hazards (many fingerprints, one op skeleton)")
  in
  let pending_limit =
    Arg.(
      value
      & opt (some int) None
      & info [ "pending-limit" ]
          ~doc:"Warn when a single cut exceeds this many nodes")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~doc:"Write the analysis report as JSON")
  in
  let dot =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~doc:"Write the analyzed forward graph as GraphViz")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "lints-as-errors" ] ~doc:"Exit non-zero on any lint")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Static analysis: HLO shape/arity checks and lints on a captured \
          model graph, plus MSIL verification of an example module")
    Term.(
      const run_analyze $ model $ batch $ sweep $ pending_limit $ json $ dot
      $ strict)

(* ----------------------------------------------------------------- spline *)

let run_spline knots data_points shift =
  let module Mr = S4o_mobile.Mobile_runtime in
  let rng = S4o_tensor.Prng.create 7 in
  let workload, _, stats =
    Mr.run_fine_tuning ~n_knots:knots ~n_data:data_points ~user_shift:shift rng
  in
  Printf.printf
    "fine-tuned for real: %d iterations, converged=%b, final loss %.2e\n\n"
    workload.Mr.iterations stats.S4o_spline.Line_search.converged
    stats.S4o_spline.Line_search.final_loss;
  Printf.printf "%-34s %10s %10s %10s\n" "runtime" "train ms" "mem MB" "binary MB";
  List.iter
    (fun style ->
      let r = Mr.simulate style workload in
      Printf.printf "%-34s %10.0f %10.1f %10.1f\n" (Mr.style_name style)
        r.Mr.train_ms r.Mr.memory_mb r.Mr.binary_mb)
    Mr.all_styles

let spline_cmd =
  let knots = Arg.(value & opt int 96 & info [ "knots" ]) in
  let data = Arg.(value & opt int 4000 & info [ "data-points" ]) in
  let shift = Arg.(value & opt float 0.4 & info [ "user-shift" ]) in
  Cmd.v
    (Cmd.info "spline" ~doc:"On-device spline personalization (Table 4 workload)")
    Term.(const run_spline $ knots $ data $ shift)

(* ---------------------------------------------------------------- profile *)

let export_trace ~process path recorder =
  match S4o_obs.Chrome_trace.to_file ~process path recorder with
  | exception Sys_error msg ->
      Printf.eprintf "error: cannot write trace: %s\n" msg;
      exit 1
  | () -> (
      match
        S4o_obs.Chrome_trace.validate (S4o_obs.Chrome_trace.to_string recorder)
      with
      | Ok n ->
          Printf.printf
            "Chrome trace with %d events written to %s (load in \
             chrome://tracing or ui.perfetto.dev)\n"
            n path
      | Error msg ->
          Printf.eprintf "internal error: bad trace export: %s\n" msg;
          exit 1)

(* The deep-profiling entry point: run a training workload with off-heap
   memory tracking on, then report the unified stats, the memory profile,
   the trace analysis (op profile + critical path), and the domain-pool
   busy fractions — with optional Chrome-trace / JSON / Prometheus dumps. *)
let run_profile backend model_name epochs batch_size n lr seed trace_out
    profile_out prom_out =
  let mem = S4o_obs.Memory.global in
  S4o_obs.Memory.reset mem;
  S4o_obs.Memory.set_enabled mem true;
  S4o_tensor.Pool.reset_stats ();
  let engine = S4o_device.Engine.create S4o_device.Device_spec.gtx1080 in
  let finish ~runtime_name ~stats =
    let stats = stats () in
    let recorder = S4o_device.Engine.recorder engine in
    let report = S4o_obs.Analysis.of_recorder recorder in
    Printf.printf "\n%s runtime stats (S4o_obs.Stats.t):\n%!" runtime_name;
    Format.printf "%a%!" S4o_obs.Stats.pp stats;
    Printf.printf "\ntensor memory (off-heap):\n%!";
    Format.printf "%a%!" S4o_obs.Memory.pp mem;
    Printf.printf "\ntrace analysis:\n%!";
    Format.printf "%a%!" S4o_obs.Analysis.pp report;
    let ps = S4o_tensor.Pool.stats () in
    let fractions = S4o_tensor.Pool.busy_fractions ps in
    if ps.S4o_tensor.Pool.jobs > 0 then begin
      Printf.printf
        "\ndomain pool: %d parallel runs, %d chunks, %.3f s in flight\n"
        ps.S4o_tensor.Pool.jobs ps.S4o_tensor.Pool.chunks
        ps.S4o_tensor.Pool.run_wall_seconds;
      List.iter
        (fun (slot, f) ->
          Printf.printf "  domain %d busy %5.1f%%%s\n" slot (100.0 *. f)
            (if slot = 0 then " (caller)" else ""))
        fractions
    end
    else Printf.printf "\ndomain pool: no parallel runs (workload too small)\n";
    (* Fold the memory and pool readouts into the engine's metrics registry
       so the Prometheus exposition carries the whole profile. *)
    let m = S4o_device.Engine.metrics engine in
    let set_gauge name v = S4o_obs.Metrics.set (S4o_obs.Metrics.gauge m name) v in
    set_gauge "memory.tensor_live_bytes"
      (float_of_int (S4o_obs.Memory.live_bytes mem));
    set_gauge "memory.tensor_peak_bytes"
      (float_of_int (S4o_obs.Memory.peak_bytes mem));
    set_gauge "memory.tensor_allocs"
      (float_of_int (S4o_obs.Memory.alloc_count mem));
    List.iter
      (fun (slot, f) ->
        set_gauge (Printf.sprintf "pool.domain%d.busy_fraction" slot) f)
      fractions;
    (match prom_out with
    | None -> ()
    | Some path -> (
        let text = S4o_obs.Prom.to_text m in
        match S4o_obs.Prom.samples_of_text text with
        | Ok samples ->
            write_file path text;
            Printf.printf "Prometheus exposition (%d samples) written to %s\n"
              (List.length samples) path
        | Error e ->
            Printf.eprintf "internal error: bad prometheus output: %s\n" e;
            exit 1));
    (match profile_out with
    | None -> ()
    | Some path ->
        let json =
          S4o_obs.Json.Obj
            [
              ("runtime", S4o_obs.Json.Str runtime_name);
              ("model", S4o_obs.Json.Str model_name);
              ("analysis", S4o_obs.Analysis.to_json report);
              ("memory", S4o_obs.Memory.to_json mem);
            ]
        in
        write_file path (S4o_obs.Json.to_string json);
        Printf.printf "profile JSON written to %s\n" path);
    (match trace_out with
    | None -> ()
    | Some path ->
        export_trace ~process:(runtime_name ^ " runtime") path recorder);
    S4o_obs.Memory.set_enabled mem false
  in
  match backend with
  | Naive ->
      prerr_endline
        "error: profile needs a simulated runtime; use --backend eager or lazy";
      exit 1
  | Eager ->
      let rt = S4o_eager.Runtime.create engine in
      let module Bk = S4o_eager.Eager_backend.Make (struct
        let rt = rt
      end) in
      train_with
        (module Bk)
        ~after_step:(fun _ -> ())
        ~model_name ~epochs ~batch_size ~n ~lr ~seed
        ~report:(fun () ->
          finish ~runtime_name:"eager" ~stats:(fun () ->
              S4o_eager.Runtime.stats rt))
  | Lazy ->
      let rt = S4o_lazy.Lazy_runtime.create engine in
      let module Bk = S4o_lazy.Lazy_backend.Make (struct
        let rt = rt
      end) in
      train_with
        (module Bk)
        ~after_step:(fun ts -> Bk.barrier ts)
        ~model_name ~epochs ~batch_size ~n ~lr ~seed
        ~report:(fun () ->
          finish ~runtime_name:"lazy" ~stats:(fun () ->
              S4o_lazy.Lazy_runtime.stats rt))

let profile_cmd =
  let backend =
    Arg.(
      value & opt backend_conv Lazy & info [ "backend" ] ~doc:"eager|lazy")
  in
  let model =
    Arg.(value & opt string "lenet" & info [ "model" ] ~doc:"lenet|resnet-tiny|mlp")
  in
  let epochs = Arg.(value & opt int 1 & info [ "epochs" ]) in
  let batch = Arg.(value & opt int 32 & info [ "batch-size" ]) in
  let n = Arg.(value & opt int 128 & info [ "examples" ]) in
  let lr = Arg.(value & opt float 1e-3 & info [ "lr" ]) in
  let seed = Arg.(value & opt int 42 & info [ "seed" ]) in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ]
          ~doc:
            "Write the timeline (with the tensor_live_bytes counter track) \
             as Chrome trace-event JSON")
  in
  let profile_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile-out" ]
          ~doc:"Write the trace analysis + memory profile as JSON")
  in
  let prom_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom-out" ]
          ~doc:"Write the metrics registry in Prometheus text format")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Train with deep profiling on: memory accounting, op profile, \
          critical path, Prometheus export")
    Term.(
      const run_profile $ backend $ model $ epochs $ batch $ n $ lr $ seed
      $ trace_out $ profile_out $ prom_out)

(* ------------------------------------------------------------------ serve *)

let strategy_conv =
  let parse s =
    match S4o_serve.Replica.strategy_of_string s with
    | Some st -> Ok st
    | None -> Error (`Msg (Printf.sprintf "unknown strategy %s" s))
  in
  Arg.conv (parse, fun ppf st -> Fmt.string ppf (S4o_serve.Replica.strategy_name st))

let policy_conv =
  let parse s =
    match S4o_serve.Server.policy_of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown policy %s" s))
  in
  Arg.conv (parse, fun ppf p -> Fmt.string ppf (S4o_serve.Server.policy_name p))

let model_conv =
  let parse s =
    match S4o_serve.Model.of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg (Printf.sprintf "unknown model %s" s))
  in
  Arg.conv (parse, fun ppf m -> Fmt.string ppf (S4o_serve.Model.name m))

let run_serve model strategy device replicas max_batch batch_timeout_ms
    queue_capacity slo_ms policy rate burst clients requests seed trace_out
    prom_out =
  let open S4o_serve in
  let spec =
    match S4o_device.Device_spec.of_name device with
    | Some s -> s
    | None ->
        Printf.eprintf "error: unknown device %s\n" device;
        exit 1
  in
  let cfg =
    Server.default_config ~model ~strategy ~spec ~replicas ~max_batch
      ~batch_timeout:(batch_timeout_ms /. 1e3)
      ~queue_capacity ~slo:(slo_ms /. 1e3) ~policy ()
  in
  let workload =
    match clients with
    | Some clients ->
        Server.Closed_loop { clients; think = 1e-3; requests; seed }
    | None ->
        let process =
          match burst with
          | Some burst -> Load_gen.Bursty { rate; burst }
          | None -> Load_gen.Poisson { rate }
        in
        Server.Open_loop { process; requests; seed }
  in
  let t = Server.run cfg workload in
  Format.printf "%a%!" Serve_stats.pp (Server.stats t);
  (match prom_out with
  | None -> ()
  | Some path -> (
      let text = S4o_obs.Prom.to_text (Server.metrics t) in
      match S4o_obs.Prom.samples_of_text text with
      | Ok samples ->
          write_file path text;
          Printf.printf "Prometheus exposition (%d samples) written to %s\n"
            (List.length samples) path
      | Error e ->
          Printf.eprintf "internal error: bad prometheus output: %s\n" e;
          exit 1));
  match trace_out with
  | None -> ()
  | Some path -> (
      match
        S4o_obs.Chrome_trace.processes_to_file path (Server.recorders t)
      with
      | exception Sys_error msg ->
          Printf.eprintf "error: cannot write trace: %s\n" msg;
          exit 1
      | () -> (
          match
            S4o_obs.Chrome_trace.validate
              (S4o_obs.Chrome_trace.processes_to_string (Server.recorders t))
          with
          | Ok n ->
              Printf.printf
                "Chrome trace with %d events written to %s (load in \
                 chrome://tracing or ui.perfetto.dev)\n"
                n path
          | Error msg ->
              Printf.eprintf "internal error: bad trace export: %s\n" msg))

let serve_cmd =
  let model =
    Arg.(
      value
      & opt model_conv S4o_serve.Model.Lenet
      & info [ "model" ] ~doc:"lenet|resnet-tiny|mlp")
  in
  let strategy =
    Arg.(
      value
      & opt strategy_conv S4o_serve.Replica.lazy_tensor
      & info [ "strategy" ] ~doc:"lazy|eager|pytorch")
  in
  let device =
    Arg.(value & opt string "gtx1080" & info [ "device" ] ~doc:"device spec name")
  in
  let replicas = Arg.(value & opt int 2 & info [ "replicas" ]) in
  let max_batch = Arg.(value & opt int 8 & info [ "max-batch" ]) in
  let timeout =
    Arg.(value & opt float 1.0 & info [ "batch-timeout-ms" ] ~doc:"batching window")
  in
  let queue = Arg.(value & opt int 64 & info [ "queue-capacity" ]) in
  let slo = Arg.(value & opt float 20.0 & info [ "slo-ms" ] ~doc:"latency deadline") in
  let policy =
    Arg.(
      value
      & opt policy_conv S4o_serve.Server.Least_loaded
      & info [ "policy" ] ~doc:"least-loaded|round-robin")
  in
  let rate =
    Arg.(value & opt float 8_000.0 & info [ "rate" ] ~doc:"open-loop arrivals/s")
  in
  let burst =
    Arg.(
      value
      & opt (some int) None
      & info [ "burst" ] ~doc:"bursty arrivals of this size (open loop)")
  in
  let clients =
    Arg.(
      value
      & opt (some int) None
      & info [ "clients" ] ~doc:"closed-loop clients (overrides --rate)")
  in
  let requests = Arg.(value & opt int 2_000 & info [ "requests" ]) in
  let seed = Arg.(value & opt int 11 & info [ "seed" ]) in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ]
          ~doc:"Write server + replica timelines as Chrome trace-event JSON")
  in
  let prom_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom-out" ]
          ~doc:"Write the server metrics registry in Prometheus text format")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve inference on simulated replicas with dynamic batching")
    Term.(
      const run_serve $ model $ strategy $ device $ replicas $ max_batch
      $ timeout $ queue $ slo $ policy $ rate $ burst $ clients $ requests
      $ seed $ trace_out $ prom_out)

let () =
  let doc = "Swift-for-TensorFlow-in-OCaml platform driver" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "s4o" ~doc)
          [ train_cmd; trace_cmd; analyze_cmd; spline_cmd; profile_cmd; serve_cmd ]))
