(** Shared workload builders for the benchmark harness: capture one training
    step of each evaluation network as an HLO graph (via the lazy backend in
    timing mode), so every framework strategy and device model scores the
    exact same computation. *)

module Spec = S4o_device.Device_spec

type captured = {
  graph : S4o_xla.Hlo.graph;
  param_count : int;
  batch : int;
  grad_bytes : int;
}

(* Each capture gets a fresh lazy runtime so traces never mix; the three
   networks get monomorphic capture functions because the functor-heavy
   plumbing doesn't abstract nicely over first-class modules. *)

let capture_resnet56 ~batch =
  let engine = S4o_device.Engine.create Spec.desktop_cpu in
  let rt = S4o_lazy.Lazy_runtime.create engine in
  let module Bk = S4o_lazy.Lazy_backend.Make (struct
    let rt = rt
  end) in
  let module M = S4o_nn.Models.Make (Bk) in
  let module T = S4o_nn.Train.Make (Bk) in
  let module O = S4o_nn.Optimizer.Make (Bk) in
  let rng = S4o_tensor.Prng.create 1 in
  let model = M.resnet56 rng in
  let opt = O.sgd ~lr:0.1 model in
  let images = Bk.placeholder [| batch; 32; 32; 3 |] in
  let labels = Bk.placeholder [| batch; 10 |] in
  let r = T.step_on_device model opt ~images ~labels in
  let roots = M.L.D.value r.T.loss :: O.updated_params opt in
  let params = M.L.param_count model in
  {
    graph = Bk.capture roots;
    param_count = params;
    batch;
    grad_bytes = 4 * params;
  }

and capture_resnet50 ~batch =
  let engine = S4o_device.Engine.create Spec.desktop_cpu in
  let rt = S4o_lazy.Lazy_runtime.create engine in
  let module Bk = S4o_lazy.Lazy_backend.Make (struct
    let rt = rt
  end) in
  let module M = S4o_nn.Models.Make (Bk) in
  let module T = S4o_nn.Train.Make (Bk) in
  let module O = S4o_nn.Optimizer.Make (Bk) in
  let rng = S4o_tensor.Prng.create 1 in
  let model = M.resnet50 rng in
  let opt = O.sgd ~lr:0.1 model in
  let images = Bk.placeholder [| batch; 224; 224; 3 |] in
  let labels = Bk.placeholder [| batch; 1000 |] in
  let r = T.step_on_device model opt ~images ~labels in
  let roots = M.L.D.value r.T.loss :: O.updated_params opt in
  let params = M.L.param_count model in
  {
    graph = Bk.capture roots;
    param_count = params;
    batch;
    grad_bytes = 4 * params;
  }

(** LeNet-5 forward pass on one MNIST-shaped batch, for Figure 4. *)
and capture_lenet_forward ~batch =
  let engine = S4o_device.Engine.create Spec.desktop_cpu in
  let rt = S4o_lazy.Lazy_runtime.create engine in
  let module Bk = S4o_lazy.Lazy_backend.Make (struct
    let rt = rt
  end) in
  let module M = S4o_nn.Models.Make (Bk) in
  let rng = S4o_tensor.Prng.create 1 in
  let model = M.lenet rng in
  let images = Bk.placeholder [| batch; 28; 28; 1 |] in
  let ctx = M.L.D.new_ctx () in
  let logits = M.L.apply model ctx (M.L.D.const images) in
  let params = M.L.param_count model in
  {
    graph = Bk.capture [ M.L.D.value logits ];
    param_count = params;
    batch;
    grad_bytes = 4 * params;
  }
