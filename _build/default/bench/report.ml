(** Plain-text table rendering for the benchmark harness: every reproduced
    table prints the paper's published number next to the simulator's, so
    the shape comparison is visible in one glance. *)

let rule widths =
  print_string "+";
  List.iter (fun w -> print_string (String.make (w + 2) '-' ^ "+")) widths;
  print_newline ()

let row widths cells =
  print_string "|";
  List.iter2 (fun w c -> Printf.printf " %-*s |" w c) widths cells;
  print_newline ()

let table ~title ~headers ~rows =
  Printf.printf "\n== %s ==\n" title;
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun acc r -> max acc (String.length (List.nth r i)))
          (String.length h) rows)
      headers
  in
  rule widths;
  row widths headers;
  rule widths;
  List.iter (row widths) rows;
  rule widths

let note fmt = Printf.printf (fmt ^^ "\n")

let ratio_cell ~paper ~measured =
  Printf.sprintf "%.2fx" (measured /. paper)
