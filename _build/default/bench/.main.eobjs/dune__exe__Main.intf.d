bench/main.mli:
