bench/workloads.ml: S4o_device S4o_lazy S4o_nn S4o_tensor S4o_xla
