(** A copy-on-write float buffer with mutable value semantics (§4).

    Two values of type {!t} always observe logically disjoint data: mutation
    through one is never visible through another (no "spooky action at a
    distance"). Like Swift arrays, the representation shares storage between
    copies and defers the physical copy until a mutation finds the storage
    shared — so pass-by-value is cheap, and "large values are copied lazily,
    upon mutation, and only when shared".

    The implementation keeps an explicit reference count (standing in for
    Swift's built-in ARC uniqueness check) and a global copy counter so tests
    and benchmarks can observe exactly when physical copies happen. *)

type t

(** [create n v]: a buffer of [n] elements, all [v]. *)
val create : int -> float -> t

val of_array : float array -> t
val length : t -> int
val get : t -> int -> float

(** Value-semantic copy: O(1), shares storage, bumps the reference count. *)
val copy : t -> t

(** [set b i v] mutates in place — after copying the storage first if it is
    shared (the "unique borrow" check). *)
val set : t -> int -> float -> unit

(** [add_at b i v]: [b.(i) <- b.(i) + v], same CoW discipline. The O(1)
    inout-pullback primitive of Appendix B. *)
val add_at : t -> int -> float -> unit

(** [map_inplace f b]. *)
val map_inplace : (float -> float) -> t -> unit

(** [blend ~alpha dst src]: [dst <- dst + alpha * src] in place. *)
val blend : alpha:float -> t -> t -> unit

val to_array : t -> float array

(** Does this value currently share storage with another live value? *)
val is_shared : t -> bool

(** Physical copies performed process-wide since the last
    {!reset_copy_count}. *)
val copy_count : unit -> int

val reset_copy_count : unit -> unit
