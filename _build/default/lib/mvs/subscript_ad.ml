(* Transliterations of Figure 9. The functional pullbacks deliberately keep
   the paper's allocation behaviour (a fresh zero array per subscript read, a
   fresh array per sum) so the benchmark exposes the O(n) vs O(1) gap. *)

let subscript_functional values index =
  let size = Array.length values in
  (* "Optimization: don't capture whole array, just size." *)
  ( values.(index),
    fun dx ->
      let tmp = Array.make size 0.0 in
      tmp.(index) <- dx;
      tmp )

let sum_arrays a b =
  if Array.length a <> Array.length b then
    invalid_arg "sum_arrays: length mismatch";
  Array.init (Array.length a) (fun i -> a.(i) +. b.(i))

let my_op_functional values a b =
  let a_val, a_pb = subscript_functional values a in
  let b_val, b_pb = subscript_functional values b in
  ( a_val +. b_val,
    fun dx -> sum_arrays (a_pb dx) (b_pb dx) (* two O(n) allocations + O(n) sum *) )

let gather_sum_functional values indices =
  let pulls = Array.map (fun i -> subscript_functional values i) indices in
  let value = Array.fold_left (fun acc (v, _) -> acc +. v) 0.0 pulls in
  ( value,
    fun dx ->
      Array.fold_left
        (fun acc (_, pb) -> sum_arrays acc (pb dx))
        (Array.make (Array.length values) 0.0)
        pulls )

let subscript_inout values index =
  (values.(index), fun dx d_values -> d_values.(index) <- d_values.(index) +. dx)

let my_op_inout values a b =
  let a_val, a_pb = subscript_inout values a in
  let b_val, b_pb = subscript_inout values b in
  ( a_val +. b_val,
    fun dx d_values ->
      a_pb dx d_values;
      (* constant time *)
      b_pb dx d_values )

let gather_sum_inout values indices =
  let pulls = Array.map (fun i -> subscript_inout values i) indices in
  let value = Array.fold_left (fun acc (v, _) -> acc +. v) 0.0 pulls in
  (value, fun dx d_values -> Array.iter (fun (_, pb) -> pb dx d_values) pulls)

let grad_my_op_functional values a b =
  let _, pb = my_op_functional values a b in
  pb 1.0

let grad_my_op_inout values a b =
  let _, pb = my_op_inout values a b in
  let g = Array.make (Array.length values) 0.0 in
  pb 1.0 g;
  g

let grad_gather_functional values indices =
  let _, pb = gather_sum_functional values indices in
  pb 1.0

let grad_gather_inout values indices =
  let _, pb = gather_sum_inout values indices in
  let g = Array.make (Array.length values) 0.0 in
  pb 1.0 g;
  g

(* {1 Trees} *)

type tree = Leaf | Node of { value : float; left : tree; right : tree }

type gtree = GLeaf | GNode of { mutable g : float; left : gtree; right : gtree }

let rec gtree_zero_like = function
  | Leaf -> GLeaf
  | Node { left; right; _ } ->
      GNode { g = 0.0; left = gtree_zero_like left; right = gtree_zero_like right }

let rec gtree_lookup g path =
  match (g, path) with
  | GNode { g; _ }, [] -> g
  | GNode { left; _ }, true :: rest -> gtree_lookup left rest
  | GNode { right; _ }, false :: rest -> gtree_lookup right rest
  | GLeaf, _ -> invalid_arg "gtree_lookup: path leaves the tree"

let tree_read t path =
  let rec value t path =
    match (t, path) with
    | Node { value; _ }, [] -> value
    | Node { left; _ }, true :: rest -> value left rest
    | Node { right; _ }, false :: rest -> value right rest
    | Leaf, _ -> invalid_arg "tree_read: path leaves the tree"
  in
  let v = value t path in
  let pullback dx g =
    (* Walk the same path in the gradient tree: O(path) — the "partial
       derivative with respect to a field within an aggregate" of §4.3. *)
    let rec go g path =
      match (g, path) with
      | GNode n, [] -> n.g <- n.g +. dx
      | GNode { left; _ }, true :: rest -> go left rest
      | GNode { right; _ }, false :: rest -> go right rest
      | GLeaf, _ -> invalid_arg "tree pullback: path leaves the tree"
    in
    go g path
  in
  (v, pullback)
