lib/mvs/subscript_ad.mli:
