lib/mvs/subscript_ad.ml: Array
