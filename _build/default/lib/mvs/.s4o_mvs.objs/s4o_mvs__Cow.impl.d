lib/mvs/cow.ml: Array
