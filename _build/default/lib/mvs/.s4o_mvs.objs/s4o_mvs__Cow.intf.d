lib/mvs/cow.mli:
