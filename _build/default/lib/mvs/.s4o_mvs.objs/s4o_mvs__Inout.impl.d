lib/mvs/inout.ml: Array Dense S4o_tensor
