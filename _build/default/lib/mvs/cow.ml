type storage = { data : float array; mutable refs : int }

type t = { mutable storage : storage }

let copies = ref 0
let copy_count () = !copies
let reset_copy_count () = copies := 0

let create n v = { storage = { data = Array.make n v; refs = 1 } }
let of_array a = { storage = { data = Array.copy a; refs = 1 } }
let length b = Array.length b.storage.data
let get b i = b.storage.data.(i)

let copy b =
  b.storage.refs <- b.storage.refs + 1;
  { storage = b.storage }

let is_shared b = b.storage.refs > 1

(* The uniqueness check ARC performs before every mutation: copy the physical
   storage iff it is shared. *)
let ensure_unique b =
  if is_shared b then begin
    b.storage.refs <- b.storage.refs - 1;
    incr copies;
    b.storage <- { data = Array.copy b.storage.data; refs = 1 }
  end

let set b i v =
  ensure_unique b;
  b.storage.data.(i) <- v

let add_at b i v =
  ensure_unique b;
  b.storage.data.(i) <- b.storage.data.(i) +. v

let map_inplace f b =
  ensure_unique b;
  let d = b.storage.data in
  for i = 0 to Array.length d - 1 do
    d.(i) <- f d.(i)
  done

let blend ~alpha dst src =
  if length dst <> length src then invalid_arg "Cow.blend: length mismatch";
  ensure_unique dst;
  let d = dst.storage.data and s = src.storage.data in
  for i = 0 to Array.length d - 1 do
    d.(i) <- d.(i) +. (alpha *. s.(i))
  done

let to_array b = Array.copy b.storage.data
