(** The array-subscript differentiation case study of §4.3 and Appendix B
    (Figure 9), transliterated from the paper's Swift.

    Reading one element of an array is O(1), but the {e functional} pullback
    formulation must materialize a whole gradient array of zeros per read —
    O(n) time and memory — violating the efficient-gradient goal. The
    {e mutable-value-semantics} formulation types the pullback as
    [(dOut, inout dValues) -> unit] and accumulates into the existing
    gradient buffer in O(1).

    Both formulations are provided, plus [myOp] (the paper's two-subscript
    example) and a generalized k-subscript gather, so the benchmark can sweep
    the asymptotic gap. *)

(** {1 Functional formulation (Figure 9, top)} *)

(** [(value, pullback)] where the pullback allocates an O(n) one-hot array. *)
val subscript_functional :
  float array -> int -> float * (float -> float array)

(** The paper's [myOp values a b = values.(a) + values.(b)] with a functional
    pullback: O(n) time and two O(n) allocations per call. *)
val my_op_functional :
  float array -> int -> int -> float * (float -> float array)

(** Sum of [k] subscript reads, functional pullback: O(k·n). *)
val gather_sum_functional :
  float array -> int array -> float * (float -> float array)

(** {1 Mutable-value-semantics formulation (Figure 9, bottom)} *)

(** Pullback accumulates into the caller's gradient buffer in O(1). *)
val subscript_inout :
  float array -> int -> float * (float -> float array -> unit)

val my_op_inout : float array -> int -> int -> float * (float -> float array -> unit)

(** Sum of [k] subscript reads, inout pullback: O(k) — independent of n. *)
val gather_sum_inout :
  float array -> int array -> float * (float -> float array -> unit)

(** {1 Full gradients (for equivalence tests)} *)

val grad_my_op_functional : float array -> int -> int -> float array
val grad_my_op_inout : float array -> int -> int -> float array
val grad_gather_functional : float array -> int array -> float array
val grad_gather_inout : float array -> int array -> float array

(** {1 Big-to-small derivatives beyond arrays (§4.3 closing claim)}

    The same inout technique applied to a binary tree: differentiate a
    function of one vertex's payload with respect to the whole tree, in time
    proportional to the path, not the tree size. *)

type tree = Leaf | Node of { value : float; left : tree; right : tree }

(** A mutable gradient tree mirroring a {!tree}'s structure. *)
type gtree

val gtree_zero_like : tree -> gtree
val gtree_lookup : gtree -> bool list -> float

(** [tree_read t path]: value at the vertex reached by the left(/right=false)
    [path]. Returns the value and an inout pullback that accumulates into a
    mutable gradient tree in O(path), not O(tree). *)
val tree_read : tree -> bool list -> float * (float -> gtree -> unit)
