(** Cost metadata for a single accelerator operation. Every kernel the
    simulated runtimes dispatch — eagerly (§3.2) or as part of a compiled
    trace (§3.3) — is described by one record; the device cost model turns
    it into simulated execution time. [kind] matters to the XLA-style
    compiler: elementwise/data-movement/reduction ops are fusible into their
    consumers, contractions (matmul/conv) root fusion clusters. *)

type kind =
  | Elementwise
  | Reduction
  | Contraction
  | Data_movement
  | Fused of int  (** A fusion cluster of [n] primitive ops. *)

type t = {
  name : string;
  kind : kind;
  flops : int;  (** Floating-point operations performed. *)
  bytes_in : int;  (** Bytes read from device memory. *)
  bytes_out : int;  (** Bytes written to device memory. *)
}

(** 4 bytes per element (fp32 on device). *)
val bytes_of_shape : S4o_tensor.Shape.t -> int

val kind_name : kind -> string
val pp : Format.formatter -> t -> unit

(** {1 Constructors} *)

(** [elementwise name ~inputs ~output ~flops_per_elem ()] for maps over
    tensors: flops scale with the output element count; bytes with all
    operand and result sizes. *)
val elementwise :
  string ->
  inputs:S4o_tensor.Shape.t list ->
  output:S4o_tensor.Shape.t ->
  ?flops_per_elem:int ->
  unit ->
  t

val reduction : string -> input:S4o_tensor.Shape.t -> output:S4o_tensor.Shape.t -> t
val data_movement : string -> input:S4o_tensor.Shape.t -> output:S4o_tensor.Shape.t -> t

(** [2mkn] flops. *)
val matmul : m:int -> k:int -> n:int -> t

val conv2d :
  ?stride:int * int ->
  padding:S4o_tensor.Convolution.padding ->
  input:S4o_tensor.Shape.t ->
  filter:S4o_tensor.Shape.t ->
  output:S4o_tensor.Shape.t ->
  unit ->
  t

(** Cost of a fusion cluster: all member flops, but only the cluster's
    external inputs and outputs touch memory — the fusion benefit the paper
    attributes to XLA (§3.3). *)
val fused : members:t list -> external_in_bytes:int -> external_out_bytes:int -> t
