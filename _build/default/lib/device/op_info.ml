(** Cost metadata for a single accelerator operation. Every kernel the
    simulated runtimes dispatch — eagerly (§3.2) or as part of a compiled
    trace (§3.3) — is described by one of these records; the device cost
    model turns it into simulated execution time.

    [kind] matters to the XLA-style compiler: elementwise and data-movement
    ops are fusible into their consumers, contractions (matmul/conv) are
    fusion roots. *)

type kind =
  | Elementwise
  | Reduction
  | Contraction
  | Data_movement
  | Fused of int  (** A fusion cluster of [n] primitive ops. *)

type t = {
  name : string;
  kind : kind;
  flops : int;  (** Floating-point operations performed. *)
  bytes_in : int;  (** Bytes read from device memory. *)
  bytes_out : int;  (** Bytes written to device memory. *)
}

let bytes_of_shape shape = 4 * S4o_tensor.Shape.numel shape

let kind_name = function
  | Elementwise -> "elementwise"
  | Reduction -> "reduction"
  | Contraction -> "contraction"
  | Data_movement -> "data-movement"
  | Fused n -> Format.sprintf "fused(%d)" n

let pp ppf t =
  Format.fprintf ppf "%s[%s: %d flops, %d B in, %d B out]" t.name
    (kind_name t.kind) t.flops t.bytes_in t.bytes_out

(** [elementwise name ~inputs ~output ~flops_per_elem] for maps over
    tensors. *)
let elementwise name ~inputs ~output ?(flops_per_elem = 1) () =
  {
    name;
    kind = Elementwise;
    flops = flops_per_elem * S4o_tensor.Shape.numel output;
    bytes_in = List.fold_left (fun acc s -> acc + bytes_of_shape s) 0 inputs;
    bytes_out = bytes_of_shape output;
  }

let reduction name ~input ~output =
  {
    name;
    kind = Reduction;
    flops = S4o_tensor.Shape.numel input;
    bytes_in = bytes_of_shape input;
    bytes_out = bytes_of_shape output;
  }

let data_movement name ~input ~output =
  {
    name;
    kind = Data_movement;
    flops = 0;
    bytes_in = bytes_of_shape input;
    bytes_out = bytes_of_shape output;
  }

let matmul ~m ~k ~n =
  {
    name = "matmul";
    kind = Contraction;
    flops = 2 * m * k * n;
    bytes_in = 4 * ((m * k) + (k * n));
    bytes_out = 4 * m * n;
  }

let conv2d ?(stride = (1, 1)) ~padding ~input ~filter ~output () =
  {
    name = "conv2d";
    kind = Contraction;
    flops = S4o_tensor.Convolution.conv2d_flops ~stride ~padding ~input filter;
    bytes_in = bytes_of_shape input + bytes_of_shape filter;
    bytes_out = bytes_of_shape output;
  }

(** Cost of a fusion cluster: all member flops, but only the cluster's
    external inputs and outputs touch memory — the fusion benefit the paper
    attributes to XLA (§3.3). *)
let fused ~members ~external_in_bytes ~external_out_bytes =
  {
    name = "fusion";
    kind = Fused (List.length members);
    flops = List.fold_left (fun acc (m : t) -> acc + m.flops) 0 members;
    bytes_in = external_in_bytes;
    bytes_out = external_out_bytes;
  }
