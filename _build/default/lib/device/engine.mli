(** A simulated asynchronous accelerator.

    §3.2: kernels are "dispatched to the accelerator to execute
    asynchronously and control is returned to the user's program before the
    kernel finishes"; as long as no Tensor contents are observed, "the user's
    program runs ahead and fills a pipeline of accelerator kernel
    invocations".

    The engine keeps two simulated clocks: the {e host} clock (advanced by
    dispatch overheads, tracing, compilation) and the {e device} clock (the
    time at which the device will have drained its kernel queue). Dispatching
    costs host time and enqueues device time; {!sync} advances the host clock
    to the device's completion time — the "observe a Tensor" stall. *)

type t

val create : Device_spec.t -> t
val spec : t -> Device_spec.t

(** Current simulated host time (seconds). *)
val host_time : t -> float

(** Simulated time at which all queued kernels finish. *)
val device_ready_at : t -> float

(** Advance the host clock only (dispatch overhead, tracing, compiling...). *)
val spend_host : t -> float -> unit

(** [dispatch t op] charges the kernel to the device queue: the kernel starts
    when both the host has issued it and the device is free. Returns the
    kernel's simulated completion time. *)
val dispatch : t -> Op_info.t -> float

(** Block the host until the device queue drains. *)
val sync : t -> unit

(** How far ahead of the host the device queue currently reaches — the
    pipeline depth in seconds. *)
val pipeline_depth : t -> float

(** {1 Statistics} *)

val kernels_launched : t -> int
val device_busy_time : t -> float
val host_stall_time : t -> float

(** Bytes of device memory currently attributed to live allocations; tracked
    explicitly by the runtimes via {!alloc} and {!free}. *)
val live_bytes : t -> int

val peak_bytes : t -> int
val alloc : t -> int -> unit
val free : t -> int -> unit

(** Reset clocks and statistics (allocations persist). *)
val reset : t -> unit
