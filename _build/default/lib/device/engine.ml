type t = {
  spec : Device_spec.t;
  mutable host : float;
  mutable device_ready : float;
  mutable kernels : int;
  mutable busy : float;
  mutable stalled : float;
  mutable live : int;
  mutable peak : int;
}

let create spec =
  {
    spec;
    host = 0.0;
    device_ready = 0.0;
    kernels = 0;
    busy = 0.0;
    stalled = 0.0;
    live = 0;
    peak = 0;
  }

let spec t = t.spec
let host_time t = t.host
let device_ready_at t = t.device_ready
let spend_host t dt = t.host <- t.host +. dt

let dispatch t op =
  let time = Device_spec.kernel_time t.spec op in
  let start = Float.max t.host t.device_ready in
  t.device_ready <- start +. time;
  t.kernels <- t.kernels + 1;
  t.busy <- t.busy +. time;
  t.device_ready

let sync t =
  if t.device_ready > t.host then begin
    t.stalled <- t.stalled +. (t.device_ready -. t.host);
    t.host <- t.device_ready
  end

let pipeline_depth t = Float.max 0.0 (t.device_ready -. t.host)
let kernels_launched t = t.kernels
let device_busy_time t = t.busy
let host_stall_time t = t.stalled
let live_bytes t = t.live
let peak_bytes t = t.peak

let alloc t bytes =
  t.live <- t.live + bytes;
  if t.live > t.peak then t.peak <- t.live

let free t bytes = t.live <- max 0 (t.live - bytes)

let reset t =
  t.host <- 0.0;
  t.device_ready <- 0.0;
  t.kernels <- 0;
  t.busy <- 0.0;
  t.stalled <- 0.0
