lib/device/engine.mli: Device_spec Op_info
