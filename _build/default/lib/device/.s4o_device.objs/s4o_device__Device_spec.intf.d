lib/device/device_spec.mli: Op_info
