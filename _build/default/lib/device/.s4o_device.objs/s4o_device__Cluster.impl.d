lib/device/cluster.ml: Device_spec Float
