lib/device/cluster.mli: Device_spec
