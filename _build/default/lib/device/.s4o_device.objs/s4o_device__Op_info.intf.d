lib/device/op_info.mli: Format S4o_tensor
