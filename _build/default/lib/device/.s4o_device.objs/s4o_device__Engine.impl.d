lib/device/engine.ml: Device_spec Float
