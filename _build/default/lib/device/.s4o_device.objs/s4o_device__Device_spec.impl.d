lib/device/device_spec.ml: Float Op_info
