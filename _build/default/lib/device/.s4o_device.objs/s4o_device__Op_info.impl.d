lib/device/op_info.ml: Format List S4o_tensor
