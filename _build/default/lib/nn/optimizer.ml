(** Optimizers (§4.2): an optimizer "borrows the model uniquely, and updates
    it in-place based on the computed gradients" — here, each parameter slot
    is overwritten with its updated value after the backward pass. Optimizer
    state (momentum, Adam moments) lives in arrays parallel to the slot
    list. *)

open S4o_tensor

module Make (Bk : Backend_intf.S) = struct
  module L = Layer.Make (Bk)

  type t = {
    name : string;
    step : unit -> unit;
        (** Read each slot's gradient and update its data in place. Slots
            with no gradient (layer unused this step) are skipped. *)
    slots : L.Slot.t list;
    state : unit -> Bk.t list;
        (** Optimizer state tensors (momentum velocities, Adam moments).
            These are live across steps, so on the lazy backend they must be
            materialized by the step barrier — otherwise each step's trace
            drags the whole previous step's computation along with it. *)
  }

  let missing_grad slot =
    Format.ksprintf invalid_arg "optimizer: no gradient for slot %s"
      (L.Slot.label slot)

  (* Non-trainable slots (running statistics) are state, not parameters:
     skipped by every update rule. *)
  let wants_update slot = L.Slot.trainable slot

  (** Plain SGD, optionally with classical momentum. *)
  let sgd ?(momentum = 0.0) ~lr layer =
    let slots = L.slots layer in
    let velocities = Array.make (List.length slots) None in
    let step () =
      List.iteri
        (fun i slot ->
          if wants_update slot then
          match L.Slot.grad slot with
          | None -> missing_grad slot
          | Some g ->
              let update =
                if momentum = 0.0 then Bk.scale lr g
                else begin
                  let v =
                    match velocities.(i) with
                    | None -> Bk.scale lr g
                    | Some v -> Bk.add (Bk.scale momentum v) (Bk.scale lr g)
                  in
                  velocities.(i) <- Some v;
                  v
                end
              in
              L.Slot.set_data slot (Bk.sub (L.Slot.data slot) update))
        slots
    in
    let state () =
      Array.to_list velocities |> List.filter_map Fun.id
    in
    { name = "sgd"; step; slots; state }

  (** Adam (Kingma & Ba), with bias correction. *)
  let adam ?(beta1 = 0.9) ?(beta2 = 0.999) ?(epsilon = 1e-8) ~lr layer =
    let slots = L.slots layer in
    let n = List.length slots in
    let m = Array.make n None and v = Array.make n None in
    let t = ref 0 in
    let step () =
      incr t;
      let tf = float_of_int !t in
      let bc1 = 1.0 -. (beta1 ** tf) and bc2 = 1.0 -. (beta2 ** tf) in
      List.iteri
        (fun i slot ->
          if wants_update slot then
          match L.Slot.grad slot with
          | None -> missing_grad slot
          | Some g ->
              let mi =
                match m.(i) with
                | None -> Bk.scale (1.0 -. beta1) g
                | Some prev ->
                    Bk.add (Bk.scale beta1 prev) (Bk.scale (1.0 -. beta1) g)
              in
              let vi =
                let g2 = Bk.mul g g in
                match v.(i) with
                | None -> Bk.scale (1.0 -. beta2) g2
                | Some prev ->
                    Bk.add (Bk.scale beta2 prev) (Bk.scale (1.0 -. beta2) g2)
              in
              m.(i) <- Some mi;
              v.(i) <- Some vi;
              let m_hat = Bk.scale (1.0 /. bc1) mi in
              let v_hat = Bk.scale (1.0 /. bc2) vi in
              let denom = Bk.add_scalar epsilon (Bk.sqrt v_hat) in
              L.Slot.set_data slot
                (Bk.sub (L.Slot.data slot) (Bk.scale lr (Bk.div m_hat denom))))
        slots
    in
    let state () =
      List.filter_map Fun.id (Array.to_list m @ Array.to_list v)
    in
    { name = "adam"; step; slots; state }

  (** Every tensor the optimizer keeps live across steps — updated
      parameters plus optimizer state. For the lazy backend these are the
      roots the training loop passes to the barrier. *)
  let updated_params t = List.map L.Slot.data t.slots @ t.state ()
end
