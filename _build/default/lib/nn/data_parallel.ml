(** Synchronous data-parallel training — the execution semantics behind
    Table 1, implemented for real (its simulated {e cost} on a pod is what
    {!S4o_device.Cluster} models).

    Each of [replicas] logical accelerators holds an identical copy of the
    model, computes gradients on its own shard of the global batch, and the
    per-shard gradients are {e all-reduced} (averaged) before one shared
    update is applied everywhere. The invariant that makes this correct —
    asserted by the test suite — is equivalence with single-device training
    on the whole global batch: the loss is a mean over examples, so the mean
    of equal-sized-shard gradients equals the global-batch gradient, and
    replicas never diverge. *)

open S4o_tensor

module Make (Bk : Backend_intf.S) = struct
  module L = Layer.Make (Bk)

  type t = { replicas : L.t array }

  (** [create ~replicas build]: [build] is called once per replica (so each
      gets its own slots), then replica 0's parameters are broadcast so all
      replicas start identical — the "initial weight broadcast" of real
      synchronous training. *)
  let create ~replicas build =
    if replicas < 1 then invalid_arg "Data_parallel.create: need >= 1 replica";
    let models = Array.init replicas (fun _ -> build ()) in
    let chief_slots = L.slots models.(0) in
    Array.iteri
      (fun i m ->
        if i > 0 then begin
          let slots = L.slots m in
          if List.length slots <> List.length chief_slots then
            invalid_arg "Data_parallel.create: replicas differ in structure";
          List.iter2
            (fun dst src -> L.Slot.set_data dst (L.Slot.data src))
            slots chief_slots
        end)
      models;
    { replicas = models }

  let chief t = t.replicas.(0)
  let replica_count t = Array.length t.replicas

  (** Mean of the replicas' tensors — the all-reduce. *)
  let all_reduce_mean = function
    | [] -> invalid_arg "all_reduce_mean: empty"
    | first :: rest ->
        let sum = List.fold_left Bk.add first rest in
        Bk.scale (1.0 /. float_of_int (List.length rest + 1)) sum

  (** Are all replicas' trainable parameters bitwise identical? (Running
      statistics are replica-local and excluded.) *)
  let replicas_in_sync t =
    let trainable m = List.filter L.Slot.trainable (L.slots m) in
    let chief_slots = trainable (chief t) in
    Array.for_all
      (fun m ->
        List.for_all2
          (fun a b ->
            Dense.equal (Bk.to_dense (L.Slot.data a)) (Bk.to_dense (L.Slot.data b)))
          (trainable m) chief_slots)
      t.replicas

  (** A stateless SGD update rule for {!train_step}. *)
  let sgd_update ~lr ~param ~grad = Bk.sub param (Bk.scale lr grad)

  (** One synchronous step on a global batch: shard, compute per-replica
      gradients, all-reduce, apply [update] everywhere. The global batch
      size must be divisible by the replica count (fixed shapes per shard,
      as §3.4's tracing prefers). Returns the global mean loss. *)
  let train_step t ~update ~images ~labels =
    let r = Array.length t.replicas in
    let n = (Dense.shape images).(0) in
    if n mod r <> 0 then
      invalid_arg
        (Printf.sprintf "Data_parallel.train_step: batch %d not divisible by %d replicas" n r);
    let shard = n / r in
    let slice t9 i = Dense.slice t9 ~axis:0 ~start:(i * shard) ~len:shard in
    (* forward + backward on each replica's shard *)
    let shard_results =
      Array.mapi
        (fun i model ->
          let module D = L.D in
          let ctx = D.new_ctx () in
          let logits =
            L.apply model ctx (D.const (Bk.of_dense (slice images i)))
          in
          let loss =
            D.softmax_cross_entropy ~labels:(Bk.of_dense (slice labels i)) logits
          in
          D.backward ctx loss;
          let grads =
            List.filter_map
              (fun slot ->
                if not (L.Slot.trainable slot) then None
                else
                  match L.Slot.grad slot with
                  | Some g -> Some g
                  | None -> invalid_arg "Data_parallel: missing gradient")
              (L.slots model)
          in
          (Dense.item (Bk.to_dense (D.value loss)), grads))
        t.replicas
    in
    (* all-reduce gradients slot-wise (trainable slots only — running
       statistics stay replica-local, as in standard synchronous training),
       then apply the same update to every replica's copy of that slot *)
    let trainable_of m = List.filter L.Slot.trainable (L.slots m) in
    let n_slots = List.length (trainable_of (chief t)) in
    for j = 0 to n_slots - 1 do
      let grads_j =
        Array.to_list (Array.map (fun (_, gs) -> List.nth gs j) shard_results)
      in
      let avg = all_reduce_mean grads_j in
      let chief_slot = List.nth (trainable_of (chief t)) j in
      let updated = update ~param:(L.Slot.data chief_slot) ~grad:avg in
      Array.iter
        (fun m -> L.Slot.set_data (List.nth (trainable_of m) j) updated)
        t.replicas
    done;
    let total = Array.fold_left (fun acc (l, _) -> acc +. l) 0.0 shard_results in
    total /. float_of_int r
end
