(** Layers (§4.1): the [Layer] protocol of Figure 6, over any Tensor backend.

    A layer owns {e parameter slots} (the stored properties of the Swift
    struct) and an apply function (the [@differentiable callAsFunction]).
    Parameters live as plain backend tensors between steps; at each training
    step they are {e tracked} onto the step's tape, which is how gradients —
    the model's [TangentVector] — come back as first-class values.

    Layers compose with {!sequential}, mirroring [input.sequenced(through:)]
    in the paper's LeNet definition. *)

open S4o_tensor

module Make (Bk : Backend_intf.S) = struct
  module D = S4o_diff_tensor.Diff_tensor.Make (Bk)

  (** Global layer mode: stochastic layers (dropout) and batch-statistics
      layers (batch norm) behave differently in training and inference —
      training normalizes with batch statistics and updates the running
      estimates; inference uses the frozen running estimates and applies no
      dropout. *)
  type mode = Train | Eval

  let mode = ref Train
  let set_mode m = mode := m

  let with_mode m f =
    let prev = !mode in
    mode := m;
    Fun.protect ~finally:(fun () -> mode := prev) f

  (** A trainable parameter: backend data plus the tape variable of the
      current step. *)
  module Slot = struct
    type t = {
      label : string;
      trainable : bool;
          (** Non-trainable slots (batch-norm running statistics) carry
              state the optimizer must not touch, but that must still ride
              the step barrier on the lazy backend. *)
      mutable data : Bk.t;
      mutable var : D.t option;
      mutable ctx : D.ctx option;  (** tape the variable belongs to *)
    }

    let create ?(trainable = true) label data =
      { label; trainable; data; var = None; ctx = None }

    let data s = s.data
    let label s = s.label
    let trainable s = s.trainable
    let set_data s v = s.data <- v

    (** Track on [ctx] (idempotent per tape). *)
    let track ctx s =
      match (s.var, s.ctx) with
      | Some v, Some c when c == ctx -> v
      | _, _ ->
          let v = D.param ctx s.data in
          s.var <- Some v;
          s.ctx <- Some ctx;
          v

    (** Gradient from the most recent backward pass. *)
    let grad s = Option.bind s.var D.adjoint

    (** Overwrite the pending gradient (e.g. after clipping). No-op if the
        slot was not tracked this step. *)
    let set_grad s g =
      match s.var with None -> () | Some v -> D.set_adjoint v g

    let numel s = Shape.numel (Bk.shape s.data)
  end

  type t = {
    name : string;
    slots : Slot.t list;
    apply : D.ctx -> D.t -> D.t;
  }

  let apply layer ctx x = layer.apply ctx x
  let slots layer = layer.slots

  (** Trainable parameters only (running statistics excluded). *)
  let param_count layer =
    List.fold_left
      (fun acc s -> if Slot.trainable s then acc + Slot.numel s else acc)
      0 layer.slots

  (** {1 Initializers} *)

  let glorot_uniform rng ~fan_in ~fan_out shape =
    let limit = Float.sqrt (6.0 /. float_of_int (fan_in + fan_out)) in
    Bk.of_dense (Dense.rand_uniform rng ~lo:(-.limit) ~hi:limit shape)

  let he_normal rng ~fan_in shape =
    let stddev = Float.sqrt (2.0 /. float_of_int fan_in) in
    Bk.of_dense (Dense.rand_normal rng ~stddev shape)

  (** {1 Parameterless layers} *)

  let activation name f = { name; slots = []; apply = (fun _ x -> f x) }
  let relu = activation "relu" D.relu
  let sigmoid = activation "sigmoid" D.sigmoid
  let tanh = activation "tanh" D.tanh

  (** Collapses [\[n; ...\]] to [\[n; rest\]]. *)
  let flatten =
    {
      name = "flatten";
      slots = [];
      apply =
        (fun _ x ->
          let s = D.shape x in
          D.reshape x [| s.(0); Shape.numel s / s.(0) |]);
    }

  let avg_pool2d ~size ~stride =
    {
      name = "avg_pool2d";
      slots = [];
      apply = (fun _ x -> D.avg_pool2d ~size ~stride x);
    }

  let max_pool2d ~size ~stride =
    {
      name = "max_pool2d";
      slots = [];
      apply = (fun _ x -> D.max_pool2d ~size ~stride x);
    }

  (** {1 Dense} *)

  let dense rng ~inputs ~outputs ?(activation = Fun.id) () =
    let w =
      Slot.create "w" (glorot_uniform rng ~fan_in:inputs ~fan_out:outputs [| inputs; outputs |])
    in
    let b = Slot.create "b" (Bk.of_dense (Dense.zeros [| outputs |])) in
    {
      name = Format.sprintf "dense(%d->%d)" inputs outputs;
      slots = [ w; b ];
      apply =
        (fun ctx x ->
          let wv = Slot.track ctx w and bv = Slot.track ctx b in
          activation (D.add (D.matmul x wv) bv));
    }

  (** {1 Conv2D (NHWC, filter KKIO)} *)

  let conv2d rng ~filter:(kh, kw, cin, cout) ?(stride = (1, 1))
      ?(padding = Convolution.Same) ?(use_bias = true) ?(activation = Fun.id) () =
    let fan_in = kh * kw * cin in
    let f = Slot.create "filter" (he_normal rng ~fan_in [| kh; kw; cin; cout |]) in
    let b = Slot.create "bias" (Bk.of_dense (Dense.zeros [| cout |])) in
    let slots = if use_bias then [ f; b ] else [ f ] in
    {
      name = Format.sprintf "conv2d(%dx%dx%d->%d)" kh kw cin cout;
      slots;
      apply =
        (fun ctx x ->
          let fv = Slot.track ctx f in
          let y = D.conv2d ~stride ~padding x fv in
          let y = if use_bias then D.add y (Slot.track ctx b) else y in
          activation y);
    }

  (** {1 Batch normalization}

      In [Train] mode: normalize with per-channel batch statistics over the
      leading axes, then scale and shift, while maintaining exponential
      moving averages of the statistics. In [Eval] mode: normalize with the
      frozen running averages (no batch dependence). *)

  let batch_norm ~features ?(epsilon = 1e-5) ?(momentum = 0.9) () =
    let gamma = Slot.create "gamma" (Bk.of_dense (Dense.ones [| features |])) in
    let beta = Slot.create "beta" (Bk.of_dense (Dense.zeros [| features |])) in
    (* Running statistics are non-trainable slots updated with backend ops —
       never observed host-side, so on the lazy backend the update is just
       more trace (§3.3's "do not observe a Tensor's contents"), and the
       training loop's barrier materializes them like optimizer state. *)
    let running_mean =
      Slot.create ~trainable:false "running_mean"
        (Bk.of_dense (Dense.zeros [| features |]))
    in
    let running_var =
      Slot.create ~trainable:false "running_var"
        (Bk.of_dense (Dense.ones [| features |]))
    in
    {
      name = Format.sprintf "batch_norm(%d)" features;
      slots = [ gamma; beta; running_mean; running_var ];
      apply =
        (fun ctx x ->
          let g = Slot.track ctx gamma and b = Slot.track ctx beta in
          match !mode with
          | Train ->
              let s = D.shape x in
              let reduce_axes = List.init (Shape.rank s - 1) Fun.id in
              let n = float_of_int (Shape.numel s / features) in
              let mean = D.scale (1.0 /. n) (D.sum_axes x reduce_axes) in
              let centered = D.sub x mean in
              let var =
                D.scale (1.0 /. n) (D.sum_axes (D.mul centered centered) reduce_axes)
              in
              let blend prev batch =
                Bk.add (Bk.scale momentum prev) (Bk.scale (1.0 -. momentum) batch)
              in
              Slot.set_data running_mean
                (blend (Slot.data running_mean) (D.value mean));
              Slot.set_data running_var
                (blend (Slot.data running_var) (D.value var));
              let inv_std = D.sqrt (D.add_scalar epsilon var) in
              D.add (D.mul (D.div centered inv_std) g) b
          | Eval ->
              let mean = D.const (Slot.data running_mean) in
              let inv_std =
                D.const
                  (Bk.sqrt (Bk.add_scalar epsilon (Slot.data running_var)))
              in
              D.add (D.mul (D.div (D.sub x mean) inv_std) g) b);
    }

  (** {1 Dropout}

      A fresh host-generated mask per application; scaling preserves the
      activation expectation. *)

  let dropout rng ~rate =
    if rate < 0.0 || rate >= 1.0 then invalid_arg "dropout: rate in [0, 1)";
    {
      name = Format.sprintf "dropout(%g)" rate;
      slots = [];
      apply =
        (fun _ x ->
          match !mode with
          | Eval -> x (* inference: identity, expectation already correct *)
          | Train ->
              let s = D.shape x in
              let keep = 1.0 -. rate in
              let mask =
                Dense.init_flat s (fun _ ->
                    if Prng.float rng < rate then 0.0 else 1.0 /. keep)
              in
              D.mul x (D.const (Bk.of_dense mask)));
    }

  (** {1 Composition} *)

  let sequential ?(name = "sequential") layers =
    {
      name;
      slots = List.concat_map (fun l -> l.slots) layers;
      apply =
        (fun ctx x -> List.fold_left (fun acc l -> l.apply ctx acc) x layers);
    }

  (** Residual connection: [f(x) + shortcut(x)] — the ResNet building
      block's skeleton. *)
  let residual ?(name = "residual") ~body ~shortcut () =
    {
      name;
      slots = body.slots @ shortcut.slots;
      apply = (fun ctx x -> D.add (body.apply ctx x) (shortcut.apply ctx x));
    }

  let identity = { name = "identity"; slots = []; apply = (fun _ x -> x) }
end
