(** Model checkpointing: save a layer's parameters to a portable text file
    and restore them into a structurally identical model.

    §5.1.3 relies on exactly this flow — "a global spline model was trained
    on anonymized, aggregated data, and fine-tuned on a Google Pixel 3 phone"
    — i.e. parameters trained in one process are shipped to and refined in
    another. The format is deliberately simple and self-describing: a header,
    then one [slot <label> <shape>] line plus one whitespace-separated data
    line per parameter slot, in layer order. Loading checks both the slot
    count and every shape, so restoring into a mismatched architecture fails
    loudly rather than silently. *)

open S4o_tensor

exception Format_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Format_error s)) fmt

let magic = "s4o-checkpoint v1"

module Make (Bk : Backend_intf.S) = struct
  module L = Layer.Make (Bk)

  let save_channel oc layer =
    output_string oc (magic ^ "\n");
    Printf.fprintf oc "slots %d\n" (List.length (L.slots layer));
    List.iter
      (fun slot ->
        let data = Bk.to_dense (L.Slot.data slot) in
        let shape = Dense.shape data in
        Printf.fprintf oc "slot %s %s\n" (L.Slot.label slot) (Shape.to_string shape);
        let values = Dense.to_array data in
        Array.iteri
          (fun i v ->
            if i > 0 then output_char oc ' ';
            (* %h is exact: round-trips every float bit pattern *)
            Printf.fprintf oc "%h" v)
          values;
        output_char oc '\n')
      (L.slots layer)

  let save path layer =
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> save_channel oc layer)

  let parse_shape s =
    (* "[2x3x4]" or "[]" *)
    let n = String.length s in
    if n < 2 || s.[0] <> '[' || s.[n - 1] <> ']' then fail "bad shape %S" s;
    let inner = String.sub s 1 (n - 2) in
    if inner = "" then [||]
    else
      String.split_on_char 'x' inner
      |> List.map (fun d ->
             match int_of_string_opt d with
             | Some v -> v
             | None -> fail "bad dimension %S in %S" d s)
      |> Array.of_list

  let load_channel ic layer =
    let line () = try input_line ic with End_of_file -> fail "truncated checkpoint" in
    if line () <> magic then fail "not a checkpoint (bad magic)";
    let declared =
      match String.split_on_char ' ' (line ()) with
      | [ "slots"; n ] -> (
          match int_of_string_opt n with
          | Some n -> n
          | None -> fail "bad slot count")
      | _ -> fail "missing slot count"
    in
    let slots = L.slots layer in
    if declared <> List.length slots then
      fail "checkpoint has %d slots, model has %d" declared (List.length slots);
    List.iter
      (fun slot ->
        let header = line () in
        let shape =
          match String.split_on_char ' ' header with
          | [ "slot"; _label; shape ] -> parse_shape shape
          | _ -> fail "bad slot header %S" header
        in
        let expected = Dense.shape (Bk.to_dense (L.Slot.data slot)) in
        if not (Shape.equal shape expected) then
          fail "slot %s: checkpoint shape %s, model expects %s"
            (L.Slot.label slot) (Shape.to_string shape) (Shape.to_string expected);
        let values =
          line () |> String.split_on_char ' '
          |> List.filter (fun s -> s <> "")
          |> List.map (fun s ->
                 match float_of_string_opt s with
                 | Some v -> v
                 | None -> fail "bad float %S" s)
          |> Array.of_list
        in
        if Array.length values <> Shape.numel shape then
          fail "slot %s: %d values for shape %s" (L.Slot.label slot)
            (Array.length values) (Shape.to_string shape);
        L.Slot.set_data slot (Bk.of_dense (Dense.of_array shape values)))
      slots

  let load path layer =
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> load_channel ic layer)
end
