(** Model zoo: the LeNet-5 variant of Figure 6, and a configurable ResNet
    family covering the paper's two evaluation networks — ResNet-56 on
    CIFAR-10 (Table 3) and ResNet-50 on ImageNet (Tables 1–2). §3.5's point
    that "one may implement a complete ResNet family of models by assembling
    key building blocks in a configuration determined by a dynamic model
    variant" is taken literally: both networks come out of one builder,
    configured at runtime. *)

open S4o_tensor

module Make (Bk : Backend_intf.S) = struct
  module L = Layer.Make (Bk)

  (** The exact LeNet-5 variant of Figure 6: conv(5x5,1->6,same,relu) →
      avgpool(2,2) → conv(5x5,6->16,valid,relu) → avgpool(2,2) → flatten →
      dense(400->120,relu) → dense(120->84,relu) → dense(84->10). *)
  let lenet rng =
    L.sequential ~name:"LeNet-5"
      [
        L.conv2d rng ~filter:(5, 5, 1, 6) ~padding:Convolution.Same
          ~activation:L.D.relu ();
        L.avg_pool2d ~size:(2, 2) ~stride:(2, 2);
        L.conv2d rng ~filter:(5, 5, 6, 16) ~padding:Convolution.Valid
          ~activation:L.D.relu ();
        L.avg_pool2d ~size:(2, 2) ~stride:(2, 2);
        L.flatten;
        L.dense rng ~inputs:400 ~outputs:120 ~activation:L.D.relu ();
        L.dense rng ~inputs:120 ~outputs:84 ~activation:L.D.relu ();
        L.dense rng ~inputs:84 ~outputs:10 ();
      ]

  (** A small multi-layer perceptron, for quick tests and the quickstart. *)
  let mlp rng ~inputs ~hidden ~outputs =
    L.sequential ~name:"mlp"
      [
        L.flatten;
        L.dense rng ~inputs ~outputs:hidden ~activation:L.D.relu ();
        L.dense rng ~inputs:hidden ~outputs ();
      ]

  (** {1 ResNet family} *)

  (** A basic 3x3+3x3 residual block (used by CIFAR ResNets such as
      ResNet-56). *)
  let basic_block rng ~in_channels ~out_channels ~stride =
    let body =
      L.sequential
        [
          L.conv2d rng ~filter:(3, 3, in_channels, out_channels)
            ~stride:(stride, stride) ~padding:Convolution.Same ~use_bias:false ();
          L.batch_norm ~features:out_channels ();
          L.relu;
          L.conv2d rng ~filter:(3, 3, out_channels, out_channels)
            ~padding:Convolution.Same ~use_bias:false ();
          L.batch_norm ~features:out_channels ();
        ]
    in
    let shortcut =
      if stride = 1 && in_channels = out_channels then L.identity
      else
        L.sequential
          [
            L.conv2d rng ~filter:(1, 1, in_channels, out_channels)
              ~stride:(stride, stride) ~padding:Convolution.Same ~use_bias:false ();
            L.batch_norm ~features:out_channels ();
          ]
    in
    L.sequential [ L.residual ~name:"basic_block" ~body ~shortcut (); L.relu ]

  (** A 1x1 → 3x3 → 1x1 bottleneck block (used by ImageNet ResNets such as
      ResNet-50); [out_channels] is the expanded width (4x the bottleneck). *)
  let bottleneck_block rng ~in_channels ~out_channels ~stride =
    let mid = out_channels / 4 in
    let body =
      L.sequential
        [
          L.conv2d rng ~filter:(1, 1, in_channels, mid) ~use_bias:false ();
          L.batch_norm ~features:mid ();
          L.relu;
          L.conv2d rng ~filter:(3, 3, mid, mid) ~stride:(stride, stride)
            ~padding:Convolution.Same ~use_bias:false ();
          L.batch_norm ~features:mid ();
          L.relu;
          L.conv2d rng ~filter:(1, 1, mid, out_channels) ~use_bias:false ();
          L.batch_norm ~features:out_channels ();
        ]
    in
    let shortcut =
      if stride = 1 && in_channels = out_channels then L.identity
      else
        L.sequential
          [
            L.conv2d rng ~filter:(1, 1, in_channels, out_channels)
              ~stride:(stride, stride) ~use_bias:false ();
            L.batch_norm ~features:out_channels ();
          ]
    in
    L.sequential [ L.residual ~name:"bottleneck" ~body ~shortcut (); L.relu ]

  type resnet_config = {
    stem_channels : int;
    stem_kernel : int;
    stem_stride : int;
    stem_pool : bool;
    stage_blocks : int list;  (** blocks per stage *)
    stage_channels : int list;  (** output width per stage *)
    bottleneck : bool;
    classes : int;
  }

  (** ResNet-56 for 32x32 CIFAR-10: 6n+2 layers with n = 9. *)
  let resnet56_config =
    {
      stem_channels = 16;
      stem_kernel = 3;
      stem_stride = 1;
      stem_pool = false;
      stage_blocks = [ 9; 9; 9 ];
      stage_channels = [ 16; 32; 64 ];
      bottleneck = false;
      classes = 10;
    }

  (** ResNet-50 for 224x224 ImageNet: bottleneck stages [3;4;6;3]. *)
  let resnet50_config =
    {
      stem_channels = 64;
      stem_kernel = 7;
      stem_stride = 2;
      stem_pool = true;
      stage_blocks = [ 3; 4; 6; 3 ];
      stage_channels = [ 256; 512; 1024; 2048 ];
      bottleneck = true;
      classes = 1000;
    }

  (** A tiny ResNet for fast functional tests. *)
  let resnet_tiny_config ~classes =
    {
      stem_channels = 8;
      stem_kernel = 3;
      stem_stride = 1;
      stem_pool = false;
      stage_blocks = [ 1; 1 ];
      stage_channels = [ 8; 16 ];
      bottleneck = false;
      classes;
    }

  (** Global average pool over the spatial axes of NHWC. *)
  let global_avg_pool =
    {
      L.name = "global_avg_pool";
      slots = [];
      apply =
        (fun _ x ->
          let s = L.D.shape x in
          let spatial = float_of_int (s.(1) * s.(2)) in
          let pooled = L.D.sum_axes x [ 1; 2 ] in
          L.D.scale (1.0 /. spatial) pooled);
    }

  let resnet rng ~in_channels (cfg : resnet_config) =
    let block =
      if cfg.bottleneck then bottleneck_block else basic_block
    in
    let stem =
      L.sequential
        ([
           L.conv2d rng
             ~filter:(cfg.stem_kernel, cfg.stem_kernel, in_channels, cfg.stem_channels)
             ~stride:(cfg.stem_stride, cfg.stem_stride) ~padding:Convolution.Same
             ~use_bias:false ();
           L.batch_norm ~features:cfg.stem_channels ();
           L.relu;
         ]
        @ if cfg.stem_pool then [ L.max_pool2d ~size:(2, 2) ~stride:(2, 2) ] else [])
    in
    let stages = List.combine cfg.stage_blocks cfg.stage_channels in
    let _, stage_layers =
      List.fold_left
        (fun (in_ch, acc) (n_blocks, out_ch) ->
          let first_stride = if in_ch = cfg.stem_channels && acc = [] then 1 else 2 in
          let blocks =
            List.init n_blocks (fun i ->
                let stride = if i = 0 then first_stride else 1 in
                let bin = if i = 0 then in_ch else out_ch in
                block rng ~in_channels:bin ~out_channels:out_ch ~stride)
          in
          (out_ch, acc @ blocks))
        (cfg.stem_channels, [])
        stages
    in
    let final_channels = List.nth cfg.stage_channels (List.length cfg.stage_channels - 1) in
    let head =
      L.sequential
        [
          global_avg_pool;
          L.dense rng ~inputs:final_channels ~outputs:cfg.classes ();
        ]
    in
    L.sequential
      ~name:
        (Format.sprintf "ResNet(%s)"
           (String.concat "-" (List.map string_of_int cfg.stage_blocks)))
      ([ stem ] @ stage_layers @ [ head ])

  let resnet56 rng = resnet rng ~in_channels:3 resnet56_config
  let resnet50 rng = resnet rng ~in_channels:3 resnet50_config
end
