lib/nn/train.ml: Array Backend_intf Dense Float Layer List Optimizer S4o_tensor
