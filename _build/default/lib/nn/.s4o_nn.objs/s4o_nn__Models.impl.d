lib/nn/models.ml: Array Backend_intf Convolution Format Layer List S4o_tensor String
