lib/nn/layer.ml: Array Backend_intf Convolution Dense Float Format Fun List Option Prng S4o_diff_tensor S4o_tensor Shape
