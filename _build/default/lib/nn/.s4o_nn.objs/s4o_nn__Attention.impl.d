lib/nn/attention.ml: Array Backend_intf Dense Float Format Layer List S4o_tensor Shape
