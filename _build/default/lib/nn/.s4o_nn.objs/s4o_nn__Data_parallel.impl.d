lib/nn/data_parallel.ml: Array Backend_intf Dense Layer List Printf S4o_tensor
