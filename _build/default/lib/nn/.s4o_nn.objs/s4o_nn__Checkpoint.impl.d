lib/nn/checkpoint.ml: Array Backend_intf Dense Format Fun Layer List Printf S4o_tensor Shape String
