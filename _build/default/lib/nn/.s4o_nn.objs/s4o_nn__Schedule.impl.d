lib/nn/schedule.ml: Array Backend_intf Dense Float Fun Layer List Optimizer S4o_tensor
