lib/nn/optimizer.ml: Array Backend_intf Format Fun Layer List S4o_tensor
