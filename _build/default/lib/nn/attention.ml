(** Self-attention and transformer blocks.

    §4.2 motivates the `inout` training story with "large transformer-based
    natural language models"; this module makes the platform actually able to
    build one. Everything is expressed through the differentiable op set —
    batched matmuls for the attention scores, elementwise ops for the
    softmax and layer norm — so the same code trains on any backend and, on
    the lazy backend, traces into a single fused XLA program. *)

open S4o_tensor

module Make (Bk : Backend_intf.S) = struct
  module L = Layer.Make (Bk)
  module D = L.D

  (* softmax over the last axis of a rank-3 tensor, built from
     differentiable primitives (exp / sum / div with broadcasting) *)
  let softmax_last x =
    let e = D.exp x in
    let z = D.sum_axes ~keep_dims:true e [ Shape.rank (D.shape x) - 1 ] in
    D.div e z

  (* position-wise affine map over [n; t; d_in] -> [n; t; d_out] *)
  let positionwise ctx w b x =
    let s = D.shape x in
    let n = s.(0) and t = s.(1) and d_in = s.(2) in
    let d_out = (Bk.shape (L.Slot.data w)).(1) in
    let flat = D.reshape x [| n * t; d_in |] in
    let y = D.add (D.matmul flat (L.Slot.track ctx w)) (L.Slot.track ctx b) in
    D.reshape y [| n; t; d_out |]

  (** Layer normalization over the last (feature) axis, with learnable gain
      and shift. *)
  let layer_norm ~features ?(epsilon = 1e-5) () =
    let gamma = L.Slot.create "ln_gamma" (Bk.of_dense (Dense.ones [| features |])) in
    let beta = L.Slot.create "ln_beta" (Bk.of_dense (Dense.zeros [| features |])) in
    {
      L.name = Format.sprintf "layer_norm(%d)" features;
      slots = [ gamma; beta ];
      apply =
        (fun ctx x ->
          let s = D.shape x in
          let last = Shape.rank s - 1 in
          let d = float_of_int s.(last) in
          let mean = D.scale (1.0 /. d) (D.sum_axes ~keep_dims:true x [ last ]) in
          let centered = D.sub x mean in
          let var =
            D.scale (1.0 /. d)
              (D.sum_axes ~keep_dims:true (D.mul centered centered) [ last ])
          in
          let normalized = D.div centered (D.sqrt (D.add_scalar epsilon var)) in
          D.add (D.mul normalized (L.Slot.track ctx gamma)) (L.Slot.track ctx beta));
    }

  (** Single-head scaled dot-product self-attention over [n; t; d]. *)
  let self_attention rng ~d_model ?(d_k = 0) () =
    let d_k = if d_k = 0 then d_model else d_k in
    let proj label d_out =
      ( L.Slot.create (label ^ "_w")
          (L.glorot_uniform rng ~fan_in:d_model ~fan_out:d_out [| d_model; d_out |]),
        L.Slot.create (label ^ "_b") (Bk.of_dense (Dense.zeros [| d_out |])) )
    in
    let wq, bq = proj "q" d_k in
    let wk, bk = proj "k" d_k in
    let wv, bv = proj "v" d_k in
    let wo, bo =
      ( L.Slot.create "o_w"
          (L.glorot_uniform rng ~fan_in:d_k ~fan_out:d_model [| d_k; d_model |]),
        L.Slot.create "o_b" (Bk.of_dense (Dense.zeros [| d_model |])) )
    in
    {
      L.name = Format.sprintf "self_attention(d=%d)" d_model;
      slots = [ wq; bq; wk; bk; wv; bv; wo; bo ];
      apply =
        (fun ctx x ->
          let q = positionwise ctx wq bq x in
          let k = positionwise ctx wk bk x in
          let v = positionwise ctx wv bv x in
          let scores =
            D.scale
              (1.0 /. Float.sqrt (float_of_int d_k))
              (D.batch_matmul q (D.batch_transpose k))
          in
          let attn = softmax_last scores in
          let mixed = D.batch_matmul attn v in
          positionwise ctx wo bo mixed);
    }

  (** Pre-norm transformer block: [x + attn(ln x)], then [y + mlp(ln y)]. *)
  let transformer_block rng ~d_model ~d_ff () =
    let attn = self_attention rng ~d_model () in
    let ln1 = layer_norm ~features:d_model () in
    let ln2 = layer_norm ~features:d_model () in
    let w1 =
      L.Slot.create "ff_w1"
        (L.glorot_uniform rng ~fan_in:d_model ~fan_out:d_ff [| d_model; d_ff |])
    in
    let b1 = L.Slot.create "ff_b1" (Bk.of_dense (Dense.zeros [| d_ff |])) in
    let w2 =
      L.Slot.create "ff_w2"
        (L.glorot_uniform rng ~fan_in:d_ff ~fan_out:d_model [| d_ff; d_model |])
    in
    let b2 = L.Slot.create "ff_b2" (Bk.of_dense (Dense.zeros [| d_model |])) in
    {
      L.name = Format.sprintf "transformer_block(d=%d, ff=%d)" d_model d_ff;
      slots = attn.L.slots @ ln1.L.slots @ ln2.L.slots @ [ w1; b1; w2; b2 ];
      apply =
        (fun ctx x ->
          let y = D.add x (attn.L.apply ctx (ln1.L.apply ctx x)) in
          let ff =
            positionwise ctx w2 b2 (D.relu (positionwise ctx w1 b1 (ln2.L.apply ctx y)))
          in
          D.add y ff);
    }

  (** A small sequence classifier: [\[n; t; 1; d\]] inputs (the dataset
      layout), transformer blocks, mean-pool over time, linear head. *)
  let tiny_transformer rng ~seq_len ~d_model ~d_ff ~blocks ~classes =
    let body = List.init blocks (fun _ -> transformer_block rng ~d_model ~d_ff ()) in
    let head = L.dense rng ~inputs:d_model ~outputs:classes () in
    let unpack =
      {
        L.name = "unpack_sequence";
        slots = [];
        apply =
          (fun _ x ->
            let s = D.shape x in
            D.reshape x [| s.(0); seq_len; d_model |]);
      }
    in
    let pool =
      {
        L.name = "mean_over_time";
        slots = [];
        apply =
          (fun _ x ->
            let s = D.shape x in
            D.scale (1.0 /. float_of_int s.(1)) (D.sum_axes x [ 1 ]));
      }
    in
    L.sequential
      ~name:(Format.sprintf "TinyTransformer(%d blocks, d=%d)" blocks d_model)
      ([ unpack ] @ body @ [ pool; head ])

  (** Multi-head attention: [heads] independent scaled-dot-product heads of
      width [d_model / heads], each with its own output projection back to
      [d_model]; head outputs are summed — algebraically equivalent to the
      usual concat-then-project formulation (the block-structured projection
      is just split per head). *)
  let multi_head_attention rng ~d_model ~heads () =
    if heads < 1 || d_model mod heads <> 0 then
      invalid_arg "multi_head_attention: heads must divide d_model";
    let d_k = d_model / heads in
    let head_layers =
      List.init heads (fun _ -> self_attention rng ~d_model ~d_k ())
    in
    {
      L.name = Format.sprintf "multi_head_attention(%d heads, d=%d)" heads d_model;
      slots = List.concat_map (fun h -> h.L.slots) head_layers;
      apply =
        (fun ctx x ->
          match head_layers with
          | [] -> assert false
          | first :: rest ->
              List.fold_left
                (fun acc h -> D.add acc (h.L.apply ctx x))
                (first.L.apply ctx x) rest);
    }
end

