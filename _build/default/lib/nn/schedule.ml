(** Learning-rate schedules and gradient clipping.

    Table 1's ResNet-50 run notes "algorithmic tweaks inspired by fastai" —
    warmup and annealed learning rates are the canonical such tweak, so the
    platform provides the standard schedule vocabulary. A schedule maps the
    (1-based) step index to a learning rate; {!scheduled} adapts any
    lr-taking optimizer constructor into a scheduled one. *)

open S4o_tensor

type t = int -> float

(** A constant rate. *)
let constant lr : t = fun _ -> lr

(** Linear warmup from 0 to [lr] over [steps], then constant. *)
let warmup ~steps ~lr : t =
 fun step -> if step >= steps then lr else lr *. float_of_int step /. float_of_int steps

(** Step decay: multiply by [factor] every [every] steps. *)
let step_decay ~lr ~factor ~every : t =
 fun step -> lr *. (factor ** float_of_int ((step - 1) / every))

(** Cosine annealing from [lr] to [lr_min] over [total] steps (fastai-style,
    clamped at [lr_min] afterwards). *)
let cosine ~lr ~lr_min ~total : t =
 fun step ->
  if step >= total then lr_min
  else
    lr_min
    +. (0.5 *. (lr -. lr_min)
       *. (1.0 +. Float.cos (Float.pi *. float_of_int (step - 1) /. float_of_int total)))

(** [compose warmup_steps schedule]: linear warmup into any schedule. *)
let with_warmup ~steps (inner : t) : t =
 fun step ->
  let target = inner step in
  if step >= steps then target
  else target *. float_of_int step /. float_of_int steps

module Make (Bk : Backend_intf.S) = struct
  module L = Layer.Make (Bk)
  module O = Optimizer.Make (Bk)

  (** Global L2 norm of all gradients on the layer's slots. Observes tensor
      contents (synchronizing on accelerated backends), as real
      clip-by-global-norm does. *)
  let global_grad_norm layer =
    let acc =
      List.fold_left
        (fun acc slot ->
          match L.Slot.grad slot with
          | None -> acc
          | Some g ->
              let d = Bk.to_dense g in
              acc +. Dense.sum (Dense.mul d d))
        0.0 (L.slots layer)
    in
    Float.sqrt acc

  (** Scale every gradient so the global norm is at most [max_norm]. Returns
      the pre-clip norm. Must run after [backward] and before the optimizer
      step; clipping rewrites each slot's adjoint. *)
  let clip_global_norm ~max_norm layer =
    let norm = global_grad_norm layer in
    if norm > max_norm && norm > 0.0 then begin
      let factor = max_norm /. norm in
      List.iter
        (fun slot ->
          match L.Slot.grad slot with
          | None -> ()
          | Some g -> L.Slot.set_grad slot (Bk.scale factor g))
        (L.slots layer)
    end;
    norm

  (** Wrap an optimizer so each [step] consults the schedule: implemented by
      rebuilding the update with the scheduled rate via SGD semantics.
      [scheduled_sgd ?momentum schedule layer] mirrors {!O.sgd}. *)
  let scheduled_sgd ?(momentum = 0.0) (schedule : t) layer =
    let slots = L.slots layer in
    let velocities = Array.make (List.length slots) None in
    let step_count = ref 0 in
    let step () =
      incr step_count;
      let lr = schedule !step_count in
      List.iteri
        (fun i slot ->
          if L.Slot.trainable slot then
          match L.Slot.grad slot with
          | None -> invalid_arg "scheduled_sgd: missing gradient"
          | Some g ->
              let update =
                if momentum = 0.0 then Bk.scale lr g
                else begin
                  let v =
                    match velocities.(i) with
                    | None -> Bk.scale lr g
                    | Some v -> Bk.add (Bk.scale momentum v) (Bk.scale lr g)
                  in
                  velocities.(i) <- Some v;
                  v
                end
              in
              L.Slot.set_data slot (Bk.sub (L.Slot.data slot) update))
        slots
    in
    let state () = Array.to_list velocities |> List.filter_map Fun.id in
    { O.name = "scheduled_sgd"; step; slots; state }
end
