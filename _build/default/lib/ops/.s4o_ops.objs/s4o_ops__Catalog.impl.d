lib/ops/catalog.ml: Array Convolution Dense Format List S4o_device S4o_tensor Shape String
