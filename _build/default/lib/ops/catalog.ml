(** The operation catalog: one record per Tensor operation, bundling shape
    inference, cost metadata and the reference kernel.

    Both accelerated runtimes consume this catalog — the eager runtime
    (§3.2) dispatches each record as one kernel the moment the user calls the
    op; the lazy runtime (§3.3) records it into a trace node and defers
    execution to the XLA-style compiler. Keeping one catalog guarantees the
    two backends agree exactly on semantics, shapes, and declared cost. *)

open S4o_tensor
module Op_info = S4o_device.Op_info

type op = {
  name : string;
  attrs : string;  (** Semantics-affecting parameters (stride, axes, ...). *)
  out_shape : Shape.t;
  info : Op_info.t;
  kernel : Dense.t array -> Dense.t;
}

let arg1 k = fun (args : Dense.t array) -> k args.(0)
let arg2 k = fun (args : Dense.t array) -> k args.(0) args.(1)

(** {1 Elementwise} *)

let binary name f ?(flops_per_elem = 1) (a : Shape.t) (b : Shape.t) =
  let out_shape = Shape.broadcast a b in
  {
    name;
    attrs = "";
    out_shape;
    info =
      Op_info.elementwise name ~inputs:[ a; b ] ~output:out_shape ~flops_per_elem ();
    kernel = arg2 f;
  }

let unary name f ?(flops_per_elem = 1) ?(attrs = "") (a : Shape.t) =
  {
    name;
    attrs;
    out_shape = a;
    info = Op_info.elementwise name ~inputs:[ a ] ~output:a ~flops_per_elem ();
    kernel = arg1 f;
  }

let add = binary "add" Dense.add
let sub = binary "sub" Dense.sub
let mul = binary "mul" Dense.mul
let div = binary "div" Dense.div
let neg = unary "neg" Dense.neg
let exp = unary "exp" Dense.exp ~flops_per_elem:4
let log = unary "log" Dense.log ~flops_per_elem:4
let sqrt = unary "sqrt" Dense.sqrt ~flops_per_elem:2
let relu = unary "relu" Dense.relu
let sigmoid = unary "sigmoid" Dense.sigmoid ~flops_per_elem:6
let tanh = unary "tanh" Dense.tanh ~flops_per_elem:6

let scale c a =
  unary "scale" (Dense.scale c) ~attrs:(Format.sprintf "c=%g" c) a

let add_scalar c a =
  unary "add_scalar" (Dense.add_scalar c) ~attrs:(Format.sprintf "c=%g" c) a

let relu_grad (x : Shape.t) (g : Shape.t) =
  let out_shape = Shape.broadcast x g in
  {
    name = "relu_grad";
    attrs = "";
    out_shape;
    info = Op_info.elementwise "relu_grad" ~inputs:[ x; g ] ~output:out_shape ();
    kernel = arg2 (Dense.map2 (fun xv gv -> if xv > 0.0 then gv else 0.0));
  }

(** {1 Shape manipulation} *)

let reshape (a : Shape.t) (target : Shape.t) =
  if not (Shape.can_reshape a target) then
    raise (Shape.Shape_error "reshape: element count mismatch");
  {
    name = "reshape";
    attrs = Shape.to_string target;
    out_shape = target;
    info = Op_info.data_movement "reshape" ~input:a ~output:target;
    kernel = arg1 (fun t -> Dense.reshape t target);
  }

let transpose (a : Shape.t) =
  if Shape.rank a <> 2 then raise (Shape.Shape_error "transpose: rank 2 only");
  let out_shape = [| a.(1); a.(0) |] in
  {
    name = "transpose";
    attrs = "";
    out_shape;
    info = Op_info.data_movement "transpose" ~input:a ~output:out_shape;
    kernel = arg1 Dense.transpose;
  }

let broadcast_to (a : Shape.t) (target : Shape.t) =
  {
    name = "broadcast";
    attrs = Shape.to_string target;
    out_shape = Shape.broadcast a target;
    info = Op_info.data_movement "broadcast" ~input:a ~output:target;
    kernel = arg1 (fun t -> Dense.broadcast_to t target);
  }

let unbroadcast (a : Shape.t) (target : Shape.t) =
  {
    name = "unbroadcast";
    attrs = Shape.to_string target;
    out_shape = target;
    info = Op_info.reduction "unbroadcast" ~input:a ~output:target;
    kernel = arg1 (fun t -> Dense.unbroadcast t target);
  }

(** {1 Reductions} *)

let sum_axes ?(keep_dims = false) (a : Shape.t) axes =
  let out_shape = Shape.reduce_axes ~keep_dims a axes in
  {
    name = "sum_axes";
    attrs =
      Format.sprintf "axes=%s%s"
        (String.concat "," (List.map string_of_int axes))
        (if keep_dims then ";keep" else "");
    out_shape;
    info = Op_info.reduction "sum_axes" ~input:a ~output:out_shape;
    kernel = arg1 (fun t -> Dense.sum_axes ~keep_dims t axes);
  }

let sum_all (a : Shape.t) =
  {
    name = "sum_all";
    attrs = "";
    out_shape = [||];
    info = Op_info.reduction "sum_all" ~input:a ~output:[||];
    kernel = arg1 (fun t -> Dense.scalar (Dense.sum t));
  }

let mean_all (a : Shape.t) =
  {
    name = "mean_all";
    attrs = "";
    out_shape = [||];
    info = Op_info.reduction "mean_all" ~input:a ~output:[||];
    kernel = arg1 (fun t -> Dense.scalar (Dense.mean t));
  }

(** {1 Linear algebra and NN kernels} *)

let matmul (a : Shape.t) (b : Shape.t) =
  if Shape.rank a <> 2 || Shape.rank b <> 2 || a.(1) <> b.(0) then
    raise
      (Shape.Shape_error
         (Format.sprintf "matmul: %s x %s" (Shape.to_string a) (Shape.to_string b)));
  let m = a.(0) and k = a.(1) and n = b.(1) in
  {
    name = "matmul";
    attrs = "";
    out_shape = [| m; n |];
    info = Op_info.matmul ~m ~k ~n;
    kernel = arg2 Dense.matmul;
  }

let batch_matmul (a : Shape.t) (b : Shape.t) =
  if Shape.rank a <> 3 || Shape.rank b <> 3 || a.(0) <> b.(0) || a.(2) <> b.(1)
  then
    raise
      (Shape.Shape_error
         (Format.sprintf "batch_matmul: %s x %s" (Shape.to_string a)
            (Shape.to_string b)));
  let bs = a.(0) and m = a.(1) and k = a.(2) and n = b.(2) in
  {
    name = "batch_matmul";
    attrs = "";
    out_shape = [| bs; m; n |];
    info =
      {
        Op_info.name = "batch_matmul";
        kind = Op_info.Contraction;
        flops = 2 * bs * m * k * n;
        bytes_in = 4 * bs * ((m * k) + (k * n));
        bytes_out = 4 * bs * m * n;
      };
    kernel = arg2 Dense.batch_matmul;
  }

let batch_transpose (a : Shape.t) =
  if Shape.rank a <> 3 then
    raise (Shape.Shape_error "batch_transpose: rank 3 only");
  let out_shape = [| a.(0); a.(2); a.(1) |] in
  {
    name = "batch_transpose";
    attrs = "";
    out_shape;
    info = Op_info.data_movement "batch_transpose" ~input:a ~output:out_shape;
    kernel = arg1 Dense.batch_transpose;
  }

let conv_attrs (sh, sw) padding =
  Format.sprintf "stride=%dx%d;pad=%s" sh sw
    (match (padding : Convolution.padding) with Same -> "same" | Valid -> "valid")

let conv2d ?(stride = (1, 1)) ~padding (input : Shape.t) (filter : Shape.t) =
  let sh, sw = stride in
  let oh = Convolution.out_dim padding ~size:input.(1) ~kernel:filter.(0) ~stride:sh in
  let ow = Convolution.out_dim padding ~size:input.(2) ~kernel:filter.(1) ~stride:sw in
  let out_shape = [| input.(0); oh; ow; filter.(3) |] in
  {
    name = "conv2d";
    attrs = conv_attrs stride padding;
    out_shape;
    info = Op_info.conv2d ~stride ~padding ~input ~filter ~output:out_shape ();
    kernel = arg2 (Convolution.conv2d ~stride ~padding);
  }

(* The two convolution backward kernels cost about one forward convolution
   each, which is how training lands near 3x forward flops. *)
let conv2d_backward_input ?(stride = (1, 1)) ~padding ~input_shape
    (filter : Shape.t) (grad : Shape.t) =
  {
    name = "conv2d_backward_input";
    attrs = conv_attrs stride padding;
    out_shape = input_shape;
    info =
      {
        (Op_info.conv2d ~stride ~padding ~input:input_shape ~filter
           ~output:grad ())
        with
        Op_info.name = "conv2d_backward_input";
      };
    kernel = arg2 (Convolution.conv2d_backward_input ~stride ~padding ~input_shape);
  }

let conv2d_backward_filter ?(stride = (1, 1)) ~padding ~filter_shape
    (input : Shape.t) (grad : Shape.t) =
  {
    name = "conv2d_backward_filter";
    attrs = conv_attrs stride padding;
    out_shape = filter_shape;
    info =
      {
        (Op_info.conv2d ~stride ~padding ~input ~filter:filter_shape
           ~output:grad ())
        with
        Op_info.name = "conv2d_backward_filter";
      };
    kernel = arg2 (Convolution.conv2d_backward_filter ~stride ~padding ~filter_shape);
  }

let pool_attrs (kh, kw) (sh, sw) = Format.sprintf "size=%dx%d;stride=%dx%d" kh kw sh sw

let pool_out_shape (input : Shape.t) (kh, kw) (sh, sw) =
  let oh = Convolution.out_dim Valid ~size:input.(1) ~kernel:kh ~stride:sh in
  let ow = Convolution.out_dim Valid ~size:input.(2) ~kernel:kw ~stride:sw in
  [| input.(0); oh; ow; input.(3) |]

let avg_pool2d ~size ~stride (input : Shape.t) =
  let out_shape = pool_out_shape input size stride in
  {
    name = "avg_pool2d";
    attrs = pool_attrs size stride;
    out_shape;
    info =
      {
        (Op_info.reduction "avg_pool2d" ~input ~output:out_shape) with
        Op_info.flops = Shape.numel out_shape * fst size * snd size;
      };
    kernel = arg1 (Convolution.avg_pool2d ~size ~stride);
  }

let avg_pool2d_backward ~size ~stride ~input_shape (grad : Shape.t) =
  {
    name = "avg_pool2d_backward";
    attrs = pool_attrs size stride;
    out_shape = input_shape;
    info = Op_info.elementwise "avg_pool2d_backward" ~inputs:[ grad ] ~output:input_shape ();
    kernel = arg1 (Convolution.avg_pool2d_backward ~size ~stride ~input_shape);
  }

let max_pool2d ~size ~stride (input : Shape.t) =
  let out_shape = pool_out_shape input size stride in
  {
    name = "max_pool2d";
    attrs = pool_attrs size stride;
    out_shape;
    info =
      {
        (Op_info.reduction "max_pool2d" ~input ~output:out_shape) with
        Op_info.flops = Shape.numel out_shape * fst size * snd size;
      };
    kernel = arg1 (Convolution.max_pool2d ~size ~stride);
  }

let max_pool2d_backward ~size ~stride (input : Shape.t) (grad : Shape.t) =
  {
    name = "max_pool2d_backward";
    attrs = pool_attrs size stride;
    out_shape = input;
    info = Op_info.elementwise "max_pool2d_backward" ~inputs:[ input; grad ] ~output:input ();
    kernel = arg2 (Convolution.max_pool2d_backward ~size ~stride);
  }

let softmax (a : Shape.t) =
  {
    name = "softmax";
    attrs = "";
    out_shape = a;
    info = Op_info.elementwise "softmax" ~inputs:[ a ] ~output:a ~flops_per_elem:5 ();
    kernel = arg1 Dense.softmax;
  }

let log_softmax (a : Shape.t) =
  {
    name = "log_softmax";
    attrs = "";
    out_shape = a;
    info = Op_info.elementwise "log_softmax" ~inputs:[ a ] ~output:a ~flops_per_elem:5 ();
    kernel = arg1 Dense.log_softmax;
  }
