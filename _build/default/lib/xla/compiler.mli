(** JIT compilation of HLO graphs into executables, and their (simulated)
    execution.

    Compilation runs the optimization pipeline and fusion, and charges the
    host a simulated compile time proportional to graph size — "invoking the
    XLA JIT is computationally expensive" (§3.4), which is why the LazyTensor
    runtime caches executables by trace fingerprint.

    Execution has two modes:
    - {!run}: computes real tensor values with the naive kernels while
      advancing the simulated device clock kernel by kernel;
    - {!simulate}: advances the clock only, for benchmarks that measure the
      timing model on workloads too large to execute for real. *)

type executable

type compile_stats = {
  input_nodes : int;
  optimized_nodes : int;
  clusters : int;
  compile_seconds : float;  (** Simulated compile cost charged to the host. *)
}

(** [compile ?engine g] optimizes, fuses, and packages [g]. When [engine] is
    given, the simulated compile time is charged to its host clock. *)
val compile : ?engine:S4o_device.Engine.t -> Hlo.graph -> executable

val stats : executable -> compile_stats

(** Estimated device time of one execution (sum of fused-kernel times). *)
val estimated_run_time : S4o_device.Device_spec.t -> executable -> float

(** [run exe engine feeds] executes for real: [feeds.(i)] is parameter [i].
    Kernels are dispatched asynchronously to [engine]; the caller decides
    when to {!S4o_device.Engine.sync}. *)
val run :
  executable -> S4o_device.Engine.t -> S4o_tensor.Dense.t array -> S4o_tensor.Dense.t array

(** Advance the engine's device clock as if executing, without computing any
    tensor values. *)
val simulate : executable -> S4o_device.Engine.t -> unit

(** [peak_memory ?donated exe] estimates peak device memory of one execution:
    parameters are resident, intermediates are freed when their last
    consumer finishes, and parameters listed in [donated] alias a
    shape-matching output buffer (XLA's input–output buffer aliasing, §4.2). *)
val peak_memory : ?donated:int list -> executable -> int
