lib/xla/hlo.mli: Dense Format S4o_device S4o_tensor Shape
