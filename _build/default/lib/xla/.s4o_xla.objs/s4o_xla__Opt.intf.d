lib/xla/opt.mli: Hlo S4o_device
