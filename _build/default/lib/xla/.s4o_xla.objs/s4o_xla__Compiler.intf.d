lib/xla/compiler.mli: Hlo S4o_device S4o_tensor
