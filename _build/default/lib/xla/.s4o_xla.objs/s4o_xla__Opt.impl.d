lib/xla/opt.ml: Array Dense Format Hashtbl Hlo List Option S4o_device S4o_tensor Shape String
