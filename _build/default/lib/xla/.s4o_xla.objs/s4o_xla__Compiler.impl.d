lib/xla/compiler.ml: Array Dense Format Hashtbl Hlo List Opt Option S4o_device S4o_tensor Shape
