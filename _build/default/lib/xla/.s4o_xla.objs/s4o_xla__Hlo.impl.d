lib/xla/hlo.ml: Buffer Dense Format Hashtbl List S4o_device S4o_tensor Shape String
