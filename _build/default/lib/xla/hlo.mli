(** An HLO-like graph intermediate representation — the target of LazyTensor
    tracing (§3.3) and the input of the domain-specific compiler.

    Nodes are immutable DAG vertices carrying the semantic operation name and
    attribute string (used for CSE and trace fingerprinting), the output
    shape, cost metadata, and a kernel closure giving the operation's
    semantics on {!S4o_tensor.Dense} values. Parameters are fed at execution
    time; literals are embedded constants. The record is exposed because the
    optimizer, fuser, and executor pattern-match on it throughout. *)

open S4o_tensor

type node = {
  id : int;  (** Globally unique; not part of the structural fingerprint. *)
  op_name : string;
  attrs : string;  (** Semantics-affecting parameters, e.g. stride/padding. *)
  shape : Shape.t;
  info : S4o_device.Op_info.t;
  inputs : node list;
  kernel : Dense.t array -> Dense.t;
  role : role;
}

and role =
  | Compute
  | Param of int  (** Fed at execution; the int is the parameter position. *)
  | Literal of Dense.t

val param : index:int -> shape:Shape.t -> node
val literal : Dense.t -> node

val op :
  name:string ->
  ?attrs:string ->
  shape:Shape.t ->
  info:S4o_device.Op_info.t ->
  inputs:node list ->
  kernel:(Dense.t array -> Dense.t) ->
  unit ->
  node

(** {1 Graphs} *)

type graph = { outputs : node list; nodes : node list  (** topological order *) }

(** Topologically sort all nodes reachable from the outputs (this is also the
    dead-code elimination primitive). *)
val graph_of_outputs : node list -> graph

val size : graph -> int

(** Parameter nodes, sorted by parameter position. *)
val params : graph -> node list

(** Structural fingerprint: identical traces (same ops, attributes, shapes,
    topology, literal contents) fingerprint equal regardless of node
    identity — the key of the XLA-program cache (§3.4). Parameter {e values}
    do not participate, so the cache hits across training steps. *)
val fingerprint : graph -> int

(** {1 Rendering (Figure 4)} *)

val pp_node : Format.formatter -> node -> unit
val pp_graph : Format.formatter -> graph -> unit
val to_string : graph -> string

(** GraphViz rendering of the trace DAG, as in Figure 4. *)
val to_dot : ?name:string -> graph -> string
