(** Tensor shapes: dimension vectors with row-major stride arithmetic and
    NumPy-style broadcasting. A shape is an immutable array of non-negative
    dimensions; rank-0 shapes denote scalars. *)

type t = int array

exception Shape_error of string

(** [check_valid s] raises {!Shape_error} if any dimension is negative. *)
val check_valid : t -> unit

(** Number of dimensions. *)
val rank : t -> int

(** Total number of elements, i.e. the product of all dimensions. The empty
    shape has one element (a scalar). *)
val numel : t -> int

val equal : t -> t -> bool

(** Renders as e.g. ["[2x3x4]"]; scalars render as ["[]"]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** Row-major strides: [strides [|2;3;4|] = [|12;4;1|]]. *)
val strides : t -> int array

(** [offset strides idx] is the flat offset of multi-index [idx]. *)
val offset : int array -> int array -> int

(** [unravel s flat] is the multi-index corresponding to flat offset [flat]
    under row-major layout. *)
val unravel : t -> int -> int array

(** [broadcast a b] is the NumPy broadcast of the two shapes. Dimensions are
    aligned from the right; size-1 dimensions stretch. Raises {!Shape_error}
    when the shapes are incompatible. *)
val broadcast : t -> t -> t

(** [broadcastable a b] is true iff [broadcast a b] would succeed. *)
val broadcastable : t -> t -> bool

(** [can_reshape a b] is true iff both shapes have the same element count. *)
val can_reshape : t -> t -> bool

(** [reduce_axes s axes] removes (when [keep_dims] is false, the default) or
    collapses to 1 (when true) the given axes. Axes must be distinct and in
    range; raises {!Shape_error} otherwise. *)
val reduce_axes : ?keep_dims:bool -> t -> int list -> t

(** [concat_dim a b axis] is the shape of concatenating along [axis]; all
    other dimensions must match. *)
val concat_dim : t -> t -> int -> t

(** A stable structural hash suitable for trace-cache keys. *)
val hash : t -> int
