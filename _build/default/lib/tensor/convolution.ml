type padding = Same | Valid

let fail fmt = Format.kasprintf (fun s -> raise (Shape.Shape_error s)) fmt

let out_dim padding ~size ~kernel ~stride =
  match padding with
  | Same -> ((size - 1) / stride) + 1
  | Valid ->
      if size < kernel then 0 else ((size - kernel) / stride) + 1

let pad_amounts padding ~size ~kernel ~stride =
  match padding with
  | Valid -> (0, 0)
  | Same ->
      let out = out_dim Same ~size ~kernel ~stride in
      let total = max 0 (((out - 1) * stride) + kernel - size) in
      let before = total / 2 in
      (before, total - before)

let check_rank4 ctx t =
  if Dense.rank t <> 4 then
    fail "%s: expected rank-4 NHWC tensor, got %s" ctx
      (Shape.to_string (Dense.shape t))

let conv2d ?(stride = (1, 1)) ~padding input filter =
  check_rank4 "conv2d input" input;
  check_rank4 "conv2d filter" filter;
  let sh, sw = stride in
  let ishape = Dense.shape input and fshape = Dense.shape filter in
  let n = ishape.(0) and h = ishape.(1) and w = ishape.(2) and cin = ishape.(3) in
  let kh = fshape.(0) and kw = fshape.(1) and fcin = fshape.(2) and cout = fshape.(3) in
  if cin <> fcin then
    fail "conv2d: input channels %d vs filter channels %d" cin fcin;
  let oh = out_dim padding ~size:h ~kernel:kh ~stride:sh in
  let ow = out_dim padding ~size:w ~kernel:kw ~stride:sw in
  let ph, _ = pad_amounts padding ~size:h ~kernel:kh ~stride:sh in
  let pw, _ = pad_amounts padding ~size:w ~kernel:kw ~stride:sw in
  let out = Dense.zeros [| n; oh; ow; cout |] in
  let id = Dense.unsafe_data input
  and fd = Dense.unsafe_data filter
  and od = Dense.unsafe_data out in
  for b = 0 to n - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        for ky = 0 to kh - 1 do
          let iy = (oy * sh) + ky - ph in
          if iy >= 0 && iy < h then
            for kx = 0 to kw - 1 do
              let ix = (ox * sw) + kx - pw in
              if ix >= 0 && ix < w then begin
                let ibase = (((((b * h) + iy) * w) + ix) * cin) in
                let fbase = ((((ky * kw) + kx) * cin)) in
                let obase = (((((b * oh) + oy) * ow) + ox) * cout) in
                for c = 0 to cin - 1 do
                  let iv = id.(ibase + c) in
                  if iv <> 0.0 then begin
                    let frow = (fbase + c) * cout in
                    for oc = 0 to cout - 1 do
                      od.(obase + oc) <- od.(obase + oc) +. (iv *. fd.(frow + oc))
                    done
                  end
                done
              end
            done
        done
      done
    done
  done;
  out

let conv2d_backward_input ?(stride = (1, 1)) ~padding ~input_shape filter grad =
  check_rank4 "conv2d_backward_input grad" grad;
  let sh, sw = stride in
  let n = input_shape.(0)
  and h = input_shape.(1)
  and w = input_shape.(2)
  and cin = input_shape.(3) in
  let fshape = Dense.shape filter in
  let kh = fshape.(0) and kw = fshape.(1) and cout = fshape.(3) in
  let gshape = Dense.shape grad in
  let oh = gshape.(1) and ow = gshape.(2) in
  let ph, _ = pad_amounts padding ~size:h ~kernel:kh ~stride:sh in
  let pw, _ = pad_amounts padding ~size:w ~kernel:kw ~stride:sw in
  let dinput = Dense.zeros input_shape in
  let dd = Dense.unsafe_data dinput
  and fd = Dense.unsafe_data filter
  and gd = Dense.unsafe_data grad in
  for b = 0 to n - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        for ky = 0 to kh - 1 do
          let iy = (oy * sh) + ky - ph in
          if iy >= 0 && iy < h then
            for kx = 0 to kw - 1 do
              let ix = (ox * sw) + kx - pw in
              if ix >= 0 && ix < w then begin
                let ibase = (((((b * h) + iy) * w) + ix) * cin) in
                let fbase = (((ky * kw) + kx) * cin) in
                let obase = (((((b * oh) + oy) * ow) + ox) * cout) in
                for c = 0 to cin - 1 do
                  let frow = (fbase + c) * cout in
                  let acc = ref 0.0 in
                  for oc = 0 to cout - 1 do
                    acc := !acc +. (fd.(frow + oc) *. gd.(obase + oc))
                  done;
                  dd.(ibase + c) <- dd.(ibase + c) +. !acc
                done
              end
            done
        done
      done
    done
  done;
  dinput

let conv2d_backward_filter ?(stride = (1, 1)) ~padding ~filter_shape input grad =
  check_rank4 "conv2d_backward_filter input" input;
  check_rank4 "conv2d_backward_filter grad" grad;
  let sh, sw = stride in
  let ishape = Dense.shape input in
  let n = ishape.(0) and h = ishape.(1) and w = ishape.(2) and cin = ishape.(3) in
  let kh = filter_shape.(0) and kw = filter_shape.(1) and cout = filter_shape.(3) in
  let gshape = Dense.shape grad in
  let oh = gshape.(1) and ow = gshape.(2) in
  let ph, _ = pad_amounts padding ~size:h ~kernel:kh ~stride:sh in
  let pw, _ = pad_amounts padding ~size:w ~kernel:kw ~stride:sw in
  let dfilter = Dense.zeros filter_shape in
  let dd = Dense.unsafe_data dfilter
  and id = Dense.unsafe_data input
  and gd = Dense.unsafe_data grad in
  for b = 0 to n - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        for ky = 0 to kh - 1 do
          let iy = (oy * sh) + ky - ph in
          if iy >= 0 && iy < h then
            for kx = 0 to kw - 1 do
              let ix = (ox * sw) + kx - pw in
              if ix >= 0 && ix < w then begin
                let ibase = (((((b * h) + iy) * w) + ix) * cin) in
                let fbase = (((ky * kw) + kx) * cin) in
                let obase = (((((b * oh) + oy) * ow) + ox) * cout) in
                for c = 0 to cin - 1 do
                  let iv = id.(ibase + c) in
                  if iv <> 0.0 then begin
                    let frow = (fbase + c) * cout in
                    for oc = 0 to cout - 1 do
                      dd.(frow + oc) <- dd.(frow + oc) +. (iv *. gd.(obase + oc))
                    done
                  end
                done
              end
            done
        done
      done
    done
  done;
  dfilter

let pool_out_shape ishape (kh, kw) (sh, sw) =
  let n = ishape.(0) and h = ishape.(1) and w = ishape.(2) and c = ishape.(3) in
  let oh = out_dim Valid ~size:h ~kernel:kh ~stride:sh in
  let ow = out_dim Valid ~size:w ~kernel:kw ~stride:sw in
  [| n; oh; ow; c |]

let avg_pool2d ~size ~stride input =
  check_rank4 "avg_pool2d" input;
  let kh, kw = size and sh, sw = stride in
  let ishape = Dense.shape input in
  let h = ishape.(1) and w = ishape.(2) and c = ishape.(3) in
  let oshape = pool_out_shape ishape size stride in
  let n = oshape.(0) and oh = oshape.(1) and ow = oshape.(2) in
  let out = Dense.zeros oshape in
  let id = Dense.unsafe_data input and od = Dense.unsafe_data out in
  let inv = 1.0 /. float_of_int (kh * kw) in
  for b = 0 to n - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        for ch = 0 to c - 1 do
          let acc = ref 0.0 in
          for ky = 0 to kh - 1 do
            for kx = 0 to kw - 1 do
              let iy = (oy * sh) + ky and ix = (ox * sw) + kx in
              acc := !acc +. id.((((((b * h) + iy) * w) + ix) * c) + ch)
            done
          done;
          od.((((((b * oh) + oy) * ow) + ox) * c) + ch) <- !acc *. inv
        done
      done
    done
  done;
  out

let avg_pool2d_backward ~size ~stride ~input_shape grad =
  let kh, kw = size and sh, sw = stride in
  let h = input_shape.(1) and w = input_shape.(2) and c = input_shape.(3) in
  let gshape = Dense.shape grad in
  let n = gshape.(0) and oh = gshape.(1) and ow = gshape.(2) in
  let dinput = Dense.zeros input_shape in
  let dd = Dense.unsafe_data dinput and gd = Dense.unsafe_data grad in
  let inv = 1.0 /. float_of_int (kh * kw) in
  for b = 0 to n - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        for ch = 0 to c - 1 do
          let g = gd.((((((b * oh) + oy) * ow) + ox) * c) + ch) *. inv in
          for ky = 0 to kh - 1 do
            for kx = 0 to kw - 1 do
              let iy = (oy * sh) + ky and ix = (ox * sw) + kx in
              let off = (((((b * h) + iy) * w) + ix) * c) + ch in
              dd.(off) <- dd.(off) +. g
            done
          done
        done
      done
    done
  done;
  dinput

let max_pool2d ~size ~stride input =
  check_rank4 "max_pool2d" input;
  let kh, kw = size and sh, sw = stride in
  let ishape = Dense.shape input in
  let h = ishape.(1) and w = ishape.(2) and c = ishape.(3) in
  let oshape = pool_out_shape ishape size stride in
  let n = oshape.(0) and oh = oshape.(1) and ow = oshape.(2) in
  let out = Dense.zeros oshape in
  let id = Dense.unsafe_data input and od = Dense.unsafe_data out in
  for b = 0 to n - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        for ch = 0 to c - 1 do
          let best = ref Float.neg_infinity in
          for ky = 0 to kh - 1 do
            for kx = 0 to kw - 1 do
              let iy = (oy * sh) + ky and ix = (ox * sw) + kx in
              best := Float.max !best id.((((((b * h) + iy) * w) + ix) * c) + ch)
            done
          done;
          od.((((((b * oh) + oy) * ow) + ox) * c) + ch) <- !best
        done
      done
    done
  done;
  out

let max_pool2d_backward ~size ~stride input grad =
  check_rank4 "max_pool2d_backward" input;
  let kh, kw = size and sh, sw = stride in
  let ishape = Dense.shape input in
  let h = ishape.(1) and w = ishape.(2) and c = ishape.(3) in
  let gshape = Dense.shape grad in
  let n = gshape.(0) and oh = gshape.(1) and ow = gshape.(2) in
  let dinput = Dense.zeros ishape in
  let dd = Dense.unsafe_data dinput
  and id = Dense.unsafe_data input
  and gd = Dense.unsafe_data grad in
  for b = 0 to n - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        for ch = 0 to c - 1 do
          let best = ref Float.neg_infinity in
          let best_off = ref (-1) in
          for ky = 0 to kh - 1 do
            for kx = 0 to kw - 1 do
              let iy = (oy * sh) + ky and ix = (ox * sw) + kx in
              let off = (((((b * h) + iy) * w) + ix) * c) + ch in
              if id.(off) > !best then begin
                best := id.(off);
                best_off := off
              end
            done
          done;
          dd.(!best_off) <-
            dd.(!best_off) +. gd.((((((b * oh) + oy) * ow) + ox) * c) + ch)
        done
      done
    done
  done;
  dinput

let conv2d_flops ?(stride = (1, 1)) ~padding ~input filter =
  let sh, sw = stride in
  let n = input.(0) and h = input.(1) and w = input.(2) in
  let kh = filter.(0) and kw = filter.(1) and cin = filter.(2) and cout = filter.(3) in
  let oh = out_dim padding ~size:h ~kernel:kh ~stride:sh in
  let ow = out_dim padding ~size:w ~kernel:kw ~stride:sw in
  2 * n * oh * ow * kh * kw * cin * cout
