(** The naive Tensor of §3.1: a single-threaded multi-dimensional array backed
    by a plain OCaml [float array], with no external dependencies.

    The API has {e value semantics}: every operation returns a fresh tensor
    and never aliases the argument buffers, so distinct values access
    logically disjoint data (§4). A small set of explicitly named
    [*_inplace] operations mutate their first argument; they model Swift's
    [inout] unique borrow and must only be applied to values the caller
    uniquely owns (this is what the optimizer's in-place update path uses). *)

type t

exception Shape_error of string
(** Re-raised from {!Shape}[.Shape_error] for shape mismatches. *)

(** {1 Creation} *)

val create : Shape.t -> float -> t
val zeros : Shape.t -> t
val ones : Shape.t -> t
val scalar : float -> t

(** [of_array shape data] copies [data]; its length must equal
    [Shape.numel shape]. *)
val of_array : Shape.t -> float array -> t

(** [init shape f] fills element at multi-index [idx] with [f idx]. *)
val init : Shape.t -> (int array -> float) -> t

(** [init_flat shape f] fills flat position [i] with [f i]. *)
val init_flat : Shape.t -> (int -> float) -> t

val arange : int -> t
val linspace : lo:float -> hi:float -> int -> t
val rand_uniform : Prng.t -> ?lo:float -> ?hi:float -> Shape.t -> t
val rand_normal : Prng.t -> ?mean:float -> ?stddev:float -> Shape.t -> t

(** {1 Access} *)

val shape : t -> Shape.t
val rank : t -> int
val numel : t -> int
val get : t -> int array -> float
val get_flat : t -> int -> float

(** Extracts the value of a rank-0 or single-element tensor. *)
val item : t -> float

(** Copy of the underlying buffer in row-major order. *)
val to_array : t -> float array

(** The underlying buffer itself, not a copy. Mutating it breaks value
    semantics; reserved for kernels and backends. *)
val unsafe_data : t -> float array

val copy : t -> t

(** {1 Functional update} *)

(** [set t idx v] is a copy of [t] with element [idx] replaced. *)
val set : t -> int array -> float -> t

val set_flat : t -> int -> float -> t

(** {1 In-place (unique-borrow) operations} *)

val fill_inplace : t -> float -> unit

(** [add_inplace dst src]: [dst <- dst + src] (shapes must match). *)
val add_inplace : t -> t -> unit

(** [axpy_inplace ~alpha dst x]: [dst <- dst + alpha * x]. *)
val axpy_inplace : alpha:float -> t -> t -> unit

(** [scale_inplace t alpha]: [t <- alpha * t]. *)
val scale_inplace : t -> float -> unit

(** [add_at_inplace t idx v]: [t.(idx) <- t.(idx) + v] — the O(1) inout
    pullback primitive of Appendix B. *)
val add_at_inplace : t -> int array -> float -> unit

(** {1 Elementwise} *)

val map : (float -> float) -> t -> t

(** Broadcasting binary map (NumPy rules). *)
val map2 : (float -> float -> float) -> t -> t -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val scale : float -> t -> t
val add_scalar : float -> t -> t
val pow_scalar : t -> float -> t
val exp : t -> t
val log : t -> t
val sqrt : t -> t
val abs : t -> t
val sign : t -> t
val relu : t -> t
val sigmoid : t -> t
val tanh : t -> t
val maximum : t -> t -> t
val minimum : t -> t -> t
val clip : lo:float -> hi:float -> t -> t

(** {1 Comparison} *)

val equal : t -> t -> bool
val allclose : ?rtol:float -> ?atol:float -> t -> t -> bool

(** {1 Reductions} *)

val sum : t -> float
val mean : t -> float
val max_value : t -> float
val min_value : t -> float

(** [sum_axes ?keep_dims t axes] sums over the given axes. *)
val sum_axes : ?keep_dims:bool -> t -> int list -> t

val mean_axes : ?keep_dims:bool -> t -> int list -> t

(** Row-wise argmax of a [\[n; c\]] tensor. *)
val argmax_rows : t -> int array

(** {1 Shape manipulation} *)

val reshape : t -> Shape.t -> t
val flatten_to_2d : t -> t
(** Collapses all but the first axis: [\[n; ...\]] to [\[n; rest\]]. *)

(** [broadcast_to t shape] materializes [t] broadcast to [shape]. *)
val broadcast_to : t -> Shape.t -> t

(** [unbroadcast t shape] sums [t] back down to [shape] — the adjoint of
    [broadcast_to], used by reverse-mode AD. *)
val unbroadcast : t -> Shape.t -> t

(** 2-D transpose. *)
val transpose : t -> t

(** General axis permutation. *)
val permute : t -> int array -> t

val concat : t -> t -> int -> t

(** [slice t ~axis ~start ~len]. *)
val slice : t -> axis:int -> start:int -> len:int -> t

(** [one_hot ~classes labels] maps [\[n\]] integer-valued entries to
    [\[n; classes\]]. *)
val one_hot : classes:int -> t -> t

(** {1 Linear algebra} *)

(** 2-D matrix product [\[m;k\] x \[k;n\] -> \[m;n\]]. *)
val matmul : t -> t -> t

(** 1-D dot product. *)
val dot : t -> t -> float

(** {1 NN math} *)

(** Numerically-stable softmax over the last axis of a 2-D tensor. *)
val softmax : t -> t

val log_softmax : t -> t

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Batched linear algebra} *)

(** Batched matrix product [\[b;m;k\] x \[b;k;n\] -> \[b;m;n\]]. *)
val batch_matmul : t -> t -> t

(** Transpose of the trailing two axes of a rank-3 tensor. *)
val batch_transpose : t -> t
