(** The naive backend of §3.1: {!Dense} tensors executed synchronously on the
    host with zero dispatch machinery. Portable, low-overhead, and ideal for
    small tensors (the mobile spline experiment of §5.1.3 runs on it). *)

type t = Dense.t

let name = "naive"
let of_dense t = t
let to_dense t = t
let shape = Dense.shape
let add = Dense.add
let sub = Dense.sub
let mul = Dense.mul
let div = Dense.div
let neg = Dense.neg
let scale = Dense.scale
let add_scalar = Dense.add_scalar
let exp = Dense.exp
let log = Dense.log
let sqrt = Dense.sqrt
let relu = Dense.relu
let sigmoid = Dense.sigmoid
let tanh = Dense.tanh
let relu_grad x g = Dense.map2 (fun xv gv -> if xv > 0.0 then gv else 0.0) x g
let reshape = Dense.reshape
let transpose = Dense.transpose
let broadcast_to = Dense.broadcast_to
let unbroadcast = Dense.unbroadcast
let sum_axes = Dense.sum_axes
let sum_all t = Dense.scalar (Dense.sum t)
let mean_all t = Dense.scalar (Dense.mean t)
let matmul = Dense.matmul
let batch_matmul = Dense.batch_matmul
let batch_transpose = Dense.batch_transpose
let conv2d = Convolution.conv2d
let conv2d_backward_input = Convolution.conv2d_backward_input
let conv2d_backward_filter = Convolution.conv2d_backward_filter
let avg_pool2d = Convolution.avg_pool2d
let avg_pool2d_backward = Convolution.avg_pool2d_backward
let max_pool2d = Convolution.max_pool2d
let max_pool2d_backward = Convolution.max_pool2d_backward
let softmax = Dense.softmax
let log_softmax = Dense.log_softmax
