lib/tensor/naive_backend.ml: Convolution Dense
