lib/tensor/convolution.mli: Dense Shape
