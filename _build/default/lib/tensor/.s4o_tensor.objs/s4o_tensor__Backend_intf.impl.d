lib/tensor/backend_intf.ml: Convolution Dense Shape
