lib/tensor/dense.mli: Format Prng Shape
