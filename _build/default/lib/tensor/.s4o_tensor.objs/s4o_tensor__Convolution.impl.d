lib/tensor/convolution.ml: Array Dense Float Format Shape
