lib/tensor/prng.ml: Array Float Int64
