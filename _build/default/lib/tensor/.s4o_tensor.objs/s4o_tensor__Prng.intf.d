lib/tensor/prng.mli:
