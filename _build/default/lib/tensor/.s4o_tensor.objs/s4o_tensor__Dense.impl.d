lib/tensor/dense.ml: Array Float Format List Prng Shape
