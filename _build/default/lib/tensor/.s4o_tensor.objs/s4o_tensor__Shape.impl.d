lib/tensor/shape.ml: Array Format List String
