type t = { shape : Shape.t; data : float array }

exception Shape_error = Shape.Shape_error

let fail fmt = Format.kasprintf (fun s -> raise (Shape_error s)) fmt

(* {1 Creation} *)

let create shape v =
  Shape.check_valid shape;
  { shape = Array.copy shape; data = Array.make (Shape.numel shape) v }

let zeros shape = create shape 0.0
let ones shape = create shape 1.0
let scalar v = { shape = [||]; data = [| v |] }

let of_array shape data =
  Shape.check_valid shape;
  if Array.length data <> Shape.numel shape then
    fail "of_array: %d elements for shape %s" (Array.length data)
      (Shape.to_string shape);
  { shape = Array.copy shape; data = Array.copy data }

let init_flat shape f =
  Shape.check_valid shape;
  { shape = Array.copy shape; data = Array.init (Shape.numel shape) f }

let init shape f = init_flat shape (fun i -> f (Shape.unravel shape i))

let arange n = init_flat [| n |] float_of_int

let linspace ~lo ~hi n =
  if n < 2 then fail "linspace: need at least 2 points";
  let step = (hi -. lo) /. float_of_int (n - 1) in
  init_flat [| n |] (fun i -> lo +. (step *. float_of_int i))

let rand_uniform g ?(lo = 0.0) ?(hi = 1.0) shape =
  init_flat shape (fun _ -> Prng.uniform g ~lo ~hi)

let rand_normal g ?(mean = 0.0) ?(stddev = 1.0) shape =
  init_flat shape (fun _ -> Prng.gaussian g ~mean ~stddev)

(* {1 Access} *)

let shape t = t.shape
let rank t = Shape.rank t.shape
let numel t = Array.length t.data

let get t idx =
  if Array.length idx <> rank t then
    fail "get: index rank %d for shape %s" (Array.length idx)
      (Shape.to_string t.shape);
  t.data.(Shape.offset (Shape.strides t.shape) idx)

let get_flat t i = t.data.(i)

let item t =
  if numel t <> 1 then fail "item: tensor has %d elements" (numel t);
  t.data.(0)

let to_array t = Array.copy t.data
let unsafe_data t = t.data
let copy t = { shape = Array.copy t.shape; data = Array.copy t.data }

(* {1 Functional update} *)

let set t idx v =
  let fresh = copy t in
  fresh.data.(Shape.offset (Shape.strides t.shape) idx) <- v;
  fresh

let set_flat t i v =
  let fresh = copy t in
  fresh.data.(i) <- v;
  fresh

(* {1 In-place} *)

let fill_inplace t v = Array.fill t.data 0 (Array.length t.data) v

let check_same_shape ctx a b =
  if not (Shape.equal a.shape b.shape) then
    fail "%s: shape mismatch %s vs %s" ctx (Shape.to_string a.shape)
      (Shape.to_string b.shape)

let add_inplace dst src =
  check_same_shape "add_inplace" dst src;
  for i = 0 to numel dst - 1 do
    dst.data.(i) <- dst.data.(i) +. src.data.(i)
  done

let axpy_inplace ~alpha dst x =
  check_same_shape "axpy_inplace" dst x;
  for i = 0 to numel dst - 1 do
    dst.data.(i) <- dst.data.(i) +. (alpha *. x.data.(i))
  done

let scale_inplace t alpha =
  for i = 0 to numel t - 1 do
    t.data.(i) <- alpha *. t.data.(i)
  done

let add_at_inplace t idx v =
  let off = Shape.offset (Shape.strides t.shape) idx in
  t.data.(off) <- t.data.(off) +. v

(* {1 Elementwise} *)

let map f t = { shape = Array.copy t.shape; data = Array.map f t.data }

(* Broadcasting binary map. The fast path handles identical shapes with a
   single flat loop; the general path walks the broadcast output shape and
   maps each output index back through stride-0 "stretched" dimensions. *)
let map2 f a b =
  if Shape.equal a.shape b.shape then
    {
      shape = Array.copy a.shape;
      data = Array.init (numel a) (fun i -> f a.data.(i) b.data.(i));
    }
  else begin
    let out_shape = Shape.broadcast a.shape b.shape in
    let r = Shape.rank out_shape in
    let aligned_strides s =
      (* strides of [s] aligned to the right of [out_shape], 0 on stretched
         or missing dimensions *)
      let rs = Shape.rank s in
      let st = Shape.strides s in
      Array.init r (fun i ->
          let j = i - (r - rs) in
          if j < 0 || s.(j) = 1 then 0 else st.(j))
    in
    let sa = aligned_strides a.shape and sb = aligned_strides b.shape in
    let out = zeros out_shape in
    let idx = Array.make r 0 in
    let n = numel out in
    for flat = 0 to n - 1 do
      out.data.(flat) <- f a.data.(Shape.offset sa idx) b.data.(Shape.offset sb idx);
      (* increment the multi-index, rightmost dimension fastest *)
      let k = ref (r - 1) in
      let carrying = ref (flat < n - 1) in
      while !carrying && !k >= 0 do
        idx.(!k) <- idx.(!k) + 1;
        if idx.(!k) = out_shape.(!k) then begin
          idx.(!k) <- 0;
          decr k
        end
        else carrying := false
      done
    done;
    out
  end

let add = map2 ( +. )
let sub = map2 ( -. )
let mul = map2 ( *. )
let div = map2 ( /. )
let neg = map (fun x -> -.x)
let scale alpha = map (fun x -> alpha *. x)
let add_scalar c = map (fun x -> c +. x)
let pow_scalar t p = map (fun x -> Float.pow x p) t
let exp = map Float.exp
let log = map Float.log
let sqrt = map Float.sqrt
let abs = map Float.abs
let sign = map (fun x -> if x > 0.0 then 1.0 else if x < 0.0 then -1.0 else 0.0)
let relu = map (fun x -> if x > 0.0 then x else 0.0)
let sigmoid = map (fun x -> 1.0 /. (1.0 +. Float.exp (-.x)))
let tanh = map Float.tanh
let maximum = map2 Float.max
let minimum = map2 Float.min
let clip ~lo ~hi = map (fun x -> Float.min hi (Float.max lo x))

(* {1 Comparison} *)

let equal a b = Shape.equal a.shape b.shape && a.data = b.data

let allclose ?(rtol = 1e-5) ?(atol = 1e-8) a b =
  Shape.equal a.shape b.shape
  && begin
       let ok = ref true in
       for i = 0 to numel a - 1 do
         let x = a.data.(i) and y = b.data.(i) in
         if Float.abs (x -. y) > atol +. (rtol *. Float.abs y) then ok := false
       done;
       !ok
     end

(* {1 Reductions} *)

let sum t = Array.fold_left ( +. ) 0.0 t.data
let mean t = sum t /. float_of_int (numel t)
let max_value t = Array.fold_left Float.max Float.neg_infinity t.data
let min_value t = Array.fold_left Float.min Float.infinity t.data

let sum_axes ?(keep_dims = false) t axes =
  let out_shape_kept = Shape.reduce_axes ~keep_dims:true t.shape axes in
  let out = zeros out_shape_kept in
  let st_out = Shape.strides out_shape_kept in
  let r = rank t in
  let n = numel t in
  let idx = Array.make r 0 in
  for flat = 0 to n - 1 do
    (* the output offset ignores reduced axes because their kept size is 1 *)
    let off = ref 0 in
    for i = 0 to r - 1 do
      if out_shape_kept.(i) <> 1 then off := !off + (st_out.(i) * idx.(i))
    done;
    out.data.(!off) <- out.data.(!off) +. t.data.(flat);
    let k = ref (r - 1) in
    let carrying = ref (flat < n - 1) in
    while !carrying && !k >= 0 do
      idx.(!k) <- idx.(!k) + 1;
      if idx.(!k) = t.shape.(!k) then begin
        idx.(!k) <- 0;
        decr k
      end
      else carrying := false
    done
  done;
  if keep_dims then out
  else { out with shape = Shape.reduce_axes ~keep_dims:false t.shape axes }

let mean_axes ?keep_dims t axes =
  let reduced =
    List.fold_left (fun acc ax -> acc * t.shape.(ax)) 1 axes |> float_of_int
  in
  scale (1.0 /. reduced) (sum_axes ?keep_dims t axes)

let argmax_rows t =
  if rank t <> 2 then fail "argmax_rows: expected rank 2, got %s" (Shape.to_string t.shape);
  let n = t.shape.(0) and c = t.shape.(1) in
  Array.init n (fun i ->
      let best = ref 0 in
      for j = 1 to c - 1 do
        if t.data.((i * c) + j) > t.data.((i * c) + !best) then best := j
      done;
      !best)

(* {1 Shape manipulation} *)

let reshape t new_shape =
  Shape.check_valid new_shape;
  if not (Shape.can_reshape t.shape new_shape) then
    fail "reshape: %s to %s" (Shape.to_string t.shape) (Shape.to_string new_shape);
  { shape = Array.copy new_shape; data = Array.copy t.data }

let flatten_to_2d t =
  if rank t < 1 then fail "flatten_to_2d: rank 0";
  let n = t.shape.(0) in
  reshape t [| n; numel t / n |]

let broadcast_to t target =
  let out = Shape.broadcast t.shape target in
  if not (Shape.equal out target) then
    fail "broadcast_to: %s does not broadcast to %s" (Shape.to_string t.shape)
      (Shape.to_string target);
  map2 (fun x _ -> x) t (zeros target)

let unbroadcast t target =
  if Shape.equal t.shape target then t
  else begin
    let r = rank t and rt = Shape.rank target in
    (* sum away leading extra dimensions *)
    let lead = List.init (r - rt) (fun i -> i) in
    let t = if lead = [] then t else sum_axes t lead in
    (* sum over stretched (size-1) dimensions, keeping dims *)
    let axes = ref [] in
    Array.iteri
      (fun i d -> if d = 1 && (shape t).(i) <> 1 then axes := i :: !axes)
      target;
    let t = if !axes = [] then t else sum_axes ~keep_dims:true t !axes in
    reshape t target
  end

let transpose t =
  if rank t <> 2 then fail "transpose: expected rank 2, got %s" (Shape.to_string t.shape);
  let m = t.shape.(0) and n = t.shape.(1) in
  init_flat [| n; m |] (fun flat ->
      let i = flat / m and j = flat mod m in
      t.data.((j * n) + i))

let permute t perm =
  let r = rank t in
  if Array.length perm <> r then fail "permute: rank mismatch";
  let seen = Array.make r false in
  Array.iter
    (fun p ->
      if p < 0 || p >= r || seen.(p) then fail "permute: invalid permutation";
      seen.(p) <- true)
    perm;
  let out_shape = Array.map (fun p -> t.shape.(p)) perm in
  let st = Shape.strides t.shape in
  init out_shape (fun out_idx ->
      let src = Array.make r 0 in
      Array.iteri (fun i p -> src.(p) <- out_idx.(i)) perm;
      t.data.(Shape.offset st src))

let concat a b axis =
  let out_shape = Shape.concat_dim a.shape b.shape axis in
  let st_a = Shape.strides a.shape and st_b = Shape.strides b.shape in
  init out_shape (fun idx ->
      if idx.(axis) < a.shape.(axis) then a.data.(Shape.offset st_a idx)
      else begin
        let idx' = Array.copy idx in
        idx'.(axis) <- idx.(axis) - a.shape.(axis);
        b.data.(Shape.offset st_b idx')
      end)

let slice t ~axis ~start ~len =
  if axis < 0 || axis >= rank t then fail "slice: axis %d out of range" axis;
  if start < 0 || len < 0 || start + len > t.shape.(axis) then
    fail "slice: [%d, %d) out of bounds for axis of size %d" start (start + len)
      t.shape.(axis);
  let out_shape = Array.copy t.shape in
  out_shape.(axis) <- len;
  let st = Shape.strides t.shape in
  init out_shape (fun idx ->
      let idx' = Array.copy idx in
      idx'.(axis) <- idx.(axis) + start;
      t.data.(Shape.offset st idx'))

let one_hot ~classes labels =
  let n = numel labels in
  let out = zeros [| n; classes |] in
  for i = 0 to n - 1 do
    let c = int_of_float labels.data.(i) in
    if c < 0 || c >= classes then fail "one_hot: label %d out of range" c;
    out.data.((i * classes) + c) <- 1.0
  done;
  out

(* {1 Linear algebra} *)

let matmul a b =
  if rank a <> 2 || rank b <> 2 then
    fail "matmul: expected rank-2 operands, got %s and %s"
      (Shape.to_string a.shape) (Shape.to_string b.shape);
  let m = a.shape.(0) and k = a.shape.(1) in
  let k' = b.shape.(0) and n = b.shape.(1) in
  if k <> k' then
    fail "matmul: inner dimensions %d and %d differ" k k';
  let out = zeros [| m; n |] in
  for i = 0 to m - 1 do
    for p = 0 to k - 1 do
      let aip = a.data.((i * k) + p) in
      if aip <> 0.0 then
        for j = 0 to n - 1 do
          out.data.((i * n) + j) <-
            out.data.((i * n) + j) +. (aip *. b.data.((p * n) + j))
        done
    done
  done;
  out

let dot a b =
  if rank a <> 1 || rank b <> 1 || numel a <> numel b then
    fail "dot: expected equal-length vectors";
  let acc = ref 0.0 in
  for i = 0 to numel a - 1 do
    acc := !acc +. (a.data.(i) *. b.data.(i))
  done;
  !acc

(* {1 NN math} *)

let softmax t =
  if rank t <> 2 then fail "softmax: expected rank 2, got %s" (Shape.to_string t.shape);
  let n = t.shape.(0) and c = t.shape.(1) in
  let out = zeros t.shape in
  for i = 0 to n - 1 do
    let m = ref Float.neg_infinity in
    for j = 0 to c - 1 do
      m := Float.max !m t.data.((i * c) + j)
    done;
    let z = ref 0.0 in
    for j = 0 to c - 1 do
      let e = Float.exp (t.data.((i * c) + j) -. !m) in
      out.data.((i * c) + j) <- e;
      z := !z +. e
    done;
    for j = 0 to c - 1 do
      out.data.((i * c) + j) <- out.data.((i * c) + j) /. !z
    done
  done;
  out

let log_softmax t =
  if rank t <> 2 then fail "log_softmax: expected rank 2, got %s" (Shape.to_string t.shape);
  let n = t.shape.(0) and c = t.shape.(1) in
  let out = zeros t.shape in
  for i = 0 to n - 1 do
    let m = ref Float.neg_infinity in
    for j = 0 to c - 1 do
      m := Float.max !m t.data.((i * c) + j)
    done;
    let z = ref 0.0 in
    for j = 0 to c - 1 do
      z := !z +. Float.exp (t.data.((i * c) + j) -. !m)
    done;
    let lse = !m +. Float.log !z in
    for j = 0 to c - 1 do
      out.data.((i * c) + j) <- t.data.((i * c) + j) -. lse
    done
  done;
  out

(* {1 Printing} *)

let pp ppf t =
  let n = numel t in
  let budget = 16 in
  Format.fprintf ppf "Tensor%s [" (Shape.to_string t.shape);
  for i = 0 to min n budget - 1 do
    if i > 0 then Format.fprintf ppf ", ";
    Format.fprintf ppf "%g" t.data.(i)
  done;
  if n > budget then Format.fprintf ppf ", ...";
  Format.fprintf ppf "]"

let to_string t = Format.asprintf "%a" pp t

let batch_matmul a b =
  if rank a <> 3 || rank b <> 3 then
    fail "batch_matmul: expected rank-3 operands, got %s and %s"
      (Shape.to_string a.shape) (Shape.to_string b.shape);
  let bs = a.shape.(0) and m = a.shape.(1) and k = a.shape.(2) in
  if b.shape.(0) <> bs || b.shape.(1) <> k then
    fail "batch_matmul: %s x %s" (Shape.to_string a.shape) (Shape.to_string b.shape);
  let n = b.shape.(2) in
  let out = zeros [| bs; m; n |] in
  for batch = 0 to bs - 1 do
    let abase = batch * m * k and bbase = batch * k * n and obase = batch * m * n in
    for i = 0 to m - 1 do
      for p = 0 to k - 1 do
        let aip = a.data.(abase + (i * k) + p) in
        if aip <> 0.0 then
          for j = 0 to n - 1 do
            out.data.(obase + (i * n) + j) <-
              out.data.(obase + (i * n) + j) +. (aip *. b.data.(bbase + (p * n) + j))
          done
      done
    done
  done;
  out

let batch_transpose t =
  if rank t <> 3 then
    fail "batch_transpose: expected rank 3, got %s" (Shape.to_string t.shape);
  permute t [| 0; 2; 1 |]
