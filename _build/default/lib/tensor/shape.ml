type t = int array

exception Shape_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Shape_error s)) fmt

let check_valid s =
  Array.iter (fun d -> if d < 0 then fail "negative dimension %d" d) s

let rank = Array.length

let numel s = Array.fold_left ( * ) 1 s

let equal a b = a = b

let to_string s =
  if rank s = 0 then "[]"
  else "[" ^ String.concat "x" (Array.to_list (Array.map string_of_int s)) ^ "]"

let pp ppf s = Format.pp_print_string ppf (to_string s)

let strides s =
  let n = rank s in
  let st = Array.make n 1 in
  for i = n - 2 downto 0 do
    st.(i) <- st.(i + 1) * s.(i + 1)
  done;
  st

let offset st idx =
  let acc = ref 0 in
  for i = 0 to Array.length idx - 1 do
    acc := !acc + (st.(i) * idx.(i))
  done;
  !acc

let unravel s flat =
  let st = strides s in
  Array.mapi (fun i _ -> flat / st.(i) mod s.(i)) s

let broadcast a b =
  let ra = rank a and rb = rank b in
  let r = max ra rb in
  let dim s rs i =
    (* dimension of [s] aligned from the right at output position [i] *)
    let j = i - (r - rs) in
    if j < 0 then 1 else s.(j)
  in
  Array.init r (fun i ->
      let da = dim a ra i and db = dim b rb i in
      if da = db then da
      else if da = 1 then db
      else if db = 1 then da
      else fail "cannot broadcast %s with %s" (to_string a) (to_string b))

let broadcastable a b =
  match broadcast a b with _ -> true | exception Shape_error _ -> false

let can_reshape a b = numel a = numel b

let reduce_axes ?(keep_dims = false) s axes =
  let r = rank s in
  List.iter
    (fun ax ->
      if ax < 0 || ax >= r then fail "axis %d out of range for %s" ax (to_string s))
    axes;
  let sorted = List.sort_uniq compare axes in
  if List.length sorted <> List.length axes then fail "duplicate reduction axes";
  if keep_dims then
    Array.mapi (fun i d -> if List.mem i sorted then 1 else d) s
  else
    s |> Array.to_list
    |> List.filteri (fun i _ -> not (List.mem i sorted))
    |> Array.of_list

let concat_dim a b axis =
  if rank a <> rank b then
    fail "concat rank mismatch: %s vs %s" (to_string a) (to_string b);
  if axis < 0 || axis >= rank a then fail "concat axis %d out of range" axis;
  Array.mapi
    (fun i d ->
      if i = axis then d + b.(i)
      else if d = b.(i) then d
      else fail "concat dim mismatch at axis %d: %s vs %s" i (to_string a) (to_string b))
    a

let hash s =
  Array.fold_left (fun acc d -> (acc * 1000003) lxor (d + 0x9e3779b9)) (rank s) s
