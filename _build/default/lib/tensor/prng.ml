type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }

let next_int64 g =
  g.state <- Int64.add g.state golden;
  mix g.state

let split g = { state = mix (next_int64 g) }

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* keep 62 bits so the value stays non-negative in OCaml's 63-bit int *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2) in
  r mod bound

let float g =
  (* 53 random mantissa bits scaled into [0, 1) *)
  let bits = Int64.shift_right_logical (next_int64 g) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform g ~lo ~hi = lo +. ((hi -. lo) *. float g)

let normal g =
  let u1 = ref (float g) in
  while !u1 <= 1e-300 do
    u1 := float g
  done;
  let u2 = float g in
  sqrt (-2.0 *. log !u1) *. cos (2.0 *. Float.pi *. u2)

let gaussian g ~mean ~stddev = mean +. (stddev *. normal g)

let permutation g n =
  let a = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a
