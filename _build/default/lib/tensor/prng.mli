(** A small, deterministic, splittable pseudo-random number generator
    (SplitMix64). Used for reproducible weight initialization and synthetic
    data generation: the same seed always produces the same tensors on every
    platform, which keeps tests and benchmark workloads deterministic. *)

type t

(** Create a generator from a seed. *)
val create : int -> t

(** [split g] derives an independent generator; [g] advances. *)
val split : t -> t

(** Next raw 64 bits (advances the state). *)
val next_int64 : t -> int64

(** Uniform in [\[0, bound)]. [bound] must be positive. *)
val int : t -> int -> int

(** Uniform float in [\[0, 1)]. *)
val float : t -> float

(** Uniform float in [\[lo, hi)]. *)
val uniform : t -> lo:float -> hi:float -> float

(** Standard normal via Box–Muller. *)
val normal : t -> float

(** Gaussian with the given moments. *)
val gaussian : t -> mean:float -> stddev:float -> float

(** Fisher–Yates shuffle of [0..n-1]. *)
val permutation : t -> int -> int array
