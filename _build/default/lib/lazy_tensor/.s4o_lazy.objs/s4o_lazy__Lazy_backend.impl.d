lib/lazy_tensor/lazy_backend.ml: Lazy_runtime S4o_ops Trace
