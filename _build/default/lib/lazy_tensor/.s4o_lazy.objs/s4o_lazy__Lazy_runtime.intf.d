lib/lazy_tensor/lazy_runtime.mli: S4o_device S4o_tensor Trace
