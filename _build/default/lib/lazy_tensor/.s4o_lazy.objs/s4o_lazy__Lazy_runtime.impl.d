lib/lazy_tensor/lazy_runtime.ml: Array Hashtbl List Option S4o_device S4o_xla Trace
