lib/lazy_tensor/trace.ml: Dense Hashtbl List S4o_ops S4o_tensor S4o_xla Shape
