lib/lazy_tensor/trace.mli: Dense S4o_ops S4o_tensor S4o_xla Shape
