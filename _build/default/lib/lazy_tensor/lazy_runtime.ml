type stats = {
  traces_cut : int;
  cache_hits : int;
  cache_misses : int;
  ops_traced : int;
  largest_trace : int;
}

type t = {
  engine : S4o_device.Engine.t;
  trace_overhead_per_op : float;
  cache_enabled : bool;
  auto_cut_threshold : int option;
  cache : (int, S4o_xla.Compiler.executable) Hashtbl.t;
  mutable traces_cut : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable ops_traced : int;
  mutable largest_trace : int;
  mutable ops_since_cut : int;
  mutable auto_cuts : int;
  mutable recent : Trace.node list;
      (* nodes recorded since the last cut, newest first: the frontier an
         automatic cut materializes *)
}

(* Host cost of recording one trace op, paid every iteration (§3.4). *)
let default_trace_overhead = 15e-6

let create ?(trace_overhead_per_op = default_trace_overhead)
    ?(cache_enabled = true) ?auto_cut_threshold engine =
  (match auto_cut_threshold with
  | Some n when n <= 0 ->
      invalid_arg "Lazy_runtime.create: auto_cut_threshold must be positive"
  | Some _ | None -> ());
  {
    engine;
    trace_overhead_per_op;
    cache_enabled;
    auto_cut_threshold;
    cache = Hashtbl.create 16;
    traces_cut = 0;
    cache_hits = 0;
    cache_misses = 0;
    ops_traced = 0;
    largest_trace = 0;
    ops_since_cut = 0;
    auto_cuts = 0;
    recent = [];
  }

let engine t = t.engine

let stats t =
  {
    traces_cut = t.traces_cut;
    cache_hits = t.cache_hits;
    cache_misses = t.cache_misses;
    ops_traced = t.ops_traced;
    largest_trace = t.largest_trace;
  }

let dedup_roots roots =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (r : Trace.node) ->
      if Hashtbl.mem seen r.Trace.id then false
      else begin
        Hashtbl.add seen r.Trace.id ();
        true
      end)
    roots

let materialize t roots =
  let roots =
    dedup_roots (List.filter (fun r -> Trace.is_pending r) roots)
  in
  t.ops_since_cut <- 0;
  t.recent <- [];
  if roots <> [] then begin
    let graph, leaves, pending = Trace.to_hlo roots in
    let n_ops = List.length pending in
    t.traces_cut <- t.traces_cut + 1;
    t.ops_traced <- t.ops_traced + n_ops;
    if n_ops > t.largest_trace then t.largest_trace <- n_ops;
    (* Re-tracing overhead: paid on every iteration even on cache hits. *)
    S4o_device.Engine.spend_host t.engine
      (t.trace_overhead_per_op *. float_of_int n_ops);
    let fp = S4o_xla.Hlo.fingerprint graph in
    let exe =
      match
        if t.cache_enabled then Hashtbl.find_opt t.cache fp else None
      with
      | Some exe ->
          t.cache_hits <- t.cache_hits + 1;
          exe
      | None ->
          t.cache_misses <- t.cache_misses + 1;
          let exe = S4o_xla.Compiler.compile ~engine:t.engine graph in
          if t.cache_enabled then Hashtbl.replace t.cache fp exe;
          exe
    in
    let feeds =
      List.map
        (fun (l : Trace.node) ->
          match l.Trace.state with
          | Trace.Materialized v -> Some v
          | Trace.Simulated -> None
          | Trace.Pending -> assert false)
        leaves
    in
    if List.for_all Option.is_some feeds then begin
      let outputs =
        S4o_xla.Compiler.run exe t.engine
          (Array.of_list (List.map Option.get feeds))
      in
      List.iteri
        (fun i (r : Trace.node) ->
          r.Trace.state <- Trace.Materialized outputs.(i))
        roots
    end
    else begin
      S4o_xla.Compiler.simulate exe t.engine;
      List.iter (fun (r : Trace.node) -> r.Trace.state <- Trace.Simulated) roots
    end
  end

let barrier = materialize

(* S3.4 future work, implemented: automatic trace cutting. Each recorded op
   bumps a counter; once the pending fragment is "sufficiently large", the
   runtime cuts and dispatches it on its own, relieving the user of barrier
   annotations entirely. *)
let note_recorded t node =
  match t.auto_cut_threshold with
  | None -> ()
  | Some threshold ->
      t.ops_since_cut <- t.ops_since_cut + 1;
      t.recent <- node :: t.recent;
      if t.ops_since_cut >= threshold then begin
        t.auto_cuts <- t.auto_cuts + 1;
        (* cut the whole recorded frontier, not just this node's ancestors:
           later nodes subsume earlier ones where they are connected, and
           disconnected chains get dispatched too, so no fragment is left to
           accumulate across steps *)
        materialize t t.recent
      end

let auto_cuts t = t.auto_cuts

let force t node =
  materialize t [ node ];
  S4o_device.Engine.sync t.engine;
  match node.Trace.state with
  | Trace.Materialized v -> v
  | Trace.Simulated ->
      invalid_arg "Lazy_runtime.force: node executed in timing-only mode"
  | Trace.Pending -> assert false
