lib/eager/eager_backend.ml: Backend_intf Dense Runtime S4o_ops S4o_tensor
