lib/eager/runtime.mli: S4o_device S4o_ops S4o_tensor
