lib/eager/runtime.ml: S4o_device S4o_ops
