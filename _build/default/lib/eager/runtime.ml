type t = {
  engine : S4o_device.Engine.t;
  dispatch_overhead : float;
  mutable ops : int;
}

(* Default per-op host overhead of the S4TF eager runtime, calibrated to the
   Table 3 regime (op-by-op dispatch through a dynamic runtime). *)
let default_dispatch_overhead = 120e-6

let create ?(dispatch_overhead = default_dispatch_overhead) engine =
  { engine; dispatch_overhead; ops = 0 }

let engine t = t.engine

let dispatch t (op : S4o_ops.Catalog.op) args =
  S4o_device.Engine.spend_host t.engine t.dispatch_overhead;
  ignore (S4o_device.Engine.dispatch t.engine op.info);
  t.ops <- t.ops + 1;
  op.kernel args

let sync t = S4o_device.Engine.sync t.engine
let ops_dispatched t = t.ops
let host_time t = S4o_device.Engine.host_time t.engine
