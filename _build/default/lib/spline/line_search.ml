type stats = {
  iterations : int;
  function_evals : int;
  gradient_evals : int;
  final_loss : float;
  converged : bool;
}

type config = {
  initial_step : float;
  shrink : float;
  armijo_c : float;
  grad_tolerance : float;
  max_iterations : int;
  max_backtracks : int;
}

let default_config =
  {
    initial_step = 1.0;
    shrink = 0.5;
    armijo_c = 1e-4;
    grad_tolerance = 1e-5;
    max_iterations = 500;
    max_backtracks = 40;
  }

let inf_norm a = Array.fold_left (fun m v -> Float.max m (Float.abs v)) 0.0 a

let minimize ?(config = default_config) ~f ~f_grad x0 =
  let x = Array.copy x0 in
  let fevals = ref 0 and gevals = ref 0 in
  let rec iterate iter =
    let fx, grad = f_grad x in
    incr gevals;
    incr fevals;
    if inf_norm grad <= config.grad_tolerance then (fx, iter, true)
    else if iter >= config.max_iterations then (fx, iter, false)
    else begin
      let slope =
        (* directional derivative along -grad: -|grad|^2 *)
        -.Array.fold_left (fun acc g -> acc +. (g *. g)) 0.0 grad
      in
      let candidate step = Array.mapi (fun i xi -> xi -. (step *. grad.(i))) x in
      let rec backtrack step tries =
        let trial = candidate step in
        let ft = f trial in
        incr fevals;
        if ft <= fx +. (config.armijo_c *. step *. slope) then Some trial
        else if tries >= config.max_backtracks then None
        else backtrack (step *. config.shrink) (tries + 1)
      in
      match backtrack config.initial_step 0 with
      | Some trial ->
          Array.blit trial 0 x 0 (Array.length x);
          iterate (iter + 1)
      | None -> (fx, iter, false)
    end
  in
  let final_loss, iterations, converged = iterate 0 in
  ( x,
    {
      iterations;
      function_evals = !fevals;
      gradient_evals = !gevals;
      final_loss;
      converged;
    } )
