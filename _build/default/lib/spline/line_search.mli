(** Backtracking line search (§5.1.3): "optimization algorithms such as
    backtracking line search use derivatives to determine the step
    direction." Gradient descent along the negative gradient, with the step
    size found by Armijo backtracking each iteration.

    The optimizer is fully instrumented — iterations, function evaluations,
    and gradient evaluations — because the mobile-runtime cost models of
    Table 4 charge per evaluation. *)

type stats = {
  iterations : int;
  function_evals : int;
  gradient_evals : int;
  final_loss : float;
  converged : bool;
}

type config = {
  initial_step : float;
  shrink : float;  (** Backtracking factor in (0, 1). *)
  armijo_c : float;  (** Sufficient-decrease constant in (0, 1). *)
  grad_tolerance : float;  (** Stop when the gradient's inf-norm falls below. *)
  max_iterations : int;
  max_backtracks : int;  (** Per-iteration cap on step shrinking. *)
}

val default_config : config

(** [minimize ?config ~f ~f_grad x0] minimizes in place-free style: returns
    the final point and stats. [f_grad] returns [(f x, grad f x)]. *)
val minimize :
  ?config:config ->
  f:(float array -> float) ->
  f_grad:(float array -> float * float array) ->
  float array ->
  float array * stats
