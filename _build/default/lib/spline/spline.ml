type t = { x_min : float; x_max : float; knots : float array }

let create ~x_min ~x_max ~n_knots ~init =
  if n_knots < 4 then invalid_arg "Spline.create: need at least 4 knots";
  if x_max <= x_min then invalid_arg "Spline.create: empty range";
  { x_min; x_max; knots = Array.make n_knots init }

let n_knots t = Array.length t.knots

(* Catmull-Rom segment weights for local parameter u in [0,1]: the cubic
   through p1..p2 with tangents from p0 and p3. *)
let catmull_rom_weights u =
  let u2 = u *. u in
  let u3 = u2 *. u in
  ( 0.5 *. (-.u3 +. (2.0 *. u2) -. u),
    0.5 *. ((3.0 *. u3) -. (5.0 *. u2) +. 2.0),
    0.5 *. ((-3.0 *. u3) +. (4.0 *. u2) +. u),
    0.5 *. (u3 -. u2) )

(* Locate the segment and local parameter for [x]; knot indices are clamped
   at the ends (repeated end knots). *)
let locate ~x_min ~x_max ~n x =
  let x = Float.min x_max (Float.max x_min x) in
  let spacing = (x_max -. x_min) /. float_of_int (n - 1) in
  let fi = (x -. x_min) /. spacing in
  let seg = min (n - 2) (int_of_float fi) in
  let u = fi -. float_of_int seg in
  let clamp i = max 0 (min (n - 1) i) in
  (clamp (seg - 1), seg, seg + 1, clamp (seg + 2), u)

let eval t x =
  let n = Array.length t.knots in
  let i0, i1, i2, i3, u = locate ~x_min:t.x_min ~x_max:t.x_max ~n x in
  let w0, w1, w2, w3 = catmull_rom_weights u in
  (w0 *. t.knots.(i0)) +. (w1 *. t.knots.(i1)) +. (w2 *. t.knots.(i2))
  +. (w3 *. t.knots.(i3))

let eval_rev ~knots ~x_min ~x_max x =
  let module R = S4o_core.Reverse in
  let n = Array.length knots in
  let i0, i1, i2, i3, u = locate ~x_min ~x_max ~n x in
  let w0, w1, w2, w3 = catmull_rom_weights u in
  R.add
    (R.add (R.scale w0 knots.(i0)) (R.scale w1 knots.(i1)))
    (R.add (R.scale w2 knots.(i2)) (R.scale w3 knots.(i3)))

let loss t data =
  let acc = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      let d = eval t x -. y in
      acc := !acc +. (d *. d))
    data;
  !acc /. float_of_int (Array.length data)

let loss_rev ~x_min ~x_max data knots =
  let module R = S4o_core.Reverse in
  let n = float_of_int (Array.length data) in
  let acc =
    Array.fold_left
      (fun acc (x, y) ->
        let d = R.add_const (-.y) (eval_rev ~knots ~x_min ~x_max x) in
        R.add acc (R.mul d d))
      (R.const 0.0) data
  in
  R.scale (1.0 /. n) acc

let loss_grad t data =
  let module R = S4o_core.Reverse in
  R.grad (fun knots -> loss_rev ~x_min:t.x_min ~x_max:t.x_max data knots) t.knots

let tape_ops_per_eval t data =
  let module R = S4o_core.Reverse in
  let _ = loss_grad t data in
  ignore (loss t data);
  R.last_tape_length ()

(* A mildly wiggly ground truth: smooth enough for a spline, non-trivial
   enough that convergence takes real work. *)
let global_curve x = Float.sin (2.0 *. x) +. (0.5 *. x) +. (0.3 *. Float.cos (5.0 *. x))

let sample_at rng shift ~n ~noise =
  Array.init n (fun _ ->
      let x = S4o_tensor.Prng.uniform rng ~lo:0.0 ~hi:3.0 in
      let y = global_curve x +. shift +. S4o_tensor.Prng.gaussian rng ~mean:0.0 ~stddev:noise in
      (x, y))

let sample_global rng ~n ~noise = sample_at rng 0.0 ~n ~noise

let sample_user rng ~user_shift ~n ~noise = sample_at rng user_shift ~n ~noise
