lib/spline/line_search.mli:
