lib/spline/line_search.ml: Array Float
