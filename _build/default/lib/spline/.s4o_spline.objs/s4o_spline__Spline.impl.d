lib/spline/spline.ml: Array Float S4o_core S4o_tensor
