lib/spline/spline.mli: S4o_core S4o_tensor
