(** The personalization spline model of §5.1.3: a one-dimensional polynomial
    spline whose knot values are learned by iterated optimization. "Splines
    require orders of magnitude less computation [than deep models] and are
    thus attractive in resource constrained environments such as mobile
    phones."

    The curve is a Catmull-Rom (local cubic) interpolant through [k] control
    points at fixed, evenly spaced x-positions; the learnable parameters are
    the control-point y-values. Evaluation is differentiable; gradients come
    from the platform's scalar reverse-mode AD ([S4o_core.Reverse]),
    demonstrating that "Swift's AD capabilities are not tied to any
    underlying accelerator interface". *)

type t = {
  x_min : float;
  x_max : float;
  knots : float array;  (** learnable control-point values *)
}

(** [create ~x_min ~x_max ~n_knots ~init]. *)
val create : x_min:float -> x_max:float -> n_knots:int -> init:float -> t

val n_knots : t -> int

(** Evaluate the spline at [x] (clamped to the knot range). *)
val eval : t -> float -> float

(** Evaluation with the knots as reverse-mode AD variables — the same
    arithmetic as {!eval}, so primal values agree exactly. *)
val eval_rev : knots:S4o_core.Reverse.t array -> x_min:float -> x_max:float -> float -> S4o_core.Reverse.t

(** Mean-squared error of the spline on a dataset. *)
val loss : t -> (float * float) array -> float

(** [loss_grad t data]: (loss, d loss / d knots) via one reverse sweep. *)
val loss_grad : t -> (float * float) array -> float * float array

(** Scalar operations recorded on the AD tape by one loss+gradient
    evaluation — the op count the mobile-runtime cost models consume. *)
val tape_ops_per_eval : t -> (float * float) array -> int

(** {1 Synthetic personalization data}

    A "global" ground-truth curve shared by the population, plus a per-user
    offset — the fine-tuning setup of Table 4 (train globally on aggregated
    data, personalize on-device). *)

val global_curve : float -> float

val sample_global :
  S4o_tensor.Prng.t -> n:int -> noise:float -> (float * float) array

(** [sample_user rng ~user_shift ~n ~noise]: the user's local data, offset
    from the global curve. *)
val sample_user :
  S4o_tensor.Prng.t -> user_shift:float -> n:int -> noise:float -> (float * float) array
