lib/mobile/mobile_runtime.ml: S4o_spline
