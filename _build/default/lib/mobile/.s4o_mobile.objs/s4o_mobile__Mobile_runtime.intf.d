lib/mobile/mobile_runtime.mli: S4o_spline S4o_tensor
