(** On-device training runtimes (Table 4): four implementation styles of the
    same spline fine-tuning algorithm, differing in how the computation
    reaches the phone's CPU.

    - {b Tf_mobile}: the full TensorFlow runtime interpreting a graph
      op-by-op — large interpreter, per-node dynamic dispatch, unvectorized
      reference kernels.
    - {b Tf_lite}: a slim interpreter over pre-compiled vector kernels —
      small per-op dispatch, but each op round-trips its operands through
      memory (no fusion).
    - {b Tf_lite_fused}: the entire training step hand-fused into one custom
      kernel — pure compute at the hardware's best sustained rate.
    - {b S4o_aot}: the model code AOT-compiled directly (the S4TF story) —
      no interpreter at all, but scalar code without NEON vectorization, as
      the paper notes the Swift compiler produced at the time.

    The fine-tuning itself runs for real ({!run_fine_tuning} drives the
    actual spline + line-search code and verifies convergence); the four
    styles then convert the measured workload (evaluations, op counts,
    flops) into simulated time, peak memory, and binary size through each
    style's mechanical cost story. *)

type style = Tf_mobile | Tf_lite | Tf_lite_fused | S4o_aot

val style_name : style -> string
val all_styles : style list

(** What one fine-tuning run actually did — measured, not modeled. *)
type workload = {
  iterations : int;
  function_evals : int;
  gradient_evals : int;
  flops_per_function_eval : int;
  flops_per_gradient_eval : int;
  graph_ops_per_function_eval : int;
      (** Vector-granularity graph nodes an interpreter executes per loss
          evaluation. *)
  graph_ops_per_gradient_eval : int;
  model_params : int;
  data_points : int;
}

type report = {
  style : style;
  train_ms : float;
  memory_mb : float;  (** Peak training memory above the app baseline. *)
  binary_mb : float;  (** Uncompressed runtime + model code footprint. *)
}

val simulate : style -> workload -> report

(** [run_fine_tuning ?n_knots ?n_data ?noise ~user_shift rng] trains the
    global spline, fine-tunes it on user-local data for real, and returns
    the measured workload plus the personalized spline and optimizer stats. *)
val run_fine_tuning :
  ?n_knots:int ->
  ?n_data:int ->
  ?noise:float ->
  user_shift:float ->
  S4o_tensor.Prng.t ->
  workload * S4o_spline.Spline.t * S4o_spline.Line_search.stats
