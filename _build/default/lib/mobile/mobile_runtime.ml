type style = Tf_mobile | Tf_lite | Tf_lite_fused | S4o_aot

let style_name = function
  | Tf_mobile -> "TF Mobile (interpreted graph)"
  | Tf_lite -> "TF Lite (standard ops)"
  | Tf_lite_fused -> "TF Lite (fused custom op)"
  | S4o_aot -> "S4O (AOT compiled)"

let all_styles = [ Tf_mobile; Tf_lite; Tf_lite_fused; S4o_aot ]

type workload = {
  iterations : int;
  function_evals : int;
  gradient_evals : int;
  flops_per_function_eval : int;
  flops_per_gradient_eval : int;
  graph_ops_per_function_eval : int;
  graph_ops_per_gradient_eval : int;
  model_params : int;
  data_points : int;
}

type report = {
  style : style;
  train_ms : float;
  memory_mb : float;
  binary_mb : float;
}

(* Per-style mechanical constants. Rates are sustained scalar/vector rates on
   a Pixel-3-class core; dispatch costs are per interpreted graph node. The
   shapes these produce — interpreter >> unfused kernels > AOT scalar code >
   fused kernel, and S4TF smallest in memory — are the Table 4 claims. *)

(* TF Mobile: a full graph interpreter with reference kernels. *)
let tf_mobile_dispatch = 100e-6 (* s per graph node: session + dynamic dispatch *)
let tf_mobile_flops = 0.25e9 (* unvectorized reference kernels *)
let tf_mobile_runtime_mb = 79.5
let tf_mobile_binary_mb = 6.2

(* TF Lite: slim interpreter, vectorized kernels, but every op writes its
   result back to memory (no fusion). *)
let tf_lite_dispatch = 1.2e-6
let tf_lite_flops = 0.74e9 (* vector kernels, memory-bound between ops *)
let tf_lite_runtime_mb = 12.0
let tf_lite_binary_mb = 1.8

(* TF Lite with the training step fused into one custom kernel: best
   sustained rate, one dispatch per evaluation. *)
let tf_lite_fused_dispatch = 1.2e-6
let tf_lite_fused_flops = 2.6e9
let tf_lite_fused_runtime_mb = 6.0
let tf_lite_fused_binary_mb = 1.8

(* S4O AOT: no interpreter (dispatch = a function call), but scalar code —
   the compiler "was unable to generate appropriate NEON vector
   instructions" (§5.1.3). *)
let s4o_call_overhead = 0.05e-6
let s4o_flops = 1.25e9
let s4o_runtime_mb = 4.0 (* language runtime + allocator only *)
let s4o_binary_mb = 3.6 (* app code + language runtime, no interpreter *)

let bytes_mb b = float_of_int b /. (1024.0 *. 1024.0)

let simulate style w =
  let total_flops =
    (w.function_evals * w.flops_per_function_eval)
    + (w.gradient_evals * w.flops_per_gradient_eval)
  in
  let total_graph_ops =
    (w.function_evals * w.graph_ops_per_function_eval)
    + (w.gradient_evals * w.graph_ops_per_gradient_eval)
  in
  let total_evals = w.function_evals + w.gradient_evals in
  let data_bytes = 8 * ((w.model_params * 4) + (w.data_points * 2)) in
  let seconds, working_mb, binary_mb =
    match style with
    | Tf_mobile ->
        ( (float_of_int total_graph_ops *. tf_mobile_dispatch)
          +. (float_of_int total_flops /. tf_mobile_flops),
          tf_mobile_runtime_mb,
          tf_mobile_binary_mb )
    | Tf_lite ->
        ( (float_of_int total_graph_ops *. tf_lite_dispatch)
          +. (float_of_int total_flops /. tf_lite_flops),
          tf_lite_runtime_mb,
          tf_lite_binary_mb )
    | Tf_lite_fused ->
        (* one fused kernel per evaluation *)
        ( (float_of_int total_evals *. tf_lite_fused_dispatch)
          +. (float_of_int total_flops /. tf_lite_fused_flops),
          tf_lite_fused_runtime_mb,
          tf_lite_fused_binary_mb )
    | S4o_aot ->
        ( (float_of_int total_evals *. s4o_call_overhead)
          +. (float_of_int total_flops /. s4o_flops),
          s4o_runtime_mb,
          s4o_binary_mb )
  in
  {
    style;
    train_ms = seconds *. 1000.0;
    memory_mb = working_mb +. bytes_mb data_bytes;
    binary_mb;
  }

let run_fine_tuning ?(n_knots = 96) ?(n_data = 4000) ?(noise = 0.05)
    ~user_shift rng =
  let module Sp = S4o_spline.Spline in
  let module Ls = S4o_spline.Line_search in
  (* Stage 1: the "global" model trained on aggregated data (server-side in
     the paper; here it just seeds the on-device stage). *)
  let global_data = Sp.sample_global rng ~n:n_data ~noise in
  let base = Sp.create ~x_min:0.0 ~x_max:3.0 ~n_knots ~init:0.0 in
  let fit data start =
    Ls.minimize
      ~config:{ Ls.default_config with max_iterations = 1500; grad_tolerance = 2e-5 }
      ~f:(fun knots -> Sp.loss { base with Sp.knots } data)
      ~f_grad:(fun knots -> Sp.loss_grad { base with Sp.knots } data)
      start
  in
  let global_knots, _ = fit global_data base.Sp.knots in
  (* Stage 2: fine-tune on the user's local data — the on-device workload
     Table 4 measures. *)
  let user_data = Sp.sample_user rng ~user_shift ~n:n_data ~noise in
  let user_knots, stats = fit user_data global_knots in
  let personalized = { base with Sp.knots = user_knots } in
  (* Measure the workload: scalar flops per evaluation from the tape length
     (forward ~1 flop per tape entry; the reverse sweep ~2 more), graph ops
     from the vector-granularity structure of the computation. *)
  let tape_len = Sp.tape_ops_per_eval personalized user_data in
  let flops_fwd = tape_len in
  let flops_grad = 3 * tape_len in
  (* An interpreter executes the loss as a graph over length-[n_data]
     vectors: gather 4 knot vectors, 4 scales, 3 adds, sub, square, mean ~ 14
     nodes, about double for the backward graph. *)
  let graph_ops_fwd = 14 in
  let graph_ops_grad = 42 in
  let workload =
    {
      iterations = stats.Ls.iterations;
      function_evals = stats.Ls.function_evals;
      gradient_evals = stats.Ls.gradient_evals;
      flops_per_function_eval = flops_fwd;
      flops_per_gradient_eval = flops_grad;
      graph_ops_per_function_eval = graph_ops_fwd;
      graph_ops_per_gradient_eval = graph_ops_grad;
      model_params = n_knots;
      data_points = n_data;
    }
  in
  (workload, personalized, stats)
