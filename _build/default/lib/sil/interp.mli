(** A reference interpreter for MSIL. Runs functions against a module
    (name → function environment), with a fuel bound so mis-built loops fail
    deterministically instead of hanging tests. *)

type modul

exception Runtime_error of string

val create_module : unit -> modul

(** [add m f] registers [f] under [f.name]; replaces any previous binding. *)
val add : modul -> Ir.func -> unit

val find : modul -> string -> Ir.func option

val functions : modul -> Ir.func list

(** [eval m f args] executes [f]. [fuel] bounds the number of executed
    instructions (default 1_000_000). Raises {!Runtime_error} on arity
    mismatch, unknown callee, or fuel exhaustion. *)
val eval : ?fuel:int -> modul -> Ir.func -> float array -> float

val eval_name : ?fuel:int -> modul -> string -> float array -> float

(** Instructions executed by the most recent [eval] (including callees) —
    used by tests asserting the efficient-gradient property of the
    synthesized derivative code. *)
val last_inst_count : unit -> int

(** {1 Scalar semantics of individual operations}

    Shared with the AD transform so the derivative code agrees exactly with
    the interpreter's primal semantics. *)

val apply_unary : Ir.unary_op -> float -> float
val apply_binary : Ir.binary_op -> float -> float -> float
val apply_cmp : Ir.cmp_op -> float -> float -> float
