type modul = (string, Ir.func) Hashtbl.t

exception Runtime_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Runtime_error s)) fmt

let create_module () : modul = Hashtbl.create 16

let add m (f : Ir.func) = Hashtbl.replace m f.name f

let find m name = Hashtbl.find_opt m name

let functions m = Hashtbl.fold (fun _ f acc -> f :: acc) m []

let inst_counter = ref 0
let last_inst_count () = !inst_counter

let apply_unary op x =
  match (op : Ir.unary_op) with
  | Neg -> -.x
  | Sin -> Float.sin x
  | Cos -> Float.cos x
  | Exp -> Float.exp x
  | Log -> Float.log x
  | Sqrt -> Float.sqrt x
  | Relu -> if x > 0.0 then x else 0.0
  | Sigmoid -> 1.0 /. (1.0 +. Float.exp (-.x))
  | Tanh -> Float.tanh x
  | Floor -> Float.of_int (int_of_float (Float.floor x))

let apply_binary op x y =
  match (op : Ir.binary_op) with
  | Add -> x +. y
  | Sub -> x -. y
  | Mul -> x *. y
  | Div -> x /. y
  | Max -> Float.max x y
  | Min -> Float.min x y

let apply_cmp op x y =
  let b =
    match (op : Ir.cmp_op) with
    | Lt -> x < y
    | Le -> x <= y
    | Gt -> x > y
    | Ge -> x >= y
    | Eq -> x = y
  in
  if b then 1.0 else 0.0

let rec eval_func m fuel (f : Ir.func) (args : float array) : float =
  if Array.length args <> f.n_args then
    fail "%s: got %d args, expected %d" f.name (Array.length args) f.n_args;
  let rec run_block bi (incoming : float array) =
    let b = f.blocks.(bi) in
    let env = Array.make (Ir.block_values b) 0.0 in
    Array.blit incoming 0 env 0 b.params;
    Array.iteri
      (fun ii inst ->
        if !fuel <= 0 then fail "%s: out of fuel" f.name;
        decr fuel;
        incr inst_counter;
        let v =
          match (inst : Ir.inst) with
          | Const c -> c
          | Unary (op, a) -> apply_unary op env.(a)
          | Binary (op, a, b2) -> apply_binary op env.(a) env.(b2)
          | Cmp (op, a, b2) -> apply_cmp op env.(a) env.(b2)
          | Select (c, a, b2) -> if env.(c) <> 0.0 then env.(a) else env.(b2)
          | Call (name, cargs) -> begin
              match find m name with
              | None -> fail "%s: call to unknown function @%s" f.name name
              | Some callee ->
                  eval_func m fuel callee (Array.map (fun a -> env.(a)) cargs)
            end
        in
        env.(b.params + ii) <- v)
      b.insts;
    match b.term with
    | Ret v -> env.(v)
    | Br (t, targs) -> run_block t (Array.map (fun a -> env.(a)) targs)
    | Cond_br (c, bt, at, bf, af) ->
        if env.(c) <> 0.0 then run_block bt (Array.map (fun a -> env.(a)) at)
        else run_block bf (Array.map (fun a -> env.(a)) af)
  in
  run_block 0 args

let eval ?(fuel = 1_000_000) m f args =
  inst_counter := 0;
  eval_func m (ref fuel) f args

let eval_name ?fuel m name args =
  match find m name with
  | None -> fail "unknown function @%s" name
  | Some f -> eval ?fuel m f args
