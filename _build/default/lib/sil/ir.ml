(** MSIL — a miniature stand-in for the Swift Intermediate Language.

    §2.2: "The differentiation code transformation operates on the Swift
    Intermediate Language (SIL), an intermediate representation in static
    single assignment form." MSIL keeps the properties the AD transform
    relies on:

    - SSA with {e basic-block arguments} (as in SIL): each block declares
      parameters; branches pass values explicitly, so every block only
      references its own parameters and its own instruction results.
    - Structured terminators (unconditional branch, conditional branch,
      return), so control flow is an explicit CFG.
    - Calls to other MSIL functions by name, so the transform can recurse
      into callees and stop at registered custom derivatives.

    Scalars are the only value type (the AD system is generic over types at
    the [S4o_core] level; MSIL demonstrates the {e code transformation}, for
    which scalars suffice and keep the IR small).

    Value numbering inside a block: values [0 .. params-1] are the block
    parameters; value [params + i] is the result of instruction [i]. *)

type unary_op =
  | Neg
  | Sin
  | Cos
  | Exp
  | Log
  | Sqrt
  | Relu
  | Sigmoid
  | Tanh
  | Floor  (** Non-differentiable (zero derivative a.e.). *)

type binary_op = Add | Sub | Mul | Div | Max | Min

type cmp_op = Lt | Le | Gt | Ge | Eq

type inst =
  | Const of float
  | Unary of unary_op * int
  | Binary of binary_op * int * int
  | Cmp of cmp_op * int * int
      (** Produces 1.0 or 0.0; non-differentiable by construction. *)
  | Select of int * int * int
      (** [Select (c, a, b)]: [a] if [c <> 0.0] else [b]. Differentiable in
          [a] and [b], not in [c]. *)
  | Call of string * int array  (** Call another MSIL function. *)

type terminator =
  | Br of int * int array  (** Target block, arguments for its parameters. *)
  | Cond_br of int * int * int array * int * int array
      (** [Cond_br (c, bt, args_t, bf, args_f)]: branch on [c <> 0.0]. *)
  | Ret of int

type block = { params : int; insts : inst array; term : terminator }

type func = { name : string; n_args : int; blocks : block array }
(** Block 0 is the entry; its parameter count must equal [n_args]. *)

exception Invalid_ir of string

let fail fmt = Format.kasprintf (fun s -> raise (Invalid_ir s)) fmt

(** Number of SSA values defined in a block. *)
let block_values b = b.params + Array.length b.insts

let inst_operands = function
  | Const _ -> []
  | Unary (_, a) -> [ a ]
  | Binary (_, a, b) | Cmp (_, a, b) -> [ a; b ]
  | Select (c, a, b) -> [ c; a; b ]
  | Call (_, args) -> Array.to_list args

let validate (f : func) =
  if Array.length f.blocks = 0 then fail "%s: no blocks" f.name;
  if f.blocks.(0).params <> f.n_args then
    fail "%s: entry block has %d params for %d args" f.name f.blocks.(0).params
      f.n_args;
  Array.iteri
    (fun bi b ->
      Array.iteri
        (fun ii inst ->
          let defined = b.params + ii in
          List.iter
            (fun v ->
              if v < 0 || v >= defined then
                fail "%s bb%d inst %d: operand v%d not yet defined" f.name bi ii v)
            (inst_operands inst))
        b.insts;
      let total = block_values b in
      let check_target target args =
        if target < 0 || target >= Array.length f.blocks then
          fail "%s bb%d: branch to missing bb%d" f.name bi target;
        if Array.length args <> f.blocks.(target).params then
          fail "%s bb%d: %d args for bb%d which takes %d" f.name bi
            (Array.length args) target f.blocks.(target).params;
        Array.iter
          (fun v ->
            if v < 0 || v >= total then
              fail "%s bb%d: branch arg v%d undefined" f.name bi v)
          args
      in
      match b.term with
      | Br (t, args) -> check_target t args
      | Cond_br (c, bt, at, bf, af) ->
          if c < 0 || c >= total then fail "%s bb%d: cond v%d undefined" f.name bi c;
          check_target bt at;
          check_target bf af
      | Ret v ->
          if v < 0 || v >= total then fail "%s bb%d: ret v%d undefined" f.name bi v)
    f.blocks

(** {1 Printing} *)

let unary_name = function
  | Neg -> "neg"
  | Sin -> "sin"
  | Cos -> "cos"
  | Exp -> "exp"
  | Log -> "log"
  | Sqrt -> "sqrt"
  | Relu -> "relu"
  | Sigmoid -> "sigmoid"
  | Tanh -> "tanh"
  | Floor -> "floor"

let binary_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Max -> "max"
  | Min -> "min"

let cmp_name = function
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | Eq -> "eq"

let pp_args ppf args =
  Format.pp_print_string ppf
    (String.concat ", " (Array.to_list (Array.map (Format.sprintf "v%d") args)))

let pp_inst ppf (result, inst) =
  let p fmt = Format.fprintf ppf fmt in
  match inst with
  | Const c -> p "v%d = const %g" result c
  | Unary (op, a) -> p "v%d = %s v%d" result (unary_name op) a
  | Binary (op, a, b) -> p "v%d = %s v%d, v%d" result (binary_name op) a b
  | Cmp (op, a, b) -> p "v%d = cmp_%s v%d, v%d" result (cmp_name op) a b
  | Select (c, a, b) -> p "v%d = select v%d, v%d, v%d" result c a b
  | Call (name, args) -> p "v%d = call @%s(%a)" result name pp_args args

let pp_terminator ppf = function
  | Br (t, args) -> Format.fprintf ppf "br bb%d(%a)" t pp_args args
  | Cond_br (c, bt, at, bf, af) ->
      Format.fprintf ppf "cond_br v%d, bb%d(%a), bb%d(%a)" c bt pp_args at bf
        pp_args af
  | Ret v -> Format.fprintf ppf "ret v%d" v

let pp_func ppf f =
  Format.fprintf ppf "func @%s(%d args) {@." f.name f.n_args;
  Array.iteri
    (fun bi b ->
      let params =
        String.concat ", " (List.init b.params (Format.sprintf "v%d"))
      in
      Format.fprintf ppf "bb%d(%s):@." bi params;
      Array.iteri
        (fun ii inst -> Format.fprintf ppf "  %a@." pp_inst (b.params + ii, inst))
        b.insts;
      Format.fprintf ppf "  %a@." pp_terminator b.term)
    f.blocks;
  Format.fprintf ppf "}"

let to_string f = Format.asprintf "%a" pp_func f
