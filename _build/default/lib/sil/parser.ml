exception Parse_error of string

let fail line fmt =
  Format.kasprintf (fun s -> raise (Parse_error (Format.sprintf "line %d: %s" line s))) fmt

let unary_ops : (string * Ir.unary_op) list =
  [
    ("neg", Ir.Neg);
    ("sin", Ir.Sin);
    ("cos", Ir.Cos);
    ("exp", Ir.Exp);
    ("log", Ir.Log);
    ("sqrt", Ir.Sqrt);
    ("relu", Ir.Relu);
    ("sigmoid", Ir.Sigmoid);
    ("tanh", Ir.Tanh);
    ("floor", Ir.Floor);
  ]

let binary_ops : (string * Ir.binary_op) list =
  [
    ("add", Ir.Add);
    ("sub", Ir.Sub);
    ("mul", Ir.Mul);
    ("div", Ir.Div);
    ("max", Ir.Max);
    ("min", Ir.Min);
  ]

let cmp_ops : (string * Ir.cmp_op) list =
  [ ("lt", Ir.Lt); ("le", Ir.Le); ("gt", Ir.Gt); ("ge", Ir.Ge); ("eq", Ir.Eq) ]

(* --- tiny lexing helpers ------------------------------------------------ *)

let strip s = String.trim s

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* split "a, b, c" into trimmed pieces; "" -> [] *)
let split_commas s =
  let s = strip s in
  if s = "" then []
  else List.map strip (String.split_on_char ',' s)

let parse_value line s =
  let s = strip s in
  if String.length s < 2 || s.[0] <> 'v' then fail line "expected a value, got %S" s;
  match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
  | Some v -> v
  | None -> fail line "bad value name %S" s

let parse_values line s = List.map (parse_value line) (split_commas s)

(* "bb3(v1, v2)" -> (3, [|1; 2|]) *)
let parse_target line s =
  let s = strip s in
  match String.index_opt s '(' with
  | None -> fail line "expected branch target like bb1(...), got %S" s
  | Some lp ->
      if not (starts_with "bb" s) || s.[String.length s - 1] <> ')' then
        fail line "malformed branch target %S" s;
      let block =
        match int_of_string_opt (String.sub s 2 (lp - 2)) with
        | Some b -> b
        | None -> fail line "bad block id in %S" s
      in
      let args = String.sub s (lp + 1) (String.length s - lp - 2) in
      (block, Array.of_list (parse_values line args))

(* split a cond_br operand list at top-level commas (commas inside
   parentheses belong to branch-target argument lists) *)
let split_toplevel_commas s =
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '(' ->
          incr depth;
          Buffer.add_char buf c
      | ')' ->
          decr depth;
          Buffer.add_char buf c
      | ',' when !depth = 0 ->
          parts := Buffer.contents buf :: !parts;
          Buffer.clear buf
      | c -> Buffer.add_char buf c)
    s;
  parts := Buffer.contents buf :: !parts;
  List.rev_map strip !parts

(* --- statement parsing --------------------------------------------------- *)

type stmt =
  | Inst of int * Ir.inst  (* declared result id, instruction *)
  | Term of Ir.terminator

let parse_rhs line rhs =
  let rhs = strip rhs in
  match String.index_opt rhs ' ' with
  | None -> fail line "malformed instruction %S" rhs
  | Some sp -> begin
      let op = String.sub rhs 0 sp in
      let rest = strip (String.sub rhs sp (String.length rhs - sp)) in
      match op with
      | "const" -> begin
          match float_of_string_opt rest with
          | Some c -> Ir.Const c
          | None -> fail line "bad constant %S" rest
        end
      | "select" -> begin
          match parse_values line rest with
          | [ c; a; b ] -> Ir.Select (c, a, b)
          | _ -> fail line "select takes three operands"
        end
      | "call" -> begin
          match String.index_opt rest '(' with
          | Some lp
            when starts_with "@" rest && rest.[String.length rest - 1] = ')' ->
              let name = String.sub rest 1 (lp - 1) in
              let args = String.sub rest (lp + 1) (String.length rest - lp - 2) in
              Ir.Call (name, Array.of_list (parse_values line args))
          | _ -> fail line "malformed call %S" rest
        end
      | _ when starts_with "cmp_" op -> begin
          let cmp_name = String.sub op 4 (String.length op - 4) in
          match List.assoc_opt cmp_name cmp_ops with
          | None -> fail line "unknown comparison %S" op
          | Some c -> begin
              match parse_values line rest with
              | [ a; b ] -> Ir.Cmp (c, a, b)
              | _ -> fail line "comparison takes two operands"
            end
        end
      | _ -> begin
          match (List.assoc_opt op unary_ops, List.assoc_opt op binary_ops) with
          | Some u, _ -> begin
              match parse_values line rest with
              | [ a ] -> Ir.Unary (u, a)
              | _ -> fail line "%s takes one operand" op
            end
          | None, Some b -> begin
              match parse_values line rest with
              | [ x; y ] -> Ir.Binary (b, x, y)
              | _ -> fail line "%s takes two operands" op
            end
          | None, None -> fail line "unknown operation %S" op
        end
    end

let parse_stmt line s =
  if starts_with "ret " s then Term (Ir.Ret (parse_value line (String.sub s 4 (String.length s - 4))))
  else if starts_with "br " s then begin
    let t, args = parse_target line (String.sub s 3 (String.length s - 3)) in
    Term (Ir.Br (t, args))
  end
  else if starts_with "cond_br " s then begin
    let rest = String.sub s 8 (String.length s - 8) in
    match split_toplevel_commas rest with
    | [ c; tt; tf ] ->
        let bt, at = parse_target line tt and bf, af = parse_target line tf in
        Term (Ir.Cond_br (parse_value line c, bt, at, bf, af))
    | _ -> fail line "cond_br takes a condition and two targets"
  end
  else begin
    match String.index_opt s '=' with
    | None -> fail line "expected an instruction or terminator, got %S" s
    | Some eq ->
        let lhs = parse_value line (String.sub s 0 eq) in
        let rhs = String.sub s (eq + 1) (String.length s - eq - 1) in
        Inst (lhs, parse_rhs line rhs)
  end

(* --- function parsing ---------------------------------------------------- *)

type accum = {
  mutable params : int;
  mutable insts : Ir.inst list;  (* reversed *)
  mutable term : Ir.terminator option;
}

let parse_func_lines lines start =
  (* lines.(start) is the "func @name(N args) {" header *)
  let header_line, header = lines.(start) in
  let name, n_args =
    try
      Scanf.sscanf header "func @%s@(%d args) {" (fun n a -> (n, a))
    with Scanf.Scan_failure _ | Failure _ | End_of_file ->
      fail header_line "malformed function header %S" header
  in
  let blocks : (int, accum) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  let current = ref None in
  let i = ref (start + 1) in
  let finished = ref false in
  while (not !finished) && !i < Array.length lines do
    let line_no, line = lines.(!i) in
    incr i;
    if line = "}" then finished := true
    else if starts_with "bb" line && String.length line > 0 && line.[String.length line - 1] = ':' then begin
      let body = String.sub line 0 (String.length line - 1) in
      match String.index_opt body '(' with
      | None -> fail line_no "malformed block header %S" line
      | Some lp ->
          let id =
            match int_of_string_opt (String.sub body 2 (lp - 2)) with
            | Some b -> b
            | None -> fail line_no "bad block id %S" line
          in
          let params_str = String.sub body (lp + 1) (String.length body - lp - 2) in
          let params = parse_values line_no params_str in
          List.iteri
            (fun k v ->
              if v <> k then fail line_no "block parameters must be v0..vN in order")
            params;
          let acc = { params = List.length params; insts = []; term = None } in
          Hashtbl.replace blocks id acc;
          order := id :: !order;
          current := Some acc
    end
    else begin
      let acc =
        match !current with
        | Some a -> a
        | None -> fail line_no "statement outside any block"
      in
      match parse_stmt line_no line with
      | Term t ->
          if acc.term <> None then fail line_no "block already terminated";
          acc.term <- Some t
      | Inst (lhs, inst) ->
          if acc.term <> None then fail line_no "instruction after terminator";
          let expected = acc.params + List.length acc.insts in
          if lhs <> expected then
            fail line_no "expected result v%d, got v%d (values must be dense)"
              expected lhs;
          acc.insts <- inst :: acc.insts
    end
  done;
  if not !finished then fail (fst lines.(start)) "missing closing '}'";
  let ids = List.rev !order in
  List.iteri
    (fun k id ->
      if id <> k then
        fail (fst lines.(start)) "blocks must be bb0..bbN in order (saw bb%d at position %d)" id k)
    ids;
  let block_array =
    Array.of_list
      (List.map
         (fun id ->
           let acc = Hashtbl.find blocks id in
           match acc.term with
           | None -> fail (fst lines.(start)) "bb%d has no terminator" id
           | Some term ->
               { Ir.params = acc.params; insts = Array.of_list (List.rev acc.insts); term })
         ids)
  in
  let f = { Ir.name; n_args; blocks = block_array } in
  Ir.validate f;
  (f, !i)

let relevant_lines text =
  String.split_on_char '\n' text
  |> List.mapi (fun i l -> (i + 1, strip l))
  |> List.filter (fun (_, l) -> l <> "" && not (starts_with ";" l))
  |> Array.of_list

let parse_func text =
  let lines = relevant_lines text in
  if Array.length lines = 0 then raise (Parse_error "empty input");
  let f, consumed = parse_func_lines lines 0 in
  if consumed <> Array.length lines then
    fail (fst lines.(consumed)) "trailing content after function";
  f

let parse_module text =
  let lines = relevant_lines text in
  let m = Interp.create_module () in
  let i = ref 0 in
  while !i < Array.length lines do
    let f, next = parse_func_lines lines !i in
    Interp.add m f;
    i := next
  done;
  m
