(** Imperative construction of {!Ir.func} values with a block cursor, in the
    style of LLVM/SIL IRBuilders. All emission happens into the {e current}
    block; [finish] freezes and validates the function. *)

type t

(** [create ~name ~n_args] starts a function whose entry block (bb0) has
    [n_args] parameters; the cursor points at the entry block. *)
val create : name:string -> n_args:int -> t

(** [new_block b ~params] appends an empty block and returns its id (the
    cursor does not move). *)
val new_block : t -> params:int -> int

(** Point the cursor at an existing block. *)
val switch : t -> int -> unit

(** Value id of the [i]-th parameter of the current block. *)
val param : t -> int -> int

(** {1 Instruction emission (returns the result's value id)} *)

val const : t -> float -> int
val unary : t -> Ir.unary_op -> int -> int
val binary : t -> Ir.binary_op -> int -> int -> int
val cmp : t -> Ir.cmp_op -> int -> int -> int
val select : t -> cond:int -> if_true:int -> if_false:int -> int
val call : t -> string -> int array -> int

(** {1 Terminators (one per block)} *)

val br : t -> int -> int array -> unit
val cond_br : t -> cond:int -> if_true:int * int array -> if_false:int * int array -> unit
val ret : t -> int -> unit

(** Validates and returns the finished function. Raises {!Ir.Invalid_ir} if a
    block lacks a terminator or validation fails. *)
val finish : t -> Ir.func
