lib/sil/ir.ml: Array Format List String
