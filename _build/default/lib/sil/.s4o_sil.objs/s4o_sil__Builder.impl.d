lib/sil/builder.ml: Array Ir List
