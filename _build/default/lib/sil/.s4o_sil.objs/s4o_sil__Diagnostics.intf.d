lib/sil/diagnostics.mli: Format Ir
