lib/sil/codegen.mli: Interp Ir
