lib/sil/activity.mli: Ir
