lib/sil/interp.ml: Array Float Format Hashtbl Ir
