lib/sil/codegen.ml: Array Builder Format Fun Hashtbl Interp Ir
