lib/sil/interp.mli: Ir
