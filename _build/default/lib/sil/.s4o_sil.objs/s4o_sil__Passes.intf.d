lib/sil/passes.mli: Ir
