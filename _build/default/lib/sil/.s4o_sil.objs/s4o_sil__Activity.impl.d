lib/sil/activity.ml: Array Fun Ir List
