lib/sil/parser.ml: Array Buffer Format Hashtbl Interp Ir List Scanf String
