lib/sil/transform.ml: Activity Array Diagnostics Float Format Hashtbl Interp Ir List
