lib/sil/parser.mli: Interp Ir
