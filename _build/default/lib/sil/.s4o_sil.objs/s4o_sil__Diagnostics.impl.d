lib/sil/diagnostics.ml: Activity Array Format Ir List
