lib/sil/builder.mli: Ir
