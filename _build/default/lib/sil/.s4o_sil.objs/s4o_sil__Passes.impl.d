lib/sil/passes.ml: Array Interp Ir List Option
