lib/sil/transform.mli: Diagnostics Interp
