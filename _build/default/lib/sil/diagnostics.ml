type severity = Error | Warning

type kind =
  | Result_not_varied
  | Nondifferentiable_use
  | Unknown_callee of string

type diagnostic = {
  severity : severity;
  kind : kind;
  block : int;
  inst : int;
  message : string;
}

let check ?wrt ~has_derivative (f : Ir.func) =
  let analysis = Activity.analyze ?wrt f in
  let diags = ref [] in
  let emit severity kind block inst message =
    diags := { severity; kind; block; inst; message } :: !diags
  in
  if not (Activity.return_is_varied f analysis) then
    emit Warning Result_not_varied (-1) (-1)
      (Format.sprintf
         "@%s: result does not depend on differentiable arguments; the \
          gradient is zero"
         f.name);
  Array.iteri
    (fun bi b ->
      Array.iteri
        (fun ii inst ->
          let varied a = analysis.Activity.varied.(bi).(a) in
          match (inst : Ir.inst) with
          | Cmp (_, a, b2) when varied a || varied b2 ->
              emit Warning Nondifferentiable_use bi ii
                (Format.sprintf
                   "@%s bb%d inst %d: comparison of varied values is \
                    non-differentiable; derivatives through it are zero"
                   f.name bi ii)
          | Unary (Floor, a) when varied a ->
              emit Warning Nondifferentiable_use bi ii
                (Format.sprintf
                   "@%s bb%d inst %d: floor of a varied value has zero \
                    derivative almost everywhere"
                   f.name bi ii)
          | Call (callee, _) when not (has_derivative callee) ->
              emit Error (Unknown_callee callee) bi ii
                (Format.sprintf
                   "@%s bb%d inst %d: no derivative available for callee @%s"
                   f.name bi ii callee)
          | Const _ | Unary _ | Binary _ | Cmp _ | Select _ | Call _ -> ())
        b.Ir.insts)
    f.blocks;
  List.rev !diags

let errors = List.filter (fun d -> d.severity = Error)

let pp ppf d =
  Format.fprintf ppf "%s: %s"
    (match d.severity with Error -> "error" | Warning -> "warning")
    d.message
