(** Activity analysis (§2.2, citing Tapenade): determines which values are
    {e varied} (differentiably depend on the inputs being differentiated
    with respect to) and {e useful} (differentiably contribute to the
    output). Values that are both are {e active} and need adjoint code.

    "Differentiably" matters: comparisons and [Floor] have zero derivative
    almost everywhere, so variedness and usefulness do not propagate through
    them, and a [Select]'s condition operand is likewise a non-differentiable
    use. The differentiability checker reports when such instructions sever
    an otherwise-active path.

    Both properties require a fixed point across the CFG because values flow
    between blocks through basic-block arguments. *)

type t = {
  varied : bool array array;  (** [varied.(block).(value)] *)
  useful : bool array array;
  active : bool array array;
}

(** [analyze ?wrt f] runs both dataflow analyses. [wrt] lists the entry
    argument indices to differentiate with respect to (default: all). *)
val analyze : ?wrt:int list -> Ir.func -> t

(** Is the function's return value varied (i.e. is the derivative not
    trivially zero)? *)
val return_is_varied : Ir.func -> t -> bool

(** Total number of active instruction results (excludes block params). *)
val active_inst_count : Ir.func -> t -> int
