type t = {
  varied : bool array array;
  useful : bool array array;
  active : bool array array;
}

(* Operand positions of [inst] through which derivatives flow. *)
let differentiable_operands (inst : Ir.inst) =
  match inst with
  | Const _ | Cmp _ -> []
  | Unary (Floor, _) -> []
  | Unary (_, a) -> [ a ]
  | Binary (_, a, b) -> [ a; b ]
  | Select (_, a, b) -> [ a; b ]
  | Call (_, args) -> Array.to_list args

let analyze ?wrt (f : Ir.func) =
  let n_blocks = Array.length f.blocks in
  let fresh () = Array.map (fun b -> Array.make (Ir.block_values b) false) f.blocks in
  let varied = fresh () and useful = fresh () in
  let wrt = match wrt with None -> List.init f.n_args Fun.id | Some l -> l in
  List.iter
    (fun i ->
      if i < 0 || i >= f.n_args then Ir.fail "analyze: wrt arg %d out of range" i;
      varied.(0).(i) <- true)
    wrt;
  (* Forward pass: propagate variedness within blocks and across branches
     until no block-parameter changes. *)
  let changed = ref true in
  while !changed do
    changed := false;
    for bi = 0 to n_blocks - 1 do
      let b = f.blocks.(bi) in
      Array.iteri
        (fun ii inst ->
          let vi = b.params + ii in
          if not varied.(bi).(vi) then
            let v =
              List.exists (fun a -> varied.(bi).(a)) (differentiable_operands inst)
            in
            if v then begin
              varied.(bi).(vi) <- true;
              changed := true
            end)
        b.insts;
      let flow args target =
        Array.iteri
          (fun pos a ->
            if varied.(bi).(a) && not varied.(target).(pos) then begin
              varied.(target).(pos) <- true;
              changed := true
            end)
          args
      in
      match b.term with
      | Ret _ -> ()
      | Br (t, args) -> flow args t
      | Cond_br (_, bt, at, bf, af) ->
          flow at bt;
          flow af bf
    done
  done;
  (* Backward pass: usefulness from the return value, through instructions
     in reverse, and from block parameters back to branch arguments. *)
  let changed = ref true in
  while !changed do
    changed := false;
    for bi = n_blocks - 1 downto 0 do
      let b = f.blocks.(bi) in
      (match b.term with
      | Ret v ->
          if not useful.(bi).(v) then begin
            useful.(bi).(v) <- true;
            changed := true
          end
      | Br _ | Cond_br _ -> ());
      (let flow_back target args =
         Array.iteri
           (fun pos a ->
             if useful.(target).(pos) && not useful.(bi).(a) then begin
               useful.(bi).(a) <- true;
               changed := true
             end)
           args
       in
       match b.term with
       | Ret _ -> ()
       | Br (t, args) -> flow_back t args
       | Cond_br (_, bt, at, bf, af) ->
           flow_back bt at;
           flow_back bf af);
      for ii = Array.length b.insts - 1 downto 0 do
        let vi = b.params + ii in
        if useful.(bi).(vi) then
          List.iter
            (fun a ->
              if not useful.(bi).(a) then begin
                useful.(bi).(a) <- true;
                changed := true
              end)
            (differentiable_operands b.insts.(ii))
      done
    done
  done;
  let active =
    Array.mapi
      (fun bi v -> Array.mapi (fun vi x -> x && useful.(bi).(vi)) v)
      varied
  in
  { varied; useful; active }

let return_is_varied (f : Ir.func) t =
  let found = ref false in
  Array.iteri
    (fun bi b ->
      match b.Ir.term with
      | Ir.Ret v -> if t.varied.(bi).(v) then found := true
      | Ir.Br _ | Ir.Cond_br _ -> ())
    f.blocks;
  !found

let active_inst_count (f : Ir.func) t =
  let count = ref 0 in
  Array.iteri
    (fun bi b ->
      for ii = 0 to Array.length b.Ir.insts - 1 do
        if t.active.(bi).(b.Ir.params + ii) then incr count
      done)
    f.blocks;
  !count
