(** Differentiability checking (§2.2): "detects non-differentiable
    instructions and emits errors and warnings ... that help users catch
    errors before execution."

    Diagnosed conditions:
    - {b Warning} [Result_not_varied]: the return value does not
      (differentiably) depend on any argument being differentiated — the
      gradient is identically zero.
    - {b Warning} [Nondifferentiable_use]: a comparison or [Floor] consumes a
      varied value and its result is used — derivatives through that path are
      zero almost everywhere.
    - {b Error} [Unknown_callee]: a call to a function that is neither in the
      module nor covered by a registered custom derivative, so no derivative
      can be synthesized. *)

type severity = Error | Warning

type kind =
  | Result_not_varied
  | Nondifferentiable_use
  | Unknown_callee of string

type diagnostic = {
  severity : severity;
  kind : kind;
  block : int;  (** -1 when the diagnostic is function-level. *)
  inst : int;  (** -1 when the diagnostic is function-level. *)
  message : string;
}

(** [check ?wrt ~has_derivative f] — [has_derivative name] must say whether a
    derivative for callee [name] is obtainable (present in the module, or
    custom-registered). *)
val check :
  ?wrt:int list -> has_derivative:(string -> bool) -> Ir.func -> diagnostic list

val errors : diagnostic list -> diagnostic list
val pp : Format.formatter -> diagnostic -> unit
