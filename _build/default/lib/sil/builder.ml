type block_state = {
  bparams : int;
  mutable insts : Ir.inst list;  (* reversed *)
  mutable n_insts : int;
  mutable term : Ir.terminator option;
}

type t = {
  name : string;
  n_args : int;
  mutable blocks : block_state list;  (* reversed *)
  mutable n_blocks : int;
  mutable cursor : block_state;
}

let create ~name ~n_args =
  let entry = { bparams = n_args; insts = []; n_insts = 0; term = None } in
  { name; n_args; blocks = [ entry ]; n_blocks = 1; cursor = entry }

let nth_block b i = List.nth (List.rev b.blocks) i

let new_block b ~params =
  let blk = { bparams = params; insts = []; n_insts = 0; term = None } in
  b.blocks <- blk :: b.blocks;
  b.n_blocks <- b.n_blocks + 1;
  b.n_blocks - 1

let switch b i = b.cursor <- nth_block b i

let param b i =
  if i < 0 || i >= b.cursor.bparams then
    Ir.fail "builder %s: param %d out of range" b.name i;
  i

let emit b inst =
  let blk = b.cursor in
  if blk.term <> None then Ir.fail "builder %s: emitting after terminator" b.name;
  blk.insts <- inst :: blk.insts;
  blk.n_insts <- blk.n_insts + 1;
  blk.bparams + blk.n_insts - 1

let const b c = emit b (Ir.Const c)
let unary b op a = emit b (Ir.Unary (op, a))
let binary b op x y = emit b (Ir.Binary (op, x, y))
let cmp b op x y = emit b (Ir.Cmp (op, x, y))
let select b ~cond ~if_true ~if_false = emit b (Ir.Select (cond, if_true, if_false))
let call b name args = emit b (Ir.Call (name, args))

let set_term b term =
  if b.cursor.term <> None then
    Ir.fail "builder %s: block already terminated" b.name;
  b.cursor.term <- Some term

let br b target args = set_term b (Ir.Br (target, args))

let cond_br b ~cond ~if_true:(bt, at) ~if_false:(bf, af) =
  set_term b (Ir.Cond_br (cond, bt, at, bf, af))

let ret b v = set_term b (Ir.Ret v)

let finish b =
  let blocks =
    List.rev b.blocks
    |> List.mapi (fun i blk ->
           match blk.term with
           | None -> Ir.fail "builder %s: bb%d has no terminator" b.name i
           | Some term ->
               {
                 Ir.params = blk.bparams;
                 insts = Array.of_list (List.rev blk.insts);
                 term;
               })
    |> Array.of_list
  in
  let f = { Ir.name = b.name; n_args = b.n_args; blocks } in
  Ir.validate f;
  f
