(** A textual front end for MSIL, accepting exactly the syntax the pretty
    printer ({!Ir.pp_func}) emits, so functions round-trip through text:

    {v
    func @mul_sin(2 args) {
    bb0(v0, v1):
      v2 = mul v0, v1
      v3 = sin v0
      v4 = add v2, v3
      ret v4
    }
    v}

    Value names must be [v<k>] numbered densely in definition order within
    each block (parameters first), matching the IR's positional encoding.
    Blank lines and [;]-prefixed comment lines are ignored. *)

exception Parse_error of string
(** Carries a message with the offending line number. *)

(** Parse a single function. *)
val parse_func : string -> Ir.func

(** Parse a sequence of functions into a fresh module. *)
val parse_module : string -> Interp.modul
