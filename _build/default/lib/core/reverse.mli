(** Reverse-mode automatic differentiation over scalars using a dynamic tape.

    This is the runtime realization of the VJP ("pullback") column of
    Figure 3 for scalar programs: the forward pass records each operation's
    local partial derivatives; the backward pass accumulates adjoints in a
    single sweep, so the cost of a full gradient is a small constant times the
    cost of the primal ("efficient gradient" goal, §4.3).

    Values of type {!t} are either constants (no tape) or tape variables.
    Operations on values from two different gradient computations raise
    [Invalid_argument]. *)

type t

val value : t -> float

(** A constant: participates in arithmetic but receives no adjoint. *)
val const : float -> t

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val scale : float -> t -> t
val add_const : float -> t -> t

(** {1 Transcendental} *)

val sin : t -> t
val cos : t -> t
val exp : t -> t
val log : t -> t
val sqrt : t -> t
val pow : t -> float -> t
val relu : t -> t
val sigmoid : t -> t
val tanh : t -> t
val abs : t -> t
val max : t -> t -> t
val min : t -> t -> t

(** {1 Custom derivatives (the [@derivative(of:)] analogue)} *)

(** [custom_unary ~f ~df x]: [df] receives the primal input and returns the
    local derivative used by the backward sweep. *)
val custom_unary : f:(float -> float) -> df:(float -> float) -> t -> t

(** [custom_binary ~f ~dfa ~dfb a b]: partials w.r.t. each argument. *)
val custom_binary :
  f:(float -> float -> float) ->
  dfa:(float -> float -> float) ->
  dfb:(float -> float -> float) ->
  t ->
  t ->
  t

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
end

(** {1 Differential operators} *)

(** [grad f x] evaluates the gradient of [f] at [x] with one forward and one
    backward sweep; returns [(f x, nabla f x)]. *)
val grad : (t array -> t) -> float array -> float * float array

(** Single-variable convenience. *)
val grad1 : (t -> t) -> float -> float * float

(** Two-variable convenience. *)
val grad2 : (t -> t -> t) -> float -> float -> float * (float * float)

(** [vjp f x] returns the primal outputs and a pullback closure mapping an
    output cotangent to the input cotangent — the literal VJP shape of
    Figure 3. The pullback may be invoked several times with different
    cotangents without re-running the primal. *)
val vjp : (t array -> t array) -> float array -> float array * (float array -> float array)

(** Number of tape entries recorded by the last [grad]/[vjp] on this domain;
    exposed for tests asserting the efficient-gradient property. *)
val last_tape_length : unit -> int
