(** The [Differentiable] protocol of Figure 1, transliterated to OCaml.

    Swift protocols become module signatures: a differentiable type carries an
    associated [TangentVector] type that is additive-arithmetic, plus a [move]
    operation (the exponential map) that displaces a value along a tangent
    vector. Because OCaml has no compiler-synthesized conformances, the
    library also offers functors ({!Pair}, {!Triple}, {!Array_of}) that build
    the conformance for aggregates — the moral equivalent of the Swift
    compiler deriving [TangentVector] memberwise for a struct of
    differentiable stored properties. *)

module type ADDITIVE_ARITHMETIC = sig
  type t

  val zero : t
  val add : t -> t -> t
  val sub : t -> t -> t
end

module type DIFFERENTIABLE = sig
  type t

  module Tangent : ADDITIVE_ARITHMETIC

  (** [move x ~along:d] is "x + d" on the manifold. *)
  val move : t -> along:Tangent.t -> t
end

(** [Float] is its own tangent space — the flat manifold R. *)
module Float_diff = struct
  type t = float

  module Tangent = struct
    type t = float

    let zero = 0.0
    let add = ( +. )
    let sub = ( -. )
  end

  let move x ~along = x +. along
end

(** Product manifold: the tangent of a pair is the pair of tangents. *)
module Pair (A : DIFFERENTIABLE) (B : DIFFERENTIABLE) = struct
  type t = A.t * B.t

  module Tangent = struct
    type t = A.Tangent.t * B.Tangent.t

    let zero = (A.Tangent.zero, B.Tangent.zero)
    let add (a1, b1) (a2, b2) = (A.Tangent.add a1 a2, B.Tangent.add b1 b2)
    let sub (a1, b1) (a2, b2) = (A.Tangent.sub a1 a2, B.Tangent.sub b1 b2)
  end

  let move (a, b) ~along:(da, db) = (A.move a ~along:da, B.move b ~along:db)
end

module Triple (A : DIFFERENTIABLE) (B : DIFFERENTIABLE) (C : DIFFERENTIABLE) =
struct
  type t = A.t * B.t * C.t

  module Tangent = struct
    type t = A.Tangent.t * B.Tangent.t * C.Tangent.t

    let zero = (A.Tangent.zero, B.Tangent.zero, C.Tangent.zero)

    let add (a1, b1, c1) (a2, b2, c2) =
      (A.Tangent.add a1 a2, B.Tangent.add b1 b2, C.Tangent.add c1 c2)

    let sub (a1, b1, c1) (a2, b2, c2) =
      (A.Tangent.sub a1 a2, B.Tangent.sub b1 b2, C.Tangent.sub c1 c2)
  end

  let move (a, b, c) ~along:(da, db, dc) =
    (A.move a ~along:da, B.move b ~along:db, C.move c ~along:dc)
end

(** Fixed-length arrays of a differentiable element type. The additive zero is
    the empty array, standing for "zero of any length" (tangent addition of a
    zero-length array is the identity), mirroring how Swift's
    [Array.TangentVector] treats mismatched lengths. *)
module Array_of (A : DIFFERENTIABLE) = struct
  type t = A.t array

  module Tangent = struct
    type t = A.Tangent.t array

    let zero = [||]

    let map2_padded f a b =
      if Array.length a = 0 then Array.copy b
      else if Array.length b = 0 then Array.copy a
      else begin
        if Array.length a <> Array.length b then
          invalid_arg "Array_of.Tangent: length mismatch";
        Array.init (Array.length a) (fun i -> f a.(i) b.(i))
      end

    let add = map2_padded A.Tangent.add

    let sub a b =
      if Array.length b = 0 then Array.copy a
      else if Array.length a = 0 then
        Array.map (fun x -> A.Tangent.sub A.Tangent.zero x) b
      else map2_padded A.Tangent.sub a b
  end

  let move x ~along =
    if Array.length along = 0 then Array.copy x
    else begin
      if Array.length x <> Array.length along then
        invalid_arg "Array_of.move: length mismatch";
      Array.init (Array.length x) (fun i -> A.move x.(i) ~along:along.(i))
    end
end

(** Dense tensors are differentiable with themselves as tangent space. The
    additive zero is the scalar 0, which broadcasts against any shape. *)
module Tensor_diff = struct
  type t = S4o_tensor.Dense.t

  module Tangent = struct
    type t = S4o_tensor.Dense.t

    let zero = S4o_tensor.Dense.scalar 0.0
    let add = S4o_tensor.Dense.add
    let sub = S4o_tensor.Dense.sub
  end

  let move x ~along = S4o_tensor.Dense.add x along
end

(** {1 First-class (value-level) conformances}

    Functor-level conformances are faithful to Figure 1, but higher-order
    differential operators are far more convenient with the conformance
    passed as an ordinary value. [('a, 'da) witness] is the value-level
    rendering of [Differentiable where TangentVector == 'da]. *)

type ('a, 'da) witness = {
  zero : 'da;
  add : 'da -> 'da -> 'da;
  move : 'a -> 'da -> 'a;
}

let float_witness : (float, float) witness =
  { zero = 0.0; add = ( +. ); move = ( +. ) }

let pair_witness wa wb =
  {
    zero = (wa.zero, wb.zero);
    add = (fun (a1, b1) (a2, b2) -> (wa.add a1 a2, wb.add b1 b2));
    move = (fun (a, b) (da, db) -> (wa.move a da, wb.move b db));
  }

let tensor_witness :
    (S4o_tensor.Dense.t, S4o_tensor.Dense.t) witness =
  {
    zero = S4o_tensor.Dense.scalar 0.0;
    add = S4o_tensor.Dense.add;
    move = S4o_tensor.Dense.add;
  }

(** Witness from a module conformance. *)
module Witness_of (D : DIFFERENTIABLE) : sig
  val witness : (D.t, D.Tangent.t) witness
end = struct
  let witness =
    {
      zero = D.Tangent.zero;
      add = D.Tangent.add;
      move = (fun x d -> D.move x ~along:d);
    }
end
