lib/core/higher_order.ml: Float Fun
