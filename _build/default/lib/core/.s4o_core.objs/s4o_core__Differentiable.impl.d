lib/core/differentiable.ml: Array S4o_tensor
