lib/core/reverse.mli:
