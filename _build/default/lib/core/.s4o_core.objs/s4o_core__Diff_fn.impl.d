lib/core/diff_fn.ml: Array Forward Fun Reverse
