lib/core/forward.mli:
