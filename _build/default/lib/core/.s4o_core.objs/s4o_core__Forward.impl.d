lib/core/forward.ml: Array Float
