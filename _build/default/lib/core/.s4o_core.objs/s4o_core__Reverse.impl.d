lib/core/reverse.ml: Array Float
