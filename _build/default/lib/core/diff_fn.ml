(** Differentiable function values — the [@differentiable (A) -> B] function
    type family of §2.1 and Figure 3.

    A value of type [('a, 'da, 'b, 'db) t] bundles the original function with
    its JVP (forward-mode derivative returning a {e differential}) and VJP
    (reverse-mode derivative returning a {e pullback}). The Swift compiler
    synthesizes these bundles at compile time; here they are built by the
    combinators below, by the {!promote}* constructors (the analogue of the
    implicit conversion inserted when an unannotated closure meets a
    [@differentiable] context), or by the MSIL compile-time transform in
    [S4o_sil]. *)

type ('a, 'da, 'b, 'db) t = {
  f : 'a -> 'b;  (** The original function. *)
  jvp : 'a -> 'b * ('da -> 'db);
      (** Forward mode: value plus differential. *)
  vjp : 'a -> 'b * ('db -> 'da);  (** Reverse mode: value plus pullback. *)
}

(** Build a bundle from explicitly-written derivative functions — the
    [@derivative(of:)] registration path. *)
let make ~f ~jvp ~vjp = { f; jvp; vjp }

let apply t x = t.f x

(** Chain rule, in both directions: differentials compose forwards, pullbacks
    compose backwards. *)
let compose (g : ('b, 'db, 'c, 'dc) t) (f : ('a, 'da, 'b, 'db) t) :
    ('a, 'da, 'c, 'dc) t =
  {
    f = (fun x -> g.f (f.f x));
    jvp =
      (fun x ->
        let y, df = f.jvp x in
        let z, dg = g.jvp y in
        (z, fun dx -> dg (df dx)));
    vjp =
      (fun x ->
        let y, pbf = f.vjp x in
        let z, pbg = g.vjp y in
        (z, fun dz -> pbf (pbg dz)));
  }

(** Parallel pair: differentiate two functions side by side. *)
let pair (f : ('a, 'da, 'b, 'db) t) (g : ('c, 'dc, 'd, 'dd) t) :
    ('a * 'c, 'da * 'dc, 'b * 'd, 'db * 'dd) t =
  {
    f = (fun (x, y) -> (f.f x, g.f y));
    jvp =
      (fun (x, y) ->
        let bx, dfx = f.jvp x and by, dgy = g.jvp y in
        ((bx, by), fun (dx, dy) -> (dfx dx, dgy dy)));
    vjp =
      (fun (x, y) ->
        let bx, pbx = f.vjp x and by, pby = g.vjp y in
        ((bx, by), fun (db, dd) -> (pbx db, pby dd)));
  }

(** The identity is differentiable with identity derivatives. *)
let identity : ('a, 'da, 'a, 'da) t =
  { f = Fun.id; jvp = (fun x -> (x, Fun.id)); vjp = (fun x -> (x, Fun.id)) }

(** {1 Differential operators (Figure 2)} *)

(** [gradient ~at f] for a scalar-valued differentiable function: seeds the
    pullback with 1. *)
let gradient ~at (t : ('a, 'da, float, float) t) : 'da =
  let _, pullback = t.vjp at in
  pullback 1.0

let value_with_gradient ~at (t : ('a, 'da, float, float) t) : float * 'da =
  let v, pullback = t.vjp at in
  (v, pullback 1.0)

(** [derivative ~at ~along f]: forward-mode directional derivative. *)
let derivative ~at ~along (t : ('a, 'da, 'b, 'db) t) : 'db =
  let _, differential = t.jvp at in
  differential along

let value_with_derivative ~at ~along (t : ('a, 'da, 'b, 'db) t) : 'b * 'db =
  let v, differential = t.jvp at in
  (v, differential along)

(** {1 Implicit promotion}

    §2.1: "we automatically promote functions and closures to their
    [@differentiable] counterparts based on their use". OCaml cannot insert
    the conversion during type checking, so the promotion is an explicit
    constructor: the passed closure must be written against the {!Reverse}
    (and {!Forward}) op vocabulary, and the bundle's JVP/VJP are derived by
    running those runtime transforms. *)

(** Promote an [R -> R] closure. *)
let promote_scalar (f : Forward.t -> Forward.t) (g : Reverse.t -> Reverse.t) :
    (float, float, float, float) t =
  {
    f = (fun x -> (f (Forward.const x)).Forward.v);
    jvp =
      (fun x ->
        let v, d = Forward.value_and_derivative f x in
        (v, fun dx -> dx *. d));
    vjp =
      (fun x ->
        let v, d = Reverse.grad1 g x in
        (v, fun db -> db *. d));
  }

(** Promote an [R^n -> R] closure written against the {!Reverse} ops. *)
let promote_vector (g : Reverse.t array -> Reverse.t) :
    (float array, float array, float, float) t =
  {
    f = (fun x -> fst (Reverse.grad g x));
    jvp =
      (fun x ->
        (* JVP of a scalar-valued function from its gradient *)
        let v, grad = Reverse.grad g x in
        ( v,
          fun dx ->
            let acc = ref 0.0 in
            Array.iteri (fun i gi -> acc := !acc +. (gi *. dx.(i))) grad;
            !acc ));
    vjp =
      (fun x ->
        let v, grad = Reverse.grad g x in
        (v, fun db -> Array.map (fun gi -> db *. gi) grad));
  }

(** Promote an [R^n -> R^m] closure. The closure is supplied twice, written
    against each op vocabulary, because the JVP runs the forward transform and
    the VJP runs the reverse transform — exactly the two "derivative function"
    values the Swift compiler would synthesize from one body. *)
let promote_multi (f_fwd : Forward.t array -> Forward.t array)
    (f_rev : Reverse.t array -> Reverse.t array) :
    (float array, float array, float array, float array) t =
  {
    f = (fun x -> fst (Reverse.vjp f_rev x));
    jvp =
      (fun x ->
        let v, _ = Reverse.vjp f_rev x in
        (v, fun dx -> Forward.jvp f_fwd x dx));
    vjp =
      (fun x ->
        let v, pullback = Reverse.vjp f_rev x in
        (v, pullback));
  }
