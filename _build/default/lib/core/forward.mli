(** Forward-mode automatic differentiation over scalars using dual numbers:
    each value carries its primal together with the directional derivative
    along the seed direction. This is the runtime realization of the JVP
    ("differential") column of Figure 3 for [R -> R] and [R^n -> R]
    functions. *)

type t = { v : float; d : float }

val const : float -> t

(** A variable seeded with derivative 1. *)
val var : float -> t

val make : float -> float -> t

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val scale : float -> t -> t
val add_const : float -> t -> t

(** {1 Transcendental} *)

val sin : t -> t
val cos : t -> t
val tan : t -> t
val exp : t -> t
val log : t -> t
val sqrt : t -> t
val pow : t -> float -> t
val relu : t -> t
val sigmoid : t -> t
val tanh : t -> t
val abs : t -> t
val max : t -> t -> t
val min : t -> t -> t

(** {1 Custom derivatives}

    [custom ~f ~df x] lifts a scalar function with a user-registered
    derivative — the runtime analogue of [@derivative(of:)]. *)
val custom : f:(float -> float) -> df:(float -> float) -> t -> t

(** {1 Infix} *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
end

(** {1 Differential operators} *)

(** [derivative f x] is f'(x). *)
val derivative : (t -> t) -> float -> float

(** [value_and_derivative f x] is (f x, f'(x)). *)
val value_and_derivative : (t -> t) -> float -> float * float

(** [grad f x] computes the full gradient of an [R^n -> R] function by n
    forward passes, one per seed direction. *)
val grad : (t array -> t) -> float array -> float array

(** [jvp f x v] is the Jacobian-vector product of an [R^n -> R^m] function:
    one forward pass seeded with direction [v]. *)
val jvp : (t array -> t array) -> float array -> float array -> float array
