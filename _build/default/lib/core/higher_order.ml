(** Higher-order differentiation by nesting forward mode over itself.

    §2.3 notes that the S4TF compile-time code transformation "currently
    cannot transform its own output" and so does not support higher-order
    differentiation. The {e runtime} formulation has no such limitation: a
    dual-number interpreter parameterized over its scalar type can be
    instantiated with itself. The paper observes that encoding this in the
    [@differentiable] function type family would require tracking "n-times
    differentiable"; in OCaml the same requirement surfaces as the rank-2
    polymorphism below — the function must be written once, polymorphic over
    any scalar implementation, to be differentiated to any order. *)

(** The scalar vocabulary a differentiable-to-any-order function may use. *)
type 'a ops = {
  of_float : float -> 'a;
  add : 'a -> 'a -> 'a;
  sub : 'a -> 'a -> 'a;
  mul : 'a -> 'a -> 'a;
  div : 'a -> 'a -> 'a;
  neg : 'a -> 'a;
  sin : 'a -> 'a;
  cos : 'a -> 'a;
  exp : 'a -> 'a;
  log : 'a -> 'a;
  sqrt : 'a -> 'a;
}

(** A function definable at every differentiation order: note the
    universally-quantified record field (rank-2 polymorphism). *)
type fn = { apply : 'a. 'a ops -> 'a -> 'a }

let float_ops : float ops =
  {
    of_float = Fun.id;
    add = ( +. );
    sub = ( -. );
    mul = ( *. );
    div = ( /. );
    neg = (fun x -> -.x);
    sin = Float.sin;
    cos = Float.cos;
    exp = Float.exp;
    log = Float.log;
    sqrt = Float.sqrt;
  }

(** Dual numbers over an arbitrary scalar: the payload of one more
    differentiation order. *)
let dual_ops (s : 'a ops) : ('a * 'a) ops =
  let two = s.of_float 2.0 in
  {
    of_float = (fun f -> (s.of_float f, s.of_float 0.0));
    add = (fun (av, ad) (bv, bd) -> (s.add av bv, s.add ad bd));
    sub = (fun (av, ad) (bv, bd) -> (s.sub av bv, s.sub ad bd));
    mul =
      (fun (av, ad) (bv, bd) -> (s.mul av bv, s.add (s.mul ad bv) (s.mul av bd)));
    div =
      (fun (av, ad) (bv, bd) ->
        (s.div av bv, s.div (s.sub (s.mul ad bv) (s.mul av bd)) (s.mul bv bv)));
    neg = (fun (av, ad) -> (s.neg av, s.neg ad));
    sin = (fun (av, ad) -> (s.sin av, s.mul ad (s.cos av)));
    cos = (fun (av, ad) -> (s.cos av, s.neg (s.mul ad (s.sin av))));
    exp =
      (fun (av, ad) ->
        let e = s.exp av in
        (e, s.mul ad e));
    log = (fun (av, ad) -> (s.log av, s.div ad av));
    sqrt =
      (fun (av, ad) ->
        let r = s.sqrt av in
        (r, s.div ad (s.mul two r)));
  }

(** [differentiate f] is f' as another any-order-differentiable function. *)
let differentiate (f : fn) : fn =
  {
    apply =
      (fun (type a) (s : a ops) (x : a) : a ->
        let d = dual_ops s in
        let _, dx = f.apply d (x, s.of_float 1.0) in
        dx);
  }

let eval (f : fn) (x : float) = f.apply float_ops x

(** [nth_derivative n f x] is the exact n-th derivative of [f] at [x]. *)
let nth_derivative n (f : fn) (x : float) =
  if n < 0 then invalid_arg "nth_derivative: negative order";
  let rec go n f = if n = 0 then f else go (n - 1) (differentiate f) in
  eval (go n f) x
