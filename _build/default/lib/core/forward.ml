type t = { v : float; d : float }

let const v = { v; d = 0.0 }
let var v = { v; d = 1.0 }
let make v d = { v; d }
let add a b = { v = a.v +. b.v; d = a.d +. b.d }
let sub a b = { v = a.v -. b.v; d = a.d -. b.d }
let mul a b = { v = a.v *. b.v; d = (a.d *. b.v) +. (a.v *. b.d) }

let div a b =
  { v = a.v /. b.v; d = ((a.d *. b.v) -. (a.v *. b.d)) /. (b.v *. b.v) }

let neg a = { v = -.a.v; d = -.a.d }
let scale c a = { v = c *. a.v; d = c *. a.d }
let add_const c a = { v = c +. a.v; d = a.d }
let sin a = { v = Float.sin a.v; d = a.d *. Float.cos a.v }
let cos a = { v = Float.cos a.v; d = -.a.d *. Float.sin a.v }

let tan a =
  let c = Float.cos a.v in
  { v = Float.tan a.v; d = a.d /. (c *. c) }

let exp a =
  let e = Float.exp a.v in
  { v = e; d = a.d *. e }

let log a = { v = Float.log a.v; d = a.d /. a.v }

let sqrt a =
  let s = Float.sqrt a.v in
  { v = s; d = a.d /. (2.0 *. s) }

let pow a p = { v = Float.pow a.v p; d = a.d *. p *. Float.pow a.v (p -. 1.0) }
let relu a = if a.v > 0.0 then a else { v = 0.0; d = 0.0 }

let sigmoid a =
  let s = 1.0 /. (1.0 +. Float.exp (-.a.v)) in
  { v = s; d = a.d *. s *. (1.0 -. s) }

let tanh a =
  let th = Float.tanh a.v in
  { v = th; d = a.d *. (1.0 -. (th *. th)) }

let abs a = if a.v >= 0.0 then a else neg a
let max a b = if a.v >= b.v then a else b
let min a b = if a.v <= b.v then a else b
let custom ~f ~df a = { v = f a.v; d = a.d *. df a.v }

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
end

let value_and_derivative f x =
  let r = f (var x) in
  (r.v, r.d)

let derivative f x = snd (value_and_derivative f x)

let grad f x =
  let n = Array.length x in
  Array.init n (fun i ->
      let inputs = Array.mapi (fun j v -> if i = j then var v else const v) x in
      (f inputs).d)

let jvp f x v =
  let inputs = Array.mapi (fun i xi -> make xi v.(i)) x in
  Array.map (fun r -> r.d) (f inputs)
