(* Each tape entry stores up to two parents with the local partial derivative
   of the result w.r.t. that parent. The backward sweep walks the tape once in
   reverse, so gradient cost is O(tape length). *)

type entry = { p1 : int; d1 : float; p2 : int; d2 : float }

type tape = { mutable entries : entry array; mutable len : int }

type t = { tape : tape option; idx : int; v : float }

let no_parent = -1

let value t = t.v
let const v = { tape = None; idx = no_parent; v }

let fresh_tape () = { entries = Array.make 64 { p1 = no_parent; d1 = 0.0; p2 = no_parent; d2 = 0.0 }; len = 0 }

let push tape e =
  if tape.len = Array.length tape.entries then begin
    let bigger = Array.make (2 * tape.len) e in
    Array.blit tape.entries 0 bigger 0 tape.len;
    tape.entries <- bigger
  end;
  tape.entries.(tape.len) <- e;
  tape.len <- tape.len + 1;
  tape.len - 1

let merge_tapes a b =
  match (a.tape, b.tape) with
  | Some ta, Some tb ->
      if ta != tb then
        invalid_arg "Reverse: mixing variables from two gradient computations";
      Some ta
  | (Some _ as s), None | None, (Some _ as s) -> s
  | None, None -> None

let unary a v d =
  match a.tape with
  | None -> const v
  | Some tape ->
      let idx = push tape { p1 = a.idx; d1 = d; p2 = no_parent; d2 = 0.0 } in
      { tape = Some tape; idx; v }

let binary a b v da db =
  match merge_tapes a b with
  | None -> const v
  | Some tape ->
      let idx = push tape { p1 = a.idx; d1 = da; p2 = b.idx; d2 = db } in
      { tape = Some tape; idx; v }

let add a b = binary a b (a.v +. b.v) 1.0 1.0
let sub a b = binary a b (a.v -. b.v) 1.0 (-1.0)
let mul a b = binary a b (a.v *. b.v) b.v a.v

let div a b =
  binary a b (a.v /. b.v) (1.0 /. b.v) (-.a.v /. (b.v *. b.v))

let neg a = unary a (-.a.v) (-1.0)
let scale c a = unary a (c *. a.v) c
let add_const c a = unary a (c +. a.v) 1.0
let sin a = unary a (Float.sin a.v) (Float.cos a.v)
let cos a = unary a (Float.cos a.v) (-.Float.sin a.v)

let exp a =
  let e = Float.exp a.v in
  unary a e e

let log a = unary a (Float.log a.v) (1.0 /. a.v)

let sqrt a =
  let s = Float.sqrt a.v in
  unary a s (1.0 /. (2.0 *. s))

let pow a p = unary a (Float.pow a.v p) (p *. Float.pow a.v (p -. 1.0))
let relu a = if a.v > 0.0 then unary a a.v 1.0 else unary a 0.0 0.0

let sigmoid a =
  let s = 1.0 /. (1.0 +. Float.exp (-.a.v)) in
  unary a s (s *. (1.0 -. s))

let tanh a =
  let th = Float.tanh a.v in
  unary a th (1.0 -. (th *. th))

let abs a = if a.v >= 0.0 then unary a a.v 1.0 else unary a (-.a.v) (-1.0)
let max a b = if a.v >= b.v then binary a b a.v 1.0 0.0 else binary a b b.v 0.0 1.0
let min a b = if a.v <= b.v then binary a b a.v 1.0 0.0 else binary a b b.v 0.0 1.0
let custom_unary ~f ~df a = unary a (f a.v) (df a.v)

let custom_binary ~f ~dfa ~dfb a b =
  binary a b (f a.v b.v) (dfa a.v b.v) (dfb a.v b.v)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
end

let last_tape_len = ref 0
let last_tape_length () = !last_tape_len

(* Run [f] on fresh variables, then sweep the tape backwards accumulating
   adjoints from the given output seeds. *)
let run_backward (f : t array -> t array) (x : float array) =
  let tape = fresh_tape () in
  let inputs =
    Array.map
      (fun v ->
        let idx = push tape { p1 = no_parent; d1 = 0.0; p2 = no_parent; d2 = 0.0 } in
        { tape = Some tape; idx; v })
      x
  in
  let outputs = f inputs in
  last_tape_len := tape.len;
  let pullback (seeds : float array) =
    if Array.length seeds <> Array.length outputs then
      invalid_arg "Reverse pullback: seed arity mismatch";
    let adj = Array.make tape.len 0.0 in
    Array.iteri
      (fun i o ->
        match o.tape with
        | Some _ -> adj.(o.idx) <- adj.(o.idx) +. seeds.(i)
        | None -> ())
      outputs;
    for i = tape.len - 1 downto 0 do
      let a = adj.(i) in
      if a <> 0.0 then begin
        let e = tape.entries.(i) in
        if e.p1 <> no_parent then adj.(e.p1) <- adj.(e.p1) +. (a *. e.d1);
        if e.p2 <> no_parent then adj.(e.p2) <- adj.(e.p2) +. (a *. e.d2)
      end
    done;
    Array.map (fun inp -> adj.(inp.idx)) inputs
  in
  (outputs, pullback)

let vjp f x =
  let outputs, pullback = run_backward f x in
  (Array.map value outputs, pullback)

let grad f x =
  let outputs, pullback = run_backward (fun xs -> [| f xs |]) x in
  ((outputs.(0)).v, pullback [| 1.0 |])

let grad1 f x =
  let v, g = grad (fun xs -> f xs.(0)) [| x |] in
  (v, g.(0))

let grad2 f x y =
  let v, g = grad (fun xs -> f xs.(0) xs.(1)) [| x; y |] in
  (v, (g.(0), g.(1)))
