type t = {
  name : string;
  per_op_host : float;
  per_step_host : float;
  staged : bool;
  fused : bool;
  kernel_efficiency : float;
}

(* Calibration notes (see EXPERIMENTS.md): per-op host costs are in the
   ranges measured for the real systems circa 2020 — TF-eager-style dynamic
   dispatch ~100+ us/op, PyTorch's C++ dispatcher ~10 us/op, LazyTensor trace
   recording ~10-20 us/op. Kernel efficiency is relative to the shared
   device spec: cuDNN-tuned kernels run a bit faster than XLA:GPU codegen on
   2016-era GPUs, and Table 2's TensorFlow ResNet-50 was the most
   aggressively tuned TPU codebase of the three. *)

let s4o_eager =
  {
    name = "S4O (eager)";
    per_op_host = 50e-6;
    per_step_host = 0.5e-3;
    staged = false;
    fused = false;
    kernel_efficiency = 0.60 (* cuDNN-class kernels, selected per-op *);
  }

let s4o_lazy =
  {
    name = "S4O (LazyTensor)";
    per_op_host = 16e-6 (* re-trace every iteration, §3.4 *);
    per_step_host = 0.8e-3 (* trace hash + cache lookup + materialize *);
    staged = false;
    fused = true;
    kernel_efficiency = 1.0 (* XLA codegen: the reference roofline *);
  }

let pytorch_like =
  {
    name = "PyTorch";
    per_op_host = 9e-6;
    per_step_host = 0.3e-3;
    staged = false;
    fused = false;
    kernel_efficiency = 0.34
      (* cuDNN-class kernels with library-internal conv+bn+relu fusion *);
  }

let tf_graph_like =
  {
    name = "TensorFlow";
    per_op_host = 0.0;
    per_step_host = 1.0e-3 (* session dispatch *);
    staged = true;
    fused = true;
    kernel_efficiency = 0.76 (* the heavily-optimized benchmark codebase *);
  }

let jax_like =
  {
    name = "JAX + Flax";
    per_op_host = 0.0;
    per_step_host = 0.4e-3;
    staged = true;
    fused = true;
    kernel_efficiency = 0.90;
  }

type breakdown = {
  host_seconds : float;
  device_seconds : float;
  step_seconds : float;
  kernels : int;
}

let compute_nodes (g : S4o_xla.Hlo.graph) =
  List.length
    (List.filter
       (fun (n : S4o_xla.Hlo.node) ->
         match n.S4o_xla.Hlo.role with
         | S4o_xla.Hlo.Compute -> true
         | S4o_xla.Hlo.Param _ | S4o_xla.Hlo.Literal _ -> false)
       g.S4o_xla.Hlo.nodes)

let step_time s ~device ~graph =
  let device_seconds, kernels =
    if s.fused then begin
      let optimized, _ = S4o_xla.Opt.optimize graph in
      let clusters = S4o_xla.Opt.fuse optimized in
      ( List.fold_left
          (fun acc (c : S4o_xla.Opt.cluster) ->
            acc +. S4o_device.Device_spec.kernel_time device c.S4o_xla.Opt.info)
          0.0 clusters,
        List.length clusters )
    end
    else begin
      let nodes =
        List.filter
          (fun (n : S4o_xla.Hlo.node) ->
            match n.S4o_xla.Hlo.role with
            | S4o_xla.Hlo.Compute -> true
            | S4o_xla.Hlo.Param _ | S4o_xla.Hlo.Literal _ -> false)
          graph.S4o_xla.Hlo.nodes
      in
      ( List.fold_left
          (fun acc (n : S4o_xla.Hlo.node) ->
            acc +. S4o_device.Device_spec.kernel_time device n.S4o_xla.Hlo.info)
          0.0 nodes,
        List.length nodes )
    end
  in
  let device_seconds = device_seconds *. s.kernel_efficiency in
  let host_seconds =
    s.per_step_host
    +. if s.staged then 0.0
       else float_of_int (compute_nodes graph) *. s.per_op_host
  in
  {
    host_seconds;
    device_seconds;
    step_seconds = Float.max host_seconds device_seconds;
    kernels;
  }

let throughput ~batch b = float_of_int batch /. b.step_seconds
