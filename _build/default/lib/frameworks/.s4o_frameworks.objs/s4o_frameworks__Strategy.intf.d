lib/frameworks/strategy.mli: S4o_device S4o_xla
