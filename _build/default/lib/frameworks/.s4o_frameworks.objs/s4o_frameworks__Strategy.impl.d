lib/frameworks/strategy.ml: Float List S4o_device S4o_xla
