(** Framework execution strategies — the baselines of Tables 2 and 3.

    All frameworks in the paper's comparisons execute the {e same}
    mathematical training step; what differs is how the step reaches the
    accelerator. Each strategy is therefore a small mechanical model applied
    to one shared HLO step graph:

    - per-op host cost (eager dispatch, or per-op trace recording),
    - fixed per-step host cost (session dispatch, input pipeline),
    - whether the program is re-traced every step (§3.4's LazyTensor
      overhead) or staged once ([@jit] / [@tf.function] / graph mode),
    - whether kernels run fused (XLA-style clusters) or one per node,
    - a kernel-efficiency factor capturing how well that framework's kernel
      library is tuned for the device (cuDNN vs XLA-GPU, and Table 2's
      "some codebases have been better optimized for benchmark purposes").

    Steady-state step time is [max(host, device)]: the host pipeline overlaps
    the device queue (§3.2), so whichever is slower bounds throughput. *)

type t = {
  name : string;
  per_op_host : float;  (** host seconds per compute node per step *)
  per_step_host : float;  (** fixed host seconds per step *)
  staged : bool;  (** true: traced/compiled once, no per-step per-op cost *)
  fused : bool;  (** true: runs XLA-style fusion clusters *)
  kernel_efficiency : float;
      (** multiplier on kernel time; < 1 means faster kernels *)
}

(** S4TF eager mode (Table 3): op-by-op dispatch through the TF-eager-based
    runtime — the highest per-op host cost in the comparison. *)
val s4o_eager : t

(** S4TF LazyTensor (Tables 1–3): re-traces every step, executes fused. *)
val s4o_lazy : t

(** PyTorch-style optimized native eager: low dispatch cost, cuDNN-class
    kernels, no cross-op fusion. *)
val pytorch_like : t

(** TensorFlow graph mode: staged once, moderately fused, heavily tuned
    kernels and input pipeline. *)
val tf_graph_like : t

(** JAX [@jit]: staged once through XLA, fully fused. *)
val jax_like : t

type breakdown = {
  host_seconds : float;
  device_seconds : float;
  step_seconds : float;  (** max of the two *)
  kernels : int;
}

(** One steady-state training-step time for the given strategy on the given
    device, from a step graph. (Compile/warmup cost is excluded: all the
    paper's throughput numbers are post-warmup.) *)
val step_time : t -> device:S4o_device.Device_spec.t -> graph:S4o_xla.Hlo.graph -> breakdown

(** Examples/second given the per-step batch size. *)
val throughput : batch:int -> breakdown -> float
