lib/data/dataset.ml: Array Dense Float Fun List Prng S4o_tensor Shape
