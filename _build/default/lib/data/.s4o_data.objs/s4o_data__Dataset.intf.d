lib/data/dataset.mli: S4o_tensor
