(** Synthetic stand-ins for the paper's datasets (MNIST-, CIFAR-10- and
    ImageNet-shaped), per the substitution rule of DESIGN.md: throughput and
    scaling results depend on tensor shapes and class counts, not pixel
    contents, and learnability experiments only need a dataset a model
    {e can} learn.

    Each class owns a fixed prototype image (seeded by the class id); an
    example is its class prototype plus i.i.d. Gaussian noise, so small
    models reach high accuracy within a few epochs while every byte stays
    deterministic. *)

type t = {
  name : string;
  images : S4o_tensor.Dense.t;  (** [\[n; h; w; c\]] *)
  labels : int array;
  classes : int;
}

val n_examples : t -> int

(** The generic generator behind the named datasets; exposed so examples can
    build custom layouts (e.g. sequences as [\[n; t; 1; d\]]). *)
val make_prototyped :
  name:string ->
  rng:S4o_tensor.Prng.t ->
  n:int ->
  height:int ->
  width:int ->
  channels:int ->
  classes:int ->
  noise:float ->
  t

(** 28x28x1, 10 classes. *)
val synthetic_mnist : ?noise:float -> S4o_tensor.Prng.t -> n:int -> t

(** 32x32x3, 10 classes. *)
val synthetic_cifar10 : ?noise:float -> S4o_tensor.Prng.t -> n:int -> t

(** ImageNet-shaped; [size] defaults to 224 but can be scaled down for
    functional tests. *)
val synthetic_imagenet :
  ?noise:float -> ?size:int -> ?classes:int -> S4o_tensor.Prng.t -> n:int -> t

(** A low-dimensional two-class dataset ([\[n; 1; 1; 2\]]) for MLP tests. *)
val two_arcs : S4o_tensor.Prng.t -> n:int -> t

(** [(images, one-hot labels, integer labels)] triples of exactly
    [batch_size] examples; the final ragged batch is dropped, matching the
    fixed-shape traces lazy execution prefers (§3.4). Pass [shuffle_rng] to
    shuffle. *)
val batches :
  ?shuffle_rng:S4o_tensor.Prng.t ->
  t ->
  batch_size:int ->
  (S4o_tensor.Dense.t * S4o_tensor.Dense.t * int array) list

(** Split into (train, test) by example count. *)
val split : t -> train:int -> t * t
