(** Synthetic stand-ins for the paper's datasets (MNIST-, CIFAR-10- and
    ImageNet-shaped), per the substitution rule: throughput and scaling
    results depend on tensor shapes and class counts, not on pixel contents,
    and the learnability experiments only need a dataset a model {e can}
    learn.

    Each class [c] owns a fixed prototype image drawn from a PRNG seeded by
    [c]; an example of class [c] is its prototype plus i.i.d. Gaussian noise.
    With a signal-to-noise ratio comfortably above 1, even small models reach
    high accuracy within an epoch or two — giving tests and examples a
    learning signal to assert on — while every byte stays deterministic. *)

open S4o_tensor

type t = {
  name : string;
  images : Dense.t;  (** [\[n; h; w; c\]] *)
  labels : int array;
  classes : int;
}

let n_examples d = (Dense.shape d.images).(0)

let make_prototyped ~name ~rng ~n ~height ~width ~channels ~classes ~noise =
  let prototypes =
    Array.init classes (fun c ->
        let class_rng = Prng.create ((c * 7919) + 13) in
        Dense.rand_uniform class_rng ~lo:0.0 ~hi:1.0 [| height; width; channels |])
  in
  let labels = Array.init n (fun _ -> Prng.int rng classes) in
  let image_size = height * width * channels in
  let images =
    Dense.init_flat [| n; height; width; channels |] (fun flat ->
        let i = flat / image_size and off = flat mod image_size in
        let proto = Dense.get_flat prototypes.(labels.(i)) off in
        proto +. Prng.gaussian rng ~mean:0.0 ~stddev:noise)
  in
  { name; images; labels; classes }

(** 28x28x1, 10 classes. *)
let synthetic_mnist ?(noise = 0.3) rng ~n =
  make_prototyped ~name:"synthetic-mnist" ~rng ~n ~height:28 ~width:28
    ~channels:1 ~classes:10 ~noise

(** 32x32x3, 10 classes. *)
let synthetic_cifar10 ?(noise = 0.3) rng ~n =
  make_prototyped ~name:"synthetic-cifar10" ~rng ~n ~height:32 ~width:32
    ~channels:3 ~classes:10 ~noise

(** ImageNet-shaped; [size] defaults to the real 224 but can be scaled down
    for functional tests. *)
let synthetic_imagenet ?(noise = 0.3) ?(size = 224) ?(classes = 1000) rng ~n =
  make_prototyped ~name:"synthetic-imagenet" ~rng ~n ~height:size ~width:size
    ~channels:3 ~classes ~noise

(** A low-dimensional two-moons-style dataset for MLP tests: class 0 on one
    arc, class 1 on the other, embedded as [\[n; 2\]] feature vectors. *)
let two_arcs rng ~n =
  let labels = Array.init n (fun i -> i mod 2) in
  let images =
    Dense.init [| n; 1; 1; 2 |] (fun idx ->
        let i = idx.(0) and d = idx.(3) in
        let theta = Prng.uniform rng ~lo:0.0 ~hi:Float.pi in
        let noise = Prng.gaussian rng ~mean:0.0 ~stddev:0.1 in
        if labels.(i) = 0 then
          (if d = 0 then Float.cos theta else Float.sin theta) +. noise
        else
          (if d = 0 then 1.0 -. Float.cos theta else 0.5 -. Float.sin theta)
          +. noise)
  in
  { name = "two-arcs"; images; labels; classes = 2 }

(** {1 Batching} *)

(** [(images, one-hot labels, integer labels)] triples. Drops the final
    ragged batch, as the paper's fixed-shape XLA traces require (§3.4: lazy
    tracing "works best when the computation is done repeatedly over the same
    constant tensor dimensions"). *)
let batches ?shuffle_rng d ~batch_size =
  if batch_size <= 0 then invalid_arg "Dataset.batches: batch_size must be positive";
  let n = n_examples d in
  let order =
    match shuffle_rng with
    | Some rng -> Prng.permutation rng n
    | None -> Array.init n Fun.id
  in
  let shape = Dense.shape d.images in
  let image_size = Shape.numel shape / n in
  let n_batches = n / batch_size in
  List.init n_batches (fun b ->
      let idxs = Array.init batch_size (fun i -> order.((b * batch_size) + i)) in
      let images =
        Dense.init_flat
          [| batch_size; shape.(1); shape.(2); shape.(3) |]
          (fun flat ->
            let i = flat / image_size and off = flat mod image_size in
            Dense.get_flat d.images ((idxs.(i) * image_size) + off))
      in
      let labels = Array.map (fun i -> d.labels.(i)) idxs in
      let one_hot =
        Dense.one_hot ~classes:d.classes
          (Dense.of_array [| batch_size |] (Array.map float_of_int labels))
      in
      (images, one_hot, labels))

(** Split into train/test by example count. *)
let split d ~train =
  let n = n_examples d in
  if train <= 0 || train >= n then invalid_arg "Dataset.split";
  let shape = Dense.shape d.images in
  let image_size = Shape.numel shape / n in
  let take start count =
    {
      d with
      images =
        Dense.init_flat
          [| count; shape.(1); shape.(2); shape.(3) |]
          (fun flat -> Dense.get_flat d.images ((start * image_size) + flat));
      labels = Array.sub d.labels start count;
    }
  in
  (take 0 train, take train (n - train))
