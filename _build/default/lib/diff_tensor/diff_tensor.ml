(** Reverse-mode automatic differentiation over an arbitrary Tensor backend.

    This is the third AD mechanism in the platform (after the scalar runtime
    AD in [S4o_core] and the compile-time MSIL transform in [S4o_sil]) and
    the one the neural-network library trains with. It is a functor over
    {!S4o_tensor.Backend_intf.S}, which makes the paper's decoupling claim
    concrete: the same differentiation code runs unchanged over the naive,
    eager, and lazy Tensor implementations — on the lazy backend, the whole
    forward+backward computation is {e recorded into one trace} and compiled
    as a single fused XLA program.

    The tape is dynamic (define-by-run, like the runtimes of §6's related
    work); each recorded entry knows how to push its adjoint into its
    parents. Gradients of broadcasts reduce back via [unbroadcast]. *)

module Make (B : S4o_tensor.Backend_intf.S) = struct
  type t = {
    id : int;
    value : B.t;
    mutable adj : B.t option;
    ctx : ctx option;
  }

  and entry = { node : t; push : B.t -> unit }

  and ctx = { mutable tape : entry list (* most recent first *) }

  let new_ctx () = { tape = [] }
  let value v = v.value
  let shape v = B.shape v.value
  let adjoint v = v.adj

  (** Overwrite a variable's accumulated adjoint — used by gradient
      post-processing such as clip-by-global-norm. *)
  let set_adjoint v g = v.adj <- Some g

  let counter = ref 0

  let fresh ctx value =
    incr counter;
    { id = !counter; value; adj = None; ctx }

  let const value = fresh None value

  (** A tracked variable: gradients will be accumulated for it. *)
  let param ctx value =
    let v = fresh (Some ctx) value in
    (* Parameters appear on the tape with no parents so [backward] can seed
       and find them; their push is a no-op. *)
    ctx.tape <- { node = v; push = (fun _ -> ()) } :: ctx.tape;
    v

  let merge_ctx a b =
    match (a.ctx, b.ctx) with
    | Some ca, Some cb ->
        if ca != cb then
          invalid_arg "Diff_tensor: mixing variables from two tapes";
        Some ca
    | (Some _ as s), None | None, (Some _ as s) -> s
    | None, None -> None

  (* Constants (no tape) receive no adjoint: skipping them both keeps
     semantics tidy and avoids real work — e.g. the conv backward-input
     kernel is never run for a constant input batch. *)
  let accumulate v contrib =
    match v.ctx with
    | None -> ()
    | Some _ -> (
        match v.adj with
        | None -> v.adj <- Some contrib
        | Some a -> v.adj <- Some (B.add a contrib))

  (* Record a result with a pullback that receives the result's adjoint. *)
  let record ctx value pull =
    match ctx with
    | None -> fresh None value
    | Some c ->
        let v = fresh ctx value in
        c.tape <- { node = v; push = pull } :: c.tape;
        v

  let unary a value pull = record a.ctx value pull

  let binary a b value pull = record (merge_ctx a b) value pull

  (** {1 Arithmetic (broadcasting, with [unbroadcast] adjoints)} *)

  let add a b =
    binary a b (B.add a.value b.value) (fun g ->
        accumulate a (B.unbroadcast g (shape a));
        accumulate b (B.unbroadcast g (shape b)))

  let sub a b =
    binary a b (B.sub a.value b.value) (fun g ->
        accumulate a (B.unbroadcast g (shape a));
        accumulate b (B.unbroadcast (B.neg g) (shape b)))

  let mul a b =
    binary a b (B.mul a.value b.value) (fun g ->
        accumulate a (B.unbroadcast (B.mul g b.value) (shape a));
        accumulate b (B.unbroadcast (B.mul g a.value) (shape b)))

  let div a b =
    binary a b (B.div a.value b.value) (fun g ->
        accumulate a (B.unbroadcast (B.div g b.value) (shape a));
        let gb = B.neg (B.div (B.mul g a.value) (B.mul b.value b.value)) in
        accumulate b (B.unbroadcast gb (shape b)))

  let neg a = unary a (B.neg a.value) (fun g -> accumulate a (B.neg g))

  let scale c a =
    unary a (B.scale c a.value) (fun g -> accumulate a (B.scale c g))

  let add_scalar c a =
    unary a (B.add_scalar c a.value) (fun g -> accumulate a g)

  (** {1 Nonlinearities} *)

  let relu a =
    unary a (B.relu a.value) (fun g -> accumulate a (B.relu_grad a.value g))

  let sigmoid a =
    let s = B.sigmoid a.value in
    unary a s (fun g ->
        (* s * (1 - s) * g *)
        let one_minus = B.add_scalar 1.0 (B.neg s) in
        accumulate a (B.mul g (B.mul s one_minus)))

  let tanh a =
    let th = B.tanh a.value in
    unary a th (fun g ->
        let one_minus_sq = B.add_scalar 1.0 (B.neg (B.mul th th)) in
        accumulate a (B.mul g one_minus_sq))

  let exp a =
    let e = B.exp a.value in
    unary a e (fun g -> accumulate a (B.mul g e))

  let log a =
    unary a (B.log a.value) (fun g -> accumulate a (B.div g a.value))

  let sqrt a =
    let r = B.sqrt a.value in
    unary a r (fun g -> accumulate a (B.div g (B.scale 2.0 r)))

  (** {1 Shape} *)

  let reshape a s =
    let orig = shape a in
    unary a (B.reshape a.value s) (fun g -> accumulate a (B.reshape g orig))

  let transpose a =
    unary a (B.transpose a.value) (fun g -> accumulate a (B.transpose g))

  let broadcast_to a s =
    unary a (B.broadcast_to a.value s) (fun g ->
        accumulate a (B.unbroadcast g (shape a)))

  (** {1 Reductions} *)

  let sum_all a =
    unary a (B.sum_all a.value) (fun g ->
        accumulate a (B.broadcast_to g (shape a)))

  let mean_all a =
    let n = float_of_int (S4o_tensor.Shape.numel (shape a)) in
    unary a (B.mean_all a.value) (fun g ->
        accumulate a (B.scale (1.0 /. n) (B.broadcast_to g (shape a))))

  let sum_axes ?keep_dims a axes =
    let orig = shape a in
    unary a (B.sum_axes ?keep_dims a.value axes) (fun g ->
        (* adjoint of a sum: broadcast back, via the keep-dims shape *)
        let kept = S4o_tensor.Shape.reduce_axes ~keep_dims:true orig axes in
        accumulate a (B.broadcast_to (B.reshape g kept) orig))

  (** {1 Linear algebra and NN ops} *)

  let matmul a b =
    binary a b (B.matmul a.value b.value) (fun g ->
        accumulate a (B.matmul g (B.transpose b.value));
        accumulate b (B.matmul (B.transpose a.value) g))

  let batch_matmul a b =
    binary a b
      (B.batch_matmul a.value b.value)
      (fun g ->
        accumulate a (B.batch_matmul g (B.batch_transpose b.value));
        accumulate b (B.batch_matmul (B.batch_transpose a.value) g))

  let batch_transpose a =
    unary a (B.batch_transpose a.value) (fun g ->
        accumulate a (B.batch_transpose g))

  let conv2d ?stride ~padding x f =
    binary x f
      (B.conv2d ?stride ~padding x.value f.value)
      (fun g ->
        accumulate x
          (B.conv2d_backward_input ?stride ~padding ~input_shape:(shape x)
             f.value g);
        accumulate f
          (B.conv2d_backward_filter ?stride ~padding ~filter_shape:(shape f)
             x.value g))

  let avg_pool2d ~size ~stride a =
    unary a
      (B.avg_pool2d ~size ~stride a.value)
      (fun g ->
        accumulate a
          (B.avg_pool2d_backward ~size ~stride ~input_shape:(shape a) g))

  let max_pool2d ~size ~stride a =
    unary a
      (B.max_pool2d ~size ~stride a.value)
      (fun g -> accumulate a (B.max_pool2d_backward ~size ~stride a.value g))

  (** Fused numerically-stable softmax cross-entropy against one-hot labels:
      the gradient is the classic [(softmax(z) - y)/n] — one kernel, no
      O(classes) zero materialization. *)
  let softmax_cross_entropy ~labels logits =
    let log_probs = B.log_softmax logits.value in
    let n = float_of_int (shape logits).(0) in
    let nll =
      B.scale (-1.0 /. n) (B.sum_all (B.mul labels log_probs))
    in
    unary logits nll (fun g ->
        let probs = B.softmax logits.value in
        let diff = B.scale (1.0 /. n) (B.sub probs labels) in
        accumulate logits (B.mul (B.broadcast_to g (shape logits)) diff))

  (** Mean-squared-error loss against a constant target. *)
  let mse ~target pred =
    let d = B.sub pred.value target in
    let n = float_of_int (S4o_tensor.Shape.numel (shape pred)) in
    unary pred
      (B.scale (1.0 /. n) (B.sum_all (B.mul d d)))
      (fun g ->
        let gp = B.scale (2.0 /. n) (B.mul (B.broadcast_to g (shape pred)) d) in
        accumulate pred gp)

  (** {1 Backward} *)

  (** [backward ctx loss] seeds the (scalar) loss adjoint with 1 and runs the
      tape once in reverse. Parameter adjoints are then available via
      {!adjoint}. *)
  let backward ctx loss =
    (match loss.ctx with
    | Some c when c == ctx -> ()
    | Some _ | None ->
        invalid_arg "Diff_tensor.backward: loss not recorded on this tape");
    loss.adj <-
      Some (B.broadcast_to (B.of_dense (S4o_tensor.Dense.scalar 1.0)) (shape loss));
    List.iter
      (fun e -> match e.node.adj with None -> () | Some g -> e.push g)
      ctx.tape

  (** Gradient with respect to a single input tensor: builds a one-off tape. *)
  let grad f x =
    let ctx = new_ctx () in
    let v = param ctx x in
    let loss = f v in
    backward ctx loss;
    ( value loss,
      match v.adj with
      | Some g -> g
      | None -> B.of_dense (S4o_tensor.Dense.zeros (S4o_tensor.Dense.shape (B.to_dense x))) )

  (** Number of tape entries on this context. *)
  let tape_length ctx = List.length ctx.tape
end
