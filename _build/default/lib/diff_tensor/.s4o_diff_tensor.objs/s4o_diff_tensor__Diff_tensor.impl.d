lib/diff_tensor/diff_tensor.ml: Array List S4o_tensor
