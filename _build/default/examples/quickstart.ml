(** Quickstart: the differentiable-programming core in five minutes.

    Run with: [dune exec examples/quickstart.exe] *)

let section title = Printf.printf "\n--- %s ---\n" title

(* 1. Reverse mode: gradients of ordinary scalar code. *)
let () =
  section "gradient of f(x, y) = x*y + sin(x)";
  let module R = S4o_core.Reverse in
  let f x y = R.add (R.mul x y) (R.sin x) in
  let value, (dx, dy) = R.grad2 f 2.0 3.0 in
  Printf.printf "f(2, 3)        = %.6f\n" value;
  Printf.printf "df/dx = y+cos x = %.6f (expected %.6f)\n" dx (3.0 +. cos 2.0);
  Printf.printf "df/dy = x       = %.6f\n" dy

(* 2. Forward mode: directional derivatives with dual numbers. *)
let () =
  section "forward-mode derivative of sin(x^2)";
  let module F = S4o_core.Forward in
  let f x = F.sin (F.mul x x) in
  let d = F.derivative f 1.5 in
  Printf.printf "d/dx sin(x^2) at 1.5 = %.6f (expected %.6f)\n" d
    (2.0 *. 1.5 *. cos (1.5 *. 1.5))

(* 3. Differentiable function values: the (f, JVP, VJP) bundle of Figure 3,
   with the gradient operator of Figure 2. *)
let () =
  section "differentiable function values (Figure 2/3)";
  let module D = S4o_core.Diff_fn in
  let bundle =
    D.promote_vector (fun xs ->
        (* f(x) = sum of squares *)
        Array.fold_left
          (fun acc x -> S4o_core.Reverse.add acc (S4o_core.Reverse.mul x x))
          (S4o_core.Reverse.const 0.0) xs)
  in
  let grad = D.gradient ~at:[| 1.0; 2.0; 3.0 |] bundle in
  Printf.printf "gradient(at: [1;2;3], in: sum-of-squares) = [%g; %g; %g]\n"
    grad.(0) grad.(1) grad.(2)

(* 4. Differentiation of arbitrary user-defined types: a 2-D pose manifold
   with its own tangent vector, via the Differentiable protocol (Figure 1). *)
let () =
  section "user-defined Differentiable type (Figure 1)";
  let module Pose = struct
    type t = { x : float; y : float; heading : float }

    module Tangent = struct
      type t = { dx : float; dy : float; dheading : float }

      let zero = { dx = 0.0; dy = 0.0; dheading = 0.0 }

      let add a b =
        {
          dx = a.dx +. b.dx;
          dy = a.dy +. b.dy;
          dheading = a.dheading +. b.dheading;
        }

      let sub a b =
        {
          dx = a.dx -. b.dx;
          dy = a.dy -. b.dy;
          dheading = a.dheading -. b.dheading;
        }
    end

    let move p ~along:(d : Tangent.t) =
      {
        x = p.x +. d.dx;
        y = p.y +. d.dy;
        heading = p.heading +. d.dheading;
      }
  end in
  (* "Loss" = squared distance from the origin after driving 1 unit forward;
     compute its gradient in Pose's tangent space via reverse AD. *)
  let module R = S4o_core.Reverse in
  let drive_loss xs =
    let x = xs.(0) and y = xs.(1) and h = xs.(2) in
    let x' = R.add x (R.cos h) and y' = R.add y (R.sin h) in
    R.add (R.mul x' x') (R.mul y' y')
  in
  let pose = { Pose.x = 0.5; y = -0.25; heading = 0.3 } in
  let _, g = R.grad drive_loss [| pose.Pose.x; pose.Pose.y; pose.Pose.heading |] in
  let grad_tangent = { Pose.Tangent.dx = g.(0); dy = g.(1); dheading = g.(2) } in
  (* One gradient-descent move along the manifold: scale the tangent by -lr
     using the TangentVector's own AdditiveArithmetic. *)
  let lr = 0.1 in
  let scaled =
    (* -lr * g, built from zero/add/sub: 0 - (g/10 summed 1x) with lr = 0.1 *)
    let tenth =
      { Pose.Tangent.dx = lr *. grad_tangent.Pose.Tangent.dx;
        dy = lr *. grad_tangent.Pose.Tangent.dy;
        dheading = lr *. grad_tangent.Pose.Tangent.dheading }
    in
    Pose.Tangent.sub Pose.Tangent.zero (Pose.Tangent.add tenth Pose.Tangent.zero)
  in
  let updated = Pose.move pose ~along:scaled in
  Printf.printf "pose:    (%.3f, %.3f, %.3f)\n" pose.Pose.x pose.Pose.y pose.Pose.heading;
  Printf.printf "updated: (%.3f, %.3f, %.3f) after one move along -grad\n"
    updated.Pose.x updated.Pose.y updated.Pose.heading

(* 5. Higher-order differentiation, which the runtime formulation supports
   (the compile-time transform does not; S2.3). *)
let () =
  section "higher-order derivatives (S2.3 contrast)";
  let module H = S4o_core.Higher_order in
  let f = { H.apply = (fun (type a) (ops : a H.ops) (x : a) -> ops.H.mul x (ops.H.mul x (ops.H.mul x x))) } in
  (* f(x) = x^4 *)
  List.iter
    (fun n ->
      Printf.printf "d^%d/dx^%d x^4 at 2.0 = %g\n" n n (H.nth_derivative n f 2.0))
    [ 0; 1; 2; 3; 4; 5 ]

(* 6. Custom derivatives: the @derivative(of:) registration. *)
let () =
  section "custom derivative registration";
  let module R = S4o_core.Reverse in
  (* A numerically-hardened log1p with a hand-written derivative. *)
  let log1p = R.custom_unary ~f:Float.log1p ~df:(fun x -> 1.0 /. (1.0 +. x)) in
  let v, d = R.grad1 (fun x -> log1p (R.mul x x)) 0.5 in
  Printf.printf "log1p(x^2) at 0.5 = %.6f, derivative = %.6f (expected %.6f)\n"
    v d (2.0 *. 0.5 /. 1.25)
