(** The compile-time AD transformation (§2.2) end to end: build an MSIL
    function with control flow, inspect the IR, run activity analysis and
    differentiability checking, synthesize the derivative, and show that the
    synthesized code agrees with finite differences — plus the standard
    optimization passes running over the same IR.

    Run with: [dune exec examples/sil_autodiff.exe] *)

open S4o_sil
module B = Builder

(* f(x, n) = leaky_relu(x)^n computed with a loop and a branch — enough
   control flow to exercise the per-block pullback records. *)
let build () =
  let b = B.create ~name:"power_leaky" ~n_args:2 in
  let x = B.param b 0 and n = B.param b 1 in
  (* leaky = x > 0 ? x : 0.1 * x *)
  let zero = B.const b 0.0 in
  let c = B.cmp b Ir.Gt x zero in
  let tenth = B.const b 0.1 in
  let scaled = B.binary b Ir.Mul tenth x in
  let leaky = B.select b ~cond:c ~if_true:x ~if_false:scaled in
  let header = B.new_block b ~params:4 in
  (* acc, i, base, n *)
  let body = B.new_block b ~params:4 in
  let exit = B.new_block b ~params:1 in
  let one = B.const b 1.0 in
  B.br b header [| one; zero; leaky; n |];
  B.switch b header;
  let acc = B.param b 0 and i = B.param b 1 and base = B.param b 2 and nn = B.param b 3 in
  let cont = B.cmp b Ir.Lt i nn in
  B.cond_br b ~cond:cont ~if_true:(body, [| acc; i; base; nn |])
    ~if_false:(exit, [| acc |]);
  B.switch b body;
  let acc' = B.binary b Ir.Mul (B.param b 0) (B.param b 2) in
  let i' = B.binary b Ir.Add (B.param b 1) (B.const b 1.0) in
  B.br b header [| acc'; i'; B.param b 2; B.param b 3 |];
  B.switch b exit;
  B.ret b (B.param b 0);
  B.finish b

let () =
  let f = build () in
  Printf.printf "=== The MSIL function ===\n%s\n\n" (Ir.to_string f);

  (* Activity analysis *)
  let analysis = Activity.analyze ~wrt:[ 0 ] f in
  Printf.printf "=== Activity analysis (w.r.t. x) ===\n";
  Printf.printf "return is varied: %b\n" (Activity.return_is_varied f analysis);
  Printf.printf "active instructions: %d\n\n" (Activity.active_inst_count f analysis);

  (* Differentiability diagnostics *)
  let diags = Diagnostics.check ~has_derivative:(fun _ -> true) f in
  Printf.printf "=== Differentiability checking ===\n";
  List.iter (fun d -> Format.printf "%a@." Diagnostics.pp d) diags;
  if diags = [] then Printf.printf "(no diagnostics)\n";
  Printf.printf "\n";

  (* Derivative synthesis *)
  let m = Interp.create_module () in
  Interp.add m f;
  let ctx = Transform.create_ctx m in
  Printf.printf "=== Synthesized derivatives ===\n";
  List.iter
    (fun (x, n) ->
      let v, g = Transform.value_with_gradient ctx "power_leaky" [| x; n |] in
      let fd =
        let h = 1e-6 in
        (Interp.eval m f [| x +. h; n |] -. Interp.eval m f [| x -. h; n |])
        /. (2.0 *. h)
      in
      Printf.printf
        "f(%5.2f, %g) = %10.5f   df/dx (AD) = %10.5f   (finite diff %10.5f)\n" x
        n v g.(0) fd)
    [ (2.0, 3.0); (1.5, 4.0); (-2.0, 2.0); (-0.5, 3.0) ];

  (* Forward mode through the same transform *)
  let d = Transform.derivative_along ctx "power_leaky" ~at:[| 2.0; 3.0 |] ~along:[| 1.0; 0.0 |] in
  Printf.printf "\nJVP along e_x at (2, 3): %.5f (matches the VJP column above)\n" d;

  (* Optimization passes over the IR *)
  Printf.printf "\n=== Passes: constant folding + DCE ===\n";
  let simplified = Passes.simplify f in
  Printf.printf "instructions: %d before, %d after simplify\n"
    (Passes.inst_count f) (Passes.inst_count simplified);
  Printf.printf "semantics preserved: %b\n"
    (Interp.eval m f [| 1.7; 3.0 |]
    = Interp.eval m simplified [| 1.7; 3.0 |])
