(** Train the Figure 6 LeNet-5 on a synthetic MNIST-shaped dataset with the
    naive (pure-OCaml, §3.1) backend — the explicit training loop of
    Figure 7.

    Run with: [dune exec examples/lenet_mnist.exe] *)

module Bk = S4o_tensor.Naive_backend
module Models = S4o_nn.Models.Make (Bk)
module Train = S4o_nn.Train.Make (Bk)
module Optimizer = S4o_nn.Optimizer.Make (Bk)

let () =
  let rng = S4o_tensor.Prng.create 42 in
  let dataset = S4o_data.Dataset.synthetic_mnist rng ~n:640 ~noise:0.25 in
  let train_set, test_set = S4o_data.Dataset.split dataset ~train:512 in
  let batches = S4o_data.Dataset.batches train_set ~batch_size:32 ~shuffle_rng:rng in
  let model = Models.lenet rng in
  Printf.printf "LeNet-5: %d parameters, %d training examples\n%!"
    (Models.L.param_count model)
    (S4o_data.Dataset.n_examples train_set);
  let opt = Optimizer.adam ~lr:1e-3 model in
  let _ =
    Train.fit ~epochs:4
      ~log:(fun epoch stats ->
        Printf.printf "epoch %d: loss=%.4f train-acc=%.1f%%\n%!" epoch
          stats.Train.mean_loss
          (100.0 *. stats.Train.accuracy))
      model opt batches
  in
  (* Held-out evaluation: run the forward pass on the test set. *)
  let test_batches = S4o_data.Dataset.batches test_set ~batch_size:32 in
  let correct, total =
    List.fold_left
      (fun (c, t) (images, _, labels) ->
        let ctx = Models.L.D.new_ctx () in
        let logits =
          Models.L.apply model ctx (Models.L.D.const (Bk.of_dense images))
        in
        let acc = Train.accuracy_of_logits (Models.L.D.value logits) labels in
        (c + int_of_float (acc *. float_of_int (Array.length labels)), t + Array.length labels))
      (0, 0) test_batches
  in
  Printf.printf "test accuracy: %.1f%% (%d/%d)\n"
    (100.0 *. float_of_int correct /. float_of_int total) correct total
