(** On-device personalization (§5.1.3): train a global spline on aggregated
    data, then fine-tune it on user-local data with backtracking line search,
    and report what the four mobile runtime styles of Table 4 would cost.

    Run with: [dune exec examples/spline_mobile.exe] *)

module Sp = S4o_spline.Spline
module Mr = S4o_mobile.Mobile_runtime

let () =
  let rng = S4o_tensor.Prng.create 2026 in
  Printf.printf "Fine-tuning the personalization spline (for real)...\n%!";
  let workload, personalized, stats =
    Mr.run_fine_tuning ~n_knots:48 ~n_data:1200 ~user_shift:0.35 rng
  in
  Printf.printf
    "converged=%b after %d line-search iterations (%d f-evals, %d grad-evals), \
     final loss %.2e\n\n"
    stats.S4o_spline.Line_search.converged workload.Mr.iterations
    workload.Mr.function_evals workload.Mr.gradient_evals
    stats.S4o_spline.Line_search.final_loss;
  (* Show the personalized curve against the user's ground truth. *)
  Printf.printf "%8s %12s %12s\n" "x" "personalized" "user truth";
  List.iter
    (fun x ->
      Printf.printf "%8.2f %12.4f %12.4f\n" x (Sp.eval personalized x)
        (Sp.global_curve x +. 0.35))
    [ 0.25; 0.75; 1.25; 1.75; 2.25; 2.75 ];
  Printf.printf "\nProjected on-device cost of this fine-tuning run (Table 4 styles):\n";
  Printf.printf "%-34s %10s %10s %10s\n" "runtime" "train ms" "mem MB" "binary MB";
  List.iter
    (fun style ->
      let r = Mr.simulate style workload in
      Printf.printf "%-34s %10.0f %10.1f %10.1f\n" (Mr.style_name style)
        r.Mr.train_ms r.Mr.memory_mb r.Mr.binary_mb)
    Mr.all_styles
