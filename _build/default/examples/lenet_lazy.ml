(** The same LeNet training as [lenet_mnist.ml], switched to the LazyTensor
    backend — "end-users can switch between the two implementations by
    specifying a device" (§3.3). The model/optimizer/training code is
    identical (it is the same functor); only the backend module changes.

    The run prints the LazyTensor runtime's statistics: how many traces were
    cut, how often the XLA-program cache hit, and the simulated time the
    accelerator model charged.

    Run with: [dune exec examples/lenet_lazy.exe] *)

let engine = S4o_device.Engine.create S4o_device.Device_spec.gtx1080
let rt = S4o_lazy.Lazy_runtime.create engine

module Bk = S4o_lazy.Lazy_backend.Make (struct
  let rt = rt
end)

module Models = S4o_nn.Models.Make (Bk)
module Train = S4o_nn.Train.Make (Bk)
module Optimizer = S4o_nn.Optimizer.Make (Bk)

let () =
  let rng = S4o_tensor.Prng.create 42 in
  let dataset = S4o_data.Dataset.synthetic_mnist rng ~n:256 ~noise:0.25 in
  let batches = S4o_data.Dataset.batches dataset ~batch_size:32 in
  let model = Models.lenet rng in
  (* Momentum SGD rather than Adam: Adam's per-step bias-correction constants
     are baked into the trace as attributes, so every step's trace has a new
     fingerprint and misses the program cache — the same constant-embedding
     recompilation hazard §3.4 describes for shape changes. Momentum's
     constants are step-independent, so after warmup every step hits. *)
  let opt = Optimizer.sgd ~momentum:0.9 ~lr:0.05 model in
  let _ =
    Train.fit ~epochs:2
      (* The training loop cuts the trace after each optimizer step — the
         automatic LazyTensorBarrier of §3.4. *)
      ~after_step:(fun tensors -> Bk.barrier tensors)
      ~log:(fun epoch stats ->
        Printf.printf "epoch %d: loss=%.4f acc=%.1f%%\n%!" epoch
          stats.Train.mean_loss
          (100.0 *. stats.Train.accuracy))
      model opt batches
  in
  let stats = S4o_lazy.Lazy_runtime.stats rt in
  Printf.printf "\nLazyTensor runtime statistics:\n";
  Printf.printf "  traces cut:        %d\n" stats.S4o_lazy.Lazy_runtime.traces_cut;
  Printf.printf "  ops traced:        %d\n" stats.S4o_lazy.Lazy_runtime.ops_traced;
  Printf.printf "  largest trace:     %d ops\n" stats.S4o_lazy.Lazy_runtime.largest_trace;
  Printf.printf "  JIT compiles:      %d\n" stats.S4o_lazy.Lazy_runtime.cache_misses;
  Printf.printf "  program-cache hits:%d\n" stats.S4o_lazy.Lazy_runtime.cache_hits;
  Printf.printf "  simulated host:    %.3f s\n" (S4o_device.Engine.host_time engine);
  Printf.printf "  simulated kernels: %d\n" (S4o_device.Engine.kernels_launched engine);
  Printf.printf
    "\nEach unique trace compiled once; every later step hit the cache and \
     paid only the re-tracing overhead (S3.4).\n"
