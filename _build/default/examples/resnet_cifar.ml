(** A scaled-down version of Table 3's workload running {e for real}: a small
    ResNet (same basic-block construction as ResNet-56, fewer/narrower
    stages) trained on synthetic CIFAR-shaped data with the LazyTensor
    backend — so the run exhibits, at executable scale, exactly the
    machinery the table measures at simulated scale: per-step re-tracing,
    one JIT compile per distinct trace, cache hits afterwards, and fused
    kernels on the simulated GPU.

    Run with: [dune exec examples/resnet_cifar.exe] *)

let engine = S4o_device.Engine.create S4o_device.Device_spec.gtx1080
let rt = S4o_lazy.Lazy_runtime.create engine

module Bk = S4o_lazy.Lazy_backend.Make (struct
  let rt = rt
end)

module M = S4o_nn.Models.Make (Bk)
module T = S4o_nn.Train.Make (Bk)
module O = S4o_nn.Optimizer.Make (Bk)

let () =
  let rng = S4o_tensor.Prng.create 9 in
  let data = S4o_data.Dataset.synthetic_cifar10 rng ~n:192 ~noise:0.25 in
  let batches = S4o_data.Dataset.batches data ~batch_size:32 ~shuffle_rng:rng in
  let cfg =
    {
      M.stem_channels = 8;
      stem_kernel = 3;
      stem_stride = 1;
      stem_pool = false;
      stage_blocks = [ 2; 2 ];
      stage_channels = [ 8; 16 ];
      bottleneck = false;
      classes = 10;
    }
  in
  let model = M.resnet rng ~in_channels:3 cfg in
  Printf.printf "small CIFAR ResNet on the lazy backend: %d parameters\n%!"
    (M.L.param_count model);
  let opt = O.sgd ~momentum:0.9 ~lr:0.03 model in
  let _ =
    T.fit ~epochs:3
      ~after_step:(fun ts -> Bk.barrier ts)
      ~log:(fun e s ->
        Printf.printf "epoch %d: loss=%.4f acc=%.1f%%\n%!" e s.T.mean_loss
          (100.0 *. s.T.accuracy))
      model opt batches
  in
  let st = S4o_lazy.Lazy_runtime.stats rt in
  Printf.printf
    "\nLazyTensor: %d traces cut, %d JIT compiles, %d cache hits, largest \
     trace %d ops\n"
    st.S4o_lazy.Lazy_runtime.traces_cut st.S4o_lazy.Lazy_runtime.cache_misses
    st.S4o_lazy.Lazy_runtime.cache_hits st.S4o_lazy.Lazy_runtime.largest_trace;
  Printf.printf
    "simulated GPU: %d kernels launched, %.3f s device busy, %.3f s host\n"
    (S4o_device.Engine.kernels_launched engine)
    (S4o_device.Engine.device_busy_time engine)
    (S4o_device.Engine.host_time engine)
