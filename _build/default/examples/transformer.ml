(** A tiny transformer sequence classifier, built from the platform's batched
    matmuls, differentiable softmax/layer-norm compositions, and the same
    functorized training loop as every other model (§4.2's transformer
    motivation, made concrete). Trains on a synthetic sequence-classification
    task where each class has a characteristic temporal pattern.

    Run with: [dune exec examples/transformer.exe] *)

module Bk = S4o_tensor.Naive_backend
module A = S4o_nn.Attention.Make (Bk)
module T = S4o_nn.Train.Make (Bk)
module O = S4o_nn.Optimizer.Make (Bk)

let seq_len = 8
let d_model = 12
let classes = 4

let () =
  let rng = S4o_tensor.Prng.create 7 in
  (* sequences: [n; seq_len; 1; d_model] with class-specific prototypes *)
  let data =
    S4o_data.Dataset.make_prototyped ~name:"synthetic-sequences" ~rng ~n:320
      ~height:seq_len ~width:1 ~channels:d_model ~classes ~noise:0.3
  in
  let train_set, test_set = S4o_data.Dataset.split data ~train:256 in
  let batches = S4o_data.Dataset.batches train_set ~batch_size:32 ~shuffle_rng:rng in
  let model = A.tiny_transformer rng ~seq_len ~d_model ~d_ff:24 ~blocks:2 ~classes in
  Printf.printf "%d-block transformer, %d parameters\n%!" 2 (A.L.param_count model);
  let opt = O.adam ~lr:3e-3 model in
  let _ =
    T.fit ~epochs:6
      ~log:(fun e s ->
        Printf.printf "epoch %d: loss=%.4f acc=%.1f%%\n%!" e s.T.mean_loss
          (100.0 *. s.T.accuracy))
      model opt batches
  in
  let correct, total =
    List.fold_left
      (fun (c, t) (images, _, labels) ->
        let ctx = A.L.D.new_ctx () in
        let logits = A.L.apply model ctx (A.L.D.const (Bk.of_dense images)) in
        let acc = T.accuracy_of_logits (A.L.D.value logits) labels in
        (c + int_of_float (acc *. float_of_int (Array.length labels)), t + Array.length labels))
      (0, 0)
      (S4o_data.Dataset.batches test_set ~batch_size:32)
  in
  Printf.printf "test accuracy: %.1f%% (%d/%d)\n"
    (100.0 *. float_of_int correct /. float_of_int total)
    correct total
