examples/spline_mobile.mli:
