examples/pendulum.ml: Array Printf S4o_core S4o_spline
