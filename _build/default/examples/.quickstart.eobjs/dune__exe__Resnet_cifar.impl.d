examples/resnet_cifar.ml: Printf S4o_data S4o_device S4o_lazy S4o_nn S4o_tensor
