examples/policy_gradient.ml: Array Float Printf S4o_core S4o_tensor
