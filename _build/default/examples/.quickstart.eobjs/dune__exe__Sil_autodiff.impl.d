examples/sil_autodiff.ml: Activity Array Builder Diagnostics Format Interp Ir List Passes Printf S4o_sil Transform
