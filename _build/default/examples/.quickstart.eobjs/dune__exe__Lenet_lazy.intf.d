examples/lenet_lazy.mli:
