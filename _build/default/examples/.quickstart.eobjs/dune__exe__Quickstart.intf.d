examples/quickstart.mli:
