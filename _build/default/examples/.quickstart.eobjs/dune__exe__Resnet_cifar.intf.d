examples/resnet_cifar.mli:
