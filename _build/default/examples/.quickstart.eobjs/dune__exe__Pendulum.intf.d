examples/pendulum.mli:
