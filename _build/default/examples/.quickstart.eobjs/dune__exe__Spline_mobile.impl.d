examples/spline_mobile.ml: List Printf S4o_mobile S4o_spline S4o_tensor
