examples/quickstart.ml: Array Float List Printf S4o_core
