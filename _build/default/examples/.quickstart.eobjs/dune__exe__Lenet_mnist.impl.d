examples/lenet_mnist.ml: Array List Printf S4o_data S4o_nn S4o_tensor
