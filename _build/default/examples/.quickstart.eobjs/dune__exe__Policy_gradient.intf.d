examples/policy_gradient.mli:
