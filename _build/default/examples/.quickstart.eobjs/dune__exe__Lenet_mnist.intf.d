examples/lenet_mnist.mli:
