examples/sil_autodiff.mli:
