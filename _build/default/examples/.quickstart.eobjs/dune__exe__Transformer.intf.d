examples/transformer.mli:
