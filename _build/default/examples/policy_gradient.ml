(** Reinforcement learning with the platform's AD (§5's application area:
    "two recent works used Swift for TensorFlow to assist in reinforcement
    learning research"): REINFORCE on a multi-armed bandit.

    The policy is a softmax over learnable logits; the policy-gradient
    estimator differentiates [log pi(a)] with the scalar reverse-mode tape —
    the same "ordinary code, differentiated" story as every other example.

    Run with: [dune exec examples/policy_gradient.exe] *)

module R = S4o_core.Reverse

let n_arms = 5

(* hidden reward means; arm 3 is best *)
let reward_means = [| 0.1; 0.3; 0.2; 0.9; 0.4 |]

let softmax_probs logits =
  let m = Array.fold_left Float.max Float.neg_infinity logits in
  let exps = Array.map (fun l -> Float.exp (l -. m)) logits in
  let z = Array.fold_left ( +. ) 0.0 exps in
  Array.map (fun e -> e /. z) exps

let sample_categorical rng probs =
  let u = S4o_tensor.Prng.float rng in
  let rec go i acc =
    if i = Array.length probs - 1 then i
    else begin
      let acc = acc +. probs.(i) in
      if u < acc then i else go (i + 1) acc
    end
  in
  go 0 0.0

(* log pi(action | logits) written against the AD ops, so its gradient with
   respect to the logits comes from one reverse sweep *)
let log_prob (logits : R.t array) action =
  (* log softmax: logits.(a) - log(sum exp logits) *)
  let exps = Array.map R.exp logits in
  let z = Array.fold_left R.add (R.const 0.0) exps in
  R.sub logits.(action) (R.log z)

let () =
  let rng = S4o_tensor.Prng.create 2024 in
  let logits = Array.make n_arms 0.0 in
  let lr = 0.2 in
  let episodes = 2000 in
  let reward_sum = ref 0.0 in
  Printf.printf "REINFORCE on a %d-armed bandit (best arm: %d)\n\n" n_arms 3;
  for episode = 1 to episodes do
    let probs = softmax_probs logits in
    let action = sample_categorical rng probs in
    let reward =
      reward_means.(action) +. S4o_tensor.Prng.gaussian rng ~mean:0.0 ~stddev:0.1
    in
    reward_sum := !reward_sum +. reward;
    (* baseline: running average reward *)
    let baseline = !reward_sum /. float_of_int episode in
    let advantage = reward -. baseline in
    (* gradient ascent on advantage * log pi(action) *)
    let _, grad = R.grad (fun vars -> log_prob vars action) logits in
    Array.iteri
      (fun i g -> logits.(i) <- logits.(i) +. (lr *. advantage *. g))
      grad;
    if episode mod 400 = 0 then begin
      let probs = softmax_probs logits in
      Printf.printf "episode %4d: avg reward %.3f, policy [" episode baseline;
      Array.iteri
        (fun i p -> Printf.printf "%s%.2f" (if i > 0 then "; " else "") p)
        probs;
      Printf.printf "]\n%!"
    end
  done;
  let final = softmax_probs logits in
  let best = ref 0 in
  Array.iteri (fun i p -> if p > final.(!best) then best := i) final;
  Printf.printf "\nconverged to arm %d with probability %.2f\n" !best final.(!best);
  if !best = 3 then Printf.printf "(correct: arm 3 has the highest mean reward)\n"
