(** Differentiable physics (§5's "Swift for TensorFlow has been applied to
    differentiable physics simulations"): differentiate {e through} a
    semi-implicit-Euler pendulum simulation to solve a control problem —
    find the initial angular velocity that leaves the pendulum exactly
    upright (θ = π) after one second.

    The entire simulator is ordinary scalar code written against the reverse-
    mode AD ops; the gradient of the terminal error with respect to the
    initial condition flows back through all 200 integration steps.

    Run with: [dune exec examples/pendulum.exe] *)

module R = S4o_core.Reverse

let gravity = 9.81
let length = 1.0
let dt = 0.005
let steps = 200

(* Simulate with AD-tracked state; returns the terminal angle. *)
let simulate (omega0 : R.t) : R.t =
  let rec go theta omega n =
    if n = 0 then theta
    else begin
      (* omega' = omega - (g/l) sin(theta) dt; theta' = theta + omega' dt *)
      let accel = R.scale (-.gravity /. length) (R.sin theta) in
      let omega = R.add omega (R.scale dt accel) in
      let theta = R.add theta (R.scale dt omega) in
      go theta omega (n - 1)
    end
  in
  go (R.const 0.0) omega0 steps

let () =
  let target = 2.5 in
  (* Minimize the terminal-angle error with the platform's backtracking line
     search (the same optimizer the mobile spline uses), with gradients from
     reverse AD through the simulator. *)
  let loss_grad w =
    R.grad1
      (fun omega0 ->
        let err = R.add_const (-.target) (simulate omega0) in
        R.mul err err)
      w
  in
  Printf.printf
    "Solving for the initial angular velocity that reaches theta = %.2f rad at t = 1 s\n\n"
    target;
  let solution, stats =
    S4o_spline.Line_search.minimize
      ~config:
        {
          S4o_spline.Line_search.default_config with
          S4o_spline.Line_search.grad_tolerance = 1e-8;
          max_iterations = 100;
        }
      ~f:(fun w ->
        let v, _ = loss_grad w.(0) in
        v)
      ~f_grad:(fun w ->
        let v, d = loss_grad w.(0) in
        (v, [| d |]))
      [| 3.0 |]
  in
  let omega0 = solution.(0) in
  let final, _ = R.grad1 simulate omega0 in
  Printf.printf
    "converged=%b in %d line-search iterations (%d function evals)\n"
    stats.S4o_spline.Line_search.converged stats.S4o_spline.Line_search.iterations
    stats.S4o_spline.Line_search.function_evals;
  Printf.printf
    "result: omega0 = %.6f rad/s gives terminal angle %.6f rad (target %.6f)\n"
    omega0 final target;
  Printf.printf
    "gradient flowed through %d integration steps of a plain OCaml simulator.\n"
    steps
