(** Tests for the mobile runtime models (Table 4) and the real fine-tuning
    workload behind them. *)

open S4o_tensor
module Mr = S4o_mobile.Mobile_runtime

(* a small, fast workload for unit tests *)
let small_workload () =
  Mr.run_fine_tuning ~n_knots:24 ~n_data:600 ~noise:0.05 ~user_shift:0.3
    (Prng.create 1)

let test_fine_tuning_converges () =
  let workload, spline, stats = small_workload () in
  Test_util.check_true "converged" stats.S4o_spline.Line_search.converged;
  Test_util.check_true "did some work" (workload.Mr.iterations > 3);
  (* personalization learned the user's shift *)
  let err =
    Float.abs
      (S4o_spline.Spline.eval spline 1.5
      -. (S4o_spline.Spline.global_curve 1.5 +. 0.3))
  in
  Test_util.check_true "tracks the shifted curve" (err < 0.1)

let test_workload_measured_not_modeled () =
  let workload, _, stats = small_workload () in
  Test_util.check_int "iterations from optimizer"
    stats.S4o_spline.Line_search.iterations workload.Mr.iterations;
  Test_util.check_int "fevals from optimizer"
    stats.S4o_spline.Line_search.function_evals workload.Mr.function_evals;
  Test_util.check_true "flops instrumented"
    (workload.Mr.flops_per_gradient_eval > workload.Mr.flops_per_function_eval)

let test_simulation_orderings () =
  let workload, _, _ = small_workload () in
  let report style = Mr.simulate style workload in
  let mobile = report Mr.Tf_mobile in
  let lite = report Mr.Tf_lite in
  let fused = report Mr.Tf_lite_fused in
  let s4o = report Mr.S4o_aot in
  (* Table 4's qualitative claims *)
  Test_util.check_true "TF Mobile is slowest by far"
    (mobile.Mr.train_ms > 5.0 *. lite.Mr.train_ms);
  Test_util.check_true "fused custom op is fastest"
    (fused.Mr.train_ms < s4o.Mr.train_ms && fused.Mr.train_ms < lite.Mr.train_ms);
  Test_util.check_true "S4O beats standard TF Lite"
    (s4o.Mr.train_ms < lite.Mr.train_ms);
  Test_util.check_true "S4O has the lowest memory"
    (List.for_all
       (fun r -> s4o.Mr.memory_mb <= r.Mr.memory_mb)
       [ mobile; lite; fused ]);
  Test_util.check_true "TF Lite binaries are smallest"
    (lite.Mr.binary_mb < s4o.Mr.binary_mb && s4o.Mr.binary_mb < mobile.Mr.binary_mb)

let test_simulation_scales_with_work () =
  let workload, _, _ = small_workload () in
  let doubled =
    { workload with Mr.function_evals = workload.Mr.function_evals * 2;
      gradient_evals = workload.Mr.gradient_evals * 2 }
  in
  List.iter
    (fun style ->
      let t1 = (Mr.simulate style workload).Mr.train_ms in
      let t2 = (Mr.simulate style doubled).Mr.train_ms in
      Test_util.check_close ~eps:1e-6 "time scales linearly" (2.0 *. t1) t2)
    Mr.all_styles

let test_all_fields_positive () =
  let workload, _, _ = small_workload () in
  List.iter
    (fun style ->
      let r = Mr.simulate style workload in
      Test_util.check_true "positive time" (r.Mr.train_ms > 0.0);
      Test_util.check_true "positive memory" (r.Mr.memory_mb > 0.0);
      Test_util.check_true "positive binary" (r.Mr.binary_mb > 0.0))
    Mr.all_styles

let test_style_names_distinct () =
  let names = List.map Mr.style_name Mr.all_styles in
  Test_util.check_int "four distinct styles" 4
    (List.length (List.sort_uniq compare names))

let suite =
  let tc = Alcotest.test_case in
  [
    ( "mobile.runtime",
      [
        tc "fine-tuning converges for real" `Quick test_fine_tuning_converges;
        tc "workload is measured" `Quick test_workload_measured_not_modeled;
        tc "Table 4 orderings" `Quick test_simulation_orderings;
        tc "time scales with work" `Quick test_simulation_scales_with_work;
        tc "fields positive" `Quick test_all_fields_positive;
        tc "style names" `Quick test_style_names_distinct;
      ] );
  ]
