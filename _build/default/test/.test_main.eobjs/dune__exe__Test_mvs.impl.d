test/test_mvs.ml: Alcotest Array Dense Float Gen List Prng QCheck S4o_mvs S4o_tensor Test_util
