test/test_nn.ml: Alcotest Array Convolution Dense Filename Float Fun List Naive_backend Prng S4o_data S4o_nn S4o_tensor Sys Test_util
