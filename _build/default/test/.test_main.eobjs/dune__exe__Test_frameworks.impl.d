test/test_frameworks.ml: Alcotest Float List S4o_device S4o_frameworks S4o_ops S4o_tensor S4o_xla Test_util
