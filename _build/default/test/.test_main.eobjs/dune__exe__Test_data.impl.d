test/test_data.ml: Alcotest Array Dense List Prng S4o_data S4o_tensor Test_util
