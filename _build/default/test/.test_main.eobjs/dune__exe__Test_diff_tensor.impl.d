test/test_diff_tensor.ml: Alcotest Backend_intf Convolution Dense Naive_backend Prng QCheck S4o_device S4o_diff_tensor S4o_eager S4o_lazy S4o_tensor Test_util
