test/test_spline.ml: Alcotest Array Float List Prng S4o_core S4o_spline S4o_tensor Test_util
