test/test_xla.ml: Alcotest Array Convolution Dense Hashtbl List Prng QCheck S4o_device S4o_ops S4o_tensor S4o_xla String Test_util
