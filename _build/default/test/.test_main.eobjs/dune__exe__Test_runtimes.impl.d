test/test_runtimes.ml: Alcotest Backend_intf Dense List Naive_backend Prng QCheck S4o_device S4o_eager S4o_lazy S4o_tensor S4o_xla Test_util
