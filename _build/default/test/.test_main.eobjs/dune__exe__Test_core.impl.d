test/test_core.ml: Alcotest Array Dense Float List QCheck S4o_core S4o_tensor Test_util
