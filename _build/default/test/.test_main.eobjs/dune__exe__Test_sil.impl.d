test/test_sil.ml: Activity Alcotest Array Builder Codegen Diagnostics Float Interp Ir List Parser Passes QCheck S4o_sil String Test_util Transform
