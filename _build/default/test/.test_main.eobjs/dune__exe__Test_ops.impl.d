test/test_ops.ml: Alcotest Convolution Dense List Prng QCheck S4o_device S4o_ops S4o_tensor Shape Test_util
