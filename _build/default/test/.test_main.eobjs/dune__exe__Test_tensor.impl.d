test/test_tensor.ml: Alcotest Array Convolution Dense Float Fun Gen List Prng QCheck S4o_tensor Shape Test_util
