test/test_device.ml: Alcotest S4o_device Test_util
