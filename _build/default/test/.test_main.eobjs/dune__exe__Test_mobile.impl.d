test/test_mobile.ml: Alcotest Float List Prng S4o_mobile S4o_spline S4o_tensor Test_util
