test/test_util.ml: Alcotest Array QCheck QCheck_alcotest S4o_tensor
