test/test_integration.ml: Alcotest Array Backend_intf Dense List Naive_backend Prng S4o_core S4o_data S4o_device S4o_eager S4o_lazy S4o_mobile S4o_nn S4o_sil S4o_tensor Test_util
