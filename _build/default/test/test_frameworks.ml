(** Tests for the framework execution-strategy models (Tables 2–3): all
    strategies score the same step graph, so the differences below are
    exactly the mechanisms the paper attributes them to. *)

module Strategy = S4o_frameworks.Strategy
module Spec = S4o_device.Device_spec
module Hlo = S4o_xla.Hlo
module C = S4o_ops.Catalog

(* A small conv-net-ish step graph shared by all tests. *)
let step_graph () =
  let node op inputs =
    Hlo.op ~name:op.C.name ~attrs:op.C.attrs ~shape:op.C.out_shape
      ~info:op.C.info ~inputs ~kernel:op.C.kernel ()
  in
  let x = Hlo.param ~index:0 ~shape:[| 8; 16; 16; 3 |] in
  let f = Hlo.param ~index:1 ~shape:[| 3; 3; 3; 8 |] in
  let b = Hlo.param ~index:2 ~shape:[| 8 |] in
  let conv =
    node (C.conv2d ~padding:S4o_tensor.Convolution.Same [| 8; 16; 16; 3 |] [| 3; 3; 3; 8 |]) [ x; f ]
  in
  let biased = node (C.add [| 8; 16; 16; 8 |] [| 8 |]) [ conv; b ] in
  let act = node (C.relu [| 8; 16; 16; 8 |]) [ biased ] in
  let pooled = node (C.avg_pool2d ~size:(2, 2) ~stride:(2, 2) [| 8; 16; 16; 8 |]) [ act ] in
  Hlo.graph_of_outputs [ pooled ]

let gpu = Spec.gtx1080

let test_staged_strategies_have_no_per_op_host () =
  let g = step_graph () in
  let tf = Strategy.step_time Strategy.tf_graph_like ~device:gpu ~graph:g in
  Test_util.check_close "only the fixed per-step cost"
    Strategy.tf_graph_like.Strategy.per_step_host tf.Strategy.host_seconds

let test_eager_host_scales_with_ops () =
  let g = step_graph () in
  let e = Strategy.step_time Strategy.s4o_eager ~device:gpu ~graph:g in
  (* 4 compute nodes x per-op + per-step *)
  Test_util.check_close "per-op host cost"
    ((4.0 *. Strategy.s4o_eager.Strategy.per_op_host)
    +. Strategy.s4o_eager.Strategy.per_step_host)
    e.Strategy.host_seconds

let test_fused_strategies_use_fewer_kernels () =
  let g = step_graph () in
  let lazy_ = Strategy.step_time Strategy.s4o_lazy ~device:gpu ~graph:g in
  let eager = Strategy.step_time Strategy.s4o_eager ~device:gpu ~graph:g in
  Test_util.check_true "fusion reduces kernel count"
    (lazy_.Strategy.kernels < eager.Strategy.kernels)

let test_step_is_max_of_host_and_device () =
  let g = step_graph () in
  List.iter
    (fun s ->
      let b = Strategy.step_time s ~device:gpu ~graph:g in
      Test_util.check_close "max semantics"
        (Float.max b.Strategy.host_seconds b.Strategy.device_seconds)
        b.Strategy.step_seconds)
    [ Strategy.s4o_eager; Strategy.s4o_lazy; Strategy.pytorch_like;
      Strategy.tf_graph_like; Strategy.jax_like ]

let test_kernel_efficiency_scales_device_time () =
  let g = step_graph () in
  let base = Strategy.step_time Strategy.s4o_lazy ~device:gpu ~graph:g in
  let slower =
    Strategy.step_time
      { Strategy.s4o_lazy with Strategy.kernel_efficiency = 2.0 }
      ~device:gpu ~graph:g
  in
  Test_util.check_close "efficiency multiplies device time"
    (2.0 *. base.Strategy.device_seconds)
    slower.Strategy.device_seconds

let test_throughput () =
  let b =
    { Strategy.host_seconds = 0.1; device_seconds = 0.2; step_seconds = 0.2; kernels = 1 }
  in
  Test_util.check_close "batch / step" 640.0 (Strategy.throughput ~batch:128 b)

let test_table3_orderings_hold () =
  (* the Table 3 shape needs a realistically deep graph: with many small ops
     the eager per-op dispatch dominates while lazy's cheaper tracing plus
     fusion wins. (On very small traces eager can actually win — the §3.1
     rationale for keeping the naive tensor around.) *)
  let node op inputs =
    Hlo.op ~name:op.C.name ~attrs:op.C.attrs ~shape:op.C.out_shape
      ~info:op.C.info ~inputs ~kernel:op.C.kernel ()
  in
  let x = ref (Hlo.param ~index:0 ~shape:[| 64 |]) in
  for _ = 1 to 60 do
    x := node (C.relu [| 64 |]) [ !x ]
  done;
  let g = Hlo.graph_of_outputs [ !x ] in
  let time s = (Strategy.step_time s ~device:gpu ~graph:g).Strategy.step_seconds in
  Test_util.check_true "eager slower than lazy"
    (time Strategy.s4o_eager > time Strategy.s4o_lazy);
  Test_util.check_true "eager slower than graph mode"
    (time Strategy.s4o_eager > time Strategy.tf_graph_like)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "frameworks.strategy",
      [
        tc "staged: no per-op host" `Quick test_staged_strategies_have_no_per_op_host;
        tc "eager: per-op host" `Quick test_eager_host_scales_with_ops;
        tc "fusion reduces kernels" `Quick test_fused_strategies_use_fewer_kernels;
        tc "step = max(host, device)" `Quick test_step_is_max_of_host_and_device;
        tc "kernel efficiency" `Quick test_kernel_efficiency_scales_device_time;
        tc "throughput math" `Quick test_throughput;
        tc "table 3 orderings" `Quick test_table3_orderings_hold;
      ] );
  ]
