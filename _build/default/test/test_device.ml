(** Tests for the simulated-accelerator substrate: op cost metadata, the
    roofline cost model, the asynchronous engine clocks (§3.2's pipeline),
    and the data-parallel cluster model (Table 1's scaling machinery). *)

module Op = S4o_device.Op_info
module Spec = S4o_device.Device_spec
module Engine = S4o_device.Engine
module Cluster = S4o_device.Cluster

(* {1 Op_info} *)

let test_op_info_elementwise () =
  let op = Op.elementwise "add" ~inputs:[ [| 4; 4 |]; [| 4; 4 |] ] ~output:[| 4; 4 |] () in
  Test_util.check_int "flops = numel" 16 op.Op.flops;
  Test_util.check_int "bytes in" (2 * 64) op.Op.bytes_in;
  Test_util.check_int "bytes out" 64 op.Op.bytes_out

let test_op_info_matmul () =
  let op = Op.matmul ~m:2 ~k:3 ~n:4 in
  Test_util.check_int "2mkn flops" 48 op.Op.flops;
  Test_util.check_true "contraction kind" (op.Op.kind = Op.Contraction)

let test_op_info_fused () =
  let a = Op.elementwise "a" ~inputs:[ [| 8 |] ] ~output:[| 8 |] () in
  let b = Op.elementwise "b" ~inputs:[ [| 8 |] ] ~output:[| 8 |] () in
  let f = Op.fused ~members:[ a; b ] ~external_in_bytes:32 ~external_out_bytes:32 in
  Test_util.check_int "fused flops sum" 16 f.Op.flops;
  Test_util.check_int "fused external bytes only" 32 f.Op.bytes_in;
  Test_util.check_true "fused kind" (f.Op.kind = Op.Fused 2)

(* {1 Roofline} *)

let tiny_spec =
  {
    Spec.name = "test";
    sustained_flops = 100.0;
    elementwise_flops = 10.0;
    mem_bandwidth = 1000.0;
    kernel_launch = 0.5;
    memory_capacity = 1024;
  }

let test_roofline_compute_bound () =
  (* contraction: 1000 flops / 100 = 10s; memory 100/1000 = 0.1s -> compute *)
  let op =
    { Op.name = "mm"; kind = Op.Contraction; flops = 1000; bytes_in = 50; bytes_out = 50 }
  in
  Test_util.check_close "compute bound + launch" 10.5 (Spec.kernel_time tiny_spec op)

let test_roofline_memory_bound () =
  (* elementwise: 1 flop, 10_000 bytes -> 10s memory *)
  let op =
    { Op.name = "add"; kind = Op.Elementwise; flops = 1; bytes_in = 5000; bytes_out = 5000 }
  in
  Test_util.check_close "memory bound + launch" 10.5 (Spec.kernel_time tiny_spec op)

let test_roofline_elementwise_rate () =
  (* elementwise uses the lower rate: 100 flops / 10 = 10s *)
  let op =
    { Op.name = "exp"; kind = Op.Elementwise; flops = 100; bytes_in = 1; bytes_out = 1 }
  in
  Test_util.check_close "elementwise rate" 10.5 (Spec.kernel_time tiny_spec op)

(* {1 Engine: async pipeline} *)

let cheap_op =
  { Op.name = "k"; kind = Op.Contraction; flops = 100; bytes_in = 0; bytes_out = 0 }
(* 1s on tiny_spec + 0.5 launch = 1.5s per kernel *)

let test_engine_async_dispatch () =
  let e = Engine.create tiny_spec in
  (* host runs ahead: dispatch costs no host time by itself *)
  ignore (Engine.dispatch e cheap_op);
  ignore (Engine.dispatch e cheap_op);
  Test_util.check_close "host still at 0" 0.0 (Engine.host_time e);
  Test_util.check_close "device queue = 3s" 3.0 (Engine.device_ready_at e);
  Test_util.check_close "pipeline depth" 3.0 (Engine.pipeline_depth e)

let test_engine_sync_stalls_host () =
  let e = Engine.create tiny_spec in
  ignore (Engine.dispatch e cheap_op);
  Engine.sync e;
  Test_util.check_close "host advanced to device" 1.5 (Engine.host_time e);
  Test_util.check_close "stall recorded" 1.5 (Engine.host_stall_time e);
  Test_util.check_close "pipeline drained" 0.0 (Engine.pipeline_depth e)

let test_engine_host_ahead_of_device () =
  let e = Engine.create tiny_spec in
  Engine.spend_host e 10.0;
  (* kernel starts when the host issues it, not before *)
  let done_at = Engine.dispatch e cheap_op in
  Test_util.check_close "kernel starts at host time" 11.5 done_at;
  Engine.sync e;
  Test_util.check_close "no stall when host was slower" 11.5 (Engine.host_time e)

let test_engine_stats () =
  let e = Engine.create tiny_spec in
  ignore (Engine.dispatch e cheap_op);
  ignore (Engine.dispatch e cheap_op);
  Test_util.check_int "kernel count" 2 (Engine.kernels_launched e);
  Test_util.check_close "busy time" 3.0 (Engine.device_busy_time e);
  Engine.reset e;
  Test_util.check_int "reset clears" 0 (Engine.kernels_launched e)

let test_engine_memory_tracking () =
  let e = Engine.create tiny_spec in
  Engine.alloc e 100;
  Engine.alloc e 200;
  Test_util.check_int "live" 300 (Engine.live_bytes e);
  Engine.free e 250;
  Test_util.check_int "after free" 50 (Engine.live_bytes e);
  Test_util.check_int "peak" 300 (Engine.peak_bytes e)

(* {1 Cluster} *)

let test_cluster_single_core_no_allreduce () =
  let c = Cluster.create ~cores:1 Spec.tpu_v3_core in
  Test_util.check_close "no all-reduce alone" 0.0
    (Cluster.all_reduce_time c ~bytes:1_000_000)

let test_cluster_allreduce_grows_with_cores () =
  let t cores =
    Cluster.all_reduce_time
      (Cluster.create ~cores Spec.tpu_v3_core)
      ~bytes:100_000_000
  in
  Test_util.check_true "8 < 64 cores" (t 8 < t 64);
  Test_util.check_true "64 < 512 cores" (t 64 < t 512)

let test_cluster_allreduce_scales_with_bytes () =
  let c = Cluster.create ~cores:16 Spec.tpu_v3_core in
  Test_util.check_true "more bytes, more time"
    (Cluster.all_reduce_time c ~bytes:1_000_000
    < Cluster.all_reduce_time c ~bytes:100_000_000)

let test_cluster_step_time_host_bound () =
  let c = Cluster.create ~cores:4 Spec.tpu_v3_core in
  let step = Cluster.step_time c ~compute:0.01 ~host:5.0 ~gradient_bytes:1000 in
  Test_util.check_close "host dominates" 5.0 step

let test_cluster_per_core_throughput_degrades_slowly () =
  (* the Table 1 property: per-core throughput loss from 16 to 128 cores is
     modest (under 10%) for a ResNet-50-sized gradient *)
  let compute = 0.2 and grad = 100 * 1024 * 1024 in
  let per_core cores =
    let c = Cluster.create ~cores Spec.tpu_v3_core in
    let step = Cluster.step_time c ~compute ~host:0.05 ~gradient_bytes:grad in
    1.0 /. step
  in
  let p16 = per_core 16 and p128 = per_core 128 in
  Test_util.check_true "some degradation" (p128 < p16);
  Test_util.check_true "under 10%" (p128 > 0.9 *. p16)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "device.op_info",
      [
        tc "elementwise" `Quick test_op_info_elementwise;
        tc "matmul" `Quick test_op_info_matmul;
        tc "fused external traffic" `Quick test_op_info_fused;
      ] );
    ( "device.roofline",
      [
        tc "compute bound" `Quick test_roofline_compute_bound;
        tc "memory bound" `Quick test_roofline_memory_bound;
        tc "elementwise rate" `Quick test_roofline_elementwise_rate;
      ] );
    ( "device.engine",
      [
        tc "async dispatch fills pipeline" `Quick test_engine_async_dispatch;
        tc "sync stalls host" `Quick test_engine_sync_stalls_host;
        tc "host slower than device" `Quick test_engine_host_ahead_of_device;
        tc "statistics" `Quick test_engine_stats;
        tc "memory tracking" `Quick test_engine_memory_tracking;
      ] );
    ( "device.cluster",
      [
        tc "single core" `Quick test_cluster_single_core_no_allreduce;
        tc "all-reduce grows with cores" `Quick test_cluster_allreduce_grows_with_cores;
        tc "all-reduce grows with bytes" `Quick test_cluster_allreduce_scales_with_bytes;
        tc "host-bound step" `Quick test_cluster_step_time_host_bound;
        tc "per-core throughput (Table 1 shape)" `Quick
          test_cluster_per_core_throughput_degrades_slowly;
      ] );
  ]
