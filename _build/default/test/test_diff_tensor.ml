(** Tests for the tape-based tensor AD functor: gradient checks against
    central finite differences for every differentiable op, broadcasting
    adjoints, and the decoupling claim — the same AD code produces identical
    gradients over all three Tensor backends. *)

open S4o_tensor
module D = S4o_diff_tensor.Diff_tensor.Make (Naive_backend)

(* Finite-difference gradient of a scalar-valued tensor function. *)
let fd_grad ?(h = 1e-5) f (x : Dense.t) =
  Dense.init_flat (Dense.shape x) (fun i ->
      let xp = Dense.set_flat x i (Dense.get_flat x i +. h) in
      let xm = Dense.set_flat x i (Dense.get_flat x i -. h) in
      (f xp -. f xm) /. (2.0 *. h))

(* AD gradient of the same function written against the D ops. *)
let ad_grad f_ad x =
  let _, g = D.grad (fun v -> f_ad v) x in
  g

let check_grad ?(eps = 1e-3) name f_plain f_ad x =
  let fd = fd_grad f_plain x in
  let ad = ad_grad f_ad x in
  if not (Dense.allclose ~rtol:eps ~atol:1e-6 fd ad) then
    Alcotest.failf "%s: AD %s vs FD %s" name (Dense.to_string ad)
      (Dense.to_string fd)

let rngs seed = Prng.create seed

(* {1 Per-op gradient checks} *)

let test_grad_elementwise () =
  let x = Dense.rand_normal (rngs 1) [| 6 |] in
  check_grad "sum(exp x)" (fun x -> Dense.sum (Dense.exp x))
    (fun v -> D.sum_all (D.exp v))
    x;
  check_grad "sum(sigmoid x)"
    (fun x -> Dense.sum (Dense.sigmoid x))
    (fun v -> D.sum_all (D.sigmoid v))
    x;
  check_grad "sum(tanh x)"
    (fun x -> Dense.sum (Dense.tanh x))
    (fun v -> D.sum_all (D.tanh v))
    x;
  check_grad "mean(x*x)"
    (fun x -> Dense.mean (Dense.mul x x))
    (fun v -> D.mean_all (D.mul v v))
    x

let test_grad_sqrt_log () =
  let x = Dense.rand_uniform (rngs 2) ~lo:0.5 ~hi:2.0 [| 5 |] in
  check_grad "sum(sqrt x)"
    (fun x -> Dense.sum (Dense.sqrt x))
    (fun v -> D.sum_all (D.sqrt v))
    x;
  check_grad "sum(log x)"
    (fun x -> Dense.sum (Dense.log x))
    (fun v -> D.sum_all (D.log v))
    x

let test_grad_relu () =
  (* keep away from the kink *)
  let x = Dense.of_array [| 4 |] [| -1.5; -0.2; 0.3; 2.0 |] in
  check_grad "sum(relu x)"
    (fun x -> Dense.sum (Dense.relu x))
    (fun v -> D.sum_all (D.relu v))
    x

let test_grad_matmul () =
  let g = rngs 3 in
  let x = Dense.rand_normal g [| 3; 4 |] in
  let w = Dense.rand_normal g [| 4; 2 |] in
  check_grad "matmul wrt lhs"
    (fun x -> Dense.sum (Dense.matmul x w))
    (fun v -> D.sum_all (D.matmul v (D.const w)))
    x;
  check_grad "matmul wrt rhs"
    (fun w -> Dense.sum (Dense.matmul x w))
    (fun v -> D.sum_all (D.matmul (D.const x) v))
    w

let test_grad_broadcast_add () =
  let g = rngs 4 in
  let x = Dense.rand_normal g [| 3; 4 |] in
  let b = Dense.rand_normal g [| 4 |] in
  (* gradient w.r.t. the broadcast bias must sum over the batch axis *)
  check_grad "bias grad sums batch"
    (fun b -> Dense.sum (Dense.mul (Dense.add x b) (Dense.add x b)))
    (fun v ->
      let s = D.add (D.const x) v in
      D.sum_all (D.mul s s))
    b

let test_grad_conv2d () =
  let g = rngs 5 in
  let x = Dense.rand_normal g [| 1; 5; 5; 2 |] in
  let f = Dense.rand_normal g [| 3; 3; 2; 2 |] in
  let padding = Convolution.Same in
  check_grad "conv wrt input"
    (fun x ->
      let y = Convolution.conv2d ~padding x f in
      Dense.sum (Dense.mul y y))
    (fun v ->
      let y = D.conv2d ~padding v (D.const f) in
      D.sum_all (D.mul y y))
    x;
  check_grad "conv wrt filter"
    (fun f ->
      let y = Convolution.conv2d ~padding x f in
      Dense.sum (Dense.mul y y))
    (fun v ->
      let y = D.conv2d ~padding (D.const x) v in
      D.sum_all (D.mul y y))
    f

let test_grad_pools () =
  let g = rngs 6 in
  let x = Dense.rand_normal g [| 1; 4; 4; 2 |] in
  check_grad "avg pool"
    (fun x ->
      let y = Convolution.avg_pool2d ~size:(2, 2) ~stride:(2, 2) x in
      Dense.sum (Dense.mul y y))
    (fun v ->
      let y = D.avg_pool2d ~size:(2, 2) ~stride:(2, 2) v in
      D.sum_all (D.mul y y))
    x;
  check_grad "max pool"
    (fun x ->
      let y = Convolution.max_pool2d ~size:(2, 2) ~stride:(2, 2) x in
      Dense.sum (Dense.mul y y))
    (fun v ->
      let y = D.max_pool2d ~size:(2, 2) ~stride:(2, 2) v in
      D.sum_all (D.mul y y))
    x

let test_grad_reshape_transpose () =
  let g = rngs 7 in
  let x = Dense.rand_normal g [| 2; 6 |] in
  check_grad "through reshape"
    (fun x ->
      let r = Dense.reshape x [| 3; 4 |] in
      Dense.sum (Dense.mul r r))
    (fun v ->
      let r = D.reshape v [| 3; 4 |] in
      D.sum_all (D.mul r r))
    x;
  check_grad "through transpose"
    (fun x ->
      let t = Dense.transpose x in
      Dense.sum (Dense.mul t t))
    (fun v ->
      let t = D.transpose v in
      D.sum_all (D.mul t t))
    x

let test_grad_sum_axes () =
  let g = rngs 8 in
  let x = Dense.rand_normal g [| 3; 4 |] in
  check_grad "sum over axis then square"
    (fun x ->
      let s = Dense.sum_axes x [ 0 ] in
      Dense.sum (Dense.mul s s))
    (fun v ->
      let s = D.sum_axes v [ 0 ] in
      D.sum_all (D.mul s s))
    x

let test_grad_div () =
  let g = rngs 9 in
  let x = Dense.rand_uniform g ~lo:0.5 ~hi:2.0 [| 5 |] in
  let y = Dense.rand_uniform g ~lo:0.5 ~hi:2.0 [| 5 |] in
  check_grad "div wrt numerator"
    (fun x -> Dense.sum (Dense.div x y))
    (fun v -> D.sum_all (D.div v (D.const y)))
    x;
  check_grad "div wrt denominator"
    (fun y -> Dense.sum (Dense.div x y))
    (fun v -> D.sum_all (D.div (D.const x) v))
    y

let test_grad_softmax_cross_entropy () =
  let g = rngs 10 in
  let logits = Dense.rand_normal g [| 4; 3 |] in
  let labels =
    Dense.one_hot ~classes:3 (Dense.of_array [| 4 |] [| 0.; 2.; 1.; 1. |])
  in
  (* reference loss: -mean over batch of sum(labels * log_softmax) *)
  let plain z =
    let lp = Dense.log_softmax z in
    -.(Dense.sum (Dense.mul labels lp)) /. 4.0
  in
  check_grad "softmax CE" plain
    (fun v -> D.softmax_cross_entropy ~labels v)
    logits;
  (* and the closed form: (softmax - labels)/n *)
  let _, grad = D.grad (fun v -> D.softmax_cross_entropy ~labels v) logits in
  let expected = Dense.scale 0.25 (Dense.sub (Dense.softmax logits) labels) in
  Test_util.check_tensor "closed-form CE gradient" expected grad

let test_grad_mse () =
  let g = rngs 11 in
  let pred = Dense.rand_normal g [| 6 |] in
  let target = Dense.rand_normal g [| 6 |] in
  check_grad "mse"
    (fun p ->
      let d = Dense.sub p target in
      Dense.sum (Dense.mul d d) /. 6.0)
    (fun v -> D.mse ~target v)
    pred

(* {1 Tape mechanics} *)

let test_params_accumulate_via_fanout () =
  let ctx = D.new_ctx () in
  let x = D.param ctx (Dense.scalar 3.0) in
  let y = D.add (D.mul x x) x in
  D.backward ctx y;
  match D.adjoint x with
  | Some g -> Test_util.check_close "2x + 1" 7.0 (Dense.item g)
  | None -> Alcotest.fail "no adjoint"

let test_constants_get_no_adjoint () =
  let ctx = D.new_ctx () in
  let x = D.param ctx (Dense.scalar 2.0) in
  let c = D.const (Dense.scalar 10.0) in
  let y = D.mul x c in
  D.backward ctx y;
  Test_util.check_true "const has no adjoint" (D.adjoint c = None)

let test_mixed_tapes_rejected () =
  let ctx1 = D.new_ctx () and ctx2 = D.new_ctx () in
  let x = D.param ctx1 (Dense.scalar 1.0) in
  let y = D.param ctx2 (Dense.scalar 2.0) in
  Test_util.check_raises_any "cross-tape rejected" (fun () -> D.add x y)

let test_backward_requires_own_tape () =
  let ctx1 = D.new_ctx () and ctx2 = D.new_ctx () in
  let x = D.param ctx1 (Dense.scalar 1.0) in
  let y = D.relu x in
  ignore ctx2;
  Test_util.check_raises_any "wrong-tape backward" (fun () ->
      D.backward ctx2 y)

let test_tape_length () =
  let ctx = D.new_ctx () in
  let x = D.param ctx (Dense.scalar 1.0) in
  let _ = D.exp (D.relu (D.mul x x)) in
  (* param + 3 ops *)
  Test_util.check_int "tape entries" 4 (D.tape_length ctx)

(* {1 Backend decoupling: identical gradients on all three backends} *)

let lenet_like_loss (type t) (module Bk : Backend_intf.S with type t = t)
    images filter =
  let module Dt = S4o_diff_tensor.Diff_tensor.Make (Bk) in
  let ctx = Dt.new_ctx () in
  let f = Dt.param ctx (Bk.of_dense filter) in
  let x = Dt.const (Bk.of_dense images) in
  let y = Dt.relu (Dt.conv2d ~padding:Convolution.Same x f) in
  let pooled = Dt.avg_pool2d ~size:(2, 2) ~stride:(2, 2) y in
  let loss = Dt.mean_all (Dt.mul pooled pooled) in
  Dt.backward ctx loss;
  ( Bk.to_dense (Dt.value loss),
    match Dt.adjoint f with
    | Some g -> Bk.to_dense g
    | None -> Alcotest.fail "no gradient" )

let test_same_gradients_on_all_backends () =
  let g = rngs 12 in
  let images = Dense.rand_normal g [| 2; 6; 6; 1 |] in
  let filter = Dense.rand_normal g [| 3; 3; 1; 2 |] in
  let loss_n, grad_n = lenet_like_loss (module Naive_backend) images filter in
  let loss_e, grad_e =
    let engine = S4o_device.Engine.create S4o_device.Device_spec.gtx1080 in
    let rt = S4o_eager.Runtime.create engine in
    let module Bk = S4o_eager.Eager_backend.Make (struct
      let rt = rt
    end) in
    lenet_like_loss (module Bk) images filter
  in
  let loss_l, grad_l =
    let engine = S4o_device.Engine.create S4o_device.Device_spec.gtx1080 in
    let rt = S4o_lazy.Lazy_runtime.create engine in
    let module Bk = S4o_lazy.Lazy_backend.Make (struct
      let rt = rt
    end) in
    lenet_like_loss (module Bk) images filter
  in
  Test_util.check_tensor "eager loss" loss_n loss_e;
  Test_util.check_tensor "lazy loss" loss_n loss_l;
  Test_util.check_tensor "eager grad" grad_n grad_e;
  Test_util.check_tensor "lazy grad" grad_n grad_l

let qcheck_grad_of_random_mlp =
  Test_util.qtest ~count:30 "random 2-layer MLP gradient matches FD"
    QCheck.(int_range 0 1_000)
    (fun seed ->
      let g = rngs (1000 + seed) in
      let x = Dense.rand_normal g [| 2; 3 |] in
      let w1 = Dense.rand_normal g [| 3; 4 |] in
      let w2 = Dense.rand_normal g [| 4; 1 |] in
      let plain w1 =
        let h = Dense.tanh (Dense.matmul x w1) in
        Dense.sum (Dense.matmul h w2)
      in
      let ad v =
        let h = D.tanh (D.matmul (D.const x) v) in
        D.sum_all (D.matmul h (D.const w2))
      in
      let fd = fd_grad plain w1 in
      let grad = ad_grad ad w1 in
      Dense.allclose ~rtol:1e-3 ~atol:1e-6 fd grad)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "diff_tensor.gradcheck",
      [
        tc "elementwise ops" `Quick test_grad_elementwise;
        tc "sqrt and log" `Quick test_grad_sqrt_log;
        tc "relu" `Quick test_grad_relu;
        tc "matmul both sides" `Quick test_grad_matmul;
        tc "broadcast bias" `Quick test_grad_broadcast_add;
        tc "conv2d both sides" `Quick test_grad_conv2d;
        tc "pooling" `Quick test_grad_pools;
        tc "reshape / transpose" `Quick test_grad_reshape_transpose;
        tc "sum over axes" `Quick test_grad_sum_axes;
        tc "division" `Quick test_grad_div;
        tc "softmax cross-entropy" `Quick test_grad_softmax_cross_entropy;
        tc "mse" `Quick test_grad_mse;
        qcheck_grad_of_random_mlp;
      ] );
    ( "diff_tensor.tape",
      [
        tc "fan-out accumulates" `Quick test_params_accumulate_via_fanout;
        tc "constants ignored" `Quick test_constants_get_no_adjoint;
        tc "mixed tapes rejected" `Quick test_mixed_tapes_rejected;
        tc "backward checks tape" `Quick test_backward_requires_own_tape;
        tc "tape length" `Quick test_tape_length;
      ] );
    ( "diff_tensor.decoupling",
      [ tc "identical gradients on naive/eager/lazy" `Quick test_same_gradients_on_all_backends ] );
  ]
