(** Shared helpers for the test suites. *)

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let check_close ?(eps = 1e-6) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_true msg b = Alcotest.(check bool) msg true b
let check_string = Alcotest.(check string)

let check_float_array ?(eps = 1e-6) msg expected actual =
  Alcotest.(check (array (float eps))) msg expected actual

let check_raises_any msg f =
  match f () with
  | _ -> Alcotest.failf "%s: expected an exception" msg
  | exception _ -> ()

(** Central finite difference of an [R^n -> R] function — the ground truth
    for gradient checking. *)
let finite_diff_grad ?(h = 1e-5) f (x : float array) =
  Array.mapi
    (fun i _ ->
      let xp = Array.copy x and xm = Array.copy x in
      xp.(i) <- x.(i) +. h;
      xm.(i) <- x.(i) -. h;
      (f xp -. f xm) /. (2.0 *. h))
    x

let tensor_testable =
  Alcotest.testable S4o_tensor.Dense.pp (S4o_tensor.Dense.allclose ~rtol:1e-5 ~atol:1e-7)

let check_tensor msg expected actual =
  Alcotest.check tensor_testable msg expected actual

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)
