(** Tests for the differentiable-programming core (§2): forward mode, reverse
    mode, higher-order nesting, the (f, JVP, VJP) bundles of Figure 3, and
    the Differentiable conformances of Figure 1. *)

module F = S4o_core.Forward
module R = S4o_core.Reverse
module H = S4o_core.Higher_order
module Dfn = S4o_core.Diff_fn
module Diff = S4o_core.Differentiable

(* {1 Forward mode} *)

let test_forward_primitives () =
  let check name f df x =
    Test_util.check_close name (df x) (F.derivative f x)
  in
  check "sin" F.sin Float.cos 0.7;
  check "cos" F.cos (fun x -> -.Float.sin x) 0.7;
  check "exp" F.exp Float.exp 0.4;
  check "log" F.log (fun x -> 1.0 /. x) 2.5;
  check "sqrt" F.sqrt (fun x -> 0.5 /. Float.sqrt x) 4.0;
  check "sigmoid" F.sigmoid
    (fun x ->
      let s = 1.0 /. (1.0 +. Float.exp (-.x)) in
      s *. (1.0 -. s))
    0.3;
  check "tanh" F.tanh (fun x -> 1.0 -. (Float.tanh x ** 2.0)) 0.3;
  check "relu positive" F.relu (fun _ -> 1.0) 2.0;
  check "relu negative" F.relu (fun _ -> 0.0) (-2.0);
  check "pow" (fun x -> F.pow x 3.0) (fun x -> 3.0 *. (x ** 2.0)) 1.7

let test_forward_product_rule () =
  let f x = F.mul x (F.sin x) in
  Test_util.check_close "d(x sin x)" (Float.sin 1.2 +. (1.2 *. Float.cos 1.2))
    (F.derivative f 1.2)

let test_forward_quotient_rule () =
  let f x = F.div (F.sin x) x in
  let x = 0.9 in
  Test_util.check_close "d(sin x / x)"
    (((x *. Float.cos x) -. Float.sin x) /. (x *. x))
    (F.derivative f x)

let test_forward_grad () =
  (* f(x, y) = x^2 y + y *)
  let f xs = F.add (F.mul (F.mul xs.(0) xs.(0)) xs.(1)) xs.(1) in
  let g = F.grad f [| 2.0; 3.0 |] in
  Test_util.check_close "df/dx = 2xy" 12.0 g.(0);
  Test_util.check_close "df/dy = x^2+1" 5.0 g.(1)

let test_forward_jvp () =
  (* f(x, y) = (x + y, x * y); J v with v = (1, 2) *)
  let f xs = [| F.add xs.(0) xs.(1); F.mul xs.(0) xs.(1) |] in
  let out = F.jvp f [| 3.0; 4.0 |] [| 1.0; 2.0 |] in
  Test_util.check_close "d(x+y)" 3.0 out.(0);
  Test_util.check_close "d(xy) = y*1 + x*2" 10.0 out.(1)

let test_forward_infix () =
  let open F.Infix in
  let f x = (x * x) + x - F.const 1.0 in
  Test_util.check_close "2x + 1" 7.0 (F.derivative f 3.0)

let test_forward_custom () =
  let cube = F.custom ~f:(fun x -> x ** 3.0) ~df:(fun x -> 5.0 *. (x ** 2.0)) in
  (* deliberately wrong derivative (5x^2) proves the custom rule is used *)
  Test_util.check_close "custom derivative used" 20.0 (F.derivative cube 2.0)

(* {1 Reverse mode} *)

let test_reverse_matches_forward () =
  let expr_f x = F.mul (F.sin (F.mul x x)) (F.exp (F.neg x)) in
  let expr_r x = R.mul (R.sin (R.mul x x)) (R.exp (R.neg x)) in
  List.iter
    (fun x ->
      Test_util.check_close "forward = reverse" (F.derivative expr_f x)
        (snd (R.grad1 expr_r x)))
    [ -1.5; -0.3; 0.2; 0.8; 2.1 ]

let test_reverse_grad_matches_finite_diff () =
  (* Rosenbrock *)
  let rosen xs =
    let open R.Infix in
    let one = R.const 1.0 in
    let a = one - xs.(0) in
    let b = xs.(1) - (xs.(0) * xs.(0)) in
    (a * a) + R.scale 100.0 (b * b)
  in
  let at = [| -0.7; 1.3 |] in
  let _, g = R.grad rosen at in
  let fd =
    Test_util.finite_diff_grad (fun x -> fst (R.grad rosen x)) at
  in
  Test_util.check_close ~eps:1e-3 "d/dx" fd.(0) g.(0);
  Test_util.check_close ~eps:1e-3 "d/dy" fd.(1) g.(1)

let test_reverse_fan_out () =
  (* x used twice: adjoints must accumulate *)
  let f x = R.add (R.mul x x) (R.scale 3.0 x) in
  Test_util.check_close "2x + 3" 7.0 (snd (R.grad1 f 2.0))

let test_reverse_constants_have_no_gradient () =
  let f x = R.mul x (R.const 5.0) in
  Test_util.check_close "d(5x)" 5.0 (snd (R.grad1 f 3.0))

let test_reverse_vjp_multi_output () =
  (* f(x, y) = (xy, x + y); pullback of seed (a, b) = (ay + b, ax + b) *)
  let f xs = [| R.mul xs.(0) xs.(1); R.add xs.(0) xs.(1) |] in
  let values, pullback = R.vjp f [| 2.0; 3.0 |] in
  Test_util.check_float_array "primal" [| 6.0; 5.0 |] values;
  let g = pullback [| 1.0; 0.0 |] in
  Test_util.check_float_array "pullback e1" [| 3.0; 2.0 |] g;
  let g2 = pullback [| 0.0; 1.0 |] in
  Test_util.check_float_array "pullback e2 (reused)" [| 1.0; 1.0 |] g2

let test_reverse_mixing_tapes_rejected () =
  let half_done = ref None in
  let _ = R.grad1 (fun x -> (match !half_done with None -> half_done := Some x | Some _ -> ()); x) 1.0 in
  Test_util.check_raises_any "cross-tape op rejected" (fun () ->
      R.grad1
        (fun y ->
          match !half_done with Some x -> R.add x y | None -> y)
        2.0)

let test_reverse_custom_binary () =
  let atan2' =
    R.custom_binary ~f:Float.atan2
      ~dfa:(fun y x -> x /. ((x *. x) +. (y *. y)))
      ~dfb:(fun y x -> -.y /. ((x *. x) +. (y *. y)))
  in
  let _, (dy, dx) = R.grad2 atan2' 1.0 2.0 in
  Test_util.check_close "datan2/dy" (2.0 /. 5.0) dy;
  Test_util.check_close "datan2/dx" (-1.0 /. 5.0) dx

let test_reverse_tape_length_linear () =
  (* efficient-gradient: tape length is linear in expression size *)
  let chain n x0 =
    let _ =
      R.grad1
        (fun x ->
          let acc = ref x in
          for _ = 1 to n do
            acc := R.sin !acc
          done;
          !acc)
        x0
    in
    R.last_tape_length ()
  in
  let l10 = chain 10 0.3 and l100 = chain 100 0.3 in
  Test_util.check_int "tape grows by exactly 90" (l10 + 90) l100

let test_reverse_max_min_subgradient () =
  let f x = R.max x (R.const 2.0) in
  Test_util.check_close "max active branch" 1.0 (snd (R.grad1 f 3.0));
  Test_util.check_close "max inactive branch" 0.0 (snd (R.grad1 f 1.0));
  let g x = R.min x (R.const 2.0) in
  Test_util.check_close "min active" 1.0 (snd (R.grad1 g 1.0))

let qcheck_reverse_matches_fd =
  Test_util.qtest ~count:150 "reverse gradient matches finite differences"
    QCheck.(pair (float_range 0.2 2.0) (float_range 0.2 2.0))
    (fun (x, y) ->
      let f xs =
        R.add
          (R.mul (R.sin xs.(0)) (R.exp xs.(1)))
          (R.div xs.(0) (R.add_const 0.5 (R.mul xs.(1) xs.(1))))
      in
      let _, g = R.grad f [| x; y |] in
      let fd = Test_util.finite_diff_grad (fun v -> fst (R.grad f v)) [| x; y |] in
      Float.abs (g.(0) -. fd.(0)) < 1e-4 *. Float.max 1.0 (Float.abs fd.(0))
      && Float.abs (g.(1) -. fd.(1)) < 1e-4 *. Float.max 1.0 (Float.abs fd.(1)))

(* {1 Higher order} *)

let test_higher_order_polynomial () =
  (* f(x) = x^4 *)
  let f = { H.apply = (fun ops x -> ops.H.mul x (ops.H.mul x (ops.H.mul x x))) } in
  Test_util.check_close "f" 16.0 (H.nth_derivative 0 f 2.0);
  Test_util.check_close "f'" 32.0 (H.nth_derivative 1 f 2.0);
  Test_util.check_close "f''" 48.0 (H.nth_derivative 2 f 2.0);
  Test_util.check_close "f'''" 48.0 (H.nth_derivative 3 f 2.0);
  Test_util.check_close "f''''" 24.0 (H.nth_derivative 4 f 2.0);
  Test_util.check_close "f'''''" 0.0 (H.nth_derivative 5 f 2.0)

let test_higher_order_sin () =
  let f = { H.apply = (fun ops x -> ops.H.sin x) } in
  (* d^4 sin = sin *)
  Test_util.check_close "4th derivative of sin" (Float.sin 0.9)
    (H.nth_derivative 4 f 0.9)

let test_higher_order_matches_forward () =
  let hf = { H.apply = (fun ops x -> ops.H.exp (ops.H.mul x x)) } in
  let ff x = F.exp (F.mul x x) in
  Test_util.check_close "order-1 agrees with Forward" (F.derivative ff 0.6)
    (H.nth_derivative 1 hf 0.6)

(* {1 Differentiable conformances (Figure 1)} *)

let test_differentiable_float () =
  Test_util.check_float "move" 3.5 (Diff.Float_diff.move 3.0 ~along:0.5);
  Test_util.check_float "tangent add" 3.0 (Diff.Float_diff.Tangent.add 1.0 2.0)

let test_differentiable_pair () =
  let module P = Diff.Pair (Diff.Float_diff) (Diff.Float_diff) in
  let moved = P.move (1.0, 2.0) ~along:(0.1, 0.2) in
  Test_util.check_float "fst" 1.1 (fst moved);
  Test_util.check_float "snd" 2.2 (snd moved);
  Test_util.check_true "zero" (P.Tangent.zero = (0.0, 0.0))

let test_differentiable_array () =
  let module A = Diff.Array_of (Diff.Float_diff) in
  let moved = A.move [| 1.0; 2.0 |] ~along:[| 10.0; 20.0 |] in
  Test_util.check_float_array "move elementwise" [| 11.0; 22.0 |] moved;
  (* zero (empty) tangent acts as identity at any length *)
  Test_util.check_float_array "zero tangent" [| 1.0; 2.0 |]
    (A.move [| 1.0; 2.0 |] ~along:A.Tangent.zero);
  Test_util.check_float_array "zero + t = t" [| 5.0 |]
    (A.Tangent.add A.Tangent.zero [| 5.0 |])

let test_differentiable_tensor () =
  let open S4o_tensor in
  let x = Dense.of_array [| 2 |] [| 1.0; 2.0 |] in
  let d = Dense.of_array [| 2 |] [| 0.5; 0.5 |] in
  Test_util.check_tensor "tensor move"
    (Dense.of_array [| 2 |] [| 1.5; 2.5 |])
    (Diff.Tensor_diff.move x ~along:d);
  (* the scalar-0 zero broadcasts against any shape *)
  Test_util.check_tensor "tensor zero" x
    (Diff.Tensor_diff.move x ~along:Diff.Tensor_diff.Tangent.zero)

let test_witness_of () =
  let module W = Diff.Witness_of (Diff.Float_diff) in
  Test_util.check_float "witness move" 4.0 (W.witness.Diff.move 3.0 1.0)

(* {1 Differentiable function values (Figures 2-3)} *)

let test_diff_fn_scalar_bundle () =
  let square =
    Dfn.promote_scalar (fun x -> F.mul x x) (fun x -> R.mul x x)
  in
  Test_util.check_close "apply" 9.0 (Dfn.apply square 3.0);
  Test_util.check_close "gradient" 6.0 (Dfn.gradient ~at:3.0 square);
  let v, g = Dfn.value_with_gradient ~at:3.0 square in
  Test_util.check_close "vwg value" 9.0 v;
  Test_util.check_close "vwg grad" 6.0 g;
  Test_util.check_close "jvp" 12.0 (Dfn.derivative ~at:3.0 ~along:2.0 square)

let test_diff_fn_compose_chain_rule () =
  let square = Dfn.promote_scalar (fun x -> F.mul x x) (fun x -> R.mul x x) in
  let sin_b = Dfn.promote_scalar F.sin R.sin in
  let sin_of_square = Dfn.compose sin_b square in
  (* d/dx sin(x^2) = 2x cos(x^2) *)
  Test_util.check_close "chain rule vjp" (2.0 *. 1.5 *. Float.cos 2.25)
    (Dfn.gradient ~at:1.5 sin_of_square);
  Test_util.check_close "chain rule jvp" (2.0 *. 1.5 *. Float.cos 2.25)
    (Dfn.derivative ~at:1.5 ~along:1.0 sin_of_square)

let test_diff_fn_pair () =
  let square = Dfn.promote_scalar (fun x -> F.mul x x) (fun x -> R.mul x x) in
  let expb = Dfn.promote_scalar F.exp R.exp in
  let both = Dfn.pair square expb in
  let (v1, v2), pb = both.Dfn.vjp (2.0, 0.0) in
  Test_util.check_close "pair fst" 4.0 v1;
  Test_util.check_close "pair snd" 1.0 v2;
  let g1, g2 = pb (1.0, 1.0) in
  Test_util.check_close "pair pullback fst" 4.0 g1;
  Test_util.check_close "pair pullback snd" 1.0 g2

let test_diff_fn_identity () =
  Test_util.check_close "identity grad" 1.0 (Dfn.gradient ~at:5.0 Dfn.identity)

let test_diff_fn_vector () =
  let bundle =
    Dfn.promote_vector (fun xs ->
        R.add (R.mul xs.(0) xs.(1)) (R.sin xs.(0)))
  in
  let g = Dfn.gradient ~at:[| 2.0; 3.0 |] bundle in
  Test_util.check_close "d/dx" (3.0 +. Float.cos 2.0) g.(0);
  Test_util.check_close "d/dy" 2.0 g.(1);
  (* jvp along e0 recovers g.(0) *)
  Test_util.check_close "jvp consistency" g.(0)
    (Dfn.derivative ~at:[| 2.0; 3.0 |] ~along:[| 1.0; 0.0 |] bundle)

let test_diff_fn_multi () =
  let bundle =
    Dfn.promote_multi
      (fun xs -> [| F.add xs.(0) xs.(1); F.mul xs.(0) xs.(1) |])
      (fun xs -> [| R.add xs.(0) xs.(1); R.mul xs.(0) xs.(1) |])
  in
  let v, pb = bundle.Dfn.vjp [| 2.0; 3.0 |] in
  Test_util.check_float_array "multi primal" [| 5.0; 6.0 |] v;
  Test_util.check_float_array "multi pullback" [| 1.0 +. 3.0; 1.0 +. 2.0 |]
    (pb [| 1.0; 1.0 |]);
  let _, diff = bundle.Dfn.jvp [| 2.0; 3.0 |] in
  Test_util.check_float_array "multi differential" [| 1.0; 3.0 |]
    (diff [| 1.0; 0.0 |])

let suite =
  let tc = Alcotest.test_case in
  [
    ( "core.forward",
      [
        tc "primitive derivatives" `Quick test_forward_primitives;
        tc "product rule" `Quick test_forward_product_rule;
        tc "quotient rule" `Quick test_forward_quotient_rule;
        tc "multivariate grad" `Quick test_forward_grad;
        tc "jvp" `Quick test_forward_jvp;
        tc "infix operators" `Quick test_forward_infix;
        tc "custom derivative" `Quick test_forward_custom;
      ] );
    ( "core.reverse",
      [
        tc "matches forward mode" `Quick test_reverse_matches_forward;
        tc "matches finite differences" `Quick test_reverse_grad_matches_finite_diff;
        tc "fan-out accumulates" `Quick test_reverse_fan_out;
        tc "constants ignored" `Quick test_reverse_constants_have_no_gradient;
        tc "vjp with reusable pullback" `Quick test_reverse_vjp_multi_output;
        tc "mixing tapes rejected" `Quick test_reverse_mixing_tapes_rejected;
        tc "custom binary derivative" `Quick test_reverse_custom_binary;
        tc "tape length linear" `Quick test_reverse_tape_length_linear;
        tc "max/min subgradients" `Quick test_reverse_max_min_subgradient;
        qcheck_reverse_matches_fd;
      ] );
    ( "core.higher_order",
      [
        tc "polynomial all orders" `Quick test_higher_order_polynomial;
        tc "sin period 4" `Quick test_higher_order_sin;
        tc "order 1 = forward mode" `Quick test_higher_order_matches_forward;
      ] );
    ( "core.differentiable",
      [
        tc "float conformance" `Quick test_differentiable_float;
        tc "pair functor" `Quick test_differentiable_pair;
        tc "array functor" `Quick test_differentiable_array;
        tc "tensor conformance" `Quick test_differentiable_tensor;
        tc "witness from module" `Quick test_witness_of;
      ] );
    ( "core.diff_fn",
      [
        tc "scalar bundle" `Quick test_diff_fn_scalar_bundle;
        tc "compose = chain rule" `Quick test_diff_fn_compose_chain_rule;
        tc "pair" `Quick test_diff_fn_pair;
        tc "identity" `Quick test_diff_fn_identity;
        tc "vector promote" `Quick test_diff_fn_vector;
        tc "multi promote" `Quick test_diff_fn_multi;
      ] );
  ]
