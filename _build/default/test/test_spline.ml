(** Tests for the spline model and the backtracking line-search optimizer
    (§5.1.3). *)

open S4o_tensor
module Sp = S4o_spline.Spline
module Ls = S4o_spline.Line_search

(* {1 Spline evaluation} *)

let test_create_validation () =
  Test_util.check_raises_any "too few knots" (fun () ->
      Sp.create ~x_min:0.0 ~x_max:1.0 ~n_knots:3 ~init:0.0);
  Test_util.check_raises_any "empty range" (fun () ->
      Sp.create ~x_min:1.0 ~x_max:1.0 ~n_knots:8 ~init:0.0)

let test_constant_spline () =
  let s = Sp.create ~x_min:0.0 ~x_max:1.0 ~n_knots:8 ~init:3.5 in
  List.iter
    (fun x -> Test_util.check_close "constant everywhere" 3.5 (Sp.eval s x))
    [ 0.0; 0.13; 0.5; 0.77; 1.0 ]

let test_interpolates_knots () =
  (* Catmull-Rom passes through its control points *)
  let s = Sp.create ~x_min:0.0 ~x_max:1.0 ~n_knots:5 ~init:0.0 in
  let s = { s with Sp.knots = [| 1.0; -2.0; 0.5; 3.0; -1.0 |] } in
  Array.iteri
    (fun i k ->
      let x = float_of_int i /. 4.0 in
      Test_util.check_close "passes through control point" k (Sp.eval s x))
    s.Sp.knots

let test_clamps_out_of_range () =
  let s = Sp.create ~x_min:0.0 ~x_max:1.0 ~n_knots:5 ~init:0.0 in
  let s = { s with Sp.knots = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] } in
  Test_util.check_close "clamp low" (Sp.eval s 0.0) (Sp.eval s (-10.0));
  Test_util.check_close "clamp high" (Sp.eval s 1.0) (Sp.eval s 10.0)

let test_eval_rev_matches_eval () =
  let module R = S4o_core.Reverse in
  let s = Sp.create ~x_min:0.0 ~x_max:2.0 ~n_knots:6 ~init:0.0 in
  let s = { s with Sp.knots = Array.init 6 (fun i -> Float.sin (float_of_int i)) } in
  List.iter
    (fun x ->
      let v, _ =
        R.grad
          (fun knots -> Sp.eval_rev ~knots ~x_min:0.0 ~x_max:2.0 x)
          s.Sp.knots
      in
      Test_util.check_close "rev primal = eval" (Sp.eval s x) v)
    [ 0.1; 0.5; 1.0; 1.5; 1.9 ]

let test_loss_grad_matches_finite_diff () =
  let rng = Prng.create 3 in
  let data = Sp.sample_global rng ~n:40 ~noise:0.1 in
  let s = Sp.create ~x_min:0.0 ~x_max:3.0 ~n_knots:6 ~init:0.2 in
  let _, grad = Sp.loss_grad s data in
  let fd =
    Test_util.finite_diff_grad
      (fun knots -> Sp.loss { s with Sp.knots } data)
      s.Sp.knots
  in
  Array.iteri
    (fun i g -> Test_util.check_close ~eps:1e-4 "grad matches fd" fd.(i) g)
    grad

let test_tape_ops_positive () =
  let rng = Prng.create 4 in
  let data = Sp.sample_global rng ~n:10 ~noise:0.1 in
  let s = Sp.create ~x_min:0.0 ~x_max:3.0 ~n_knots:5 ~init:0.0 in
  Test_util.check_true "tape length measured" (Sp.tape_ops_per_eval s data > 10)

(* {1 Line search} *)

let quadratic x = ((x.(0) -. 3.0) ** 2.0) +. (2.0 *. ((x.(1) +. 1.0) ** 2.0))

let quadratic_grad x =
  (quadratic x, [| 2.0 *. (x.(0) -. 3.0); 4.0 *. (x.(1) +. 1.0) |])

let test_line_search_quadratic () =
  let solution, stats =
    Ls.minimize ~f:quadratic ~f_grad:quadratic_grad [| 0.0; 0.0 |]
  in
  Test_util.check_true "converged" stats.Ls.converged;
  Test_util.check_close ~eps:1e-3 "x*" 3.0 solution.(0);
  Test_util.check_close ~eps:1e-3 "y*" (-1.0) solution.(1);
  Test_util.check_true "loss near zero" (stats.Ls.final_loss < 1e-8)

let test_line_search_monotone_descent () =
  (* Armijo guarantees every accepted step decreases f *)
  let history = ref [] in
  let f x =
    let v = quadratic x in
    v
  in
  let f_grad x =
    let v, g = quadratic_grad x in
    history := v :: !history;
    (v, g)
  in
  let _ = Ls.minimize ~f ~f_grad [| 10.0; -10.0 |] in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a <= b && decreasing rest
    | _ -> true
  in
  (* history is reversed: later values first *)
  Test_util.check_true "monotone decrease" (decreasing !history)

let test_line_search_rosenbrock () =
  let f x = ((1.0 -. x.(0)) ** 2.0) +. (100.0 *. ((x.(1) -. (x.(0) ** 2.0)) ** 2.0)) in
  let f_grad x =
    let a = 1.0 -. x.(0) and b = x.(1) -. (x.(0) ** 2.0) in
    ( f x,
      [| (-2.0 *. a) -. (400.0 *. x.(0) *. b); 200.0 *. b |] )
  in
  let config = { Ls.default_config with Ls.max_iterations = 20_000; grad_tolerance = 1e-4 } in
  let solution, stats = Ls.minimize ~config ~f ~f_grad [| -1.2; 1.0 |] in
  Test_util.check_true "rosenbrock converged" stats.Ls.converged;
  Test_util.check_close ~eps:1e-2 "x* = 1" 1.0 solution.(0)

let test_line_search_stats_counting () =
  let fe = ref 0 and ge = ref 0 in
  let f x =
    incr fe;
    quadratic x
  in
  let f_grad x =
    incr ge;
    quadratic_grad x
  in
  let _, stats = Ls.minimize ~f ~f_grad [| 0.0; 0.0 |] in
  (* the optimizer itself calls f once per gradient eval too *)
  Test_util.check_int "function evals counted" (!fe + !ge) stats.Ls.function_evals;
  Test_util.check_int "gradient evals counted" !ge stats.Ls.gradient_evals

let test_line_search_iteration_cap () =
  let f x = x.(0) in
  (* unbounded below *)
  let f_grad x = (x.(0), [| 1.0 |]) in
  let config = { Ls.default_config with Ls.max_iterations = 5 } in
  let _, stats = Ls.minimize ~config ~f ~f_grad [| 0.0 |] in
  Test_util.check_bool "did not claim convergence" false stats.Ls.converged;
  Test_util.check_int "stopped at cap" 5 stats.Ls.iterations

let test_spline_fit_end_to_end () =
  (* fit a small spline to its own ground truth: loss must become tiny *)
  let rng = Prng.create 6 in
  let data = Sp.sample_global rng ~n:300 ~noise:0.01 in
  let s = Sp.create ~x_min:0.0 ~x_max:3.0 ~n_knots:16 ~init:0.0 in
  let final, stats =
    Ls.minimize
      ~config:{ Ls.default_config with Ls.max_iterations = 300; grad_tolerance = 1e-4 }
      ~f:(fun knots -> Sp.loss { s with Sp.knots } data)
      ~f_grad:(fun knots -> Sp.loss_grad { s with Sp.knots } data)
      s.Sp.knots
  in
  Test_util.check_true "fits the curve" (stats.Ls.final_loss < 0.01);
  (* the fitted spline tracks the generating curve *)
  let fitted = { s with Sp.knots = final } in
  Test_util.check_close ~eps:0.2 "tracks ground truth" (Sp.global_curve 1.5)
    (Sp.eval fitted 1.5)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "spline.model",
      [
        tc "validation" `Quick test_create_validation;
        tc "constant spline" `Quick test_constant_spline;
        tc "interpolates control points" `Quick test_interpolates_knots;
        tc "clamps out of range" `Quick test_clamps_out_of_range;
        tc "eval_rev primal agrees" `Quick test_eval_rev_matches_eval;
        tc "loss gradient vs finite diff" `Quick test_loss_grad_matches_finite_diff;
        tc "tape instrumentation" `Quick test_tape_ops_positive;
      ] );
    ( "spline.line_search",
      [
        tc "quadratic converges" `Quick test_line_search_quadratic;
        tc "monotone descent" `Quick test_line_search_monotone_descent;
        tc "rosenbrock" `Slow test_line_search_rosenbrock;
        tc "stats counting" `Quick test_line_search_stats_counting;
        tc "iteration cap" `Quick test_line_search_iteration_cap;
        tc "end-to-end spline fit" `Quick test_spline_fit_end_to_end;
      ] );
  ]
