(** Tests for the synthetic dataset library. *)

open S4o_tensor
module Ds = S4o_data.Dataset

let test_mnist_shapes () =
  let d = Ds.synthetic_mnist (Prng.create 1) ~n:20 in
  Test_util.check_true "image shape" (Dense.shape d.Ds.images = [| 20; 28; 28; 1 |]);
  Test_util.check_int "labels" 20 (Array.length d.Ds.labels);
  Test_util.check_int "classes" 10 d.Ds.classes;
  Array.iter
    (fun l -> Test_util.check_true "label range" (l >= 0 && l < 10))
    d.Ds.labels

let test_cifar_imagenet_shapes () =
  let c = Ds.synthetic_cifar10 (Prng.create 2) ~n:4 in
  Test_util.check_true "cifar" (Dense.shape c.Ds.images = [| 4; 32; 32; 3 |]);
  let i = Ds.synthetic_imagenet (Prng.create 3) ~size:32 ~classes:5 ~n:2 in
  Test_util.check_true "scaled imagenet" (Dense.shape i.Ds.images = [| 2; 32; 32; 3 |]);
  Test_util.check_int "imagenet classes" 5 i.Ds.classes

let test_deterministic () =
  let a = Ds.synthetic_mnist (Prng.create 9) ~n:8 in
  let b = Ds.synthetic_mnist (Prng.create 9) ~n:8 in
  Test_util.check_true "identical datasets" (Dense.equal a.Ds.images b.Ds.images);
  Test_util.check_true "identical labels" (a.Ds.labels = b.Ds.labels)

let test_same_class_similar () =
  (* two examples of the same class are much closer than different classes *)
  let d = Ds.synthetic_mnist ~noise:0.1 (Prng.create 4) ~n:100 in
  let image i =
    Dense.init_flat [| 784 |] (fun off -> Dense.get_flat d.Ds.images ((i * 784) + off))
  in
  let dist a b =
    let diff = Dense.sub (image a) (image b) in
    Dense.sum (Dense.mul diff diff)
  in
  (* find same-class and cross-class pairs *)
  let same = ref None and cross = ref None in
  Array.iteri
    (fun i li ->
      Array.iteri
        (fun j lj ->
          if i < j then
            if li = lj && !same = None then same := Some (i, j)
            else if li <> lj && !cross = None then cross := Some (i, j))
        d.Ds.labels)
    d.Ds.labels;
  match (!same, !cross) with
  | Some (a, b), Some (c, e) ->
      Test_util.check_true "same class closer" (dist a b < dist c e /. 2.0)
  | _ -> Alcotest.fail "pairs not found"

let test_batches () =
  let d = Ds.synthetic_mnist (Prng.create 5) ~n:70 in
  let bs = Ds.batches d ~batch_size:32 in
  (* ragged tail dropped: 70 / 32 = 2 batches *)
  Test_util.check_int "batch count" 2 (List.length bs);
  let images, one_hot, labels = List.hd bs in
  Test_util.check_true "batch images" (Dense.shape images = [| 32; 28; 28; 1 |]);
  Test_util.check_true "one-hot shape" (Dense.shape one_hot = [| 32; 10 |]);
  Array.iteri
    (fun i l ->
      Test_util.check_close "one-hot matches label" 1.0 (Dense.get one_hot [| i; l |]))
    labels

let test_shuffled_batches_preserve_labels () =
  let d = Ds.synthetic_mnist (Prng.create 6) ~n:64 in
  let plain = Ds.batches d ~batch_size:32 in
  let shuffled = Ds.batches d ~batch_size:32 ~shuffle_rng:(Prng.create 7) in
  let histogram bs =
    let h = Array.make 10 0 in
    List.iter (fun (_, _, ls) -> Array.iter (fun l -> h.(l) <- h.(l) + 1) ls) bs;
    h
  in
  Test_util.check_true "label multiset preserved"
    (histogram plain = histogram shuffled)

let test_split () =
  let d = Ds.synthetic_mnist (Prng.create 8) ~n:50 in
  let train, test = Ds.split d ~train:40 in
  Test_util.check_int "train size" 40 (Ds.n_examples train);
  Test_util.check_int "test size" 10 (Ds.n_examples test);
  (* split preserves alignment between images and labels *)
  Test_util.check_int "test labels align" d.Ds.labels.(40) test.Ds.labels.(0);
  Test_util.check_raises_any "bad split" (fun () -> Ds.split d ~train:50)

let test_two_arcs () =
  let d = Ds.two_arcs (Prng.create 10) ~n:20 in
  Test_util.check_true "shape" (Dense.shape d.Ds.images = [| 20; 1; 1; 2 |]);
  Test_util.check_int "binary" 2 d.Ds.classes

let test_batches_invalid () =
  let d = Ds.two_arcs (Prng.create 11) ~n:8 in
  Test_util.check_raises_any "zero batch" (fun () -> Ds.batches d ~batch_size:0)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "data.datasets",
      [
        tc "mnist shapes" `Quick test_mnist_shapes;
        tc "cifar and imagenet shapes" `Quick test_cifar_imagenet_shapes;
        tc "deterministic" `Quick test_deterministic;
        tc "class structure is learnable" `Quick test_same_class_similar;
        tc "batching" `Quick test_batches;
        tc "shuffle preserves labels" `Quick test_shuffled_batches_preserve_labels;
        tc "split" `Quick test_split;
        tc "two arcs" `Quick test_two_arcs;
        tc "invalid batch size" `Quick test_batches_invalid;
      ] );
  ]
