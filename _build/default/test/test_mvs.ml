(** Tests for mutable value semantics (§4): the copy-on-write buffer, the
    array-subscript AD formulations of Appendix B, the inout/pass-by-value
    equivalence of Appendix A (Figure 8), and the model-update shapes of
    §4.2. *)

open S4o_tensor
module Cow = S4o_mvs.Cow
module Sub = S4o_mvs.Subscript_ad
module Inout = S4o_mvs.Inout

(* {1 Copy-on-write value semantics} *)

let test_cow_no_spooky_action () =
  (* the Figure 5 scenario: x = [3]; y = x; x[0] += 1 *)
  let x = Cow.of_array [| 3.0 |] in
  let y = Cow.copy x in
  Cow.add_at x 0 1.0;
  Test_util.check_float "x sees its mutation" 4.0 (Cow.get x 0);
  Test_util.check_float "y does NOT (value semantics)" 3.0 (Cow.get y 0)

let test_cow_copy_is_lazy () =
  Cow.reset_copy_count ();
  let x = Cow.create 1000 1.0 in
  let copies = List.init 10 (fun _ -> Cow.copy x) in
  Test_util.check_int "no physical copies yet" 0 (Cow.copy_count ());
  Test_util.check_true "storage shared" (Cow.is_shared x);
  (* first mutation through one handle pays exactly one copy *)
  Cow.set (List.hd copies) 0 9.0;
  Test_util.check_int "one copy on first mutation" 1 (Cow.copy_count ());
  (* mutating the same (now unique) handle again is free *)
  Cow.set (List.hd copies) 1 9.0;
  Test_util.check_int "no further copies" 1 (Cow.copy_count ())

let test_cow_unique_mutation_is_free () =
  Cow.reset_copy_count ();
  let x = Cow.create 10 0.0 in
  Cow.set x 3 1.0;
  Cow.map_inplace (fun v -> v +. 1.0) x;
  Test_util.check_int "unshared mutation copies nothing" 0 (Cow.copy_count ());
  Test_util.check_float "mutations applied" 2.0 (Cow.get x 3)

let test_cow_blend () =
  let dst = Cow.of_array [| 1.0; 2.0 |] in
  let src = Cow.of_array [| 10.0; 10.0 |] in
  Cow.blend ~alpha:0.5 dst src;
  Test_util.check_float "blend" 6.0 (Cow.get dst 0);
  Test_util.check_raises_any "length mismatch" (fun () ->
      Cow.blend ~alpha:1.0 dst (Cow.create 3 0.0))

let qcheck_cow_equals_plain_array =
  (* a random sequence of copies and mutations behaves identically to an
     oracle using eager full copies *)
  Test_util.qtest ~count:100 "CoW is observationally a value type"
    QCheck.(list_of_size (Gen.int_range 1 40) (pair (int_range 0 3) (int_range 0 7)))
    (fun script ->
      let cows = Array.init 4 (fun _ -> Cow.create 8 0.0) in
      let oracle = Array.init 4 (fun _ -> Array.make 8 0.0) in
      List.iteri
        (fun step (which, idx) ->
          if step mod 3 = 0 then begin
            (* copy handle (which) over handle (which+1 mod 4) *)
            let dst = (which + 1) mod 4 in
            cows.(dst) <- Cow.copy cows.(which);
            oracle.(dst) <- Array.copy oracle.(which)
          end
          else begin
            Cow.set cows.(which) idx (float_of_int step);
            oracle.(which).(idx) <- float_of_int step
          end)
        script;
      Array.for_all2 (fun c o -> Cow.to_array c = o) cows oracle)

(* {1 Appendix B: subscript pullbacks} *)

let test_subscript_pullbacks_agree () =
  let values = Array.init 20 (fun i -> float_of_int i *. 0.5) in
  let gf = Sub.grad_my_op_functional values 3 11 in
  let gi = Sub.grad_my_op_inout values 3 11 in
  Test_util.check_float_array "functional = inout" gf gi;
  Test_util.check_float "one at a" 1.0 gf.(3);
  Test_util.check_float "one at b" 1.0 gf.(11);
  Test_util.check_float "zero elsewhere" 0.0 gf.(0)

let test_subscript_repeated_index_accumulates () =
  let values = Array.init 8 float_of_int in
  (* a = b: gradient 2 at that index *)
  let gf = Sub.grad_my_op_functional values 5 5 in
  let gi = Sub.grad_my_op_inout values 5 5 in
  Test_util.check_float "functional accumulates" 2.0 gf.(5);
  Test_util.check_float "inout accumulates" 2.0 gi.(5)

let test_gather_pullbacks_agree () =
  let values = Array.init 30 (fun i -> Float.sin (float_of_int i)) in
  let indices = [| 0; 7; 7; 29; 13 |] in
  Test_util.check_float_array "gather grads agree"
    (Sub.grad_gather_functional values indices)
    (Sub.grad_gather_inout values indices);
  Test_util.check_float "repeated gather index" 2.0
    (Sub.grad_gather_inout values indices).(7)

let test_subscript_primal_values () =
  let values = [| 1.0; 2.0; 4.0 |] in
  let v, _ = Sub.my_op_functional values 0 2 in
  Test_util.check_float "primal" 5.0 v;
  let v2, _ = Sub.my_op_inout values 0 2 in
  Test_util.check_float "primal inout" 5.0 v2

let test_inout_pullback_composes () =
  (* run two pullbacks into the same buffer: contributions accumulate, the
     "composes correctly in the presence of additional operations" claim *)
  let values = Array.init 10 float_of_int in
  let g = Array.make 10 0.0 in
  let _, pb1 = Sub.my_op_inout values 1 2 in
  let _, pb2 = Sub.my_op_inout values 2 3 in
  pb1 1.0 g;
  pb2 1.0 g;
  Test_util.check_float_array "accumulated"
    [| 0.; 1.; 2.; 1.; 0.; 0.; 0.; 0.; 0.; 0. |]
    g

(* {1 Trees: big-to-small derivatives} *)

let rec full_tree depth v =
  if depth = 0 then Sub.Leaf
  else
    Sub.Node
      {
        value = v;
        left = full_tree (depth - 1) (v *. 2.0);
        right = full_tree (depth - 1) ((v *. 2.0) +. 1.0);
      }

let test_tree_read_and_pullback () =
  let t = full_tree 4 1.0 in
  let path = [ true; false; true ] in
  let v, pb = Sub.tree_read t path in
  Test_util.check_float "vertex value" 10.0 v;
  let g = Sub.gtree_zero_like t in
  pb 2.5 g;
  Test_util.check_float "gradient lands on the path" 2.5 (Sub.gtree_lookup g path);
  Test_util.check_float "empty elsewhere" 0.0 (Sub.gtree_lookup g [ false ])

let test_tree_path_errors () =
  let t = full_tree 2 1.0 in
  Test_util.check_raises_any "path too deep" (fun () ->
      Sub.tree_read t [ true; true; true ])

(* {1 Appendix A: inout = pass-by-value} *)

let test_inc_equivalence () =
  (* both programs print "3 true" *)
  let y = ref 2 in
  let z = Inout.inc_inout y in
  let y', z' = Inout.inc_value 2 in
  Test_util.check_int "inout y" 3 !y;
  Test_util.check_int "value y" 3 y';
  Test_util.check_bool "flags agree" z z'

let qcheck_inc_equivalence =
  Test_util.qtest "Figure 8 equivalence for all inputs"
    QCheck.(int_range (-100) 100)
    (fun x ->
      let r = ref x in
      let b = Inout.inc_inout r in
      let x', b' = Inout.inc_value x in
      !r = x' && b = b')

(* {1 S4.2: model update shapes} *)

let test_update_styles_agree () =
  let rng = Prng.create 1 in
  let model = Inout.synthetic_model rng ~layers:3 ~width:4 in
  let grads = Inout.synthetic_model rng ~layers:3 ~width:4 in
  let functional = Inout.functional_update model grads ~lr:0.1 in
  (* in-place on a deep copy *)
  let copy = Array.map Dense.copy model in
  Inout.inplace_update copy grads ~lr:0.1 ;
  Array.iteri
    (fun i t -> Test_util.check_tensor "same result" functional.(i) t)
    copy

let test_functional_update_preserves_input () =
  let rng = Prng.create 2 in
  let model = Inout.synthetic_model rng ~layers:1 ~width:2 in
  let before = Dense.copy model.(0) in
  let grads = Inout.synthetic_model rng ~layers:1 ~width:2 in
  let _ = Inout.functional_update model grads ~lr:0.5 in
  Test_util.check_tensor "input model untouched" before model.(0)

let test_model_bytes () =
  let rng = Prng.create 3 in
  let model = Inout.synthetic_model rng ~layers:2 ~width:8 in
  Test_util.check_int "8 bytes per param" (2 * 8 * 8 * 8) (Inout.bytes_of_model model)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "mvs.cow",
      [
        tc "no spooky action at a distance" `Quick test_cow_no_spooky_action;
        tc "copies are lazy" `Quick test_cow_copy_is_lazy;
        tc "unique mutation free" `Quick test_cow_unique_mutation_is_free;
        tc "blend" `Quick test_cow_blend;
        qcheck_cow_equals_plain_array;
      ] );
    ( "mvs.subscript_ad",
      [
        tc "pullback formulations agree" `Quick test_subscript_pullbacks_agree;
        tc "repeated index accumulates" `Quick test_subscript_repeated_index_accumulates;
        tc "gather agrees" `Quick test_gather_pullbacks_agree;
        tc "primal values" `Quick test_subscript_primal_values;
        tc "inout pullbacks compose" `Quick test_inout_pullback_composes;
        tc "tree big-to-small derivative" `Quick test_tree_read_and_pullback;
        tc "tree path errors" `Quick test_tree_path_errors;
      ] );
    ( "mvs.inout",
      [
        tc "Figure 8 programs agree" `Quick test_inc_equivalence;
        qcheck_inc_equivalence;
        tc "update styles agree" `Quick test_update_styles_agree;
        tc "functional preserves input" `Quick test_functional_update_preserves_input;
        tc "model byte accounting" `Quick test_model_bytes;
      ] );
  ]
