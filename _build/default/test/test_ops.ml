(** Tests for the shared op catalog: every entry's kernel must agree with the
    corresponding {!S4o_tensor.Dense} reference, its declared output shape
    must match what the kernel produces, and its cost metadata must be
    sensible — these are the invariants that keep the eager and lazy
    runtimes semantically interchangeable. *)

open S4o_tensor
module C = S4o_ops.Catalog
module Op = S4o_device.Op_info

let rng = Prng.create 31

let run (op : C.op) args =
  let out = op.C.kernel args in
  if not (Shape.equal (Dense.shape out) op.C.out_shape) then
    Alcotest.failf "%s: declared shape %s, kernel produced %s" op.C.name
      (Shape.to_string op.C.out_shape)
      (Shape.to_string (Dense.shape out));
  out

let test_binary_ops_match_dense () =
  let a = Dense.rand_normal rng [| 3; 4 |] in
  let b = Dense.rand_normal rng [| 3; 4 |] in
  let cases =
    [
      ("add", (fun a b -> C.add a b), Dense.add);
      ("sub", (fun a b -> C.sub a b), Dense.sub);
      ("mul", (fun a b -> C.mul a b), Dense.mul);
      ("div", (fun a b -> C.div a b), Dense.div);
    ]
  in
  List.iter
    (fun (name, mk, reference) ->
      let op = mk (Dense.shape a) (Dense.shape b) in
      Test_util.check_tensor name (reference a b) (run op [| a; b |]))
    cases

let test_binary_broadcast_shape () =
  let op = C.add [| 3; 1 |] [| 4 |] in
  Test_util.check_true "broadcast output" (op.C.out_shape = [| 3; 4 |])

let test_unary_ops_match_dense () =
  let a = Dense.rand_uniform rng ~lo:0.1 ~hi:2.0 [| 5 |] in
  let cases =
    [
      ("neg", (fun a -> C.neg a), Dense.neg);
      ("exp", (fun a -> C.exp a), Dense.exp);
      ("log", (fun a -> C.log a), Dense.log);
      ("sqrt", (fun a -> C.sqrt a), Dense.sqrt);
      ("relu", (fun a -> C.relu a), Dense.relu);
      ("sigmoid", (fun a -> C.sigmoid a), Dense.sigmoid);
      ("tanh", (fun a -> C.tanh a), Dense.tanh);
    ]
  in
  List.iter
    (fun (name, mk, reference) ->
      let op = mk (Dense.shape a) in
      Test_util.check_tensor name (reference a) (run op [| a |]))
    cases

let test_scale_attrs_distinguish_constants () =
  let a = C.scale 2.0 [| 4 |] in
  let b = C.scale 3.0 [| 4 |] in
  Test_util.check_true "constants recorded in attrs" (a.C.attrs <> b.C.attrs)

let test_relu_grad_kernel () =
  let x = Dense.of_array [| 4 |] [| -1.0; 2.0; -3.0; 4.0 |] in
  let g = Dense.of_array [| 4 |] [| 10.0; 10.0; 10.0; 10.0 |] in
  let op = C.relu_grad (Dense.shape x) (Dense.shape g) in
  Test_util.check_tensor "mask applied"
    (Dense.of_array [| 4 |] [| 0.0; 10.0; 0.0; 10.0 |])
    (run op [| x; g |])

let test_matmul_op () =
  let a = Dense.rand_normal rng [| 2; 3 |] in
  let b = Dense.rand_normal rng [| 3; 5 |] in
  let op = C.matmul (Dense.shape a) (Dense.shape b) in
  Test_util.check_tensor "matmul" (Dense.matmul a b) (run op [| a; b |]);
  Test_util.check_int "flops 2mkn" (2 * 2 * 3 * 5) op.C.info.Op.flops;
  Test_util.check_true "contraction" (op.C.info.Op.kind = Op.Contraction);
  Test_util.check_raises_any "shape checked at build time" (fun () ->
      C.matmul [| 2; 3 |] [| 4; 5 |])

let test_conv_op_and_backwards () =
  let x = Dense.rand_normal rng [| 1; 6; 6; 2 |] in
  let f = Dense.rand_normal rng [| 3; 3; 2; 4 |] in
  let padding = Convolution.Same in
  let fwd = C.conv2d ~padding (Dense.shape x) (Dense.shape f) in
  let y = run fwd [| x; f |] in
  Test_util.check_tensor "conv forward" (Convolution.conv2d ~padding x f) y;
  let bwd_in =
    C.conv2d_backward_input ~padding ~input_shape:(Dense.shape x)
      (Dense.shape f) (Dense.shape y)
  in
  Test_util.check_tensor "conv backward input"
    (Convolution.conv2d_backward_input ~padding ~input_shape:(Dense.shape x) f y)
    (run bwd_in [| f; y |]);
  let bwd_f =
    C.conv2d_backward_filter ~padding ~filter_shape:(Dense.shape f)
      (Dense.shape x) (Dense.shape y)
  in
  Test_util.check_tensor "conv backward filter"
    (Convolution.conv2d_backward_filter ~padding ~filter_shape:(Dense.shape f) x y)
    (run bwd_f [| x; y |]);
  (* training flop accounting: each backward conv costs about one forward *)
  Test_util.check_int "backward input flops" fwd.C.info.Op.flops
    bwd_in.C.info.Op.flops

let test_pool_ops () =
  let x = Dense.rand_normal rng [| 1; 4; 4; 3 |] in
  let avg = C.avg_pool2d ~size:(2, 2) ~stride:(2, 2) (Dense.shape x) in
  Test_util.check_tensor "avg pool"
    (Convolution.avg_pool2d ~size:(2, 2) ~stride:(2, 2) x)
    (run avg [| x |]);
  let mx = C.max_pool2d ~size:(2, 2) ~stride:(2, 2) (Dense.shape x) in
  Test_util.check_tensor "max pool"
    (Convolution.max_pool2d ~size:(2, 2) ~stride:(2, 2) x)
    (run mx [| x |])

let test_reduction_ops () =
  let x = Dense.rand_normal rng [| 3; 4 |] in
  let s = C.sum_axes (Dense.shape x) [ 0 ] in
  Test_util.check_tensor "sum_axes" (Dense.sum_axes x [ 0 ]) (run s [| x |]);
  let sa = C.sum_all (Dense.shape x) in
  Test_util.check_close "sum_all" (Dense.sum x) (Dense.item (run sa [| x |]));
  let ma = C.mean_all (Dense.shape x) in
  Test_util.check_close "mean_all" (Dense.mean x) (Dense.item (run ma [| x |]))

let test_shape_ops () =
  let x = Dense.rand_normal rng [| 2; 6 |] in
  let r = C.reshape (Dense.shape x) [| 3; 4 |] in
  Test_util.check_tensor "reshape" (Dense.reshape x [| 3; 4 |]) (run r [| x |]);
  Test_util.check_raises_any "reshape checked" (fun () ->
      C.reshape [| 2; 6 |] [| 5 |]);
  let t = C.transpose (Dense.shape x) in
  Test_util.check_tensor "transpose" (Dense.transpose x) (run t [| x |]);
  let row = Dense.rand_normal rng [| 6 |] in
  let b = C.broadcast_to [| 6 |] [| 2; 6 |] in
  Test_util.check_tensor "broadcast" (Dense.broadcast_to row [| 2; 6 |]) (run b [| row |]);
  let u = C.unbroadcast [| 2; 6 |] [| 6 |] in
  Test_util.check_tensor "unbroadcast" (Dense.unbroadcast x [| 6 |]) (run u [| x |])

let test_softmax_ops () =
  let x = Dense.rand_normal rng [| 3; 5 |] in
  let s = C.softmax (Dense.shape x) in
  Test_util.check_tensor "softmax" (Dense.softmax x) (run s [| x |]);
  let ls = C.log_softmax (Dense.shape x) in
  Test_util.check_tensor "log_softmax" (Dense.log_softmax x) (run ls [| x |])

let test_cost_metadata_sane () =
  (* every constructor yields non-negative costs and positive output bytes *)
  let ops =
    [
      C.add [| 8 |] [| 8 |];
      C.relu [| 8 |];
      C.matmul [| 4; 4 |] [| 4; 4 |];
      C.conv2d ~padding:Convolution.Same [| 1; 8; 8; 1 |] [| 3; 3; 1; 2 |];
      C.sum_all [| 64 |];
      C.reshape [| 8 |] [| 2; 4 |];
      C.softmax [| 2; 4 |];
      C.avg_pool2d ~size:(2, 2) ~stride:(2, 2) [| 1; 8; 8; 1 |];
    ]
  in
  List.iter
    (fun (op : C.op) ->
      Test_util.check_true (op.C.name ^ " flops >= 0") (op.C.info.Op.flops >= 0);
      Test_util.check_true (op.C.name ^ " bytes out > 0") (op.C.info.Op.bytes_out > 0))
    ops

let qcheck_elementwise_flops_scale_with_numel =
  Test_util.qtest ~count:50 "elementwise flops = output numel"
    QCheck.(pair (int_range 1 20) (int_range 1 20))
    (fun (a, b) ->
      let op = C.add [| a; b |] [| a; b |] in
      op.C.info.Op.flops = a * b)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "ops.catalog",
      [
        tc "binary ops match Dense" `Quick test_binary_ops_match_dense;
        tc "binary broadcast shapes" `Quick test_binary_broadcast_shape;
        tc "unary ops match Dense" `Quick test_unary_ops_match_dense;
        tc "scale constants in attrs" `Quick test_scale_attrs_distinguish_constants;
        tc "relu_grad kernel" `Quick test_relu_grad_kernel;
        tc "matmul" `Quick test_matmul_op;
        tc "conv2d and backwards" `Quick test_conv_op_and_backwards;
        tc "pools" `Quick test_pool_ops;
        tc "reductions" `Quick test_reduction_ops;
        tc "shape ops" `Quick test_shape_ops;
        tc "softmax" `Quick test_softmax_ops;
        tc "cost metadata sane" `Quick test_cost_metadata_sane;
        qcheck_elementwise_flops_scale_with_numel;
      ] );
  ]
