(** Tests for the NN library (§4.1–4.2): layers, parameter slots, models
    (including the exact LeNet-5 of Figure 6), optimizers, and the training
    loop of Figure 7. *)

open S4o_tensor
module Bk = Naive_backend
module L = S4o_nn.Layer.Make (Bk)
module M = S4o_nn.Models.Make (Bk)
module O = S4o_nn.Optimizer.Make (Bk)
module T = S4o_nn.Train.Make (Bk)

let rng () = Prng.create 77

let forward layer x =
  let ctx = L.D.new_ctx () in
  L.D.value (L.apply layer ctx (L.D.const x))

(* {1 Layers} *)

let test_dense_layer_shapes () =
  let layer = L.dense (rng ()) ~inputs:4 ~outputs:3 () in
  let y = forward layer (Dense.zeros [| 2; 4 |]) in
  Test_util.check_true "output shape" (Dense.shape y = [| 2; 3 |]);
  Test_util.check_int "two slots" 2 (List.length (L.slots layer));
  Test_util.check_int "param count" ((4 * 3) + 3) (L.param_count layer)

let test_dense_layer_math () =
  let layer = L.dense (rng ()) ~inputs:2 ~outputs:1 () in
  (* overwrite weights with known values *)
  (match L.slots layer with
  | [ w; b ] ->
      L.Slot.set_data w (Dense.of_array [| 2; 1 |] [| 2.0; 3.0 |]);
      L.Slot.set_data b (Dense.of_array [| 1 |] [| 10.0 |])
  | _ -> Alcotest.fail "slots");
  let y = forward layer (Dense.of_array [| 1; 2 |] [| 1.0; 1.0 |]) in
  Test_util.check_close "wx + b" 15.0 (Dense.item y)

let test_conv_layer_shapes () =
  let layer =
    L.conv2d (rng ()) ~filter:(3, 3, 1, 4) ~padding:Convolution.Same ()
  in
  let y = forward layer (Dense.zeros [| 2; 8; 8; 1 |]) in
  Test_util.check_true "same conv shape" (Dense.shape y = [| 2; 8; 8; 4 |]);
  let strided =
    L.conv2d (rng ()) ~filter:(3, 3, 1, 4) ~stride:(2, 2)
      ~padding:Convolution.Same ~use_bias:false ()
  in
  let y2 = forward strided (Dense.zeros [| 2; 8; 8; 1 |]) in
  Test_util.check_true "strided shape" (Dense.shape y2 = [| 2; 4; 4; 4 |]);
  Test_util.check_int "no bias slot" 1 (List.length (L.slots strided))

let test_flatten_layer () =
  let y = forward L.flatten (Dense.zeros [| 2; 3; 4; 5 |]) in
  Test_util.check_true "flattened" (Dense.shape y = [| 2; 60 |])

let test_pool_layers () =
  let x = Dense.of_array [| 1; 2; 2; 1 |] [| 1.; 2.; 3.; 4. |] in
  let avg = forward (L.avg_pool2d ~size:(2, 2) ~stride:(2, 2)) x in
  Test_util.check_close "avg" 2.5 (Dense.item avg);
  let max_ = forward (L.max_pool2d ~size:(2, 2) ~stride:(2, 2)) x in
  Test_util.check_close "max" 4.0 (Dense.item max_)

let test_batch_norm_normalizes () =
  let layer = L.batch_norm ~features:2 () in
  let g = Prng.create 5 in
  let x =
    Dense.add
      (Dense.rand_normal g ~stddev:4.0 [| 64; 2 |])
      (Dense.of_array [| 2 |] [| 10.0; -5.0 |])
  in
  let y = forward layer x in
  (* with gamma=1, beta=0: output has ~zero mean and ~unit variance per
     channel *)
  let col j =
    Array.init 64 (fun i -> Dense.get y [| i; j |])
  in
  List.iter
    (fun j ->
      let c = col j in
      let mean = Array.fold_left ( +. ) 0.0 c /. 64.0 in
      let var = Array.fold_left (fun a v -> a +. ((v -. mean) ** 2.0)) 0.0 c /. 64.0 in
      Test_util.check_close ~eps:1e-3 "zero mean" 0.0 mean;
      Test_util.check_close ~eps:1e-2 "unit variance" 1.0 var)
    [ 0; 1 ]

let test_dropout () =
  let g = Prng.create 6 in
  let layer = L.dropout g ~rate:0.5 in
  let x = Dense.ones [| 1000 |] in
  let y = forward layer x in
  (* kept elements are scaled by 1/keep; expectation preserved *)
  Test_util.check_close ~eps:0.1 "expectation preserved" 1.0 (Dense.mean y);
  let zeros = Array.fold_left (fun acc v -> if v = 0.0 then acc + 1 else acc) 0 (Dense.to_array y) in
  Test_util.check_true "roughly half dropped" (zeros > 400 && zeros < 600);
  Test_util.check_raises_any "invalid rate" (fun () -> L.dropout g ~rate:1.0)

let test_sequential_and_residual () =
  let double = L.activation "double" (fun x -> L.D.scale 2.0 x) in
  let seq = L.sequential [ double; double ] in
  Test_util.check_close "composition" 4.0 (Dense.item (forward seq (Dense.scalar 1.0)));
  let res = L.residual ~body:double ~shortcut:L.identity () in
  Test_util.check_close "residual" 3.0 (Dense.item (forward res (Dense.scalar 1.0)))

let test_slot_tracking_idempotent () =
  let layer = L.dense (rng ()) ~inputs:2 ~outputs:2 () in
  let ctx = L.D.new_ctx () in
  let slot = List.hd (L.slots layer) in
  let v1 = L.Slot.track ctx slot in
  let v2 = L.Slot.track ctx slot in
  Test_util.check_true "same var per tape" (v1 == v2);
  let ctx2 = L.D.new_ctx () in
  let v3 = L.Slot.track ctx2 slot in
  Test_util.check_true "fresh var per new tape" (v1 != v3)

let test_glorot_init_bounds () =
  let layer = L.dense (rng ()) ~inputs:100 ~outputs:100 () in
  let w = L.Slot.data (List.hd (L.slots layer)) in
  let limit = Float.sqrt (6.0 /. 200.0) in
  Test_util.check_true "within glorot bounds"
    (Dense.max_value w <= limit && Dense.min_value w >= -.limit)

(* {1 Models} *)

let test_lenet_structure () =
  let model = M.lenet (rng ()) in
  (* the canonical LeNet-5 parameter count *)
  Test_util.check_int "exactly 61706 parameters" 61706 (L.param_count model);
  let y = forward model (Dense.zeros [| 3; 28; 28; 1 |]) in
  Test_util.check_true "logits shape" (Dense.shape y = [| 3; 10 |])

let test_resnet_tiny_shapes () =
  let model = M.resnet (rng ()) ~in_channels:3 (M.resnet_tiny_config ~classes:10) in
  let y = forward model (Dense.zeros [| 2; 16; 16; 3 |]) in
  Test_util.check_true "logits shape" (Dense.shape y = [| 2; 10 |])

let test_resnet56_param_count () =
  let model = M.resnet56 (rng ()) in
  (* ~0.86M parameters, the canonical ResNet-56 size *)
  let n = L.param_count model in
  Test_util.check_true "about 0.86M params" (n > 840_000 && n < 870_000)

let test_mlp () =
  let model = M.mlp (rng ()) ~inputs:2 ~hidden:8 ~outputs:2 in
  let y = forward model (Dense.zeros [| 4; 1; 1; 2 |]) in
  Test_util.check_true "mlp shape" (Dense.shape y = [| 4; 2 |])

(* {1 Optimizers} *)

let one_param_layer value =
  let slot = L.Slot.create "p" (Bk.of_dense (Dense.scalar value)) in
  {
    L.name = "probe";
    slots = [ slot ];
    apply = (fun ctx _x -> L.Slot.track ctx slot);
  }

let run_step layer opt =
  let ctx = L.D.new_ctx () in
  (* loss = p^2: gradient 2p *)
  let p = L.apply layer ctx (L.D.const (Dense.scalar 0.0)) in
  let loss = L.D.mul p p in
  L.D.backward ctx loss;
  opt.O.step ()

let param_value layer =
  Dense.item (L.Slot.data (List.hd (L.slots layer)))

let test_sgd_step () =
  let layer = one_param_layer 3.0 in
  let opt = O.sgd ~lr:0.1 layer in
  run_step layer opt;
  (* p <- p - lr * 2p = 3 - 0.6 *)
  Test_util.check_close "sgd update" 2.4 (param_value layer)

let test_sgd_momentum_accumulates () =
  let layer = one_param_layer 1.0 in
  let opt = O.sgd ~momentum:0.5 ~lr:0.1 layer in
  run_step layer opt;
  (* v1 = lr*2 = 0.2 ; p = 0.8 *)
  Test_util.check_close "first step" 0.8 (param_value layer);
  run_step layer opt;
  (* g = 1.6; v2 = 0.5*0.2 + 0.16 = 0.26; p = 0.54 *)
  Test_util.check_close "momentum carries" 0.54 (param_value layer)

let test_adam_first_step_size () =
  let layer = one_param_layer 5.0 in
  let opt = O.adam ~lr:0.001 layer in
  run_step layer opt;
  (* Adam's bias-corrected first step is ~lr regardless of gradient scale *)
  Test_util.check_close ~eps:1e-6 "first step ~ lr" (5.0 -. 0.001) (param_value layer)

let test_optimizer_state_exposed () =
  let layer = one_param_layer 1.0 in
  let opt = O.sgd ~momentum:0.9 ~lr:0.1 layer in
  Test_util.check_int "no state before first step" 1
    (List.length (O.updated_params opt));
  run_step layer opt;
  Test_util.check_int "params + velocity" 2 (List.length (O.updated_params opt))

(* {1 Training loop (Figure 7)} *)

let test_training_reduces_loss () =
  let r = rng () in
  let data = S4o_data.Dataset.two_arcs r ~n:128 in
  let batches = S4o_data.Dataset.batches data ~batch_size:32 in
  let model = M.mlp r ~inputs:2 ~hidden:16 ~outputs:2 in
  let opt = O.adam ~lr:0.01 model in
  let losses = ref [] in
  let _ =
    T.fit ~epochs:8
      ~log:(fun _ s -> losses := s.T.mean_loss :: !losses)
      model opt batches
  in
  match !losses with
  | last :: _ ->
      let first = List.nth !losses (List.length !losses - 1) in
      Test_util.check_true "loss decreased by 2x" (last < first /. 2.0)
  | [] -> Alcotest.fail "no epochs ran"

let test_training_accuracy_improves () =
  let r = rng () in
  let data = S4o_data.Dataset.two_arcs r ~n:128 in
  let batches = S4o_data.Dataset.batches data ~batch_size:32 in
  let model = M.mlp r ~inputs:2 ~hidden:16 ~outputs:2 in
  let opt = O.adam ~lr:0.01 model in
  let stats = T.fit ~epochs:10 model opt batches in
  Test_util.check_true "above 90% on separable data" (stats.T.accuracy > 0.9)

let test_accuracy_of_logits () =
  let logits = Dense.of_array [| 2; 2 |] [| 0.9; 0.1; 0.2; 0.8 |] in
  Test_util.check_close "all correct" 1.0
    (T.accuracy_of_logits (Bk.of_dense logits) [| 0; 1 |]);
  Test_util.check_close "half correct" 0.5
    (T.accuracy_of_logits (Bk.of_dense logits) [| 0; 0 |])

let suite =
  let tc = Alcotest.test_case in
  [
    ( "nn.layers",
      [
        tc "dense shapes" `Quick test_dense_layer_shapes;
        tc "dense math" `Quick test_dense_layer_math;
        tc "conv shapes" `Quick test_conv_layer_shapes;
        tc "flatten" `Quick test_flatten_layer;
        tc "pools" `Quick test_pool_layers;
        tc "batch norm normalizes" `Quick test_batch_norm_normalizes;
        tc "dropout" `Quick test_dropout;
        tc "sequential and residual" `Quick test_sequential_and_residual;
        tc "slot tracking idempotent" `Quick test_slot_tracking_idempotent;
        tc "glorot bounds" `Quick test_glorot_init_bounds;
      ] );
    ( "nn.models",
      [
        tc "LeNet-5 structure (Figure 6)" `Quick test_lenet_structure;
        tc "tiny resnet shapes" `Quick test_resnet_tiny_shapes;
        tc "resnet-56 param count" `Quick test_resnet56_param_count;
        tc "mlp" `Quick test_mlp;
      ] );
    ( "nn.optimizers",
      [
        tc "sgd" `Quick test_sgd_step;
        tc "sgd momentum" `Quick test_sgd_momentum_accumulates;
        tc "adam first step" `Quick test_adam_first_step_size;
        tc "state exposed for barrier" `Quick test_optimizer_state_exposed;
      ] );
    ( "nn.training",
      [
        tc "loss decreases" `Quick test_training_reduces_loss;
        tc "accuracy improves" `Quick test_training_accuracy_improves;
        tc "accuracy helper" `Quick test_accuracy_of_logits;
      ] );
  ]

(* {1 Checkpointing} *)

module Ckpt = S4o_nn.Checkpoint.Make (Bk)

let with_temp_file f =
  let path = Filename.temp_file "s4o_ckpt" ".txt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let logits_of model x =
  let ctx = L.D.new_ctx () in
  Bk.to_dense (L.D.value (L.apply model ctx (L.D.const x)))

let test_checkpoint_roundtrip () =
  with_temp_file (fun path ->
      let trained = M.mlp (Prng.create 1) ~inputs:2 ~hidden:8 ~outputs:2 in
      let fresh = M.mlp (Prng.create 999) ~inputs:2 ~hidden:8 ~outputs:2 in
      let x = Dense.rand_normal (Prng.create 2) [| 4; 1; 1; 2 |] in
      Test_util.check_true "models differ before load"
        (not (Dense.equal (logits_of trained x) (logits_of fresh x)));
      Ckpt.save path trained;
      Ckpt.load path fresh;
      (* exact restore: the %h format round-trips every bit *)
      Test_util.check_true "identical logits after load"
        (Dense.equal (logits_of trained x) (logits_of fresh x)))

let test_checkpoint_shape_mismatch_rejected () =
  with_temp_file (fun path ->
      let a = M.mlp (Prng.create 1) ~inputs:2 ~hidden:8 ~outputs:2 in
      let b = M.mlp (Prng.create 1) ~inputs:2 ~hidden:16 ~outputs:2 in
      Ckpt.save path a;
      Test_util.check_raises_any "shape mismatch" (fun () -> Ckpt.load path b))

let test_checkpoint_slot_count_mismatch_rejected () =
  with_temp_file (fun path ->
      let a = M.mlp (Prng.create 1) ~inputs:2 ~hidden:8 ~outputs:2 in
      let b = M.lenet (Prng.create 1) in
      Ckpt.save path a;
      Test_util.check_raises_any "slot count mismatch" (fun () -> Ckpt.load path b))

let test_checkpoint_garbage_rejected () =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc "not a checkpoint\n";
      close_out oc;
      let a = M.mlp (Prng.create 1) ~inputs:2 ~hidden:8 ~outputs:2 in
      Test_util.check_raises_any "bad magic" (fun () -> Ckpt.load path a))

let checkpoint_suite =
  let tc = Alcotest.test_case in
  [
    ( "nn.checkpoint",
      [
        tc "round trip is exact" `Quick test_checkpoint_roundtrip;
        tc "shape mismatch rejected" `Quick test_checkpoint_shape_mismatch_rejected;
        tc "slot count mismatch rejected" `Quick test_checkpoint_slot_count_mismatch_rejected;
        tc "garbage rejected" `Quick test_checkpoint_garbage_rejected;
      ] );
  ]

let suite = suite @ checkpoint_suite

(* {1 Attention / transformer} *)

module At = S4o_nn.Attention.Make (Bk)

let test_layer_norm_normalizes_last_axis () =
  let layer = At.layer_norm ~features:6 () in
  let g = Prng.create 8 in
  let x = Dense.rand_normal g ~mean:5.0 ~stddev:3.0 [| 4; 6 |] in
  let ctx = At.D.new_ctx () in
  let y = At.D.value (At.L.apply layer ctx (At.D.const (Bk.of_dense x))) in
  for i = 0 to 3 do
    let row = Array.init 6 (fun j -> Dense.get y [| i; j |]) in
    let mean = Array.fold_left ( +. ) 0.0 row /. 6.0 in
    let var = Array.fold_left (fun a v -> a +. ((v -. mean) ** 2.0)) 0.0 row /. 6.0 in
    Test_util.check_close ~eps:1e-4 "row mean 0" 0.0 mean;
    Test_util.check_close ~eps:1e-2 "row var 1" 1.0 var
  done

let test_attention_shapes () =
  let attn = At.self_attention (rng ()) ~d_model:8 () in
  let ctx = At.D.new_ctx () in
  let x = Bk.of_dense (Dense.rand_normal (Prng.create 9) [| 2; 5; 8 |]) in
  let y = At.D.value (At.L.apply attn ctx (At.D.const x)) in
  Test_util.check_true "shape preserved" (Dense.shape (Bk.to_dense y) = [| 2; 5; 8 |])

let test_attention_rows_are_convex_mixtures () =
  (* attention output rows lie within the convex hull of V's rows when V is
     an identity-projection: here check that constant-value sequences are
     preserved exactly (softmax weights sum to 1). *)
  let attn = At.self_attention (rng ()) ~d_model:4 () in
  (* force V and O projections to the identity, Q/K to zero -> uniform attn *)
  List.iter
    (fun slot ->
      let data = Bk.to_dense (At.L.Slot.data slot) in
      let shape = Dense.shape data in
      let label = At.L.Slot.label slot in
      let v =
        if label = "v_w" || label = "o_w" then
          Dense.init shape (fun i -> if i.(0) = i.(1) then 1.0 else 0.0)
        else Dense.zeros shape
      in
      At.L.Slot.set_data slot (Bk.of_dense v))
    (At.L.slots attn);
  let ctx = At.D.new_ctx () in
  let row = [| 1.0; -2.0; 3.0; 0.5 |] in
  let x =
    Dense.init [| 1; 3; 4 |] (fun i -> row.(i.(2)))
    (* same vector at every position *)
  in
  let y = Bk.to_dense (At.D.value (At.L.apply attn ctx (At.D.const (Bk.of_dense x)))) in
  for t = 0 to 2 do
    for d = 0 to 3 do
      Test_util.check_close "uniform attention over identical rows preserves them"
        row.(d)
        (Dense.get y [| 0; t; d |])
    done
  done

let test_transformer_block_gradcheck () =
  (* every parameter of a transformer block receives a finite-difference-
     correct gradient through attention, layer norm and the MLP *)
  let block = At.transformer_block (Prng.create 11) ~d_model:3 ~d_ff:5 () in
  let x = Dense.rand_normal (Prng.create 12) [| 2; 3; 3 |] in
  let loss_of () =
    let ctx = At.D.new_ctx () in
    let y = At.L.apply block ctx (At.D.const (Bk.of_dense x)) in
    let loss = At.D.mean_all (At.D.mul y y) in
    (ctx, loss)
  in
  let slot = List.hd (At.L.slots block) in
  let ctx, loss = loss_of () in
  At.D.backward ctx loss;
  let grad =
    match At.L.Slot.grad slot with
    | Some g -> Bk.to_dense g
    | None -> Alcotest.fail "no grad"
  in
  (* finite differences on two entries of that slot *)
  let base = Bk.to_dense (At.L.Slot.data slot) in
  List.iter
    (fun flat ->
      let h = 1e-5 in
      let eval v =
        At.L.Slot.set_data slot (Bk.of_dense (Dense.set_flat base flat v));
        let _, l = loss_of () in
        Dense.item (Bk.to_dense (At.D.value l))
      in
      let x0 = Dense.get_flat base flat in
      let fd = (eval (x0 +. h) -. eval (x0 -. h)) /. (2.0 *. h) in
      At.L.Slot.set_data slot (Bk.of_dense base);
      Test_util.check_close ~eps:1e-3 "fd matches" fd (Dense.get_flat grad flat))
    [ 0; 3 ]

let test_tiny_transformer_learns () =
  let r = Prng.create 21 in
  let data =
    S4o_data.Dataset.make_prototyped ~name:"seq" ~rng:r ~n:96 ~height:4 ~width:1
      ~channels:6 ~classes:3 ~noise:0.2
  in
  let batches = S4o_data.Dataset.batches data ~batch_size:32 in
  let model = At.tiny_transformer r ~seq_len:4 ~d_model:6 ~d_ff:12 ~blocks:1 ~classes:3 in
  let opt = O.adam ~lr:5e-3 model in
  let stats = T.fit ~epochs:8 model opt batches in
  Test_util.check_true "learns the sequence classes" (stats.T.accuracy > 0.8)

let attention_suite =
  let tc = Alcotest.test_case in
  [
    ( "nn.attention",
      [
        tc "layer norm over last axis" `Quick test_layer_norm_normalizes_last_axis;
        tc "attention shapes" `Quick test_attention_shapes;
        tc "uniform attention preserves constants" `Quick
          test_attention_rows_are_convex_mixtures;
        tc "transformer block gradcheck" `Quick test_transformer_block_gradcheck;
        tc "tiny transformer learns" `Quick test_tiny_transformer_learns;
      ] );
  ]

let suite = suite @ attention_suite

(* {1 Data-parallel training (Table 1 semantics)} *)

module Dp = S4o_nn.Data_parallel.Make (Bk)

let dp_build () = M.mlp (Prng.create 55) ~inputs:2 ~hidden:8 ~outputs:2

let dp_batch () =
  let data = S4o_data.Dataset.two_arcs (Prng.create 56) ~n:32 in
  match S4o_data.Dataset.batches data ~batch_size:32 with
  | [ (images, one_hot, _) ] -> (images, one_hot)
  | _ -> Alcotest.fail "expected one batch"

let test_dp_replicas_start_in_sync () =
  let dp = Dp.create ~replicas:4 dp_build in
  Test_util.check_true "broadcast at init" (Dp.replicas_in_sync dp);
  Test_util.check_int "replica count" 4 (Dp.replica_count dp)

let test_dp_stays_in_sync () =
  let dp = Dp.create ~replicas:4 dp_build in
  let images, labels = dp_batch () in
  for _ = 1 to 3 do
    ignore (Dp.train_step dp ~update:(Dp.sgd_update ~lr:0.1) ~images ~labels)
  done;
  Test_util.check_true "still in sync after steps" (Dp.replicas_in_sync dp)

let test_dp_equivalent_to_single_device () =
  (* the defining invariant: R replicas on shards == 1 device on the global
     batch, to numerical noise *)
  let images, labels = dp_batch () in
  let run replicas =
    let dp = Dp.create ~replicas dp_build in
    for _ = 1 to 4 do
      ignore (Dp.train_step dp ~update:(Dp.sgd_update ~lr:0.1) ~images ~labels)
    done;
    Bk.to_dense (Dp.L.Slot.data (List.hd (Dp.L.slots (Dp.chief dp))))
  in
  let single = run 1 in
  let quad = run 4 in
  Test_util.check_true "4 replicas = 1 device"
    (Dense.allclose ~rtol:1e-9 ~atol:1e-12 single quad)

let test_dp_loss_is_global_mean () =
  let images, labels = dp_batch () in
  let dp1 = Dp.create ~replicas:1 dp_build in
  let dp4 = Dp.create ~replicas:4 dp_build in
  let l1 = Dp.train_step dp1 ~update:(Dp.sgd_update ~lr:0.0) ~images ~labels in
  let l4 = Dp.train_step dp4 ~update:(Dp.sgd_update ~lr:0.0) ~images ~labels in
  Test_util.check_close ~eps:1e-9 "same global loss" l1 l4

let test_dp_all_reduce_mean () =
  let ts =
    List.map
      (fun v -> Bk.of_dense (Dense.of_array [| 2 |] [| v; 2.0 *. v |]))
      [ 1.0; 2.0; 3.0 ]
  in
  Test_util.check_tensor "mean across replicas"
    (Dense.of_array [| 2 |] [| 2.0; 4.0 |])
    (Bk.to_dense (Dp.all_reduce_mean ts))

let test_dp_rejects_ragged_shards () =
  let dp = Dp.create ~replicas:3 dp_build in
  let images, labels = dp_batch () in
  (* 32 examples over 3 replicas *)
  Test_util.check_raises_any "indivisible batch" (fun () ->
      Dp.train_step dp ~update:(Dp.sgd_update ~lr:0.1) ~images ~labels)

let test_dp_training_learns () =
  let data = S4o_data.Dataset.two_arcs (Prng.create 57) ~n:128 in
  let batches = S4o_data.Dataset.batches data ~batch_size:32 in
  let dp = Dp.create ~replicas:4 dp_build in
  let first = ref None and last = ref None in
  for _ = 1 to 6 do
    List.iter
      (fun (images, labels, _) ->
        let l = Dp.train_step dp ~update:(Dp.sgd_update ~lr:0.3) ~images ~labels in
        if !first = None then first := Some l;
        last := Some l)
      batches
  done;
  match (!first, !last) with
  | Some f, Some l -> Test_util.check_true "loss falls" (l < f /. 1.5)
  | _ -> Alcotest.fail "no steps"

let dp_suite =
  let tc = Alcotest.test_case in
  [
    ( "nn.data_parallel",
      [
        tc "replicas start in sync" `Quick test_dp_replicas_start_in_sync;
        tc "replicas stay in sync" `Quick test_dp_stays_in_sync;
        tc "equivalent to single device" `Quick test_dp_equivalent_to_single_device;
        tc "global mean loss" `Quick test_dp_loss_is_global_mean;
        tc "all-reduce mean" `Quick test_dp_all_reduce_mean;
        tc "ragged shards rejected" `Quick test_dp_rejects_ragged_shards;
        tc "learns" `Quick test_dp_training_learns;
      ] );
  ]

let suite = suite @ dp_suite

(* {1 Schedules and clipping} *)

module Sch = S4o_nn.Schedule

let test_schedule_shapes () =
  Test_util.check_close "constant" 0.1 (Sch.constant 0.1 50);
  Test_util.check_close "warmup midpoint" 0.05 (Sch.warmup ~steps:10 ~lr:0.1 5);
  Test_util.check_close "warmup done" 0.1 (Sch.warmup ~steps:10 ~lr:0.1 20);
  Test_util.check_close "step decay" 0.025 (Sch.step_decay ~lr:0.1 ~factor:0.5 ~every:10 21);
  Test_util.check_close "cosine start" 0.1 (Sch.cosine ~lr:0.1 ~lr_min:0.001 ~total:100 1);
  Test_util.check_close "cosine end" 0.001 (Sch.cosine ~lr:0.1 ~lr_min:0.001 ~total:100 200);
  let mid = Sch.cosine ~lr:0.1 ~lr_min:0.0 ~total:101 51 in
  Test_util.check_close ~eps:1e-3 "cosine midpoint" 0.05 mid;
  Test_util.check_close "composed warmup" (0.5 *. 0.1)
    (Sch.with_warmup ~steps:10 (Sch.constant 0.1) 5)

module SchB = S4o_nn.Schedule.Make (Bk)

let test_scheduled_sgd_uses_schedule () =
  (* lr 0 on step 1, lr 0.1 on step 2: the first step must not move *)
  let sched step = if step = 1 then 0.0 else 0.1 in
  let layer = one_param_layer 3.0 in
  let opt = SchB.scheduled_sgd sched layer in
  run_step layer opt;
  Test_util.check_close "lr 0 step is a no-op" 3.0 (param_value layer);
  run_step layer opt;
  (* p <- 3 - 0.1 * 2p = 2.4 *)
  Test_util.check_close "second step uses lr 0.1" 2.4 (param_value layer)

let test_clip_global_norm () =
  let layer = one_param_layer 10.0 in
  let ctx = L.D.new_ctx () in
  let p = L.apply layer ctx (L.D.const (Dense.scalar 0.0)) in
  let loss = L.D.mul p p in
  L.D.backward ctx loss;
  (* gradient 2p = 20; clip to norm 1 *)
  let pre = SchB.clip_global_norm ~max_norm:1.0 layer in
  Test_util.check_close "pre-clip norm" 20.0 pre;
  (match L.Slot.grad (List.hd (L.slots layer)) with
  | Some g -> Test_util.check_close "clipped to unit norm" 1.0 (Dense.item g)
  | None -> Alcotest.fail "no grad");
  (* below the threshold nothing changes *)
  let pre2 = SchB.clip_global_norm ~max_norm:10.0 layer in
  Test_util.check_close "second pass norm" 1.0 pre2;
  match L.Slot.grad (List.hd (L.slots layer)) with
  | Some g -> Test_util.check_close "untouched below threshold" 1.0 (Dense.item g)
  | None -> Alcotest.fail "no grad"

let test_clipped_training_step () =
  (* clip then step: the optimizer consumes the clipped gradient *)
  let layer = one_param_layer 10.0 in
  let opt = O.sgd ~lr:1.0 layer in
  let ctx = L.D.new_ctx () in
  let p = L.apply layer ctx (L.D.const (Dense.scalar 0.0)) in
  let loss = L.D.mul p p in
  L.D.backward ctx loss;
  ignore (SchB.clip_global_norm ~max_norm:1.0 layer);
  opt.O.step ();
  Test_util.check_close "step used the clipped gradient" 9.0 (param_value layer)

let schedule_suite =
  let tc = Alcotest.test_case in
  [
    ( "nn.schedule",
      [
        tc "schedule curves" `Quick test_schedule_shapes;
        tc "scheduled sgd" `Quick test_scheduled_sgd_uses_schedule;
        tc "global-norm clipping" `Quick test_clip_global_norm;
        tc "clip + optimizer step" `Quick test_clipped_training_step;
      ] );
    ( "nn.multi_head",
      [
        Alcotest.test_case "multi-head attention shapes and grads" `Quick
          (fun () ->
            let mha = At.multi_head_attention (rng ()) ~d_model:8 ~heads:2 () in
            let ctx = At.D.new_ctx () in
            let x = Bk.of_dense (Dense.rand_normal (Prng.create 4) [| 2; 3; 8 |]) in
            let y = At.L.apply mha ctx (At.D.const x) in
            Test_util.check_true "shape preserved"
              (Dense.shape (Bk.to_dense (At.D.value y)) = [| 2; 3; 8 |]);
            let loss = At.D.mean_all (At.D.mul y y) in
            At.D.backward ctx loss;
            List.iter
              (fun slot ->
                Test_util.check_true "every head slot has a gradient"
                  (At.L.Slot.grad slot <> None))
              (At.L.slots mha);
            Test_util.check_raises_any "heads must divide d_model" (fun () ->
                At.multi_head_attention (rng ()) ~d_model:8 ~heads:3 ()));
      ] );
  ]

let suite = suite @ schedule_suite

(* {1 Train/eval mode} *)

let test_dropout_identity_in_eval () =
  let g = Prng.create 61 in
  let layer = L.dropout g ~rate:0.5 in
  let x = Dense.ones [| 100 |] in
  L.with_mode L.Eval (fun () ->
      Test_util.check_tensor "eval dropout = identity" x (forward layer x));
  (* and back in train mode it drops again *)
  let y = forward layer x in
  Test_util.check_true "train mode drops" (Dense.min_value y = 0.0)

let test_batch_norm_eval_uses_running_stats () =
  let layer = L.batch_norm ~features:2 ~momentum:0.0 () in
  (* momentum 0: running stats snap to the last batch's statistics *)
  let g = Prng.create 62 in
  let train_batch =
    Dense.add
      (Dense.rand_normal g ~stddev:2.0 [| 256; 2 |])
      (Dense.of_array [| 2 |] [| 4.0; -3.0 |])
  in
  let _ = forward layer train_batch in
  (* in eval, a single example is normalized by the POPULATION stats, not
     its own (a single example would otherwise normalize to zero) *)
  let probe = Dense.of_array [| 1; 2 |] [| 4.0; -3.0 |] in
  let y = L.with_mode L.Eval (fun () -> forward layer probe) in
  (* the probe sits at the training mean, so eval-normalized ~ 0 *)
  Test_util.check_close ~eps:0.2 "near zero at the running mean" 0.0
    (Dense.get y [| 0; 0 |]);
  Test_util.check_close ~eps:0.2 "near zero at the running mean (ch 1)" 0.0
    (Dense.get y [| 0; 1 |]);
  (* and eval output is deterministic w.r.t. batch composition *)
  let batch2 = Dense.concat probe (Dense.scale 100.0 probe) 0 in
  let y2 = L.with_mode L.Eval (fun () -> forward layer batch2) in
  Test_util.check_close ~eps:1e-9 "independent of batch mates"
    (Dense.get y [| 0; 0 |])
    (Dense.get y2 [| 0; 0 |])

let test_with_mode_restores () =
  Test_util.check_true "starts in train" (!L.mode = L.Train);
  L.with_mode L.Eval (fun () ->
      Test_util.check_true "inside eval" (!L.mode = L.Eval));
  Test_util.check_true "restored" (!L.mode = L.Train)

let mode_suite =
  let tc = Alcotest.test_case in
  [
    ( "nn.mode",
      [
        tc "dropout identity in eval" `Quick test_dropout_identity_in_eval;
        tc "batch norm running stats" `Quick test_batch_norm_eval_uses_running_stats;
        tc "with_mode restores" `Quick test_with_mode_restores;
      ] );
  ]

let suite = suite @ mode_suite
