(** Cross-library integration tests: the properties that only hold when the
    whole platform fits together.

    The flagship property mirrors the paper's backend-portability claim: the
    {e same} functorized training code, run with the same seed on the naive,
    eager, and lazy backends, produces numerically identical losses and
    parameters — only the (simulated) cost profile differs. *)

open S4o_tensor

(* Train a small model for [steps] steps on the given backend and return the
   per-step losses plus the final first-layer weights. *)
let train_losses (type t) (module Bk : Backend_intf.S with type t = t)
    ~after_step ~steps () =
  let module M = S4o_nn.Models.Make (Bk) in
  let module T = S4o_nn.Train.Make (Bk) in
  let module O = S4o_nn.Optimizer.Make (Bk) in
  let rng = Prng.create 123 in
  let data = S4o_data.Dataset.synthetic_mnist rng ~n:(32 * steps) in
  let batches = S4o_data.Dataset.batches data ~batch_size:32 in
  let model = M.lenet rng in
  let opt = O.sgd ~momentum:0.9 ~lr:0.05 model in
  let losses = ref [] in
  List.iter
    (fun (images, one_hot, _) ->
      let r = T.step model opt ~images ~labels:one_hot in
      after_step (M.L.D.value r.T.loss :: O.updated_params opt);
      losses := Dense.item (Bk.to_dense (M.L.D.value r.T.loss)) :: !losses)
    batches;
  let first_weights =
    Bk.to_dense (M.L.Slot.data (List.hd (M.L.slots model)))
  in
  (List.rev !losses, first_weights)

let test_identical_training_across_backends () =
  let steps = 3 in
  let naive_losses, naive_w =
    train_losses (module Naive_backend) ~after_step:(fun _ -> ()) ~steps ()
  in
  let eager_losses, eager_w =
    let engine = S4o_device.Engine.create S4o_device.Device_spec.gtx1080 in
    let rt = S4o_eager.Runtime.create engine in
    let module Bk = S4o_eager.Eager_backend.Make (struct
      let rt = rt
    end) in
    train_losses (module Bk) ~after_step:(fun _ -> ()) ~steps ()
  in
  let lazy_losses, lazy_w =
    let engine = S4o_device.Engine.create S4o_device.Device_spec.gtx1080 in
    let rt = S4o_lazy.Lazy_runtime.create engine in
    let module Bk = S4o_lazy.Lazy_backend.Make (struct
      let rt = rt
    end) in
    train_losses (module Bk)
      ~after_step:(fun ts -> S4o_lazy.Lazy_runtime.barrier rt ts)
      ~steps ()
  in
  List.iter2
    (fun a b -> Test_util.check_close ~eps:1e-9 "eager loss identical" a b)
    naive_losses eager_losses;
  List.iter2
    (fun a b -> Test_util.check_close ~eps:1e-9 "lazy loss identical" a b)
    naive_losses lazy_losses;
  Test_util.check_tensor "eager weights identical" naive_w eager_w;
  Test_util.check_tensor "lazy weights identical" naive_w lazy_w

let test_lenet_training_step_changes_all_slots () =
  let module M = S4o_nn.Models.Make (Naive_backend) in
  let module T = S4o_nn.Train.Make (Naive_backend) in
  let module O = S4o_nn.Optimizer.Make (Naive_backend) in
  let rng = Prng.create 5 in
  let data = S4o_data.Dataset.synthetic_mnist rng ~n:32 in
  let model = M.lenet rng in
  let before = List.map (fun s -> Dense.copy (M.L.Slot.data s)) (M.L.slots model) in
  let opt = O.sgd ~lr:0.1 model in
  (match S4o_data.Dataset.batches data ~batch_size:32 with
  | (images, one_hot, _) :: _ -> ignore (T.step model opt ~images ~labels:one_hot)
  | [] -> Alcotest.fail "no batch");
  List.iter2
    (fun b s ->
      Test_util.check_true "slot updated" (not (Dense.equal b (M.L.Slot.data s))))
    before (M.L.slots model)

let test_sil_and_runtime_ad_agree () =
  (* the same function differentiated by the compile-time MSIL transform and
     by the runtime reverse tape *)
  let module B = S4o_sil.Builder in
  let b = B.create ~name:"fn" ~n_args:2 in
  let x = B.param b 0 and y = B.param b 1 in
  let xy = B.binary b S4o_sil.Ir.Mul x y in
  let e = B.unary b S4o_sil.Ir.Exp x in
  let r = B.binary b S4o_sil.Ir.Add xy e in
  let s = B.unary b S4o_sil.Ir.Sigmoid r in
  B.ret b s;
  let f = B.finish b in
  let m = S4o_sil.Interp.create_module () in
  S4o_sil.Interp.add m f;
  let ctx = S4o_sil.Transform.create_ctx m in
  let module R = S4o_core.Reverse in
  let runtime_fn xs =
    R.sigmoid (R.add (R.mul xs.(0) xs.(1)) (R.exp xs.(0)))
  in
  List.iter
    (fun (a, bb) ->
      let g_sil = S4o_sil.Transform.gradient ctx "fn" [| a; bb |] in
      let _, g_rt = R.grad runtime_fn [| a; bb |] in
      Test_util.check_close "d/dx agree" g_rt.(0) g_sil.(0);
      Test_util.check_close "d/dy agree" g_rt.(1) g_sil.(1))
    [ (0.5, 1.0); (-0.3, 2.0); (1.7, -0.8) ]

let test_diff_fn_wraps_sil_derivative () =
  (* a synthesized MSIL derivative packaged as a differentiable function
     value and used through the Figure 2 gradient operator *)
  let module B = S4o_sil.Builder in
  let b = B.create ~name:"sq" ~n_args:1 in
  let x = B.param b 0 in
  B.ret b (B.binary b S4o_sil.Ir.Mul x x);
  let f = B.finish b in
  let m = S4o_sil.Interp.create_module () in
  S4o_sil.Interp.add m f;
  let ctx = S4o_sil.Transform.create_ctx m in
  let d = S4o_sil.Transform.derivative_of ctx "sq" in
  let bundle =
    S4o_core.Diff_fn.make
      ~f:(fun x -> S4o_sil.Interp.eval m f [| x |])
      ~jvp:(fun x ->
        let v, df = d.S4o_sil.Transform.jvp [| x |] in
        (v, fun dx -> df [| dx |]))
      ~vjp:(fun x ->
        let v, pb = d.S4o_sil.Transform.vjp [| x |] in
        (v, fun s -> (pb s).(0)))
  in
  Test_util.check_close "gradient through the bundle" 6.0
    (S4o_core.Diff_fn.gradient ~at:3.0 bundle)

let test_lazy_resnet_tiny_trains () =
  let engine = S4o_device.Engine.create S4o_device.Device_spec.gtx1080 in
  let rt = S4o_lazy.Lazy_runtime.create engine in
  let module Bk = S4o_lazy.Lazy_backend.Make (struct
    let rt = rt
  end) in
  let module M = S4o_nn.Models.Make (Bk) in
  let module T = S4o_nn.Train.Make (Bk) in
  let module O = S4o_nn.Optimizer.Make (Bk) in
  let rng = Prng.create 7 in
  let data = S4o_data.Dataset.synthetic_cifar10 rng ~n:64 in
  let batches = S4o_data.Dataset.batches data ~batch_size:16 in
  let model = M.resnet rng ~in_channels:3 (M.resnet_tiny_config ~classes:10) in
  let opt = O.sgd ~lr:0.05 model in
  let first = ref None and last = ref None in
  List.iter
    (fun (images, one_hot, _) ->
      let r = T.step model opt ~images ~labels:one_hot in
      Bk.barrier (M.L.D.value r.T.loss :: O.updated_params opt);
      let l = Dense.item (Bk.to_dense (M.L.D.value r.T.loss)) in
      if !first = None then first := Some l;
      last := Some l)
    (batches @ batches);
  match (!first, !last) with
  | Some f, Some l -> Test_util.check_true "loss moved down" (l < f)
  | _ -> Alcotest.fail "no steps"

let test_mobile_workload_drives_spline_library () =
  (* mobile simulation numbers change when the real workload changes *)
  let w1, _, _ =
    S4o_mobile.Mobile_runtime.run_fine_tuning ~n_knots:12 ~n_data:100
      ~user_shift:0.2 (Prng.create 1)
  in
  let w2, _, _ =
    S4o_mobile.Mobile_runtime.run_fine_tuning ~n_knots:12 ~n_data:400
      ~user_shift:0.2 (Prng.create 1)
  in
  Test_util.check_true "more data, more flops per eval"
    (w2.S4o_mobile.Mobile_runtime.flops_per_gradient_eval
    > w1.S4o_mobile.Mobile_runtime.flops_per_gradient_eval)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "integration",
      [
        tc "identical training on naive/eager/lazy" `Quick
          test_identical_training_across_backends;
        tc "training step touches every slot" `Quick
          test_lenet_training_step_changes_all_slots;
        tc "MSIL transform = runtime tape" `Quick test_sil_and_runtime_ad_agree;
        tc "Figure 2 operator over a synthesized derivative" `Quick
          test_diff_fn_wraps_sil_derivative;
        tc "tiny resnet trains on lazy backend" `Quick test_lazy_resnet_tiny_trains;
        tc "mobile models consume measured workloads" `Quick
          test_mobile_workload_drives_spline_library;
      ] );
  ]

let test_transformer_traces_and_matches_naive () =
  (* the attention stack (batched matmuls, layer norm, softmax composition)
     must trace, compile, and produce the same numbers as the naive backend *)
  let build (type t) (module Bk : Backend_intf.S with type t = t) =
    let module A = S4o_nn.Attention.Make (Bk) in
    let rng = Prng.create 33 in
    let block = A.transformer_block rng ~d_model:4 ~d_ff:8 () in
    let x = Dense.rand_normal (Prng.create 34) [| 2; 3; 4 |] in
    let ctx = A.D.new_ctx () in
    let y = A.L.apply block ctx (A.D.const (Bk.of_dense x)) in
    let loss = A.D.mean_all (A.D.mul y y) in
    A.D.backward ctx loss;
    let grad =
      match A.L.Slot.grad (List.hd (A.L.slots block)) with
      | Some g -> Bk.to_dense g
      | None -> Alcotest.fail "no grad"
    in
    (Bk.to_dense (A.D.value loss), grad)
  in
  let loss_n, grad_n = build (module Naive_backend) in
  let engine = S4o_device.Engine.create S4o_device.Device_spec.gtx1080 in
  let rt = S4o_lazy.Lazy_runtime.create engine in
  let module Lz = S4o_lazy.Lazy_backend.Make (struct
    let rt = rt
  end) in
  let loss_l, grad_l = build (module Lz) in
  Test_util.check_tensor "transformer loss identical on lazy" loss_n loss_l;
  Test_util.check_tensor "transformer grads identical on lazy" grad_n grad_l;
  let st = S4o_lazy.Lazy_runtime.stats rt in
  Test_util.check_true "attention actually traced"
    (st.S4o_lazy.Lazy_runtime.ops_traced > 50)

let transformer_suite =
  [
    ( "integration.transformer",
      [
        Alcotest.test_case "transformer block on lazy = naive" `Quick
          test_transformer_traces_and_matches_naive;
      ] );
  ]

let suite = suite @ transformer_suite
