(** [bench kernels]: the repo's first {e real} (wall-clock, non-simulated)
    performance section. It measures the Bigarray kernel layer against the
    retained {!S4o_tensor.Reference} implementations — matmul GFLOP/s,
    im2col conv2d vs the naive loop nest, fused elementwise vs the generic
    stride walker, and matmul scaling over 1/2/4/8 domains — and with
    [--json] writes [BENCH_kernels.json].

    Regression gating: [bench/kernels_baseline.json] stores the {e
    speedups} over the reference kernels measured at check-in time, not
    absolute seconds — both sides of each ratio run on the same machine in
    the same process, so the number is comparable across CI runners where
    raw timings are not. The run fails (exit 1) if any kernel's current
    speedup drops below half its baseline: a generous bound that only an
    accidental algorithmic regression (e.g. losing the blocking or the
    im2col path) can trip. *)

module Dense = S4o_tensor.Dense
module Convolution = S4o_tensor.Convolution
module Reference = S4o_tensor.Reference
module Pool = S4o_tensor.Pool
module Recorder = S4o_obs.Recorder
module Json = S4o_obs.Json

let now = Unix.gettimeofday

(* Wall-clock timing: warm once, then repeat until [min_time] has
   accumulated and report the mean per call. Spans are recorded around the
   whole measured block with real timestamps so kernel time shows up in
   Chrome traces next to the simulated timelines. *)
let recorder = Recorder.create ()
let bench_start = now ()

let time_it ?(min_time = 0.2) ~name f =
  ignore (Sys.opaque_identity (f ()));
  let span =
    Recorder.begin_span recorder Recorder.Host ~cat:"kernel-bench" name
      ~at:(now () -. bench_start)
  in
  (* Best single call over a [min_time] budget: the minimum is the robust
     statistic on a shared machine — preemption only ever inflates a
     sample, so the fastest observation is the closest to the kernel's
     true cost (same reasoning as bechamel's stabilized runs). *)
  let t0 = now () in
  let reps = ref 0 in
  let best = ref Float.infinity in
  while now () -. t0 < min_time do
    let s = now () in
    ignore (Sys.opaque_identity (f ()));
    best := Float.min !best (now () -. s);
    incr reps
  done;
  let per_call = !best in
  Recorder.end_span recorder span
    ~args:
      [
        ("reps", string_of_int !reps);
        ("best_s", Printf.sprintf "%.6e" per_call);
      ]
    ~at:(now () -. bench_start);
  per_call

type result = { key : string; speedup : float; row : Json.t }

let ms t = Printf.sprintf "%.3f" (t *. 1000.0)

(* ------------------------------------------------------------- matmul -- *)

let bench_matmul ~quick ~min_time =
  let sizes = if quick then [ 64; 128; 256 ] else [ 64; 128; 256; 512 ] in
  let rng = S4o_tensor.Prng.create 42 in
  let rows =
    List.map
      (fun s ->
        let a = Dense.rand_normal rng [| s; s |] in
        let b = Dense.rand_normal rng [| s; s |] in
        let new_t =
          time_it ~min_time ~name:(Printf.sprintf "matmul-%d" s) (fun () ->
              Dense.matmul ~domains:1 a b)
        in
        let ref_t =
          time_it ~min_time ~name:(Printf.sprintf "matmul-ref-%d" s) (fun () ->
              Reference.matmul a b)
        in
        let flops = 2.0 *. (float_of_int s ** 3.0) in
        let gflops = flops /. new_t /. 1e9 in
        let speedup = ref_t /. new_t in
        ( [
            string_of_int s;
            ms new_t;
            ms ref_t;
            Printf.sprintf "%.2f" gflops;
            Printf.sprintf "%.2fx" speedup;
          ],
          {
            key = Printf.sprintf "matmul_%d" s;
            speedup;
            row =
              Json.Obj
                [
                  ("size", Json.Num (float_of_int s));
                  ("new_s", Json.Num new_t);
                  ("ref_s", Json.Num ref_t);
                  ("gflops", Json.Num gflops);
                  ("speedup", Json.Num speedup);
                ];
          } ))
      sizes
  in
  Report.table
    ~title:
      "Kernels 1: matmul, blocked Bigarray kernel (1 domain) vs retained \
       naive reference"
    ~headers:[ "size"; "blocked ms"; "naive ms"; "GFLOP/s"; "speedup" ]
    ~rows:(List.map fst rows);
  List.map snd rows

(* ------------------------------------------------------------- conv2d -- *)

let bench_conv ~quick ~min_time =
  (* A ResNet basic-block shape: 3x3 Same convolution on a 14x14x64 feature
     map (batch 8); --quick halves batch and channels. *)
  let n, hw, c = if quick then (4, 14, 32) else (8, 14, 64) in
  let rng = S4o_tensor.Prng.create 43 in
  let input = Dense.rand_normal rng [| n; hw; hw; c |] in
  let filter = Dense.rand_normal rng [| 3; 3; c; c |] in
  let shape_str = Printf.sprintf "[%d;%d;%d;%d]x[3;3;%d;%d]" n hw hw c c c in
  let new_t =
    time_it ~min_time ~name:"conv2d-im2col" (fun () ->
        Convolution.conv2d ~domains:1 ~padding:Convolution.Same input filter)
  in
  let ref_t =
    time_it ~min_time ~name:"conv2d-naive" (fun () ->
        Reference.conv2d ~padding:Convolution.Same input filter)
  in
  let flops =
    float_of_int
      (Convolution.conv2d_flops ~padding:Convolution.Same
         ~input:[| n; hw; hw; c |] [| 3; 3; c; c |])
  in
  let speedup = ref_t /. new_t in
  Report.table
    ~title:"Kernels 2: conv2d (ResNet-block shape), im2col vs naive loops"
    ~headers:[ "shape"; "im2col ms"; "naive ms"; "GFLOP/s"; "speedup" ]
    ~rows:
      [
        [
          shape_str;
          ms new_t;
          ms ref_t;
          Printf.sprintf "%.2f" (flops /. new_t /. 1e9);
          Printf.sprintf "%.2fx" speedup;
        ];
      ];
  [
    {
      key = "conv2d_resnet_block";
      speedup;
      row =
        Json.Obj
          [
            ("shape", Json.Str shape_str);
            ("new_s", Json.Num new_t);
            ("ref_s", Json.Num ref_t);
            ("speedup", Json.Num speedup);
          ];
    };
  ]

(* -------------------------------------------------------- elementwise -- *)

let bench_elementwise ~quick ~min_time =
  let n = if quick then 200_000 else 1_000_000 in
  let rng = S4o_tensor.Prng.create 44 in
  let a = Dense.rand_normal rng [| n |] in
  let b = Dense.rand_normal rng [| n |] in
  let fused_t =
    time_it ~min_time ~name:"elementwise-fused" (fun () -> Dense.add a b)
  in
  let strided_t =
    time_it ~min_time ~name:"elementwise-strided" (fun () ->
        Dense.map2_strided ( +. ) a b)
  in
  let per f = f /. float_of_int n *. 1e9 in
  let speedup = strided_t /. fused_t in
  Report.table
    ~title:
      "Kernels 3: elementwise add, fused flat loop vs generic broadcast \
       walker"
    ~headers:[ "elements"; "fused ns/elem"; "strided ns/elem"; "speedup" ]
    ~rows:
      [
        [
          string_of_int n;
          Printf.sprintf "%.2f" (per fused_t);
          Printf.sprintf "%.2f" (per strided_t);
          Printf.sprintf "%.2fx" speedup;
        ];
      ];
  [
    {
      key = "elementwise_add";
      speedup;
      row =
        Json.Obj
          [
            ("elements", Json.Num (float_of_int n));
            ("fused_ns", Json.Num (per fused_t));
            ("strided_ns", Json.Num (per strided_t));
            ("speedup", Json.Num speedup);
          ];
    };
  ]

(* ------------------------------------------------------------ scaling -- *)

let bench_scaling ~quick ~min_time =
  let s = if quick then 192 else 384 in
  let rng = S4o_tensor.Prng.create 45 in
  let a = Dense.rand_normal rng [| s; s |] in
  let b = Dense.rand_normal rng [| s; s |] in
  let serial =
    time_it ~min_time ~name:"matmul-scaling-1" (fun () ->
        Dense.matmul ~domains:1 a b)
  in
  let rows =
    List.map
      (fun d ->
        let t =
          if d = 1 then serial
          else
            time_it ~min_time
              ~name:(Printf.sprintf "matmul-scaling-%d" d)
              (fun () -> Dense.matmul ~domains:d a b)
        in
        ( [
            string_of_int d;
            ms t;
            Printf.sprintf "%.2fx" (serial /. t);
          ],
          Json.Obj
            [
              ("domains", Json.Num (float_of_int d));
              ("seconds", Json.Num t);
              ("speedup_vs_serial", Json.Num (serial /. t));
            ] ))
      [ 1; 2; 4; 8 ]
  in
  Report.table
    ~title:
      (Printf.sprintf
         "Kernels 4: %dx%d matmul over the domain pool (machine has %d \
          recommended domains; scaling tops out there)"
         s s
         (Domain.recommended_domain_count ()))
    ~headers:[ "domains"; "ms"; "speedup vs 1" ]
    ~rows:(List.map fst rows);
  List.map snd rows

(* ----------------------------------------------------- baseline gating -- *)

let baseline_path = "bench/kernels_baseline.json"

let read_baseline () =
  if not (Sys.file_exists baseline_path) then None
  else begin
    let ic = open_in baseline_path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Json.parse s with
    | Error msg ->
        Printf.eprintf "warning: cannot parse %s: %s\n" baseline_path msg;
        None
    | Ok doc -> Json.member "speedups" doc
  end

let check_baseline results =
  match read_baseline () with
  | None ->
      Report.note "  no %s found; skipping the regression gate." baseline_path;
      true
  | Some (Json.Obj entries) ->
      let ok = ref true in
      List.iter
        (fun (key, v) ->
          match (List.find_opt (fun r -> r.key = key) results, v) with
          | Some r, Json.Num expected ->
              if r.speedup < expected /. 2.0 then begin
                ok := false;
                Printf.eprintf
                  "kernel regression: %s speedup %.2fx is below half the \
                   baseline %.2fx\n"
                  key r.speedup expected
              end
          | None, _ ->
              (* --quick and full runs share keys for everything gated *)
              Printf.eprintf "warning: baseline key %s not measured\n" key
          | Some _, _ -> Printf.eprintf "warning: baseline key %s not a number\n" key)
        entries;
      if !ok then Report.note "  all kernels within 2x of baseline speedups.";
      !ok
  | Some _ ->
      Printf.eprintf "warning: malformed %s; skipping gate\n" baseline_path;
      true

(* -------------------------------------------------------------- entry -- *)

let run ~quick ~json ~trace_out () =
  (* --quick also shortens each measurement window: CI wants the shape of
     the numbers, not tight confidence intervals. *)
  let min_time = if quick then 0.05 else 0.2 in
  Printf.printf
    "\n== Kernel benchmarks (real wall-clock, not simulated time) ==\n%!";
  let matmul_results = bench_matmul ~quick ~min_time in
  let conv_results = bench_conv ~quick ~min_time in
  let elt_results = bench_elementwise ~quick ~min_time in
  let scaling_rows = bench_scaling ~quick ~min_time in
  let results = matmul_results @ conv_results @ elt_results in
  if json then begin
    let doc =
      Json.Obj
        [
          ( "kernels",
            Json.Obj
              [
                ("quick", Json.Bool quick);
                ( "matmul",
                  Json.Arr (List.map (fun r -> r.row) matmul_results) );
                ("conv2d", Json.Arr (List.map (fun r -> r.row) conv_results));
                ( "elementwise",
                  Json.Arr (List.map (fun r -> r.row) elt_results) );
                ("scaling", Json.Arr scaling_rows);
                ( "speedups",
                  Json.Obj
                    (List.map (fun r -> (r.key, Json.Num r.speedup)) results)
                );
              ] );
        ]
    in
    let oc = open_out "BENCH_kernels.json" in
    output_string oc (Json.to_string doc);
    output_char oc '\n';
    close_out oc;
    Report.note "  wrote kernel timings to BENCH_kernels.json."
  end;
  (match trace_out with
  | None -> ()
  | Some path ->
      Recorder.set_enabled recorder true;
      S4o_obs.Chrome_trace.to_file ~process:"kernel-bench" path recorder;
      Report.note "  Chrome trace with %d events written to %s."
        (Recorder.event_count recorder)
        path);
  if not (check_baseline results) then exit 1
