(** Plain-text table rendering for the benchmark harness: every reproduced
    table prints the paper's published number next to the simulator's, so
    the shape comparison is visible in one glance. *)

let rule widths =
  print_string "+";
  List.iter (fun w -> print_string (String.make (w + 2) '-' ^ "+")) widths;
  print_newline ()

let row widths cells =
  print_string "|";
  List.iter2 (fun w c -> Printf.printf " %-*s |" w c) widths cells;
  print_newline ()

let table ~title ~headers ~rows =
  Printf.printf "\n== %s ==\n" title;
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left (fun acc r -> max acc (String.length (List.nth r i)))
          (String.length h) rows)
      headers
  in
  rule widths;
  row widths headers;
  rule widths;
  List.iter (row widths) rows;
  rule widths

let note fmt = Printf.printf (fmt ^^ "\n")

let ratio_cell ~paper ~measured =
  Printf.sprintf "%.2fx" (measured /. paper)

(** Render unified runtime snapshots side by side: one metric column plus
    one value column per (workload, stats) pair, zero rows elided when every
    column agrees they are zero. *)
let stats_table ~title columns =
  let rowsets = List.map (fun (_, st) -> S4o_obs.Stats.rows st) columns in
  let labels = List.map fst (List.hd rowsets) in
  let is_zero v = v = "0" || v = "0.000 ms" in
  let rows =
    List.filteri
      (fun i _ ->
        List.exists (fun rows -> not (is_zero (snd (List.nth rows i)))) rowsets)
      labels
    |> List.map (fun label ->
           label
           :: List.map
                (fun rows -> snd (List.find (fun (l, _) -> l = label) rows))
                rowsets)
  in
  table ~title ~headers:("metric" :: List.map fst columns) ~rows
